# Tier-1 gate: everything a change must keep green before merging.
# `make` or `make check` runs vet + build + full tests, then the race
# detector over the concurrent packages (the slot engine's worker pool in
# internal/interconnect and the parallel breaker pool in internal/core).

GO ?= go

.PHONY: check vet build test race bench fuzz

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/interconnect ./internal/core

# Convenience targets (not part of the tier-1 gate).

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

fuzz:
	$(GO) test -fuzz FuzzSeqDistStatsEquivalence -fuzztime 30s ./internal/interconnect
