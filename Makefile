# Tier-1 gate: everything a change must keep green before merging.
# `make` or `make check` runs vet + build + full tests, then the race
# detector over the concurrent packages (the slot engine's worker pool in
# internal/interconnect and the parallel breaker pool in internal/core).
# CI (.github/workflows/ci.yml) enforces `fmt-check` and `check` on every
# push and pull request, plus short fuzz and benchmark smoke jobs, the
# `serve-smoke` grant-service integration run (wdmserve driven by wdmload
# over loopback) and the bounded `soak-smoke` chaos run (SOAKSLOTS slots,
# all three engines);
# `soak` (SOAKTIME wall-clock budget) is the long form the scheduled
# nightly workflow (.github/workflows/nightly.yml) runs per engine.

GO ?= go
BENCHTIME ?= 1s
FUZZTIME ?= 30s
DIFF_THRESHOLD ?= 1.0
DIFF_MINDELTA ?= 100us
SOAKTIME ?= 10m
SOAKSLOTS ?= 20000
# Seed for every soak lane: arrivals, fault chains and selector tie-breaks
# all derive from it, so a failing run's incident bundle replays bit-exact
# with wdmreplay. The nightly workflow sets SOAKSEED from the UTC date so
# each night explores a different trajectory while staying reproducible.
SOAKSEED ?= 1
# Knobs for the `make serve` / `make load` convenience pair.
SERVEADDR ?= 127.0.0.1:9411
LOADCONNS ?= 4
LOADRATE ?= 20000
LOADREQS ?= 100000

.PHONY: check vet build test race fmt fmt-check bench fuzz fuzz-short output trace \
	bench-save bench-diff examples-smoke cluster-smoke serve-smoke soak soak-smoke \
	replay-verify serve load top

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/interconnect ./internal/core ./internal/telemetry \
		./internal/metrics ./internal/cluster ./internal/traffic ./internal/soak \
		./internal/grant

fmt:
	gofmt -l -w .

# Fails (with the offending file list) if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Convenience targets (not part of the tier-1 gate).

bench:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' . ./internal/grant

fuzz:
	$(GO) test -fuzz FuzzSeqDistStatsEquivalence -fuzztime $(FUZZTIME) ./internal/interconnect

# Short deterministic-budget fuzz pass used by CI: the scheduler
# equivalence fuzzer (masked degraded instances included) and the
# sequential-vs-distributed engine fuzzer.
fuzz-short:
	$(GO) test -fuzz FuzzCircularSchedulersAgree -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -fuzz FuzzSeqDistStatsEquivalence -fuzztime $(FUZZTIME) ./internal/interconnect

# Append the next point of the perf-trajectory record: engine run-time
# metrics as JSON in BENCH_<n>.json, n = first unused index. Commit the
# file to keep the trajectory in history.
bench-save:
	@n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	$(GO) run ./cmd/wdmbench -engine -json > BENCH_$$n.json && \
	echo "wrote BENCH_$$n.json"

# Bench-regression gate: compare the newest BENCH_<n>.json against
# BENCH_0.json and fail on any duration cell worse by more than
# DIFF_THRESHOLD (fractional) and DIFF_MINDELTA (absolute) at once.
# Records a fresh point first when only the baseline exists.
bench-diff:
	@ls BENCH_[1-9]*.json >/dev/null 2>&1 || $(MAKE) bench-save
	$(GO) run ./cmd/wdmbench -diff -threshold $(DIFF_THRESHOLD) -mindelta $(DIFF_MINDELTA)

# Execute every example program end to end (they are built by ./... but
# would otherwise never run); any non-zero exit fails the target.
examples-smoke:
	@for d in examples/*/; do \
		echo "== $$d"; $(GO) run ./$$d > /dev/null || exit 1; \
	done; echo "examples smoke: all programs exited 0"

# Cluster integration smoke: controller + two wdmnode processes over
# loopback, statistics compared byte-for-byte against the in-process
# engines, live /metrics scrape included.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# Grant-service integration smoke: wdmserve driven by wdmload over
# loopback, ledger reconciled byte-exactly against the client report,
# wdm_grant_* telemetry scraped live, clean SIGTERM drain asserted.
serve-smoke:
	bash scripts/serve_smoke.sh

# Serve live traffic locally (ctrl-C / SIGTERM drains gracefully and
# prints the final ledger; see DESIGN.md §15 and README "serving live
# traffic").
serve:
	$(GO) run ./cmd/wdmserve -grant $(SERVEADDR) -listen 127.0.0.1:9480

# Drive a running `make serve` with the open-loop generator; the report
# lands in wdmload_report.json (not committed; see .gitignore).
load:
	$(GO) run ./cmd/wdmload -server $(SERVEADDR) -conns $(LOADCONNS) \
		-rate $(LOADRATE) -requests $(LOADREQS) -o wdmload_report.json

# Live fleet console against a running `make serve` (refreshes until
# interrupted; `wdmtop -once -json` is the scriptable form and what the
# serve-smoke job feeds smokecheck).
top:
	$(GO) run ./cmd/wdmtop -targets 127.0.0.1:9480

# Adversarial chaos soak: all three engines in lockstep on heavy-tailed
# arrivals under Markov channel/converter faults and cluster transport
# faults, invariants checked at every resync point. SOAKTIME caps the
# wall clock (nightly CI runs one engine per matrix leg for longer).
soak:
	$(GO) run ./cmd/wdmsoak -time $(SOAKTIME) -resync 10000 -seed $(SOAKSEED) \
		-engines sequential,distributed,cluster

# Bounded soak for the per-push CI lane: SOAKSLOTS slots, all engines,
# still enough to cross many resync points and exercise the span checks.
soak-smoke:
	$(GO) run ./cmd/wdmsoak -slots $(SOAKSLOTS) -resync 1000 -seed $(SOAKSEED) \
		-engines sequential,distributed,cluster

# End-to-end forensics proof: inject the ledger accounting bug, capture
# the violation as an incident bundle, then replay the bundle alone and
# require the identical violation to re-fire (wdmreplay exit 0). CI runs
# this as the replay-verify job.
replay-verify:
	@rm -f replay-verify.tgz
	@set +e; \
	$(GO) run ./cmd/wdmsoak -slots 8000 -resync 1000 -seed $(SOAKSEED) \
		-engines sequential,distributed -chaosbug ledger \
		-bundle replay-verify.tgz -report ""; \
	status=$$?; set -e; \
	test "$$status" -eq 1 || { echo "chaosbug soak exited $$status, want 1"; exit 1; }
	$(GO) run ./cmd/wdmreplay -verify replay-verify.tgz
	@rm -f replay-verify.tgz

# Regenerate the sample wdmbench output (not committed; see .gitignore).
output:
	$(GO) run ./cmd/wdmbench -quick > wdmbench_output.txt

# Record a short workload and dump its scheduling decisions in both
# formats (not committed; see .gitignore).
trace:
	$(GO) run ./cmd/wdmtrace -gen -o sample.trace.bin -n 8 -k 16 -load 0.9 -slots 1000
	$(GO) run ./cmd/wdmtrace -decisions sample.trace.bin -dump sample.decisions.jsonl
	$(GO) run ./cmd/wdmtrace -decisions sample.trace.bin -format chrome -dump sample.trace.json
