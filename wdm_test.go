package wdm_test

import (
	"bytes"
	"strings"
	"testing"

	wdm "wdmsched"
)

func TestQuickstartFlow(t *testing.T) {
	conv, err := wdm.NewConversion(wdm.Circular, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := wdm.NewScheduler("exact", conv)
	if err != nil {
		t.Fatal(err)
	}
	res := wdm.NewResult(conv.K())
	count := []int{2, 0, 1, 3, 0, 0, 1, 2}
	sched.Schedule(count, nil, res)
	if res.Size == 0 {
		t.Fatal("nothing granted")
	}
	if err := wdm.ValidateResult(conv, count, nil, res); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricConversionHelper(t *testing.T) {
	conv, err := wdm.NewSymmetricConversion(wdm.NonCircular, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Degree() != 3 {
		t.Fatalf("degree = %d", conv.Degree())
	}
	if _, err := wdm.NewSymmetricConversion(wdm.NonCircular, 6, 2); err == nil {
		t.Fatal("even degree accepted")
	}
}

func TestParseKind(t *testing.T) {
	k, err := wdm.ParseKind("circular")
	if err != nil || k != wdm.Circular {
		t.Fatal("ParseKind failed")
	}
}

func TestSchedulerNamesExposed(t *testing.T) {
	conv, _ := wdm.NewConversion(wdm.Circular, 6, 1, 1)
	for _, name := range []string{"exact", "break-first-available", "shortest-edge", "hopcroft-karp"} {
		if _, err := wdm.NewScheduler(name, conv); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := wdm.NewExactScheduler(conv); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndSimulation(t *testing.T) {
	conv, _ := wdm.NewConversion(wdm.Circular, 8, 1, 1)
	sw, err := wdm.NewSwitch(wdm.SwitchConfig{N: 4, Conv: conv, Seed: 1, ValidateFabric: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{N: 4, K: 8, Seed: 2}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted.Value() == 0 {
		t.Fatal("no grants in end-to-end run")
	}
	if st.LossRate() < 0 || st.LossRate() > 1 {
		t.Fatalf("loss rate %v", st.LossRate())
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	cfg := wdm.TrafficConfig{N: 2, K: 4, Seed: 5}
	gen, _ := wdm.NewBernoulliTraffic(cfg, 0.5)
	tr, err := wdm.RecordTrace(gen, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := wdm.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumPackets() != tr.NumPackets() {
		t.Fatal("trace round trip mismatch")
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	exps := wdm.Experiments()
	if len(exps) != 24 {
		t.Fatalf("%d experiments, want 24", len(exps))
	}
	tables, err := wdm.RunExperiment("P1", wdm.ExperimentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || !strings.Contains(tables[0].ASCII(), "λ0") {
		t.Fatal("P1 output unexpected")
	}
	if _, err := wdm.RunExperiment("nope", wdm.ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestOtherTrafficGenerators(t *testing.T) {
	cfg := wdm.TrafficConfig{N: 4, K: 4, Seed: 9}
	if _, err := wdm.NewHotspotTraffic(cfg, 0.5, 1, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := wdm.NewBurstyTraffic(cfg, 4, 4); err != nil {
		t.Fatal(err)
	}
}

func TestPrioritySchedulerFacade(t *testing.T) {
	conv, _ := wdm.NewSymmetricConversion(wdm.Circular, 6, 3)
	ps, err := wdm.NewPriorityScheduler(conv)
	if err != nil {
		t.Fatal(err)
	}
	high := []int{1, 0, 0, 0, 0, 0}
	low := []int{0, 1, 0, 0, 0, 0}
	results := []*wdm.Result{wdm.NewResult(6), wdm.NewResult(6)}
	if err := ps.ScheduleClasses([][]int{high, low}, nil, results); err != nil {
		t.Fatal(err)
	}
	if results[0].Size != 1 || results[1].Size != 1 {
		t.Fatalf("class sizes %d/%d", results[0].Size, results[1].Size)
	}
}

func TestParallelSchedulerFacade(t *testing.T) {
	conv, _ := wdm.NewSymmetricConversion(wdm.Circular, 8, 3)
	s, err := wdm.NewParallelScheduler(conv)
	if err != nil {
		t.Fatal(err)
	}
	res := wdm.NewResult(8)
	s.Schedule([]int{1, 1, 0, 0, 2, 0, 0, 1}, nil, res)
	if res.Size != 5 {
		t.Fatalf("size = %d, want 5", res.Size)
	}
}

func TestPlotFacade(t *testing.T) {
	s := &wdm.Series{Name: "line"}
	s.Add(0, 0)
	s.Add(1, 1)
	out := wdm.PlotASCII(16, 5, s)
	if !strings.Contains(out, "line") || !strings.Contains(out, "*") {
		t.Fatalf("plot output wrong:\n%s", out)
	}
}

func TestAsyncFacade(t *testing.T) {
	conv, _ := wdm.NewSymmetricConversion(wdm.Circular, 8, 3)
	st, err := wdm.RunAsync(wdm.AsyncConfig{
		Conv: conv, ArrivalRate: 5, MeanHold: 1, Seed: 9, Policy: wdm.RandomFit,
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != 2000 {
		t.Fatalf("offered = %d", st.Offered)
	}
	if p := st.BlockingProbability(); p < 0 || p > 1 {
		t.Fatalf("blocking %v", p)
	}
}

func TestPathFacade(t *testing.T) {
	conv, _ := wdm.NewSymmetricConversion(wdm.Circular, 4, 3)
	net, err := wdm.NewPathNetwork(conv, 3)
	if err != nil {
		t.Fatal(err)
	}
	if assign, ok := net.Admit(0, 2); !ok || len(assign) != 3 {
		t.Fatalf("idle network admit failed: %v %v", assign, ok)
	}
	st, err := wdm.RunPath(wdm.PathConfig{
		Conv: conv, Links: 4, Hops: 2, ArrivalRate: 3, MeanHold: 1, Seed: 5,
	}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != 3000 {
		t.Fatalf("offered = %d", st.Offered)
	}
}

func TestAnalysisFacade(t *testing.T) {
	if _, err := wdm.FullRangeLoss(8, 16, 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := wdm.NoConversionLoss(8, 16, 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := wdm.ErlangB(-1, 1); err == nil {
		t.Fatal("bad ErlangB args accepted")
	}
}
