// Burstswitch: optical burst switching — connections hold their output
// channel for multiple time slots (paper Section V). At scheduling time
// some output channels are therefore occupied; the request graph drops
// those right-side vertices and the same algorithms still find maximum
// matchings. The example contrasts the two Section V policies:
//
//   - no-disturb: held connections keep their channel; the scheduler works
//     around them (occupied channels removed from the request graph) —
//     the optical burst switching case where reassignment is impossible.
//   - disturb: held connections may be reassigned to a different channel
//     if that admits more new traffic; connections that cannot be
//     re-placed are preempted.
package main

import (
	"fmt"
	"log"

	wdm "wdmsched"
)

func main() {
	const (
		n     = 8
		k     = 16
		slots = 4000
		seed  = 7
	)
	conv, err := wdm.NewSymmetricConversion(wdm.Circular, k, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("burst switching on a %d×%d interconnect, %v\n\n", n, n, conv)
	fmt.Printf("%-10s %-12s %10s %10s %12s %11s\n",
		"hold", "policy", "granted", "loss", "utilization", "preempted")

	for _, hold := range []float64{1, 2, 4, 8} {
		for _, disturb := range []bool{false, true} {
			// Keep carried load comparable across holding times by
			// scaling the arrival rate down as holds lengthen.
			load := 0.7 / hold
			tcfg := wdm.TrafficConfig{
				N: n, K: k, Seed: seed,
				Hold: wdm.HoldingTime{Mean: hold},
			}
			gen, err := wdm.NewBernoulliTraffic(tcfg, load)
			if err != nil {
				log.Fatal(err)
			}
			sw, err := wdm.NewSwitch(wdm.SwitchConfig{
				N: n, Conv: conv, Seed: seed, Disturb: disturb,
			})
			if err != nil {
				log.Fatal(err)
			}
			st, err := sw.Run(gen, slots)
			if err != nil {
				log.Fatal(err)
			}
			policy := "no-disturb"
			if disturb {
				policy = "disturb"
			}
			fmt.Printf("%-10.0f %-12s %10d %10.4f %12.4f %11d\n",
				hold, policy, st.Granted.Value(), st.LossRate(),
				st.Utilization(n, k), st.Preempted.Value())
		}
	}
	fmt.Println("\nlonger holds fragment the channel space; disturb mode recovers some loss at the cost of preemptions")
}
