// Packetswitch: an optical packet switching scenario — the synchronous,
// slot-aligned workload the paper's introduction motivates. A recorded
// trace is replayed through four scheduler variants so differences are due
// to the algorithm alone, reproducing the shape of experiment S1/S2:
// exact limited-range scheduling approaches full range conversion even at
// small degree, and the shortest-edge approximation stays close to exact.
package main

import (
	"fmt"
	"log"

	wdm "wdmsched"
)

func main() {
	const (
		n     = 8
		k     = 16
		load  = 0.95
		slots = 3000
		seed  = 42
	)

	// Record one workload so all variants see identical arrivals.
	tcfg := wdm.TrafficConfig{N: n, K: k, Seed: seed}
	gen, err := wdm.NewBernoulliTraffic(tcfg, load)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := wdm.RecordTrace(gen, tcfg, slots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d×%d switch, %d wavelengths, load %.2f, %d slots, %d packets\n\n",
		n, n, k, load, slots, trace.NumPackets())

	type variant struct {
		label     string
		kind      wdm.Kind
		degree    int
		scheduler string
	}
	variants := []variant{
		{"no conversion (d=1)", wdm.Circular, 1, "exact"},
		{"circular d=3, exact BFA", wdm.Circular, 3, "break-first-available"},
		{"circular d=3, shortest-edge approx", wdm.Circular, 3, "shortest-edge"},
		{"non-circular d=3, first available", wdm.NonCircular, 3, "first-available"},
		{"full range", wdm.Full, 0, "full-range"},
	}

	fmt.Printf("%-38s %10s %10s %12s\n", "variant", "granted", "loss", "throughput")
	for _, v := range variants {
		var conv wdm.Conversion
		if v.kind == wdm.Full {
			conv, err = wdm.NewConversion(wdm.Full, k, 0, 0)
		} else {
			conv, err = wdm.NewSymmetricConversion(v.kind, k, v.degree)
		}
		if err != nil {
			log.Fatal(err)
		}
		sw, err := wdm.NewSwitch(wdm.SwitchConfig{
			N: n, Conv: conv, Scheduler: v.scheduler, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sw.Run(trace.Replay(), slots)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %10d %10.4f %12.4f\n",
			v.label, st.Granted.Value(), st.LossRate(), st.Throughput(n, k))
	}
	fmt.Println("\nexpected shape: d=1 worst, d=3 exact ≈ full range, approximation ≈ exact")
}
