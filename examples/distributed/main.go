// Distributed: demonstrates the paper's central architectural claim
// (Section I): because a connection request belongs to exactly one output
// fiber's subset, scheduling decomposes into N independent per-fiber
// problems. The simulator's distributed mode runs one goroutine per output
// port and — since the ports share no state — produces results identical
// to the sequential mode, while the per-port algorithms stay O(dk),
// independent of the interconnect size N.
package main

import (
	"fmt"
	"log"
	"time"

	wdm "wdmsched"
)

func main() {
	const (
		k     = 16
		load  = 1.0
		slots = 1500
		seed  = 99
	)
	conv, err := wdm.NewSymmetricConversion(wdm.Circular, k, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distributed vs sequential scheduling, k=%d, d=3, load %.1f\n\n", k, load)
	fmt.Printf("%-6s %14s %14s %12s %10s\n", "N", "seq µs/slot", "dist µs/slot", "granted", "identical")

	for _, n := range []int{4, 8, 16, 32} {
		tcfg := wdm.TrafficConfig{N: n, K: k, Seed: seed}
		gen, err := wdm.NewBernoulliTraffic(tcfg, load)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := wdm.RecordTrace(gen, tcfg, slots)
		if err != nil {
			log.Fatal(err)
		}

		run := func(distributed bool) (*wdm.Stats, float64) {
			sw, err := wdm.NewSwitch(wdm.SwitchConfig{
				N: n, Conv: conv, Seed: seed,
				Distributed: distributed, ValidateFabric: !distributed && n <= 8,
			})
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			st, err := sw.Run(trace.Replay(), slots)
			if err != nil {
				log.Fatal(err)
			}
			return st, float64(time.Since(start).Microseconds()) / float64(slots)
		}
		seq, seqT := run(false)
		dist, distT := run(true)
		identical := seq.Granted.Value() == dist.Granted.Value() &&
			seq.OutputDropped.Value() == dist.OutputDropped.Value()
		fmt.Printf("%-6d %14.1f %14.1f %12d %10v\n", n, seqT, distT, dist.Granted.Value(), identical)
		if !identical {
			log.Fatal("distributed and sequential runs diverged — per-port independence violated")
		}
	}
	fmt.Println("\nidentical results confirm the per-output-fiber partition argument of Section I")
}
