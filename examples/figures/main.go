// Figures: renders the repository's two headline curves as ASCII figures
// through the public API —
//
//  1. synchronous packet loss vs offered load for several conversion
//     degrees (the S1 study: small-d limited range approaches full range),
//     with the exact analytical endpoints overlaid; and
//  2. asynchronous FCFS blocking vs conversion degree against the
//     Erlang-B reference points (the S10 study).
package main

import (
	"fmt"
	"log"

	wdm "wdmsched"
)

func main() {
	syncFigure()
	asyncFigure()
}

func syncFigure() {
	const n, k, slots = 8, 16, 1500
	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0}

	variants := []struct {
		name string
		conv wdm.Conversion
	}{
		{"d=1", mustConv(wdm.Circular, k, 1)},
		{"d=3", mustConv(wdm.Circular, k, 3)},
		{"full", mustFull(k)},
	}
	var series []*wdm.Series
	for vi, v := range variants {
		s := &wdm.Series{Name: v.name}
		for _, load := range loads {
			gen, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{N: n, K: k, Seed: uint64(vi + 1)}, load)
			if err != nil {
				log.Fatal(err)
			}
			sw, err := wdm.NewSwitch(wdm.SwitchConfig{N: n, Conv: v.conv, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			st, err := sw.Run(gen, slots)
			if err != nil {
				log.Fatal(err)
			}
			s.Add(load, st.LossRate())
		}
		series = append(series, s)
	}
	// Analytical endpoints for the extremes.
	model1 := &wdm.Series{Name: "model d=1"}
	modelF := &wdm.Series{Name: "model full"}
	for _, load := range loads {
		m1, err := wdm.NoConversionLoss(n, k, load)
		if err != nil {
			log.Fatal(err)
		}
		mf, err := wdm.FullRangeLoss(n, k, load)
		if err != nil {
			log.Fatal(err)
		}
		model1.Add(load, m1)
		modelF.Add(load, mf)
	}
	series = append(series, model1, modelF)

	fmt.Printf("Figure A — loss vs offered load (N=%d, k=%d, synchronous)\n\n", n, k)
	fmt.Println(wdm.PlotASCII(56, 16, series...))
}

func asyncFigure() {
	const k = 16
	degrees := []int{1, 3, 5, 7, 9, 11, 16}
	const erlangs = 10.0

	sim := &wdm.Series{Name: "simulated (first-fit FCFS)"}
	for _, d := range degrees {
		var conv wdm.Conversion
		var err error
		if d >= k {
			conv, err = wdm.NewConversion(wdm.Full, k, 0, 0)
		} else {
			conv, err = wdm.NewSymmetricConversion(wdm.Circular, k, d)
		}
		if err != nil {
			log.Fatal(err)
		}
		st, err := wdm.RunAsync(wdm.AsyncConfig{
			Conv: conv, ArrivalRate: erlangs, MeanHold: 1, Seed: 3, Policy: wdm.FirstFit,
		}, 150000)
		if err != nil {
			log.Fatal(err)
		}
		sim.Add(float64(d), st.BlockingProbability())
	}
	ref := &wdm.Series{Name: "Erlang-B endpoints"}
	e1, err := wdm.ErlangB(1, erlangs/k)
	if err != nil {
		log.Fatal(err)
	}
	ek, err := wdm.ErlangB(k, erlangs)
	if err != nil {
		log.Fatal(err)
	}
	ref.Add(1, e1)
	ref.Add(float64(k), ek)

	fmt.Printf("Figure B — asynchronous blocking vs conversion degree (k=%d, A=%.0f Erlangs)\n\n", k, erlangs)
	fmt.Println(wdm.PlotASCII(56, 14, sim, ref))
}

func mustConv(kind wdm.Kind, k, d int) wdm.Conversion {
	c, err := wdm.NewSymmetricConversion(kind, k, d)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func mustFull(k int) wdm.Conversion {
	c, err := wdm.NewConversion(wdm.Full, k, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
