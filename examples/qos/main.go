// QoS: the paper's Section VI future work ("incorporating different QoS
// requirements, such as different priorities among connection requests, in
// the scheduling algorithm") implemented end to end: packets carry a
// priority class, and each output fiber schedules classes in strict
// priority order — every class running the exact maximum-matching
// algorithm on the channels left by higher classes.
//
// The demonstration overloads the switch and shows that the high class's
// loss stays near zero while the low class absorbs the contention.
package main

import (
	"fmt"
	"log"

	wdm "wdmsched"
)

func main() {
	const (
		n       = 8
		k       = 16
		slots   = 3000
		seed    = 77
		classes = 3
	)
	conv, err := wdm.NewSymmetricConversion(wdm.Circular, k, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strict-priority QoS on a %d×%d interconnect, %v, %d classes (10%%/30%%/60%%)\n\n",
		n, n, conv, classes)
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "total load", "class 0 loss", "class 1 loss", "class 2 loss", "overall")

	for _, load := range []float64{0.5, 0.7, 0.9, 1.0} {
		base, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{N: n, K: k, Seed: seed}, load)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := wdm.NewPrioritizedTraffic(base, []float64{0.1, 0.3, 0.6}, seed+1)
		if err != nil {
			log.Fatal(err)
		}
		sw, err := wdm.NewSwitch(wdm.SwitchConfig{
			N: n, Conv: conv, Seed: seed, PriorityClasses: classes,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sw.Run(gen, slots)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.1f %12.5f %12.5f %12.5f %12.5f\n",
			load, st.ClassLossRate(0), st.ClassLossRate(1), st.ClassLossRate(2), st.LossRate())
	}
	fmt.Println("\nhigher classes are isolated from lower-class load — the strict-priority property")
}
