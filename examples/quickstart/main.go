// Quickstart: schedule one time slot's contention for a single output
// fiber, reproducing the paper's introductory example (Section I): k = 6
// wavelengths, conversion degree d = 3, and six requests — two on λ1,
// three on λ2, one on λ4. Full range conversion could grant all six;
// limited range conversion can grant at most five.
package main

import (
	"fmt"
	"log"

	wdm "wdmsched"
)

func main() {
	// A conversion model: 6 wavelengths, circular symmetrical conversion
	// with degree 3 (each λi reaches λi−1, λi, λi+1 mod 6).
	conv, err := wdm.NewSymmetricConversion(wdm.Circular, 6, 3)
	if err != nil {
		log.Fatal(err)
	}

	// The request vector: requests per arrival wavelength destined to
	// this output fiber in this slot.
	requests := []int{0, 2, 3, 0, 1, 0}

	// The paper's exact scheduler for circular conversion is Break and
	// First Available (Table 3), O(dk) per slot.
	sched, err := wdm.NewExactScheduler(conv)
	if err != nil {
		log.Fatal(err)
	}
	res := wdm.NewResult(conv.K())
	sched.Schedule(requests, nil, res)

	fmt.Printf("model:     %v\n", conv)
	fmt.Printf("requests:  %v  (total %d)\n", requests, total(requests))
	fmt.Printf("granted:   %d via %s\n", res.Size, sched.Name())
	for b, w := range res.ByOutput {
		if w != wdm.Unassigned {
			fmt.Printf("  output channel λ%d ← request on λ%d\n", b, w)
		}
	}

	// Sanity: the assignment is feasible under the conversion model.
	if err := wdm.ValidateResult(conv, requests, nil, res); err != nil {
		log.Fatal(err)
	}

	// Full range conversion grants all six, as the paper notes.
	full, err := wdm.NewConversion(wdm.Full, 6, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fullSched, err := wdm.NewExactScheduler(full)
	if err != nil {
		log.Fatal(err)
	}
	fullRes := wdm.NewResult(6)
	fullSched.Schedule(requests, nil, fullRes)
	fmt.Printf("full range would grant: %d\n", fullRes.Size)
}

func total(v []int) int {
	n := 0
	for _, c := range v {
		n += c
	}
	return n
}
