// Package wdm is the public API of wdmsched, a from-scratch Go
// implementation of the distributed scheduling algorithms for wavelength
// convertible WDM optical interconnects from Zhang & Yang, "Distributed
// Scheduling Algorithms for Wavelength Convertible WDM Optical
// Interconnects" (IPDPS 2003).
//
// # Model
//
// An N×N WDM optical interconnect carries k wavelength channels per fiber.
// Limited range wavelength converters on the output side can shift an
// incoming wavelength λi into an adjacency interval [i−e, i+f] — circular
// (wrapping mod k) or non-circular (clamped at the band edges) — with
// conversion degree d = e+f+1. Each time slot, the requests destined to one
// output fiber are scheduled independently of all other fibers; the
// scheduler grants the largest contention-free subset, i.e. a maximum
// matching of the request graph.
//
// # Schedulers
//
// NewScheduler (or the concrete constructors) provides:
//
//   - "first-available" — exact O(k) for non-circular conversion (Table 2)
//   - "break-first-available" — exact O(dk) for circular conversion (Table 3)
//   - "shortest-edge" / "delta-break(δ)" — O(k) single-break approximation
//     within max{δ−1, d−δ} of optimal (Theorem 3, Corollary 1)
//   - "full-range" — the trivial exact scheduler for d = k
//   - "hopcroft-karp" — the general bipartite matching baseline
//   - "exact" — dispatches to the right exact algorithm for the model
//   - "fast" / "fast-first-available" / "fast-break-first-available" —
//     word-parallel kernels over packed uint64 state; bit-identical
//     results to the scalar exact algorithms, ≥5× faster at k=128–256
//
// # Quick start
//
//	conv, _ := wdm.NewConversion(wdm.Circular, 8, 1, 1) // k=8, d=3
//	sched, _ := wdm.NewScheduler("exact", conv)
//	res := wdm.NewResult(conv.K())
//	sched.Schedule([]int{2, 0, 1, 3, 0, 0, 1, 2}, nil, res)
//	fmt.Println(res.Size) // granted requests
//
// For whole-interconnect simulation see NewSwitch; for regenerating the
// paper's tables and figures see Experiments and RunExperiment (or the
// wdmbench command).
package wdm

import (
	"io"

	"wdmsched/internal/analysis"
	"wdmsched/internal/async"
	"wdmsched/internal/cluster"
	"wdmsched/internal/core"
	"wdmsched/internal/fault"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/metrics"
	"wdmsched/internal/pathsim"
	"wdmsched/internal/sim"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// Kind selects the shape of wavelength conversion.
type Kind = wavelength.Kind

// Conversion kinds (paper Section II-A).
const (
	// Circular conversion wraps adjacency sets around the wavelength
	// ring (Fig. 2(a)).
	Circular = wavelength.Circular
	// NonCircular conversion clamps adjacency sets at the band edges
	// (Fig. 2(b)).
	NonCircular = wavelength.NonCircular
	// Full range conversion reaches every wavelength (d = k).
	Full = wavelength.Full
)

// Conversion is an immutable wavelength conversion model: k wavelengths,
// minus-side reach e and plus-side reach f (degree d = e+f+1).
type Conversion = wavelength.Conversion

// Wavelength is a wavelength channel index in [0, k).
type Wavelength = wavelength.Wavelength

// NewConversion builds a conversion model; see wavelength reach semantics
// in the package documentation.
func NewConversion(kind Kind, k, e, f int) (Conversion, error) {
	return wavelength.New(kind, k, e, f)
}

// NewSymmetricConversion builds a conversion with odd degree d and
// e = f = (d−1)/2, the common case in the paper's examples.
func NewSymmetricConversion(kind Kind, k, d int) (Conversion, error) {
	return wavelength.NewSymmetric(kind, k, d)
}

// ParseKind parses "circular", "noncircular" or "full".
func ParseKind(s string) (Kind, error) { return wavelength.ParseKind(s) }

// Scheduler resolves one output fiber's contention each slot; see the
// package documentation for the available algorithms. Schedulers reuse
// internal scratch and are not safe for concurrent use — deploy one per
// output fiber, as the paper's distributed design intends.
type Scheduler = core.Scheduler

// Result is one slot's scheduling decision.
type Result = core.Result

// Unassigned marks an output channel with no granted request.
const Unassigned = core.Unassigned

// NewResult allocates a Result for k wavelengths.
func NewResult(k int) *Result { return core.NewResult(k) }

// NewScheduler builds a scheduler by name; see the package documentation
// for the recognized names.
func NewScheduler(name string, conv Conversion) (Scheduler, error) {
	return core.NewByName(name, conv)
}

// NewExactScheduler returns the paper's exact algorithm for the model:
// FirstAvailable, BreakFirstAvailable or FullRange.
func NewExactScheduler(conv Conversion) (Scheduler, error) { return core.NewExact(conv) }

// ValidateResult checks that res is a feasible assignment for the request
// vector and occupancy under conv.
func ValidateResult(conv Conversion, count []int, occupied []bool, res *Result) error {
	return core.Validate(conv, count, occupied, res)
}

// ChannelState is one output channel's fault condition for masked
// scheduling (Scheduler.ScheduleMasked).
type ChannelState = core.ChannelState

// Channel fault states.
const (
	// ChannelHealthy channels behave normally.
	ChannelHealthy = core.Healthy
	// ChannelConverterFailed channels carry only their own wavelength:
	// the converter is broken, the laser is not.
	ChannelConverterFailed = core.ConverterFailed
	// ChannelDark channels are out of service entirely.
	ChannelDark = core.Dark
)

// ChannelMask is a per-channel fault mask (len k); nil means all healthy.
type ChannelMask = core.ChannelMask

// ValidateResultMasked additionally checks the fault-mask rules: nothing on
// dark channels, only straight-through grants on converter-failed channels.
func ValidateResultMasked(conv Conversion, count []int, occupied []bool, mask ChannelMask, res *Result) error {
	return core.ValidateMasked(conv, count, occupied, mask, res)
}

// Packet is one slot-aligned connection request; see the traffic model in
// the SwitchConfig documentation.
type Packet = traffic.Packet

// Generator produces per-slot packet arrivals.
type Generator = traffic.Generator

// TrafficConfig describes the interconnect shape a generator fills and the
// holding-time model.
type TrafficConfig = traffic.Config

// HoldingTime models connection durations (1 slot for packet switching,
// longer for burst switching).
type HoldingTime = traffic.HoldingTime

// Trace is a recorded workload for replay.
type Trace = traffic.Trace

// NewBernoulliTraffic builds uniform independent arrivals at the given
// per-channel load.
func NewBernoulliTraffic(cfg TrafficConfig, load float64) (Generator, error) {
	return traffic.NewBernoulli(cfg, load)
}

// NewHotspotTraffic directs a fraction of the traffic at one hot output
// fiber.
func NewHotspotTraffic(cfg TrafficConfig, load float64, hot int, fraction float64) (Generator, error) {
	return traffic.NewHotspot(cfg, load, hot, fraction)
}

// NewHotBandTraffic concentrates all arrivals on the first band wavelengths
// and one hot output fiber — the contended workload of the word-parallel
// kernel benchmarks.
func NewHotBandTraffic(cfg TrafficConfig, load float64, hot, band int) (Generator, error) {
	return traffic.NewHotBand(cfg, load, hot, band)
}

// NewBurstyTraffic builds on–off Markov traffic with the given mean burst
// and idle lengths.
func NewBurstyTraffic(cfg TrafficConfig, meanOn, meanOff float64) (Generator, error) {
	return traffic.NewBursty(cfg, meanOn, meanOff)
}

// NewHeavyTailTraffic builds heavy-tailed on–off traffic: Pareto(alpha)
// burst lengths (infinite variance for alpha < 2) and zipf-skewed
// destinations (exponent zipf; 0 = uniform, rank 0 = fiber 0 hottest), at
// the given long-run per-channel load.
func NewHeavyTailTraffic(cfg TrafficConfig, load, alpha, zipf float64) (Generator, error) {
	return traffic.NewHeavyTail(cfg, load, alpha, zipf)
}

// NewSelfSimilarTraffic builds self-similar traffic by superposing many
// heavy-tailed on/off users per input fiber (users ≥ k across the fiber),
// the Willinger–Taqqu construction: block-aggregated counts stay bursty at
// every time scale instead of smoothing out like Bernoulli.
func NewSelfSimilarTraffic(cfg TrafficConfig, load, alpha float64, users int) (Generator, error) {
	return traffic.NewSelfSimilar(cfg, load, alpha, users)
}

// NewDiurnalTraffic modulates any generator with a raised-cosine load
// curve of the given period in slots: offered load swings between
// floor×peak and peak, the daily rush-hour shape soak runs sweep through.
func NewDiurnalTraffic(gen Generator, period int, floor float64, seed uint64) (Generator, error) {
	return traffic.WithDiurnal(gen, period, floor, seed)
}

// BulkTransfer is the open-shop workload: a fixed N×N demand matrix of
// transfer units drained in closed loop — each slot it offers the still-
// pending units (at most k per input) and Deliver feeds grants back. The
// figure of merit is the makespan; compare with OpenShopMakespanLB.
type BulkTransfer = traffic.BulkTransfer

// NewBulkTransfer validates the demand matrix and builds the workload.
func NewBulkTransfer(cfg TrafficConfig, demand [][]int) (*BulkTransfer, error) {
	return traffic.NewBulkTransfer(cfg, demand)
}

// RandomBulkDemand spreads total transfer units uniformly at random over
// an n×n demand matrix.
func RandomBulkDemand(n, total int, seed uint64) [][]int {
	return traffic.RandomDemand(n, total, seed)
}

// CompressedTraceWriter streams a workload trace in the compressed ctrace
// format: slot-by-slot in constant memory, so soak-scale traces (multiple
// gigaslots) never materialize in RAM. Close emits the footer that makes
// truncation detectable.
type CompressedTraceWriter = traffic.TraceWriter

// CompressedTraceReader streams a compressed trace back; its Generator
// method adapts it for replay through Switch.Run.
type CompressedTraceReader = traffic.TraceReader

// NewCompressedTraceWriter starts a compressed trace with the given shape.
func NewCompressedTraceWriter(w io.Writer, n, k int) (*CompressedTraceWriter, error) {
	return traffic.NewTraceWriter(w, n, k)
}

// OpenCompressedTrace validates the header and positions the reader at
// the first slot.
func OpenCompressedTrace(r io.Reader) (*CompressedTraceReader, error) {
	return traffic.OpenTraceReader(r)
}

// ReadCompressedTrace loads a whole compressed trace into memory — the
// bridge back to the in-memory Trace for small traces.
func ReadCompressedTrace(r io.Reader) (*Trace, error) {
	return traffic.ReadCompressedTrace(r)
}

// NewPrioritizedTraffic wraps a generator with QoS class marking:
// classProbs[c] is the probability a packet belongs to class c (0 =
// highest). Pair with SwitchConfig.PriorityClasses.
func NewPrioritizedTraffic(gen Generator, classProbs []float64, seed uint64) (Generator, error) {
	return traffic.WithPriorities(gen, classProbs, seed)
}

// RecordTrace captures a generator's arrivals for replay.
func RecordTrace(gen Generator, cfg TrafficConfig, slots int) (*Trace, error) {
	return traffic.Record(gen, cfg, slots)
}

// ReadTrace deserializes a trace written with Trace.Write.
var ReadTrace = traffic.ReadTrace

// Switch is a running N×N interconnect simulation.
type Switch = interconnect.Switch

// SwitchConfig configures a simulation; see the field documentation in the
// interconnect package.
type SwitchConfig = interconnect.Config

// Stats aggregates a simulation run.
type Stats = interconnect.Stats

// EngineStats reports the slot engine's own run-time metrics — per-slot
// scheduling latency, per-port busy time, and a sampled
// allocations-per-slot gauge — via Stats.Engine. In distributed mode the
// engine is a persistent worker pool (one long-lived goroutine per output
// port, started by NewSwitch and stopped by Switch.Finalize), so these
// metrics describe steady-state behavior rather than goroutine churn.
type EngineStats = interconnect.EngineStats

// DurationHistogram is the power-of-two-bucket latency histogram behind
// EngineStats.SlotLatency.
type DurationHistogram = metrics.DurationHistogram

// Gauge is a last-value metric (EngineStats.AllocsPerSlot).
type Gauge = metrics.Gauge

// NewSwitch builds an interconnect simulation. In distributed mode the
// switch starts one persistent scheduling worker per output port; call
// Finalize (or Run, which finalizes) to stop them.
func NewSwitch(cfg SwitchConfig) (*Switch, error) { return interconnect.New(cfg) }

// SwitchSnapshot is a consistent mid-run view of a switch's cumulative
// counters, taken between slots with Switch.Snapshot. Its Conserved method
// checks the packet-accounting partition and Diff compares two engines'
// snapshots field by field — the invariants the wdmsoak harness enforces
// continuously.
type SwitchSnapshot = interconnect.Snapshot

// SlotGrant is one switched connection of the most recent slot, exposed by
// Switch.LastGrants for closed-loop drivers and grant ledgers.
type SlotGrant = interconnect.SlotGrant

// RunBulk drives a bulk transfer through the switch in closed loop until
// the demand drains, returning the makespan in slots. maxSlots bounds
// runaway workloads.
func RunBulk(s *Switch, bulk *BulkTransfer, maxSlots int) (int, *Stats, error) {
	return interconnect.RunBulk(s, bulk, maxSlots)
}

// OpenShopMakespanLB is the open-shop scheduling lower bound for draining
// a demand matrix through an N×N interconnect with k channels per fiber:
// no schedule beats ⌈max(max row sum, max column sum)/k⌉ slots.
func OpenShopMakespanLB(demand [][]int, k int) (int, error) {
	return analysis.OpenShopMakespanLB(demand, k)
}

// FaultInjector is a deterministic fault schedule the switch consumes
// (SwitchConfig.Faults): converter failures, dark channels and port flaps,
// surfaced to the schedulers as per-port channel masks.
type FaultInjector = fault.Injector

// FaultEvent is one timed entry of a scripted fault schedule.
type FaultEvent = fault.Event

// FaultKind enumerates fault event types.
type FaultKind = fault.Kind

// Fault event kinds.
const (
	FaultConverterFail   = fault.ConverterFail
	FaultConverterRepair = fault.ConverterRepair
	FaultChannelDark     = fault.ChannelDark
	FaultChannelRestore  = fault.ChannelRestore
	FaultPortDown        = fault.PortDown
	FaultPortUp          = fault.PortUp
)

// NewFaultScript builds an injector replaying an explicit event list.
func NewFaultScript(n, k int, events []FaultEvent) (FaultInjector, error) {
	return fault.NewScript(n, k, events)
}

// MarkovFaultConfig parameterizes the stochastic fault injector: each
// component is an independent two-state Markov chain with the given
// per-slot fail/repair probabilities.
type MarkovFaultConfig = fault.MarkovConfig

// NewMarkovFaults builds the stochastic injector; all randomness derives
// from the config's seed.
func NewMarkovFaults(cfg MarkovFaultConfig) (FaultInjector, error) {
	return fault.NewMarkov(cfg)
}

// FaultStats reports degraded-mode statistics of a faulted run
// (Stats.Fault; nil when no injector was configured).
type FaultStats = interconnect.FaultStats

// TelemetryRegistry is a named-metric registry; attach one via
// SwitchConfig.Telemetry and the switch registers every run statistic
// under wdm_* names, readable live from concurrent scrapers.
type TelemetryRegistry = telemetry.Registry

// TelemetryMetric is one sample in a registry snapshot.
type TelemetryMetric = telemetry.Metric

// TelemetryLabel is one name/value metric label.
type TelemetryLabel = telemetry.Label

// NewTelemetryRegistry builds an empty metric registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// TelemetryServer is the opt-in HTTP endpoint serving a registry:
// Prometheus text at /metrics, JSON at /snapshot, expvar at /debug/vars
// and the runtime profiler under /debug/pprof/.
type TelemetryServer = telemetry.Server

// ServeTelemetry binds addr (e.g. ":8080", or "127.0.0.1:0" for an
// ephemeral port) and serves the registry until Close.
func ServeTelemetry(addr string, reg *TelemetryRegistry) (*TelemetryServer, error) {
	return telemetry.NewServer(addr, reg)
}

// WriteTelemetryPrometheus writes a registry snapshot in the Prometheus
// text exposition format.
func WriteTelemetryPrometheus(w io.Writer, reg *TelemetryRegistry) error {
	return telemetry.WritePrometheus(w, reg.Snapshot())
}

// DecisionTracer records per-slot scheduling decisions — grants, rejects
// with reasons, preemptions, fault kills, BFA break edges and per-port
// slot latency — into bounded allocation-free ring buffers. Attach one via
// SwitchConfig.Trace; dump it with its WriteJSONL or WriteChromeTrace
// methods (or the wdmtrace -decisions command).
type DecisionTracer = telemetry.DecisionTracer

// DecisionEvent is one recorded scheduling decision.
type DecisionEvent = telemetry.Event

// NewDecisionTracer builds a tracer for a switch with ports output
// fibers, retaining up to perLaneCap events per port lane.
func NewDecisionTracer(ports, perLaneCap int) *DecisionTracer {
	return telemetry.NewDecisionTracer(ports, perLaneCap)
}

// Decision event kinds (DecisionEvent.Kind).
const (
	EventGrant       = telemetry.EvGrant
	EventRegrant     = telemetry.EvRegrant
	EventReject      = telemetry.EvReject
	EventPreempt     = telemetry.EvPreempt
	EventFaultKill   = telemetry.EvFaultKill
	EventBreakEdge   = telemetry.EvBreakEdge
	EventSlotLatency = telemetry.EvSlotLatency
)

// Reject reasons (DecisionEvent.Reason).
const (
	RejectInputBlocked   = telemetry.ReasonInputBlocked
	RejectWindowOccupied = telemetry.ReasonWindowOccupied
	RejectFaultMasked    = telemetry.ReasonFaultMasked
	RejectLostMatching   = telemetry.ReasonLostMatching
)

// SpanTracer records cross-process tracing spans — controller prepare,
// frame encode, RPC in-flight, node decode/schedule/encode, commit — into
// bounded allocation-free per-lane rings. Attach one via
// ClusterControllerConfig.Spans (controller side) or
// ClusterNodeConfig.Spans (node side); dump with WriteSpans and merge the
// dumps into one Chrome timeline with wdmtrace -merge.
type SpanTracer = telemetry.SpanTracer

// TraceSpan is one recorded span.
type TraceSpan = telemetry.Span

// NewSpanTracer builds a tracer with the given number of lanes, retaining
// up to perLaneCap spans per lane (newest win on overflow).
func NewSpanTracer(lanes, perLaneCap int) *SpanTracer {
	return telemetry.NewSpanTracer(lanes, perLaneCap)
}

// FlightRecorder is the always-on black-box recorder: bounded,
// allocation-free rings retaining the last window of scheduling
// decisions, counter snapshots, fault-mask transitions and (cluster
// runs) per-node health samples. Attach one via SwitchConfig.Recorder —
// the switch adopts its decision tracer, records counter snapshots at
// the configured cadence, and diffs fault masks edge-triggered — then
// dump its rings into an incident bundle with an IncidentBundleWriter.
type FlightRecorder = telemetry.FlightRecorder

// FlightRecorderConfig sizes the recorder's rings and sets the counter
// snapshot cadence.
type FlightRecorderConfig = telemetry.FlightRecorderConfig

// RecorderSnapshot is one recorded counter snapshot (FlightRecorder
// Snapshots / NearestSnapshotBefore).
type RecorderSnapshot = telemetry.SnapshotRecord

// RecorderFaultTransition is one edge-triggered channel-state change.
type RecorderFaultTransition = telemetry.FaultTransition

// RecorderNodeSample is one per-node health/RPC sample from a cluster run.
type RecorderNodeSample = telemetry.NodeSample

// NewFlightRecorder builds a recorder; Ports must match the switch shape.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return telemetry.NewFlightRecorder(cfg)
}

// IncidentBundleWriter assembles a self-contained incident bundle — a
// gzip tarball with a versioned manifest (entry sizes and CRCs) listed
// first, so truncation and corruption are detectable on read.
type IncidentBundleWriter = telemetry.BundleWriter

// IncidentBundle is a decoded, integrity-checked incident bundle.
type IncidentBundle = telemetry.Bundle

// IncidentBundleManifest describes a bundle: producing tool, trigger,
// slot, wall-clock time and the file table.
type IncidentBundleManifest = telemetry.BundleManifest

// NewIncidentBundleWriter starts a bundle dumped by tool for the given
// trigger ("violation", "sigquit", ...) at the given slot.
func NewIncidentBundleWriter(tool, trigger string, slot int64) *IncidentBundleWriter {
	return telemetry.NewBundleWriter(tool, trigger, slot)
}

// ReadIncidentBundle decodes and integrity-checks a bundle stream.
func ReadIncidentBundle(r io.Reader) (*IncidentBundle, error) {
	return telemetry.ReadBundle(r)
}

// ReadIncidentBundleFile decodes and integrity-checks a bundle file.
func ReadIncidentBundleFile(path string) (*IncidentBundle, error) {
	return telemetry.ReadBundleFile(path)
}

// CloseScheduler releases background resources a scheduler may hold — the
// parallel Section IV-B scheduler keeps d persistent worker goroutines
// between Schedule calls. It is a no-op for schedulers without such
// resources. Switch.Finalize closes its port schedulers automatically;
// call this only for schedulers you drive directly.
func CloseScheduler(s Scheduler) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// BatchScheduler resolves one slot's output contention for every port at
// once; plug one into SwitchConfig.Remote to move the scheduling
// computation out of the switch process. Implementations must be
// deterministic — the switch's Stats stay identical to the in-process
// engines by construction.
type BatchScheduler = interconnect.BatchScheduler

// ClusterStats reports the networked runtime's behavior (Stats.Cluster;
// nil unless the run scheduled through a cluster controller).
type ClusterStats = interconnect.ClusterStats

// ClusterController shards the per-output-fiber schedulers across worker
// nodes over TCP or unix sockets: it streams each slot's request vectors
// in one batched frame per node and merges the grants back into the slot
// loop, falling back to bit-identical local scheduling when a node misses
// its deadline. Use it as SwitchConfig.Remote and Close it after the run.
type ClusterController = cluster.Controller

// ClusterControllerConfig configures a cluster run; see the cluster
// package for field semantics and defaults.
type ClusterControllerConfig = cluster.ControllerConfig

// NewClusterController connects to every node, pushes the port partition,
// and returns a ready batch scheduler.
func NewClusterController(cfg ClusterControllerConfig) (*ClusterController, error) {
	return cluster.NewController(cfg)
}

// ClusterNode is a cluster worker: a stateless matching server hosting
// the schedulers for whatever ports a controller assigns it. Run one per
// machine (or in-process for tests) with Serve; see the wdmnode command.
type ClusterNode = cluster.Node

// ClusterNodeConfig tunes a worker node.
type ClusterNodeConfig = cluster.NodeConfig

// NewClusterNode builds a worker node; drive it with Serve on a listener.
func NewClusterNode(cfg ClusterNodeConfig) *ClusterNode { return cluster.NewNode(cfg) }

// TransportFaults injects seeded frame-level drop/delay/duplication on the
// cluster transport (ClusterControllerConfig.Faults), exercising the
// controller's retry and local-fallback machinery without changing any
// scheduling result.
type TransportFaults = fault.TransportFaults

// TransportFaultConfig parameterizes transport fault injection.
type TransportFaultConfig = fault.TransportConfig

// NewTransportFaults validates the probabilities and builds an injector.
func NewTransportFaults(cfg TransportFaultConfig) (*TransportFaults, error) {
	return fault.NewTransportFaults(cfg)
}

// Table is a rendered experiment artifact (ASCII and CSV output).
type Table = metrics.Table

// Experiment regenerates one of the paper's tables or figures; see
// DESIGN.md for the index.
type Experiment = sim.Experiment

// ExperimentConfig tunes experiment cost.
type ExperimentConfig = sim.RunConfig

// Experiments lists every registered experiment (P1–P9, S1–S5).
func Experiments() []Experiment { return sim.All() }

// RunExperiment runs one experiment by ID.
func RunExperiment(id string, cfg ExperimentConfig) ([]*Table, error) {
	e, ok := sim.ByID(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(cfg)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string { return "wdm: unknown experiment " + string(e) }

// PriorityScheduler is the strict-priority QoS extension (the paper's
// Section VI future work): classes scheduled in descending priority, each
// on the channels left by higher classes.
type PriorityScheduler = core.PriorityScheduler

// NewPriorityScheduler builds a strict-priority scheduler around the
// model's exact algorithm.
func NewPriorityScheduler(conv Conversion) (*PriorityScheduler, error) {
	return core.NewPriorityScheduler(conv)
}

// NewParallelScheduler builds the parallel Break-and-First-Available
// variant the paper sketches in Section IV-B: d concurrent workers, one
// per candidate breaking edge, with an O(k) critical path. The workers are
// persistent goroutines (started on first Schedule, allocation-free per
// call); release them with CloseScheduler when done.
func NewParallelScheduler(conv Conversion) (Scheduler, error) {
	return core.NewParallelBreakFirstAvailable(conv)
}

// NewMultiBreakScheduler builds the generalized Section IV-C trade-off:
// try the given breaking positions (1-based, within [1, d]) and keep the
// best matching — one position is the O(k) DeltaBreak, all d positions the
// exact O(dk) algorithm. The result is within
// min over tried δ of max{δ−1, d−δ} of optimal.
func NewMultiBreakScheduler(conv Conversion, deltas []int) (Scheduler, error) {
	return core.NewMultiBreak(conv, deltas)
}

// Series is a named (x, y) sequence — one figure line.
type Series = metrics.Series

// PlotASCII renders series as an ASCII chart with auto-scaled axes and a
// marker legend; the textual form of the repository's figures.
func PlotASCII(width, height int, series ...*Series) string {
	return metrics.Plot(width, height, series...)
}

// AsyncConfig parameterizes the asynchronous (wavelength routing) mode of
// Section I: Poisson connection arrivals at one output fiber, exponential
// holds, FCFS channel assignment.
type AsyncConfig = async.Config

// AsyncStats reports an asynchronous run.
type AsyncStats = async.Stats

// Asynchronous channel assignment policies.
const (
	// FirstFit takes the first free window channel.
	FirstFit = async.FirstFit
	// RandomFit takes a uniformly random free window channel.
	RandomFit = async.RandomFit
)

// RunAsync simulates the asynchronous mode for the given number of
// connection arrivals.
func RunAsync(cfg AsyncConfig, arrivals int) (AsyncStats, error) {
	return async.Run(cfg, arrivals)
}

// PathConfig parameterizes the multi-hop wavelength-routing simulation:
// connections traverse Hops consecutive links of a Links-long chain, with
// limited range conversion at every node (the paper's Section I
// wavelength-continuity motivation).
type PathConfig = pathsim.Config

// PathStats reports a multi-hop run.
type PathStats = pathsim.Stats

// PathNetwork is the channel occupancy state of a chain, for manual
// routing scenarios.
type PathNetwork = pathsim.Network

// NewPathNetwork builds an idle chain of links.
func NewPathNetwork(conv Conversion, links int) (*PathNetwork, error) {
	return pathsim.NewNetwork(conv, links)
}

// RunPath simulates Poisson connection arrivals over the chain.
func RunPath(cfg PathConfig, arrivals int) (PathStats, error) {
	return pathsim.Run(cfg, arrivals)
}

// ErlangB returns the M/M/c/c blocking probability at a offered Erlangs —
// the exact model for full range conversion in the asynchronous mode.
func ErlangB(c int, a float64) (float64, error) { return analysis.ErlangB(c, a) }

// FullRangeLoss returns the exact slotwise loss of full range conversion
// under uniform Bernoulli traffic (synchronous mode).
func FullRangeLoss(n, k int, load float64) (float64, error) {
	return analysis.FullRangeLoss(n, k, load)
}

// NoConversionLoss returns the exact slotwise loss without conversion
// (d = 1) under uniform Bernoulli traffic.
func NoConversionLoss(n, k int, load float64) (float64, error) {
	return analysis.NoConversionLoss(n, k, load)
}
