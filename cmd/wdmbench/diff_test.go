package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchJSON renders a minimal saved benchmark record with one engine table.
func benchJSON(p50, p95, max, mean string) string {
	return fmt.Sprintf(`{
  "quick": false,
  "results": [{
    "id": "engine",
    "title": "Engine run-time metrics",
    "tables": [{
      "Title": "Engine run-time metrics",
      "Header": ["mode", "slot p50", "slot p95", "slot max", "slot mean", "allocs/slot"],
      "Rows": [["sequential", %q, %q, %q, %q, "0.00"]],
      "Notes": []
    }]
  }]
}`, p50, p95, max, mean)
}

func writeBench(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func runDiffArgs(t *testing.T, base, against string, extra ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	args := append([]string{"-diff", "-baseline", base, "-against", against}, extra...)
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestDiffNoRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "BENCH_0.json", benchJSON("60µs", "120µs", "2ms", "50µs"))
	against := writeBench(t, dir, "BENCH_1.json", benchJSON("55µs", "110µs", "3ms", "48µs"))
	code, out, errb := runDiffArgs(t, base, against)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "no regressions") {
		t.Fatalf("missing summary:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Fatalf("spurious regression:\n%s", out)
	}
}

func TestDiffDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "BENCH_0.json", benchJSON("60µs", "120µs", "2ms", "50µs"))
	// p95 blows past both gates: 120µs -> 600µs is 5x and +480µs.
	against := writeBench(t, dir, "BENCH_1.json", benchJSON("60µs", "600µs", "2ms", "50µs"))
	code, out, _ := runDiffArgs(t, base, against)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "slot p95") {
		t.Fatalf("regression not attributed to slot p95:\n%s", out)
	}
}

// TestDiffRespectsMinDelta: a large ratio on a tiny absolute delta is
// noise, not a regression — the whole point of the -mindelta floor.
func TestDiffRespectsMinDelta(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "BENCH_0.json", benchJSON("10µs", "20µs", "2ms", "15µs"))
	against := writeBench(t, dir, "BENCH_1.json", benchJSON("50µs", "90µs", "2ms", "70µs"))
	code, out, _ := runDiffArgs(t, base, against) // deltas all < default 100µs floor
	if code != 0 {
		t.Fatalf("sub-floor deltas flagged: exit %d\n%s", code, out)
	}
	// Tighten the floor and the same record must fail.
	code, out, _ = runDiffArgs(t, base, against, "-mindelta", "10us")
	if code != 1 {
		t.Fatalf("exit %d with 10µs floor, want 1:\n%s", code, out)
	}
}

// TestDiffSkipsSlotMax: a single worst outlier must never gate.
func TestDiffSkipsSlotMax(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "BENCH_0.json", benchJSON("60µs", "120µs", "1ms", "50µs"))
	against := writeBench(t, dir, "BENCH_1.json", benchJSON("60µs", "120µs", "500ms", "50µs"))
	code, out, _ := runDiffArgs(t, base, against)
	if code != 0 {
		t.Fatalf("slot max gated: exit %d\n%s", code, out)
	}
}

func TestDiffThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "BENCH_0.json", benchJSON("60µs", "120µs", "2ms", "500µs"))
	against := writeBench(t, dir, "BENCH_1.json", benchJSON("60µs", "120µs", "2ms", "800µs")) // +60%, +300µs
	if code, out, _ := runDiffArgs(t, base, against); code != 0 {
		t.Fatalf("+60%% tripped the default 100%% threshold:\n%s", out)
	}
	if code, out, _ := runDiffArgs(t, base, against, "-threshold", "0.5"); code != 1 {
		t.Fatalf("+60%% passed a 50%% threshold:\n%s", out)
	}
}

// TestDiffToleratesShapeMismatch: extra rows or tables on either side are
// noted and skipped, never fatal — the record evolves between sessions.
func TestDiffToleratesShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "BENCH_0.json", benchJSON("60µs", "120µs", "2ms", "50µs"))
	against := writeBench(t, dir, "BENCH_1.json", strings.Replace(
		benchJSON("60µs", "120µs", "2ms", "50µs"),
		`["sequential"`, `["worker-pool", "1µs", "1µs", "1µs", "1µs", "0"], ["sequential"`, 1))
	code, out, _ := runDiffArgs(t, base, against)
	if code != 0 {
		t.Fatalf("new row broke the diff: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "note: row \"worker-pool\" has no baseline") {
		t.Fatalf("missing shape-mismatch note:\n%s", out)
	}
}

func TestDiffDiscoversLatest(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "BENCH_0.json", benchJSON("60µs", "120µs", "2ms", "50µs"))
	writeBench(t, dir, "BENCH_1.json", benchJSON("59µs", "119µs", "2ms", "49µs"))
	writeBench(t, dir, "BENCH_2.json", benchJSON("58µs", "118µs", "2ms", "48µs"))
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	var out, errb bytes.Buffer
	if code := run([]string{"-diff"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "BENCH_2.json") {
		t.Fatalf("did not pick the latest record:\n%s", out.String())
	}
}

func TestDiffErrors(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var out, errb bytes.Buffer
	if code := run([]string{"-diff"}, &out, &errb); code != 1 {
		t.Fatalf("no records: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "bench-save") {
		t.Fatalf("error does not point at bench-save: %s", errb.String())
	}

	// A record with no duration cells in common is an error, not a pass:
	// an empty comparison must not green-light the gate.
	base := writeBench(t, dir, "BENCH_0.json", benchJSON("a", "b", "c", "d"))
	against := writeBench(t, dir, "BENCH_1.json", benchJSON("e", "f", "g", "h"))
	out.Reset()
	errb.Reset()
	if code := run([]string{"-diff", "-baseline", base, "-against", against}, &out, &errb); code != 1 {
		t.Fatalf("empty comparison passed: exit %d\n%s", code, out.String())
	}
}
