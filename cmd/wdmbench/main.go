// Command wdmbench regenerates every table and figure of the reproduction
// (see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
// notes).
//
// Usage:
//
//	wdmbench                 # run every experiment, ASCII tables
//	wdmbench -exp P8         # one experiment
//	wdmbench -csv            # CSV output
//	wdmbench -quick          # reduced sizes (seconds instead of minutes)
//	wdmbench -list           # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	wdm "wdmsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams;
// it returns the process exit code. Extracted from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "", "experiment ID to run (default: all)")
		csv    = fs.Bool("csv", false, "emit CSV instead of ASCII tables")
		quick  = fs.Bool("quick", false, "reduced sweep sizes")
		list   = fs.Bool("list", false, "list experiments and exit")
		slots  = fs.Int("slots", 0, "simulation slots per data point (0 = default)")
		trials = fs.Int("trials", 0, "random trials per data point (0 = default)")
		seed   = fs.Uint64("seed", 0, "random seed (0 = default)")
		outDir = fs.String("o", "", "also write one CSV file per table into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range wdm.Experiments() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := wdm.ExperimentConfig{Quick: *quick, Slots: *slots, Trials: *trials, Seed: *seed}
	var toRun []wdm.Experiment
	if *exp == "" {
		toRun = wdm.Experiments()
	} else {
		for _, e := range wdm.Experiments() {
			if e.ID == *exp {
				toRun = []wdm.Experiment{e}
				break
			}
		}
		if len(toRun) == 0 {
			fmt.Fprintf(stderr, "wdmbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "wdmbench: %v\n", err)
			return 1
		}
	}
	for _, e := range toRun {
		fmt.Fprintf(stdout, "### %s — %s\n\n", e.ID, e.Title)
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "wdmbench: %s failed: %v\n", e.ID, err)
			return 1
		}
		for ti, t := range tables {
			if *csv {
				fmt.Fprintf(stdout, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.ASCII())
			}
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, ti)
				if err := os.WriteFile(filepath.Join(*outDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "wdmbench: writing %s: %v\n", name, err)
					return 1
				}
			}
		}
	}
	return 0
}
