// Command wdmbench regenerates every table and figure of the reproduction
// (see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
// notes).
//
// Usage:
//
//	wdmbench                 # run every experiment, ASCII tables
//	wdmbench -exp P8         # one experiment
//	wdmbench -csv            # CSV output
//	wdmbench -quick          # reduced sizes (seconds instead of minutes)
//	wdmbench -list           # list experiment IDs and titles
//	wdmbench -engine         # slot-engine run-time metrics (latency, allocs)
//	wdmbench -faults         # graceful-degradation study under converter faults
//	wdmbench -json           # structured JSON (perf-trajectory record; make bench-save)
//	wdmbench -validate       # verify a -json document read from stdin (CI gate)
//	wdmbench -diff           # compare the latest BENCH_<n>.json against BENCH_0.json
//
// -diff is the bench-regression gate (make bench-diff): it compares every
// duration cell of the newest saved benchmark record against the baseline,
// matching tables by experiment and index, rows by first cell and columns
// by header, and exits non-zero when any cell is worse by more than
// -threshold (fractional) and -mindelta (absolute) at once.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	wdm "wdmsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams;
// it returns the process exit code. Extracted from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "", "experiment ID to run (default: all)")
		csv     = fs.Bool("csv", false, "emit CSV instead of ASCII tables")
		jsonOut = fs.Bool("json", false, "emit one JSON document instead of ASCII tables (see make bench-save)")
		quick   = fs.Bool("quick", false, "reduced sweep sizes")
		list    = fs.Bool("list", false, "list experiments and exit")
		engine  = fs.Bool("engine", false, "report slot-engine run-time metrics instead of paper experiments")
		faults  = fs.Bool("faults", false, "report degraded-mode behavior under injected converter/channel faults")
		telem   = fs.Bool("telemetry", false, "run a short instrumented simulation and dump its Prometheus metrics")
		slots   = fs.Int("slots", 0, "simulation slots per data point (0 = default)")
		trials  = fs.Int("trials", 0, "random trials per data point (0 = default)")
		seed    = fs.Uint64("seed", 0, "random seed (0 = default)")
		outDir  = fs.String("o", "", "also write one CSV file per table into this directory")

		validate  = fs.Bool("validate", false, "read a -json document from stdin and verify its structure; non-zero exit when malformed")
		diff      = fs.Bool("diff", false, "compare the latest BENCH_<n>.json against the baseline; non-zero exit on regression")
		baseline  = fs.String("baseline", "", "baseline record for -diff (default BENCH_0.json)")
		against   = fs.String("against", "", "record to compare for -diff (default: highest-numbered BENCH_<n>.json, n >= 1)")
		threshold = fs.Float64("threshold", 1.0, "fractional slowdown that counts as a regression for -diff (1.0 = 2x)")
		minDelta  = fs.Duration("mindelta", 100*time.Microsecond, "absolute slowdown floor for -diff; smaller deltas are noise")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *validate {
		if err := runValidate(os.Stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "wdmbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *diff {
		regressions, err := runDiff(stdout, *baseline, *against, *threshold, *minDelta)
		if err != nil {
			fmt.Fprintf(stderr, "wdmbench: %v\n", err)
			return 1
		}
		if regressions > 0 {
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range wdm.Experiments() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := wdm.ExperimentConfig{Quick: *quick, Slots: *slots, Trials: *trials, Seed: *seed}

	if *jsonOut && (*csv || *telem) {
		fmt.Fprintln(stderr, "wdmbench: -json cannot combine with -csv or -telemetry")
		return 2
	}

	if *telem {
		if err := runTelemetryDump(stdout, cfg); err != nil {
			fmt.Fprintf(stderr, "wdmbench: telemetry dump failed: %v\n", err)
			return 1
		}
		return 0
	}

	if *engine || *faults {
		var (
			mode   string
			tables []*wdm.Table
			err    error
		)
		if *faults {
			mode = "faults"
			var t *wdm.Table
			if t, err = runFaultStudy(cfg); err == nil {
				tables = []*wdm.Table{t}
			}
		} else {
			mode = "engine"
			tables, err = runEngineStudy(cfg)
		}
		if err != nil {
			fmt.Fprintf(stderr, "wdmbench: %s study failed: %v\n", mode, err)
			return 1
		}
		switch {
		case *jsonOut:
			if err := writeBenchJSON(stdout, cfg, []benchGroup{{ID: mode, Title: tables[0].Title, Tables: tables}}); err != nil {
				fmt.Fprintf(stderr, "wdmbench: %v\n", err)
				return 1
			}
		case *csv:
			for _, t := range tables {
				fmt.Fprintf(stdout, "# %s\n%s\n", t.Title, t.CSV())
			}
		default:
			for _, t := range tables {
				fmt.Fprintln(stdout, t.ASCII())
			}
		}
		return 0
	}

	var toRun []wdm.Experiment
	if *exp == "" {
		toRun = wdm.Experiments()
	} else {
		for _, e := range wdm.Experiments() {
			if e.ID == *exp {
				toRun = []wdm.Experiment{e}
				break
			}
		}
		if len(toRun) == 0 {
			fmt.Fprintf(stderr, "wdmbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "wdmbench: %v\n", err)
			return 1
		}
	}
	return runExperiments(toRun, cfg, *csv, *jsonOut, *outDir, stdout, stderr)
}

// benchGroup is one experiment's worth of tables in the -json document.
type benchGroup struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Tables []*wdm.Table `json:"tables"`
}

// runValidate verifies a -json benchmark document read from r: it must
// parse, contain at least one result group, and every table must have a
// header with rows of matching width. This is the CI structured-output
// gate, replacing an inline python JSON check.
func runValidate(r io.Reader, stdout io.Writer) error {
	var doc struct {
		Quick   bool         `json:"quick"`
		Results []benchGroup `json:"results"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("parsing bench document: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after bench document")
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("bench document has no results")
	}
	var tables, cells int
	for _, g := range doc.Results {
		if g.ID == "" {
			return fmt.Errorf("result group %d has no id", tables)
		}
		if len(g.Tables) == 0 {
			return fmt.Errorf("result group %q has no tables", g.ID)
		}
		for _, t := range g.Tables {
			tables++
			if len(t.Header) == 0 {
				return fmt.Errorf("table %q in %q has no header", t.Title, g.ID)
			}
			if len(t.Rows) == 0 {
				return fmt.Errorf("table %q in %q has no rows", t.Title, g.ID)
			}
			for i, row := range t.Rows {
				if len(row) != len(t.Header) {
					return fmt.Errorf("table %q in %q: row %d has %d cells, header has %d",
						t.Title, g.ID, i, len(row), len(t.Header))
				}
				cells += len(row)
			}
		}
	}
	fmt.Fprintf(stdout, "bench document ok: %d groups, %d tables, %d cells\n",
		len(doc.Results), tables, cells)
	return nil
}

// writeBenchJSON emits the structured benchmark document -json and the
// make bench-save target consume: the run configuration plus every table,
// rows as strings exactly as the ASCII renderer would print them.
func writeBenchJSON(w io.Writer, cfg wdm.ExperimentConfig, groups []benchGroup) error {
	doc := struct {
		Quick   bool         `json:"quick"`
		Slots   int          `json:"slots,omitempty"`
		Trials  int          `json:"trials,omitempty"`
		Seed    uint64       `json:"seed,omitempty"`
		Results []benchGroup `json:"results"`
	}{cfg.Quick, cfg.Slots, cfg.Trials, cfg.Seed, groups}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func runExperiments(toRun []wdm.Experiment, cfg wdm.ExperimentConfig, csv, jsonOut bool, outDir string, stdout, stderr io.Writer) int {
	var groups []benchGroup
	for _, e := range toRun {
		if !jsonOut {
			fmt.Fprintf(stdout, "### %s — %s\n\n", e.ID, e.Title)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "wdmbench: %s failed: %v\n", e.ID, err)
			return 1
		}
		if jsonOut {
			groups = append(groups, benchGroup{ID: e.ID, Title: e.Title, Tables: tables})
			continue
		}
		for ti, t := range tables {
			if csv {
				fmt.Fprintf(stdout, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.ASCII())
			}
			if outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, ti)
				if err := os.WriteFile(filepath.Join(outDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "wdmbench: writing %s: %v\n", name, err)
					return 1
				}
			}
		}
	}
	if jsonOut {
		if err := writeBenchJSON(stdout, cfg, groups); err != nil {
			fmt.Fprintf(stderr, "wdmbench: %v\n", err)
			return 1
		}
	}
	return 0
}

// runEngineStudy measures the slot engine itself rather than the paper's
// traffic metrics: the engine-mode table (sequential loop vs worker pool)
// plus the word-parallel kernel table (scalar vs packed schedulers at
// large k on the contended hot-band workload).
func runEngineStudy(cfg wdm.ExperimentConfig) ([]*wdm.Table, error) {
	t, err := runEngineModes(cfg)
	if err != nil {
		return nil, err
	}
	kt, err := runKernelStudy(cfg)
	if err != nil {
		return nil, err
	}
	gt, err := runGrantStudy(cfg)
	if err != nil {
		return nil, err
	}
	return []*wdm.Table{t, kt, gt}, nil
}

// runEngineModes compares the sequential loop against the persistent
// worker pool on the same seeded workload: per-slot scheduling latency,
// steady-state allocation rate, and pool utilization.
func runEngineModes(cfg wdm.ExperimentConfig) (*wdm.Table, error) {
	const n, k, load = 16, 16, 0.9
	slots := 4000
	if cfg.Quick {
		slots = 500
	}
	if cfg.Slots > 0 {
		slots = cfg.Slots
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	conv, err := wdm.NewConversion(wdm.Circular, k, 1, 1)
	if err != nil {
		return nil, err
	}
	t := &wdm.Table{
		Title: fmt.Sprintf("Engine run-time metrics — N=%d, k=%d, circular(1,1), Bernoulli load %.1f, %d slots", n, k, load, slots),
		Header: []string{"mode", "slot p50", "slot p95", "slot max", "slot mean",
			"allocs/slot", "busiest port", "speedup"},
	}
	for _, mode := range []struct {
		name        string
		distributed bool
	}{{"sequential", false}, {"worker-pool", true}} {
		sw, err := wdm.NewSwitch(wdm.SwitchConfig{
			N: n, Conv: conv, Seed: seed, Distributed: mode.distributed,
		})
		if err != nil {
			return nil, err
		}
		gen, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{N: n, K: k, Seed: seed + 1}, load)
		if err != nil {
			return nil, err
		}
		st, err := sw.Run(gen, slots)
		if err != nil {
			return nil, err
		}
		es := st.Engine
		busiest := 0.0
		for o := range es.PortBusy {
			if f := es.PortBusyFraction(o); f > busiest {
				busiest = f
			}
		}
		allocs := "n/a"
		if es.AllocsPerSlot.Valid() {
			allocs = fmt.Sprintf("%.2f", es.AllocsPerSlot.Value())
		}
		t.AddRowf(mode.name,
			es.SlotLatency.Quantile(0.50), es.SlotLatency.Quantile(0.95),
			es.SlotLatency.Max(), es.SlotLatency.Mean(),
			allocs, fmt.Sprintf("%.2f", busiest), fmt.Sprintf("%.2f", es.Speedup()))
	}
	t.AddNote("allocs/slot is a process-global runtime.ReadMemStats delta: an upper bound on the engine's own rate.")
	t.AddNote("speedup = total port scheduling time / scheduling wall time; up to N for the worker pool.")
	return t, nil
}

// runKernelStudy measures the word-parallel scheduler kernels against the
// scalar reference at large k: the same switch and the same seeded
// hot-band workload (every packet on one of the first band wavelengths,
// all destined to one output fiber), with only Config.Scheduler differing
// between rows. The last column is the scalar/fast ratio of mean slot
// latency at the same k.
func runKernelStudy(cfg wdm.ExperimentConfig) (*wdm.Table, error) {
	const n, load, band, deg = 8, 0.9, 8, 20
	slots := 2000
	if cfg.Quick {
		slots = 300
	}
	if cfg.Slots > 0 {
		slots = cfg.Slots
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	t := &wdm.Table{
		Title: fmt.Sprintf("Word-parallel kernels — slot latency, N=%d, circular(%d,%d), hot-band load %.1f on %d wavelengths, %d slots",
			n, deg, deg, load, band, slots),
		Header: []string{"shape", "slot p50", "slot p95", "slot mean",
			"allocs/slot", "speedup vs scalar"},
	}
	for _, k := range []int{128, 256} {
		conv, err := wdm.NewConversion(wdm.Circular, k, deg, deg)
		if err != nil {
			return nil, err
		}
		var scalarMean time.Duration
		for _, sched := range []string{"exact", "fast"} {
			sw, err := wdm.NewSwitch(wdm.SwitchConfig{
				N: n, Conv: conv, Seed: seed, Scheduler: sched,
			})
			if err != nil {
				return nil, err
			}
			gen, err := wdm.NewHotBandTraffic(wdm.TrafficConfig{N: n, K: k, Seed: seed + 1}, load, 0, band)
			if err != nil {
				return nil, err
			}
			st, err := sw.Run(gen, slots)
			if err != nil {
				return nil, err
			}
			es := st.Engine
			mean := es.SlotLatency.Mean()
			speed := "1.00x" // the scalar row is its own reference
			if sched == "fast" {
				if mean > 0 {
					speed = fmt.Sprintf("%.2fx", float64(scalarMean)/float64(mean))
				}
			} else {
				scalarMean = mean
			}
			allocs := "n/a"
			if es.AllocsPerSlot.Valid() {
				allocs = fmt.Sprintf("%.2f", es.AllocsPerSlot.Value())
			}
			t.AddRowf(fmt.Sprintf("k=%d %s", k, sched),
				es.SlotLatency.Quantile(0.50), es.SlotLatency.Quantile(0.95),
				mean, allocs, speed)
		}
	}
	t.AddNote("scalar (exact) and fast rows run the identical seeded workload; their Stats are byte-identical, only the kernel differs.")
	return t, nil
}

// runFaultStudy sweeps per-slot converter failure probability on one
// interconnect shape and reports throughput alongside the degraded-mode
// statistics — the CLI face of experiment S13 (which sweeps conversion
// degrees instead).
func runFaultStudy(cfg wdm.ExperimentConfig) (*wdm.Table, error) {
	const n, k, load, repair = 8, 16, 0.9, 0.1
	slots := 4000
	if cfg.Quick {
		slots = 500
	}
	if cfg.Slots > 0 {
		slots = cfg.Slots
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	conv, err := wdm.NewConversion(wdm.Circular, k, 1, 1)
	if err != nil {
		return nil, err
	}
	t := &wdm.Table{
		Title: fmt.Sprintf("Graceful degradation — N=%d, k=%d, circular d=3, Bernoulli load %.1f, repair %.1f, %d slots",
			n, k, load, repair, slots),
		Header: []string{"p(conv fail)", "throughput", "loss", "healthy chans (mean)",
			"degraded slots", "lost grants", "killed conns"},
	}
	for _, p := range []float64{0, 0.001, 0.01, 0.05, 0.2} {
		var inj wdm.FaultInjector
		if p > 0 {
			inj, err = wdm.NewMarkovFaults(wdm.MarkovFaultConfig{
				N: n, K: k, Seed: seed + 0xfa17,
				ConverterFail: p, ConverterRepair: repair,
			})
			if err != nil {
				return nil, err
			}
		}
		sw, err := wdm.NewSwitch(wdm.SwitchConfig{N: n, Conv: conv, Seed: seed, Faults: inj})
		if err != nil {
			return nil, err
		}
		gen, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{
			N: n, K: k, Seed: seed + 1,
			Hold: wdm.HoldingTime{Mean: 2}, // multi-slot connections expose mid-hold kills
		}, load)
		if err != nil {
			return nil, err
		}
		st, err := sw.Run(gen, slots)
		if err != nil {
			return nil, err
		}
		healthy := float64(n * k)
		var degFrac float64
		var lost, killed int64
		if st.Fault != nil {
			healthy = st.Fault.MeanHealthyChannels()
			degFrac = st.Fault.DegradedFraction(st.Slots)
			lost = st.Fault.LostGrants.Value()
			killed = st.Fault.KilledConnections.Value()
		}
		t.AddRowf(fmt.Sprintf("%.3f", p),
			fmt.Sprintf("%.4f", st.Throughput(n, k)),
			fmt.Sprintf("%.4f", st.LossRate()),
			fmt.Sprintf("%.1f", healthy),
			fmt.Sprintf("%.1f%%", 100*degFrac),
			lost, killed)
	}
	t.AddNote("converter-failed channels still carry their own wavelength; schedulers stay exact on the degraded graph.")
	t.AddNote("lost grants: healthy-graph matching minus degraded matching, same instance, summed over ports and slots.")
	return t, nil
}

// runTelemetryDump runs one short instrumented simulation — registry and
// decision tracer attached, worker-pool engine, fault injection on — and
// dumps every registered metric in the Prometheus text format. Useful for
// eyeballing the full wdm_* metric surface without standing up a scraper.
func runTelemetryDump(stdout io.Writer, cfg wdm.ExperimentConfig) error {
	const n, k = 8, 16
	slots := cfg.Slots
	if slots == 0 {
		slots = 2000
		if cfg.Quick {
			slots = 200
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	conv, err := wdm.NewSymmetricConversion(wdm.Circular, k, 3)
	if err != nil {
		return err
	}
	faults, err := wdm.NewMarkovFaults(wdm.MarkovFaultConfig{
		N: n, K: k, Seed: seed + 1,
		ConverterFail: 0.005, ConverterRepair: 0.2,
	})
	if err != nil {
		return err
	}
	reg := wdm.NewTelemetryRegistry()
	sw, err := wdm.NewSwitch(wdm.SwitchConfig{
		N: n, Conv: conv, Seed: seed,
		Distributed: true, Faults: faults,
		Telemetry: reg,
		Trace:     wdm.NewDecisionTracer(n, 1<<12),
	})
	if err != nil {
		return err
	}
	gen, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{
		N: n, K: k, Seed: seed, Hold: wdm.HoldingTime{Mean: 2},
	}, 0.9)
	if err != nil {
		return err
	}
	if _, err := sw.Run(gen, slots); err != nil {
		return err
	}
	return wdm.WriteTelemetryPrometheus(stdout, reg)
}
