package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"

	wdm "wdmsched"
)

// benchDoc mirrors the writeBenchJSON layout for reading saved records.
type benchDoc struct {
	Quick   bool         `json:"quick"`
	Slots   int          `json:"slots"`
	Results []benchGroup `json:"results"`
}

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestBenchFile finds the highest-numbered BENCH_<n>.json with n >= 1 in
// dir — the newest point of the perf-trajectory record after bench-save.
func latestBenchFile(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", 0
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n < 1 {
			continue
		}
		if n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json with n >= 1 found; run `make bench-save` first")
	}
	return best, nil
}

func readBenchDoc(path string) (*benchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// tableKey identifies a table across records: group ID plus index within
// the group. Titles embed sweep sizes, so they only need to match when the
// run shapes do — the diff tolerates mismatches with a note instead.
type tableKey struct {
	group string
	index int
}

func indexTables(doc *benchDoc) map[tableKey]*wdm.Table {
	out := map[tableKey]*wdm.Table{}
	for _, g := range doc.Results {
		for i, t := range g.Tables {
			out[tableKey{g.ID, i}] = t
		}
	}
	return out
}

// runDiff compares the latest benchmark record against the baseline and
// reports every duration cell's movement. A cell regresses when the new
// value exceeds the old by more than threshold (fractional) AND by more
// than minDelta in absolute terms — the floor keeps microsecond noise on
// fast rows from tripping a ratio gate. The "slot max" column is skipped
// (a single worst outlier is not a trend). Returns the number of
// regressions; the caller turns that into the exit code.
func runDiff(stdout io.Writer, basePath, againstPath string, threshold float64, minDelta time.Duration) (int, error) {
	if basePath == "" {
		basePath = "BENCH_0.json"
	}
	if againstPath == "" {
		var err error
		if againstPath, err = latestBenchFile("."); err != nil {
			return 0, err
		}
	}
	base, err := readBenchDoc(basePath)
	if err != nil {
		return 0, err
	}
	against, err := readBenchDoc(againstPath)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(stdout, "baseline       %s (quick=%v)\n", basePath, base.Quick)
	fmt.Fprintf(stdout, "against        %s (quick=%v)\n", againstPath, against.Quick)
	fmt.Fprintf(stdout, "gate           regression = worse by >%.0f%% and >%v (slot max skipped)\n\n",
		100*threshold, minDelta)

	baseTables := indexTables(base)
	newTables := indexTables(against)
	keys := make([]tableKey, 0, len(newTables))
	for k := range newTables {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		return keys[i].index < keys[j].index
	})

	regressions, compared := 0, 0
	for _, k := range keys {
		nt := newTables[k]
		bt, ok := baseTables[k]
		if !ok {
			fmt.Fprintf(stdout, "note: table %s[%d] %q has no baseline; skipped\n", k.group, k.index, nt.Title)
			continue
		}
		r, c := diffTable(stdout, k, bt, nt, threshold, minDelta)
		regressions += r
		compared += c
	}
	for k, bt := range baseTables {
		if _, ok := newTables[k]; !ok {
			fmt.Fprintf(stdout, "note: baseline table %s[%d] %q missing from the new record\n", k.group, k.index, bt.Title)
		}
	}
	if compared == 0 {
		return 0, fmt.Errorf("no comparable duration cells between %s and %s", basePath, againstPath)
	}
	if regressions == 0 {
		fmt.Fprintf(stdout, "\nbench-diff: %d cells compared, no regressions\n", compared)
	} else {
		fmt.Fprintf(stdout, "\nbench-diff: %d cells compared, %d REGRESSED\n", compared, regressions)
	}
	return regressions, nil
}

// diffTable compares one table pair cell by cell: rows matched by first
// cell, columns by header name, and only cells that parse as durations in
// both records. Returns (regressions, cells compared).
func diffTable(stdout io.Writer, k tableKey, bt, nt *wdm.Table, threshold float64, minDelta time.Duration) (int, int) {
	baseCol := map[string]int{}
	for i, h := range bt.Header {
		baseCol[h] = i
	}
	baseRow := map[string][]string{}
	for _, row := range bt.Rows {
		if len(row) > 0 {
			baseRow[row[0]] = row
		}
	}
	fmt.Fprintf(stdout, "%s[%d] %s\n", k.group, k.index, nt.Title)
	regressions, compared := 0, 0
	for _, row := range nt.Rows {
		if len(row) == 0 {
			continue
		}
		brow, ok := baseRow[row[0]]
		if !ok {
			fmt.Fprintf(stdout, "  note: row %q has no baseline; skipped\n", row[0])
			continue
		}
		for ci := 1; ci < len(row) && ci < len(nt.Header); ci++ {
			col := nt.Header[ci]
			if col == "slot max" {
				continue
			}
			bi, ok := baseCol[col]
			if !ok || bi >= len(brow) {
				continue
			}
			newD, errN := time.ParseDuration(row[ci])
			oldD, errO := time.ParseDuration(brow[bi])
			if errN != nil || errO != nil {
				continue // not a latency cell in both records
			}
			compared++
			delta := newD - oldD
			pct := 0.0
			if oldD > 0 {
				pct = 100 * float64(delta) / float64(oldD)
			}
			mark := ""
			if float64(newD) > float64(oldD)*(1+threshold) && delta > minDelta {
				mark = "  <-- REGRESSION"
				regressions++
			}
			fmt.Fprintf(stdout, "  %-14s %-12s %12v -> %-12v %+7.1f%%%s\n",
				row[0], col, oldD, newD, pct, mark)
		}
	}
	return regressions, compared
}
