package main

import (
	"fmt"
	"net"
	"time"

	wdm "wdmsched"
	"wdmsched/internal/grant"
	"wdmsched/internal/metrics"
)

// runGrantStudy measures the grant-service serving path end to end over
// a loopback socket: an in-process Service on the sequential engine,
// driven closed-loop in fixed-size batches through the public client.
// The duration cells (batch round trip p50/p99, per-request mean) ride
// the same bench-diff gate as the engine tables, so a regression on the
// ingest/verdict hot path shows up in the perf trajectory next to the
// slot-latency ones.
func runGrantStudy(cfg wdm.ExperimentConfig) (*wdm.Table, error) {
	const n, k, batch = 8, 16, 64
	reqs := 20000
	if cfg.Quick {
		reqs = 2000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	conv, err := wdm.NewSymmetricConversion(wdm.Circular, k, 3)
	if err != nil {
		return nil, err
	}
	svc, err := grant.NewService(grant.Config{
		Switch:  wdm.SwitchConfig{N: n, Conv: conv, Scheduler: "exact", Seed: seed},
		Default: grant.Policy{Rate: 1e9, Burst: 1e6, Queue: 1 << 16},
		Resync:  1024,
		Tool:    "wdmbench",
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- svc.Serve(ln) }()
	defer svc.Close()

	c, err := grant.Dial(ln.Addr().String(), "bench")
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetRecvDeadline(time.Now().Add(2 * time.Minute))

	rtt := metrics.NewDurationHistogram()
	buf := make([]grant.Req, 0, batch)
	rng := seed
	next := func(m int) int { // xorshift; Math.rand-free and seed-stable
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(m))
	}
	var granted, rejected uint64
	start := time.Now()
	for id := 0; id < reqs; {
		buf = buf[:0]
		for len(buf) < batch && id < reqs {
			buf = append(buf, grant.Req{
				ID:   uint64(id),
				In:   uint32(next(n)),
				Wave: uint16(next(k)),
				Dest: uint32(next(n)),
				Dur:  uint16(1 + next(4)),
			})
			id++
		}
		sent := time.Now()
		if err := c.Submit(buf); err != nil {
			return nil, err
		}
		for seen := 0; seen < len(buf); {
			ev, err := c.Recv()
			if err != nil {
				return nil, err
			}
			for _, nt := range ev.Notices {
				if nt.Verdict.Granted() {
					granted++
				} else {
					rejected++
				}
				seen++
			}
		}
		rtt.Observe(time.Since(sent))
	}
	wall := time.Since(start)

	if err := c.Bye(); err != nil {
		return nil, err
	}
	var ledger *grant.Ledger
	for ledger == nil {
		ev, err := c.Recv()
		if err != nil {
			return nil, err
		}
		ledger = ev.Ledger
	}
	if !ledger.Balanced() || ledger.Submitted != uint64(reqs) {
		return nil, fmt.Errorf("grant study ledger inconsistent: %+v", *ledger)
	}

	t := &wdm.Table{
		Title: fmt.Sprintf("Grant service serving path — N=%d, k=%d, circular d=3, %d-request batches over loopback", n, k, batch),
		Header: []string{"mode", "requests", "batch rtt p50", "batch rtt p99", "per-request mean",
			"goodput req/s", "granted", "rejected"},
	}
	t.AddRowf("loopback closed-loop", reqs,
		rtt.Quantile(0.50), rtt.Quantile(0.99),
		wall/time.Duration(reqs),
		fmt.Sprintf("%.0f", float64(reqs)/wall.Seconds()),
		granted, rejected)
	t.AddNote("Closed loop: each batch waits for its verdicts, so the round trip includes ingest, admission, scheduling and verdict write-back.")
	t.AddNote("The session ledger reconciled against the client tally before the table was emitted.")
	return t, nil
}
