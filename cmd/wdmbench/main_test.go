package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"P1", "P10", "S10", "Fig. 2"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentASCII(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-exp", "P1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"### P1", "== Fig. 2", "λ0"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-csv", "-exp", "P1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "input,adjacency set") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("stderr missing diagnosis: %s", errb.String())
	}
}

func TestOutputDirectory(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-exp", "P1", "-o", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "P1_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "input,adjacency set") {
		t.Fatalf("CSV file content wrong: %s", data)
	}
	if _, err := os.Stat(filepath.Join(dir, "P1_1.csv")); err != nil {
		t.Fatal("second table file missing")
	}
}

func TestEngineStudy(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-engine", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Engine run-time metrics", "sequential", "worker-pool", "allocs/slot", "speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("engine study output missing %q:\n%s", want, out.String())
		}
	}
}

func TestEngineStudyCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-engine", "-quick", "-csv", "-slots", "100"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "mode,slot p50") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestFaultStudy(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-faults", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Graceful degradation", "p(conv fail)", "throughput", "lost grants", "killed conns"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("fault study output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFaultStudyCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-faults", "-quick", "-csv", "-slots", "100"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "p(conv fail),throughput") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestTelemetryDump(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-telemetry", "-quick"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"# TYPE wdm_offered_packets_total counter",
		"# TYPE wdm_engine_slot_latency_seconds histogram",
		"wdm_fault_lost_grants_total",
		"wdm_trace_events_emitted_total",
		"wdm_engine_distributed 1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("telemetry dump missing %q:\n%s", want, out.String())
		}
	}
}
