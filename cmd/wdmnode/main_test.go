package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	wdm "wdmsched"
)

// syncBuffer lets the test read run()'s log output while run is writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var telemetryAddrRE = regexp.MustCompile(`telemetry on http://([^ ]+) `)

// TestRunServesTelemetry boots a node on ephemeral ports, scrapes its
// telemetry endpoints, and shuts it down with the same signal systemd
// would send. The bound addresses are recovered from the startup log.
func TestRunServesTelemetry(t *testing.T) {
	var buf syncBuffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0"}, &buf) }()

	var httpAddr string
	deadline := time.Now().Add(5 * time.Second)
	for httpAddr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("node never logged its telemetry address:\n%s", buf.String())
		}
		if m := telemetryAddrRE.FindStringSubmatch(buf.String()); m != nil {
			httpAddr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + httpAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"wdm_node_frames_received_total", "wdm_node_schedule_frames_total", "wdm_node_sessions_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s:\n%s", want, metrics)
		}
	}
	spans := get("/spans")
	if !strings.Contains(spans, `"role":"node"`) {
		t.Errorf("/spans missing node meta line: %q", spans)
	}

	// signal.Notify in run() owns SIGTERM, so signalling ourselves shuts
	// the node down instead of killing the test binary.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d:\n%s", code, buf.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("node ignored SIGTERM:\n%s", buf.String())
	}
}

// TestRunFlagValidation covers the argument error paths.
func TestRunFlagValidation(t *testing.T) {
	var buf syncBuffer
	if code := run([]string{"-bogus"}, &buf); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	buf = syncBuffer{}
	if code := run([]string{"-spancap", "0"}, &buf); code != 2 {
		t.Fatalf("zero spancap: exit %d, want 2", code)
	}
	buf = syncBuffer{}
	if code := run([]string{"-listen", "127.0.0.1:0", "-http", "256.0.0.1:bad"}, &buf); code != 1 {
		t.Fatalf("bad http addr: exit %d, want 1", code)
	}
}

// TestSigquitBundle boots a node, sends SIGQUIT, and expects a
// flight-recorder bundle on disk while the node keeps serving — only the
// later SIGTERM shuts it down.
func TestSigquitBundle(t *testing.T) {
	bundle := filepath.Join(t.TempDir(), "node.tgz")
	var buf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-bundle", bundle}, &buf)
	}()

	// Wait for the serve log: signal handlers are registered before it,
	// so from here SIGQUIT is owned by run(), not the Go runtime.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "serving on") {
		if time.Now().After(deadline) {
			t.Fatalf("node never started:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(bundle); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bundle never written:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	b, err := wdm.ReadIncidentBundleFile(bundle)
	if err != nil {
		t.Fatalf("bundle does not decode: %v", err)
	}
	if b.Manifest.Tool != "wdmnode" || b.Manifest.Trigger != "sigquit" {
		t.Errorf("manifest %+v", b.Manifest)
	}
	raw, err := b.File("node.metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "wdm_node_") {
		t.Errorf("metric scrape carries no wdm_node_* series:\n%s", raw)
	}
	if !b.Has("node.spans") {
		t.Errorf("bundle missing node.spans (has %v)", b.Names())
	}

	// The dump must not have stopped the node.
	select {
	case code := <-done:
		t.Fatalf("node exited %d after SIGQUIT:\n%s", code, buf.String())
	default:
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d:\n%s", code, buf.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("node ignored SIGTERM:\n%s", buf.String())
	}
}
