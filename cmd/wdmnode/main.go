// Command wdmnode runs one cluster worker node: a stateless matching
// server that hosts the per-output-fiber schedulers for whatever ports a
// wdmsim -cluster controller assigns it, and answers batched per-slot
// schedule RPCs over TCP or a unix socket.
//
// Start two nodes and a clustered simulation against them:
//
//	wdmnode -listen 127.0.0.1:9301 &
//	wdmnode -listen 127.0.0.1:9302 &
//	wdmsim -cluster 127.0.0.1:9301,127.0.0.1:9302 -n 16 -k 16 -load 0.9
//
// Unix sockets: -listen unix:/tmp/wdmnode.sock (any address containing a
// slash is treated as a socket path).
//
// Observability: -http binds a telemetry endpoint exposing the node's own
// wdm_node_* metrics (Prometheus text at /metrics, JSON at /snapshot,
// expvar, pprof) plus the node-side span dump at /spans — fetch it after a
// traced run and merge with the controller's -spandump output:
//
//	wdmnode -listen 127.0.0.1:9301 -http 127.0.0.1:9391 &
//	wdmsim -cluster 127.0.0.1:9301 ... -spandump ctrl.spans
//	curl -s http://127.0.0.1:9391/spans > node0.spans
//	wdmtrace -merge ctrl.spans node0.spans
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	wdm "wdmsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run executes the command; extracted from main for testability.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:9301", "address to serve on: host:port for TCP, unix:/path for a unix socket")
		httpAddr = fs.String("http", "", "optional telemetry address serving wdm_node_* /metrics, /snapshot, /spans, expvar and pprof")
		spanCap  = fs.Int("spancap", 1<<14, "spans retained per lane for the /spans dump (newest win)")
		verbose  = fs.Bool("v", false, "log session lifecycle events")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *spanCap <= 0 {
		fmt.Fprintln(stderr, "wdmnode: -spancap must be positive")
		return 2
	}

	logger := log.New(stderr, "wdmnode: ", log.LstdFlags)
	network, address := "tcp", *listen
	if rest, ok := strings.CutPrefix(address, "unix:"); ok {
		network, address = "unix", rest
	} else if strings.Contains(address, "/") {
		network = "unix"
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		fmt.Fprintf(stderr, "wdmnode: %v\n", err)
		return 1
	}
	var cfg wdm.ClusterNodeConfig
	if *verbose {
		cfg.Logf = logger.Printf
	}
	if *httpAddr != "" {
		cfg.Telemetry = wdm.NewTelemetryRegistry()
		cfg.Spans = wdm.NewSpanTracer(1, *spanCap)
	}
	node := wdm.NewClusterNode(cfg)
	if *httpAddr != "" {
		srv, err := wdm.ServeTelemetry(*httpAddr, cfg.Telemetry)
		if err != nil {
			fmt.Fprintf(stderr, "wdmnode: %v\n", err)
			return 1
		}
		defer srv.Close()
		srv.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := node.WriteSpans(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		logger.Printf("telemetry on http://%s (metrics, snapshot, spans, pprof)", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Printf("received %v, shutting down", s)
		node.Close()
	}()

	logger.Printf("serving on %s://%s", network, ln.Addr())
	if err := node.Serve(ln); err != nil {
		fmt.Fprintf(stderr, "wdmnode: %v\n", err)
		return 1
	}
	return 0
}
