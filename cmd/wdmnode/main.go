// Command wdmnode runs one cluster worker node: a stateless matching
// server that hosts the per-output-fiber schedulers for whatever ports a
// wdmsim -cluster controller assigns it, and answers batched per-slot
// schedule RPCs over TCP or a unix socket.
//
// Start two nodes and a clustered simulation against them:
//
//	wdmnode -listen 127.0.0.1:9301 &
//	wdmnode -listen 127.0.0.1:9302 &
//	wdmsim -cluster 127.0.0.1:9301,127.0.0.1:9302 -n 16 -k 16 -load 0.9
//
// Unix sockets: -listen unix:/tmp/wdmnode.sock (any address containing a
// slash is treated as a socket path).
//
// Observability: -http binds a telemetry endpoint exposing the node's own
// wdm_node_* metrics (Prometheus text at /metrics, JSON at /snapshot,
// expvar, pprof) plus the node-side span dump at /spans — fetch it after a
// traced run and merge with the controller's -spandump output:
//
//	wdmnode -listen 127.0.0.1:9301 -http 127.0.0.1:9391 &
//	wdmsim -cluster 127.0.0.1:9301 ... -spandump ctrl.spans
//	curl -s http://127.0.0.1:9391/spans > node0.spans
//	wdmtrace -merge ctrl.spans node0.spans
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	wdm "wdmsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run executes the command; extracted from main for testability.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:9301", "address to serve on: host:port for TCP, unix:/path for a unix socket")
		httpAddr = fs.String("http", "", "optional telemetry address serving wdm_node_* /metrics, /snapshot, /spans, expvar and pprof")
		spanCap  = fs.Int("spancap", 1<<14, "spans retained per lane for the /spans dump (newest win)")
		bundle   = fs.String("bundle", "wdmnode.incident.tgz", "flight-recorder bundle path (dumped on SIGQUIT without stopping the node; empty disables)")
		verbose  = fs.Bool("v", false, "log session lifecycle events")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *spanCap <= 0 {
		fmt.Fprintln(stderr, "wdmnode: -spancap must be positive")
		return 2
	}

	logger := log.New(stderr, "wdmnode: ", log.LstdFlags)
	network, address := "tcp", *listen
	if rest, ok := strings.CutPrefix(address, "unix:"); ok {
		network, address = "unix", rest
	} else if strings.Contains(address, "/") {
		network = "unix"
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		fmt.Fprintf(stderr, "wdmnode: %v\n", err)
		return 1
	}
	var cfg wdm.ClusterNodeConfig
	if *verbose {
		cfg.Logf = logger.Printf
	}
	// The registry and span tracer are always on — they feed the SIGQUIT
	// flight-recorder bundle even when no -http endpoint serves them.
	cfg.Telemetry = wdm.NewTelemetryRegistry()
	cfg.Spans = wdm.NewSpanTracer(1, *spanCap)
	node := wdm.NewClusterNode(cfg)
	var shuttingDown atomic.Bool
	if *httpAddr != "" {
		srv, err := wdm.ServeTelemetry(*httpAddr, cfg.Telemetry)
		if err != nil {
			fmt.Fprintf(stderr, "wdmnode: %v\n", err)
			return 1
		}
		defer srv.Close()
		// /readyz goes not-ready the moment a shutdown signal lands, so
		// controllers probing the fleet stop assigning ports to a node
		// that is about to close; /healthz stays pure liveness.
		srv.SetReadiness(func() bool { return !shuttingDown.Load() })
		srv.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := node.WriteSpans(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		logger.Printf("telemetry on http://%s (metrics, snapshot, spans, pprof)", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		shuttingDown.Store(true)
		logger.Printf("received %v, shutting down", s)
		node.Close()
	}()

	// SIGQUIT dumps a flight-recorder bundle — the node's wdm_node_*
	// metric scrape plus its span rings — and the node keeps serving.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		n := 0
		for range quit {
			path := *bundle
			if n > 0 {
				path = strings.TrimSuffix(path, ".tgz") + fmt.Sprintf("-%d.tgz", n)
			}
			n++
			if err := dumpNodeBundle(path, node, cfg.Telemetry); err != nil {
				logger.Printf("dumping flight-recorder bundle: %v", err)
				continue
			}
			logger.Printf("flight-recorder bundle (still serving): %s", path)
		}
	}()

	logger.Printf("serving on %s://%s", network, ln.Addr())
	if err := node.Serve(ln); err != nil {
		fmt.Fprintf(stderr, "wdmnode: %v\n", err)
		return 1
	}
	return 0
}

// dumpNodeBundle writes the node's observable state — its wdm_node_*
// metric scrape and span rings — as one incident bundle.
func dumpNodeBundle(path string, node *wdm.ClusterNode, reg *wdm.TelemetryRegistry) error {
	if path == "" {
		return nil
	}
	w := wdm.NewIncidentBundleWriter("wdmnode", "sigquit", 0)
	if err := w.AddFunc("node.metrics", func(out io.Writer) error {
		return wdm.WriteTelemetryPrometheus(out, reg)
	}); err != nil {
		return err
	}
	if err := w.AddFunc("node.spans", node.WriteSpans); err != nil {
		return err
	}
	return w.WriteFile(path)
}
