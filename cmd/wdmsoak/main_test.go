package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	wdm "wdmsched"
	"wdmsched/internal/soak"
	"wdmsched/internal/telemetry"
)

func runSoak(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSoakCleanAllEngines is the acceptance pipeline in miniature: all
// three engines in lockstep under Markov channel/converter faults and
// cluster transport faults, with span dumps written and checked — zero
// violations, exit 0.
func TestSoakCleanAllEngines(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	bundle := filepath.Join(dir, "incident.tgz")
	code, out, errb := runSoak(t,
		"-slots", "1500", "-resync", "250", "-n", "4", "-k", "8",
		"-engines", "sequential,distributed,cluster",
		"-spandir", dir, "-report", report, "-bundle", bundle)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb, out)
	}
	for _, want := range []string{"soak           ok", "containment", "totals"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The first output line is the full effective config as JSON, so any
	// run is reproducible from its log alone.
	first, _, _ := strings.Cut(out, "\n")
	rawCfg, ok := strings.CutPrefix(first, "config         ")
	if !ok {
		t.Fatalf("first line is not the effective config: %q", first)
	}
	var cfg soakConfig
	if err := json.Unmarshal([]byte(rawCfg), &cfg); err != nil {
		t.Fatalf("config line is not JSON: %v\n%s", err, rawCfg)
	}
	if cfg.Seed != 1 || cfg.Slots != 1500 || cfg.Resync != 250 || len(cfg.Engines) != 3 {
		t.Errorf("config line incomplete: %+v", cfg)
	}
	if _, err := os.Stat(report); !os.IsNotExist(err) {
		t.Errorf("clean run wrote an incident report: %v", err)
	}
	if _, err := os.Stat(bundle); !os.IsNotExist(err) {
		t.Errorf("clean run wrote an incident bundle: %v", err)
	}
	for _, name := range []string{"ctrl.spans", "node0.spans", "node1.spans"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("span dump %s not written: %v", name, err)
		}
	}
}

func readIncident(t *testing.T, path string) incident {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("incident report not written: %v", err)
	}
	var inc incident
	if err := json.Unmarshal(raw, &inc); err != nil {
		t.Fatalf("incident report is not JSON: %v\n%s", err, raw)
	}
	return inc
}

// TestSoakCatchesLedgerBug proves the checker fires: a deliberately
// corrupted grant ledger must be caught at the first resync point with a
// non-zero exit and a parseable JSON incident report.
func TestSoakCatchesLedgerBug(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	bundle := filepath.Join(dir, "incident.tgz")
	code, out, errb := runSoak(t,
		"-slots", "4000", "-resync", "500", "-n", "4", "-k", "8",
		"-engines", "sequential,distributed", "-chaosbug", "ledger",
		"-report", report, "-bundle", bundle)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out, errb)
	}
	inc := readIncident(t, report)
	if inc.Invariant != "ledger" {
		t.Errorf("invariant %q, want ledger", inc.Invariant)
	}
	if inc.Slot <= 0 || inc.Detail == "" || inc.Config.Seed != 1 {
		t.Errorf("incomplete incident: %+v", inc)
	}
	if !strings.Contains(errb, "INVARIANT VIOLATION") {
		t.Errorf("stderr missing violation banner: %s", errb)
	}

	// Capture → replay → reproduce, end to end: the dumped bundle alone
	// must deterministically re-create the violation.
	b, err := telemetry.ReadBundleFile(bundle)
	if err != nil {
		t.Fatalf("incident bundle does not decode: %v", err)
	}
	if b.Manifest.Trigger != "violation" {
		t.Errorf("bundle trigger %q, want violation", b.Manifest.Trigger)
	}
	rep, err := soak.Replay(b, soak.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("replay did not reproduce the violation: %v", err)
	}
}

// TestSoakCatchesEquivalenceBug: perturbing one engine's arrival seed
// must surface as an equivalence violation between engines.
func TestSoakCatchesEquivalenceBug(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	code, out, errb := runSoak(t,
		"-slots", "4000", "-resync", "500", "-n", "4", "-k", "8",
		"-engines", "sequential,distributed", "-chaosbug", "equivalence",
		"-report", report, "-bundle", filepath.Join(dir, "incident.tgz"))
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if inc := readIncident(t, report); inc.Invariant != "equivalence" {
		t.Errorf("invariant %q, want equivalence", inc.Invariant)
	}
}

// TestSoakBulkMakespan: the closed-loop open-shop workload drains, stops
// on its own, and reports the makespan against the analytic lower bound.
func TestSoakBulkMakespan(t *testing.T) {
	code, out, errb := runSoak(t,
		"-workload", "bulk", "-bulkunits", "5000", "-n", "4", "-k", "8", "-resync", "250",
		"-engines", "sequential,distributed",
		"-report", filepath.Join(t.TempDir(), "report.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb, out)
	}
	if !strings.Contains(out, "bulk drained") || !strings.Contains(out, "makespan") {
		t.Errorf("bulk output incomplete:\n%s", out)
	}
}

// TestSoakTraceReplay records a compressed trace and soaks both local
// engines on its replay.
func TestSoakTraceReplay(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "soak.ctrace")
	gen, err := wdm.NewHeavyTailTraffic(wdm.TrafficConfig{N: 4, K: 8, Seed: 3}, 0.6, 1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := wdm.NewCompressedTraceWriter(f, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf []wdm.Packet
	for s := 0; s < 2000; s++ {
		buf = gen.Generate(s, buf[:0])
		if err := tw.WriteSlot(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errb := runSoak(t,
		"-workload", "trace", "-trace", tracePath, "-slots", "2000", "-resync", "250",
		"-n", "4", "-k", "8", "-engines", "sequential,distributed",
		"-report", filepath.Join(dir, "report.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb, out)
	}
	if !strings.Contains(out, "ctrace(N=4,k=8)") {
		t.Errorf("output does not name the trace workload:\n%s", out)
	}
}

// TestSoakTimeBudget: a wall-clock bound alone must terminate the run.
func TestSoakTimeBudget(t *testing.T) {
	code, out, errb := runSoak(t,
		"-time", "300ms", "-n", "4", "-k", "8", "-resync", "200",
		"-engines", "sequential",
		"-report", filepath.Join(t.TempDir(), "report.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb, out)
	}
	if !strings.Contains(out, "time budget") {
		t.Errorf("output missing stop reason:\n%s", out)
	}
}

// TestSoakUsageErrors: malformed invocations exit 2 without running.
func TestSoakUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"no budget":        {"-workload", "heavytail"},
		"bad engine":       {"-slots", "100", "-engines", "quantum"},
		"bad workload":     {"-slots", "100", "-workload", "fractal"},
		"bad chaosbug":     {"-slots", "100", "-chaosbug", "gremlins"},
		"equiv one engine": {"-slots", "100", "-engines", "sequential", "-chaosbug", "equivalence"},
		"trace sans path":  {"-slots", "100", "-workload", "trace"},
		"bulk diurnal":     {"-workload", "bulk", "-diurnal", "100"},
		"bad resync":       {"-slots", "100", "-resync", "0"},
	}
	for name, args := range cases {
		if code, out, _ := runSoak(t, args...); code != 2 {
			t.Errorf("%s: exit %d, want 2\n%s", name, code, out)
		}
	}
}
