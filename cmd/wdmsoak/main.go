// Command wdmsoak is the long-run chaos harness: it composes any workload
// generator with Markov channel/converter faults and cluster transport
// faults, drives every requested engine (sequential, distributed, cluster)
// in lockstep on identical arrivals, and continuously checks the
// invariants the engines guarantee:
//
//   - conservation — offered = granted + input-blocked + output-dropped,
//     and the per-input / per-channel partitions sum to their totals;
//   - ledger — the grants observed slot by slot through LastGrants
//     reconcile exactly with the run statistics;
//   - equivalence — all engines produce identical snapshots at every
//     resync point (the cluster engine remains bit-identical even while
//     transport faults force retries and local fallback);
//   - span containment — after a traced cluster run, node spans sit inside
//     their clock-corrected RPC windows and the stage attribution explains
//     slot latency (the wdmtrace -check logic, shared via
//     internal/spancheck).
//
// The run is bounded by a slot budget (-slots), a wall-clock budget
// (-time), or both; on the first violation wdmsoak writes a JSON incident
// report to -report and exits 1. A clean soak exits 0.
//
// Usage:
//
//	wdmsoak -slots 1000000 -workload heavytail -engines sequential,distributed,cluster
//	wdmsoak -time 30m -workload selfsimilar -diurnal 100000 -spandir artifacts/
//	wdmsoak -slots 200000 -workload bulk -bulkunits 100000
//	wdmsoak -slots 100000 -workload trace -trace big.ctrace
//
// -chaosbug deliberately corrupts the harness itself ("ledger" drops
// grants from the reconciliation ledger, "equivalence" perturbs one
// engine's arrival seed) to prove the checker catches real accounting
// bugs; it exists for the harness's own tests and CI smoke only.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	wdm "wdmsched"
	"wdmsched/internal/spancheck"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// soakConfig is the parsed flag set, embedded verbatim in incident
// reports so a failure is reproducible from the artifact alone.
type soakConfig struct {
	Engines   []string      `json:"engines"`
	Workload  string        `json:"workload"`
	N         int           `json:"n"`
	K         int           `json:"k"`
	Kind      string        `json:"kind"`
	D         int           `json:"d"`
	Scheduler string        `json:"scheduler"`
	Load      float64       `json:"load"`
	Alpha     float64       `json:"alpha"`
	Zipf      float64       `json:"zipf"`
	Users     int           `json:"users"`
	Diurnal   int           `json:"diurnal_period"`
	Floor     float64       `json:"diurnal_floor"`
	Hold      float64       `json:"hold"`
	BulkUnits int           `json:"bulk_units"`
	Trace     string        `json:"trace,omitempty"`
	Slots     int64         `json:"slots"`
	Time      time.Duration `json:"time_ns"`
	Resync    int64         `json:"resync"`
	Seed      uint64        `json:"seed"`
	Nodes     int           `json:"nodes"`

	ConvFail   float64       `json:"conv_fail"`
	ConvRepair float64       `json:"conv_repair"`
	Dark       float64       `json:"chan_dark"`
	Restore    float64       `json:"chan_restore"`
	PortDown   float64       `json:"port_down"`
	PortUp     float64       `json:"port_up"`
	TDrop      float64       `json:"transport_drop"`
	TDup       float64       `json:"transport_dup"`
	TDelay     float64       `json:"transport_delay"`
	RPCTimeout time.Duration `json:"rpc_timeout_ns"`

	ChaosBug string `json:"chaosbug,omitempty"`
}

// incident is the JSON report written on the first invariant violation.
type incident struct {
	Invariant string     `json:"invariant"`
	Engine    string     `json:"engine,omitempty"`
	Slot      int64      `json:"slot"`
	Detail    string     `json:"detail"`
	Wall      string     `json:"wall_clock"`
	Config    soakConfig `json:"config"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmsoak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		enginesFlag = fs.String("engines", "sequential,distributed,cluster", "comma-separated engines to run in lockstep")
		workload    = fs.String("workload", "heavytail", "workload: bernoulli, hotspot, bursty, heavytail, selfsimilar, bulk, trace")
		tracePath   = fs.String("trace", "", "compressed trace to replay (-workload trace)")
		n           = fs.Int("n", 8, "fibers per side")
		k           = fs.Int("k", 16, "wavelengths per fiber")
		kindFlag    = fs.String("kind", "circular", "conversion kind: circular, noncircular, full")
		d           = fs.Int("d", 3, "conversion degree (ignored for full)")
		scheduler   = fs.String("scheduler", "exact", "per-port scheduling algorithm")
		load        = fs.Float64("load", 0.7, "offered load per channel")
		alpha       = fs.Float64("alpha", 1.5, "Pareto tail index (heavytail/selfsimilar)")
		zipf        = fs.Float64("zipf", 0.8, "destination zipf exponent (heavytail)")
		users       = fs.Int("users", 0, "on/off users per fiber (selfsimilar; 0 = 12k)")
		diurnal     = fs.Int("diurnal", 0, "diurnal load-curve period in slots (0 = off)")
		floor       = fs.Float64("floor", 0.25, "diurnal trough as a fraction of peak load")
		hold        = fs.Float64("hold", 1, "mean holding time in slots")
		bulkUnits   = fs.Int("bulkunits", 50000, "total transfer units (-workload bulk)")
		slots       = fs.Int64("slots", 0, "slot budget (0 = unbounded; need -slots or -time)")
		timeBudget  = fs.Duration("time", 0, "wall-clock budget (0 = unbounded)")
		resync      = fs.Int64("resync", 1000, "slots between invariant checks")
		seed        = fs.Uint64("seed", 1, "random seed for arrivals, faults and selectors")
		nodes       = fs.Int("nodes", 2, "in-process worker nodes for the cluster engine")
		convFail    = fs.Float64("convfail", 0.001, "P[converter up->down] per slot")
		convRepair  = fs.Float64("convrepair", 0.05, "P[converter down->up] per slot")
		dark        = fs.Float64("dark", 0.0005, "P[channel up->dark] per slot")
		restore     = fs.Float64("restore", 0.05, "P[channel dark->up] per slot")
		portDown    = fs.Float64("portdown", 0.0002, "P[output port up->down] per slot")
		portUp      = fs.Float64("portup", 0.02, "P[output port down->up] per slot")
		tDrop       = fs.Float64("tdrop", 0.002, "P[cluster frame dropped]")
		tDup        = fs.Float64("tdup", 0.002, "P[cluster frame duplicated]")
		tDelay      = fs.Float64("tdelay", 0.002, "P[cluster frame delayed]")
		rpcTimeout  = fs.Duration("rpctimeout", 25*time.Millisecond, "cluster schedule RPC deadline (each dropped frame stalls this long)")
		report      = fs.String("report", "wdmsoak.report.json", "incident report path (written on violation)")
		spandir     = fs.String("spandir", "", "directory for cluster span dumps (always written when set)")
		progress    = fs.Int64("progress", 0, "slots between progress lines (0 = 25 resync intervals)")
		chaosBug    = fs.String("chaosbug", "", "deliberately break the harness: ledger or equivalence (testing the checker)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "wdmsoak: "+format+"\n", a...)
		return 2
	}
	cfg := soakConfig{
		Workload: *workload, N: *n, K: *k, Kind: *kindFlag, D: *d, Scheduler: *scheduler,
		Load: *load, Alpha: *alpha, Zipf: *zipf, Users: *users,
		Diurnal: *diurnal, Floor: *floor, Hold: *hold, BulkUnits: *bulkUnits, Trace: *tracePath,
		Slots: *slots, Time: *timeBudget, Resync: *resync, Seed: *seed, Nodes: *nodes,
		ConvFail: *convFail, ConvRepair: *convRepair, Dark: *dark, Restore: *restore,
		PortDown: *portDown, PortUp: *portUp,
		TDrop: *tDrop, TDup: *tDup, TDelay: *tDelay, RPCTimeout: *rpcTimeout,
		ChaosBug: *chaosBug,
	}
	for _, e := range strings.Split(*enginesFlag, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		switch e {
		case "sequential", "distributed", "cluster":
			cfg.Engines = append(cfg.Engines, e)
		default:
			return usage("unknown engine %q (want sequential, distributed or cluster)", e)
		}
	}
	if len(cfg.Engines) == 0 {
		return usage("no engines selected")
	}
	if cfg.Slots <= 0 && cfg.Time <= 0 && cfg.Workload != "bulk" {
		return usage("need a budget: -slots, -time, or -workload bulk (which ends when the demand drains)")
	}
	if cfg.Resync <= 0 {
		return usage("-resync must be positive")
	}
	switch cfg.ChaosBug {
	case "", "ledger":
	case "equivalence":
		if len(cfg.Engines) < 2 {
			return usage("-chaosbug equivalence needs at least two engines")
		}
	default:
		return usage("unknown -chaosbug %q (want ledger or equivalence)", cfg.ChaosBug)
	}
	if cfg.Workload == "trace" && cfg.Trace == "" {
		return usage("-workload trace needs -trace")
	}

	s := &soak{cfg: cfg, stdout: stdout, stderr: stderr, report: *report, spandir: *spandir, progress: *progress}
	defer s.closeEngines()
	if err := s.buildEngines(); err != nil {
		return usage("%v", err)
	}
	return s.run()
}

// engine is one lockstep participant: a switch plus its own identically
// seeded generator and fault chain, and the grant ledger the harness
// reconciles against the switch's own statistics.
type engine struct {
	name     string
	sw       *wdm.Switch
	gen      wdm.Generator
	bulk     *wdm.BulkTransfer
	traceErr func() error // ctrace decode-error probe, nil otherwise

	buf      []wdm.Packet
	grants   []wdm.SlotGrant
	seen     int64 // grants observed (pre-chaosbug)
	ledger   int64 // grants admitted to the ledger
	perInput []int64
	snap     wdm.SwitchSnapshot
	skipMod  int64 // -chaosbug ledger: drop every skipMod-th grant

	ctrl    *wdm.ClusterController
	nodes   []*wdm.ClusterNode
	closers []func() error
}

type soak struct {
	cfg      soakConfig
	stdout   io.Writer
	stderr   io.Writer
	report   string
	spandir  string
	progress int64
	engines  []*engine
	start    time.Time
}

func (s *soak) buildEngines() error {
	for i, name := range s.cfg.Engines {
		e, err := s.buildEngine(i, name)
		if err != nil {
			return fmt.Errorf("building %s engine: %w", name, err)
		}
		s.engines = append(s.engines, e)
	}
	switch s.cfg.ChaosBug {
	case "ledger":
		s.engines[0].skipMod = 997
	}
	return nil
}

func (s *soak) buildEngine(index int, name string) (*engine, error) {
	cfg := s.cfg
	e := &engine{name: name, perInput: make([]int64, cfg.N)}

	conv, err := buildConversion(cfg)
	if err != nil {
		return nil, err
	}
	// The arrival seed is identical across engines — byte-identical
	// workloads are what makes the equivalence invariant exact. The
	// equivalence chaosbug perturbs the last engine's seed to prove the
	// checker notices.
	genSeed := cfg.Seed
	if cfg.ChaosBug == "equivalence" && index == len(cfg.Engines)-1 {
		genSeed++
	}
	if err := s.attachWorkload(e, genSeed); err != nil {
		return nil, err
	}

	// Every engine gets its own injector from the same seed: identical
	// fault histories, so degraded-mode statistics must agree too.
	var faults wdm.FaultInjector
	if cfg.ConvFail > 0 || cfg.Dark > 0 || cfg.PortDown > 0 {
		faults, err = wdm.NewMarkovFaults(wdm.MarkovFaultConfig{
			N: cfg.N, K: cfg.K, Seed: cfg.Seed + 101,
			ConverterFail: cfg.ConvFail, ConverterRepair: cfg.ConvRepair,
			ChannelDark: cfg.Dark, ChannelRestore: cfg.Restore,
			PortDown: cfg.PortDown, PortUp: cfg.PortUp,
		})
		if err != nil {
			return nil, err
		}
	}

	swCfg := wdm.SwitchConfig{
		N: cfg.N, Conv: conv, Scheduler: cfg.Scheduler,
		Seed: cfg.Seed, Faults: faults,
	}
	switch name {
	case "sequential":
	case "distributed":
		swCfg.Distributed = true
	case "cluster":
		ctrl, err := s.startCluster(e, conv)
		if err != nil {
			return nil, err
		}
		swCfg.Remote = ctrl
	}
	sw, err := wdm.NewSwitch(swCfg)
	if err != nil {
		return nil, err
	}
	e.sw = sw
	return e, nil
}

// startCluster brings up in-process loopback worker nodes and a traced
// controller with transport fault injection on every link.
func (s *soak) startCluster(e *engine, conv wdm.Conversion) (*wdm.ClusterController, error) {
	cfg := s.cfg
	var addrs []string
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		node := wdm.NewClusterNode(wdm.ClusterNodeConfig{
			Spans: wdm.NewSpanTracer(1, 1<<12),
		})
		go node.Serve(ln)
		e.nodes = append(e.nodes, node)
		e.closers = append(e.closers, node.Close)
		addrs = append(addrs, ln.Addr().String())
	}
	var tf *wdm.TransportFaults
	if cfg.TDrop > 0 || cfg.TDup > 0 || cfg.TDelay > 0 {
		var err error
		tf, err = wdm.NewTransportFaults(wdm.TransportFaultConfig{
			Seed: cfg.Seed + 202, Drop: cfg.TDrop, Duplicate: cfg.TDup, Delay: cfg.TDelay,
		})
		if err != nil {
			return nil, err
		}
	}
	ctrl, err := wdm.NewClusterController(wdm.ClusterControllerConfig{
		Addrs: addrs, N: cfg.N, Conv: conv, Scheduler: cfg.Scheduler,
		Seed: cfg.Seed, DialTimeout: 10 * time.Second, RPCTimeout: cfg.RPCTimeout,
		Faults: tf, Spans: wdm.NewSpanTracer(1, 1<<12),
	})
	if err != nil {
		return nil, err
	}
	e.ctrl = ctrl
	e.closers = append(e.closers, ctrl.Close)
	return ctrl, nil
}

func buildConversion(cfg soakConfig) (wdm.Conversion, error) {
	kind, err := wdm.ParseKind(cfg.Kind)
	if err != nil {
		return wdm.Conversion{}, err
	}
	if kind == wdm.Full {
		return wdm.NewConversion(wdm.Full, cfg.K, 0, 0)
	}
	return wdm.NewSymmetricConversion(kind, cfg.K, cfg.D)
}

func (s *soak) attachWorkload(e *engine, seed uint64) error {
	cfg := s.cfg
	tc := wdm.TrafficConfig{N: cfg.N, K: cfg.K, Seed: seed, Hold: wdm.HoldingTime{Mean: cfg.Hold}}
	var gen wdm.Generator
	var err error
	switch cfg.Workload {
	case "bernoulli":
		gen, err = wdm.NewBernoulliTraffic(tc, cfg.Load)
	case "hotspot":
		gen, err = wdm.NewHotspotTraffic(tc, cfg.Load, 0, 0.5)
	case "bursty":
		meanOn := 8.0
		gen, err = wdm.NewBurstyTraffic(tc, meanOn, meanOn*(1-cfg.Load)/cfg.Load)
	case "heavytail":
		gen, err = wdm.NewHeavyTailTraffic(tc, cfg.Load, cfg.Alpha, cfg.Zipf)
	case "selfsimilar":
		u := cfg.Users
		if u == 0 {
			u = 12 * cfg.K
		}
		gen, err = wdm.NewSelfSimilarTraffic(tc, cfg.Load, cfg.Alpha, u)
	case "bulk":
		demand := wdm.RandomBulkDemand(cfg.N, cfg.BulkUnits, cfg.Seed)
		e.bulk, err = wdm.NewBulkTransfer(tc, demand)
		gen = e.bulk
	case "trace":
		f, err := os.Open(cfg.Trace)
		if err != nil {
			return err
		}
		rd, err := wdm.OpenCompressedTrace(f)
		if err != nil {
			f.Close()
			return err
		}
		if rd.N() != cfg.N || rd.K() != cfg.K {
			f.Close()
			return fmt.Errorf("trace shape N=%d k=%d disagrees with -n %d -k %d", rd.N(), rd.K(), cfg.N, cfg.K)
		}
		e.traceErr = rd.Err
		e.closers = append(e.closers, rd.Close, f.Close)
		gen = rd.Generator()
	default:
		return fmt.Errorf("unknown workload %q", cfg.Workload)
	}
	if err != nil {
		return err
	}
	if cfg.Diurnal > 0 {
		if cfg.Workload == "bulk" {
			return fmt.Errorf("-diurnal does not compose with the closed-loop bulk workload")
		}
		gen, err = wdm.NewDiurnalTraffic(gen, cfg.Diurnal, cfg.Floor, seed+1)
		if err != nil {
			return err
		}
	}
	e.gen = gen
	return nil
}

func (s *soak) closeEngines() {
	for _, e := range s.engines {
		if e.sw != nil {
			e.sw.Finalize()
		}
		for _, c := range e.closers {
			c()
		}
	}
}

func (s *soak) run() int {
	cfg := s.cfg
	s.start = time.Now()
	progressEvery := s.progress
	if progressEvery <= 0 {
		progressEvery = 25 * cfg.Resync
	}
	fmt.Fprintf(s.stdout, "soak           %s on %s, N=%d k=%d %s/d=%d, seed %d\n",
		s.engines[0].gen.Name(), strings.Join(cfg.Engines, "+"), cfg.N, cfg.K, cfg.Kind, cfg.D, cfg.Seed)

	var slot int64
	stop := ""
	for stop == "" {
		switch {
		case cfg.Slots > 0 && slot >= cfg.Slots:
			stop = "slot budget"
		case cfg.Time > 0 && slot%256 == 0 && time.Since(s.start) >= cfg.Time:
			stop = "time budget"
		}
		if stop != "" {
			break
		}
		for _, e := range s.engines {
			e.buf = e.gen.Generate(int(slot), e.buf[:0])
			if err := e.sw.RunSlot(e.buf); err != nil {
				return s.violation(&incident{Invariant: "runtime", Engine: e.name, Slot: slot, Detail: err.Error()})
			}
			e.grants = e.sw.LastGrants(e.grants[:0])
			for _, g := range e.grants {
				e.seen++
				if e.skipMod > 0 && e.seen%e.skipMod == 0 {
					continue // -chaosbug ledger: this grant vanishes from the books
				}
				e.ledger++
				e.perInput[g.InputFiber]++
				if e.bulk != nil {
					if err := e.bulk.Deliver(g.InputFiber, g.OutputFiber); err != nil {
						return s.violation(&incident{Invariant: "bulk-delivery", Engine: e.name, Slot: slot, Detail: err.Error()})
					}
				}
			}
		}
		slot++
		if slot%cfg.Resync == 0 {
			if inc := s.checkInvariants(slot); inc != nil {
				return s.violation(inc)
			}
			if slot%progressEvery == 0 {
				e := s.engines[0]
				fmt.Fprintf(s.stdout, "slot %-12d offered %-12d granted %-12d lost-to-faults %d\n",
					slot, e.snap.Offered, e.snap.Granted, e.snap.FaultLostGrants)
			}
		}
		if s.engines[0].bulk != nil {
			done := true
			for _, e := range s.engines {
				if !e.bulk.Done() {
					done = false
					break
				}
			}
			if done {
				stop = "bulk drained"
			}
		}
	}

	if inc := s.checkInvariants(slot); inc != nil {
		return s.violation(inc)
	}
	if inc := s.checkSpans(slot); inc != nil {
		return s.violation(inc)
	}
	e := s.engines[0]
	fmt.Fprintf(s.stdout, "stopped        %s after %d slots in %v\n", stop, slot, time.Since(s.start).Round(time.Millisecond))
	fmt.Fprintf(s.stdout, "totals         offered %d, granted %d, blocked %d, dropped %d, fault-lost %d, fault-killed %d\n",
		e.snap.Offered, e.snap.Granted, e.snap.InputBlocked, e.snap.OutputDropped,
		e.snap.FaultLostGrants, e.snap.FaultKilled)
	if e.bulk != nil {
		lb := 0
		if demand := wdm.RandomBulkDemand(cfg.N, cfg.BulkUnits, cfg.Seed); true {
			lb, _ = wdm.OpenShopMakespanLB(demand, cfg.K)
		}
		fmt.Fprintf(s.stdout, "makespan       %d slots for %d units (open-shop lower bound %d)\n",
			slot, e.bulk.Delivered(), lb)
	}
	fmt.Fprintf(s.stdout, "soak           ok: %d invariant checks, 0 violations\n", slot/cfg.Resync+1)
	return 0
}

// checkInvariants snapshots every engine and enforces conservation, the
// grant ledger, and cross-engine equivalence. It returns the first
// violation found, nil when all hold.
func (s *soak) checkInvariants(slot int64) *incident {
	for _, e := range s.engines {
		if e.traceErr != nil {
			if err := e.traceErr(); err != nil {
				return &incident{Invariant: "trace-decode", Engine: e.name, Slot: slot, Detail: err.Error()}
			}
		}
		e.sw.Snapshot(&e.snap)
		if msg := e.snap.Conserved(); msg != "" {
			return &incident{Invariant: "conservation", Engine: e.name, Slot: slot, Detail: msg}
		}
		if e.ledger != e.snap.Granted {
			return &incident{Invariant: "ledger", Engine: e.name, Slot: slot,
				Detail: fmt.Sprintf("grant ledger %d != stats granted %d", e.ledger, e.snap.Granted)}
		}
		for f, g := range e.perInput {
			if g != e.snap.PerInput[f] {
				return &incident{Invariant: "ledger", Engine: e.name, Slot: slot,
					Detail: fmt.Sprintf("per-input[%d] ledger %d != stats %d", f, g, e.snap.PerInput[f])}
			}
		}
		if e.bulk != nil && e.bulk.Delivered() != e.snap.Granted {
			return &incident{Invariant: "bulk-delivery", Engine: e.name, Slot: slot,
				Detail: fmt.Sprintf("delivered %d != granted %d", e.bulk.Delivered(), e.snap.Granted)}
		}
	}
	ref := s.engines[0]
	for _, e := range s.engines[1:] {
		if msg := ref.snap.Diff(&e.snap); msg != "" {
			return &incident{Invariant: "equivalence", Engine: ref.name + " vs " + e.name, Slot: slot, Detail: msg}
		}
	}
	return nil
}

// checkSpans dumps and verifies the cluster engine's cross-process spans:
// write the dumps (to -spandir when set), trim every dump to the slot
// window all span rings still retain, and run the shared wdmtrace -check
// logic on the merged view.
func (s *soak) checkSpans(slot int64) *incident {
	var cl *engine
	for _, e := range s.engines {
		if e.ctrl != nil {
			cl = e
		}
	}
	if cl == nil {
		return nil
	}
	dumpOne := func(name string, write func(io.Writer) error) (*spancheck.Dump, error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return nil, err
		}
		if s.spandir != "" {
			if err := os.WriteFile(filepath.Join(s.spandir, name+".spans"), buf.Bytes(), 0o644); err != nil {
				return nil, err
			}
		}
		return spancheck.ReadDump(name, &buf)
	}
	ctrl, err := dumpOne("ctrl", cl.ctrl.WriteSpans)
	if err != nil {
		return &incident{Invariant: "span-dump", Engine: cl.name, Slot: slot, Detail: err.Error()}
	}
	var nodes []*spancheck.Dump
	for i, node := range cl.nodes {
		d, err := dumpOne(fmt.Sprintf("node%d", i), node.WriteSpans)
		if err != nil {
			return &incident{Invariant: "span-dump", Engine: cl.name, Slot: slot, Detail: err.Error()}
		}
		nodes = append(nodes, d)
	}
	trimDumps(append([]*spancheck.Dump{ctrl}, nodes...))
	m, err := spancheck.Merge(ctrl, nodes)
	if err != nil {
		return &incident{Invariant: "span-merge", Engine: cl.name, Slot: slot, Detail: err.Error()}
	}
	rep, err := m.CheckContainment()
	if err != nil {
		return &incident{Invariant: "span-containment", Engine: cl.name, Slot: slot, Detail: err.Error()}
	}
	// Attribution only holds when the controller never stalled in retry
	// backoff or deadline waits — that time is deliberately unattributed,
	// so the invariant is meaningful only on a fault-free transport.
	if s.cfg.TDrop == 0 && s.cfg.TDup == 0 && s.cfg.TDelay == 0 {
		if rep, err = m.CheckAttribution(rep); err != nil {
			return &incident{Invariant: "span-attribution", Engine: cl.name, Slot: slot, Detail: err.Error()}
		}
		fmt.Fprintf(s.stdout, "spans          containment %d/%d outside windows, attribution %.1f%% of slot time\n",
			rep.Violations, rep.Checked, 100*rep.AttributionRatio)
	} else {
		fmt.Fprintf(s.stdout, "spans          containment %d/%d outside windows (attribution skipped: transport faults active)\n",
			rep.Violations, rep.Checked)
	}
	return nil
}

// trimDumps drops every span at or below the newest slot any ring had
// already evicted. The tracers keep a bounded ring per lane and lanes
// carry different span counts per slot, so after a long run each lane's
// retained window starts at a different slot; the containment and
// attribution checks are only meaningful over the window every lane still
// covers in full.
func trimDumps(dumps []*spancheck.Dump) {
	lo := int64(0)
	for _, d := range dumps {
		laneMin := map[int32]int64{}
		for _, sp := range d.Spans {
			if m, ok := laneMin[sp.Lane]; !ok || sp.Slot < m {
				laneMin[sp.Lane] = sp.Slot
			}
		}
		for _, m := range laneMin {
			if m+1 > lo {
				lo = m + 1
			}
		}
	}
	for _, d := range dumps {
		kept := d.Spans[:0]
		for _, sp := range d.Spans {
			if sp.Slot >= lo {
				kept = append(kept, sp)
			}
		}
		d.Spans = kept
	}
}

// violation writes the incident report, dumps cluster spans for the CI
// artifact when -spandir is set, and prints the failure.
func (s *soak) violation(inc *incident) int {
	inc.Wall = time.Since(s.start).String()
	inc.Config = s.cfg
	if s.spandir != "" {
		for _, e := range s.engines {
			if e.ctrl == nil {
				continue
			}
			writeSpanFile := func(name string, write func(io.Writer) error) {
				var buf bytes.Buffer
				if write(&buf) == nil {
					os.WriteFile(filepath.Join(s.spandir, name+".spans"), buf.Bytes(), 0o644)
				}
			}
			writeSpanFile("ctrl", e.ctrl.WriteSpans)
			for i, node := range e.nodes {
				writeSpanFile(fmt.Sprintf("node%d", i), node.WriteSpans)
			}
		}
	}
	raw, err := json.MarshalIndent(inc, "", "  ")
	if err == nil {
		err = os.WriteFile(s.report, append(raw, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(s.stderr, "wdmsoak: writing incident report: %v\n", err)
	}
	fmt.Fprintf(s.stderr, "wdmsoak: INVARIANT VIOLATION [%s] engine %s slot %d: %s (report: %s)\n",
		inc.Invariant, inc.Engine, inc.Slot, inc.Detail, s.report)
	return 1
}
