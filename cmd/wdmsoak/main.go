// Command wdmsoak is the long-run chaos harness: it composes any workload
// generator with Markov channel/converter faults and cluster transport
// faults, drives every requested engine (sequential, distributed, cluster)
// in lockstep on identical arrivals, and continuously checks the
// invariants the engines guarantee:
//
//   - conservation — offered = granted + input-blocked + output-dropped,
//     and the per-input / per-channel partitions sum to their totals;
//   - ledger — the grants observed slot by slot through LastGrants
//     reconcile exactly with the run statistics;
//   - equivalence — all engines produce identical snapshots at every
//     resync point (the cluster engine remains bit-identical even while
//     transport faults force retries and local fallback);
//   - span containment — after a traced cluster run, node spans sit inside
//     their clock-corrected RPC windows and the stage attribution explains
//     slot latency (the wdmtrace -check logic, shared via
//     internal/spancheck).
//
// The run is bounded by a slot budget (-slots), a wall-clock budget
// (-time), or both; on the first violation wdmsoak writes a JSON incident
// report to -report, dumps a self-contained flight-recorder bundle to
// -bundle (replayable with wdmreplay), and exits 1. A clean soak exits 0.
// The first output line is the full effective config as JSON, so any run
// is reproducible from its log alone. SIGQUIT dumps a flight-recorder
// bundle at the next slot boundary without stopping the run.
//
// Usage:
//
//	wdmsoak -slots 1000000 -workload heavytail -engines sequential,distributed,cluster
//	wdmsoak -time 30m -workload selfsimilar -diurnal 100000 -spandir artifacts/
//	wdmsoak -slots 200000 -workload bulk -bulkunits 100000
//	wdmsoak -slots 100000 -workload trace -trace big.ctrace
//
// -chaosbug deliberately corrupts the harness itself ("ledger" drops
// grants from the reconciliation ledger, "equivalence" perturbs one
// engine's arrival seed) to prove the checker catches real accounting
// bugs; it exists for the harness's own tests and CI smoke only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wdmsched/internal/soak"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// soakConfig and incident alias the harness types so incident reports can
// be decoded with this package's names (and the tests do).
type (
	soakConfig = soak.Config
	incident   = soak.Incident
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmsoak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		enginesFlag = fs.String("engines", "sequential,distributed,cluster", "comma-separated engines to run in lockstep")
		workload    = fs.String("workload", "heavytail", "workload: bernoulli, hotspot, bursty, heavytail, selfsimilar, bulk, trace")
		tracePath   = fs.String("trace", "", "compressed trace to replay (-workload trace)")
		n           = fs.Int("n", 8, "fibers per side")
		k           = fs.Int("k", 16, "wavelengths per fiber")
		kindFlag    = fs.String("kind", "circular", "conversion kind: circular, noncircular, full")
		d           = fs.Int("d", 3, "conversion degree in channels (ignored for full)")
		scheduler   = fs.String("scheduler", "exact", "per-port scheduling algorithm")
		load        = fs.Float64("load", 0.7, "offered load per channel, fraction in [0,1]")
		alpha       = fs.Float64("alpha", 1.5, "Pareto tail index (heavytail/selfsimilar)")
		zipf        = fs.Float64("zipf", 0.8, "destination zipf exponent (heavytail)")
		users       = fs.Int("users", 0, "on/off user count per fiber (selfsimilar; 0 = 12k)")
		diurnal     = fs.Int("diurnal", 0, "diurnal load-curve period in slots (0 = off)")
		floor       = fs.Float64("floor", 0.25, "diurnal trough as a fraction of peak load")
		hold        = fs.Float64("hold", 1, "mean holding time in slots")
		bulkUnits   = fs.Int("bulkunits", 50000, "total transfer units (-workload bulk)")
		slots       = fs.Int64("slots", 0, "slot budget (0 = unbounded; need -slots or -time)")
		timeBudget  = fs.Duration("time", 0, "wall-clock run budget as a duration, e.g. 2m (0 = unbounded)")
		resync      = fs.Int64("resync", 1000, "slots between invariant checks")
		seed        = fs.Uint64("seed", 1, "random seed for arrivals, faults and selectors")
		nodes       = fs.Int("nodes", 2, "in-process worker node count for the cluster engine")
		convFail    = fs.Float64("convfail", 0.001, "P[converter up->down] per slot")
		convRepair  = fs.Float64("convrepair", 0.05, "P[converter down->up] per slot")
		dark        = fs.Float64("dark", 0.0005, "P[channel up->dark] per slot")
		restore     = fs.Float64("restore", 0.05, "P[channel dark->up] per slot")
		portDown    = fs.Float64("portdown", 0.0002, "P[output port up->down] per slot")
		portUp      = fs.Float64("portup", 0.02, "P[output port down->up] per slot")
		tDrop       = fs.Float64("tdrop", 0.002, "P[cluster frame dropped]")
		tDup        = fs.Float64("tdup", 0.002, "P[cluster frame duplicated]")
		tDelay      = fs.Float64("tdelay", 0.002, "P[cluster frame delayed]")
		rpcTimeout  = fs.Duration("rpctimeout", 25*time.Millisecond, "cluster schedule RPC deadline as a duration (each dropped frame stalls this long)")
		report      = fs.String("report", "wdmsoak.report.json", "incident report path (written on violation)")
		bundle      = fs.String("bundle", "wdmsoak.incident.tgz", "flight-recorder bundle path (written on violation/panic/SIGQUIT; empty disables)")
		spandir     = fs.String("spandir", "", "directory for cluster span dumps (always written when set)")
		progress    = fs.Int64("progress", 0, "slots between progress lines (0 = 25 resync intervals)")
		chaosBug    = fs.String("chaosbug", "", "deliberately break the harness: ledger or equivalence (testing the checker)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "wdmsoak: "+format+"\n", a...)
		return 2
	}
	cfg := soak.Config{
		Workload: *workload, N: *n, K: *k, Kind: *kindFlag, D: *d, Scheduler: *scheduler,
		Load: *load, Alpha: *alpha, Zipf: *zipf, Users: *users,
		Diurnal: *diurnal, Floor: *floor, Hold: *hold, BulkUnits: *bulkUnits, Trace: *tracePath,
		Slots: *slots, Time: *timeBudget, Resync: *resync, Seed: *seed, Nodes: *nodes,
		ConvFail: *convFail, ConvRepair: *convRepair, Dark: *dark, Restore: *restore,
		PortDown: *portDown, PortUp: *portUp,
		TDrop: *tDrop, TDup: *tDup, TDelay: *tDelay, RPCTimeout: *rpcTimeout,
		ChaosBug: *chaosBug,
	}
	for _, e := range strings.Split(*enginesFlag, ",") {
		if e = strings.TrimSpace(e); e != "" {
			cfg.Engines = append(cfg.Engines, e)
		}
	}

	h, err := soak.New(cfg, soak.Options{
		Stdout: stdout, Stderr: stderr,
		Report: *report, BundlePath: *bundle, SpanDir: *spandir, Progress: *progress,
	})
	if err != nil {
		return usage("%v", err)
	}
	defer h.Close()

	// SIGQUIT dumps a flight-recorder bundle at the next slot boundary;
	// the run keeps going — the black-box tape is readable without
	// sacrificing the soak.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-quit:
				h.RequestDump()
			case <-done:
				return
			}
		}
	}()

	return h.Run()
}
