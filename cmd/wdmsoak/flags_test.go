package main

import (
	"bytes"
	"testing"

	"wdmsched/internal/flagcheck"
)

func helpFlags(t *testing.T) map[string]flagcheck.Flag {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("run(-h) = %d, want 2", code)
	}
	flags := flagcheck.Parse(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from help output:\n%s", errb.String())
	}
	return flags
}

// TestFlagDefaults pins the soak-harness defaults DESIGN.md documents.
func TestFlagDefaults(t *testing.T) {
	flags := helpFlags(t)
	want := map[string]string{
		"engines":    `"sequential,distributed,cluster"`,
		"workload":   `"heavytail"`,
		"n":          "8",
		"k":          "16",
		"kind":       `"circular"`,
		"d":          "3",
		"scheduler":  `"exact"`,
		"load":       "0.7",
		"alpha":      "1.5",
		"slots":      "", // zero default: flag prints no suffix
		"time":       "",
		"resync":     "1000",
		"seed":       "1",
		"nodes":      "2",
		"rpctimeout": "25ms",
		"report":     `"wdmsoak.report.json"`,
		"bundle":     `"wdmsoak.incident.tgz"`,
	}
	for name, def := range want {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if f.Default != def {
			t.Errorf("-%s default = %s, want %s", name, f.Default, def)
		}
	}
}

// TestFlagUsageNamesUnits requires every quantity-bearing flag to say
// what it is measured in (slots vs ms vs fraction vs probability).
func TestFlagUsageNamesUnits(t *testing.T) {
	flags := helpFlags(t)
	quantity := []string{
		"n", "k", "d", "load", "alpha", "zipf", "users", "diurnal",
		"floor", "hold", "bulkunits", "slots", "time", "resync", "nodes",
		"convfail", "convrepair", "dark", "restore", "portdown", "portup",
		"tdrop", "tdup", "tdelay", "rpctimeout", "progress",
	}
	for _, name := range quantity {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if !flagcheck.NamesUnit(f.Usage) {
			t.Errorf("-%s usage names no unit: %q", name, f.Usage)
		}
	}
}
