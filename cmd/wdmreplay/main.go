// Command wdmreplay is the incident forensics tool: it loads a
// flight-recorder bundle dumped by wdmsoak (or any soak.Harness), prints
// what the black box captured, and can deterministically re-run the
// recorded slot window to prove the original violation reproduces from
// the bundle alone.
//
// Without flags it prints the bundle summary: manifest, embedded config,
// the incident, and the pre-violation counter baseline.
//
//	wdmreplay wdmsoak.incident.tgz
//
// -verify replays the recorded window (same seeds, same fault chains,
// same engines, slot budget clamped one resync past the incident) and
// asserts the violation re-fires with identical invariant, engine, slot
// and detail — and that the pre-violation counter baseline matches.
// Exit 0 means the incident is deterministic and fully captured; exit 1
// means it did not reproduce; exit 3 means the incident is outside the
// determinism contract (span-* invariants depend on wall-clock span
// timings and are never replayable).
//
//	wdmreplay -verify wdmsoak.incident.tgz
//
// -extract unpacks every bundle entry (recorder rings as JSONL, span
// dumps, node metric scrapes) into a directory for ad-hoc inspection.
//
//	wdmreplay -extract incident/ wdmsoak.incident.tgz
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wdmsched/internal/soak"
	"wdmsched/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		verify  = fs.Bool("verify", false, "replay the recorded window and assert the original violation reproduces")
		extract = fs.String("extract", "", "directory to unpack every bundle entry into")
		show    = fs.Bool("progress", false, "show the replay's soak output (default: replay silently)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "wdmreplay: %v\n", err)
		return 2
	}
	if fs.NArg() != 1 {
		return fail(errors.New("exactly one bundle path required"))
	}
	b, err := telemetry.ReadBundleFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}

	m := b.Manifest
	fmt.Fprintf(stdout, "bundle         %s v%d, dumped by %s on %q at slot %d (%s)\n",
		fs.Arg(0), m.Version, m.Tool, m.Trigger, m.Slot,
		time.Unix(0, m.UnixNS).UTC().Format(time.RFC3339))
	var total int64
	for _, f := range m.Files {
		total += f.Size
	}
	fmt.Fprintf(stdout, "contents       %d files, %d bytes uncompressed\n", len(m.Files), total)

	// Bundles from wdmnode (a metric scrape + span rings, no embedded run
	// config) can still be summarized and extracted — only -verify needs
	// the config to rebuild the harness.
	var inc *soak.Incident
	if b.Has(soak.BundleConfigName) {
		cfg, err := soak.BundleConfig(b)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "config         %s engines, %s workload, N=%d k=%d, seed %d, resync %d\n",
			strings.Join(cfg.Engines, "+"), cfg.Workload, cfg.N, cfg.K, cfg.Seed, cfg.Resync)
		if inc, err = soak.BundleIncident(b); err != nil {
			return fail(err)
		}
		if inc != nil {
			fmt.Fprintf(stdout, "incident       [%s] engine %s slot %d: %s\n",
				inc.Invariant, inc.Engine, inc.Slot, inc.Detail)
		} else {
			fmt.Fprintf(stdout, "incident       none (requested dump)\n")
		}
		if pre, err := soak.BundlePresnap(b); err != nil {
			return fail(err)
		} else if pre != nil {
			fmt.Fprintf(stdout, "baseline       slot %d: offered %d, granted %d, blocked %d, dropped %d\n",
				pre.Slot, pre.Offered, pre.Granted, pre.InputBlocked, pre.OutputDropped)
		}
	} else {
		fmt.Fprintf(stdout, "config         none (%s state dump, not a replayable run)\n", m.Tool)
	}

	if *extract != "" {
		for _, name := range b.Names() {
			raw, err := b.File(name)
			if err != nil {
				return fail(err)
			}
			dst := filepath.Join(*extract, filepath.FromSlash(name))
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return fail(err)
			}
			if err := os.WriteFile(dst, raw, 0o644); err != nil {
				return fail(err)
			}
		}
		fmt.Fprintf(stdout, "extracted      %d files into %s\n", len(m.Files), *extract)
	}

	if !*verify {
		return 0
	}
	if inc == nil {
		return fail(errors.New("bundle carries no incident — nothing to verify"))
	}
	opt := soak.Options{Stderr: stderr}
	if *show {
		opt.Stdout = stdout
	}
	start := time.Now()
	rep, err := soak.Replay(b, opt)
	if err != nil {
		return fail(err)
	}
	if err := rep.Verify(); err != nil {
		if errors.Is(err, soak.ErrNotReplayable) {
			fmt.Fprintf(stderr, "wdmreplay: %v\n", err)
			return 3
		}
		fmt.Fprintf(stderr, "wdmreplay: VERIFY FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "verify         ok: [%s] reproduced at slot %d over %d replayed slots in %v\n",
		inc.Invariant, inc.Slot, rep.Config.Slots, time.Since(start).Round(time.Millisecond))
	return 0
}
