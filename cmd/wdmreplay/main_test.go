package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wdmsched/internal/soak"
	"wdmsched/internal/telemetry"
)

// dumpTestBundle runs a small chaos soak (optionally with a harness bug)
// and returns the path of the bundle it dumped.
func dumpTestBundle(t *testing.T, chaosbug string) string {
	t.Helper()
	dir := t.TempDir()
	bundle := filepath.Join(dir, "incident.tgz")
	cfg := soak.Config{
		Engines: []string{"sequential", "distributed"}, Workload: "heavytail",
		N: 4, K: 8, Kind: "circular", D: 3, Scheduler: "exact",
		Load: 0.7, Alpha: 1.5, Zipf: 0.8, Hold: 1,
		Slots: 4000, Resync: 500, Seed: 7, Nodes: 2,
		ConvFail: 0.002, ConvRepair: 0.05, Dark: 0.001, Restore: 0.05,
		ChaosBug: chaosbug,
	}
	h, err := soak.New(cfg, soak.Options{BundlePath: bundle})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	code := h.Run()
	if chaosbug == "" {
		if code != 0 {
			t.Fatalf("clean soak exited %d", code)
		}
		if err := h.DumpBundle(bundle, "request", cfg.Slots, nil); err != nil {
			t.Fatal(err)
		}
	} else if code != 1 {
		t.Fatalf("chaosbug soak exited %d, want 1", code)
	}
	return bundle
}

func runReplay(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestReplaySummary: the default mode prints manifest, config and
// incident without replaying.
func TestReplaySummary(t *testing.T) {
	bundle := dumpTestBundle(t, "ledger")
	code, out, errb := runReplay(t, bundle)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	for _, want := range []string{
		`dumped by wdmsoak on "violation"`,
		"sequential+distributed engines",
		"incident       [ledger]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestReplayVerifyReproduces is the acceptance gate: capture via chaosbug,
// replay from the bundle alone, violation re-fires → exit 0.
func TestReplayVerifyReproduces(t *testing.T) {
	bundle := dumpTestBundle(t, "ledger")
	code, out, errb := runReplay(t, "-verify", bundle)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "verify         ok") {
		t.Errorf("verify output incomplete:\n%s", out)
	}
}

// TestReplayVerifyEquivalence: the seed-perturbation bug also reproduces.
func TestReplayVerifyEquivalence(t *testing.T) {
	bundle := dumpTestBundle(t, "equivalence")
	if code, out, errb := runReplay(t, "-verify", bundle); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
}

// TestReplayVerifyRequestedDump: a bundle without an incident cannot be
// verified — usage error, exit 2.
func TestReplayVerifyRequestedDump(t *testing.T) {
	bundle := dumpTestBundle(t, "")
	code, out, errb := runReplay(t, "-verify", bundle)
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(errb, "no incident") {
		t.Errorf("stderr missing reason: %s", errb)
	}
	if !strings.Contains(out, "incident       none") {
		t.Errorf("summary did not flag the missing incident:\n%s", out)
	}
}

// TestReplayExtract unpacks every entry to disk.
func TestReplayExtract(t *testing.T) {
	bundle := dumpTestBundle(t, "ledger")
	dir := filepath.Join(t.TempDir(), "unpacked")
	code, out, errb := runReplay(t, "-extract", dir, bundle)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	for _, name := range []string{
		"config.json", "incident.json",
		"engines/0-sequential/snapshots.jsonl",
		"engines/1-distributed/decisions.jsonl",
	} {
		if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(name))); err != nil {
			t.Errorf("extracted entry missing: %v", err)
		}
	}
}

// TestReplayUsage: missing or unreadable bundles exit 2.
func TestReplayUsage(t *testing.T) {
	if code, _, _ := runReplay(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code, _, _ := runReplay(t, "a.tgz", "b.tgz"); code != 2 {
		t.Errorf("two args: exit %d, want 2", code)
	}
	if code, _, _ := runReplay(t, filepath.Join(t.TempDir(), "absent.tgz")); code != 2 {
		t.Errorf("absent bundle: exit %d, want 2", code)
	}
}

// TestReplaySummaryNodeBundle: wdmnode state dumps have no embedded run
// config — the summary (and -extract) must still work, only -verify
// needs one.
func TestReplaySummaryNodeBundle(t *testing.T) {
	bundle := filepath.Join(t.TempDir(), "node.tgz")
	w := telemetry.NewBundleWriter("wdmnode", "sigquit", 0)
	w.Add("node.metrics", []byte("wdm_node_frames_total 1\n"))
	if err := w.WriteFile(bundle); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runReplay(t, bundle)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "config         none (wdmnode state dump") {
		t.Errorf("summary did not flag the missing config:\n%s", out)
	}
	if code, _, errb := runReplay(t, "-verify", bundle); code != 2 ||
		!strings.Contains(errb, "no incident") {
		t.Errorf("verify on a config-less bundle: exit %d, stderr %q", code, errb)
	}
}
