package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"wdmsched/internal/grant"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/wavelength"
)

// startServer brings up a grant service with a telemetry endpoint — the
// wdmserve wiring — and returns the grant address and telemetry URL.
func startServer(t *testing.T) (string, string) {
	t.Helper()
	conv, err := wavelength.NewSymmetric(wavelength.Circular, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	svc, err := grant.NewService(grant.Config{
		Switch:    interconnect.Config{N: 4, Conv: conv, Scheduler: "exact", Seed: 7},
		Default:   grant.Policy{Class: 0, Rate: 1e9, Burst: 1 << 20, Queue: 1 << 16},
		Resync:    64,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- svc.Serve(ln) }()
	t.Cleanup(func() {
		svc.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})
	srv, err := telemetry.NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), "http://" + srv.Addr()
}

// TestTelemetrySkewReport runs a small open-loop load against a live
// server and pins the -telemetry report: server stage means appear next
// to the client settled mean, the skew row is present, and a tiny
// -skewmax trips the stderr warning (exit code unchanged — the report
// is diagnostic, not a gate).
func TestTelemetrySkewReport(t *testing.T) {
	addr, telem := startServer(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-server", addr, "-telemetry", telem, "-skewmax", "1ns",
		"-conns", "2", "-rate", "20000", "-requests", "400", "-timeout", "30s",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"client settled mean",
		"server stage ingest mean",
		"server stage engine_schedule mean",
		"server lifecycle mean (stage sum)",
		"client-server skew",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// The client clock contains the wire round trip the server stage sum
	// cannot see, so skew is reliably positive and 1ns must trip.
	if !strings.Contains(errb.String(), "warning: client-server skew") {
		t.Errorf("no skew warning on stderr with -skewmax 1ns:\n%s", errb.String())
	}
}

// TestTelemetryScrapeFailure pins the failure mode: an unreachable
// -telemetry endpoint is a hard error, not a silent omission.
func TestTelemetryScrapeFailure(t *testing.T) {
	addr, _ := startServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	var out, errb bytes.Buffer
	code := run([]string{
		"-server", addr, "-telemetry", dead,
		"-conns", "1", "-rate", "20000", "-requests", "50", "-timeout", "30s", "-quiet",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "scraping -telemetry") {
		t.Errorf("stderr missing scrape error:\n%s", errb.String())
	}
}
