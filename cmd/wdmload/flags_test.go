package main

import (
	"bytes"
	"testing"

	"wdmsched/internal/flagcheck"
)

func helpFlags(t *testing.T) map[string]flagcheck.Flag {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("run(-h) = %d, want 2", code)
	}
	flags := flagcheck.Parse(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from help output:\n%s", errb.String())
	}
	return flags
}

// TestFlagDefaults pins the load-generator defaults DESIGN.md §15
// documents.
func TestFlagDefaults(t *testing.T) {
	flags := helpFlags(t)
	want := map[string]string{
		"server":   `"127.0.0.1:9411"`,
		"tenant":   `"wdmload"`,
		"conns":    "4",
		"rate":     "10000",
		"requests": "50000",
		"arrivals": `"poisson"`,
		"alpha":    "1.5",
		"hold":     "2",
		"seed":     "1",
		"timeout":  "1m0s",
	}
	for name, def := range want {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if f.Default != def {
			t.Errorf("-%s default = %s, want %s", name, f.Default, def)
		}
	}
}

// TestFlagUsageNamesUnits requires every quantity-bearing flag to say
// what it is measured in.
func TestFlagUsageNamesUnits(t *testing.T) {
	flags := helpFlags(t)
	quantity := []string{"conns", "rate", "requests", "alpha", "hold", "seed", "timeout"}
	for _, name := range quantity {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if !flagcheck.NamesUnit(f.Usage) {
			t.Errorf("-%s usage names no unit: %q", name, f.Usage)
		}
	}
}

// TestBadFlagExitCodes pins the exit-code contract: 2 for parse errors,
// 1 for semantic validation failures.
func TestBadFlagExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: run = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-arrivals", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("bad -arrivals: run = %d, want 1\nstderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-conns", "0"}, &out, &errb); code != 1 {
		t.Errorf("-conns 0: run = %d, want 1\nstderr: %s", code, errb.String())
	}
}
