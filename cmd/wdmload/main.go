// Command wdmload drives a wdmserve grant server with open-loop traffic:
// N client connections submit connection requests on a fixed arrival
// schedule (Poisson or heavy-tailed) regardless of how fast verdicts come
// back, which is what makes the offered load an input rather than an
// outcome. Every request terminates in exactly one verdict — grant,
// reject, or retry — and the tool fails loudly if any request is lost or
// the server's session ledger disagrees with the client-side tally.
//
// The report (-o) is a wdmbench-style structured document: grant-latency
// quantiles (p50/p99/p999), goodput, and the verdict breakdown at the
// offered load. Validate or diff it with `wdmbench -validate` / `-diff`.
//
//	wdmload -server 127.0.0.1:9411 -conns 8 -rate 50000 -requests 200000 -o wdmload_report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"wdmsched/internal/grant"
	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server   = fs.String("server", "127.0.0.1:9411", "grant server address (host:port, or a unix socket path)")
		tenant   = fs.String("tenant", "wdmload", "tenant name presented at the session handshake")
		conns    = fs.Int("conns", 4, "client connections, each its own session (count)")
		rate     = fs.Float64("rate", 10000, "aggregate offered load in requests/s across all connections")
		requests = fs.Int("requests", 50000, "total request budget across all connections (count)")
		arrivals = fs.String("arrivals", "poisson", "interarrival process: poisson|heavytail")
		alpha    = fs.Float64("alpha", 1.5, "Pareto tail exponent for -arrivals heavytail (dimensionless, > 1)")
		hold     = fs.Float64("hold", 2, "mean connection duration in slots (geometric)")
		seed     = fs.Uint64("seed", 1, "PRNG seed (dimensionless)")
		timeout  = fs.Duration("timeout", 60*time.Second, "overall run deadline as a duration for collecting every verdict")
		output   = fs.String("o", "", "write the structured load report as JSON to this file")
		quiet    = fs.Bool("quiet", false, "suppress the summary table on stdout")
		telemURL = fs.String("telemetry", "", "wdmserve telemetry base URL; after the run, scrape /snapshot and report server-observed stage means next to the client latency")
		skewMax  = fs.Duration("skewmax", 0, "warn on stderr when client-minus-server mean latency skew exceeds this duration (0 disables the check)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "wdmload: %v\n", err)
		return 1
	}
	if *conns < 1 || *requests < 1 {
		return fail(fmt.Errorf("-conns and -requests must be at least 1"))
	}
	if *rate <= 0 {
		return fail(fmt.Errorf("-rate must be positive (requests/s)"))
	}
	if *arrivals != "poisson" && *arrivals != "heavytail" {
		return fail(fmt.Errorf("unknown -arrivals %q (want poisson or heavytail)", *arrivals))
	}
	if *arrivals == "heavytail" && *alpha <= 1 {
		return fail(fmt.Errorf("-alpha must exceed 1 so the heavy-tailed interarrival mean is finite"))
	}

	lat := metrics.NewDurationHistogram()
	settled := metrics.NewDurationHistogram()
	perConn := *requests / *conns
	extra := *requests % *conns

	type connResult struct {
		tally  verdictTally
		ledger grant.Ledger
		err    error
	}
	results := make([]connResult, *conns)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *conns; i++ {
		budget := perConn
		if i < extra {
			budget++
		}
		if budget == 0 {
			continue
		}
		wg.Add(1)
		go func(i, budget int) {
			defer wg.Done()
			results[i].tally, results[i].ledger, results[i].err = driveConn(connConfig{
				server: *server, tenant: *tenant,
				budget: budget, rate: *rate / float64(*conns),
				arrivals: *arrivals, alpha: *alpha, hold: *hold,
				seed: *seed + uint64(i)*1000003, timeout: *timeout,
			}, lat, settled)
		}(i, budget)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total verdictTally
	var ledger grant.Ledger
	for i := range results {
		if err := results[i].err; err != nil {
			return fail(fmt.Errorf("connection %d: %w", i, err))
		}
		total.add(results[i].tally)
		l := results[i].ledger
		ledger.Submitted += l.Submitted
		ledger.Admitted += l.Admitted
		ledger.Granted += l.Granted
		ledger.Rejected += l.Rejected
		ledger.Retried += l.Retried
	}

	// Zero-lost accounting: every submitted request must have terminated
	// in exactly one verdict, and the server's ledgers must agree with
	// what the clients saw on the wire.
	if got := total.terminal(); got != *requests {
		return fail(fmt.Errorf("lost requests: submitted %d, verdicts %d", *requests, got))
	}
	if ledger.Submitted != uint64(*requests) ||
		ledger.Granted != uint64(total.granted) ||
		ledger.Rejected != uint64(total.rejected) ||
		ledger.Retried != uint64(total.retried) {
		return fail(fmt.Errorf("server ledger %+v disagrees with client tally %+v", ledger, total))
	}

	goodput := float64(total.granted) / elapsed.Seconds()
	table := metrics.NewTable(
		fmt.Sprintf("Grant-service open-loop load — %d conns, %.0f req/s offered, %s arrivals", *conns, *rate, *arrivals),
		"metric", "value")
	table.AddRow("offered load (req/s)", fmt.Sprintf("%.1f", *rate))
	table.AddRow("achieved goodput (grants/s)", fmt.Sprintf("%.1f", goodput))
	table.AddRowf("wall time", elapsed.Round(time.Millisecond))
	table.AddRowf("submitted", *requests)
	table.AddRowf("granted", total.granted)
	table.AddRowf("rejected", total.rejected)
	table.AddRowf("retried", total.retried)
	table.AddRowf("grant latency p50", lat.Quantile(0.50))
	table.AddRowf("grant latency p99", lat.Quantile(0.99))
	table.AddRowf("grant latency p999", lat.Quantile(0.999))
	table.AddRowf("grant latency max", lat.Max())
	table.AddNote("Open loop: the arrival schedule does not wait for verdicts, so offered load is an input.")
	table.AddNote("Latency is request submission to verdict receipt, measured client side.")
	table.AddNote("Every request terminated in exactly one verdict; the server ledger matched the client tally.")

	// Server-observed stage breakdown: scrape the wdmserve /snapshot and
	// put its per-stage means next to the client view of the same
	// requests. The client clock includes the network round trip and the
	// scheduler's inter-stage gaps; the server stage sum does not, so the
	// skew (client minus server) is the unattributed remainder — large
	// positive skew means time is being lost outside the stage clocks.
	if *telemURL != "" {
		st, err := fetchServerStages(*telemURL, *timeout)
		if err != nil {
			return fail(fmt.Errorf("scraping -telemetry: %w", err))
		}
		clientMean := settled.Mean()
		table.AddRowf("client settled mean (granted+contention)", clientMean)
		for _, name := range st.names {
			table.AddRowf("server stage "+name+" mean", st.mean[name])
		}
		table.AddRowf("server lifecycle mean (stage sum)", st.total)
		skew := clientMean - st.total
		table.AddRowf("client-server skew", skew)
		table.AddNote("Server stage means are cumulative since wdmserve start; on a fresh server they cover exactly this run.")
		if *skewMax > 0 && skew > *skewMax {
			fmt.Fprintf(stderr, "wdmload: warning: client-server skew %v exceeds -skewmax %v (network + unattributed gaps)\n",
				skew, *skewMax)
		}
	}

	if !*quiet {
		fmt.Fprint(stdout, table.ASCII())
	}
	if *output != "" {
		if err := writeReport(*output, table); err != nil {
			return fail(err)
		}
	}
	return 0
}

// writeReport emits the wdmbench-compatible structured document so the
// load report plugs into `wdmbench -validate` and `wdmbench -diff`.
func writeReport(path string, table *metrics.Table) error {
	type group struct {
		ID     string           `json:"id"`
		Title  string           `json:"title"`
		Tables []*metrics.Table `json:"tables"`
	}
	doc := struct {
		Quick   bool    `json:"quick"`
		Results []group `json:"results"`
	}{
		Results: []group{{ID: "grant-load", Title: "Grant-service open-loop load", Tables: []*metrics.Table{table}}},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// verdictTally counts terminal verdicts client side.
type verdictTally struct {
	granted, rejected, retried int
}

func (t *verdictTally) add(o verdictTally) {
	t.granted += o.granted
	t.rejected += o.rejected
	t.retried += o.retried
}

func (t *verdictTally) terminal() int { return t.granted + t.rejected + t.retried }

type connConfig struct {
	server, tenant string
	budget         int
	rate           float64 // this connection's offered load, requests/s
	arrivals       string
	alpha, hold    float64
	seed           uint64
	timeout        time.Duration
}

// fetchServerStages scrapes a wdmserve telemetry /snapshot and reduces
// the wdm_grant_stage_seconds series to per-stage means plus their sum
// (the mean server-side request lifecycle).
type serverStages struct {
	names []string
	mean  map[string]time.Duration
	total time.Duration
}

func fetchServerStages(base string, timeout time.Duration) (*serverStages, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(strings.TrimRight(base, "/") + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /snapshot: %s", resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding /snapshot: %w", err)
	}
	st := &serverStages{mean: map[string]time.Duration{}}
	byName := map[string]time.Duration{}
	for _, m := range snap.Metrics {
		if m.Name != "wdm_grant_stage_seconds" || m.Count == 0 {
			continue
		}
		for _, l := range m.Labels {
			if l.Key == "stage" {
				byName[l.Value] = time.Duration(m.Sum / float64(m.Count) * float64(time.Second))
			}
		}
	}
	for _, name := range telemetry.GrantStageNames {
		d, ok := byName[name]
		if !ok {
			continue
		}
		st.names = append(st.names, name)
		st.mean[name] = d
		st.total += d
	}
	if len(st.names) == 0 {
		return nil, fmt.Errorf("no wdm_grant_stage_seconds series at %s (is this a wdmserve -listen endpoint with traffic?)", base)
	}
	return st, nil
}

// driveConn runs one open-loop session: a submitter goroutine fires
// requests on the arrival schedule while the reader tallies verdicts and
// observes latency; the session ends with bye → ledger. settled gets
// only the round-settled verdicts (granted + rejected-contention) — the
// population the server's stage clocks observe — so the client and
// server means are comparable.
func driveConn(cfg connConfig, lat, settled *metrics.DurationHistogram) (verdictTally, grant.Ledger, error) {
	var tally verdictTally
	var ledger grant.Ledger
	c, err := grant.Dial(cfg.server, cfg.tenant)
	if err != nil {
		return tally, ledger, err
	}
	defer c.Close()

	rng := traffic.NewRNG(cfg.seed)
	n, k := c.N, c.K

	// Interarrival sampler, seconds. The heavy-tailed process keeps the
	// same mean as the Poisson one so -rate means the same offered load
	// either way: Pareto(alpha) on [1,inf) has mean alpha/(alpha-1).
	nextInter := func() float64 { return rng.Exp(cfg.rate) }
	if cfg.arrivals == "heavytail" {
		scale := (1 / cfg.rate) / (cfg.alpha / (cfg.alpha - 1))
		nextInter = func() float64 { return rng.Pareto(cfg.alpha) * scale }
	}

	// sentNS[id] is the submission timestamp for latency measurement;
	// request IDs are sequential per session. mu orders the submitter's
	// stamps against the reader's lookups (the wire round trip is the
	// real ordering, but the race detector cannot see through a socket).
	var mu sync.Mutex
	sentNS := make([]int64, cfg.budget)

	var readErr error
	done := make(chan struct{})
	subErrc := make(chan error, 1)

	go func() {
		defer close(done)
		c.SetRecvDeadline(time.Now().Add(cfg.timeout))
		seen := 0
		byeSent := false
		for {
			ev, err := c.Recv()
			if err != nil {
				readErr = fmt.Errorf("recv after %d/%d verdicts: %w", seen, cfg.budget, err)
				return
			}
			now := time.Now().UnixNano()
			mu.Lock()
			for _, nt := range ev.Notices {
				if nt.ID < uint64(len(sentNS)) && sentNS[nt.ID] > 0 {
					d := time.Duration(now - sentNS[nt.ID])
					lat.Observe(d)
					if nt.Verdict == grant.VerdictGranted || nt.Verdict == grant.VerdictRejected {
						settled.Observe(d)
					}
				}
				switch {
				case nt.Verdict.Granted():
					tally.granted++
				case nt.Verdict.Rejected():
					tally.rejected++
				case nt.Verdict.Retry():
					tally.retried++
				}
				seen++
			}
			if ev.Ledger != nil {
				ledger = *ev.Ledger
				mu.Unlock()
				return
			}
			allSeen := seen >= cfg.budget
			mu.Unlock()
			if allSeen && !byeSent {
				// Every verdict collected: close the session and wait
				// for the server's ledger frame.
				if err := c.Bye(); err != nil {
					readErr = err
					return
				}
				byeSent = true
			}
		}
	}()

	// Open-loop submitter: requests fire on the precomputed schedule no
	// matter how the verdicts are going. Arrivals due at the same tick
	// batch into one frame.
	go func() {
		start := time.Now()
		next := 0.0 // scheduled arrival time, seconds since start
		id := 0
		batch := make([]grant.Req, 0, 256)
		for id < cfg.budget {
			now := time.Since(start).Seconds()
			if next > now {
				time.Sleep(time.Duration((next - now) * float64(time.Second)))
				now = time.Since(start).Seconds()
			}
			batch = batch[:0]
			for id < cfg.budget && next <= now && len(batch) < cap(batch) {
				dur := rng.Geometric(cfg.hold)
				if dur < 1 {
					dur = 1
				}
				if dur > 1<<15 {
					dur = 1 << 15
				}
				batch = append(batch, grant.Req{
					ID:   uint64(id),
					In:   uint32(rng.Intn(n)),
					Wave: uint16(rng.Intn(k)),
					Dest: uint32(rng.Intn(n)),
					Dur:  uint16(dur),
				})
				id++
				next += nextInter()
			}
			if len(batch) == 0 {
				continue
			}
			stamp := time.Now().UnixNano()
			mu.Lock()
			for _, q := range batch {
				sentNS[q.ID] = stamp
			}
			mu.Unlock()
			if err := c.Submit(batch); err != nil {
				subErrc <- fmt.Errorf("submit at request %d: %w", id, err)
				return
			}
		}
	}()

	select {
	case <-done:
	case err := <-subErrc:
		return tally, ledger, err
	case <-time.After(cfg.timeout):
		return tally, ledger, fmt.Errorf("timed out after %v waiting for verdicts", cfg.timeout)
	}
	if readErr != nil {
		return tally, ledger, readErr
	}
	mu.Lock()
	defer mu.Unlock()
	if !ledger.Balanced() {
		return tally, ledger, fmt.Errorf("session ledger does not balance: %+v", ledger)
	}
	return tally, ledger, nil
}
