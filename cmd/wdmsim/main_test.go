package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSyncRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "4", "-k", "8", "-slots", "50", "-validate"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"interconnect   4x4", "loss rate", "fairness", "match size"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAsyncRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-async", "-k", "8", "-erlangs", "5", "-arrivals", "5000"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"asynchronous wavelength routing", "blocking prob", "Erlang-B refs"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestWorkloadVariants(t *testing.T) {
	for _, wl := range []string{"hotspot", "bursty"} {
		var out, errb bytes.Buffer
		code := run([]string{"-workload", wl, "-n", "4", "-k", "4", "-slots", "30"}, &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", wl, code, errb.String())
		}
	}
}

func TestDisturbFlagShowsPreemptions(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-disturb", "-hold", "3", "-n", "4", "-k", "4", "-slots", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "preempted") {
		t.Fatalf("disturb output missing preempted line:\n%s", out.String())
	}
}

func TestPriorityClassesFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-classes", "2", "-n", "4", "-k", "4", "-slots", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"class 0", "class 1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrorPaths(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-workload", "bogus"},
		{"-scheduler", "bogus"},
		{"-d", "4"},            // even degree
		{"-k", "2", "-d", "5"}, // degree > k
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 1 {
			t.Fatalf("%v: exit %d, want 1 (stderr: %s)", args, code, errb.String())
		}
		if !strings.Contains(errb.String(), "wdmsim:") {
			t.Fatalf("%v: stderr missing prefix: %s", args, errb.String())
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestFaultFlagsShowDegradedStats(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-convfail", "0.05", "-darkfail", "0.01", "-hold", "2",
		"-n", "4", "-k", "8", "-slots", "80"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"faults", "healthy channels mean", "degraded slots", "fault cost"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("fault output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNoFaultFlagsOmitFaultLines(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "4", "-k", "8", "-slots", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "fault cost") {
		t.Fatalf("fault lines present without fault flags:\n%s", out.String())
	}
}
