package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	wdm "wdmsched"
)

// syncBuffer is a bytes.Buffer safe to read while run() writes it from
// another goroutine (the -listen test scrapes stderr live).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestSyncRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "4", "-k", "8", "-slots", "50", "-validate"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"interconnect   4x4", "loss rate", "fairness", "match size"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAsyncRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-async", "-k", "8", "-erlangs", "5", "-arrivals", "5000"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"asynchronous wavelength routing", "blocking prob", "Erlang-B refs"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestWorkloadVariants(t *testing.T) {
	for _, wl := range []string{"hotspot", "bursty"} {
		var out, errb bytes.Buffer
		code := run([]string{"-workload", wl, "-n", "4", "-k", "4", "-slots", "30"}, &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", wl, code, errb.String())
		}
	}
}

func TestDisturbFlagShowsPreemptions(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-disturb", "-hold", "3", "-n", "4", "-k", "4", "-slots", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "preempted") {
		t.Fatalf("disturb output missing preempted line:\n%s", out.String())
	}
}

func TestPriorityClassesFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-classes", "2", "-n", "4", "-k", "4", "-slots", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"class 0", "class 1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrorPaths(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-workload", "bogus"},
		{"-scheduler", "bogus"},
		{"-d", "4"},            // even degree
		{"-k", "2", "-d", "5"}, // degree > k
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 1 {
			t.Fatalf("%v: exit %d, want 1 (stderr: %s)", args, code, errb.String())
		}
		if !strings.Contains(errb.String(), "wdmsim:") {
			t.Fatalf("%v: stderr missing prefix: %s", args, errb.String())
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestFaultFlagsShowDegradedStats(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-convfail", "0.05", "-darkfail", "0.01", "-hold", "2",
		"-n", "4", "-k", "8", "-slots", "80"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"faults", "healthy channels mean", "degraded slots", "fault cost"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("fault output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNoFaultFlagsOmitFaultLines(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "4", "-k", "8", "-slots", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "fault cost") {
		t.Fatalf("fault lines present without fault flags:\n%s", out.String())
	}
}

func TestQuietFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-quiet", "-n", "4", "-k", "4", "-slots", "30"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("-quiet still wrote output:\n%s", out.String())
	}
}

func TestJSONFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-classes", "2", "-convfail", "0.02", "-hold", "2",
		"-n", "4", "-k", "8", "-slots", "60"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var st struct {
		Slots      int     `json:"slots"`
		Offered    int64   `json:"offered"`
		Granted    int64   `json:"granted"`
		Throughput float64 `json:"throughput"`
		Classes    []struct {
			Offered int64 `json:"offered"`
		} `json:"classes"`
		Fault *struct {
			LostGrants int64 `json:"lost_grants"`
		} `json:"fault"`
	}
	if err := json.Unmarshal(out.Bytes(), &st); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, out.String())
	}
	if st.Slots != 60 || st.Offered == 0 || st.Granted == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if len(st.Classes) != 2 {
		t.Fatalf("want 2 classes, got %d", len(st.Classes))
	}
	if st.Fault == nil {
		t.Fatal("fault stats missing with -convfail set")
	}
}

func TestListenFlagServesMetrics(t *testing.T) {
	var out, errb syncBuffer
	// Enough slots that the server line is printed before the run ends;
	// the endpoint stays up until run() returns, so scrape after.
	done := make(chan int)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-quiet",
			"-n", "4", "-k", "8", "-slots", "4000", "-distributed"}, &out, &errb)
	}()

	// Wait for the listen line to learn the bound address.
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		time.Sleep(10 * time.Millisecond)
		if m := regexp.MustCompile(`http://(\S+)`).FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
		}
	}
	if addr == "" {
		t.Fatalf("no listen line on stderr: %s", errb.String())
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "wdm_offered_packets_total") {
			t.Errorf("metrics body missing wdm_offered_packets_total:\n%s", body)
		}
	} else {
		// The run may already have finished and closed the server; that
		// is a timing outcome, not a failure — but the line must exist.
		t.Logf("scrape raced run completion: %v", err)
	}
	if code := <-done; code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

func TestSpanDumpAndClusterStats(t *testing.T) {
	dir := t.TempDir()
	spanPath := dir + "/ctrl.spans"
	statsPath := dir + "/cluster.json"
	var out, errb bytes.Buffer
	code := run([]string{"-nodes", "2", "-n", "4", "-k", "8", "-slots", "300", "-quiet",
		"-spandump", spanPath, "-clusterstats", statsPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}

	spans, err := os.ReadFile(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(spans), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("span dump has %d lines, want meta + spans", len(lines))
	}
	var meta struct {
		Meta struct {
			Role  string `json:"role"`
			RunID uint64 `json:"run_id"`
			Links []struct {
				Shard int `json:"shard"`
			} `json:"links"`
		} `json:"meta"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line: %v\n%s", err, lines[0])
	}
	if meta.Meta.Role != "controller" || meta.Meta.RunID == 0 || len(meta.Meta.Links) != 2 {
		t.Fatalf("implausible meta: %+v", meta.Meta)
	}
	stages := map[string]bool{}
	for _, line := range lines[1:] {
		var sp struct {
			Stage string `json:"stage"`
		}
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("span line: %v\n%s", err, line)
		}
		stages[sp.Stage] = true
	}
	for _, want := range []string{"slot", "prepare", "encode", "rpc", "commit"} {
		if !stages[want] {
			t.Errorf("span dump missing stage %q (have %v)", want, stages)
		}
	}

	statsBytes, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var cs struct {
		Nodes          int   `json:"nodes"`
		RemoteItems    int64 `json:"remote_items"`
		FramesSent     int64 `json:"frames_sent"`
		FramesReceived int64 `json:"frames_received"`
		Stages         map[string]struct {
			Count int64 `json:"count"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(statsBytes, &cs); err != nil {
		t.Fatalf("cluster stats not JSON: %v\n%s", err, statsBytes)
	}
	if cs.Nodes != 2 || cs.RemoteItems == 0 || cs.FramesSent == 0 || cs.FramesReceived == 0 {
		t.Fatalf("implausible cluster stats: %+v", cs)
	}
	for _, want := range []string{"prepare", "encode", "node-decode", "node-schedule", "node-encode", "commit"} {
		if cs.Stages[want].Count == 0 {
			t.Errorf("stage %q has no observations", want)
		}
	}
}

func TestSpanDumpRequiresCluster(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-spandump", "/tmp/x.spans", "-n", "4", "-k", "4", "-slots", "10"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "-spandump") {
		t.Fatalf("error does not mention the flag: %s", errb.String())
	}
}

func TestAsyncRejectsJSONAndListen(t *testing.T) {
	for _, extra := range []string{"-json", "-listen=127.0.0.1:0"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-async", extra}, &out, &errb); code != 1 {
			t.Fatalf("%s: exit %d, want 1", extra, code)
		}
	}
}

// newRecordedTestSwitch builds a small switch with a flight recorder for
// the runRecorded tests.
func newRecordedTestSwitch(t *testing.T, rec *wdm.FlightRecorder) (*wdm.Switch, wdm.Generator) {
	t.Helper()
	conv, err := wdm.NewSymmetricConversion(wdm.Circular, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := wdm.NewSwitch(wdm.SwitchConfig{N: 4, Conv: conv, Seed: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{N: 4, K: 8, Seed: 2}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return sw, gen
}

// TestRunRecordedDumpRequest: a pending dump request (the SIGQUIT path)
// produces a decodable suffixed bundle at the next slot boundary and the
// run completes normally.
func TestRunRecordedDumpRequest(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "sim.tgz")
	rec := wdm.NewFlightRecorder(wdm.FlightRecorderConfig{Ports: 4, SnapshotEvery: 16})
	sw, gen := newRecordedTestSwitch(t, rec)
	rec.RequestDump()
	var errb bytes.Buffer
	st, err := runRecorded(sw, gen, 100, rec, bundle, simConfig{N: 4, K: 8}, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Slots != 100 {
		t.Fatalf("run incomplete: %+v", st)
	}
	b, err := wdm.ReadIncidentBundleFile(filepath.Join(dir, "sim-sigquit-0.tgz"))
	if err != nil {
		t.Fatalf("requested bundle not written: %v\nstderr: %s", err, errb.String())
	}
	if b.Manifest.Tool != "wdmsim" || b.Manifest.Trigger != "sigquit" {
		t.Errorf("manifest %+v", b.Manifest)
	}
	for _, name := range []string{"config.json", "decisions.jsonl", "snapshots.jsonl", "faults.jsonl"} {
		if !b.Has(name) {
			t.Errorf("bundle missing %s (has %v)", name, b.Names())
		}
	}
	if rec.Dumps() != 1 {
		t.Errorf("recorder booked %d dumps, want 1", rec.Dumps())
	}
}

// panicAtGen panics at a chosen slot, exercising the recovered slot-loop
// boundary.
type panicAtGen struct {
	wdm.Generator
	at int
}

func (p panicAtGen) Generate(slot int, buf []wdm.Packet) []wdm.Packet {
	if slot == p.at {
		panic("injected sim panic")
	}
	return p.Generator.Generate(slot, buf)
}

// TestRunRecordedPanicBundle: a panic mid-run is recovered, the black box
// is dumped, and the error names the slot.
func TestRunRecordedPanicBundle(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "sim.tgz")
	rec := wdm.NewFlightRecorder(wdm.FlightRecorderConfig{Ports: 4, SnapshotEvery: 16})
	sw, gen := newRecordedTestSwitch(t, rec)
	var errb bytes.Buffer
	st, err := runRecorded(sw, panicAtGen{Generator: gen, at: 42}, 100, rec, bundle, simConfig{N: 4, K: 8}, &errb)
	if err == nil || st != nil || !strings.Contains(err.Error(), "panic at slot 42") {
		t.Fatalf("st=%v err=%v", st, err)
	}
	b, err := wdm.ReadIncidentBundleFile(bundle)
	if err != nil {
		t.Fatalf("panic bundle not written: %v\nstderr: %s", err, errb.String())
	}
	if b.Manifest.Trigger != "panic" || b.Manifest.Slot != 42 {
		t.Errorf("manifest %+v, want panic at slot 42", b.Manifest)
	}
	sw.Finalize()
}
