// Command wdmsim simulates an N×N wavelength convertible WDM optical
// interconnect for a configurable workload and prints the run statistics.
//
// Example — 16×16 switch, 32 wavelengths, circular conversion d=3, exact
// scheduling at load 0.9 with multi-slot bursts:
//
//	wdmsim -n 16 -k 32 -kind circular -d 3 -load 0.9 -hold 4 -slots 20000
//
// The -async flag switches to the paper's asynchronous wavelength-routing
// mode (one output fiber, Poisson arrivals, FCFS assignment):
//
//	wdmsim -async -k 16 -d 3 -erlangs 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	wdm "wdmsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command; extracted from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n           = fs.Int("n", 8, "fibers per side")
		k           = fs.Int("k", 16, "wavelengths per fiber")
		kindFlag    = fs.String("kind", "circular", "conversion kind: circular, noncircular, full")
		d           = fs.Int("d", 3, "conversion degree in channels (odd; ignored for kind=full)")
		scheduler   = fs.String("scheduler", "exact", "scheduler: exact, fast, first-available, fast-first-available, break-first-available, fast-break-first-available, parallel-break-first-available, shortest-edge, delta-break(δ), full-range, hopcroft-karp")
		selector    = fs.String("selector", "round-robin", "tie-break: round-robin, random or fixed-priority")
		workload    = fs.String("workload", "bernoulli", "workload: bernoulli, hotspot, bursty")
		load        = fs.Float64("load", 0.8, "offered load per input channel, fraction in [0,1] (bernoulli/hotspot)")
		hot         = fs.Int("hot", 0, "hot output fiber index (hotspot)")
		hotFrac     = fs.Float64("hotfrac", 0.5, "fraction of traffic to the hot fiber (hotspot)")
		meanOn      = fs.Float64("on", 8, "mean burst length in slots (bursty)")
		meanOff     = fs.Float64("off", 8, "mean idle length in slots (bursty)")
		hold        = fs.Float64("hold", 1, "mean connection holding time in slots")
		holdDet     = fs.Bool("holddet", false, "deterministic holding time instead of geometric")
		disturb     = fs.Bool("disturb", false, "disturb mode: reschedule held connections (Section V)")
		distributed = fs.Bool("distributed", false, "one goroutine per output fiber")
		validate    = fs.Bool("validate", false, "route every slot through the datapath model")
		slots       = fs.Int("slots", 10000, "slots to simulate")
		seed        = fs.Uint64("seed", 1, "random seed")
		classes     = fs.Int("classes", 1, "strict-priority QoS classes (count; >1 marks packets uniformly high=20%/rest split)")
		convFail    = fs.Float64("convfail", 0, "per-slot converter failure probability (fault injection)")
		convRepair  = fs.Float64("convrepair", 0.1, "per-slot converter repair probability")
		darkFail    = fs.Float64("darkfail", 0, "per-slot channel dark probability (fault injection)")
		darkRepair  = fs.Float64("darkrepair", 0.1, "per-slot channel restore probability")
		asyncMode   = fs.Bool("async", false, "asynchronous wavelength-routing mode (paper §I)")
		erlangs     = fs.Float64("erlangs", 10, "offered Erlangs λ/µ in -async mode")
		arrivals    = fs.Int("arrivals", 200000, "connection arrivals to simulate in -async mode (count)")
		clusterTo   = fs.String("cluster", "", "comma-separated wdmnode addresses; schedule over the networked cluster runtime")
		nodes       = fs.Int("nodes", 0, "spawn this many in-process loopback nodes and cluster over them (count)")
		netDrop     = fs.Float64("netdrop", 0, "injected frame drop probability on the cluster transport")
		netDup      = fs.Float64("netdup", 0, "injected frame duplication probability on the cluster transport")
		netDelay    = fs.Float64("netdelay", 0, "injected frame delay probability on the cluster transport")
		rpcTimeout  = fs.Duration("rpctimeout", 0, "cluster schedule RPC deadline as a duration (0 = use the runtime's 500ms)")
		spanDump    = fs.String("spandump", "", "write the controller-side span dump (trace context + JSONL spans) to this file after a cluster run; merge with node /spans dumps via wdmtrace -merge")
		clusterOut  = fs.String("clusterstats", "", "write cluster runtime statistics as JSON to this file (kept separate from -json so engine outputs stay byte-comparable)")
		listen      = fs.String("listen", "", "serve live telemetry on this address (/metrics, /snapshot, /debug/pprof)")
		bundlePath  = fs.String("bundle", "wdmsim.incident.tgz", "flight-recorder bundle path (dumped on SIGQUIT, panic or engine error; empty disables)")
		quiet       = fs.Bool("quiet", false, "suppress the statistics table")
		jsonOut     = fs.Bool("json", false, "print statistics as JSON instead of the table")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "wdmsim: %v\n", err)
		return 1
	}
	if *asyncMode && (*jsonOut || *listen != "" || *clusterTo != "" || *nodes > 0) {
		return fail(fmt.Errorf("-json, -listen and -cluster/-nodes are not supported in -async mode"))
	}
	if *clusterTo != "" && *nodes > 0 {
		return fail(fmt.Errorf("-cluster and -nodes are mutually exclusive"))
	}
	if (*spanDump != "" || *clusterOut != "") && *clusterTo == "" && *nodes == 0 {
		return fail(fmt.Errorf("-spandump and -clusterstats require a cluster run (-cluster or -nodes)"))
	}

	kind, err := wdm.ParseKind(*kindFlag)
	if err != nil {
		return fail(err)
	}
	var conv wdm.Conversion
	if kind == wdm.Full {
		conv, err = wdm.NewConversion(wdm.Full, *k, 0, 0)
	} else {
		conv, err = wdm.NewSymmetricConversion(kind, *k, *d)
	}
	if err != nil {
		return fail(err)
	}

	if *asyncMode {
		if err := runAsync(stdout, conv, *erlangs, *arrivals, *seed); err != nil {
			return fail(err)
		}
		return 0
	}

	tcfg := wdm.TrafficConfig{
		N: *n, K: *k, Seed: *seed,
		Hold: wdm.HoldingTime{Mean: *hold, Deterministic: *holdDet},
	}
	var gen wdm.Generator
	switch *workload {
	case "bernoulli":
		gen, err = wdm.NewBernoulliTraffic(tcfg, *load)
	case "hotspot":
		gen, err = wdm.NewHotspotTraffic(tcfg, *load, *hot, *hotFrac)
	case "bursty":
		gen, err = wdm.NewBurstyTraffic(tcfg, *meanOn, *meanOff)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		return fail(err)
	}
	if *classes > 1 {
		// 20% to the highest class, the rest split evenly.
		probs := make([]float64, *classes)
		probs[0] = 0.2
		for c := 1; c < *classes; c++ {
			probs[c] = 0.8 / float64(*classes-1)
		}
		gen, err = wdm.NewPrioritizedTraffic(gen, probs, *seed+1)
		if err != nil {
			return fail(err)
		}
	}

	var faults wdm.FaultInjector
	if *convFail != 0 || *darkFail != 0 {
		faults, err = wdm.NewMarkovFaults(wdm.MarkovFaultConfig{
			N: *n, K: *k, Seed: *seed + 2,
			ConverterFail: *convFail, ConverterRepair: *convRepair,
			ChannelDark: *darkFail, ChannelRestore: *darkRepair,
		})
		if err != nil {
			return fail(err)
		}
	}

	// Cluster mode: either connect to externally started wdmnode processes
	// (-cluster) or spawn loopback nodes in-process (-nodes) — handy for a
	// self-contained demonstration of the networked runtime.
	var ctrl *wdm.ClusterController
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	if *clusterTo != "" || *nodes > 0 {
		addrs := strings.Split(*clusterTo, ",")
		if *nodes > 0 {
			addrs = addrs[:0]
			for i := 0; i < *nodes; i++ {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					return fail(err)
				}
				node := wdm.NewClusterNode(wdm.ClusterNodeConfig{})
				go node.Serve(ln)
				closers = append(closers, func() { node.Close() })
				addrs = append(addrs, ln.Addr().String())
			}
		}
		var tf *wdm.TransportFaults
		if *netDrop > 0 || *netDup > 0 || *netDelay > 0 {
			tf, err = wdm.NewTransportFaults(wdm.TransportFaultConfig{
				Seed: *seed + 3, Drop: *netDrop, Duplicate: *netDup, Delay: *netDelay,
			})
			if err != nil {
				return fail(err)
			}
		}
		var spans *wdm.SpanTracer
		if *spanDump != "" {
			spans = wdm.NewSpanTracer(1, 1<<14)
		}
		ctrl, err = wdm.NewClusterController(wdm.ClusterControllerConfig{
			Addrs: addrs, N: *n, Conv: conv, Scheduler: *scheduler,
			RPCTimeout: *rpcTimeout, Faults: tf, Seed: *seed + 4,
			DialTimeout: 10 * time.Second, Spans: spans,
		})
		if err != nil {
			return fail(err)
		}
		closers = append(closers, func() { ctrl.Close() })
	}

	var reg *wdm.TelemetryRegistry
	if *listen != "" {
		reg = wdm.NewTelemetryRegistry()
		if ctrl != nil {
			ctrl.RegisterTelemetry(reg)
		}
	}
	// The always-on black box: bounded zero-alloc rings taping decisions,
	// counter snapshots and fault-mask transitions, dumped as a bundle on
	// SIGQUIT, a recovered panic, or an engine error.
	rec := wdm.NewFlightRecorder(wdm.FlightRecorderConfig{Ports: *n})
	scfg := simConfig{
		N: *n, K: *k, Kind: *kindFlag, D: *d,
		Scheduler: *scheduler, Selector: *selector, Workload: *workload,
		Load: *load, Hold: *hold, Slots: *slots, Seed: *seed,
		Disturb: *disturb, Distributed: *distributed, Classes: *classes,
	}
	swCfg := wdm.SwitchConfig{
		N: *n, Conv: conv,
		Scheduler: *scheduler, Selector: *selector,
		Seed: *seed, Disturb: *disturb,
		Distributed: *distributed, ValidateFabric: *validate,
		PriorityClasses: *classes,
		Faults:          faults,
		Telemetry:       reg,
		Recorder:        rec,
	}
	if ctrl != nil {
		swCfg.Remote = ctrl
	}
	sw, err := wdm.NewSwitch(swCfg)
	if err != nil {
		return fail(err)
	}
	if reg != nil {
		srv, err := wdm.ServeTelemetry(*listen, reg)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: listening on http://%s\n", srv.Addr())
	}
	st, err := runRecorded(sw, gen, *slots, rec, *bundlePath, scfg, stderr)
	if err != nil {
		return fail(err)
	}
	if *spanDump != "" {
		if err := writeToFile(*spanDump, ctrl.WriteSpans); err != nil {
			return fail(err)
		}
	}
	if *clusterOut != "" {
		if err := writeToFile(*clusterOut, func(w io.Writer) error {
			return writeClusterJSON(w, st.Cluster)
		}); err != nil {
			return fail(err)
		}
	}

	if *jsonOut {
		if err := writeJSONStats(stdout, st, *n, *k); err != nil {
			return fail(err)
		}
		return 0
	}
	if *quiet {
		return 0
	}

	fmt.Fprintf(stdout, "interconnect   %dx%d, %v\n", *n, *n, conv)
	fmt.Fprintf(stdout, "scheduler      %s, selector %s, disturb=%v, distributed=%v\n",
		*scheduler, *selector, *disturb, *distributed)
	fmt.Fprintf(stdout, "workload       %s, mean hold %.1f slots, %d slots simulated\n",
		*workload, *hold, *slots)
	fmt.Fprintf(stdout, "offered        %d packets\n", st.Offered.Value())
	fmt.Fprintf(stdout, "granted        %d packets (acceptance %.4f)\n", st.Granted.Value(), st.AcceptanceRate())
	fmt.Fprintf(stdout, "dropped        %d output contention, %d input blocked\n",
		st.OutputDropped.Value(), st.InputBlocked.Value())
	if *disturb {
		fmt.Fprintf(stdout, "preempted      %d held connections\n", st.Preempted.Value())
	}
	if *classes > 1 {
		for c := 0; c < *classes; c++ {
			fmt.Fprintf(stdout, "class %d        loss %.6f (%d offered)\n",
				c, st.ClassLossRate(c), st.PerClassOffered[c])
		}
	}
	if st.Fault != nil {
		fmt.Fprintf(stdout, "faults         %.1f healthy channels mean (of %d), %.1f%% degraded slots\n",
			st.Fault.MeanHealthyChannels(), *n**k, 100*st.Fault.DegradedFraction(st.Slots))
		fmt.Fprintf(stdout, "fault cost     %d grants lost, %d connections killed\n",
			st.Fault.LostGrants.Value(), st.Fault.KilledConnections.Value())
	}
	if st.Cluster != nil {
		c := st.Cluster
		fmt.Fprintf(stdout, "cluster        %d nodes, remote fraction %.4f (%d remote, %d fallback, %d empty)\n",
			c.Nodes, c.RemoteFraction(), c.RemoteItems.Value(), c.LocalFallbackItems.Value(), c.EmptyItems.Value())
		fmt.Fprintf(stdout, "cluster rpc    mean %v p99 %v; %d retries, %d deadline misses, %d reconnects\n",
			c.RPCLatency.Mean(), c.RPCLatency.Quantile(0.99), c.Retries.Value(), c.DeadlineMisses.Value(), c.Reconnects.Value())
		fmt.Fprintf(stdout, "cluster wire   %d bytes sent, %d received\n",
			c.BytesSent.Value(), c.BytesReceived.Value())
	}
	fmt.Fprintf(stdout, "loss rate      %.6f\n", st.LossRate())
	fmt.Fprintf(stdout, "throughput     %.4f granted packets per channel-slot\n", st.Throughput(*n, *k))
	fmt.Fprintf(stdout, "utilization    %.4f busy channel-slots fraction\n", st.Utilization(*n, *k))
	fmt.Fprintf(stdout, "fairness       %.4f Jain index over input fibers\n", st.FairnessJain())
	fmt.Fprintf(stdout, "match size     mean %.2f, p99 %d (per output fiber per slot)\n",
		st.MatchSizes.Mean(), st.MatchSizes.Quantile(0.99))
	return 0
}

// simConfig is the effective run shape embedded in wdmsim incident
// bundles so a dump is interpretable (and re-runnable) on its own.
type simConfig struct {
	N           int     `json:"n"`
	K           int     `json:"k"`
	Kind        string  `json:"kind"`
	D           int     `json:"d"`
	Scheduler   string  `json:"scheduler"`
	Selector    string  `json:"selector"`
	Workload    string  `json:"workload"`
	Load        float64 `json:"load"`
	Hold        float64 `json:"hold"`
	Slots       int     `json:"slots"`
	Seed        uint64  `json:"seed"`
	Disturb     bool    `json:"disturb"`
	Distributed bool    `json:"distributed"`
	Classes     int     `json:"classes"`
}

// runRecorded drives the slot loop explicitly (rather than Switch.Run) so
// SIGQUIT dump requests are honored at slot boundaries — where the
// recorder's single-writer rings are safe to read — and a panic escaping
// slot processing is recovered there with the black-box tape saved before
// the error propagates. SIGQUIT dumps do not stop the run.
func runRecorded(sw *wdm.Switch, gen wdm.Generator, slots int, rec *wdm.FlightRecorder, bundlePath string, cfg simConfig, stderr io.Writer) (st *wdm.Stats, err error) {
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-quit:
				rec.RequestDump()
			case <-done:
				return
			}
		}
	}()

	slot := 0
	defer func() {
		if r := recover(); r != nil {
			dumpSimBundle(bundlePath, "panic", int64(slot), cfg, rec, stderr)
			st, err = nil, fmt.Errorf("panic at slot %d: %v", slot, r)
		}
	}()
	var buf []wdm.Packet
	for ; slot < slots; slot++ {
		buf = gen.Generate(slot, buf[:0])
		if err := sw.RunSlot(buf); err != nil {
			dumpSimBundle(bundlePath, "error", int64(slot), cfg, rec, stderr)
			return nil, err
		}
		if rec.TakeDumpRequest() {
			path := strings.TrimSuffix(bundlePath, ".tgz") + fmt.Sprintf("-sigquit-%d.tgz", slot)
			dumpSimBundle(path, "sigquit", int64(slot), cfg, rec, stderr)
		}
	}
	return sw.Finalize(), nil
}

// dumpSimBundle writes the recorder rings plus the run config as one
// incident bundle; failures are reported but never fail the run.
func dumpSimBundle(path, trigger string, slot int64, cfg simConfig, rec *wdm.FlightRecorder, stderr io.Writer) {
	if path == "" {
		return
	}
	start := time.Now()
	w := wdm.NewIncidentBundleWriter("wdmsim", trigger, slot)
	err := w.AddJSON("config.json", cfg)
	if err == nil {
		err = w.AddFunc("decisions.jsonl", rec.Decisions().WriteJSONL)
	}
	if err == nil {
		err = w.AddFunc("snapshots.jsonl", rec.WriteSnapshotsJSONL)
	}
	if err == nil {
		err = w.AddFunc("faults.jsonl", rec.WriteFaultsJSONL)
	}
	if err == nil {
		err = w.WriteFile(path)
	}
	if err != nil {
		fmt.Fprintf(stderr, "wdmsim: dumping flight-recorder bundle: %v\n", err)
		return
	}
	rec.NoteDump(time.Since(start))
	fmt.Fprintf(stderr, "wdmsim: flight-recorder bundle: %s\n", path)
}

// writeJSONStats prints the run statistics as one indented JSON document,
// for scripting over wdmsim without scraping the human table.
func writeJSONStats(w io.Writer, st *wdm.Stats, n, k int) error {
	type classStats struct {
		Offered int64   `json:"offered"`
		Granted int64   `json:"granted"`
		Loss    float64 `json:"loss_rate"`
	}
	type faultStats struct {
		MeanHealthyChannels float64 `json:"mean_healthy_channels"`
		DegradedFraction    float64 `json:"degraded_slot_fraction"`
		LostGrants          int64   `json:"lost_grants"`
		KilledConnections   int64   `json:"killed_connections"`
	}
	out := struct {
		Slots         int          `json:"slots"`
		Offered       int64        `json:"offered"`
		Granted       int64        `json:"granted"`
		OutputDropped int64        `json:"output_dropped"`
		InputBlocked  int64        `json:"input_blocked"`
		Preempted     int64        `json:"preempted"`
		Acceptance    float64      `json:"acceptance_rate"`
		LossRate      float64      `json:"loss_rate"`
		Throughput    float64      `json:"throughput"`
		Utilization   float64      `json:"utilization"`
		FairnessJain  float64      `json:"fairness_jain"`
		MatchMean     float64      `json:"match_size_mean"`
		MatchP99      int          `json:"match_size_p99"`
		Classes       []classStats `json:"classes,omitempty"`
		Fault         *faultStats  `json:"fault,omitempty"`
	}{
		Slots:         st.Slots,
		Offered:       st.Offered.Value(),
		Granted:       st.Granted.Value(),
		OutputDropped: st.OutputDropped.Value(),
		InputBlocked:  st.InputBlocked.Value(),
		Preempted:     st.Preempted.Value(),
		Acceptance:    st.AcceptanceRate(),
		LossRate:      st.LossRate(),
		Throughput:    st.Throughput(n, k),
		Utilization:   st.Utilization(n, k),
		FairnessJain:  st.FairnessJain(),
		MatchMean:     st.MatchSizes.Mean(),
		MatchP99:      st.MatchSizes.Quantile(0.99),
	}
	for c := range st.PerClassOffered {
		out.Classes = append(out.Classes, classStats{
			Offered: st.PerClassOffered[c],
			Granted: st.PerClassGranted[c],
			Loss:    st.ClassLossRate(c),
		})
	}
	if st.Fault != nil {
		out.Fault = &faultStats{
			MeanHealthyChannels: st.Fault.MeanHealthyChannels(),
			DegradedFraction:    st.Fault.DegradedFraction(st.Slots),
			LostGrants:          st.Fault.LostGrants.Value(),
			KilledConnections:   st.Fault.KilledConnections.Value(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeToFile creates path and streams fn's output into it.
func writeToFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeClusterJSON prints the cluster runtime statistics as one JSON
// document. This lives in its own file (-clusterstats) rather than inside
// -json: the smoke test byte-compares -json output across engines, and
// wire counters are engine-specific by construction.
func writeClusterJSON(w io.Writer, c *wdm.ClusterStats) error {
	if c == nil {
		return fmt.Errorf("no cluster statistics: run did not schedule over the cluster")
	}
	type stage struct {
		Count  int64   `json:"count"`
		MeanNS int64   `json:"mean_ns"`
		SumSec float64 `json:"sum_seconds"`
	}
	mk := func(h *wdm.DurationHistogram) stage {
		return stage{Count: h.Count(), MeanNS: h.Mean().Nanoseconds(), SumSec: h.Sum().Seconds()}
	}
	out := struct {
		Nodes          int              `json:"nodes"`
		RemoteItems    int64            `json:"remote_items"`
		FallbackItems  int64            `json:"fallback_items"`
		EmptyItems     int64            `json:"empty_items"`
		FallbackSlots  int64            `json:"fallback_slots"`
		Retries        int64            `json:"retries"`
		DeadlineMisses int64            `json:"deadline_misses"`
		Reconnects     int64            `json:"reconnects"`
		BytesSent      int64            `json:"bytes_sent"`
		BytesReceived  int64            `json:"bytes_received"`
		FramesSent     int64            `json:"frames_sent"`
		FramesReceived int64            `json:"frames_received"`
		RPCMeanNS      int64            `json:"rpc_mean_ns"`
		RPCP99NS       int64            `json:"rpc_p99_ns"`
		Stages         map[string]stage `json:"stages"`
	}{
		Nodes:          c.Nodes,
		RemoteItems:    c.RemoteItems.Value(),
		FallbackItems:  c.LocalFallbackItems.Value(),
		EmptyItems:     c.EmptyItems.Value(),
		FallbackSlots:  c.FallbackSlots.Value(),
		Retries:        c.Retries.Value(),
		DeadlineMisses: c.DeadlineMisses.Value(),
		Reconnects:     c.Reconnects.Value(),
		BytesSent:      c.BytesSent.Value(),
		BytesReceived:  c.BytesReceived.Value(),
		FramesSent:     c.FramesSent.Value(),
		FramesReceived: c.FramesReceived.Value(),
		RPCMeanNS:      c.RPCLatency.Mean().Nanoseconds(),
		RPCP99NS:       c.RPCLatency.Quantile(0.99).Nanoseconds(),
		Stages: map[string]stage{
			"prepare":       mk(c.PrepareTime),
			"encode":        mk(c.EncodeTime),
			"node-decode":   mk(c.NodeDecodeTime),
			"node-schedule": mk(c.NodeScheduleTime),
			"node-encode":   mk(c.NodeEncodeTime),
			"commit":        mk(c.CommitTime),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runAsync simulates the asynchronous (wavelength routing) mode at one
// output fiber and prints blocking statistics with the Erlang-B reference
// for the two conversion extremes.
func runAsync(stdout io.Writer, conv wdm.Conversion, erlangs float64, arrivals int, seed uint64) error {
	st, err := wdm.RunAsync(wdm.AsyncConfig{
		Conv: conv, ArrivalRate: erlangs, MeanHold: 1,
		Policy: wdm.FirstFit, Seed: seed,
	}, arrivals)
	if err != nil {
		return err
	}
	k := conv.K()
	e1, err := wdm.ErlangB(1, erlangs/float64(k))
	if err != nil {
		return err
	}
	ek, err := wdm.ErlangB(k, erlangs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "asynchronous wavelength routing, one output fiber, %v\n", conv)
	fmt.Fprintf(stdout, "offered        %.1f Erlangs, %d arrivals, FCFS first-fit\n", erlangs, st.Offered)
	fmt.Fprintf(stdout, "blocked        %d connections\n", st.Blocked)
	fmt.Fprintf(stdout, "blocking prob  %.6f\n", st.BlockingProbability())
	fmt.Fprintf(stdout, "carried        %.3f Erlangs over %.1f time units\n", st.CarriedErlangs, st.Duration)
	fmt.Fprintf(stdout, "Erlang-B refs  d=1: %.6f   full range: %.6f\n", e1, ek)
	return nil
}
