package main

import (
	"bytes"
	"testing"

	"wdmsched/internal/flagcheck"
)

// helpFlags runs the command with -h and parses the flag dump, so the
// assertions below pin exactly what an operator sees.
func helpFlags(t *testing.T) map[string]flagcheck.Flag {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("run(-h) = %d, want 2", code)
	}
	flags := flagcheck.Parse(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from help output:\n%s", errb.String())
	}
	return flags
}

// TestFlagDefaults pins the simulator defaults to the values DESIGN.md
// documents; a drive-by flag change must update both.
func TestFlagDefaults(t *testing.T) {
	flags := helpFlags(t)
	want := map[string]string{
		"n":         "8",
		"k":         "16",
		"kind":      `"circular"`,
		"d":         "3",
		"scheduler": `"exact"`,
		"selector":  `"round-robin"`,
		"workload":  `"bernoulli"`,
		"load":      "0.8",
		"hold":      "1",
		"slots":     "10000",
		"seed":      "1",
		"classes":   "1",
		"erlangs":   "10",
		"arrivals":  "200000",
		"bundle":    `"wdmsim.incident.tgz"`,
	}
	for name, def := range want {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if f.Default != def {
			t.Errorf("-%s default = %s, want %s", name, f.Default, def)
		}
	}
}

// TestFlagUsageNamesUnits requires every quantity-bearing flag to say
// what it is measured in (slots vs ms vs fraction vs count).
func TestFlagUsageNamesUnits(t *testing.T) {
	flags := helpFlags(t)
	quantity := []string{
		"n", "k", "d", "load", "hot", "hotfrac", "on", "off", "hold",
		"slots", "classes", "convfail", "convrepair", "darkfail",
		"darkrepair", "erlangs", "arrivals", "nodes", "netdrop",
		"netdup", "netdelay", "rpctimeout",
	}
	for _, name := range quantity {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if !flagcheck.NamesUnit(f.Usage) {
			t.Errorf("-%s usage names no unit: %q", name, f.Usage)
		}
	}
}
