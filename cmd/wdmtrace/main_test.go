package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestGenAndInfoRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	var out, errb bytes.Buffer
	code := run([]string{"-gen", "-o", path, "-n", "4", "-k", "8", "-slots", "50", "-load", "0.7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("gen exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("gen output: %s", out.String())
	}

	out.Reset()
	code = run([]string{"-info", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("info exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"N=4, k=8, 50 slots", "offered load"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("info output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGenWorkloadVariants(t *testing.T) {
	for _, wl := range []string{"hotspot", "bursty"} {
		path := filepath.Join(t.TempDir(), wl+".bin")
		var out, errb bytes.Buffer
		code := run([]string{"-gen", "-o", path, "-workload", wl, "-n", "2", "-k", "4", "-slots", "20"}, &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", wl, code, errb.String())
		}
	}
}

func TestErrorPaths(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-info", "/does/not/exist"}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-gen", "-workload", "bogus"}, &out, &errb); code != 1 {
		t.Fatalf("bad workload: exit %d, want 1", code)
	}
	if code := run([]string{"-gen", "-o", "/no/such/dir/x.bin", "-slots", "1", "-n", "2", "-k", "2"}, &out, &errb); code != 1 {
		t.Fatalf("unwritable output: exit %d, want 1", code)
	}
	if code := run([]string{"-zzz"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestInfoRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-info", path}, &out, &errb); code != 1 {
		t.Fatalf("garbage trace: exit %d, want 1", code)
	}
}

func TestDecisionsJSONLDump(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.bin")
	var out, errb bytes.Buffer
	if code := run([]string{"-gen", "-o", trace, "-n", "4", "-k", "8",
		"-slots", "120", "-load", "0.9", "-hold", "2"}, &out, &errb); code != 0 {
		t.Fatalf("gen exit %d, stderr: %s", code, errb.String())
	}

	dump := filepath.Join(dir, "decisions.jsonl")
	out.Reset()
	code := run([]string{"-decisions", trace, "-dump", dump, "-distributed"}, &out, &errb)
	if code != 0 {
		t.Fatalf("decisions exit %d, stderr: %s", code, errb.String())
	}
	// Summary asserts the exactness invariant; re-derive it from output.
	m := regexp.MustCompile(`grants\s+(\d+) events, stats granted (\d+)`).
		FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no grants line in output:\n%s", out.String())
	}
	if m[1] != m[2] {
		t.Fatalf("grant events %s != stats granted %s", m[1], m[2])
	}
	if m[1] == "0" {
		t.Fatal("zero grants in a 0.9-load replay")
	}

	// Every dumped line is a JSON object with the expected keys.
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d dump lines", len(lines))
	}
	var grants int
	for i, line := range lines {
		var rec struct {
			Kind string `json:"kind"`
			Slot *int64 `json:"slot"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec.Slot == nil {
			t.Fatalf("line %d missing slot: %s", i, line)
		}
		if rec.Kind == "grant" {
			grants++
		}
	}
	if want := m[1]; strconv.Itoa(grants) != want {
		t.Errorf("dump has %d grant lines, summary says %s", grants, want)
	}
}

func TestDecisionsChromeDump(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.bin")
	var out, errb bytes.Buffer
	if code := run([]string{"-gen", "-o", trace, "-n", "2", "-k", "4",
		"-slots", "40", "-load", "0.8"}, &out, &errb); code != 0 {
		t.Fatalf("gen exit %d, stderr: %s", code, errb.String())
	}
	dump := filepath.Join(dir, "run.trace.json")
	if code := run([]string{"-decisions", trace, "-format", "chrome", "-dump", dump,
		"-scheduler", "break-first-available"}, &out, &errb); code != 0 {
		t.Fatalf("decisions exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome dump not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty chrome dump")
	}
	var sawSpan bool
	for _, e := range events {
		if e["ph"] == "X" {
			sawSpan = true
			break
		}
	}
	if !sawSpan {
		t.Error("chrome dump has no slot-latency spans")
	}
}

func TestDecisionsErrorPaths(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.bin")
	var out, errb bytes.Buffer
	if code := run([]string{"-gen", "-o", trace, "-n", "2", "-k", "4", "-slots", "10"}, &out, &errb); code != 0 {
		t.Fatal("gen failed")
	}
	if code := run([]string{"-decisions", "/does/not/exist"}, &out, &errb); code != 1 {
		t.Fatalf("missing trace: exit %d, want 1", code)
	}
	if code := run([]string{"-decisions", trace, "-format", "bogus",
		"-dump", filepath.Join(dir, "x")}, &out, &errb); code != 1 {
		t.Fatalf("bad format: exit %d, want 1", code)
	}
	if code := run([]string{"-decisions", trace, "-dump", "/no/such/dir/x.jsonl"}, &out, &errb); code != 1 {
		t.Fatalf("unwritable dump: exit %d, want 1", code)
	}
}
