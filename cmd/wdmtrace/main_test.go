package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenAndInfoRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	var out, errb bytes.Buffer
	code := run([]string{"-gen", "-o", path, "-n", "4", "-k", "8", "-slots", "50", "-load", "0.7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("gen exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("gen output: %s", out.String())
	}

	out.Reset()
	code = run([]string{"-info", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("info exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"N=4, k=8, 50 slots", "offered load"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("info output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGenWorkloadVariants(t *testing.T) {
	for _, wl := range []string{"hotspot", "bursty"} {
		path := filepath.Join(t.TempDir(), wl+".bin")
		var out, errb bytes.Buffer
		code := run([]string{"-gen", "-o", path, "-workload", wl, "-n", "2", "-k", "4", "-slots", "20"}, &out, &errb)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", wl, code, errb.String())
		}
	}
}

func TestErrorPaths(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no mode: exit %d, want 2", code)
	}
	if code := run([]string{"-info", "/does/not/exist"}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-gen", "-workload", "bogus"}, &out, &errb); code != 1 {
		t.Fatalf("bad workload: exit %d, want 1", code)
	}
	if code := run([]string{"-gen", "-o", "/no/such/dir/x.bin", "-slots", "1", "-n", "2", "-k", "2"}, &out, &errb); code != 1 {
		t.Fatalf("unwritable output: exit %d, want 1", code)
	}
	if code := run([]string{"-zzz"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestInfoRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-info", path}, &out, &errb); code != 1 {
		t.Fatalf("garbage trace: exit %d, want 1", code)
	}
}
