package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// spanRec is one parsed span dump line (telemetry.SpanTracer.WriteJSONL).
// Start/Dur are nanoseconds on the dumping process's local span clock.
type spanRec struct {
	Slot  int64  `json:"slot"`
	Lane  int32  `json:"lane"`
	Stage string `json:"stage"`
	Port  int32  `json:"port"`
	ID    uint64 `json:"id"`
	Start int64  `json:"start"`
	Dur   int64  `json:"dur"`
}

// linkSync mirrors cluster.LinkSync: the controller's clock estimate for
// one node link, used to place node spans on the controller timeline.
type linkSync struct {
	Node     string `json:"node"`
	Shard    int    `json:"shard"`
	OffsetNS int64  `json:"offset_ns"`
	RTTNS    int64  `json:"rtt_ns"`
}

type dumpMeta struct {
	Role  string     `json:"role"`
	RunID uint64     `json:"run_id"`
	Links []linkSync `json:"links"`
}

type spanDump struct {
	path  string
	meta  dumpMeta
	spans []spanRec
}

// readSpanDump parses one dump file: a meta line followed by span JSONL.
func readSpanDump(path string) (*spanDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return nil, fmt.Errorf("%s: empty span dump", path)
	}
	var first struct {
		Meta *dumpMeta `json:"meta"`
	}
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Meta == nil {
		return nil, fmt.Errorf("%s: first line is not a span-dump meta object", path)
	}
	d := &spanDump{path: path, meta: *first.Meta}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s spanRec
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("%s: bad span line: %w", path, err)
		}
		d.spans = append(d.spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// shardOf recovers the controller link a node dump talked to. Span IDs
// are seq<<20|shard, so any echoed ID names the shard directly.
func shardOf(d *spanDump, nLinks int) (int, error) {
	for _, s := range d.spans {
		if s.ID != 0 {
			shard := int(s.ID & (1<<20 - 1))
			if shard >= nLinks {
				return 0, fmt.Errorf("%s: span id %#x names shard %d, controller has %d links",
					d.path, s.ID, shard, nLinks)
			}
			return shard, nil
		}
	}
	return 0, fmt.Errorf("%s: no span carries a trace ID; cannot map the dump to a controller link", d.path)
}

// traceEvent is one Chrome trace_event record; ts and dur are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func metaEvent(pid int, name string) traceEvent {
	return traceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
}

// runMerge joins one controller span dump with any number of node dumps
// into a single Chrome trace_event timeline (process 0 is the controller,
// process shard+1 each node, thread = tracer lane), with node clocks
// corrected by the controller's piggybacked-timestamp offset estimate and
// an RPC flow arrow from each controller RPC span to the node work it
// covered. It always prints the per-stage latency attribution table;
// -check additionally enforces the cross-process invariants.
func runMerge(stdout io.Writer, paths []string, outPath string, check bool) error {
	if len(paths) < 2 {
		return fmt.Errorf("-merge needs a controller dump and at least one node dump")
	}
	ctrl, err := readSpanDump(paths[0])
	if err != nil {
		return err
	}
	if ctrl.meta.Role != "controller" {
		return fmt.Errorf("%s: role %q, want controller first (node dumps follow in any order)",
			ctrl.path, ctrl.meta.Role)
	}
	nodes := make(map[int]*spanDump) // shard -> dump
	for _, p := range paths[1:] {
		d, err := readSpanDump(p)
		if err != nil {
			return err
		}
		if d.meta.Role != "node" {
			return fmt.Errorf("%s: role %q, want node", p, d.meta.Role)
		}
		if d.meta.RunID != 0 && d.meta.RunID != ctrl.meta.RunID {
			return fmt.Errorf("%s: run %#x does not match controller run %#x (dumps from different runs?)",
				p, d.meta.RunID, ctrl.meta.RunID)
		}
		shard, err := shardOf(d, len(ctrl.meta.Links))
		if err != nil {
			return err
		}
		if prev, dup := nodes[shard]; dup {
			return fmt.Errorf("%s and %s both map to shard %d", prev.path, d.path, shard)
		}
		nodes[shard] = d
	}

	offsets := make(map[int]int64, len(ctrl.meta.Links))
	rtts := make(map[int]int64, len(ctrl.meta.Links))
	for _, l := range ctrl.meta.Links {
		offsets[l.Shard], rtts[l.Shard] = l.OffsetNS, l.RTTNS
	}

	// rpcByID lets node spans attach flow arrows (and -check containment)
	// to the controller RPC that carried them.
	rpcByID := make(map[uint64]spanRec)
	for _, s := range ctrl.spans {
		if s.Stage == "rpc" && s.ID != 0 {
			rpcByID[s.ID] = s
		}
	}

	events := []traceEvent{metaEvent(0, "controller")}
	for shard := range nodes {
		events = append(events, metaEvent(shard+1, fmt.Sprintf("node %s", ctrl.meta.Links[shard].Node)))
	}
	addSpan := func(pid int, s spanRec, start int64) {
		events = append(events, traceEvent{
			Name: s.Stage, Ph: "X", Pid: pid, Tid: s.Lane,
			Ts: float64(start) / 1e3, Dur: float64(s.Dur) / 1e3,
			Args: map[string]any{"slot": s.Slot, "port": s.Port, "id": s.ID},
		})
	}
	for _, s := range ctrl.spans {
		addSpan(0, s, s.Start)
		if s.Stage == "rpc" && s.ID != 0 {
			events = append(events, traceEvent{
				Name: "rpc", Ph: "s", Cat: "rpc", Pid: 0, Tid: s.Lane,
				Ts: float64(s.Start) / 1e3, ID: fmt.Sprintf("%#x", s.ID),
			})
		}
	}
	flows := 0
	for shard, d := range nodes {
		off := offsets[shard]
		for _, s := range d.spans {
			start := s.Start - off // node clock -> controller clock
			addSpan(shard+1, s, start)
			if s.Stage == "decode" && s.ID != 0 {
				if _, ok := rpcByID[s.ID]; ok {
					events = append(events, traceEvent{
						Name: "rpc", Ph: "f", BP: "e", Cat: "rpc", Pid: shard + 1, Tid: s.Lane,
						Ts: float64(start) / 1e3, ID: fmt.Sprintf("%#x", s.ID),
					})
					flows++
				}
			}
		}
	}

	of, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(of)
	if err := enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events}); err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}

	nodeSpans := 0
	for _, d := range nodes {
		nodeSpans += len(d.spans)
	}
	fmt.Fprintf(stdout, "merged         %d controller + %d node spans from %d processes -> %s\n",
		len(ctrl.spans), nodeSpans, 1+len(nodes), outPath)
	fmt.Fprintf(stdout, "flow arrows    %d RPC send->receive edges\n", flows)
	for _, l := range ctrl.meta.Links {
		fmt.Fprintf(stdout, "clock sync     shard %d (%s): offset %v, rtt %v\n",
			l.Shard, l.Node, time.Duration(l.OffsetNS), time.Duration(l.RTTNS))
	}

	printAttribution(stdout, ctrl, nodes)
	if check {
		return checkMerge(stdout, ctrl, nodes, offsets, rtts, rpcByID)
	}
	return nil
}

// printAttribution renders the per-stage latency table over every process's
// spans: how the distributed slot pipeline's time divides among its stages,
// each stage's share expressed against total slot-span time.
func printAttribution(w io.Writer, ctrl *spanDump, nodes map[int]*spanDump) {
	type agg struct {
		count int64
		total int64
	}
	stages := map[string]*agg{}
	add := func(spans []spanRec) {
		for _, s := range spans {
			a := stages[s.Stage]
			if a == nil {
				a = &agg{}
				stages[s.Stage] = a
			}
			a.count++
			a.total += s.Dur
		}
	}
	add(ctrl.spans)
	for _, d := range nodes {
		add(d.spans)
	}
	var slotTotal int64
	if a := stages["slot"]; a != nil {
		slotTotal = a.total
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return stages[names[i]].total > stages[names[j]].total })
	fmt.Fprintf(w, "\n%-14s %10s %14s %12s %8s\n", "stage", "spans", "total", "mean", "of slot")
	for _, name := range names {
		a := stages[name]
		share := "-"
		if slotTotal > 0 && name != "slot" {
			share = fmt.Sprintf("%.1f%%", 100*float64(a.total)/float64(slotTotal))
		}
		fmt.Fprintf(w, "%-14s %10d %14v %12v %8s\n", name, a.count,
			time.Duration(a.total), time.Duration(a.total/a.count), share)
	}
}

// checkMerge enforces the merged timeline's invariants:
//
//  1. Containment — every node span, after clock correction, must lie
//     within the controller RPC span that carried it, give or take the
//     link RTT plus a fixed 100µs slack (the offset estimate is only as
//     good as the best sample). At most 2% of spans may violate.
//  2. Attribution — prepare + commit + the per-slot critical path of
//     encode/RPC/fallback must explain 40–105% of total slot-span time;
//     far less means spans are missing, more than ~100% means
//     double-counting or broken clocks.
func checkMerge(w io.Writer, ctrl *spanDump, nodes map[int]*spanDump,
	offsets, rtts map[int]int64, rpcByID map[uint64]spanRec) error {
	checked, violations := 0, 0
	for shard, d := range nodes {
		slack := rtts[shard] + 100_000
		off := offsets[shard]
		for _, s := range d.spans {
			if s.ID == 0 {
				continue
			}
			rpc, ok := rpcByID[s.ID]
			if !ok {
				continue // RPC span rotated out of the controller ring
			}
			checked++
			start := s.Start - off
			if start < rpc.Start-slack || start+s.Dur > rpc.Start+rpc.Dur+slack {
				violations++
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("check: no node span matched a controller RPC span")
	}
	frac := float64(violations) / float64(checked)
	fmt.Fprintf(w, "containment    %d/%d node spans outside their RPC window (%.2f%%)\n",
		violations, checked, 100*frac)
	if frac > 0.02 {
		return fmt.Errorf("check: %.2f%% of node spans fall outside their clock-corrected RPC window (limit 2%%)", 100*frac)
	}

	type slotAgg struct {
		perLane map[int32]int64 // encode+rpc+fallback per controller lane
		prep    int64
		commit  int64
		slot    int64
	}
	slots := map[int64]*slotAgg{}
	at := func(slot int64) *slotAgg {
		a := slots[slot]
		if a == nil {
			a = &slotAgg{perLane: map[int32]int64{}}
			slots[slot] = a
		}
		return a
	}
	for _, s := range ctrl.spans {
		a := at(s.Slot)
		switch s.Stage {
		case "slot":
			a.slot += s.Dur
		case "prepare":
			a.prep += s.Dur
		case "commit":
			a.commit += s.Dur
		case "encode", "rpc", "fallback":
			a.perLane[s.Lane] += s.Dur
		}
	}
	var explained, slotTotal int64
	for _, a := range slots {
		if a.slot == 0 {
			continue // slot span rotated out; nothing to attribute against
		}
		slotTotal += a.slot
		var critical int64
		for _, d := range a.perLane {
			if d > critical {
				critical = d
			}
		}
		explained += a.prep + a.commit + critical
	}
	if slotTotal == 0 {
		return fmt.Errorf("check: no slot spans retained; raise the span capacity")
	}
	ratio := float64(explained) / float64(slotTotal)
	fmt.Fprintf(w, "attribution    stages explain %.1f%% of slot time\n", 100*ratio)
	if ratio < 0.4 || ratio > 1.05 {
		return fmt.Errorf("check: stage attribution explains %.1f%% of slot time, want 40%%-105%%", 100*ratio)
	}
	fmt.Fprintln(w, "check          ok")
	return nil
}
