package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"wdmsched/internal/spancheck"
)

// runMerge joins one controller span dump with any number of node dumps
// into a single Chrome trace_event timeline (process 0 is the controller,
// process shard+1 each node, thread = tracer lane), with node clocks
// corrected by the controller's piggybacked-timestamp offset estimate and
// an RPC flow arrow from each controller RPC span to the node work it
// covered. It always prints the per-stage latency attribution table;
// -check additionally enforces the cross-process invariants. The heavy
// lifting lives in internal/spancheck, which wdmsoak shares.
func runMerge(stdout io.Writer, paths []string, outPath string, check bool) error {
	if len(paths) < 2 {
		return fmt.Errorf("-merge needs a controller dump and at least one node dump")
	}
	ctrl, err := spancheck.ReadDumpFile(paths[0])
	if err != nil {
		return err
	}
	nodes := make([]*spancheck.Dump, 0, len(paths)-1)
	for _, p := range paths[1:] {
		d, err := spancheck.ReadDumpFile(p)
		if err != nil {
			return err
		}
		nodes = append(nodes, d)
	}
	m, err := spancheck.Merge(ctrl, nodes)
	if err != nil {
		return err
	}

	of, err := os.Create(outPath)
	if err != nil {
		return err
	}
	flows, err := m.WriteChrome(of)
	if err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "merged         %d controller + %d node spans from %d processes -> %s\n",
		len(ctrl.Spans), m.NodeSpanCount(), 1+len(m.Nodes), outPath)
	fmt.Fprintf(stdout, "flow arrows    %d RPC send->receive edges\n", flows)
	for _, l := range ctrl.Meta.Links {
		fmt.Fprintf(stdout, "clock sync     shard %d (%s): offset %v, rtt %v\n",
			l.Shard, l.Node, time.Duration(l.OffsetNS), time.Duration(l.RTTNS))
	}

	printAttribution(stdout, m)
	if check {
		rep, cerr := m.Check()
		if rep.Checked > 0 {
			fmt.Fprintf(stdout, "containment    %d/%d node spans outside their RPC window (%.2f%%)\n",
				rep.Violations, rep.Checked, 100*rep.ContainmentFrac())
		}
		if rep.AttributionChecked {
			fmt.Fprintf(stdout, "attribution    stages explain %.1f%% of slot time\n", 100*rep.AttributionRatio)
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintln(stdout, "check          ok")
	}
	return nil
}

// printAttribution renders the per-stage latency table over every process's
// spans: how the distributed slot pipeline's time divides among its stages,
// each stage's share expressed against total slot-span time.
func printAttribution(w io.Writer, m *spancheck.Merged) {
	rows := m.Attribution()
	var slotTotal int64
	for _, a := range rows {
		if a.Stage == "slot" {
			slotTotal = a.Total
		}
	}
	fmt.Fprintf(w, "\n%-14s %10s %14s %12s %8s\n", "stage", "spans", "total", "mean", "of slot")
	for _, a := range rows {
		share := "-"
		if slotTotal > 0 && a.Stage != "slot" {
			share = fmt.Sprintf("%.1f%%", 100*float64(a.Total)/float64(slotTotal))
		}
		fmt.Fprintf(w, "%-14s %10d %14v %12v %8s\n", a.Stage, a.Count,
			time.Duration(a.Total), time.Duration(a.Total/a.Count), share)
	}
}
