// Command wdmtrace records synthetic workload traces to disk and inspects
// them, so scheduler variants can be compared on byte-identical arrivals.
//
// Usage:
//
//	wdmtrace -gen -o trace.bin -n 8 -k 16 -load 0.9 -slots 10000
//	wdmtrace -info trace.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	wdm "wdmsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command; extracted from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		genMode  = fs.Bool("gen", false, "generate a trace")
		info     = fs.String("info", "", "inspect an existing trace file")
		out      = fs.String("o", "trace.bin", "output path for -gen")
		n        = fs.Int("n", 8, "fibers per side")
		k        = fs.Int("k", 16, "wavelengths per fiber")
		workload = fs.String("workload", "bernoulli", "workload: bernoulli, hotspot, bursty")
		load     = fs.Float64("load", 0.8, "offered load (bernoulli/hotspot)")
		hot      = fs.Int("hot", 0, "hot output fiber (hotspot)")
		hotFrac  = fs.Float64("hotfrac", 0.5, "hotspot fraction")
		meanOn   = fs.Float64("on", 8, "mean burst length (bursty)")
		meanOff  = fs.Float64("off", 8, "mean idle length (bursty)")
		hold     = fs.Float64("hold", 1, "mean holding time in slots")
		slots    = fs.Int("slots", 10000, "slots to record")
		seed     = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "wdmtrace: %v\n", err)
		return 1
	}

	switch {
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		tr, err := wdm.ReadTrace(f)
		if err != nil {
			return fail(err)
		}
		if err := tr.Validate(); err != nil {
			return fail(err)
		}
		pk := tr.NumPackets()
		fmt.Fprintf(stdout, "trace          %s\n", *info)
		fmt.Fprintf(stdout, "shape          N=%d, k=%d, %d slots\n", tr.N, tr.K, len(tr.Slots))
		fmt.Fprintf(stdout, "packets        %d total\n", pk)
		if len(tr.Slots) > 0 {
			fmt.Fprintf(stdout, "offered load   %.4f per channel-slot\n",
				float64(pk)/(float64(tr.N)*float64(tr.K)*float64(len(tr.Slots))))
		}
		return 0
	case *genMode:
		cfg := wdm.TrafficConfig{N: *n, K: *k, Seed: *seed, Hold: wdm.HoldingTime{Mean: *hold}}
		var gen wdm.Generator
		var err error
		switch *workload {
		case "bernoulli":
			gen, err = wdm.NewBernoulliTraffic(cfg, *load)
		case "hotspot":
			gen, err = wdm.NewHotspotTraffic(cfg, *load, *hot, *hotFrac)
		case "bursty":
			gen, err = wdm.NewBurstyTraffic(cfg, *meanOn, *meanOff)
		default:
			err = fmt.Errorf("unknown workload %q", *workload)
		}
		if err != nil {
			return fail(err)
		}
		tr, err := wdm.RecordTrace(gen, cfg, *slots)
		if err != nil {
			return fail(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		if err := tr.Write(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %d packets over %d slots to %s\n", tr.NumPackets(), *slots, *out)
		return 0
	default:
		fmt.Fprintln(stderr, "wdmtrace: need -gen or -info (see -h)")
		return 2
	}
}
