// Command wdmtrace records synthetic workload traces to disk and inspects
// them, so scheduler variants can be compared on byte-identical arrivals.
// It can also replay a trace through a switch with the decision tracer
// attached and dump every per-slot scheduling decision.
//
// Usage:
//
//	wdmtrace -gen -o trace.bin -n 8 -k 16 -load 0.9 -slots 10000
//	wdmtrace -info trace.bin
//	wdmtrace -decisions trace.bin -dump decisions.jsonl
//	wdmtrace -decisions trace.bin -format chrome -dump run.trace.json
//
// -merge joins the span dumps of a traced cluster run — the controller's
// wdmsim -spandump file plus each node's /spans endpoint output — into one
// Chrome trace_event timeline (load it in chrome://tracing or Perfetto)
// with all node clocks corrected onto the controller's, and prints the
// per-stage latency attribution table. -check additionally verifies the
// cross-process invariants (node spans contained in their RPC windows,
// stages summing to slot latency):
//
//	wdmtrace -merge -mout merged.trace.json -check ctrl.spans node0.spans node1.spans
//
// -exemplars renders a grant-path exemplar dump — the exemplars.jsonl
// entry of a wdmserve incident bundle — as a standalone Chrome timeline:
// one lane per lifecycle stage, a span per stage duration, and a flow
// chain per request stitching its waterfall across the lanes:
//
//	wdmtrace -exemplars exemplars.jsonl -xout exemplars.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	wdm "wdmsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command; extracted from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		genMode   = fs.Bool("gen", false, "generate a trace")
		mergeMode = fs.Bool("merge", false, "merge cluster span dumps (controller dump first, then node dumps) into one Chrome trace")
		mout      = fs.String("mout", "merged.trace.json", "merged Chrome trace output path for -merge")
		mcheck    = fs.Bool("check", false, "with -merge: verify containment and attribution invariants, non-zero exit on failure")
		exemplars = fs.String("exemplars", "", "render a grant exemplar JSONL dump (incident-bundle exemplars.jsonl) as a Chrome trace")
		xout      = fs.String("xout", "exemplars.trace.json", "Chrome trace output path for -exemplars")
		info      = fs.String("info", "", "inspect an existing trace file")
		decisions = fs.String("decisions", "", "replay a trace and dump scheduling decisions")
		dump      = fs.String("dump", "decisions.jsonl", "decision dump path for -decisions")
		format    = fs.String("format", "jsonl", "decision dump format: jsonl or chrome")
		laneCap   = fs.Int("cap", 1<<16, "retained decision events per port lane")
		scheduler = fs.String("scheduler", "exact", "scheduler for -decisions replay")
		selector  = fs.String("selector", "round-robin", "tie-break selector for -decisions replay")
		kindFlag  = fs.String("kind", "circular", "conversion kind for -decisions replay")
		d         = fs.Int("d", 3, "conversion degree for -decisions replay")
		distrib   = fs.Bool("distributed", false, "worker-pool engine for -decisions replay")
		disturb   = fs.Bool("disturb", false, "disturb mode for -decisions replay")
		out       = fs.String("o", "trace.bin", "output path for -gen")
		n         = fs.Int("n", 8, "fibers per side")
		k         = fs.Int("k", 16, "wavelengths per fiber")
		workload  = fs.String("workload", "bernoulli", "workload: bernoulli, hotspot, bursty")
		load      = fs.Float64("load", 0.8, "offered load (bernoulli/hotspot)")
		hot       = fs.Int("hot", 0, "hot output fiber (hotspot)")
		hotFrac   = fs.Float64("hotfrac", 0.5, "hotspot fraction")
		meanOn    = fs.Float64("on", 8, "mean burst length (bursty)")
		meanOff   = fs.Float64("off", 8, "mean idle length (bursty)")
		hold      = fs.Float64("hold", 1, "mean holding time in slots")
		slots     = fs.Int("slots", 10000, "slots to record")
		seed      = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "wdmtrace: %v\n", err)
		return 1
	}

	switch {
	case *mergeMode:
		if err := runMerge(stdout, fs.Args(), *mout, *mcheck); err != nil {
			return fail(err)
		}
		return 0
	case *exemplars != "":
		if err := runExemplars(stdout, *exemplars, *xout); err != nil {
			return fail(err)
		}
		return 0
	case *decisions != "":
		if err := runDecisions(stdout, *decisions, *dump, *format, *kindFlag,
			*scheduler, *selector, *d, *laneCap, *distrib, *disturb); err != nil {
			return fail(err)
		}
		return 0
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		tr, err := wdm.ReadTrace(f)
		if err != nil {
			return fail(err)
		}
		if err := tr.Validate(); err != nil {
			return fail(err)
		}
		pk := tr.NumPackets()
		fmt.Fprintf(stdout, "trace          %s\n", *info)
		fmt.Fprintf(stdout, "shape          N=%d, k=%d, %d slots\n", tr.N, tr.K, len(tr.Slots))
		fmt.Fprintf(stdout, "packets        %d total\n", pk)
		if len(tr.Slots) > 0 {
			fmt.Fprintf(stdout, "offered load   %.4f per channel-slot\n",
				float64(pk)/(float64(tr.N)*float64(tr.K)*float64(len(tr.Slots))))
		}
		return 0
	case *genMode:
		cfg := wdm.TrafficConfig{N: *n, K: *k, Seed: *seed, Hold: wdm.HoldingTime{Mean: *hold}}
		var gen wdm.Generator
		var err error
		switch *workload {
		case "bernoulli":
			gen, err = wdm.NewBernoulliTraffic(cfg, *load)
		case "hotspot":
			gen, err = wdm.NewHotspotTraffic(cfg, *load, *hot, *hotFrac)
		case "bursty":
			gen, err = wdm.NewBurstyTraffic(cfg, *meanOn, *meanOff)
		default:
			err = fmt.Errorf("unknown workload %q", *workload)
		}
		if err != nil {
			return fail(err)
		}
		tr, err := wdm.RecordTrace(gen, cfg, *slots)
		if err != nil {
			return fail(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		if err := tr.Write(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %d packets over %d slots to %s\n", tr.NumPackets(), *slots, *out)
		return 0
	default:
		fmt.Fprintln(stderr, "wdmtrace: need -gen, -info, -decisions, -merge or -exemplars (see -h)")
		return 2
	}
}

// runDecisions replays a recorded trace through a switch with the decision
// tracer attached and writes every retained scheduling event to dumpPath.
func runDecisions(stdout io.Writer, tracePath, dumpPath, format, kindFlag,
	scheduler, selector string, d, laneCap int, distributed, disturb bool) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	tr, err := wdm.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}

	kind, err := wdm.ParseKind(kindFlag)
	if err != nil {
		return err
	}
	var conv wdm.Conversion
	if kind == wdm.Full {
		conv, err = wdm.NewConversion(wdm.Full, tr.K, 0, 0)
	} else {
		conv, err = wdm.NewSymmetricConversion(kind, tr.K, d)
	}
	if err != nil {
		return err
	}

	tracer := wdm.NewDecisionTracer(tr.N, laneCap)
	sw, err := wdm.NewSwitch(wdm.SwitchConfig{
		N: tr.N, Conv: conv,
		Scheduler: scheduler, Selector: selector,
		Distributed: distributed, Disturb: disturb,
		Trace: tracer,
	})
	if err != nil {
		return err
	}
	st, err := sw.Run(tr.Replay(), len(tr.Slots))
	if err != nil {
		return err
	}

	df, err := os.Create(dumpPath)
	if err != nil {
		return err
	}
	switch format {
	case "jsonl":
		err = tracer.WriteJSONL(df)
	case "chrome":
		err = tracer.WriteChromeTrace(df)
	default:
		err = fmt.Errorf("unknown format %q (want jsonl or chrome)", format)
	}
	if err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}

	// The tracer's exactness guarantee: when nothing was dropped, grant
	// events agree with the run statistics one-for-one.
	var grants int64
	for _, e := range tracer.Events() {
		if e.Kind == wdm.EventGrant {
			grants++
		}
	}
	fmt.Fprintf(stdout, "replayed       %d slots through %s (%s engine)\n",
		st.Slots, scheduler, engineName(distributed))
	fmt.Fprintf(stdout, "decisions      %d events (%d dropped by ring wraparound) -> %s\n",
		tracer.Emitted(), tracer.Dropped(), dumpPath)
	fmt.Fprintf(stdout, "grants         %d events, stats granted %d\n", grants, st.Granted.Value())
	if tracer.Dropped() == 0 && grants != st.Granted.Value() {
		return fmt.Errorf("grant events (%d) disagree with stats (%d)", grants, st.Granted.Value())
	}
	return nil
}

func engineName(distributed bool) string {
	if distributed {
		return "distributed"
	}
	return "sequential"
}
