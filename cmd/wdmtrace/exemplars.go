package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"wdmsched/internal/telemetry"
)

// chromeEvent is one Chrome trace_event record; ts and dur are
// microseconds (the same shape internal/spancheck emits, duplicated here
// because exemplar rendering needs no merge machinery).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// runExemplars renders a grant-path exemplar dump — exemplars.jsonl from
// an incident bundle, or a captured /exemplars body re-encoded as JSONL —
// as a standalone Chrome trace_event timeline: one thread lane per
// lifecycle stage, one duration span per non-zero stage, and a flow
// chain keyed by request ID stitching each request's waterfall across
// the lanes. Load the output in chrome://tracing or Perfetto.
func runExemplars(stdout io.Writer, path, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	exs, err := telemetry.ReadExemplarsJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(exs) == 0 {
		return fmt.Errorf("no exemplars in %s", path)
	}

	// Anchor the timeline at the earliest request so ts stays small and
	// positive regardless of the host's monotonic-clock epoch.
	base := exs[0].StartNS
	for _, e := range exs {
		if e.StartNS < base {
			base = e.StartNS
		}
	}

	events := []chromeEvent{{Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "grant exemplars"}}}
	for st, name := range telemetry.GrantStageNames {
		events = append(events, chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: st,
			Args: map[string]any{"name": name}})
	}

	spans, flows := 0, 0
	for _, e := range exs {
		t := e.StartNS - base
		id := fmt.Sprintf("%#x", e.ID)
		args := map[string]any{
			"id": e.ID, "tenant": e.Tenant, "class": e.Class,
			"slot": e.Slot, "verdict": e.Verdict, "total_ns": e.TotalNS,
		}
		// Stages chain back-to-back from the receipt timestamp; the flow
		// steps make the hand-offs explicit even when a stage lane is far
		// from the previous one vertically.
		last := -1
		for st := range telemetry.GrantStageNames {
			if e.Stages[st] > 0 {
				last = st
			}
		}
		prev := -1
		for st, name := range telemetry.GrantStageNames {
			d := e.Stages[st]
			if d <= 0 {
				continue
			}
			ts := float64(t) / 1e3
			events = append(events, chromeEvent{Name: name, Ph: "X", Cat: "stage",
				Pid: 0, Tid: st, Ts: ts, Dur: float64(d) / 1e3, Args: args})
			spans++
			ph := "t"
			switch {
			case prev < 0:
				ph = "s"
			case st == last:
				ph = "f"
			}
			ev := chromeEvent{Name: "request", Ph: ph, Cat: "request",
				Pid: 0, Tid: st, Ts: ts, ID: id}
			if ph == "f" {
				ev.BP = "e"
			}
			if ph != "s" {
				flows++
			}
			events = append(events, ev)
			prev = st
			t += d
		}
	}

	of, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(of)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}); err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "exemplars      %d requests, %d stage spans, %d flow edges -> %s\n",
		len(exs), spans, flows, outPath)
	return nil
}
