package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	wdm "wdmsched"
)

// traceClusterRun drives a real two-node loopback cluster with tracing on
// and writes the three span dumps -merge consumes: the controller's and
// one per node.
func traceClusterRun(t *testing.T, dir string) (string, []string) {
	t.Helper()
	const n, k, slots = 4, 8, 300

	var addrs []string
	var nodeDumps []func(path string) error
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := wdm.NewClusterNode(wdm.ClusterNodeConfig{
			Spans: wdm.NewSpanTracer(1, 1<<12),
		})
		go node.Serve(ln)
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, ln.Addr().String())
		nodeDumps = append(nodeDumps, func(path string) error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := node.WriteSpans(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}

	conv, err := wdm.NewSymmetricConversion(wdm.Circular, k, 3)
	if err != nil {
		t.Fatal(err)
	}
	spans := wdm.NewSpanTracer(1, 1<<12)
	ctrl, err := wdm.NewClusterController(wdm.ClusterControllerConfig{
		Addrs: addrs, N: n, Conv: conv, Scheduler: "exact",
		Seed: 7, DialTimeout: 10 * time.Second, Spans: spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	gen, err := wdm.NewBernoulliTraffic(wdm.TrafficConfig{N: n, K: k, Seed: 7}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := wdm.NewSwitch(wdm.SwitchConfig{
		N: n, Conv: conv, Scheduler: "exact", Seed: 7, Remote: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Run(gen, slots); err != nil {
		t.Fatal(err)
	}

	ctrlPath := filepath.Join(dir, "ctrl.spans")
	f, err := os.Create(ctrlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.WriteSpans(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var nodePaths []string
	for i, dump := range nodeDumps {
		p := filepath.Join(dir, "node"+string(rune('0'+i))+".spans")
		if err := dump(p); err != nil {
			t.Fatal(err)
		}
		nodePaths = append(nodePaths, p)
	}
	return ctrlPath, nodePaths
}

// TestMergeEndToEnd: a traced cluster run's three dumps must merge into a
// valid Chrome trace whose node spans sit inside the controller's RPC
// windows on the corrected timeline, with the attribution table summing
// to slot latency — the full acceptance pipeline, -check included.
func TestMergeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ctrlPath, nodePaths := traceClusterRun(t, dir)
	outPath := filepath.Join(dir, "merged.trace.json")

	var out, errb bytes.Buffer
	args := []string{"-merge", "-mout", outPath, "-check", ctrlPath}
	// Node dumps in reverse order: -merge must map them to shards by span
	// ID, not by argument position.
	for i := len(nodePaths) - 1; i >= 0; i-- {
		args = append(args, nodePaths[i])
	}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	for _, want := range []string{"merged", "flow arrows", "clock sync", "stage", "containment", "attribution", "check          ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	for _, stage := range []string{"slot", "prepare", "encode", "rpc", "decode", "schedule", "node-encode", "commit"} {
		if !strings.Contains(out.String(), stage) {
			t.Errorf("attribution table missing stage %q:\n%s", stage, out.String())
		}
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("merged trace is not JSON: %v", err)
	}
	procs := map[int]string{}
	var spanEvents, flowStarts, flowEnds int
	nodePids := map[int]bool{}
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procs[e.Pid], _ = e.Args["name"].(string)
			}
		case "X":
			spanEvents++
			if e.Pid > 0 {
				nodePids[e.Pid] = true
			}
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		}
	}
	if procs[0] != "controller" {
		t.Errorf("pid 0 named %q, want controller", procs[0])
	}
	for _, pid := range []int{1, 2} {
		if !strings.HasPrefix(procs[pid], "node ") {
			t.Errorf("pid %d named %q, want a node row", pid, procs[pid])
		}
		if !nodePids[pid] {
			t.Errorf("no spans on node process %d", pid)
		}
	}
	if spanEvents == 0 || flowStarts == 0 || flowEnds == 0 {
		t.Fatalf("degenerate trace: %d spans, %d flow starts, %d flow ends", spanEvents, flowStarts, flowEnds)
	}
}

func writeDump(t *testing.T, dir, name, metaLine string, spanLines ...string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	content := metaLine + "\n" + strings.Join(spanLines, "\n")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMergeRejectsBadInputs covers the validation paths: argument count,
// swapped roles, mismatched run IDs, dumps with no trace IDs, and files
// that are not span dumps at all.
func TestMergeRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	ctrl := writeDump(t, dir, "ctrl.spans",
		`{"meta":{"role":"controller","run_id":77,"links":[{"node":"a:1","shard":0,"offset_ns":0,"rtt_ns":1000}]}}`,
		`{"slot":1,"lane":1,"stage":"rpc","port":-1,"id":1048576,"start":100,"dur":50}`)
	node := writeDump(t, dir, "node.spans",
		`{"meta":{"role":"node","run_id":77}}`,
		`{"slot":1,"lane":0,"stage":"decode","port":-1,"id":1048576,"start":110,"dur":10}`)

	// "duplicate" hands -merge a second dump whose span id 2097152 (2<<20)
	// also names shard 0: two files claiming one link must be rejected.
	cases := map[string][]string{
		"too few args": {ctrl},
		"node first":   {node, ctrl},
		"ctrl as node": {ctrl, ctrl},
		"run mismatch": {ctrl, writeDump(t, dir, "other.spans", `{"meta":{"role":"node","run_id":99}}`, `{"slot":1,"lane":0,"stage":"decode","port":-1,"id":1048576,"start":110,"dur":10}`)},
		"no trace ids": {ctrl, writeDump(t, dir, "blank.spans", `{"meta":{"role":"node","run_id":77}}`, `{"slot":1,"lane":0,"stage":"decode","port":-1,"id":0,"start":110,"dur":10}`)},
		"bad shard":    {ctrl, writeDump(t, dir, "shard.spans", `{"meta":{"role":"node","run_id":77}}`, `{"slot":1,"lane":0,"stage":"decode","port":-1,"id":5,"start":110,"dur":10}`)},
		"not a dump":   {writeDump(t, dir, "junk.spans", "junk"), node},
		"missing file": {filepath.Join(dir, "absent.spans"), node},
		"duplicate":    {ctrl, node, writeDump(t, dir, "dup.spans", `{"meta":{"role":"node","run_id":77}}`, `{"slot":2,"lane":0,"stage":"decode","port":-1,"id":2097152,"start":200,"dur":10}`)},
	}
	for name, paths := range cases {
		var out, errb bytes.Buffer
		args := append([]string{"-merge", "-mout", filepath.Join(dir, "out.json")}, paths...)
		if code := run(args, &out, &errb); code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr: %s)", name, code, errb.String())
		}
	}

	// A well-formed minimal pair must succeed without -check.
	var out, errb bytes.Buffer
	code := run([]string{"-merge", "-mout", filepath.Join(dir, "ok.json"), ctrl, node}, &out, &errb)
	if code != 0 {
		t.Fatalf("minimal merge failed: %s", errb.String())
	}
}
