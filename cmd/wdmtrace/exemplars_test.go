package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"wdmsched/internal/telemetry"
)

// writeExemplarFixture dumps two hand-built exemplars through the same
// WriteJSONL path the incident bundle uses.
func writeExemplarFixture(t *testing.T) string {
	t.Helper()
	r := telemetry.NewExemplarRing(4, 1024)
	r.Offer(telemetry.Exemplar{
		ID: 7, Tenant: "loadgen", Class: 0, Slot: 12, Verdict: "granted",
		StartNS: 1_000_000, TotalNS: 5_000,
		Stages: telemetry.StageDurations{1000, 200, 2000, 300, 1200, 300},
	})
	r.Offer(telemetry.Exemplar{
		ID: 9, Tenant: "bursty", Class: 1, Slot: 13, Verdict: "rejected-contention",
		StartNS: 2_000_000, TotalNS: 9_000,
		Stages: telemetry.StageDurations{2000, 0, 4000, 500, 2000, 500},
	})
	path := filepath.Join(t.TempDir(), "exemplars.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExemplarsChromeTrace pins the -exemplars rendering: stage spans on
// per-stage lanes with microsecond durations, per-request flow chains,
// and the lane-name metadata Perfetto needs.
func TestExemplarsChromeTrace(t *testing.T) {
	in := writeExemplarFixture(t)
	out := filepath.Join(t.TempDir(), "exemplars.trace.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exemplars", in, "-xout", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}

	var spans, starts, steps, finishes, threadNames int
	var sawProcessName bool
	minSpanTS := -1.0
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			if e["name"] == "process_name" {
				sawProcessName = true
			}
			if e["name"] == "thread_name" {
				threadNames++
			}
		case "X":
			spans++
			if ts := e["ts"].(float64); minSpanTS < 0 || ts < minSpanTS {
				minSpanTS = ts
			}
			if e["dur"].(float64) <= 0 {
				t.Errorf("stage span %v has non-positive dur", e)
			}
		case "s":
			starts++
		case "t":
			steps++
		case "f":
			finishes++
			if e["bp"] != "e" {
				t.Errorf("flow finish missing bp=e: %v", e)
			}
		}
	}
	// Exemplar 7 has 6 non-zero stages, exemplar 9 has 5.
	if spans != 11 {
		t.Errorf("stage spans = %d, want 11", spans)
	}
	if starts != 2 || finishes != 2 {
		t.Errorf("flow chains: %d starts / %d finishes, want 2/2", starts, finishes)
	}
	if steps != 11-2-2 {
		t.Errorf("flow steps = %d, want %d", steps, 11-2-2)
	}
	if threadNames != telemetry.NumGrantStages {
		t.Errorf("thread_name metas = %d, want %d", threadNames, telemetry.NumGrantStages)
	}
	if !sawProcessName {
		t.Error("no process_name meta event")
	}
	// The timeline is anchored at the earliest exemplar: its first stage
	// span starts at ts 0.
	if minSpanTS != 0 {
		t.Errorf("earliest span ts = %v, want 0 (anchored)", minSpanTS)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("2 requests, 11 stage spans")) {
		t.Errorf("summary line missing counts:\n%s", stdout.String())
	}
}

// TestExemplarsEmptyInput pins the failure mode for an empty dump.
func TestExemplarsEmptyInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exemplars", path}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("no exemplars")) {
		t.Errorf("stderr missing diagnostic:\n%s", stderr.String())
	}
}
