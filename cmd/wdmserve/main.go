// Command wdmserve runs the grant service: a long-running scheduler that
// accepts connection requests from many concurrent clients over the grant
// wire protocol, batches them into slot-aligned scheduling rounds on a
// switch engine (sequential, distributed, or networked cluster), and
// streams grant/reject/retry verdicts back.
//
// Admission is per-tenant: a token bucket caps the sustained request rate
// and a bounded ingress queue absorbs bursts; when either pushes back the
// client gets an explicit RETRY-AFTER verdict instead of unbounded
// buffering. SIGTERM starts a graceful drain — stop admitting, flush the
// queued requests through the remaining slots, send every session its
// final ledger — and the process exits zero with the service ledger on
// stdout. SIGQUIT dumps a flight-recorder incident bundle mid-flight.
//
//	wdmserve -n 16 -k 16 -grant 127.0.0.1:9411 -listen 127.0.0.1:8080
//	wdmload  -server 127.0.0.1:9411 -conns 8 -rate 50000 -requests 200000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	wdm "wdmsched"
	"wdmsched/internal/grant"
	"wdmsched/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet(stderr)
	f := bindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "wdmserve: %v\n", err)
		return 1
	}

	if *f.distributed && *f.nodes > 0 {
		return fail(fmt.Errorf("-distributed and -nodes are mutually exclusive"))
	}
	kind, err := wdm.ParseKind(*f.kind)
	if err != nil {
		return fail(err)
	}
	var conv wdm.Conversion
	if kind == wdm.Full {
		conv, err = wdm.NewConversion(wdm.Full, *f.k, 0, 0)
	} else {
		conv, err = wdm.NewSymmetricConversion(kind, *f.k, *f.d)
	}
	if err != nil {
		return fail(err)
	}

	def := grant.Policy{Class: *f.class, Rate: *f.rate, Burst: *f.burst, Queue: *f.queue}
	tenants, err := grant.ParsePolicies(*f.tenants, def)
	if err != nil {
		return fail(err)
	}

	// Engine selection mirrors wdmsim: in-process loopback cluster nodes
	// for -nodes, per-output goroutine schedulers for -distributed,
	// otherwise the sequential engine.
	engine := "sequential"
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	var ctrl *wdm.ClusterController
	if *f.nodes > 0 {
		engine = "cluster"
		addrs := make([]string, 0, *f.nodes)
		for i := 0; i < *f.nodes; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail(err)
			}
			node := wdm.NewClusterNode(wdm.ClusterNodeConfig{})
			go node.Serve(ln)
			closers = append(closers, func() { node.Close() })
			addrs = append(addrs, ln.Addr().String())
		}
		ctrl, err = wdm.NewClusterController(wdm.ClusterControllerConfig{
			Addrs: addrs, N: *f.n, Conv: conv, Scheduler: *f.scheduler,
			Seed: *f.seed + 4, DialTimeout: 10 * time.Second,
		})
		if err != nil {
			return fail(err)
		}
		closers = append(closers, func() { ctrl.Close() })
	} else if *f.distributed {
		engine = "distributed"
	}

	var reg *wdm.TelemetryRegistry
	if *f.listen != "" {
		reg = wdm.NewTelemetryRegistry()
		if ctrl != nil {
			ctrl.RegisterTelemetry(reg)
		}
	}

	swCfg := wdm.SwitchConfig{
		N: *f.n, Conv: conv,
		Scheduler: *f.scheduler, Selector: *f.selector,
		Seed: *f.seed, Distributed: *f.distributed,
		PriorityClasses: *f.classes,
	}
	if ctrl != nil {
		swCfg.Remote = ctrl
	}
	svc, err := grant.NewService(grant.Config{
		Switch:      swCfg,
		Default:     def,
		Tenants:     tenants,
		SlotEvery:   *f.slotDur,
		Resync:      *f.resync,
		MaxSessions: *f.maxSess,
		Telemetry:   reg,
		BundlePath:  *f.bundle,
		Report:      *f.report,
		Tool:        "wdmserve",
		Stderr:      stderr,
		Meta: grant.Meta{
			Kind: *f.kind, D: *f.d, Scheduler: *f.scheduler,
			Selector: *f.selector, Engine: engine, Classes: *f.classes,
		},
	})
	if err != nil {
		return fail(err)
	}

	if reg != nil {
		srv, err := wdm.ServeTelemetry(*f.listen, reg)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		// Drain-aware readiness: /readyz flips to 503 the moment SIGTERM
		// starts the drain, while /healthz stays a pure liveness probe.
		srv.SetReadiness(func() bool { return !svc.Draining() })
		// Exemplar drill-down for wdmtop and incident triage: the K
		// slowest requests per window with their full stage waterfalls.
		srv.HandleFunc("/exemplars", func(w http.ResponseWriter, _ *http.Request) {
			ring := svc.Recorder().Exemplars()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				WindowSlots int64                `json:"window_slots"`
				K           int                  `json:"k"`
				Exemplars   []telemetry.Exemplar `json:"exemplars"`
			}{ring.WindowSlots(), ring.K(), ring.Snapshot()})
		})
		fmt.Fprintf(stderr, "telemetry: listening on http://%s\n", srv.Addr())
	}

	network, address := grant.SplitAddr(*f.grantAddr)
	if network == "unix" {
		os.Remove(address)
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "grant: listening on %s\n", ln.Addr())

	// SIGTERM/SIGINT drain gracefully; SIGQUIT dumps the black box and
	// keeps serving.
	sigc := make(chan os.Signal, 4)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGQUIT)
	defer signal.Stop(sigc)
	go func() {
		for sig := range sigc {
			if sig == syscall.SIGQUIT {
				svc.RequestDump()
				continue
			}
			fmt.Fprintf(stderr, "wdmserve: %v: draining (no new admissions; flushing queued requests)\n", sig)
			svc.Drain()
		}
	}()

	serveErr := svc.Serve(ln)

	// The final ledger goes to stdout whether the run ended cleanly or
	// not: on a violation it is part of the forensics.
	out := struct {
		Engine string       `json:"engine"`
		Slots  int64        `json:"slots"`
		Ledger grant.Ledger `json:"ledger"`
	}{Engine: engine, Slots: svc.Slots(), Ledger: svc.Ledger()}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fail(err)
	}
	if serveErr != nil {
		return fail(serveErr)
	}
	return 0
}

// flags carries every parsed wdmserve option; kept as a struct so the
// flag-unit audit test can walk one authoritative definition.
type flags struct {
	n, k, d, classes      *int
	kind                  *string
	scheduler, selector   *string
	seed                  *uint64
	distributed           *bool
	nodes                 *int
	grantAddr, listen     *string
	tenants               *string
	rate, burst           *float64
	queue, class, maxSess *int
	slotDur               *time.Duration
	resync                *int64
	bundle, report        *string
}

func newFlagSet(stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("wdmserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func bindFlags(fs *flag.FlagSet) *flags {
	return &flags{
		n:           fs.Int("n", 16, "switch size in fibers (N input and N output)"),
		k:           fs.Int("k", 16, "wavelength channels per fiber"),
		kind:        fs.String("kind", "circular", "conversion kind: none|circular|noncircular|full"),
		d:           fs.Int("d", 3, "conversion degree in channels (odd; ignored for -kind full)"),
		scheduler:   fs.String("scheduler", "exact", "per-port scheduler: exact|fa|bfa|fastfa|fastbfa"),
		selector:    fs.String("selector", "random", "input-fiber selector: random|rr"),
		seed:        fs.Uint64("seed", 1, "PRNG seed (dimensionless)"),
		classes:     fs.Int("classes", 1, "engine priority classes (count); tenant QoS classes clamp onto these"),
		distributed: fs.Bool("distributed", false, "distributed engine: one scheduling goroutine per output fiber"),
		nodes:       fs.Int("nodes", 0, "spawn this many in-process loopback cluster nodes and schedule over them (count)"),
		grantAddr:   fs.String("grant", "127.0.0.1:9411", "grant wire listen address (host:port, or a unix socket path)"),
		listen:      fs.String("listen", "", "serve live telemetry on this address (/metrics, /snapshot, /debug/pprof)"),
		tenants:     fs.String("tenants", "", `per-tenant admission policies "name:rate=R,burst=B,queue=Q,class=C;..." (rate in requests/s, burst and queue in requests)`),
		rate:        fs.Float64("rate", 100000, "default admission rate in requests/s (0 blocks tenants without a -tenants entry)"),
		burst:       fs.Float64("burst", 1024, "default token-bucket burst in requests"),
		queue:       fs.Int("queue", 4096, "default per-tenant ingress queue bound in requests"),
		class:       fs.Int("class", 0, "default tenant QoS class index (0 = highest priority)"),
		maxSess:     fs.Int("maxsessions", 1024, "concurrent client session limit (count)"),
		slotDur:     fs.Duration("slotdur", 0, "wall-clock duration of one scheduling slot, e.g. 100us (0 = run rounds as fast as requests arrive)"),
		resync:      fs.Int64("resync", 1024, "reconcile the grant ledger against the engine snapshot every this many slots"),
		bundle:      fs.String("bundle", "wdmserve.incident.tgz", "flight-recorder bundle path (dumped on SIGQUIT or invariant violation; empty disables)"),
		report:      fs.String("report", "", "write the incident report as JSON to this file on an invariant violation"),
	}
}
