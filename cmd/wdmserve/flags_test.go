package main

import (
	"bytes"
	"testing"

	"wdmsched/internal/flagcheck"
)

func helpFlags(t *testing.T) map[string]flagcheck.Flag {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("run(-h) = %d, want 2", code)
	}
	flags := flagcheck.Parse(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from help output:\n%s", errb.String())
	}
	return flags
}

// TestFlagDefaults pins the grant-server defaults DESIGN.md §15
// documents.
func TestFlagDefaults(t *testing.T) {
	flags := helpFlags(t)
	want := map[string]string{
		"n":           "16",
		"k":           "16",
		"kind":        `"circular"`,
		"d":           "3",
		"scheduler":   `"exact"`,
		"selector":    `"random"`,
		"seed":        "1",
		"classes":     "1",
		"nodes":       "", // zero defaults print no suffix
		"grant":       `"127.0.0.1:9411"`,
		"rate":        "100000",
		"burst":       "1024",
		"queue":       "4096",
		"class":       "",
		"maxsessions": "1024",
		"slotdur":     "",
		"resync":      "1024",
		"bundle":      `"wdmserve.incident.tgz"`,
	}
	for name, def := range want {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if f.Default != def {
			t.Errorf("-%s default = %s, want %s", name, f.Default, def)
		}
	}
}

// TestFlagUsageNamesUnits requires every quantity-bearing flag to say
// what it is measured in (requests/s vs requests vs slots vs duration).
func TestFlagUsageNamesUnits(t *testing.T) {
	flags := helpFlags(t)
	quantity := []string{
		"n", "k", "d", "seed", "classes", "nodes", "tenants", "rate",
		"burst", "queue", "class", "maxsessions", "slotdur", "resync",
	}
	for _, name := range quantity {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if !flagcheck.NamesUnit(f.Usage) {
			t.Errorf("-%s usage names no unit: %q", name, f.Usage)
		}
	}
}

// TestBadFlagExitCodes pins the exit-code contract: 2 for parse errors,
// 1 for semantic validation failures.
func TestBadFlagExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: run = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-distributed", "-nodes", "2"}, &out, &errb); code != 1 {
		t.Errorf("-distributed with -nodes: run = %d, want 1\nstderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-kind", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("bad -kind: run = %d, want 1\nstderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-tenants", "t:rate=x"}, &out, &errb); code != 1 {
		t.Errorf("bad -tenants: run = %d, want 1\nstderr: %s", code, errb.String())
	}
}
