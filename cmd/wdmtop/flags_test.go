package main

import (
	"bytes"
	"testing"

	"wdmsched/internal/flagcheck"
)

func helpFlags(t *testing.T) map[string]flagcheck.Flag {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("run(-h) = %d, want 2", code)
	}
	flags := flagcheck.Parse(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from help output:\n%s", errb.String())
	}
	return flags
}

// TestFlagDefaults pins the console defaults DESIGN.md §16 documents.
func TestFlagDefaults(t *testing.T) {
	flags := helpFlags(t)
	want := map[string]string{
		"targets":  `"127.0.0.1:8080"`,
		"interval": "2s",
		"count":    "", // zero default: flag omits the "(default 0)" suffix
		"slowest":  "4",
		"timeout":  "5s",
	}
	for name, def := range want {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if f.Default != def {
			t.Errorf("-%s default = %s, want %s", name, f.Default, def)
		}
	}
	for _, name := range []string{"once", "json"} {
		if _, ok := flags[name]; !ok {
			t.Errorf("flag -%s missing from help output", name)
		}
	}
}

// TestFlagUsageNamesUnits requires every quantity-bearing flag to say
// what it is measured in.
func TestFlagUsageNamesUnits(t *testing.T) {
	flags := helpFlags(t)
	quantity := []string{"interval", "count", "slowest", "timeout"}
	for _, name := range quantity {
		f, ok := flags[name]
		if !ok {
			t.Errorf("flag -%s missing from help output", name)
			continue
		}
		if !flagcheck.NamesUnit(f.Usage) {
			t.Errorf("-%s usage names no unit: %q", name, f.Usage)
		}
	}
}

// TestBadFlagExitCodes pins the exit-code contract: 2 for parse errors,
// 1 for semantic validation failures.
func TestBadFlagExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: run = %d, want 2", code)
	}
	for _, bad := range [][]string{
		{"-interval", "0s"},
		{"-slowest", "-1"},
		{"-count", "-1"},
		{"-targets", ",,"},
	} {
		out.Reset()
		errb.Reset()
		if code := run(bad, &out, &errb); code != 1 {
			t.Errorf("%v: run = %d, want 1\nstderr: %s", bad, code, errb.String())
		}
	}
}

// TestSplitTargets pins the bare host:port → http URL normalisation.
func TestSplitTargets(t *testing.T) {
	got := splitTargets("127.0.0.1:8080, http://h:1/,unix.example:9,")
	want := []string{"http://127.0.0.1:8080", "http://h:1", "http://unix.example:9"}
	if len(got) != len(want) {
		t.Fatalf("splitTargets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
