// Command wdmtop is a live fleet console for grant-path observability:
// it scrapes the /snapshot and /exemplars endpoints of one or more
// wdmserve (or wdmnode) telemetry servers and renders ingest and verdict
// rates, per-tenant queue depth, the per-stage latency waterfall, SLO
// burn, and the slowest exemplar requests — refreshing in place like
// top(1). All rate computation is client-side from counter deltas
// between refreshes, so the servers stay pull-only and stateless.
//
//	wdmserve -n 16 -k 16 -grant 127.0.0.1:9411 -listen 127.0.0.1:8080 &
//	wdmtop -targets 127.0.0.1:8080
//
// Scripts and CI consume exactly the same view with -once -json: one
// scrape, one machine-readable document on stdout, exit 0 only if at
// least one target answered.
//
//	wdmtop -targets 127.0.0.1:8080 -once -json | scripts/smokecheck stages /dev/stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"wdmsched/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wdmtop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		targets  = fs.String("targets", "127.0.0.1:8080", "comma-separated telemetry endpoints to scrape (host:port or http://host:port)")
		interval = fs.Duration("interval", 2*time.Second, "refresh period between scrapes as a duration")
		count    = fs.Int("count", 0, "refresh this many times then exit (count; 0 = run until interrupted)")
		once     = fs.Bool("once", false, "scrape once, print, and exit (no screen clearing, no rates)")
		jsonOut  = fs.Bool("json", false, "emit the machine-readable JSON document instead of the console view")
		slowest  = fs.Int("slowest", 4, "exemplar requests shown per target, slowest first (count)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout as a duration")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "wdmtop: %v\n", err)
		return 1
	}
	if *interval <= 0 {
		return fail(fmt.Errorf("-interval must be positive"))
	}
	if *slowest < 0 {
		return fail(fmt.Errorf("-slowest must be non-negative"))
	}
	if *count < 0 {
		return fail(fmt.Errorf("-count must be non-negative"))
	}
	urls := splitTargets(*targets)
	if len(urls) == 0 {
		return fail(fmt.Errorf("-targets names no endpoints"))
	}

	sc := &scraper{client: &http.Client{Timeout: *timeout}, slowest: *slowest}
	var prev []targetView
	var prevAt time.Time
	upCount := 0
	for iter := 0; ; iter++ {
		at := time.Now()
		views := make([]targetView, len(urls))
		done := make(chan int, len(urls))
		for i, u := range urls {
			go func(i int, u string) { views[i] = sc.scrape(u); done <- i }(i, u)
		}
		for range urls {
			<-done
		}
		upCount = 0
		for i := range views {
			if views[i].Up {
				upCount++
			}
		}
		if !prevAt.IsZero() {
			dt := at.Sub(prevAt).Seconds()
			for i := range views {
				views[i].computeRates(&prev[i], dt)
			}
		}

		if *jsonOut {
			doc := topDoc{At: at.UTC().Format(time.RFC3339Nano), Targets: views}
			if !prevAt.IsZero() {
				doc.IntervalSeconds = at.Sub(prevAt).Seconds()
			}
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				return fail(err)
			}
		} else {
			if !*once {
				fmt.Fprint(stdout, "\x1b[H\x1b[2J") // home + clear
			}
			render(stdout, at, *interval, views)
		}

		if *once || (*count > 0 && iter+1 >= *count) {
			break
		}
		prev, prevAt = views, at
		time.Sleep(*interval)
	}

	// A scrape pass against a dead fleet is an error on exit: CI pipes
	// -once -json into checks that must not pass vacuously.
	if upCount == 0 {
		return fail(fmt.Errorf("no target answered"))
	}
	return 0
}

// splitTargets parses the -targets list, normalising bare host:port
// entries to http URLs.
func splitTargets(s string) []string {
	var urls []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		urls = append(urls, strings.TrimRight(t, "/"))
	}
	return urls
}

// topDoc is the -json document: one scrape of the whole fleet.
// IntervalSeconds and the per-target rates appear from the second
// refresh onward (never in -once mode — a single scrape has no delta).
type topDoc struct {
	At              string       `json:"at"`
	IntervalSeconds float64      `json:"interval_seconds,omitempty"`
	Targets         []targetView `json:"targets"`
}

// stageView summarises one wdm_grant_stage_seconds series.
type stageView struct {
	Count       int64   `json:"count"`
	SumSeconds  float64 `json:"sum_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

// sloView is one stage SLO: budget, live error fraction, burn rate.
type sloView struct {
	Stage         string  `json:"stage"`
	BudgetSeconds float64 `json:"budget_seconds"`
	ErrorFraction float64 `json:"error_fraction"`
	BurnRate      float64 `json:"burn_rate"`
}

// targetView is everything wdmtop knows about one endpoint after a
// scrape. Counters are totals since the server started; Rates are
// per-second deltas against the previous refresh.
type targetView struct {
	Target         string               `json:"target"`
	Up             bool                 `json:"up"`
	Error          string               `json:"error,omitempty"`
	Sessions       float64              `json:"sessions"`
	Rounds         int64                `json:"rounds_total"`
	Submitted      int64                `json:"submitted_total"`
	Admitted       int64                `json:"admitted_total"`
	Verdicts       map[string]int64     `json:"verdicts_total,omitempty"`
	Rates          map[string]float64   `json:"rates_per_s,omitempty"`
	QueueDepth     map[string]float64   `json:"queue_depth,omitempty"`
	Stages         map[string]stageView `json:"stages,omitempty"`
	SLO            []sloView            `json:"slo,omitempty"`
	ExemplarWindow int64                `json:"exemplar_window_slots,omitempty"`
	Exemplars      []telemetry.Exemplar `json:"exemplars,omitempty"`
}

// computeRates fills v.Rates from the counter deltas against the
// previous scrape of the same target.
func (v *targetView) computeRates(prev *targetView, dt float64) {
	if !v.Up || !prev.Up || dt <= 0 {
		return
	}
	v.Rates = map[string]float64{
		"submitted": float64(v.Submitted-prev.Submitted) / dt,
		"rounds":    float64(v.Rounds-prev.Rounds) / dt,
	}
	for verdict, n := range v.Verdicts {
		v.Rates[verdict] = float64(n-prev.Verdicts[verdict]) / dt
	}
}

// exemplarsDoc mirrors the wdmserve /exemplars response.
type exemplarsDoc struct {
	WindowSlots int64                `json:"window_slots"`
	K           int                  `json:"k"`
	Exemplars   []telemetry.Exemplar `json:"exemplars"`
}

type scraper struct {
	client  *http.Client
	slowest int
}

// scrape pulls one target's /snapshot (and /exemplars where served —
// wdmnode has no grant path and answers 404) and folds the metric
// samples into a view. A target that fails to answer is reported down,
// never fatal: the console keeps rendering the rest of the fleet.
func (sc *scraper) scrape(target string) targetView {
	v := targetView{Target: target}
	snap, err := sc.getSnapshot(target)
	if err != nil {
		v.Error = err.Error()
		return v
	}
	v.Up = true
	v.fold(snap.Metrics)
	if ex, err := sc.getExemplars(target); err == nil && ex != nil {
		v.ExemplarWindow = ex.WindowSlots
		if len(ex.Exemplars) > sc.slowest {
			ex.Exemplars = ex.Exemplars[:sc.slowest]
		}
		v.Exemplars = ex.Exemplars
	}
	return v
}

func (sc *scraper) getSnapshot(target string) (*telemetry.Snapshot, error) {
	resp, err := sc.client.Get(target + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /snapshot: %s", resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding /snapshot: %w", err)
	}
	return &snap, nil
}

func (sc *scraper) getExemplars(target string) (*exemplarsDoc, error) {
	resp, err := sc.client.Get(target + "/exemplars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil // endpoint absent (e.g. wdmnode): not an error
	}
	var doc exemplarsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding /exemplars: %w", err)
	}
	return &doc, nil
}

// labelValue returns the value of the named label, or "".
func labelValue(m *telemetry.Metric, key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// fold distributes one snapshot's samples into the view.
func (v *targetView) fold(ms []telemetry.Metric) {
	slo := map[string]*sloView{}
	sloStage := func(stage string) *sloView {
		if s, ok := slo[stage]; ok {
			return s
		}
		s := &sloView{Stage: stage}
		slo[stage] = s
		return s
	}
	for i := range ms {
		m := &ms[i]
		switch m.Name {
		case "wdm_grant_sessions":
			v.Sessions = m.Value
		case "wdm_grant_rounds_total":
			v.Rounds = int64(m.Value)
		case "wdm_grant_submitted_total":
			v.Submitted = int64(m.Value)
		case "wdm_grant_admitted_total":
			v.Admitted = int64(m.Value)
		case "wdm_grant_verdicts_total":
			if v.Verdicts == nil {
				v.Verdicts = map[string]int64{}
			}
			v.Verdicts[labelValue(m, "verdict")] = int64(m.Value)
		case "wdm_grant_queue_depth":
			if v.QueueDepth == nil {
				v.QueueDepth = map[string]float64{}
			}
			v.QueueDepth[labelValue(m, "tenant")] = m.Value
		case "wdm_grant_stage_seconds":
			if v.Stages == nil {
				v.Stages = map[string]stageView{}
			}
			sv := stageView{Count: m.Count, SumSeconds: m.Sum}
			if m.Count > 0 {
				sv.MeanSeconds = m.Sum / float64(m.Count)
			}
			sv.P99Seconds = bucketQuantile(m.Count, m.Buckets, 0.99)
			v.Stages[labelValue(m, "stage")] = sv
		case "wdm_slo_budget_seconds":
			sloStage(labelValue(m, "stage")).BudgetSeconds = m.Value
		case "wdm_slo_error_fraction":
			sloStage(labelValue(m, "stage")).ErrorFraction = m.Value
		case "wdm_slo_burn_rate":
			sloStage(labelValue(m, "stage")).BurnRate = m.Value
		}
	}
	for _, s := range slo {
		v.SLO = append(v.SLO, *s)
	}
	sort.Slice(v.SLO, func(i, j int) bool { return v.SLO[i].Stage < v.SLO[j].Stage })
}

// bucketQuantile estimates a quantile from non-cumulative histogram
// buckets (finite uppers only; the +Inf remainder is count minus the
// bucket sum). Observations past the last finite bound report that
// bound — an underestimate, flagged nowhere, same convention as the
// registry's Prometheus exposition.
func bucketQuantile(count int64, buckets []telemetry.Bucket, q float64) float64 {
	if count <= 0 || len(buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	var cum int64
	for _, b := range buckets {
		cum += b.Count
		if cum >= rank {
			return b.Upper
		}
	}
	return buckets[len(buckets)-1].Upper
}

// render writes the human console view for one scrape pass.
func render(w io.Writer, at time.Time, interval time.Duration, views []targetView) {
	fmt.Fprintf(w, "wdmtop — %d target(s) — %s — interval %s\n",
		len(views), at.Format("15:04:05"), interval)
	for i := range views {
		renderTarget(w, &views[i])
	}
}

func renderTarget(w io.Writer, v *targetView) {
	if !v.Up {
		fmt.Fprintf(w, "\n▸ %s   DOWN   %s\n", v.Target, v.Error)
		return
	}
	fmt.Fprintf(w, "\n▸ %s   up   sessions %.0f   rounds %s%s\n",
		v.Target, v.Sessions, fmtCount(v.Rounds), fmtRateSuffix(v.Rates, "rounds"))
	fmt.Fprintf(w, "  submitted %s%s   admitted %s", fmtCount(v.Submitted),
		fmtRateSuffix(v.Rates, "submitted"), fmtCount(v.Admitted))
	for _, verdict := range verdictOrder {
		if n, ok := v.Verdicts[verdict]; ok && n > 0 {
			fmt.Fprintf(w, "   %s %s%s", verdict, fmtCount(n), fmtRateSuffix(v.Rates, verdict))
		}
	}
	fmt.Fprintln(w)

	if len(v.QueueDepth) > 0 {
		tenants := make([]string, 0, len(v.QueueDepth))
		for t := range v.QueueDepth {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		fmt.Fprint(w, "  queue depth  ")
		for _, t := range tenants {
			fmt.Fprintf(w, " %s:%.0f", t, v.QueueDepth[t])
		}
		fmt.Fprintln(w)
	}

	if len(v.Stages) > 0 {
		var maxMean float64
		for _, sv := range v.Stages {
			if sv.MeanSeconds > maxMean {
				maxMean = sv.MeanSeconds
			}
		}
		fmt.Fprintf(w, "  %-18s %10s %10s %10s\n", "stage", "count", "mean", "p99")
		for _, name := range telemetry.GrantStageNames {
			sv, ok := v.Stages[name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-18s %10s %10s %10s  %s\n", name, fmtCount(sv.Count),
				fmtSeconds(sv.MeanSeconds), fmtSeconds(sv.P99Seconds), bar(sv.MeanSeconds, maxMean, 24))
		}
	}

	for _, s := range v.SLO {
		fmt.Fprintf(w, "  SLO %s: budget %s  err %.3f%%  burn %.2f\n",
			s.Stage, fmtSeconds(s.BudgetSeconds), s.ErrorFraction*100, s.BurnRate)
	}

	if len(v.Exemplars) > 0 {
		fmt.Fprintf(w, "  slowest requests (window %d slots):\n", v.ExemplarWindow)
		for _, e := range v.Exemplars {
			fmt.Fprintf(w, "    id %d  %s/c%d  slot %d  %s  total %s ",
				e.ID, e.Tenant, e.Class, e.Slot, e.Verdict, fmtSeconds(float64(e.TotalNS)/1e9))
			for st, name := range telemetry.GrantStageNames {
				fmt.Fprintf(w, " %s %s", name, fmtSeconds(float64(e.Stages[st])/1e9))
			}
			fmt.Fprintln(w)
		}
	}
}

// verdictOrder fixes the render order of the verdict counters.
var verdictOrder = []string{
	"granted", "rejected-contention", "rejected-admission",
	"retry-bucket", "retry-queue", "retry-drain",
}

// bar renders a proportional meter for the stage waterfall.
func bar(val, max float64, width int) string {
	if max <= 0 || val <= 0 {
		return ""
	}
	n := int(val / max * float64(width))
	if n < 1 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// fmtRateSuffix renders " (X/s)" when a rate is known for the key.
func fmtRateSuffix(rates map[string]float64, key string) string {
	r, ok := rates[key]
	if !ok {
		return ""
	}
	return fmt.Sprintf(" (%s/s)", fmtFloat(r))
}

// fmtCount humanises a counter: 812345 → 812.3k.
func fmtCount(n int64) string { return fmtFloat(float64(n)) }

func fmtFloat(f float64) string {
	switch {
	case math.Abs(f) >= 1e6:
		return fmt.Sprintf("%.2fM", f/1e6)
	case math.Abs(f) >= 1e4:
		return fmt.Sprintf("%.1fk", f/1e3)
	}
	if f == math.Trunc(f) {
		return fmt.Sprintf("%.0f", f)
	}
	return fmt.Sprintf("%.1f", f)
}

// fmtSeconds renders a seconds quantity as a rounded duration.
func fmtSeconds(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	}
	return d.String()
}
