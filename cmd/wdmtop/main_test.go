package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"wdmsched/internal/grant"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/wavelength"
)

// startFleet brings up a real grant service plus its telemetry server —
// the same wiring wdmserve does, including the /exemplars drill-down —
// and returns the telemetry base URL and the service.
func startFleet(t *testing.T) (*grant.Service, string) {
	t.Helper()
	conv, err := wavelength.NewSymmetric(wavelength.Circular, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	svc, err := grant.NewService(grant.Config{
		Switch:    interconnect.Config{N: 4, Conv: conv, Scheduler: "exact", Seed: 7},
		Default:   grant.Policy{Class: 0, Rate: 1e6, Burst: 4096, Queue: 4096},
		Resync:    32,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- svc.Serve(ln) }()
	t.Cleanup(func() {
		svc.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})

	srv, err := telemetry.NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.HandleFunc("/exemplars", func(w http.ResponseWriter, _ *http.Request) {
		ring := svc.Recorder().Exemplars()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(exemplarsDoc{
			WindowSlots: ring.WindowSlots(), K: ring.K(), Exemplars: ring.Snapshot(),
		})
	})

	// Drive settled traffic through the service so every stage histogram
	// and the exemplar ring have content before wdmtop scrapes.
	c, err := grant.Dial(ln.Addr().String(), "toptest")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const rounds, per = 6, 16
	reqs := make([]grant.Req, 0, per)
	id := uint64(1)
	for in := 0; in < 4; in++ {
		for w := 0; w < 4; w++ {
			reqs = append(reqs, grant.Req{ID: id, In: uint32(in), Wave: uint16(w),
				Dest: uint32((in + w) % 4), Dur: 1})
			id++
		}
	}
	c.SetRecvDeadline(time.Now().Add(20 * time.Second))
	seen := 0
	for round := 0; round < rounds; round++ {
		for i := range reqs {
			reqs[i].ID += per
		}
		if err := c.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		for seen < (round+1)*per {
			ev, err := c.Recv()
			if err != nil {
				t.Fatalf("recv with %d verdicts: %v", seen, err)
			}
			seen += len(ev.Notices)
		}
	}
	return svc, "http://" + srv.Addr()
}

// TestOnceJSONReconciles runs `wdmtop -once -json` against a live fleet
// and pins the CI contract: the document parses, the target is up, all
// six stage histograms are present and each count equals the settled
// verdict count (granted + rejected-contention), and the exemplar
// drill-down carries the slowest requests.
func TestOnceJSONReconciles(t *testing.T) {
	_, url := startFleet(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-once", "-json", "-targets", url}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, errb.String())
	}
	var doc topDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("decoding output: %v\n%s", err, out.String())
	}
	if len(doc.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(doc.Targets))
	}
	v := doc.Targets[0]
	if !v.Up {
		t.Fatalf("target down: %s", v.Error)
	}
	if doc.IntervalSeconds != 0 || len(v.Rates) != 0 {
		t.Errorf("-once must not report rates (interval %v, rates %v)", doc.IntervalSeconds, v.Rates)
	}
	if v.Submitted != 96 {
		t.Errorf("submitted = %d, want 96", v.Submitted)
	}
	settled := v.Verdicts["granted"] + v.Verdicts["rejected-contention"]
	if settled == 0 {
		t.Fatalf("no settled verdicts in %v", v.Verdicts)
	}
	if len(v.Stages) != telemetry.NumGrantStages {
		t.Fatalf("stages = %d, want %d: %v", len(v.Stages), telemetry.NumGrantStages, v.Stages)
	}
	for _, name := range telemetry.GrantStageNames {
		sv, ok := v.Stages[name]
		if !ok {
			t.Errorf("stage %s missing", name)
			continue
		}
		if sv.Count != settled {
			t.Errorf("stage %s count = %d, want %d", name, sv.Count, settled)
		}
		if sv.Count > 0 && sv.MeanSeconds <= 0 {
			t.Errorf("stage %s mean = %v, want > 0", name, sv.MeanSeconds)
		}
	}
	if len(v.Exemplars) == 0 {
		t.Error("no exemplars in drill-down")
	}
	if v.ExemplarWindow <= 0 {
		t.Errorf("exemplar window = %d, want > 0", v.ExemplarWindow)
	}
	for _, e := range v.Exemplars {
		if e.Tenant != "toptest" {
			t.Errorf("exemplar tenant = %q, want toptest", e.Tenant)
		}
		if e.TotalNS <= 0 {
			t.Errorf("exemplar %d total = %d, want > 0", e.ID, e.TotalNS)
		}
	}
	if len(v.SLO) == 0 {
		t.Error("no SLO rows in view")
	}
}

// TestOnceTextRenders pins the human view: one pass, no ANSI clear, the
// stage waterfall and exemplar sections present.
func TestOnceTextRenders(t *testing.T) {
	_, url := startFleet(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-once", "-targets", url}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, errb.String())
	}
	text := out.String()
	if strings.Contains(text, "\x1b[") {
		t.Error("-once output contains ANSI escapes")
	}
	for _, want := range []string{"up", "submitted", "stage", "engine_schedule", "slowest requests", "SLO grant"} {
		if !strings.Contains(text, want) {
			t.Errorf("console view missing %q:\n%s", want, text)
		}
	}
}

// TestRefreshComputesRates drives two refreshes against the live fleet
// and checks the second JSON document carries counter-delta rates.
func TestRefreshComputesRates(t *testing.T) {
	_, url := startFleet(t)
	var out, errb bytes.Buffer
	code := run([]string{"-count", "2", "-interval", "50ms", "-json", "-targets", url}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstderr: %s", code, errb.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	var first, second topDoc
	if err := dec.Decode(&first); err != nil {
		t.Fatalf("first doc: %v", err)
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatalf("second doc: %v", err)
	}
	if second.IntervalSeconds <= 0 {
		t.Errorf("second doc interval = %v, want > 0", second.IntervalSeconds)
	}
	if second.Targets[0].Rates == nil {
		t.Error("second doc has no rates")
	} else if _, ok := second.Targets[0].Rates["submitted"]; !ok {
		t.Errorf("rates missing submitted key: %v", second.Targets[0].Rates)
	}
}

// TestDeadTargetFails pins the vacuous-success guard: a -once scrape
// against nothing exits 1 and reports the target down.
func TestDeadTargetFails(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now
	var out, errb bytes.Buffer
	if code := run([]string{"-once", "-json", "-targets", addr, "-timeout", "500ms"}, &out, &errb); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	var doc topDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("decoding output: %v", err)
	}
	if doc.Targets[0].Up || doc.Targets[0].Error == "" {
		t.Errorf("dead target view = %+v, want down with error", doc.Targets[0])
	}
}
