module wdmsched

go 1.24
