// Package pathsim simulates multi-hop wavelength routing over a linear
// WDM network whose nodes carry limited range wavelength converters — the
// setting of the paper's opening motivation: "In the absence of wavelength
// conversion ability, the signal is required to be on the same wavelength
// from hop to hop (the wavelength continuity constraint). This constraint
// can be removed when wavelength converters are employed … network
// performance is greatly improved" (Section I, citing Kovacevic & Acampora
// [6] and the limited-conversion analyses [11], [13]).
//
// Model: a chain of L unidirectional links, each carrying k wavelength
// channels. A connection occupies one channel on each of H consecutive
// links; at every intermediate node the signal may shift wavelength within
// the conversion window of the wavelength it arrived on. The source
// transmitter is tunable (any free wavelength on the first link). A
// connection is admitted iff a feasible per-link wavelength assignment
// exists, computed by forward reachable-set propagation:
//
//	R_0 = free(link_0)
//	R_{i+1} = reach(R_i) ∩ free(link_{i+1})
//
// where reach(S) is the union of conversion windows of the wavelengths in
// S. Admission picks the first-fit assignment by backward tracing. With
// d = 1 this degenerates to the wavelength continuity constraint; with
// d = k every hop is independent.
package pathsim

import (
	"container/heap"
	"fmt"

	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// Network is the channel occupancy state of the chain.
type Network struct {
	conv  wavelength.Conversion
	links int
	busy  [][]bool
	// propagation scratch: reachable sets per hop
	reach [][]bool
}

// NewNetwork builds an idle chain of links under the conversion model.
func NewNetwork(conv wavelength.Conversion, links int) (*Network, error) {
	if links <= 0 {
		return nil, fmt.Errorf("pathsim: links must be positive, got %d", links)
	}
	n := &Network{conv: conv, links: links}
	k := conv.K()
	n.busy = make([][]bool, links)
	for l := range n.busy {
		n.busy[l] = make([]bool, k)
	}
	return n, nil
}

// Links reports the chain length.
func (n *Network) Links() int { return n.links }

// Busy reports whether channel w on link l is occupied.
func (n *Network) Busy(l, w int) bool { return n.busy[l][w] }

// SetBusy sets channel occupancy directly (tests and manual scenarios).
func (n *Network) SetBusy(l, w int, b bool) { n.busy[l][w] = b }

// AssignPolicy selects among feasible wavelength assignments. Feasibility
// (the admit/block decision) is policy-independent — the forward
// propagation is the same; the policy only decides which assignment the
// backward trace picks.
type AssignPolicy int

const (
	// PathFirstFit picks the lowest-index wavelength at every hop.
	PathFirstFit AssignPolicy = iota
	// PathStay prefers keeping the current wavelength from hop to hop,
	// minimizing conversions. It counters the "wavelength drift" of
	// first-fit under limited range conversion on long paths (see the
	// S11 notes in EXPERIMENTS.md).
	PathStay
)

// String names the policy for tables.
func (p AssignPolicy) String() string {
	switch p {
	case PathFirstFit:
		return "first-fit"
	case PathStay:
		return "stay"
	default:
		return fmt.Sprintf("AssignPolicy(%d)", int(p))
	}
}

// Route finds a feasible wavelength assignment for a connection traversing
// links first..last inclusive under the first-fit policy, or reports
// infeasibility. It does not modify occupancy; use Admit to commit.
func (n *Network) Route(first, last int) ([]int, bool) {
	return n.RoutePolicy(first, last, PathFirstFit)
}

// RoutePolicy is Route with an explicit assignment policy.
func (n *Network) RoutePolicy(first, last int, policy AssignPolicy) ([]int, bool) {
	if first < 0 || last >= n.links || first > last {
		panic(fmt.Sprintf("pathsim: bad segment [%d,%d] of %d links", first, last, n.links))
	}
	k := n.conv.K()
	hops := last - first + 1
	for len(n.reach) < hops {
		n.reach = append(n.reach, make([]bool, k))
	}
	// Forward propagation.
	any := false
	for w := 0; w < k; w++ {
		ok := !n.busy[first][w]
		n.reach[0][w] = ok
		any = any || ok
	}
	if !any {
		return nil, false
	}
	for i := 1; i < hops; i++ {
		cur := n.reach[i]
		for w := range cur {
			cur[w] = false
		}
		any = false
		for w := 0; w < k; w++ {
			if !n.reach[i-1][w] {
				continue
			}
			n.conv.Adjacency(wavelength.Wavelength(w)).Each(func(v int) {
				if !n.busy[first+i][v] && !cur[v] {
					cur[v] = true
					any = true
				}
			})
		}
		if !any {
			return nil, false
		}
	}
	// Backward trace.
	assign := make([]int, hops)
	wNext := -1
	for w := 0; w < k; w++ {
		if n.reach[hops-1][w] {
			wNext = w
			break
		}
	}
	assign[hops-1] = wNext
	for i := hops - 2; i >= 0; i-- {
		chosen := -1
		next := assign[i+1]
		if policy == PathStay && n.reach[i][next] &&
			n.conv.CanConvert(wavelength.Wavelength(next), wavelength.Wavelength(next)) {
			chosen = next // keep the wavelength: no conversion at this node
		}
		for w := 0; w < k && chosen < 0; w++ {
			if n.reach[i][w] && n.conv.CanConvert(wavelength.Wavelength(w), wavelength.Wavelength(next)) {
				chosen = w
			}
		}
		if chosen < 0 {
			panic("pathsim: backward trace failed after successful propagation")
		}
		assign[i] = chosen
	}
	return assign, true
}

// Admit routes (first-fit) and, on success, marks the assignment busy.
func (n *Network) Admit(first, last int) ([]int, bool) {
	return n.AdmitPolicy(first, last, PathFirstFit)
}

// AdmitPolicy is Admit with an explicit assignment policy.
func (n *Network) AdmitPolicy(first, last int, policy AssignPolicy) ([]int, bool) {
	assign, ok := n.RoutePolicy(first, last, policy)
	if !ok {
		return nil, false
	}
	for i, w := range assign {
		n.busy[first+i][w] = true
	}
	return assign, true
}

// Release frees a previously admitted assignment.
func (n *Network) Release(first int, assign []int) {
	for i, w := range assign {
		if !n.busy[first+i][w] {
			panic(fmt.Sprintf("pathsim: releasing idle channel link %d λ%d", first+i, w))
		}
		n.busy[first+i][w] = false
	}
}

// Config parameterizes an event-driven run.
type Config struct {
	// Conv is the per-node conversion model.
	Conv wavelength.Conversion
	// Links is the chain length L.
	Links int
	// Hops is the connection length H ≤ L; each connection's first link
	// is uniform over [0, L−H].
	Hops int
	// ArrivalRate λ is the total connection arrival rate.
	ArrivalRate float64
	// MeanHold is the mean exponential holding time 1/µ.
	MeanHold float64
	// Policy selects among feasible assignments (default PathFirstFit).
	Policy AssignPolicy
	// Seed drives the run.
	Seed uint64
}

// Stats reports an event-driven run.
type Stats struct {
	Offered int64
	Blocked int64
}

// BlockingProbability is Blocked/Offered.
func (s Stats) BlockingProbability() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Offered)
}

type holding struct {
	at     float64
	first  int
	assign []int
}

type holdingHeap []holding

func (h holdingHeap) Len() int            { return len(h) }
func (h holdingHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h holdingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *holdingHeap) Push(x interface{}) { *h = append(*h, x.(holding)) }
func (h *holdingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates the given number of Poisson connection arrivals.
func Run(cfg Config, arrivals int) (Stats, error) {
	if cfg.Links <= 0 || cfg.Hops <= 0 || cfg.Hops > cfg.Links {
		return Stats{}, fmt.Errorf("pathsim: bad chain H=%d L=%d", cfg.Hops, cfg.Links)
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanHold <= 0 {
		return Stats{}, fmt.Errorf("pathsim: rates must be positive")
	}
	if cfg.Policy != PathFirstFit && cfg.Policy != PathStay {
		return Stats{}, fmt.Errorf("pathsim: unknown policy %v", cfg.Policy)
	}
	if arrivals < 0 {
		return Stats{}, fmt.Errorf("pathsim: negative arrivals %d", arrivals)
	}
	net, err := NewNetwork(cfg.Conv, cfg.Links)
	if err != nil {
		return Stats{}, err
	}
	rng := traffic.NewRNG(cfg.Seed)
	var dep holdingHeap
	var st Stats
	var now float64
	for i := 0; i < arrivals; i++ {
		now += rng.Exp(cfg.ArrivalRate)
		for len(dep) > 0 && dep[0].at <= now {
			h := heap.Pop(&dep).(holding)
			net.Release(h.first, h.assign)
		}
		st.Offered++
		first := 0
		if cfg.Links > cfg.Hops {
			first = rng.Intn(cfg.Links - cfg.Hops + 1)
		}
		assign, ok := net.AdmitPolicy(first, first+cfg.Hops-1, cfg.Policy)
		if !ok {
			st.Blocked++
			continue
		}
		heap.Push(&dep, holding{at: now + rng.Exp(1/cfg.MeanHold), first: first, assign: assign})
	}
	return st, nil
}
