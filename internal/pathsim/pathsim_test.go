package pathsim

import (
	"math"
	"math/rand"
	"testing"

	"wdmsched/internal/analysis"
	"wdmsched/internal/wavelength"
)

func conv(kind wavelength.Kind, k, d int) wavelength.Conversion {
	if d >= k {
		return wavelength.MustNew(wavelength.Full, k, 0, 0)
	}
	c, err := wavelength.NewSymmetric(kind, k, d)
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(conv(wavelength.Circular, 4, 1), 0); err == nil {
		t.Fatal("zero links accepted")
	}
}

func TestRoutePanicsOnBadSegment(t *testing.T) {
	n, _ := NewNetwork(conv(wavelength.Circular, 4, 1), 3)
	for _, seg := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("segment %v accepted", seg)
				}
			}()
			n.Route(seg[0], seg[1])
		}()
	}
}

// TestWavelengthContinuity: with d = 1 a route must use the same
// wavelength on every hop; an occupancy pattern with no common free
// wavelength blocks even though each link has free channels.
func TestWavelengthContinuity(t *testing.T) {
	n, _ := NewNetwork(conv(wavelength.Circular, 2, 1), 2)
	// Link 0: λ0 busy; link 1: λ1 busy. No common wavelength.
	n.SetBusy(0, 0, true)
	n.SetBusy(1, 1, true)
	if _, ok := n.Route(0, 1); ok {
		t.Fatal("continuity violated: route found without a common wavelength")
	}
	// With d = 3 conversion the same pattern is routable (λ1 → λ0).
	m, _ := NewNetwork(conv(wavelength.Circular, 2, 2+1), 2) // d≥k → full
	m.SetBusy(0, 0, true)
	m.SetBusy(1, 1, true)
	assign, ok := m.Route(0, 1)
	if !ok {
		t.Fatal("conversion should rescue the route")
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assignment %v, want [1 0]", assign)
	}
}

// TestRouteAssignmentValidity: every returned assignment uses free
// channels and respects the conversion windows between hops.
func TestRouteAssignmentValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		k := rng.Intn(6) + 1
		d := 2*rng.Intn((k+1)/2) + 1
		c := conv(wavelength.Circular, k, d)
		links := rng.Intn(5) + 1
		n, _ := NewNetwork(c, links)
		for l := 0; l < links; l++ {
			for w := 0; w < k; w++ {
				n.SetBusy(l, w, rng.Float64() < 0.5)
			}
		}
		first := rng.Intn(links)
		last := first + rng.Intn(links-first)
		assign, ok := n.Route(first, last)
		if !ok {
			continue
		}
		for i, w := range assign {
			if n.Busy(first+i, w) {
				t.Fatalf("assigned busy channel link %d λ%d", first+i, w)
			}
			if i > 0 && !c.CanConvert(wavelength.Wavelength(assign[i-1]), wavelength.Wavelength(w)) {
				t.Fatalf("hop %d: λ%d→λ%d beyond %v", i, assign[i-1], w, c)
			}
		}
	}
}

// bruteRoute exhaustively searches assignments; the oracle for Route's
// completeness.
func bruteRoute(n *Network, c wavelength.Conversion, first, last int) bool {
	k := c.K()
	var dfs func(link, prev int) bool
	dfs = func(link, prev int) bool {
		if link > last {
			return true
		}
		for w := 0; w < k; w++ {
			if n.Busy(link, w) {
				continue
			}
			if prev >= 0 && !c.CanConvert(wavelength.Wavelength(prev), wavelength.Wavelength(w)) {
				continue
			}
			if dfs(link+1, w) {
				return true
			}
		}
		return false
	}
	return dfs(first, -1)
}

// TestRouteCompleteness: Route finds an assignment exactly when one
// exists (cross-checked by exhaustive search on small instances).
func TestRouteCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		k := rng.Intn(4) + 1
		d := 2*rng.Intn((k+1)/2) + 1
		c := conv(wavelength.Circular, k, d)
		links := rng.Intn(4) + 1
		n, _ := NewNetwork(c, links)
		for l := 0; l < links; l++ {
			for w := 0; w < k; w++ {
				n.SetBusy(l, w, rng.Float64() < 0.6)
			}
		}
		_, got := n.Route(0, links-1)
		want := bruteRoute(n, c, 0, links-1)
		if got != want {
			t.Fatalf("k=%d d=%d links=%d: Route=%v brute=%v", k, d, links, got, want)
		}
	}
}

func TestAdmitReleaseRoundTrip(t *testing.T) {
	c := conv(wavelength.Circular, 4, 3)
	n, _ := NewNetwork(c, 3)
	assign, ok := n.Admit(0, 2)
	if !ok {
		t.Fatal("idle network must admit")
	}
	for i, w := range assign {
		if !n.Busy(i, w) {
			t.Fatalf("Admit did not mark link %d λ%d", i, w)
		}
	}
	n.Release(0, assign)
	for i, w := range assign {
		if n.Busy(i, w) {
			t.Fatalf("Release did not free link %d λ%d", i, w)
		}
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	n, _ := NewNetwork(conv(wavelength.Circular, 4, 1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	n.Release(0, []int{0})
}

func TestRunValidation(t *testing.T) {
	c := conv(wavelength.Circular, 4, 1)
	bad := []Config{
		{Conv: c, Links: 0, Hops: 1, ArrivalRate: 1, MeanHold: 1},
		{Conv: c, Links: 2, Hops: 3, ArrivalRate: 1, MeanHold: 1},
		{Conv: c, Links: 2, Hops: 1, ArrivalRate: 0, MeanHold: 1},
		{Conv: c, Links: 2, Hops: 1, ArrivalRate: 1, MeanHold: 0},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg, 10); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := Run(Config{Conv: c, Links: 2, Hops: 1, ArrivalRate: 1, MeanHold: 1}, -1); err == nil {
		t.Fatal("negative arrivals accepted")
	}
}

// TestSingleHopMatchesErlangB: H = L = 1 with a tunable source is an
// M/M/k/k loss system.
func TestSingleHopMatchesErlangB(t *testing.T) {
	const k = 8
	a := 6.0
	st, err := Run(Config{
		Conv: conv(wavelength.Circular, k, 3), Links: 1, Hops: 1,
		ArrivalRate: a, MeanHold: 1, Seed: 11,
	}, 300000)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := analysis.ErlangB(k, a)
	if math.Abs(st.BlockingProbability()-want) > 0.01+0.05*want {
		t.Fatalf("blocking %v, Erlang-B %v", st.BlockingProbability(), want)
	}
}

// TestConversionReducesBlocking reproduces the Section I motivation on
// multi-hop paths with partial overlap: conversion strictly reduces
// blocking relative to the wavelength continuity constraint, and limited
// range conversion sits between the extremes at moderate path lengths.
//
// Partial path overlap is what makes conversion matter — connections
// sharing only some links fragment the wavelength space, and a converter
// heals the fragmentation. (With Hops == Links every connection sees
// identical occupancy on all links and conversion is irrelevant.) Arrival
// rate scales as 1/H to hold per-link load constant.
//
// A caveat this simulator surfaces (and EXPERIMENTS.md records): on long
// paths, greedy first-fit with *limited* range conversion can drift the
// wavelength along the path and fragment the space for later arrivals —
// occasionally blocking more than no conversion at all. The monotone-in-d
// assertion is therefore made at moderate hop counts, where the classic
// ordering holds.
func TestConversionReducesBlocking(t *testing.T) {
	const k, links = 8, 12
	blocking := func(d, hops int) float64 {
		st, err := Run(Config{
			Conv: conv(wavelength.Circular, k, d), Links: links, Hops: hops,
			ArrivalRate: 36.0 / float64(hops), MeanHold: 1, Seed: 13,
		}, 120000)
		if err != nil {
			t.Fatal(err)
		}
		return st.BlockingProbability()
	}
	for _, hops := range []int{2, 4} {
		b1 := blocking(1, hops)
		b3 := blocking(3, hops)
		bk := blocking(k, hops)
		if !(b1 > b3 && b3 > bk) {
			t.Fatalf("H=%d: blocking not monotone in d: d1=%v d3=%v full=%v", hops, b1, b3, bk)
		}
	}
	// Even at long paths, full conversion still beats no conversion.
	if b1, bk := blocking(1, 6), blocking(k, 6); b1 <= bk {
		t.Fatalf("H=6: full conversion (%v) must beat continuity (%v)", bk, b1)
	}
}

// TestStayPolicyReducesDriftBlocking: the conversion-minimizing assignment
// policy must lower blocking relative to first-fit in the long-path,
// limited-degree regime where first-fit's wavelength drift bites.
func TestStayPolicyReducesDriftBlocking(t *testing.T) {
	const k, links, hops = 8, 12, 6
	run := func(policy AssignPolicy) float64 {
		st, err := Run(Config{
			Conv: conv(wavelength.Circular, k, 3), Links: links, Hops: hops,
			ArrivalRate: 3 * float64(links) / float64(hops), MeanHold: 1,
			Policy: policy, Seed: 13,
		}, 150000)
		if err != nil {
			t.Fatal(err)
		}
		return st.BlockingProbability()
	}
	ff, stay := run(PathFirstFit), run(PathStay)
	if stay >= ff {
		t.Fatalf("stay policy (%v) did not improve on first-fit (%v)", stay, ff)
	}
}

// TestStayPolicyAdmissionIdenticalPerCall: on the SAME occupancy state the
// two policies agree on feasibility (the propagation is shared); only the
// chosen assignment differs.
func TestStayPolicyAdmissionIdenticalPerCall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		k := rng.Intn(5) + 1
		d := 2*rng.Intn((k+1)/2) + 1
		c := conv(wavelength.Circular, k, d)
		links := rng.Intn(4) + 1
		n, _ := NewNetwork(c, links)
		for l := 0; l < links; l++ {
			for w := 0; w < k; w++ {
				n.SetBusy(l, w, rng.Float64() < 0.5)
			}
		}
		_, okFF := n.RoutePolicy(0, links-1, PathFirstFit)
		stayAssign, okStay := n.RoutePolicy(0, links-1, PathStay)
		if okFF != okStay {
			t.Fatalf("policies disagree on feasibility: ff=%v stay=%v", okFF, okStay)
		}
		if !okStay {
			continue
		}
		for i, w := range stayAssign {
			if n.Busy(i, w) {
				t.Fatalf("stay assigned busy channel link %d λ%d", i, w)
			}
			if i > 0 && !c.CanConvert(wavelength.Wavelength(stayAssign[i-1]), wavelength.Wavelength(w)) {
				t.Fatalf("stay hop %d beyond reach", i)
			}
		}
	}
}

// TestStayPolicyMinimizesConversionsOnIdleNetwork: with everything free,
// stay uses one wavelength end to end.
func TestStayPolicyMinimizesConversionsOnIdleNetwork(t *testing.T) {
	c := conv(wavelength.Circular, 6, 3)
	n, _ := NewNetwork(c, 5)
	assign, ok := n.RoutePolicy(0, 4, PathStay)
	if !ok {
		t.Fatal("idle network must admit")
	}
	for i := 1; i < len(assign); i++ {
		if assign[i] != assign[0] {
			t.Fatalf("stay converted on an idle network: %v", assign)
		}
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	c := conv(wavelength.Circular, 4, 1)
	if _, err := Run(Config{Conv: c, Links: 2, Hops: 1, ArrivalRate: 1, MeanHold: 1, Policy: AssignPolicy(9)}, 10); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if AssignPolicy(9).String() == "" || PathStay.String() != "stay" {
		t.Fatal("policy String broken")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{
		Conv: conv(wavelength.Circular, 8, 3), Links: 4, Hops: 2,
		ArrivalRate: 5, MeanHold: 1, Seed: 17,
	}
	a, err := Run(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
