package metrics

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells with a
// header row. The harness prints one Table per reproduced paper table and
// one per figure (as the figure's underlying data grid).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width panic (a harness
// bug).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("metrics: row width %d != header width %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with %.4g.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// AddNote attaches a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SeriesTable renders one or more series sharing an x axis as a table:
// first column x, one column per series.
func SeriesTable(title string, series ...*Series) (*Table, error) {
	if len(series) == 0 {
		return NewTable(title, "x"), nil
	}
	header := []string{firstNonEmpty(series[0].XLabel, "x")}
	for _, s := range series {
		header = append(header, s.Name)
		if s.Len() != series[0].Len() {
			return nil, fmt.Errorf("metrics: series %q has %d points, want %d", s.Name, s.Len(), series[0].Len())
		}
	}
	t := NewTable(title, header...)
	for i := 0; i < series[0].Len(); i++ {
		row := []string{fmt.Sprintf("%.4g", series[0].X[i])}
		for _, s := range series {
			cell := fmt.Sprintf("%.4g", s.Y[i])
			if i < len(s.YErr) && s.YErr[i] > 0 {
				cell += fmt.Sprintf("±%.2g", s.YErr[i])
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
