package metrics

import (
	"strings"
	"testing"
)

func TestPlotEmpty(t *testing.T) {
	if got := Plot(40, 10); got != "(no data)\n" {
		t.Fatalf("empty plot = %q", got)
	}
}

func TestPlotRendersMarkersAndLegend(t *testing.T) {
	a := &Series{Name: "alpha"}
	a.Add(0, 0)
	a.Add(1, 1)
	b := &Series{Name: "beta"}
	b.Add(0, 1)
	b.Add(1, 0)
	out := Plot(20, 8, a, b)
	for _, want := range []string{"*", "o", "alpha", "beta", "+--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// 8 grid rows + axis + x labels + 2 legend lines + trailing empty.
	if len(lines) != 13 {
		t.Fatalf("plot has %d lines, want 13:\n%s", len(lines), out)
	}
}

func TestPlotMonotoneSeriesOrientation(t *testing.T) {
	// An increasing series must put its marker in the top row at the
	// right edge and the bottom row at the left edge.
	s := &Series{Name: "up"}
	for i := 0; i <= 10; i++ {
		s.Add(float64(i), float64(i))
	}
	out := Plot(22, 6, s)
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[5]
	if !strings.Contains(top, "*") || strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Fatalf("orientation wrong:\n%s", out)
	}
	if !strings.Contains(top, "10") { // ymax label
		t.Fatalf("ymax label missing:\n%s", out)
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	s := &Series{Name: "flat"}
	s.Add(2, 5)
	s.Add(2, 5) // identical points: both ranges degenerate
	out := Plot(10, 5, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("flat plot missing marker:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	s := &Series{Name: "p"}
	s.Add(0, 0)
	out := Plot(1, 1, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("tiny plot missing marker:\n%s", out)
	}
}
