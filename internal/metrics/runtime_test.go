package metrics

import (
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Valid() || g.Value() != 0 {
		t.Fatal("fresh gauge must be zero and invalid")
	}
	g.Set(3.5)
	if !g.Valid() || g.Value() != 3.5 {
		t.Fatalf("gauge = %v valid=%v", g.Value(), g.Valid())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %v, want -1", g.Value())
	}
	g.Reset()
	if g.Valid() || g.Value() != 0 {
		t.Fatal("reset gauge must be zero and invalid")
	}
}

func TestDurationHistogramEmpty(t *testing.T) {
	h := NewDurationHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestDurationHistogramBasic(t *testing.T) {
	h := NewDurationHistogram()
	for _, d := range []time.Duration{0, time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond} {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 7 * time.Microsecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Mean() != wantSum/4 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 4*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	// Quantile upper bounds: within a factor of 2 of the true value, and
	// never above the observed maximum.
	if q := h.Quantile(1.0); q != 4*time.Microsecond {
		t.Fatalf("p100 = %v, want max", q)
	}
	if q := h.Quantile(0.25); q != 0 {
		t.Fatalf("p25 = %v, want 0 (smallest observation)", q)
	}
	if q := h.Quantile(0.5); q < time.Microsecond || q > 2*time.Microsecond {
		t.Fatalf("p50 = %v outside [1µs, 2µs]", q)
	}
}

func TestDurationHistogramNegativeClampsToZero(t *testing.T) {
	h := NewDurationHistogram()
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: %v", h)
	}
}

func TestDurationHistogramQuantileMonotone(t *testing.T) {
	h := NewDurationHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("p100 %v != max %v", h.Quantile(1), h.Max())
	}
}

func TestDurationHistogramObserveNoAllocs(t *testing.T) {
	h := NewDurationHistogram()
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v per call", allocs)
	}
}
