package metrics

import (
	"fmt"
	"math"
	"strings"
)

// plotMarkers are assigned to series in order.
var plotMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders one or more series as an ASCII scatter/line chart of the
// given interior dimensions (columns × rows), with auto-scaled axes, y
// labels on the left, x range at the bottom and a marker legend. It is how
// the repository renders "figures": every reproduced figure is a data grid
// (SeriesTable) plus, optionally, this visual form.
func Plot(width, height int, series ...*Series) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := plotMarkers[si%len(plotMarkers)]
		for i := range s.X {
			grid[row(s.Y[i])][col(s.X[i])] = m
		}
	}

	var b strings.Builder
	yLabel := func(v float64) string { return fmt.Sprintf("%8.3g", v) }
	for r, line := range grid {
		switch r {
		case 0:
			b.WriteString(yLabel(ymax))
		case height - 1:
			b.WriteString(yLabel(ymin))
		default:
			b.WriteString(strings.Repeat(" ", 8))
		}
		b.WriteString(" |")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 8) + " +" + strings.Repeat("-", width) + "\n")
	xl := fmt.Sprintf("%.3g", xmin)
	xr := fmt.Sprintf("%.3g", xmax)
	pad := width - len(xl) - len(xr)
	if pad < 1 {
		pad = 1
	}
	b.WriteString(strings.Repeat(" ", 10) + xl + strings.Repeat(" ", pad) + xr + "\n")
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", plotMarkers[si%len(plotMarkers)], s.Name)
	}
	return b.String()
}
