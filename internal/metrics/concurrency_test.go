package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentPrimitives hammers every lock-free primitive (and the
// mutex-guarded Welford) from many goroutines while readers scrape
// concurrently. Run under -race this is the safety gate for exposing live
// metrics to the telemetry HTTP server while both engines write them.
func TestConcurrentPrimitives(t *testing.T) {
	const writers, perWriter = 8, 5000

	var c Counter
	var g Gauge
	var w Welford
	h := NewHistogram(16)
	dh := NewDurationHistogram()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Value()
				_ = g.Value()
				_ = g.Valid()
				_ = w.Mean()
				_ = w.Stddev()
				_ = h.Count()
				_ = h.Mean()
				_ = h.Quantile(0.95)
				_ = h.Snapshot()
				_ = dh.Count()
				_ = dh.Max()
				_ = dh.Quantile(0.5)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Set(float64(j))
				w.Observe(float64(j % 10))
				h.Observe(j % 20) // includes overflow (>16)
				dh.Observe(time.Duration(j%4096) * time.Nanosecond)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const total = writers * perWriter
	if c.Value() != total {
		t.Errorf("Counter = %d, want %d", c.Value(), total)
	}
	if !g.Valid() {
		t.Error("Gauge not valid after Set")
	}
	if w.N() != total {
		t.Errorf("Welford N = %d, want %d", w.N(), total)
	}
	if h.Count() != total {
		t.Errorf("Histogram count = %d, want %d", h.Count(), total)
	}
	// j%20 lands above max=16 for j%20 in 17..19: 3 of every 20.
	if want := int64(total * 3 / 20); h.Overflow() != want {
		t.Errorf("Histogram overflow = %d, want %d", h.Overflow(), want)
	}
	if dh.Count() != total {
		t.Errorf("DurationHistogram count = %d, want %d", dh.Count(), total)
	}
	if dh.Max() != 4095*time.Nanosecond {
		t.Errorf("DurationHistogram max = %v, want 4095ns", dh.Max())
	}
}

// TestDurationHistogramQuantileUnderWriters scrapes quantiles while
// writers are mid-flight and pins the property a live wdmtop scrape
// depends on: every reported value stays within
// [0, bucket-upper(max observed)] — a torn read must never fabricate an
// impossible latency. Monotonicity in q is NOT asserted mid-flight
// (each Quantile call sees a different prefix of the write stream, so
// a later higher-q call can legitimately report a smaller value); it is
// asserted once the writers have joined and the histogram is quiescent.
func TestDurationHistogramQuantileUnderWriters(t *testing.T) {
	const writers, perWriter = 8, 4000
	const maxObs = 1 << 20 // ns; bucket upper bound for it is < 2^21
	h := NewDurationHistogram()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		qs := []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999}
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, q := range qs {
				v := h.Quantile(q)
				if v < 0 || v > 2*maxObs {
					t.Errorf("Quantile(%v) = %v, outside [0, %v]", q, v, time.Duration(2*maxObs))
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(time.Duration((j*2654435761 + i) % maxObs))
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if h.Count() != writers*perWriter {
		t.Errorf("count = %d, want %d", h.Count(), writers*perWriter)
	}
	// Quiescent: the full quantile curve must be monotone non-decreasing.
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("settled Quantile(%v) = %v < %v at lower q (not monotone)", q, v, prev)
		}
		prev = v
	}
}

// TestWelfordConcurrentExact joins concurrent writers feeding a known
// multiset and requires the post-join aggregate to be exact: the mean of
// values 0..9 in equal proportion is 4.5 and the count is the write
// total — the mutex-guarded merge must not lose or double-book an
// observation.
func TestWelfordConcurrentExact(t *testing.T) {
	const writers, perWriter = 8, 5000
	var w Welford
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				w.Observe(float64(j % 10))
			}
		}()
	}
	wg.Wait()

	const total = writers * perWriter
	if w.N() != total {
		t.Errorf("N = %d, want %d", w.N(), total)
	}
	if mean := w.Mean(); mean < 4.5-1e-9 || mean > 4.5+1e-9 {
		t.Errorf("Mean = %v, want 4.5 exactly (±1e-9)", mean)
	}
	// Population stddev of uniform 0..9 is sqrt(8.25) ≈ 2.87228; the
	// sample correction at N=40000 is far below the tolerance.
	if sd := w.Stddev(); sd < 2.87 || sd > 2.88 {
		t.Errorf("Stddev = %v, want ≈ 2.872", sd)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(4)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}

	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	// q=0 clamps to the first observation.
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q=0 = %d, want 1", got)
	}
	if got := h.Quantile(1); got != 3 {
		t.Errorf("q=1 = %d, want 3", got)
	}

	// All mass in overflow: quantile reports max+1.
	o := NewHistogram(2)
	o.Observe(10)
	o.Observe(20)
	if got := o.Quantile(0.5); got != 3 {
		t.Errorf("all-overflow quantile = %d, want len(buckets)=3", got)
	}
	// Mean still uses true magnitudes.
	if got := o.Mean(); got != 15 {
		t.Errorf("all-overflow mean = %v, want 15", got)
	}
}

func TestHistogramSnapshotAndReset(t *testing.T) {
	h := NewHistogram(3)
	h.Observe(1)
	h.Observe(1)
	h.Observe(9)
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 11 || s.Overflow != 1 || s.Buckets[1] != 2 {
		t.Errorf("snapshot = %+v", s)
	}

	other := h.Snapshot()
	s.Merge(other)
	if s.Count != 6 || s.Sum != 22 || s.Overflow != 2 || s.Buckets[1] != 4 {
		t.Errorf("merged snapshot = %+v", s)
	}

	h.Reset()
	if h.Count() != 0 || h.Overflow() != 0 || h.Bucket(1) != 0 {
		t.Error("Reset left residue")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Merge with mismatched bucket count must panic")
		}
	}()
	s.Merge(NewHistogram(7).Snapshot())
}

func TestDurationHistogramBucketBoundaries(t *testing.T) {
	h := NewDurationHistogram()
	// Bucket 0 is exactly 0ns; bucket b ≥ 1 covers [2^(b-1), 2^b) ns.
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		h.Observe(c.d)
		if got := h.BucketCount(c.bucket); got < 1 {
			t.Errorf("Observe(%dns): bucket %d empty", c.d, c.bucket)
		}
		if upper := BucketUpperNS(c.bucket); int64(c.d) > upper {
			t.Errorf("Observe(%dns) exceeds BucketUpperNS(%d)=%d", c.d, c.bucket, upper)
		}
		if c.bucket > 0 {
			if lower := BucketUpperNS(c.bucket-1) + 1; int64(c.d) < lower {
				t.Errorf("Observe(%dns) below bucket %d lower bound %d", c.d, c.bucket, lower)
			}
		}
	}
	if n := int64(len(cases)); h.Count() != n {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
	// Out-of-range bucket queries are safe.
	if h.BucketCount(-1) != 0 || h.BucketCount(64) != 0 {
		t.Error("out-of-range BucketCount must be 0")
	}
	if BucketUpperNS(-1) != 0 || BucketUpperNS(0) != 0 {
		t.Error("BucketUpperNS(≤0) must be 0")
	}
	if BucketUpperNS(63) != 1<<63-1 || BucketUpperNS(64) != 1<<63-1 {
		t.Error("BucketUpperNS(≥63) must be MaxInt64")
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.BucketCount(2) != 0 {
		t.Error("Reset left residue")
	}
}
