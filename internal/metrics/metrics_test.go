package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	var d Counter
	d.Add(10)
	if got := c.Ratio(&d); got != 0.5 {
		t.Fatalf("Ratio = %v", got)
	}
	var zero Counter
	if c.Ratio(&zero) != 0 {
		t.Fatal("Ratio by zero must be 0")
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", w.Variance())
	}
	if w.CI95() <= 0 {
		t.Fatal("CI95 must be positive with n ≥ 2")
	}
	w.Reset()
	if w.N() != 0 {
		t.Fatal("Reset failed")
	}
}

// Property: Welford matches the naive two-pass mean/variance.
func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Observe(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		naiveVar := m2 / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Variance()-naiveVar) < 1e-4*(1+naiveVar)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 2, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Bucket(1) != 2 || h.Overflow() != 1 {
		t.Fatalf("histogram state wrong: count=%d b1=%d over=%d", h.Count(), h.Bucket(1), h.Overflow())
	}
	if h.Bucket(-1) != 0 || h.Bucket(9) != 0 {
		t.Fatal("out-of-range Bucket must be 0")
	}
	if math.Abs(h.Mean()-11.0/5) > 1e-12 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Quantile(0.5) != 1 {
		t.Fatalf("median = %d", h.Quantile(0.5))
	}
	if h.Quantile(0.99) != 5 { // falls into overflow → max+1
		t.Fatalf("p99 = %d", h.Quantile(0.99))
	}
	empty := NewHistogram(2)
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram quantile/mean")
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative max":         func() { NewHistogram(-1) },
		"negative observation": func() { NewHistogram(2).Observe(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestJain(t *testing.T) {
	if Jain(nil) != 1 {
		t.Fatal("empty shares must be 1")
	}
	if Jain([]float64{0, 0}) != 1 {
		t.Fatal("all-zero shares must be 1")
	}
	if got := Jain([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform Jain = %v", got)
	}
	if got := Jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("degenerate Jain = %v", got)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "loss"}
	s.Add(0.9, 0.1)
	s.AddErr(0.5, 0.01, 0.002)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.SortByX()
	if s.X[0] != 0.5 || s.Y[0] != 0.01 || s.YErr[0] != 0.002 {
		t.Fatalf("sort broke alignment: %+v", s)
	}
	if s.X[1] != 0.9 || s.YErr[1] != 0 {
		t.Fatalf("sort broke alignment: %+v", s)
	}
	if !strings.Contains(s.String(), "loss:") {
		t.Fatal("String missing name")
	}
}

func TestTableASCIIAndCSV(t *testing.T) {
	tb := NewTable("demo", "alg", "size")
	tb.AddRow("bfa", "6")
	tb.AddRowf("fa", 5.5)
	tb.AddNote("k=%d", 6)
	out := tb.ASCII()
	for _, want := range []string{"== demo ==", "alg", "bfa", "5.5", "note: k=6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII missing %q in:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "alg,size\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	tb2 := NewTable("q", "a")
	tb2.AddRow(`x,"y"`)
	if !strings.Contains(tb2.CSV(), `"x,""y"""`) {
		t.Fatalf("CSV quoting wrong: %s", tb2.CSV())
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTable("t", "a", "b").AddRow("only one")
}

func TestSeriesTable(t *testing.T) {
	a := &Series{Name: "d=2", XLabel: "load"}
	a.Add(0.5, 0.01)
	a.Add(0.9, 0.1)
	b := &Series{Name: "d=3"}
	b.AddErr(0.5, 0.005, 0.001)
	b.AddErr(0.9, 0.05, 0.004)
	tb, err := SeriesTable("fig", a, b)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.ASCII()
	for _, want := range []string{"load", "d=2", "d=3", "±0.001"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	short := &Series{Name: "broken"}
	short.Add(1, 1)
	if _, err := SeriesTable("bad", a, short); err == nil {
		t.Fatal("mismatched series lengths accepted")
	}
	empty, err := SeriesTable("none")
	if err != nil || len(empty.Header) != 1 {
		t.Fatal("empty SeriesTable wrong")
	}
}
