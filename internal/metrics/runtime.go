package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Gauge is a last-value metric: it remembers the most recent sample of a
// quantity that rises and falls (unlike Counter, which only accumulates).
// The engine uses gauges for sampled rates such as allocations per slot.
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(x float64) { g.v, g.set = x, true }

// Value returns the last recorded value (0 before any Set).
func (g *Gauge) Value() float64 { return g.v }

// Valid reports whether the gauge has been Set at least once.
func (g *Gauge) Valid() bool { return g.set }

// Reset clears the gauge.
func (g *Gauge) Reset() { *g = Gauge{} }

// durationBuckets is the number of power-of-two latency buckets; bucket i
// holds durations whose nanosecond count has bit length i, i.e. bucket 0 is
// exactly 0ns and bucket i ≥ 1 covers [2^(i−1), 2^i) ns. 64 buckets span
// every representable time.Duration.
const durationBuckets = 64

// DurationHistogram is an allocation-free latency histogram with
// power-of-two nanosecond buckets, built for per-slot hot-path timing: one
// Observe is a bit-length computation and three adds. Quantiles are
// resolved to bucket upper bounds (at most 2× the true value), which is
// plenty to tell a 5µs slot from a 500µs one.
type DurationHistogram struct {
	buckets [durationBuckets]int64
	count   int64
	sum     int64 // nanoseconds
	max     int64 // nanoseconds
}

// NewDurationHistogram builds an empty latency histogram.
func NewDurationHistogram() *DurationHistogram { return &DurationHistogram{} }

// Observe records one duration; negative durations count as zero.
func (h *DurationHistogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of observations.
func (h *DurationHistogram) Count() int64 { return h.count }

// Sum returns the total observed time.
func (h *DurationHistogram) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the average observation (0 with no samples).
func (h *DurationHistogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest observation.
func (h *DurationHistogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an upper bound for the q-quantile (q in [0, 1]): the
// upper edge of the bucket where the cumulative count crosses q, capped at
// the maximum observation. Returns 0 with no samples.
func (h *DurationHistogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range h.buckets {
		cum += c
		if cum < target {
			continue
		}
		if b == 0 {
			return 0
		}
		upper := int64(math.MaxInt64)
		if b < 63 {
			upper = int64(1)<<uint(b) - 1
		}
		if upper > h.max {
			upper = h.max
		}
		return time.Duration(upper)
	}
	return time.Duration(h.max)
}

// Reset clears the histogram.
func (h *DurationHistogram) Reset() { *h = DurationHistogram{} }

// String renders a compact summary for debugging and tables.
func (h *DurationHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50≤%v p95≤%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
}
