package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Gauge is a last-value metric: it remembers the most recent sample of a
// quantity that rises and falls (unlike Counter, which only accumulates).
// The engine uses gauges for sampled rates such as allocations per slot.
// Set and Value are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
	set  atomic.Bool
}

// Set records the current value.
func (g *Gauge) Set(x float64) {
	g.bits.Store(math.Float64bits(x))
	g.set.Store(true)
}

// Value returns the last recorded value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Valid reports whether the gauge has been Set at least once.
func (g *Gauge) Valid() bool { return g.set.Load() }

// Reset clears the gauge.
func (g *Gauge) Reset() {
	g.bits.Store(0)
	g.set.Store(false)
}

// durationBuckets is the number of power-of-two latency buckets; bucket i
// holds durations whose nanosecond count has bit length i, i.e. bucket 0 is
// exactly 0ns and bucket i ≥ 1 covers [2^(i−1), 2^i) ns. 64 buckets span
// every representable time.Duration.
const durationBuckets = 64

// DurationHistogram is an allocation-free latency histogram with
// power-of-two nanosecond buckets, built for per-slot hot-path timing: one
// Observe is a bit-length computation and three atomic adds (plus a CAS
// loop for the max). Safe for concurrent use. Quantiles are resolved to
// bucket upper bounds (at most 2× the true value), which is plenty to tell
// a 5µs slot from a 500µs one.
type DurationHistogram struct {
	buckets [durationBuckets]int64 // atomic access
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// NewDurationHistogram builds an empty latency histogram.
func NewDurationHistogram() *DurationHistogram { return &DurationHistogram{} }

// Observe records one duration; negative durations count as zero.
func (h *DurationHistogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	atomic.AddInt64(&h.buckets[bits.Len64(uint64(ns))], 1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *DurationHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *DurationHistogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation (0 with no samples).
func (h *DurationHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *DurationHistogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// BucketCount returns the count in power-of-two bucket b (0 ≤ b < 64):
// bucket 0 is exactly 0ns, bucket b ≥ 1 covers [2^(b−1), 2^b) ns.
func (h *DurationHistogram) BucketCount(b int) int64 {
	if b < 0 || b >= durationBuckets {
		return 0
	}
	return atomic.LoadInt64(&h.buckets[b])
}

// NumBuckets returns the number of power-of-two buckets.
func (h *DurationHistogram) NumBuckets() int { return durationBuckets }

// BucketUpperNS returns the inclusive upper bound in nanoseconds of
// bucket b, i.e. the largest duration that lands in it.
func BucketUpperNS(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(b) - 1
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]): the
// upper edge of the bucket where the cumulative count crosses q, capped at
// the maximum observation. Returns 0 with no samples.
func (h *DurationHistogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	max := h.max.Load()
	var cum int64
	for b := 0; b < durationBuckets; b++ {
		cum += atomic.LoadInt64(&h.buckets[b])
		if cum < target {
			continue
		}
		if b == 0 {
			return 0
		}
		upper := BucketUpperNS(b)
		if upper > max {
			upper = max
		}
		return time.Duration(upper)
	}
	return time.Duration(max)
}

// FractionAbove returns the fraction of observations whose bucket lies
// entirely above d — the error fraction of a latency SLO with budget d,
// resolved to the histogram's power-of-two bucket granularity (an
// observation in d's own bucket counts as within budget). Returns 0 with
// no samples.
func (h *DurationHistogram) FractionAbove(d time.Duration) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	over := bits.Len64(uint64(ns)) // d's own bucket index
	var above int64
	for b := over + 1; b < durationBuckets; b++ {
		above += atomic.LoadInt64(&h.buckets[b])
	}
	return float64(above) / float64(n)
}

// Reset clears the histogram.
func (h *DurationHistogram) Reset() {
	for b := range h.buckets {
		atomic.StoreInt64(&h.buckets[b], 0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// String renders a compact summary for debugging and tables.
func (h *DurationHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50≤%v p95≤%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
}
