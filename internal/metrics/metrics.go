// Package metrics provides the measurement primitives the simulator and
// the experiment harness report with: counters, streaming mean/variance,
// histograms, batch-mean confidence intervals, and table rendering (ASCII
// and CSV).
//
// Counter, Gauge, Histogram and DurationHistogram are lock-free and safe
// for concurrent use: writers update them with atomic operations, so a
// telemetry scraper can read a metric while the simulation hot path is
// still writing it (readers may observe a value mid-update — e.g. a
// histogram whose total momentarily disagrees with its bucket sum by one —
// but never tear or race). Welford guards its multi-word state with a
// mutex instead; it lives off the per-slot hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by d (d ≥ 0).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n.Add(d)
}

// Inc increments by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Ratio returns c/other, or 0 when other is zero.
func (c *Counter) Ratio(other *Counter) float64 {
	o := other.Value()
	if o == 0 {
		return 0
	}
	return float64(c.Value()) / float64(o)
}

// Welford accumulates a streaming mean and variance (Welford's algorithm),
// numerically stable for long simulations. A mutex makes it safe for
// concurrent use; unlike the atomic primitives it must not be copied after
// first use.
type Welford struct {
	mu   sync.Mutex
	n    int64
	mean float64
	m2   float64
}

// Observe adds a sample.
func (w *Welford) Observe(x float64) {
	w.mu.Lock()
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	w.mu.Unlock()
}

// N returns the sample count.
func (w *Welford) N() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mean
}

// variance is the unbiased sample variance; callers hold w.mu.
func (w *Welford) variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Variance returns the unbiased sample variance (0 with < 2 samples).
func (w *Welford) Variance() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.variance()
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return math.Sqrt(w.variance())
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean (0 with < 2 samples). Simulation runs feed batch
// means into a Welford to get credible intervals despite autocorrelation.
func (w *Welford) CI95() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < 2 {
		return 0
	}
	return 1.96 * math.Sqrt(w.variance()) / math.Sqrt(float64(w.n))
}

// Reset clears the accumulator.
func (w *Welford) Reset() {
	w.mu.Lock()
	w.n, w.mean, w.m2 = 0, 0, 0
	w.mu.Unlock()
}

// Histogram counts integer-valued observations in unit buckets
// [0, 1, …, max]; larger values land in the overflow bucket. Observe and
// the accessors are safe for concurrent use; a reader that races a writer
// sees each word atomically but may catch the histogram mid-observation.
type Histogram struct {
	buckets  []int64 // atomic access
	overflow atomic.Int64
	total    atomic.Int64
	sum      atomic.Int64
}

// NewHistogram builds a histogram for values 0..max.
func NewHistogram(max int) *Histogram {
	if max < 0 {
		panic("metrics: negative histogram max")
	}
	return &Histogram{buckets: make([]int64, max+1)}
}

// Observe records a value (negative values panic: they indicate a
// simulator bug).
func (h *Histogram) Observe(v int) {
	if v < 0 {
		panic("metrics: negative histogram observation")
	}
	if v < len(h.buckets) {
		atomic.AddInt64(&h.buckets[v], 1)
	} else {
		h.overflow.Add(1)
	}
	h.total.Add(1)
	h.sum.Add(int64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Bucket returns the count at value v (overflow excluded).
func (h *Histogram) Bucket(v int) int64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return atomic.LoadInt64(&h.buckets[v])
}

// Max returns the largest in-range value the histogram can hold.
func (h *Histogram) Max() int { return len(h.buckets) - 1 }

// Overflow returns the count of observations above max.
func (h *Histogram) Overflow() int64 { return h.overflow.Load() }

// Mean returns the average observation (overflow values counted at their
// true magnitude via sum).
func (h *Histogram) Mean() float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(total)
}

// Quantile returns the smallest in-range value v with
// P(X ≤ v) ≥ q. Overflowed mass counts as above-range; if the quantile
// falls in the overflow, it returns len(buckets) (i.e. max+1).
func (h *Histogram) Quantile(q float64) int {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for v := range h.buckets {
		cum += atomic.LoadInt64(&h.buckets[v])
		if cum >= target {
			return v
		}
	}
	return len(h.buckets)
}

// Reset zeroes all buckets and totals.
func (h *Histogram) Reset() {
	for v := range h.buckets {
		atomic.StoreInt64(&h.buckets[v], 0)
	}
	h.overflow.Store(0)
	h.total.Store(0)
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, for merging
// per-port histograms into a switch-wide view at telemetry-scrape time.
type HistogramSnapshot struct {
	Buckets  []int64
	Overflow int64
	Count    int64
	Sum      int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets:  make([]int64, len(h.buckets)),
		Overflow: h.overflow.Load(),
		Count:    h.total.Load(),
		Sum:      h.sum.Load(),
	}
	for v := range h.buckets {
		s.Buckets[v] = atomic.LoadInt64(&h.buckets[v])
	}
	return s
}

// Merge adds o into s. Bucket ranges must match unless one side is empty.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if s.Buckets == nil {
		s.Buckets = make([]int64, len(o.Buckets))
	}
	if len(s.Buckets) != len(o.Buckets) {
		panic(fmt.Sprintf("metrics: merging histograms with %d and %d buckets",
			len(s.Buckets), len(o.Buckets)))
	}
	for v := range o.Buckets {
		s.Buckets[v] += o.Buckets[v]
	}
	s.Overflow += o.Overflow
	s.Count += o.Count
	s.Sum += o.Sum
}

// Jain computes Jain's fairness index over non-negative shares:
// (Σx)² / (n·Σx²), 1.0 meaning perfectly fair. Used by the tie-break
// fairness ablation.
func Jain(shares []float64) float64 {
	if len(shares) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range shares {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(shares)) * sq)
}

// Series is a named sequence of (x, y) points, one figure line.
type Series struct {
	Name   string
	X, Y   []float64
	YErr   []float64 // optional CI half-widths, same length as Y or nil
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// AddErr appends a point with an error bar.
func (s *Series) AddErr(x, y, yerr float64) {
	s.Add(x, y)
	for len(s.YErr) < len(s.Y)-1 {
		s.YErr = append(s.YErr, 0)
	}
	s.YErr = append(s.YErr, yerr)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// SortByX orders points by ascending x.
func (s *Series) SortByX() {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	x := make([]float64, len(s.X))
	y := make([]float64, len(s.Y))
	var e []float64
	if s.YErr != nil {
		e = make([]float64, len(s.YErr))
	}
	for to, from := range idx {
		x[to], y[to] = s.X[from], s.Y[from]
		if e != nil && from < len(s.YErr) {
			e[to] = s.YErr[from]
		}
	}
	s.X, s.Y, s.YErr = x, y, e
}

// String renders the series as "name: (x,y) …" for debugging.
func (s *Series) String() string {
	out := s.Name + ":"
	for i := range s.X {
		out += fmt.Sprintf(" (%g,%g)", s.X[i], s.Y[i])
	}
	return out
}
