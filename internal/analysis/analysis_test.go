package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFBasics(t *testing.T) {
	pmf, err := BinomialPMF(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 1e-12 {
			t.Fatalf("pmf[%d] = %v, want %v", i, pmf[i], want[i])
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if _, err := BinomialPMF(-1, 0.5); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := BinomialPMF(3, 1.5); err == nil {
		t.Fatal("p > 1 accepted")
	}
	z, _ := BinomialPMF(3, 0)
	if z[0] != 1 || z[1] != 0 {
		t.Fatal("p=0 pmf wrong")
	}
	o, _ := BinomialPMF(3, 1)
	if o[3] != 1 || o[0] != 0 {
		t.Fatal("p=1 pmf wrong")
	}
	single, _ := BinomialPMF(0, 0.3)
	if len(single) != 1 || single[0] != 1 {
		t.Fatal("n=0 pmf wrong")
	}
}

// Property: pmf sums to 1 and has mean n·p, for a range of n and p.
func TestBinomialPMFNormalizationAndMean(t *testing.T) {
	prop := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw%200) + 1
		p := float64(pRaw) / 65535
		pmf, err := BinomialPMF(n, p)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pmf {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9 && math.Abs(Mean(pmf)-float64(n)*p) < 1e-6*(1+float64(n))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedOverflowBruteForce(t *testing.T) {
	pmf, _ := BinomialPMF(10, 0.4)
	for c := 0; c <= 10; c++ {
		var want float64
		for x := 0; x <= 10; x++ {
			if x > c {
				want += float64(x-c) * pmf[x]
			}
		}
		if got := ExpectedOverflow(pmf, c); math.Abs(got-want) > 1e-12 {
			t.Fatalf("c=%d: %v vs %v", c, got, want)
		}
	}
	if ExpectedOverflow(pmf, 99) != 0 {
		t.Fatal("overflow beyond support must be 0")
	}
}

func TestFullRangeLossMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for _, load := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		loss, err := FullRangeLoss(8, 16, load)
		if err != nil {
			t.Fatal(err)
		}
		if loss < prev {
			t.Fatalf("loss not monotone at load %v: %v < %v", load, loss, prev)
		}
		if loss < 0 || loss > 1 {
			t.Fatalf("loss %v out of range", loss)
		}
		prev = loss
	}
}

func TestNoConversionLossKnownValue(t *testing.T) {
	// N=2, load=1: X_w ~ Binomial(2, 1/2); E=1, P(X≥1)=3/4 ⇒ loss = 1/4.
	loss, err := NoConversionLoss(2, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-0.25) > 1e-12 {
		t.Fatalf("loss = %v, want 0.25", loss)
	}
}

func TestLossFormulaeValidation(t *testing.T) {
	if _, err := FullRangeLoss(0, 4, 0.5); err == nil {
		t.Fatal("bad shape accepted")
	}
	if _, err := NoConversionLoss(2, 0, 0.5); err == nil {
		t.Fatal("bad shape accepted")
	}
	if _, _, err := LimitedRangeLossBounds(2, 4, 0, 0.5); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, _, err := LimitedRangeLossBounds(2, 4, 5, 0.5); err == nil {
		t.Fatal("d>k accepted")
	}
	if loss, err := FullRangeLoss(4, 8, 0); err != nil || loss != 0 {
		t.Fatal("zero load must be zero loss")
	}
	if loss, err := NoConversionLoss(4, 8, 0); err != nil || loss != 0 {
		t.Fatal("zero load must be zero loss")
	}
}

func TestBoundsOrderingAndCollapse(t *testing.T) {
	for _, load := range []float64{0.2, 0.5, 0.8, 1.0} {
		lo, hi, err := LimitedRangeLossBounds(8, 16, 3, load)
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("bounds inverted at load %v: %v > %v", load, lo, hi)
		}
		lo1, hi1, _ := LimitedRangeLossBounds(8, 16, 1, load)
		if lo1 != hi1 {
			t.Fatalf("d=1 bounds must collapse, got %v %v", lo1, hi1)
		}
		lok, hik, _ := LimitedRangeLossBounds(8, 16, 16, load)
		if lok != hik {
			t.Fatalf("d=k bounds must collapse, got %v %v", lok, hik)
		}
	}
}

func TestErlangB(t *testing.T) {
	// Classic reference values.
	cases := []struct {
		c    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 1.0 / 5},  // a²/2 / (1+a+a²/2) = 0.5/2.5
		{0, 3, 1},        // no servers: everything blocked
		{10, 0, 0},       // no load: nothing blocked
		{5, 2, 0.036697}, // standard table value
	}
	for _, tc := range cases {
		got, err := ErlangB(tc.c, tc.a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-4 {
			t.Fatalf("ErlangB(%d,%v) = %v, want %v", tc.c, tc.a, got, tc.want)
		}
	}
	if _, err := ErlangB(-1, 1); err == nil {
		t.Fatal("negative servers accepted")
	}
	if _, err := ErlangB(1, -1); err == nil {
		t.Fatal("negative load accepted")
	}
}

// Property: Erlang-B decreases in c and increases in a.
func TestErlangBMonotone(t *testing.T) {
	for _, a := range []float64{0.5, 2, 8} {
		prev := 1.1
		for c := 0; c <= 20; c++ {
			b, err := ErlangB(c, a)
			if err != nil {
				t.Fatal(err)
			}
			if b > prev+1e-12 {
				t.Fatalf("ErlangB not decreasing in c at (c=%d, a=%v)", c, a)
			}
			prev = b
		}
	}
	prev := -1.0
	for _, a := range []float64{0, 1, 2, 4, 8, 16} {
		b, _ := ErlangB(8, a)
		if b < prev {
			t.Fatalf("ErlangB not increasing in a at a=%v", a)
		}
		prev = b
	}
}

func TestThroughputFromLoss(t *testing.T) {
	if got := ThroughputFromLoss(0.25, 0.8); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("throughput = %v", got)
	}
}

// TestFullRangeLossMatchesMonteCarloMoment sanity-checks the binomial
// machinery against a direct enumeration at a small size.
func TestFullRangeLossMatchesEnumeration(t *testing.T) {
	// N=2, k=2, load p. X ~ Binomial(4, p/2); loss = E[(X−2)^+]/E[X].
	p := 0.9
	pmf, _ := BinomialPMF(4, p/2)
	want := (1*pmf[3] + 2*pmf[4]) / (4 * p / 2)
	got, err := FullRangeLoss(2, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("loss %v, want %v", got, want)
	}
}
