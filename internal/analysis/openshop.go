package analysis

import "fmt"

// OpenShopMakespanLB returns the trivial open-shop lower bound on the
// makespan of a bulk-transfer demand matrix on an N×N interconnect with k
// channels per fiber: every input fiber can launch at most k units per
// slot and every output fiber can absorb at most k, so no schedule beats
// ⌈max(max row sum, max column sum) / k⌉ slots (the "machine load" and
// "job length" bounds of open-shop scheduling; with full-range conversion
// the bound is tight by Birkhoff–von Neumann style decomposition, which is
// what experiment S14 measures schedulers against).
func OpenShopMakespanLB(demand [][]int, k int) (int, error) {
	n := len(demand)
	if n == 0 {
		return 0, fmt.Errorf("analysis: empty demand matrix")
	}
	if k <= 0 {
		return 0, fmt.Errorf("analysis: non-positive k %d", k)
	}
	maxLoad := 0
	colSums := make([]int, n)
	for i, row := range demand {
		if len(row) != n {
			return 0, fmt.Errorf("analysis: demand row %d has %d entries, want %d", i, len(row), n)
		}
		rowSum := 0
		for j, d := range row {
			if d < 0 {
				return 0, fmt.Errorf("analysis: negative demand %d at (%d,%d)", d, i, j)
			}
			rowSum += d
			colSums[j] += d
		}
		if rowSum > maxLoad {
			maxLoad = rowSum
		}
	}
	for _, c := range colSums {
		if c > maxLoad {
			maxLoad = c
		}
	}
	return (maxLoad + k - 1) / k, nil
}
