package analysis

import "testing"

func TestOpenShopMakespanLB(t *testing.T) {
	cases := []struct {
		demand [][]int
		k      int
		want   int
	}{
		// Row 0 sums to 10, k=2 → 5 slots.
		{[][]int{{4, 6}, {1, 1}}, 2, 5},
		// Column 1 dominates: 6+1 = 7, k=2 → 4.
		{[][]int{{0, 6}, {0, 1}}, 2, 4},
		// Balanced permutation load, k=1 → exactly the per-pair demand.
		{[][]int{{3, 0}, {0, 3}}, 1, 3},
		// Empty demand → 0.
		{[][]int{{0, 0}, {0, 0}}, 4, 0},
	}
	for i, c := range cases {
		got, err := OpenShopMakespanLB(c.demand, c.k)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: LB = %d, want %d", i, got, c.want)
		}
	}
}

func TestOpenShopMakespanLBValidation(t *testing.T) {
	if _, err := OpenShopMakespanLB(nil, 2); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := OpenShopMakespanLB([][]int{{1, 1}}, 2); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := OpenShopMakespanLB([][]int{{1, -1}, {0, 0}}, 2); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := OpenShopMakespanLB([][]int{{1}}, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}
