// Package analysis provides closed-form performance models for the
// synchronous WDM interconnect, in the spirit of the blocking-probability
// analyses the paper cites ([11] Tripathi & Sivarajan, [13] Ramaswami &
// Sasaki). The simulator is cross-checked against these formulas in
// experiment S8.
//
// Model: an N×N interconnect, k wavelengths per fiber, uniform Bernoulli
// traffic — each of the N·k input channels generates a one-slot packet
// with probability p and addresses a uniform output fiber. The number of
// requests reaching one output fiber in a slot is X ~ Binomial(N·k, p/N),
// and per arrival wavelength X_w ~ Binomial(N, p/N).
//
// Two conversion extremes admit exact slotwise loss formulas:
//
//   - Full range (d = k): all requests are interchangeable, so the fiber
//     grants min(X, k) and the loss rate is E[(X−k)^+] / E[X].
//   - No conversion (d = 1): each output wavelength serves only its own
//     arrivals, granting min(X_w, 1); the loss rate is
//     1 − P(X_w ≥ 1)/E[X_w].
//
// Limited range conversion with 1 < d < k is bounded between the two
// (more conversion never hurts a maximum matching), which package sim's
// S8 experiment verifies against simulation.
package analysis

import (
	"fmt"
	"math"
)

// BinomialPMF returns the probability mass function of Binomial(n, p):
// out[i] = P(X = i) for i in [0, n]. Computed in log space for stability
// at large n.
func BinomialPMF(n int, p float64) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("analysis: negative n %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("analysis: probability %v outside [0,1]", p)
	}
	out := make([]float64, n+1)
	switch p {
	case 0:
		out[0] = 1
		return out, nil
	case 1:
		out[n] = 1
		return out, nil
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	lgN, _ := math.Lgamma(float64(n + 1))
	for i := 0; i <= n; i++ {
		lgI, _ := math.Lgamma(float64(i + 1))
		lgNI, _ := math.Lgamma(float64(n - i + 1))
		out[i] = math.Exp(lgN - lgI - lgNI + float64(i)*lp + float64(n-i)*lq)
	}
	return out, nil
}

// ExpectedOverflow returns E[(X−c)^+] for X distributed by pmf.
func ExpectedOverflow(pmf []float64, c int) float64 {
	var e float64
	for x := c + 1; x < len(pmf); x++ {
		e += float64(x-c) * pmf[x]
	}
	return e
}

// Mean returns E[X] for X distributed by pmf.
func Mean(pmf []float64) float64 {
	var m float64
	for x, p := range pmf {
		m += float64(x) * p
	}
	return m
}

// FullRangeLoss returns the exact slotwise loss rate of one output fiber
// under full range conversion: E[(X−k)^+]/E[X] with X ~ Binomial(N·k, p/N).
// Zero offered load returns zero loss.
func FullRangeLoss(n, k int, load float64) (float64, error) {
	if n <= 0 || k <= 0 {
		return 0, fmt.Errorf("analysis: invalid shape N=%d k=%d", n, k)
	}
	if load == 0 {
		return 0, nil
	}
	pmf, err := BinomialPMF(n*k, load/float64(n))
	if err != nil {
		return 0, err
	}
	mean := Mean(pmf)
	if mean == 0 {
		return 0, nil
	}
	return ExpectedOverflow(pmf, k) / mean, nil
}

// NoConversionLoss returns the exact slotwise loss rate under d = 1 (no
// conversion): per output wavelength, arrivals X_w ~ Binomial(N, p/N)
// compete for one channel, so the loss is 1 − P(X_w ≥ 1)/E[X_w].
func NoConversionLoss(n, k int, load float64) (float64, error) {
	if n <= 0 || k <= 0 {
		return 0, fmt.Errorf("analysis: invalid shape N=%d k=%d", n, k)
	}
	if load == 0 {
		return 0, nil
	}
	p := load / float64(n)
	mean := float64(n) * p
	if mean == 0 {
		return 0, nil
	}
	pNonEmpty := 1 - math.Pow(1-p, float64(n))
	return 1 - pNonEmpty/mean, nil
}

// LimitedRangeLossBounds brackets the loss of limited range conversion
// with degree d: adding conversion reach can only grow maximum matchings,
// so full range is the lower bound and no conversion the upper bound. For
// d = 1 and d = k the bounds collapse to the exact values.
func LimitedRangeLossBounds(n, k, d int, load float64) (lo, hi float64, err error) {
	if d < 1 || d > k {
		return 0, 0, fmt.Errorf("analysis: degree %d outside [1,%d]", d, k)
	}
	lo, err = FullRangeLoss(n, k, load)
	if err != nil {
		return 0, 0, err
	}
	hi, err = NoConversionLoss(n, k, load)
	if err != nil {
		return 0, 0, err
	}
	switch d {
	case 1:
		lo = hi
	case k:
		hi = lo
	}
	return lo, hi, nil
}

// ErlangB returns the Erlang-B blocking probability of an M/M/c/c system
// offered a Erlangs, via the standard numerically stable recursion
// B(0) = 1, B(j) = a·B(j−1) / (j + a·B(j−1)).
//
// In the asynchronous (wavelength routing) mode of the interconnect this
// is exact for two conversion extremes at one output fiber: full range
// conversion is M/M/k/k offered A = λ/µ, and no conversion is k
// independent M/M/1/1 systems each offered A/k (experiment S10).
func ErlangB(c int, a float64) (float64, error) {
	if c < 0 {
		return 0, fmt.Errorf("analysis: negative server count %d", c)
	}
	if a < 0 {
		return 0, fmt.Errorf("analysis: negative offered load %v", a)
	}
	b := 1.0
	for j := 1; j <= c; j++ {
		b = a * b / (float64(j) + a*b)
	}
	return b, nil
}

// ThroughputFromLoss converts a loss rate to normalized throughput
// (granted packets per output channel per slot) at the given offered
// load: each channel offers `load` packets per slot on average.
func ThroughputFromLoss(loss, load float64) float64 {
	return load * (1 - loss)
}
