package core

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// Break and First Available (paper Table 3) and the Section IV-C single
// break approximation, for circular symmetrical conversion.
//
// The request graph under circular conversion is not convex: adjacency sets
// wrap around the wavelength ring. The paper's remedy is to "break" the
// graph at an edge a_i→b_u — removing both endpoints and every edge
// crossing a_i→b_u (Definitions 1, 2) — after which the reduced graph,
// reordered to start at a_{i+1} and b_{u+1}, is convex (Lemma 2) and First
// Available applies. If the breaking edge lies in some no-crossing-edge
// maximum matching, the reduced maximum matching plus the breaking edge is
// a maximum matching of the whole graph (Lemma 3), and at least one of the
// d edges of any left vertex qualifies (Lemma 4). Trying all d candidate
// breaking edges therefore yields an exact O(dk) scheduler.
//
// This implementation works on per-wavelength request counts. The chosen
// a_i is the first request of the lowest wavelength that has requests and
// at least one unoccupied channel in its conversion window; with that
// choice the shifted left order is simply ring order starting at W(i), and
// every same-wavelength sibling of a_i is on its plus (j > i) side. The
// Section IV-A closed-form adjacency intervals of the reduced graph are
// computed directly — the graph is never materialized — so one reduced
// First Available sweep costs O(k) and the whole slot O(dk), independent of
// the interconnect size N, exactly as Theorem 2 claims.

// ringMod returns x mod k in [0, k).
func ringMod(x, k int) int {
	m := x % k
	if m < 0 {
		m += k
	}
	return m
}

// ringRep returns the smallest integer ≥ lo congruent to x mod k.
func ringRep(x, lo, k int) int {
	return lo + ringMod(x-lo, k)
}

// breaker holds the scratch shared by the exact and approximate breaking
// schedulers.
type breaker struct {
	conv wavelength.Conversion
	cur  *Result
	mask *masker
	// Bucket arrays for the reduced convex graph, in shifted left order.
	// bBegin/bEnd are reduced right positions; bCount the number of
	// requests in the bucket; bWave the bucket's input wavelength.
	bBegin, bEnd, bCount, bWave []int
}

func newBreaker(conv wavelength.Conversion) (*breaker, error) {
	if conv.Kind() != wavelength.Circular {
		return nil, fmt.Errorf("core: breaking schedulers require circular conversion, have %v", conv.Kind())
	}
	k := conv.K()
	return &breaker{
		conv:   conv,
		cur:    NewResult(k),
		mask:   newMasker(k),
		bBegin: make([]int, 0, k+1),
		bEnd:   make([]int, 0, k+1),
		bCount: make([]int, 0, k+1),
		bWave:  make([]int, 0, k+1),
	}, nil
}

// firstMatchable returns the lowest wavelength with pending requests and at
// least one available channel in its conversion window, or −1 if every
// pending request is unmatchable. The window walk is open-coded ring
// arithmetic (the breaker is circular by construction) rather than an
// Interval.Each closure: this runs per slot on the scheduling hot path,
// which must stay allocation-free.
func (br *breaker) firstMatchable(count []int, occupied []bool) int {
	k := br.conv.K()
	e, d := br.conv.MinusReach(), br.conv.Degree()
	if d > k {
		d = k
	}
	for w := 0; w < k; w++ {
		if count[w] == 0 {
			continue
		}
		if occupied == nil {
			return w
		}
		b := ringMod(w-e, k)
		for i := 0; i < d; i++ {
			if !occupied[b] {
				return w
			}
			b++
			if b == k {
				b = 0
			}
		}
	}
	return -1
}

// scheduleBreakAt breaks at edge (first request of w0) → b_u, runs First
// Available on the reduced graph, and writes the combined assignment
// (breaking edge included) into br.cur. u must be an available channel in
// w0's window.
func (br *breaker) scheduleBreakAt(count []int, occupied []bool, w0, u int) {
	conv := br.conv
	k := conv.K()
	e, f := conv.MinusReach(), conv.PlusReach()
	ur := ringRep(u, w0-e, k)

	// Build the wavelength buckets of the reduced graph in shifted left
	// order: the remaining requests on w0 first (all on the j > i side of
	// a_i), then the other wavelengths in ring order from w0+1. Each
	// bucket's reduced adjacency interval comes from the Section IV-A
	// closed forms; empty intervals are dropped.
	br.bBegin = br.bBegin[:0]
	br.bEnd = br.bEnd[:0]
	br.bCount = br.bCount[:0]
	br.bWave = br.bWave[:0]
	push := func(w, c, lo, hi int) {
		if hi < lo || c == 0 {
			return
		}
		br.bBegin = append(br.bBegin, ringMod(lo-u-1, k))
		br.bEnd = append(br.bEnd, ringMod(hi-u-1, k))
		br.bCount = append(br.bCount, c)
		br.bWave = append(br.bWave, w)
	}
	push(w0, count[w0]-1, ur+1, w0+f)
	for off := 1; off < k; off++ {
		w := (w0 + off) % k
		if count[w] == 0 {
			continue
		}
		switch {
		case wavelength.InRing(w, ur-f, w0-1, k):
			wr := ringRep(w, ur-f, k)
			push(w, count[w], wr-e, ur-1)
		case wavelength.InRing(w, w0+1, ur+e, k):
			wr := ringRep(w, w0+1, k)
			push(w, count[w], ur+1, wr+f)
		default:
			push(w, count[w], w-e, w+f)
		}
	}

	// First Available over the reduced right order b_{u+1}, …, b_{u−1}.
	// Bucket BEGIN/END values are monotone (Lemma 2), so a sliding window
	// [head, tail) of open buckets suffices: total cost O(k).
	cur := br.cur
	cur.Reset()
	head, tail := 0, 0
	n := len(br.bBegin)
	for p := 0; p < k-1; p++ {
		b := (u + 1 + p) % k
		if occupied != nil && occupied[b] {
			continue
		}
		for tail < n && br.bBegin[tail] <= p {
			tail++
		}
		for head < tail && (br.bCount[head] == 0 || br.bEnd[head] < p) {
			head++
		}
		if head == tail {
			continue
		}
		w := br.bWave[head]
		br.bCount[head]--
		cur.ByOutput[b] = w
		cur.Granted[w]++
		cur.Size++
	}

	// Append the breaking edge a_i→b_u.
	cur.ByOutput[u] = w0
	cur.Granted[w0]++
	cur.Size++
	cur.BreakChannel = u
}

// BreakFirstAvailable is the exact O(dk) scheduler of Table 3 for circular
// symmetrical conversion: try every available breaking edge incident to
// one left vertex and keep the largest matching.
type BreakFirstAvailable struct {
	br   *breaker
	best *Result
}

// NewBreakFirstAvailable builds the scheduler; conv must be circular.
func NewBreakFirstAvailable(conv wavelength.Conversion) (*BreakFirstAvailable, error) {
	br, err := newBreaker(conv)
	if err != nil {
		return nil, err
	}
	return &BreakFirstAvailable{br: br, best: NewResult(conv.K())}, nil
}

// Name implements Scheduler.
func (s *BreakFirstAvailable) Name() string { return "break-first-available" }

// Conversion implements Scheduler.
func (s *BreakFirstAvailable) Conversion() wavelength.Conversion { return s.br.conv }

// Schedule implements Scheduler.
func (s *BreakFirstAvailable) Schedule(count []int, occupied []bool, res *Result) {
	conv := s.br.conv
	checkInput(conv, count, occupied, res)
	res.Reset()
	if conv.IsFullRange() {
		// d = k: every request reaches every channel; scheduling is the
		// trivial full range case (Section I).
		fullRangeInto(conv, count, occupied, res)
		return
	}
	w0 := s.br.firstMatchable(count, occupied)
	if w0 < 0 {
		return
	}
	// Upper bound on any matching: min(requests, available channels);
	// stop trying breaking edges once reached.
	avail := conv.K()
	if occupied != nil {
		avail = 0
		for _, o := range occupied {
			if !o {
				avail++
			}
		}
	}
	bound := TotalRequests(count)
	if avail < bound {
		bound = avail
	}
	// Candidate breaking edges in window order from the minus end
	// (open-coded ring walk — no closure, the hot path stays
	// allocation-free).
	first := true
	e, d := conv.MinusReach(), conv.Degree()
	u := ringMod(w0-e, conv.K())
	for i := 0; i < d; i++ {
		if occupied == nil || !occupied[u] {
			s.br.scheduleBreakAt(count, occupied, w0, u)
			if first || s.br.cur.Size > s.best.Size {
				s.best.CopyFrom(s.br.cur)
				first = false
			}
			if s.best.Size >= bound {
				break
			}
		}
		u++
		if u == conv.K() {
			u = 0
		}
	}
	res.CopyFrom(s.best)
}

// ScheduleMasked implements Scheduler: the degraded instance reduces to a
// §V occupancy instance over the healthy channels (converter-failed
// channels pre-granted straight through), on which the breaking argument
// of Theorem 2 applies unchanged.
func (s *BreakFirstAvailable) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.br.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.br.mask.finish(res)
}

var _ Scheduler = (*BreakFirstAvailable)(nil)

// DeltaBreak is the Section IV-C approximation: break only at the δ-th
// edge of the chosen left vertex (counting 1-based from the minus end of
// its conversion window) and run First Available once, O(k) total. By
// Theorem 3 the result is within max{δ−1, d−δ} of a maximum matching; the
// "shortest edge" choice δ = (d+1)/2 minimizes the bound to (d−1)/2
// (Corollary 1).
//
// When the δ-th channel is occupied, the scheduler breaks at the available
// window channel closest to position δ instead (the paper's model has no
// occupancy; this keeps the spirit of the shortest-edge choice).
type DeltaBreak struct {
	br    *breaker
	delta int
}

// NewDeltaBreak builds the approximation with breaking position delta in
// [1, d]; conv must be circular.
func NewDeltaBreak(conv wavelength.Conversion, delta int) (*DeltaBreak, error) {
	br, err := newBreaker(conv)
	if err != nil {
		return nil, err
	}
	if delta < 1 || delta > conv.Degree() {
		return nil, fmt.Errorf("core: delta %d outside [1, d=%d]", delta, conv.Degree())
	}
	return &DeltaBreak{br: br, delta: delta}, nil
}

// NewShortestEdge builds the Corollary 1 approximation, δ = (d+1)/2.
func NewShortestEdge(conv wavelength.Conversion) (*DeltaBreak, error) {
	return NewDeltaBreak(conv, (conv.Degree()+1)/2)
}

// Name implements Scheduler.
func (s *DeltaBreak) Name() string { return fmt.Sprintf("delta-break(%d)", s.delta) }

// Delta reports the breaking position δ.
func (s *DeltaBreak) Delta() int { return s.delta }

// Conversion implements Scheduler.
func (s *DeltaBreak) Conversion() wavelength.Conversion { return s.br.conv }

// Schedule implements Scheduler.
func (s *DeltaBreak) Schedule(count []int, occupied []bool, res *Result) {
	conv := s.br.conv
	checkInput(conv, count, occupied, res)
	res.Reset()
	if conv.IsFullRange() {
		fullRangeInto(conv, count, occupied, res)
		return
	}
	w0 := s.br.firstMatchable(count, occupied)
	if w0 < 0 {
		return
	}
	k := conv.K()
	e := conv.MinusReach()
	// δ-th channel of w0's window, counted from the minus end.
	u := ringMod(w0-e+s.delta-1, k)
	if occupied != nil && occupied[u] {
		u = nearestAvailable(conv, occupied, w0, s.delta)
	}
	s.br.scheduleBreakAt(count, occupied, w0, u)
	res.CopyFrom(s.br.cur)
}

// ScheduleMasked implements Scheduler; the Theorem 3 gap bound holds
// against the optimum of the degraded graph.
func (s *DeltaBreak) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.br.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.br.mask.finish(res)
}

// MultiBreak generalizes the Section IV-C trade-off: it tries a chosen
// subset of the d breaking positions and keeps the best reduced matching,
// interpolating between DeltaBreak (one position, O(k)) and the exact
// BreakFirstAvailable (all d positions, O(dk)). By Theorem 3 applied to
// each tried position, the gap to optimal is at most
// min over tried δ of max{δ−1, d−δ}.
type MultiBreak struct {
	br     *breaker
	deltas []int
	best   *Result
}

// NewMultiBreak builds the scheduler with the given breaking positions
// (1-based window positions, distinct, each in [1, d]); conv must be
// circular.
func NewMultiBreak(conv wavelength.Conversion, deltas []int) (*MultiBreak, error) {
	br, err := newBreaker(conv)
	if err != nil {
		return nil, err
	}
	if len(deltas) == 0 {
		return nil, fmt.Errorf("core: MultiBreak needs at least one breaking position")
	}
	seen := make(map[int]bool, len(deltas))
	for _, delta := range deltas {
		if delta < 1 || delta > conv.Degree() {
			return nil, fmt.Errorf("core: delta %d outside [1, d=%d]", delta, conv.Degree())
		}
		if seen[delta] {
			return nil, fmt.Errorf("core: duplicate delta %d", delta)
		}
		seen[delta] = true
	}
	return &MultiBreak{
		br:     br,
		deltas: append([]int(nil), deltas...),
		best:   NewResult(conv.K()),
	}, nil
}

// Name implements Scheduler.
func (s *MultiBreak) Name() string { return fmt.Sprintf("multi-break(%d)", len(s.deltas)) }

// Bound returns the Theorem 3 guarantee: the smallest max{δ−1, d−δ} over
// the tried positions.
func (s *MultiBreak) Bound() int {
	d := s.br.conv.Degree()
	best := d
	for _, delta := range s.deltas {
		b := delta - 1
		if d-delta > b {
			b = d - delta
		}
		if b < best {
			best = b
		}
	}
	return best
}

// Conversion implements Scheduler.
func (s *MultiBreak) Conversion() wavelength.Conversion { return s.br.conv }

// Schedule implements Scheduler. Breaking positions whose channel is
// occupied are skipped; if every chosen position is occupied, the
// available window channel nearest the first position is used so the
// matchable vertex is never wasted.
func (s *MultiBreak) Schedule(count []int, occupied []bool, res *Result) {
	conv := s.br.conv
	checkInput(conv, count, occupied, res)
	res.Reset()
	if conv.IsFullRange() {
		fullRangeInto(conv, count, occupied, res)
		return
	}
	w0 := s.br.firstMatchable(count, occupied)
	if w0 < 0 {
		return
	}
	k := conv.K()
	e := conv.MinusReach()
	first := true
	for _, delta := range s.deltas {
		u := ringMod(w0-e+delta-1, k)
		if occupied != nil && occupied[u] {
			continue
		}
		s.br.scheduleBreakAt(count, occupied, w0, u)
		if first || s.br.cur.Size > s.best.Size {
			s.best.CopyFrom(s.br.cur)
			first = false
		}
	}
	if first {
		// All chosen positions occupied; firstMatchable guarantees some
		// window channel is free.
		u := nearestAvailable(conv, occupied, w0, s.deltas[0])
		s.br.scheduleBreakAt(count, occupied, w0, u)
		s.best.CopyFrom(s.br.cur)
	}
	res.CopyFrom(s.best)
}

// ScheduleMasked implements Scheduler; the Bound guarantee holds against
// the optimum of the degraded graph.
func (s *MultiBreak) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.br.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.br.mask.finish(res)
}

var _ Scheduler = (*MultiBreak)(nil)

// nearestAvailable returns the available channel in w0's window whose
// window position is closest to delta, preferring the minus side on ties.
// The caller guarantees at least one window channel is available.
func nearestAvailable(conv wavelength.Conversion, occupied []bool, w0, delta int) int {
	k := conv.K()
	e, d := conv.MinusReach(), conv.Degree()
	if d > k {
		d = k
	}
	bestU, bestDist := -1, int(^uint(0)>>1)
	b := ringMod(w0-e, k)
	for pos := 1; pos <= d; pos++ {
		if !occupied[b] {
			dist := pos - delta
			if dist < 0 {
				dist = -dist
			}
			if dist < bestDist {
				bestDist, bestU = dist, b
			}
		}
		b++
		if b == k {
			b = 0
		}
	}
	return bestU
}

var _ Scheduler = (*DeltaBreak)(nil)
