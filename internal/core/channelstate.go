package core

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// Per-channel fault state and masked scheduling.
//
// The paper assumes every output channel carries a healthy limited-range
// converter. Real hardware fails in two characteristic ways:
//
//   - A failed converter leaves the channel's laser path intact but removes
//     its ability to shift wavelengths: output channel b can then carry only
//     requests that arrived on exactly λb (effective conversion degree 1 on
//     that channel).
//   - A dark channel (dead laser, cut drop fiber, darkened port) carries
//     nothing at all.
//
// Both degradations reduce to the machinery the paper already has. A dark
// channel is exactly a §V occupied channel: it drops off the right side of
// the request graph. A converter-failed channel b keeps a single edge,
// λb→b, and an exchange argument shows greedily pre-granting that edge is
// optimal: in any maximum matching of the degraded graph, either some λb
// request is unmatched while b is free (then adding λb→b enlarges the
// matching — contradiction), or every λb request is matched; moving one of
// them from its current channel onto b preserves the matching size, and
// the channel it vacates is necessarily healthy (a converter-failed channel
// other than b cannot host a λb request), so previously fixed pre-grants
// are never disturbed. After pre-granting, the residual problem is plain
// §V occupancy over the healthy channels, where FirstAvailable and
// Break-and-First-Available are exact (Theorems 1–2 on the reduced convex
// graph). ScheduleMasked therefore stays exact for every exact scheduler
// and keeps the Theorem 3 bound for the single-break approximations.

// ChannelState is the fault state of one output channel.
type ChannelState uint8

const (
	// Healthy is a fully working channel: converter and laser path up.
	Healthy ChannelState = iota
	// ConverterFailed marks a channel whose wavelength converter is down:
	// the channel can carry only requests arriving on its own wavelength
	// (λb for channel b), i.e. it degrades to fixed-wavelength operation.
	ConverterFailed
	// Dark marks a channel that cannot carry anything: it is removed from
	// the request graph entirely, like a §V occupied channel.
	Dark
)

// String returns the state name used in tables and flags.
func (s ChannelState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case ConverterFailed:
		return "converter-failed"
	case Dark:
		return "dark"
	default:
		return fmt.Sprintf("ChannelState(%d)", uint8(s))
	}
}

// ChannelMask is the per-channel fault state of one output fiber, indexed
// by output channel. A nil mask means every channel is healthy.
type ChannelMask []ChannelState

// AllHealthy reports whether the mask degrades nothing (nil counts as
// all-healthy).
func (m ChannelMask) AllHealthy() bool {
	for _, s := range m {
		if s != Healthy {
			return false
		}
	}
	return true
}

// HealthyCount returns the number of healthy channels in the mask.
func (m ChannelMask) HealthyCount() int {
	n := 0
	for _, s := range m {
		if s == Healthy {
			n++
		}
	}
	return n
}

// Reset marks every channel healthy.
func (m ChannelMask) Reset() {
	for b := range m {
		m[b] = Healthy
	}
}

// checkMask panics on a malformed mask: wrong length or unknown state
// values are caller bugs, like the shape errors checkInput catches.
func checkMask(conv wavelength.Conversion, mask ChannelMask) {
	if mask == nil {
		return
	}
	if len(mask) != conv.K() {
		panic(fmt.Sprintf("core: mask length %d != k %d", len(mask), conv.K()))
	}
	for b, s := range mask {
		if s > Dark {
			panic(fmt.Sprintf("core: invalid channel state %d at channel %d", s, b))
		}
	}
}

// masker is the shared scratch behind every scheduler's ScheduleMasked: it
// projects a degraded instance onto the maskless contract by pre-granting
// converter-failed channels (exact, see the package comment above) and
// folding every non-healthy channel into the §V occupancy overlay.
type masker struct {
	residual []int
	occ      []bool
	pre      []int
}

func newMasker(k int) *masker {
	return &masker{
		residual: make([]int, k),
		occ:      make([]bool, k),
		pre:      make([]int, 0, k),
	}
}

// apply returns the (count, occupied) pair the inner scheduler should run
// on. With a nil or all-healthy mask the inputs pass through untouched, so
// the masked path is bit-for-bit identical to the maskless one; otherwise
// converter-failed channels with a pending same-wavelength request are
// recorded as pre-grants (consumed from the residual counts) and every
// degraded channel joins the occupancy overlay.
func (m *masker) apply(count []int, occupied []bool, mask ChannelMask) ([]int, []bool) {
	m.pre = m.pre[:0]
	if mask.AllHealthy() {
		return count, occupied
	}
	k := len(m.residual)
	if len(mask) != k {
		panic(fmt.Sprintf("core: mask length %d != k %d", len(mask), k))
	}
	if len(count) != k {
		panic(fmt.Sprintf("core: count length %d != k %d", len(count), k))
	}
	if occupied != nil && len(occupied) != k {
		panic(fmt.Sprintf("core: occupied length %d != k %d", len(occupied), k))
	}
	copy(m.residual, count)
	for b, st := range mask {
		held := occupied != nil && occupied[b]
		m.occ[b] = held || st != Healthy
		if st == ConverterFailed && !held && m.residual[b] > 0 {
			m.residual[b]--
			m.pre = append(m.pre, b)
		}
	}
	return m.residual, m.occ
}

// finish appends the pre-granted straight-through connections (λb→b on
// each served converter-failed channel) to the inner scheduler's result.
func (m *masker) finish(res *Result) {
	for _, b := range m.pre {
		res.ByOutput[b] = b
		res.Granted[b]++
		res.Size++
	}
}

// ValidateMasked checks that res is a feasible assignment for the request
// vector, occupancy and fault mask: Validate's feasibility rules plus no
// grant on a dark channel and only straight-through (λb→b) grants on
// converter-failed channels.
func ValidateMasked(conv wavelength.Conversion, count []int, occupied []bool, mask ChannelMask, res *Result) error {
	if err := Validate(conv, count, occupied, res); err != nil {
		return err
	}
	if mask == nil {
		return nil
	}
	if len(mask) != conv.K() {
		return fmt.Errorf("core: mask length %d != k %d", len(mask), conv.K())
	}
	for b, w := range res.ByOutput {
		if w == Unassigned {
			continue
		}
		switch mask[b] {
		case Dark:
			return fmt.Errorf("core: dark channel %d assigned wavelength %d", b, w)
		case ConverterFailed:
			if w != b {
				return fmt.Errorf("core: converter-failed channel %d assigned wavelength %d (needs conversion)", b, w)
			}
		}
	}
	return nil
}
