package core

import (
	"math/rand"
	"testing"

	"wdmsched/internal/wavelength"
)

// randomMaskedInstance draws a request vector, occupancy and fault mask for k
// wavelengths. Roughly a third of the draws have no occupancy and a third
// no faults, so the plain paths stay covered.
func randomMaskedInstance(rng *rand.Rand, k int) (vec []int, occ []bool, mask ChannelMask) {
	vec = make([]int, k)
	density := []float64{0.1, 0.5, 0.9}[rng.Intn(3)]
	for w := 0; w < k; w++ {
		if rng.Float64() < density {
			vec[w] = rng.Intn(4) + 1
		}
	}
	if rng.Intn(3) > 0 {
		occ = make([]bool, k)
		for b := 0; b < k; b++ {
			occ[b] = rng.Float64() < 0.3
		}
	}
	if rng.Intn(3) > 0 {
		mask = make(ChannelMask, k)
		for b := 0; b < k; b++ {
			if rng.Float64() < 0.15 {
				mask[b] = ChannelState(rng.Intn(2) + 1)
			}
		}
	}
	return vec, occ, mask
}

// TestFastKernelsWordBoundaries cross-checks the word-parallel kernels
// against the scalar schedulers — byte-identical Results — at k values
// around the uint64 word boundaries, where tail-masking bugs live. The
// in-package fuzzers cover k ≤ 16; this covers the large-k regime the
// kernels exist for. Every eighth trial also checks the matching size
// against the Hopcroft–Karp oracle.
func TestFastKernelsWordBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(20030422))
	for _, k := range []int{5, 63, 64, 65, 127, 128, 129} {
		for trial := 0; trial < 40; trial++ {
			e := rng.Intn(k)
			f := rng.Intn(k - e)
			vec, occ, mask := randomMaskedInstance(rng, k)
			for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
				conv, err := wavelength.New(kind, k, e, f)
				if err != nil {
					t.Fatal(err)
				}
				scalar, err := NewExact(conv)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := NewFastExact(conv)
				if err != nil {
					t.Fatal(err)
				}
				sres, fres := NewResult(k), NewResult(k)
				scalar.ScheduleMasked(vec, occ, mask, sres)
				fast.ScheduleMasked(vec, occ, mask, fres)
				if err := ValidateMasked(conv, vec, occ, mask, fres); err != nil {
					t.Fatalf("%v trial %d: %s infeasible: %v", conv, trial, fast.Name(), err)
				}
				if !resultsIdentical(fres, sres) {
					t.Fatalf("%v trial %d vec=%v occ=%v mask=%v: %s diverged from %s (fast size=%d scalar size=%d)",
						conv, trial, vec, occ, mask, fast.Name(), scalar.Name(), fres.Size, sres.Size)
				}
				if trial%8 == 0 {
					want := NewResult(k)
					NewBaseline(conv).ScheduleMasked(vec, occ, mask, want)
					if fres.Size != want.Size {
						t.Fatalf("%v trial %d: %s=%d HK=%d", conv, trial, fast.Name(), fres.Size, want.Size)
					}
				}
			}
		}
	}
}

// TestFastKernelsPlainScheduleIdentical exercises the maskless Schedule
// entry point directly (the interconnect hot path) at word-boundary sizes.
func TestFastKernelsPlainScheduleIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{63, 64, 65, 128, 129} {
		for trial := 0; trial < 30; trial++ {
			e := rng.Intn(min(k, 32))
			f := rng.Intn(min(k-e, 32))
			vec, occ, _ := randomMaskedInstance(rng, k)
			for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
				conv, err := wavelength.New(kind, k, e, f)
				if err != nil {
					t.Fatal(err)
				}
				scalar, _ := NewExact(conv)
				fast, _ := NewFastExact(conv)
				sres, fres := NewResult(k), NewResult(k)
				scalar.Schedule(vec, occ, sres)
				fast.Schedule(vec, occ, fres)
				if !resultsIdentical(fres, sres) {
					t.Fatalf("%v trial %d vec=%v occ=%v: fast diverged (size %d vs %d)",
						conv, trial, vec, occ, fres.Size, sres.Size)
				}
			}
		}
	}
}

// TestFastKernelsZeroAlloc pins the kernels' steady-state Schedule and
// ScheduleMasked to zero allocations per slot, like the scalar schedulers.
func TestFastKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
		k := 128
		conv, err := wavelength.New(kind, k, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewFastExact(conv)
		if err != nil {
			t.Fatal(err)
		}
		vec, occ, mask := randomMaskedInstance(rng, k)
		res := NewResult(k)
		if allocs := testing.AllocsPerRun(50, func() {
			fast.Schedule(vec, occ, res)
		}); allocs != 0 {
			t.Errorf("%s Schedule: %v allocs/op, want 0", fast.Name(), allocs)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			fast.ScheduleMasked(vec, occ, mask, res)
		}); allocs != 0 {
			t.Errorf("%s ScheduleMasked: %v allocs/op, want 0", fast.Name(), allocs)
		}
	}
}

// TestNewByNameFastKernels covers the constructor wiring used by the
// interconnect, cluster node and command-line flags.
func TestNewByNameFastKernels(t *testing.T) {
	circ := wavelength.MustNew(wavelength.Circular, 16, 2, 1)
	nonc := wavelength.MustNew(wavelength.NonCircular, 16, 2, 1)
	full := wavelength.MustNew(wavelength.Full, 16, 0, 0)
	for _, tc := range []struct {
		name string
		conv wavelength.Conversion
		want string
	}{
		{"fast", circ, "fast-break-first-available"},
		{"fast", nonc, "fast-first-available"},
		{"fast", full, "full-range"},
		{"fast-first-available", nonc, "fast-first-available"},
		{"fast-break-first-available", circ, "fast-break-first-available"},
	} {
		s, err := NewByName(tc.name, tc.conv)
		if err != nil {
			t.Fatalf("NewByName(%q, %v): %v", tc.name, tc.conv, err)
		}
		if s.Name() != tc.want {
			t.Fatalf("NewByName(%q, %v).Name() = %q, want %q", tc.name, tc.conv, s.Name(), tc.want)
		}
	}
	if _, err := NewByName("fast-first-available", circ); err == nil {
		t.Fatal("fast-first-available accepted circular conversion")
	}
	if _, err := NewByName("fast-break-first-available", nonc); err == nil {
		t.Fatal("fast-break-first-available accepted non-circular conversion")
	}
}
