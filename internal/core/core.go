// Package core implements the paper's contribution: the distributed
// scheduling algorithms that resolve output contention in a wavelength
// convertible WDM optical interconnect (Zhang & Yang, IPDPS 2003).
//
// One scheduler instance serves one output fiber. Its input each time slot
// is the request vector — how many connection requests arrived on each
// input wavelength destined to this fiber — plus optionally a mask of
// output channels still occupied by connections from earlier slots
// (Section V). Its output is a wavelength assignment that realizes a
// maximum matching of the request graph: the largest contention-free subset
// of requests (Section II-B).
//
// Schedulers:
//
//   - FirstAvailable — Table 2; exact for non-circular symmetrical
//     conversion, O(k) per slot.
//   - BreakFirstAvailable — Table 3; exact for circular symmetrical
//     conversion, O(dk) per slot.
//   - DeltaBreak — Section IV-C; single-break approximation for circular
//     conversion, O(k) per slot, within max{δ−1, d−δ} of optimal
//     (Theorem 3). With δ = (d+1)/2 (the "shortest edge") the gap is at
//     most (d−1)/2 (Corollary 1).
//   - FullRange — the trivial exact scheduler for full range conversion.
//   - Baseline — Hopcroft–Karp on the expanded request graph, the paper's
//     general-case comparator.
//
// A scheduler carries preallocated scratch sized to its conversion model
// and is NOT safe for concurrent use; the intended deployment (and the
// paper's "distributed" claim) is one scheduler per output fiber, which
// package interconnect realizes with one goroutine per fiber.
package core

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// Unassigned marks an output channel with no granted request in a Result.
const Unassigned = -1

// Result is one slot's scheduling decision for one output fiber.
type Result struct {
	// ByOutput[b] is the input wavelength granted output channel b, or
	// Unassigned. Occupied channels are always Unassigned.
	ByOutput []int
	// Granted[w] counts the requests granted per input wavelength; the
	// fairness layer expands these counts to concrete requests.
	Granted []int
	// Size is the matching cardinality: number of granted requests.
	Size int
	// BreakChannel is the output channel whose assignment the
	// break-first-available family broke to admit one more request
	// (paper §IV), or Unassigned when the slot needed no break. Only
	// the BFA schedulers set it; all others leave it Unassigned.
	BreakChannel int
}

// NewResult allocates an empty Result for k wavelengths (all channels
// Unassigned).
func NewResult(k int) *Result {
	r := &Result{ByOutput: make([]int, k), Granted: make([]int, k)}
	r.Reset()
	return r
}

// Reset clears the result for reuse.
func (r *Result) Reset() {
	for i := range r.ByOutput {
		r.ByOutput[i] = Unassigned
		r.Granted[i] = 0
	}
	r.Size = 0
	r.BreakChannel = Unassigned
}

// CopyFrom copies src into r. Both must have the same k.
func (r *Result) CopyFrom(src *Result) {
	copy(r.ByOutput, src.ByOutput)
	copy(r.Granted, src.Granted)
	r.Size = src.Size
	r.BreakChannel = src.BreakChannel
}

// Scheduler is one output fiber's contention resolver. Schedule reads the
// request vector count (len k) and the occupancy mask occupied (len k, or
// nil meaning all channels available) and writes the decision into res,
// which must have been created with NewResult(k). Implementations reuse
// internal scratch and are not safe for concurrent use.
//
// ScheduleMasked additionally honors a per-channel fault mask (len k, or
// nil meaning all channels healthy): dark channels are removed from the
// request graph and converter-failed channels carry only their own
// wavelength (see ChannelState). With a nil or all-healthy mask it is
// bit-for-bit identical to Schedule; with faults the exact schedulers stay
// exact on the degraded graph (see the exchange argument in
// channelstate.go) and the single-break approximations keep their
// Theorem 3 bound.
type Scheduler interface {
	Name() string
	Conversion() wavelength.Conversion
	Schedule(count []int, occupied []bool, res *Result)
	ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result)
}

// checkInput panics on malformed scheduler input: scheduling runs per time
// slot in a hot loop and malformed shapes are caller bugs, not runtime
// conditions.
func checkInput(conv wavelength.Conversion, count []int, occupied []bool, res *Result) {
	k := conv.K()
	if len(count) != k {
		panic(fmt.Sprintf("core: count length %d != k %d", len(count), k))
	}
	if occupied != nil && len(occupied) != k {
		panic(fmt.Sprintf("core: occupied length %d != k %d", len(occupied), k))
	}
	if res == nil || len(res.ByOutput) != k || len(res.Granted) != k {
		panic(fmt.Sprintf("core: result not sized for k=%d", k))
	}
	for w, c := range count {
		if c < 0 {
			panic(fmt.Sprintf("core: negative request count %d at wavelength %d", c, w))
		}
	}
}

// Validate checks that res is a feasible assignment for the given request
// vector and occupancy under conv: every grant convertible, no occupied
// channel assigned, per-wavelength grants within the request counts, and
// Size consistent. It returns nil for feasible results. Unlike checkInput
// this returns an error: it judges scheduler output, which tests and the
// fabric feasibility layer want to report rather than crash on.
func Validate(conv wavelength.Conversion, count []int, occupied []bool, res *Result) error {
	k := conv.K()
	if len(res.ByOutput) != k || len(res.Granted) != k {
		return fmt.Errorf("core: result not sized for k=%d", k)
	}
	granted := make([]int, k)
	size := 0
	for b, w := range res.ByOutput {
		if w == Unassigned {
			continue
		}
		if w < 0 || w >= k {
			return fmt.Errorf("core: channel %d assigned invalid wavelength %d", b, w)
		}
		if occupied != nil && occupied[b] {
			return fmt.Errorf("core: occupied channel %d assigned wavelength %d", b, w)
		}
		if !conv.CanConvert(wavelength.Wavelength(w), wavelength.Wavelength(b)) {
			return fmt.Errorf("core: grant λ%d→channel %d not convertible under %v", w, b, conv)
		}
		granted[w]++
		size++
	}
	for w := 0; w < k; w++ {
		if granted[w] != res.Granted[w] {
			return fmt.Errorf("core: Granted[%d]=%d but ByOutput implies %d", w, res.Granted[w], granted[w])
		}
		if granted[w] > count[w] {
			return fmt.Errorf("core: wavelength %d granted %d of %d requests", w, granted[w], count[w])
		}
	}
	if size != res.Size {
		return fmt.Errorf("core: Size=%d but ByOutput implies %d", res.Size, size)
	}
	return nil
}

// TotalRequests sums a request vector.
func TotalRequests(count []int) int {
	n := 0
	for _, c := range count {
		n += c
	}
	return n
}
