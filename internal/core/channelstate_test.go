package core

import (
	"testing"

	"wdmsched/internal/wavelength"
)

// maskRNG is a tiny deterministic generator for mask/vector tests (core
// must not depend on internal/traffic).
type maskRNG struct{ s uint64 }

func (r *maskRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *maskRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// randInstance draws a request vector, occupancy and fault mask for k
// wavelengths. occ and mask may come back nil.
func randInstance(r *maskRNG, k int) (vec []int, occ []bool, mask ChannelMask) {
	vec = make([]int, k)
	for w := range vec {
		vec[w] = r.intn(4)
	}
	if r.intn(2) == 1 {
		occ = make([]bool, k)
		for b := range occ {
			occ[b] = r.intn(4) == 0
		}
	}
	if r.intn(4) > 0 {
		mask = make(ChannelMask, k)
		for b := range mask {
			switch r.intn(5) {
			case 0:
				mask[b] = ConverterFailed
			case 1:
				mask[b] = Dark
			}
		}
	}
	return vec, occ, mask
}

// testConversions returns one conversion per scheduler family.
func testConversions(t *testing.T) []wavelength.Conversion {
	t.Helper()
	return []wavelength.Conversion{
		wavelength.MustNew(wavelength.Circular, 8, 1, 1),
		wavelength.MustNew(wavelength.Circular, 9, 2, 1),
		wavelength.MustNew(wavelength.Circular, 5, 0, 0),
		wavelength.MustNew(wavelength.NonCircular, 8, 1, 2),
		wavelength.MustNew(wavelength.NonCircular, 6, 0, 0),
		wavelength.MustNew(wavelength.Full, 7, 0, 0),
	}
}

// exactSchedulers builds every exact scheduler applicable to conv,
// including the parallel pool variant for circular models. Callers must
// run returned closers.
func exactSchedulers(t *testing.T, conv wavelength.Conversion) ([]Scheduler, func()) {
	t.Helper()
	var scheds []Scheduler
	closers := func() {}
	ex, err := NewExact(conv)
	if err != nil {
		t.Fatal(err)
	}
	scheds = append(scheds, ex)
	if conv.Kind() == wavelength.Circular {
		par, err := NewParallelBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		scheds = append(scheds, par)
		closers = func() { par.Close() }
		if !conv.IsFullRange() {
			deltas := make([]int, conv.Degree())
			for i := range deltas {
				deltas[i] = i + 1
			}
			mb, err := NewMultiBreak(conv, deltas)
			if err != nil {
				t.Fatal(err)
			}
			scheds = append(scheds, mb)
		}
	}
	return scheds, closers
}

func resultsIdentical(a, b *Result) bool {
	if a.Size != b.Size || a.BreakChannel != b.BreakChannel {
		return false
	}
	for i := range a.ByOutput {
		if a.ByOutput[i] != b.ByOutput[i] || a.Granted[i] != b.Granted[i] {
			return false
		}
	}
	return true
}

// TestMaskedAllHealthyIdentical: with a nil or all-healthy mask,
// ScheduleMasked must reproduce Schedule bit for bit — the fault layer
// must be invisible when nothing is broken.
func TestMaskedAllHealthyIdentical(t *testing.T) {
	r := &maskRNG{s: 0xfa177}
	for _, conv := range testConversions(t) {
		scheds, done := exactSchedulers(t, conv)
		scheds = append(scheds, NewBaseline(conv))
		healthy := make(ChannelMask, conv.K())
		for trial := 0; trial < 50; trial++ {
			vec, occ, _ := randInstance(r, conv.K())
			for _, s := range scheds {
				plain, nilMask, healthyMask := NewResult(conv.K()), NewResult(conv.K()), NewResult(conv.K())
				s.Schedule(vec, occ, plain)
				s.ScheduleMasked(vec, occ, nil, nilMask)
				s.ScheduleMasked(vec, occ, healthy, healthyMask)
				if !resultsIdentical(plain, nilMask) {
					t.Fatalf("%v %s vec=%v occ=%v: nil mask diverged: %+v vs %+v",
						conv, s.Name(), vec, occ, plain, nilMask)
				}
				if !resultsIdentical(plain, healthyMask) {
					t.Fatalf("%v %s vec=%v occ=%v: all-healthy mask diverged: %+v vs %+v",
						conv, s.Name(), vec, occ, plain, healthyMask)
				}
			}
		}
		done()
	}
}

// TestMaskedAgreesWithDegradedOracle: under random fault masks every exact
// scheduler must stay feasible for the mask and match the size of the
// native degraded Hopcroft–Karp oracle (which narrows adjacency edge by
// edge instead of going through the pre-grant reduction).
func TestMaskedAgreesWithDegradedOracle(t *testing.T) {
	r := &maskRNG{s: 0xdeadf}
	for _, conv := range testConversions(t) {
		scheds, done := exactSchedulers(t, conv)
		oracle := NewBaseline(conv)
		for trial := 0; trial < 120; trial++ {
			vec, occ, mask := randInstance(r, conv.K())
			want := NewResult(conv.K())
			oracle.ScheduleMasked(vec, occ, mask, want)
			if err := ValidateMasked(conv, vec, occ, mask, want); err != nil {
				t.Fatalf("%v vec=%v occ=%v mask=%v: oracle infeasible: %v", conv, vec, occ, mask, err)
			}
			for _, s := range scheds {
				res := NewResult(conv.K())
				s.ScheduleMasked(vec, occ, mask, res)
				if err := ValidateMasked(conv, vec, occ, mask, res); err != nil {
					t.Fatalf("%v vec=%v occ=%v mask=%v: %s infeasible: %v",
						conv, vec, occ, mask, s.Name(), err)
				}
				if res.Size != want.Size {
					t.Fatalf("%v vec=%v occ=%v mask=%v: %s=%d oracle=%d",
						conv, vec, occ, mask, s.Name(), res.Size, want.Size)
				}
			}
		}
		done()
	}
}

// TestDeltaBreakMaskedBound: the Theorem 3 guarantee must hold against the
// optimum of the degraded graph.
func TestDeltaBreakMaskedBound(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 10, 2, 1)
	d := conv.Degree()
	oracle := NewBaseline(conv)
	r := &maskRNG{s: 0xb0071e5}
	for trial := 0; trial < 200; trial++ {
		vec, occ, mask := randInstance(r, conv.K())
		delta := r.intn(d) + 1
		db, err := NewDeltaBreak(conv, delta)
		if err != nil {
			t.Fatal(err)
		}
		res, want := NewResult(conv.K()), NewResult(conv.K())
		db.ScheduleMasked(vec, occ, mask, res)
		oracle.ScheduleMasked(vec, occ, mask, want)
		if err := ValidateMasked(conv, vec, occ, mask, res); err != nil {
			t.Fatalf("vec=%v occ=%v mask=%v δ=%d: infeasible: %v", vec, occ, mask, delta, err)
		}
		bound := delta - 1
		if d-delta > bound {
			bound = d - delta
		}
		if gap := want.Size - res.Size; gap < 0 || gap > bound {
			t.Fatalf("vec=%v occ=%v mask=%v δ=%d: gap %d outside [0,%d]", vec, occ, mask, delta, gap, bound)
		}
	}
}

// TestMaskedDegenerateMasks: an all-dark mask grants nothing; an
// all-converter-failed mask grants exactly one straight-through connection
// per wavelength that has requests.
func TestMaskedDegenerateMasks(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 6, 1, 1)
	sched, err := NewExact(conv)
	if err != nil {
		t.Fatal(err)
	}
	vec := []int{2, 0, 1, 3, 0, 1}
	res := NewResult(conv.K())

	dark := make(ChannelMask, conv.K())
	for b := range dark {
		dark[b] = Dark
	}
	sched.ScheduleMasked(vec, nil, dark, res)
	if res.Size != 0 {
		t.Fatalf("all-dark mask granted %d requests", res.Size)
	}

	failed := make(ChannelMask, conv.K())
	for b := range failed {
		failed[b] = ConverterFailed
	}
	sched.ScheduleMasked(vec, nil, failed, res)
	want := 0
	for _, c := range vec {
		if c > 0 {
			want++
		}
	}
	if res.Size != want {
		t.Fatalf("all-converter-failed mask granted %d, want %d straight-through", res.Size, want)
	}
	for b, w := range res.ByOutput {
		if w != Unassigned && w != b {
			t.Fatalf("converter-failed channel %d granted λ%d", b, w)
		}
	}
}

// TestPrioritySchedulerMasked: strict priority under faults keeps classes
// channel-disjoint and every class mask-feasible.
func TestPrioritySchedulerMasked(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 8, 1, 1)
	prio, err := NewPriorityScheduler(conv)
	if err != nil {
		t.Fatal(err)
	}
	counts := [][]int{{1, 0, 2, 0, 1, 0, 0, 1}, {0, 2, 1, 1, 0, 0, 2, 0}}
	mask := ChannelMask{Healthy, Dark, ConverterFailed, Healthy, Dark, Healthy, ConverterFailed, Healthy}
	results := []*Result{NewResult(conv.K()), NewResult(conv.K())}
	if err := prio.ScheduleClassesMasked(counts, nil, mask, results); err != nil {
		t.Fatal(err)
	}
	used := make([]bool, conv.K())
	for c, res := range results {
		for b, w := range res.ByOutput {
			if w == Unassigned {
				continue
			}
			if used[b] {
				t.Fatalf("channel %d granted to two classes", b)
			}
			used[b] = true
			if mask[b] == Dark {
				t.Fatalf("class %d uses dark channel %d", c, b)
			}
			if mask[b] == ConverterFailed && w != b {
				t.Fatalf("class %d converts on failed channel %d (λ%d)", c, b, w)
			}
		}
	}
}

// TestValidateMaskedRejects: the masked validator must catch fault-rule
// violations that plain Validate accepts.
func TestValidateMaskedRejects(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 4, 1, 1)
	vec := []int{1, 1, 1, 1}
	res := NewResult(4)
	res.ByOutput[1] = 0 // λ0→b1, legal conversion
	res.Granted[0] = 1
	res.Size = 1
	if err := Validate(conv, vec, nil, res); err != nil {
		t.Fatalf("feasible without mask, got %v", err)
	}
	if err := ValidateMasked(conv, vec, nil, ChannelMask{Healthy, Dark, Healthy, Healthy}, res); err == nil {
		t.Fatal("grant on dark channel accepted")
	}
	if err := ValidateMasked(conv, vec, nil, ChannelMask{Healthy, ConverterFailed, Healthy, Healthy}, res); err == nil {
		t.Fatal("converting grant on converter-failed channel accepted")
	}
	res.ByOutput[1] = 1 // straight through
	res.Granted[0], res.Granted[1] = 0, 1
	if err := ValidateMasked(conv, vec, nil, ChannelMask{Healthy, ConverterFailed, Healthy, Healthy}, res); err != nil {
		t.Fatalf("straight-through grant on converter-failed channel rejected: %v", err)
	}
}
