package core

import (
	"wdmsched/internal/bipartite"
	"wdmsched/internal/wavelength"
)

// Baseline schedules by expanding the request graph and running
// Hopcroft–Karp ([1] in the paper) — the general bipartite matching
// algorithm the paper's specialized algorithms are compared against. Naive
// use over a whole interconnect costs O(N^(3/2) k^(3/2) d); even per output
// fiber it builds the explicit graph each slot and allocates, unlike the
// O(k)/O(dk) schedulers. It exists as the optimality oracle in tests and
// the comparator in benchmarks.
type Baseline struct {
	conv wavelength.Conversion
}

// NewBaseline wraps Hopcroft–Karp as a Scheduler for any conversion model.
func NewBaseline(conv wavelength.Conversion) *Baseline {
	return &Baseline{conv: conv}
}

// Name implements Scheduler.
func (s *Baseline) Name() string { return "hopcroft-karp" }

// Conversion implements Scheduler.
func (s *Baseline) Conversion() wavelength.Conversion { return s.conv }

// Schedule implements Scheduler.
func (s *Baseline) Schedule(count []int, occupied []bool, res *Result) {
	s.ScheduleMasked(count, occupied, nil, res)
}

// ScheduleMasked implements Scheduler by building the degraded request
// graph explicitly — each request's adjacency interval is narrowed edge by
// edge (dark channels removed, converter-failed channels kept only for
// their own wavelength) — and running Hopcroft–Karp on it. Unlike the
// specialized schedulers it does not go through the pre-grant reduction,
// which makes it the independent optimality oracle for the masked paths.
func (s *Baseline) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	checkInput(s.conv, count, occupied, res)
	checkMask(s.conv, mask)
	res.Reset()
	k := s.conv.K()
	// Expand the request vector into left vertices, tracking each left
	// vertex's wavelength.
	n := TotalRequests(count)
	waveOf := make([]int, 0, n)
	for w := 0; w < k; w++ {
		for c := 0; c < count[w]; c++ {
			waveOf = append(waveOf, w)
		}
	}
	g := bipartite.NewGraph(n, k)
	for a, w := range waveOf {
		s.conv.Adjacency(wavelength.Wavelength(w)).Each(func(b int) {
			if occupied != nil && occupied[b] {
				return
			}
			if mask != nil && (mask[b] == Dark || (mask[b] == ConverterFailed && b != w)) {
				return
			}
			g.AddEdge(a, b)
		})
	}
	m := bipartite.HopcroftKarp(g)
	for b, a := range m.LeftOf {
		if a == bipartite.Unmatched {
			continue
		}
		w := waveOf[a]
		res.ByOutput[b] = w
		res.Granted[w]++
		res.Size++
	}
}

var _ Scheduler = (*Baseline)(nil)
