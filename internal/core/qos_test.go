package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPrioritySchedulerStrictness(t *testing.T) {
	// The high class must get exactly what it would get scheduled alone:
	// lower classes never influence it.
	rng := rand.New(rand.NewSource(41))
	conv := circular(8, 1, 1)
	ps, err := NewPriorityScheduler(conv)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := NewExact(conv)
	alone := NewResult(8)
	for trial := 0; trial < 200; trial++ {
		high, _ := randomInstance(rng, 8, 2, 0)
		low, _ := randomInstance(rng, 8, 2, 0)
		results := []*Result{NewResult(8), NewResult(8)}
		if err := ps.ScheduleClasses([][]int{high, low}, nil, results); err != nil {
			t.Fatal(err)
		}
		exact.Schedule(high, nil, alone)
		if results[0].Size != alone.Size {
			t.Fatalf("high class got %d with low traffic present, %d alone", results[0].Size, alone.Size)
		}
		// Per-class feasibility.
		if err := Validate(conv, high, nil, results[0]); err != nil {
			t.Fatalf("high class: %v", err)
		}
		// Low class must avoid channels taken by the high class.
		for b, w := range results[1].ByOutput {
			if w != Unassigned && results[0].ByOutput[b] != Unassigned {
				t.Fatalf("channel %d double-granted across classes", b)
			}
		}
	}
}

func TestPrioritySchedulerChannelDisjointUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	conv := noncircular(10, 2, 2)
	ps, err := NewPriorityScheduler(conv)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		classes := [][]int{}
		results := []*Result{}
		nc := rng.Intn(3) + 2
		for c := 0; c < nc; c++ {
			vec, _ := randomInstance(rng, 10, 2, 0)
			classes = append(classes, vec)
			results = append(results, NewResult(10))
		}
		occ := make([]bool, 10)
		for b := range occ {
			occ[b] = rng.Float64() < 0.2
		}
		if err := ps.ScheduleClasses(classes, occ, results); err != nil {
			t.Fatal(err)
		}
		used := make([]int, 10)
		total := 0
		for c, r := range results {
			if err := Validate(conv, classes[c], occ, r); err != nil {
				t.Fatalf("class %d: %v", c, err)
			}
			for b, w := range r.ByOutput {
				if w != Unassigned {
					used[b]++
				}
			}
			total += r.Size
		}
		for b, n := range used {
			if n > 1 {
				t.Fatalf("channel %d granted %d times", b, n)
			}
			if occ[b] && n > 0 {
				t.Fatalf("occupied channel %d granted", b)
			}
		}
		if total != TotalGranted(results) {
			t.Fatal("TotalGranted mismatch")
		}
	}
}

func TestPrioritySchedulerAggregateVsJoint(t *testing.T) {
	// Strict priority can cost aggregate throughput vs scheduling the
	// union jointly, but never gains: the joint maximum matching is an
	// upper bound.
	rng := rand.New(rand.NewSource(47))
	conv := circular(8, 1, 1)
	ps, _ := NewPriorityScheduler(conv)
	exact, _ := NewExact(conv)
	joint := NewResult(8)
	sawCost := false
	for trial := 0; trial < 400; trial++ {
		high, _ := randomInstance(rng, 8, 2, 0)
		low, _ := randomInstance(rng, 8, 2, 0)
		union := make([]int, 8)
		for w := range union {
			union[w] = high[w] + low[w]
		}
		results := []*Result{NewResult(8), NewResult(8)}
		if err := ps.ScheduleClasses([][]int{high, low}, nil, results); err != nil {
			t.Fatal(err)
		}
		exact.Schedule(union, nil, joint)
		total := TotalGranted(results)
		if total > joint.Size {
			t.Fatalf("priority total %d exceeds joint optimum %d", total, joint.Size)
		}
		if total < joint.Size {
			sawCost = true
		}
	}
	if !sawCost {
		t.Log("note: no aggregate cost observed in sample (priority happened to be lossless)")
	}
}

func TestPrioritySchedulerErrors(t *testing.T) {
	conv := circular(6, 1, 1)
	ps, err := NewPriorityScheduler(conv)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Conversion() != conv {
		t.Fatal("Conversion mismatch")
	}
	if !strings.HasPrefix(ps.Name(), "strict-priority(") {
		t.Fatalf("Name = %q", ps.Name())
	}
	vec := []int{1, 0, 0, 0, 0, 0}
	if err := ps.ScheduleClasses([][]int{vec}, nil, nil); err == nil {
		t.Fatal("class/result mismatch accepted")
	}
	if err := ps.ScheduleClasses([][]int{vec}, []bool{true}, []*Result{NewResult(6)}); err == nil {
		t.Fatal("short occupied accepted")
	}
}

func TestPrioritySchedulerEmptyClasses(t *testing.T) {
	conv := circular(6, 1, 1)
	ps, _ := NewPriorityScheduler(conv)
	if err := ps.ScheduleClasses(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	zero := []int{0, 0, 0, 0, 0, 0}
	results := []*Result{NewResult(6)}
	if err := ps.ScheduleClasses([][]int{zero}, nil, results); err != nil {
		t.Fatal(err)
	}
	if results[0].Size != 0 {
		t.Fatal("granted from empty vector")
	}
}
