package core

import (
	"testing"

	"wdmsched/internal/wavelength"
)

// decodeInstance turns fuzzer bytes into a valid scheduling instance:
// conversion shape, request vector, occupancy mask and fault mask (both
// masks optional, selected by flag bits). It returns ok=false for
// degenerate inputs.
func decodeInstance(data []byte) (k, e, f int, vec []int, occ []bool, mask ChannelMask, ok bool) {
	if len(data) < 4 {
		return 0, 0, 0, nil, nil, nil, false
	}
	k = int(data[0])%16 + 1
	e = int(data[1]) % k
	f = int(data[2]) % (k - e)
	useOcc := data[3]&1 == 1
	useMask := data[3]&2 == 2
	data = data[4:]
	vec = make([]int, k)
	for w := 0; w < k && w < len(data); w++ {
		vec[w] = int(data[w]) % 5
	}
	if useOcc {
		occ = make([]bool, k)
		for b := 0; b < k; b++ {
			if b+k < len(data) {
				occ[b] = data[b+k]&1 == 1
			}
		}
	}
	if useMask {
		mask = make(ChannelMask, k)
		for b := 0; b < k; b++ {
			if b+2*k < len(data) {
				mask[b] = ChannelState(data[b+2*k] % 3)
			}
		}
	}
	return k, e, f, vec, occ, mask, true
}

// FuzzExactSchedulers feeds arbitrary instances — optionally with fault
// masks — to both exact schedulers and checks feasibility plus agreement
// with the Hopcroft–Karp oracle on the same (possibly degraded) instance.
func FuzzExactSchedulers(f *testing.F) {
	f.Add([]byte{6, 1, 1, 0, 2, 1, 0, 1, 1, 2})
	f.Add([]byte{8, 2, 1, 1, 3, 0, 0, 4, 0, 1, 2, 0, 1, 1, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{1, 0, 0, 0, 4})
	f.Add([]byte{16, 7, 8, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{6, 1, 1, 2, 2, 1, 0, 1, 1, 2, 0, 0, 0, 0, 0, 0, 1, 2, 0, 1, 2, 0})
	f.Add([]byte{8, 2, 1, 3, 3, 0, 0, 4, 0, 1, 2, 0, 1, 1, 0, 1, 0, 1, 0, 1, 2, 2, 1, 1, 0, 0, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, e, ff, vec, occ, mask, ok := decodeInstance(data)
		if !ok {
			return
		}
		for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
			conv, err := wavelength.New(kind, k, e, ff)
			if err != nil {
				t.Fatalf("decoded invalid conversion: %v", err)
			}
			sched, err := NewExact(conv)
			if err != nil {
				t.Fatal(err)
			}
			res, want := NewResult(k), NewResult(k)
			sched.ScheduleMasked(vec, occ, mask, res)
			if err := ValidateMasked(conv, vec, occ, mask, res); err != nil {
				t.Fatalf("%v vec=%v occ=%v mask=%v: infeasible: %v", conv, vec, occ, mask, err)
			}
			NewBaseline(conv).ScheduleMasked(vec, occ, mask, want)
			if res.Size != want.Size {
				t.Fatalf("%v vec=%v occ=%v mask=%v: %s=%d HK=%d",
					conv, vec, occ, mask, sched.Name(), res.Size, want.Size)
			}
			// The word-parallel kernel must reproduce the scalar reference
			// assignment byte for byte, faults and occupancy included.
			fast, err := NewFastExact(conv)
			if err != nil {
				t.Fatal(err)
			}
			fres := NewResult(k)
			fast.ScheduleMasked(vec, occ, mask, fres)
			if !resultsIdentical(fres, res) {
				t.Fatalf("%v vec=%v occ=%v mask=%v: %s diverged from %s:\nfast   %+v\nscalar %+v",
					conv, vec, occ, mask, fast.Name(), sched.Name(), fres, res)
			}
		}
	})
}

// FuzzCircularSchedulersAgree feeds arbitrary circular instances — with
// random occupancy and fault masks — to every exact circular scheduler:
// sequential Break-and-First-Available, the parallel worker-pool variant,
// and MultiBreak trying all d breaking positions. All must produce feasible
// assignments whose size matches the Hopcroft–Karp oracle on the same
// (possibly degraded) instance.
func FuzzCircularSchedulersAgree(f *testing.F) {
	f.Add([]byte{6, 1, 1, 1, 2, 1, 0, 1, 1, 2, 0, 1, 0, 1, 1, 0})
	f.Add([]byte{8, 2, 1, 0, 3, 0, 0, 4, 0, 1, 2, 0})
	f.Add([]byte{12, 3, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 0})
	f.Add([]byte{1, 0, 0, 0, 4})
	f.Add([]byte{6, 1, 1, 2, 2, 1, 0, 1, 1, 2, 0, 0, 0, 0, 0, 0, 2, 0, 1, 0, 2, 1})
	f.Add([]byte{8, 2, 1, 3, 3, 0, 0, 4, 0, 1, 2, 0, 1, 1, 0, 1, 0, 1, 0, 1, 1, 2, 0, 0, 2, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, e, ff, vec, occ, mask, ok := decodeInstance(data)
		if !ok {
			return
		}
		conv, err := wavelength.New(wavelength.Circular, k, e, ff)
		if err != nil {
			t.Fatalf("decoded invalid conversion: %v", err)
		}
		want := NewResult(k)
		NewBaseline(conv).ScheduleMasked(vec, occ, mask, want)

		bfa, err := NewBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallelBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		defer par.Close()
		deltas := make([]int, conv.Degree())
		for i := range deltas {
			deltas[i] = i + 1
		}
		mb, err := NewMultiBreak(conv, deltas)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewFastBFA(conv)
		if err != nil {
			t.Fatal(err)
		}
		res := NewResult(k)
		for _, s := range []Scheduler{bfa, par, mb, fast} {
			s.ScheduleMasked(vec, occ, mask, res)
			if err := ValidateMasked(conv, vec, occ, mask, res); err != nil {
				t.Fatalf("%v vec=%v occ=%v mask=%v: %s infeasible: %v", conv, vec, occ, mask, s.Name(), err)
			}
			if res.Size != want.Size {
				t.Fatalf("%v vec=%v occ=%v mask=%v: %s=%d HK=%d",
					conv, vec, occ, mask, s.Name(), res.Size, want.Size)
			}
		}
		// Byte-identical agreement between the word-parallel kernel and the
		// scalar reference, beyond the size agreement checked above.
		sres, fres := NewResult(k), NewResult(k)
		bfa.ScheduleMasked(vec, occ, mask, sres)
		fast.ScheduleMasked(vec, occ, mask, fres)
		if !resultsIdentical(fres, sres) {
			t.Fatalf("%v vec=%v occ=%v mask=%v: fast BFA diverged:\nfast   %+v\nscalar %+v",
				conv, vec, occ, mask, fres, sres)
		}
	})
}

// FuzzDeltaBreakBound checks the Theorem 3 bound on arbitrary circular
// instances (without occupancy, as the theorem is stated).
func FuzzDeltaBreakBound(f *testing.F) {
	f.Add([]byte{8, 1, 1, 0, 2, 1, 0, 1, 1, 2, 3, 1})
	f.Add([]byte{12, 2, 2, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, e, ff, vec, _, _, ok := decodeInstance(data)
		if !ok {
			return
		}
		conv, err := wavelength.New(wavelength.Circular, k, e, ff)
		if err != nil || conv.IsFullRange() {
			return
		}
		d := conv.Degree()
		delta := 1
		if len(data) > 0 {
			delta = int(data[len(data)-1])%d + 1
		}
		db, err := NewDeltaBreak(conv, delta)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := NewBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		res, opt := NewResult(k), NewResult(k)
		db.Schedule(vec, nil, res)
		exact.Schedule(vec, nil, opt)
		bound := delta - 1
		if d-delta > bound {
			bound = d - delta
		}
		if gap := opt.Size - res.Size; gap < 0 || gap > bound {
			t.Fatalf("%v vec=%v δ=%d: gap %d outside [0,%d]", conv, vec, delta, gap, bound)
		}
	})
}
