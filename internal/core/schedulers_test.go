package core

import (
	"math/rand"
	"testing"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/wavelength"
)

// forEachVector enumerates every request vector of length k with entries in
// [0, maxPer].
func forEachVector(k, maxPer int, fn func(vec []int)) {
	vec := make([]int, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(vec)
			return
		}
		for c := 0; c <= maxPer; c++ {
			vec[i] = c
			rec(i + 1)
		}
	}
	rec(0)
}

// forEachOccupancy enumerates every occupancy mask of length k.
func forEachOccupancy(k int, fn func(occ []bool)) {
	occ := make([]bool, k)
	for bits := 0; bits < 1<<k; bits++ {
		for b := 0; b < k; b++ {
			occ[b] = bits&(1<<b) != 0
		}
		fn(occ)
	}
}

// TestPaperIntroExample reproduces the Section I contention example:
// k = 6, d = 3, two requests on λ1, three on λ2, one on λ4. Full range
// could satisfy all six, limited range only five.
func TestPaperIntroExample(t *testing.T) {
	vec := []int{0, 2, 3, 0, 1, 0}
	for _, conv := range []wavelength.Conversion{circular(6, 1, 1), noncircular(6, 1, 1)} {
		s, err := NewExact(conv)
		if err != nil {
			t.Fatal(err)
		}
		res := NewResult(6)
		s.Schedule(vec, nil, res)
		if res.Size != 5 {
			t.Errorf("%v: granted %d, want 5", conv, res.Size)
		}
		if err := Validate(conv, vec, nil, res); err != nil {
			t.Errorf("%v: %v", conv, err)
		}
	}
	full, _ := NewFullRange(wavelength.MustNew(wavelength.Full, 6, 0, 0))
	res := NewResult(6)
	full.Schedule(vec, nil, res)
	if res.Size != 6 {
		t.Errorf("full range granted %d, want 6", res.Size)
	}
}

// TestFigure4Matchings reproduces Fig. 4: for the request vector
// [2,1,0,1,1,2] both conversion types admit a maximum matching of size 6.
func TestFigure4Matchings(t *testing.T) {
	vec := []int{2, 1, 0, 1, 1, 2}
	for _, conv := range []wavelength.Conversion{circular(6, 1, 1), noncircular(6, 1, 1)} {
		s, err := NewExact(conv)
		if err != nil {
			t.Fatal(err)
		}
		res := NewResult(6)
		s.Schedule(vec, nil, res)
		if res.Size != 6 {
			t.Errorf("%v: granted %d, want 6", conv, res.Size)
		}
		if err := Validate(conv, vec, nil, res); err != nil {
			t.Errorf("%v: %v", conv, err)
		}
	}
}

// TestFirstAvailableExhaustive proves Theorem 1 empirically: on every
// request vector (entries ≤ 2) over every non-circular model with k ≤ 5,
// including every occupancy mask for k ≤ 4, First Available matches the
// Hopcroft–Karp cardinality.
func TestFirstAvailableExhaustive(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for e := 0; e < k; e++ {
			for f := 0; e+f+1 <= k; f++ {
				conv := noncircular(k, e, f)
				fa, err := NewFirstAvailable(conv)
				if err != nil {
					t.Fatal(err)
				}
				base := NewBaseline(conv)
				res, want := NewResult(k), NewResult(k)
				forEachVector(k, 2, func(vec []int) {
					check := func(occ []bool) {
						fa.Schedule(vec, occ, res)
						base.Schedule(vec, occ, want)
						if res.Size != want.Size {
							t.Fatalf("%v vec=%v occ=%v: FA=%d HK=%d", conv, vec, occ, res.Size, want.Size)
						}
						if err := Validate(conv, vec, occ, res); err != nil {
							t.Fatalf("%v vec=%v occ=%v: %v", conv, vec, occ, err)
						}
					}
					check(nil)
					if k <= 4 {
						forEachOccupancy(k, check)
					}
				})
			}
		}
	}
}

// TestBreakFirstAvailableExhaustive proves Theorem 2 empirically: on every
// request vector (entries ≤ 2) over every circular model with k ≤ 5,
// including every occupancy mask for k ≤ 4, Break and First Available
// matches the Hopcroft–Karp cardinality.
func TestBreakFirstAvailableExhaustive(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for e := 0; e < k; e++ {
			for f := 0; e+f+1 <= k; f++ {
				conv := circular(k, e, f)
				bfa, err := NewBreakFirstAvailable(conv)
				if err != nil {
					t.Fatal(err)
				}
				base := NewBaseline(conv)
				res, want := NewResult(k), NewResult(k)
				forEachVector(k, 2, func(vec []int) {
					check := func(occ []bool) {
						bfa.Schedule(vec, occ, res)
						base.Schedule(vec, occ, want)
						if res.Size != want.Size {
							t.Fatalf("%v vec=%v occ=%v: BFA=%d HK=%d", conv, vec, occ, res.Size, want.Size)
						}
						if err := Validate(conv, vec, occ, res); err != nil {
							t.Fatalf("%v vec=%v occ=%v: %v", conv, vec, occ, err)
						}
					}
					check(nil)
					if k <= 4 {
						forEachOccupancy(k, check)
					}
				})
			}
		}
	}
}

// TestFirstAvailableEqualsGlover walks the Theorem 1 proof path directly:
// First Available is Glover's algorithm (paper Table 1) specialized to
// request graphs, so on the convex request graph of any non-circular
// instance the two must produce matchings of identical cardinality.
func TestFirstAvailableEqualsGlover(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 300; trial++ {
		k := rng.Intn(10) + 1
		e := rng.Intn(k)
		f := rng.Intn(k - e)
		conv := noncircular(k, e, f)
		fa, err := NewFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		vec, _ := randomInstance(rng, k, 3, 0)
		res := NewResult(k)
		fa.Schedule(vec, nil, res)

		// Expand the request vector into the convex interval
		// representation Glover consumes.
		var begin, end []int
		for w := 0; w < k; w++ {
			iv := conv.Adjacency(wavelength.Wavelength(w))
			for c := 0; c < vec[w]; c++ {
				begin = append(begin, iv.First())
				end = append(end, iv.Last())
			}
		}
		cg, err := bipartite.NewConvexGraph(k, begin, end)
		if err != nil {
			t.Fatal(err)
		}
		if got := cg.Glover().Size(); got != res.Size {
			t.Fatalf("%v vec=%v: FA=%d Glover=%d", conv, vec, res.Size, got)
		}
	}
}

// randomInstance draws a random request vector and occupancy mask.
func randomInstance(rng *rand.Rand, k int, maxPer int, occP float64) ([]int, []bool) {
	vec := make([]int, k)
	for w := range vec {
		vec[w] = rng.Intn(maxPer + 1)
	}
	var occ []bool
	if occP > 0 {
		occ = make([]bool, k)
		for b := range occ {
			occ[b] = rng.Float64() < occP
		}
	}
	return vec, occ
}

// TestExactSchedulersRandomLarge: FA and BFA remain optimal on large random
// instances (k up to 64, loads up to 3 requests per wavelength, random
// occupancy), reusing one scheduler across calls to exercise scratch reuse.
func TestExactSchedulersRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		k := rng.Intn(63) + 2
		e := rng.Intn(k)
		f := rng.Intn(k - e)
		occP := 0.0
		if trial%3 == 0 {
			occP = rng.Float64() * 0.5
		}
		vec, occ := randomInstance(rng, k, 3, occP)
		for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
			conv := wavelength.MustNew(kind, k, e, f)
			s, err := NewExact(conv)
			if err != nil {
				t.Fatal(err)
			}
			base := NewBaseline(conv)
			res, want := NewResult(k), NewResult(k)
			s.Schedule(vec, occ, res)
			base.Schedule(vec, occ, want)
			if res.Size != want.Size {
				t.Fatalf("%v vec=%v occ=%v: %s=%d HK=%d", conv, vec, occ, s.Name(), res.Size, want.Size)
			}
			if err := Validate(conv, vec, occ, res); err != nil {
				t.Fatalf("%v: %v", conv, err)
			}
		}
	}
}

// TestSchedulerReuseIsStateless: calling Schedule twice with the same input
// yields the same result; interleaving different inputs does not corrupt
// scratch.
func TestSchedulerReuseIsStateless(t *testing.T) {
	conv := circular(8, 1, 1)
	s, err := NewBreakFirstAvailable(conv)
	if err != nil {
		t.Fatal(err)
	}
	vecA := []int{2, 0, 1, 3, 0, 0, 1, 2}
	vecB := []int{0, 1, 0, 0, 2, 2, 0, 0}
	r1, r2, r3 := NewResult(8), NewResult(8), NewResult(8)
	s.Schedule(vecA, nil, r1)
	s.Schedule(vecB, nil, r2)
	s.Schedule(vecA, nil, r3)
	if r1.Size != r3.Size {
		t.Fatalf("same input different sizes: %d vs %d", r1.Size, r3.Size)
	}
	for b := range r1.ByOutput {
		if r1.ByOutput[b] != r3.ByOutput[b] {
			t.Fatalf("same input different assignment at %d", b)
		}
	}
	_ = r2
}

// TestDeltaBreakBound verifies Theorem 3: for every breaking position δ,
// the single-break matching is within max{δ−1, d−δ} of optimal; and
// Corollary 1: the shortest edge (δ = (d+1)/2) is within (d−1)/2.
func TestDeltaBreakBound(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, cfg := range []struct{ k, e, f int }{
		{6, 1, 1}, {8, 2, 2}, {10, 2, 2}, {12, 3, 3}, {9, 1, 2}, {11, 3, 1},
	} {
		conv := circular(cfg.k, cfg.e, cfg.f)
		d := conv.Degree()
		exact, err := NewBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		res, opt := NewResult(cfg.k), NewResult(cfg.k)
		for delta := 1; delta <= d; delta++ {
			db, err := NewDeltaBreak(conv, delta)
			if err != nil {
				t.Fatal(err)
			}
			bound := delta - 1
			if d-delta > bound {
				bound = d - delta
			}
			for trial := 0; trial < 200; trial++ {
				vec, _ := randomInstance(rng, cfg.k, 3, 0)
				db.Schedule(vec, nil, res)
				exact.Schedule(vec, nil, opt)
				if err := Validate(conv, vec, nil, res); err != nil {
					t.Fatalf("%v δ=%d vec=%v: %v", conv, delta, vec, err)
				}
				if gap := opt.Size - res.Size; gap < 0 || gap > bound {
					t.Fatalf("%v δ=%d vec=%v: gap %d outside [0, %d] (approx=%d opt=%d)",
						conv, delta, vec, gap, bound, res.Size, opt.Size)
				}
			}
		}
	}
}

// TestShortestEdgeDelta checks the Corollary 1 choice of δ.
func TestShortestEdgeDelta(t *testing.T) {
	for _, cfg := range []struct{ k, e, f, want int }{
		{6, 1, 1, 2},  // d=3 → δ=2
		{12, 2, 2, 3}, // d=5 → δ=3
		{12, 3, 3, 4}, // d=7 → δ=4
	} {
		conv := circular(cfg.k, cfg.e, cfg.f)
		se, err := NewShortestEdge(conv)
		if err != nil {
			t.Fatal(err)
		}
		if se.Delta() != cfg.want {
			t.Errorf("%v: δ=%d, want %d", conv, se.Delta(), cfg.want)
		}
	}
}

// TestDeltaBreakWithOccupancy: the approximation stays feasible and never
// exceeds the optimum when channels are occupied.
func TestDeltaBreakWithOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv := circular(10, 2, 2)
	se, err := NewShortestEdge(conv)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := NewBreakFirstAvailable(conv)
	res, opt := NewResult(10), NewResult(10)
	for trial := 0; trial < 300; trial++ {
		vec, occ := randomInstance(rng, 10, 2, 0.4)
		se.Schedule(vec, occ, res)
		exact.Schedule(vec, occ, opt)
		if err := Validate(conv, vec, occ, res); err != nil {
			t.Fatalf("vec=%v occ=%v: %v", vec, occ, err)
		}
		if res.Size > opt.Size {
			t.Fatalf("vec=%v occ=%v: approx %d exceeds optimum %d", vec, occ, res.Size, opt.Size)
		}
	}
}

// TestBFAFullRingDegree: circular conversion with d = k must behave as full
// range through both BFA's fast path and the dispatcher.
func TestBFAFullRingDegree(t *testing.T) {
	conv := circular(5, 2, 2)
	bfa, err := NewBreakFirstAvailable(conv)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(5)
	vec := []int{3, 0, 0, 0, 3}
	bfa.Schedule(vec, nil, res)
	if res.Size != 5 {
		t.Fatalf("Size = %d, want 5", res.Size)
	}
	if err := Validate(conv, vec, nil, res); err != nil {
		t.Fatal(err)
	}
}

// TestAllOccupied: nothing can be granted when every channel is occupied.
func TestAllOccupied(t *testing.T) {
	occ := []bool{true, true, true, true, true, true}
	vec := []int{1, 1, 1, 1, 1, 1}
	for _, conv := range []wavelength.Conversion{circular(6, 1, 1), noncircular(6, 1, 1)} {
		s, _ := NewExact(conv)
		res := NewResult(6)
		s.Schedule(vec, occ, res)
		if res.Size != 0 {
			t.Errorf("%v: granted %d with all channels occupied", conv, res.Size)
		}
	}
}

// TestPartiallyUnmatchableWavelengths: a wavelength whose whole window is
// occupied must not poison scheduling of other wavelengths (exercises the
// firstMatchable prefilter).
func TestPartiallyUnmatchableWavelengths(t *testing.T) {
	conv := circular(8, 1, 1)
	bfa, _ := NewBreakFirstAvailable(conv)
	base := NewBaseline(conv)
	// λ0's window {7,0,1} fully occupied; λ4 free.
	occ := []bool{true, true, false, false, false, false, false, true}
	vec := []int{2, 0, 0, 0, 2, 0, 0, 0}
	res, want := NewResult(8), NewResult(8)
	bfa.Schedule(vec, occ, res)
	base.Schedule(vec, occ, want)
	if res.Size != want.Size {
		t.Fatalf("BFA=%d HK=%d", res.Size, want.Size)
	}
	if res.Granted[0] != 0 {
		t.Fatal("granted an unmatchable wavelength")
	}
	if res.Granted[4] != 2 {
		t.Fatalf("λ4 granted %d, want 2", res.Granted[4])
	}
}

// TestZeroAllocHotPath: the production schedulers must not allocate per
// slot (the paper targets µs hardware decisions; the Go port keeps the
// steady state allocation-free).
func TestZeroAllocHotPath(t *testing.T) {
	k := 32
	vec := make([]int, k)
	occ := make([]bool, k)
	rng := rand.New(rand.NewSource(1))
	for w := range vec {
		vec[w] = rng.Intn(3)
		occ[w] = rng.Float64() < 0.2
	}
	res := NewResult(k)
	schedulers := []Scheduler{}
	fa, _ := NewFirstAvailable(wavelength.MustNew(wavelength.NonCircular, k, 2, 2))
	bfa, _ := NewBreakFirstAvailable(wavelength.MustNew(wavelength.Circular, k, 2, 2))
	se, _ := NewShortestEdge(wavelength.MustNew(wavelength.Circular, k, 2, 2))
	fr, _ := NewFullRange(wavelength.MustNew(wavelength.Full, k, 0, 0))
	schedulers = append(schedulers, fa, bfa, se, fr)
	for _, s := range schedulers {
		s := s
		allocs := testing.AllocsPerRun(100, func() {
			s.Schedule(vec, occ, res)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per Schedule, want 0", s.Name(), allocs)
		}
	}
}
