package core

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// PriorityScheduler implements the paper's named future work:
// "incorporating different QoS requirements, such as different priorities
// among connection requests, in the scheduling algorithm" (Section VI).
//
// It applies strict priority: classes are scheduled in descending priority
// order, each class running the model's exact maximum-matching algorithm
// on the channels left over by higher classes (the Section V
// occupied-channel mechanism — a channel granted to a higher class is
// occupied from the next class's point of view). Within a class the grant
// set is optimal; across classes the policy is deliberately greedy — a
// higher class never loses a grant to improve aggregate throughput, the
// defining property of strict priority.
type PriorityScheduler struct {
	conv  wavelength.Conversion
	inner Scheduler
	occ   []bool
}

// NewPriorityScheduler builds a strict-priority scheduler around the
// model's exact algorithm.
func NewPriorityScheduler(conv wavelength.Conversion) (*PriorityScheduler, error) {
	inner, err := NewExact(conv)
	if err != nil {
		return nil, err
	}
	return &PriorityScheduler{conv: conv, inner: inner, occ: make([]bool, conv.K())}, nil
}

// Name identifies the policy.
func (s *PriorityScheduler) Name() string { return "strict-priority(" + s.inner.Name() + ")" }

// Conversion returns the conversion model.
func (s *PriorityScheduler) Conversion() wavelength.Conversion { return s.conv }

// ScheduleClasses schedules one slot with per-class request vectors:
// counts[0] is the highest priority class. occupied (len k or nil) marks
// channels held before the slot (Section V). results must contain one
// Result per class, each sized with NewResult(k). After the call,
// results[c] holds class c's grants; the union is channel-disjoint.
func (s *PriorityScheduler) ScheduleClasses(counts [][]int, occupied []bool, results []*Result) error {
	return s.ScheduleClassesMasked(counts, occupied, nil, results)
}

// ScheduleClassesMasked is ScheduleClasses under a per-channel fault mask
// (nil meaning all channels healthy): each class schedules via the inner
// scheduler's masked path, and a channel granted to a higher class is
// occupied — hence also immune to re-pre-granting — for every lower class.
func (s *PriorityScheduler) ScheduleClassesMasked(counts [][]int, occupied []bool, mask ChannelMask, results []*Result) error {
	if len(counts) != len(results) {
		return fmt.Errorf("core: %d classes but %d results", len(counts), len(results))
	}
	if mask != nil && len(mask) != len(s.occ) {
		return fmt.Errorf("core: mask length %d != k %d", len(mask), len(s.occ))
	}
	if occupied == nil {
		for b := range s.occ {
			s.occ[b] = false
		}
	} else {
		if len(occupied) != len(s.occ) {
			return fmt.Errorf("core: occupied length %d != k %d", len(occupied), len(s.occ))
		}
		copy(s.occ, occupied)
	}
	for c := range counts {
		s.inner.ScheduleMasked(counts[c], s.occ, mask, results[c])
		for b, w := range results[c].ByOutput {
			if w != Unassigned {
				s.occ[b] = true
			}
		}
	}
	return nil
}

// TotalGranted sums the class results of one ScheduleClasses call.
func TotalGranted(results []*Result) int {
	n := 0
	for _, r := range results {
		n += r.Size
	}
	return n
}
