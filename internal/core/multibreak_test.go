package core

import (
	"math/rand"
	"testing"
)

func TestNewMultiBreakValidation(t *testing.T) {
	conv := circular(8, 2, 2) // d=5
	if _, err := NewMultiBreak(conv, nil); err == nil {
		t.Fatal("empty deltas accepted")
	}
	if _, err := NewMultiBreak(conv, []int{0}); err == nil {
		t.Fatal("delta 0 accepted")
	}
	if _, err := NewMultiBreak(conv, []int{6}); err == nil {
		t.Fatal("delta > d accepted")
	}
	if _, err := NewMultiBreak(conv, []int{2, 2}); err == nil {
		t.Fatal("duplicate delta accepted")
	}
	if _, err := NewMultiBreak(noncircular(8, 2, 2), []int{1}); err == nil {
		t.Fatal("non-circular accepted")
	}
	mb, err := NewMultiBreak(conv, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if mb.Name() != "multi-break(2)" {
		t.Fatalf("Name = %q", mb.Name())
	}
	if mb.Conversion() != conv {
		t.Fatal("Conversion mismatch")
	}
}

func TestMultiBreakBoundValues(t *testing.T) {
	conv := circular(12, 2, 2) // d=5
	cases := []struct {
		deltas []int
		want   int
	}{
		{[]int{1}, 4},
		{[]int{3}, 2},
		{[]int{1, 5}, 4},
		{[]int{2, 4}, 3},
		{[]int{1, 2, 3, 4, 5}, 2},
	}
	for _, tc := range cases {
		mb, err := NewMultiBreak(conv, tc.deltas)
		if err != nil {
			t.Fatal(err)
		}
		if got := mb.Bound(); got != tc.want {
			t.Fatalf("deltas %v: bound %d, want %d", tc.deltas, got, tc.want)
		}
	}
}

// TestMultiBreakWithinBound: the measured gap to optimal never exceeds
// Bound(), and trying every position matches the exact scheduler.
func TestMultiBreakWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	conv := circular(12, 2, 2) // d=5
	exact, _ := NewBreakFirstAvailable(conv)
	subsets := [][]int{{1}, {3}, {2, 4}, {1, 3, 5}, {1, 2, 3, 4, 5}}
	res, opt := NewResult(12), NewResult(12)
	for _, deltas := range subsets {
		mb, err := NewMultiBreak(conv, deltas)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			vec, _ := randomInstance(rng, 12, 3, 0)
			mb.Schedule(vec, nil, res)
			exact.Schedule(vec, nil, opt)
			if err := Validate(conv, vec, nil, res); err != nil {
				t.Fatalf("deltas %v: %v", deltas, err)
			}
			gap := opt.Size - res.Size
			if gap < 0 || gap > mb.Bound() {
				t.Fatalf("deltas %v vec=%v: gap %d outside [0,%d]", deltas, vec, gap, mb.Bound())
			}
			if len(deltas) == 5 && gap != 0 {
				t.Fatalf("all-positions MultiBreak missed the optimum by %d on %v", gap, vec)
			}
		}
	}
}

// TestMultiBreakMonotoneInSubset: adding positions never hurts.
func TestMultiBreakMonotoneInSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	conv := circular(10, 2, 2)
	small, _ := NewMultiBreak(conv, []int{3})
	big, _ := NewMultiBreak(conv, []int{3, 1, 5})
	a, b := NewResult(10), NewResult(10)
	for trial := 0; trial < 300; trial++ {
		vec, _ := randomInstance(rng, 10, 3, 0)
		small.Schedule(vec, nil, a)
		big.Schedule(vec, nil, b)
		if b.Size < a.Size {
			t.Fatalf("vec=%v: superset %d < subset %d", vec, b.Size, a.Size)
		}
	}
}

// TestMultiBreakOccupiedFallback: when every chosen position is occupied
// the scheduler still grants via the nearest available window channel.
func TestMultiBreakOccupiedFallback(t *testing.T) {
	conv := circular(8, 1, 1)                // d=3, window of λ0 = {7,0,1}
	mb, err := NewMultiBreak(conv, []int{2}) // position 2 = λ0 itself
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]bool, 8)
	occ[0] = true // occupy position 2's channel for wavelength 0
	res := NewResult(8)
	mb.Schedule([]int{1, 0, 0, 0, 0, 0, 0, 0}, occ, res)
	if res.Size != 1 {
		t.Fatalf("fallback failed: size %d", res.Size)
	}
	if err := Validate(conv, []int{1, 0, 0, 0, 0, 0, 0, 0}, occ, res); err != nil {
		t.Fatal(err)
	}
}

func TestMultiBreakFullRingFastPath(t *testing.T) {
	conv := circular(5, 2, 2)
	mb, err := NewMultiBreak(conv, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(5)
	mb.Schedule([]int{5, 0, 0, 0, 0}, nil, res)
	if res.Size != 5 {
		t.Fatalf("size %d, want 5", res.Size)
	}
}
