package core

import (
	"runtime"
	"sync"

	"wdmsched/internal/wavelength"
)

// ParallelBreakFirstAvailable is the paper's Section IV-B remark realized
// in software: "We can also implement this algorithm in parallel and time
// complexity could be reduced to O(k), but we then need d units of
// hardware." The d candidate breaking edges are independent, so each of d
// workers runs First Available on its own reduced graph concurrently; the
// critical path is one O(k) sweep plus an O(d) reduction.
//
// The "d units of hardware" are persistent: the d worker goroutines start
// lazily on the first Schedule call and then live until Close (or until
// the scheduler is garbage collected — a runtime cleanup stops them as a
// leak backstop). Each Schedule wakes the active workers over buffered
// channels and joins them on a WaitGroup barrier, so the steady-state call
// performs no allocation and spawns no goroutines.
//
// The result is identical — not just equal in size — to the sequential
// BreakFirstAvailable without its early-exit shortcut: among equal-sized
// matchings the candidate whose breaking edge comes first in window order
// wins, the same tie-break the sequential loop applies.
type ParallelBreakFirstAvailable struct {
	conv wavelength.Conversion
	full *FullRange
	best *Result
	mask *masker

	// pool owns the worker goroutines; it is allocated separately from
	// the scheduler so the goroutines never reference the scheduler
	// itself (see pbfaPool).
	pool    *pbfaPool
	started bool
	closed  bool

	// Reused fan-out buffers: the candidate channel per window position
	// and whether that position is active this slot.
	slotU      []int
	slotActive []bool
}

// pbfaWorker is one unit of the paper's "d units of hardware": a breaker
// plus its wake channel and job slot. Job fields are written by Schedule
// before the wake send and read only by the worker; the channel send and
// the barrier Done/Wait provide the happens-before edges both ways.
type pbfaWorker struct {
	br   *breaker
	wake chan struct{}

	// Job for the current Schedule call.
	count    []int
	occupied []bool
	w0, u    int
}

// pbfaPool owns the persistent worker goroutines. It deliberately does not
// reference the scheduler: when a ParallelBreakFirstAvailable becomes
// unreachable without an explicit Close, the runtime cleanup attached to it
// can still fire (the goroutines keep only the pool alive) and stop the
// workers.
type pbfaPool struct {
	workers []*pbfaWorker
	stop    chan struct{}  // closed exactly once on shutdown
	slot    sync.WaitGroup // per-Schedule completion barrier
	done    sync.WaitGroup // worker lifecycle
	off     sync.Once
}

// start spawns one goroutine per worker.
func (p *pbfaPool) start() {
	p.stop = make(chan struct{})
	p.done.Add(len(p.workers))
	for _, w := range p.workers {
		w.wake = make(chan struct{}, 1)
		go p.run(w)
	}
}

// run is the persistent worker loop: wait for a job, break at the assigned
// edge, report completion; exit when stop closes.
func (p *pbfaPool) run(w *pbfaWorker) {
	defer p.done.Done()
	for {
		select {
		case <-p.stop:
			return
		case <-w.wake:
			w.br.scheduleBreakAt(w.count, w.occupied, w.w0, w.u)
			// Drop the job references so an idle pool does not pin the
			// caller's slices (ordered before the barrier release).
			w.count, w.occupied = nil, nil
			p.slot.Done()
		}
	}
}

// shutdown stops the workers and waits for them to exit; idempotent, and a
// no-op for pools that never started.
func (p *pbfaPool) shutdown() {
	p.off.Do(func() {
		if p.stop != nil {
			close(p.stop)
			p.done.Wait()
		}
	})
}

// NewParallelBreakFirstAvailable builds the parallel scheduler; conv must
// be circular. No goroutines start until the first Schedule call.
func NewParallelBreakFirstAvailable(conv wavelength.Conversion) (*ParallelBreakFirstAvailable, error) {
	if conv.IsFullRange() {
		fr, err := NewFullRange(conv)
		if err != nil {
			return nil, err
		}
		return &ParallelBreakFirstAvailable{conv: conv, full: fr, mask: newMasker(conv.K())}, nil
	}
	d := conv.Degree()
	pool := &pbfaPool{}
	for i := 0; i < d; i++ {
		br, err := newBreaker(conv)
		if err != nil {
			return nil, err
		}
		pool.workers = append(pool.workers, &pbfaWorker{br: br})
	}
	s := &ParallelBreakFirstAvailable{conv: conv, best: NewResult(conv.K()), mask: newMasker(conv.K()), pool: pool}
	// Leak backstop for schedulers dropped without Close: the cleanup
	// captures only the pool, so the scheduler stays collectible.
	runtime.AddCleanup(s, func(p *pbfaPool) { p.shutdown() }, pool)
	return s, nil
}

// Name implements Scheduler.
func (s *ParallelBreakFirstAvailable) Name() string { return "parallel-break-first-available" }

// Conversion implements Scheduler.
func (s *ParallelBreakFirstAvailable) Conversion() wavelength.Conversion { return s.conv }

// Close stops the persistent worker goroutines and waits for them to exit.
// It is idempotent; the scheduler must not be used afterwards. Closing a
// scheduler that never scheduled (or a full-range one, which has no
// workers) is a no-op.
func (s *ParallelBreakFirstAvailable) Close() error {
	s.closed = true
	if s.pool != nil {
		s.pool.shutdown()
	}
	return nil
}

// Schedule implements Scheduler. It is itself not safe for concurrent use
// (one instance per output fiber, as with the sequential schedulers); the
// parallelism is internal, across the d persistent breaking workers.
func (s *ParallelBreakFirstAvailable) Schedule(count []int, occupied []bool, res *Result) {
	checkInput(s.conv, count, occupied, res)
	res.Reset()
	if s.full != nil {
		fullRangeInto(s.conv, count, occupied, res)
		return
	}
	w0 := s.pool.workers[0].br.firstMatchable(count, occupied)
	if w0 < 0 {
		return
	}
	if !s.started {
		if s.closed {
			panic("core: ParallelBreakFirstAvailable.Schedule after Close")
		}
		s.pool.start()
		s.started = true
	}
	// Fan the d candidate breaking edges out to the workers, in window
	// order from the minus end (open-coded ring walk: the hot path must
	// not allocate). Window positions with an occupied channel stay idle.
	k := s.conv.K()
	e, d := s.conv.MinusReach(), s.conv.Degree()
	s.slotU = s.slotU[:0]
	s.slotActive = s.slotActive[:0]
	u := ringMod(w0-e, k)
	active := 0
	for i := 0; i < d; i++ {
		ok := occupied == nil || !occupied[u]
		s.slotU = append(s.slotU, u)
		s.slotActive = append(s.slotActive, ok)
		if ok {
			active++
		}
		u++
		if u == k {
			u = 0
		}
	}
	s.pool.slot.Add(active)
	for i := range s.slotU {
		if !s.slotActive[i] {
			continue
		}
		w := s.pool.workers[i]
		w.count, w.occupied, w.w0, w.u = count, occupied, w0, s.slotU[i]
		w.wake <- struct{}{}
	}
	s.pool.slot.Wait()
	// Reduce: first strictly-better candidate in window order wins,
	// matching the sequential tie-break.
	first := true
	for i := range s.slotU {
		if !s.slotActive[i] {
			continue
		}
		cur := s.pool.workers[i].br.cur
		if first || cur.Size > s.best.Size {
			s.best.CopyFrom(cur)
			first = false
		}
	}
	res.CopyFrom(s.best)
}

// ScheduleMasked implements Scheduler: the mask reduction happens on the
// caller's goroutine, then the d persistent workers race over the reduced
// §V occupancy instance exactly as in the maskless path.
func (s *ParallelBreakFirstAvailable) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.mask.finish(res)
}

var _ Scheduler = (*ParallelBreakFirstAvailable)(nil)
