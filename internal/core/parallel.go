package core

import (
	"sync"

	"wdmsched/internal/wavelength"
)

// ParallelBreakFirstAvailable is the paper's Section IV-B remark realized
// in software: "We can also implement this algorithm in parallel and time
// complexity could be reduced to O(k), but we then need d units of
// hardware." The d candidate breaking edges are independent, so each of d
// workers runs First Available on its own reduced graph concurrently; the
// critical path is one O(k) sweep plus an O(d) reduction.
//
// The result is identical — not just equal in size — to the sequential
// BreakFirstAvailable without its early-exit shortcut: among equal-sized
// matchings the candidate whose breaking edge comes first in window order
// wins, the same tie-break the sequential loop applies.
type ParallelBreakFirstAvailable struct {
	conv    wavelength.Conversion
	workers []*breaker // one per window position ("d units of hardware")
	full    *FullRange
	best    *Result

	// Reused fan-out buffers: the candidate channel per window position
	// and whether that position is active this slot.
	slotU      []int
	slotActive []bool
}

// NewParallelBreakFirstAvailable builds the parallel scheduler; conv must
// be circular.
func NewParallelBreakFirstAvailable(conv wavelength.Conversion) (*ParallelBreakFirstAvailable, error) {
	if conv.IsFullRange() {
		fr, err := NewFullRange(conv)
		if err != nil {
			return nil, err
		}
		return &ParallelBreakFirstAvailable{conv: conv, full: fr}, nil
	}
	d := conv.Degree()
	s := &ParallelBreakFirstAvailable{conv: conv, best: NewResult(conv.K())}
	for i := 0; i < d; i++ {
		br, err := newBreaker(conv)
		if err != nil {
			return nil, err
		}
		s.workers = append(s.workers, br)
	}
	return s, nil
}

// Name implements Scheduler.
func (s *ParallelBreakFirstAvailable) Name() string { return "parallel-break-first-available" }

// Conversion implements Scheduler.
func (s *ParallelBreakFirstAvailable) Conversion() wavelength.Conversion { return s.conv }

// Schedule implements Scheduler. It is itself not safe for concurrent use
// (one instance per output fiber, as with the sequential schedulers); the
// parallelism is internal, across the d breaking candidates.
func (s *ParallelBreakFirstAvailable) Schedule(count []int, occupied []bool, res *Result) {
	checkInput(s.conv, count, occupied, res)
	res.Reset()
	if s.full != nil {
		fullRangeInto(s.conv, count, occupied, res)
		return
	}
	w0 := s.workers[0].firstMatchable(count, occupied)
	if w0 < 0 {
		return
	}
	// Fan the d candidate breaking edges out to the workers. Window
	// positions with an occupied channel stay idle.
	s.slotU = s.slotU[:0]
	s.slotActive = s.slotActive[:0]
	s.conv.Adjacency(wavelength.Wavelength(w0)).Each(func(u int) {
		s.slotU = append(s.slotU, u)
		s.slotActive = append(s.slotActive, occupied == nil || !occupied[u])
	})
	var wg sync.WaitGroup
	for i := range s.slotU {
		if !s.slotActive[i] {
			continue
		}
		wg.Add(1)
		go func(i, u int) {
			defer wg.Done()
			s.workers[i].scheduleBreakAt(count, occupied, w0, u)
		}(i, s.slotU[i])
	}
	wg.Wait()
	// Reduce: first strictly-better candidate in window order wins,
	// matching the sequential tie-break.
	first := true
	for i := range s.slotU {
		if !s.slotActive[i] {
			continue
		}
		cur := s.workers[i].cur
		if first || cur.Size > s.best.Size {
			s.best.CopyFrom(cur)
			first = false
		}
	}
	res.CopyFrom(s.best)
}

var _ Scheduler = (*ParallelBreakFirstAvailable)(nil)
