package core

import (
	"strings"
	"testing"

	"wdmsched/internal/wavelength"
)

func circular(k, e, f int) wavelength.Conversion {
	return wavelength.MustNew(wavelength.Circular, k, e, f)
}

func noncircular(k, e, f int) wavelength.Conversion {
	return wavelength.MustNew(wavelength.NonCircular, k, e, f)
}

func TestResultReset(t *testing.T) {
	r := NewResult(3)
	r.ByOutput[1] = 2
	r.Granted[2] = 1
	r.Size = 1
	r.Reset()
	for b := 0; b < 3; b++ {
		if r.ByOutput[b] != Unassigned || r.Granted[b] != 0 {
			t.Fatal("Reset incomplete")
		}
	}
	if r.Size != 0 {
		t.Fatal("Size not reset")
	}
}

func TestResultCopyFrom(t *testing.T) {
	a := NewResult(2)
	a.ByOutput[0] = 1
	a.Granted[1] = 1
	a.Size = 1
	b := NewResult(2)
	b.CopyFrom(a)
	if b.ByOutput[0] != 1 || b.Granted[1] != 1 || b.Size != 1 {
		t.Fatal("CopyFrom incomplete")
	}
	a.ByOutput[0] = 0
	if b.ByOutput[0] != 1 {
		t.Fatal("CopyFrom aliased")
	}
}

func TestConstructorKindChecks(t *testing.T) {
	if _, err := NewFirstAvailable(circular(6, 1, 1)); err == nil {
		t.Fatal("FA must reject circular")
	}
	if _, err := NewBreakFirstAvailable(noncircular(6, 1, 1)); err == nil {
		t.Fatal("BFA must reject non-circular")
	}
	if _, err := NewShortestEdge(noncircular(6, 1, 1)); err == nil {
		t.Fatal("ShortestEdge must reject non-circular")
	}
	if _, err := NewFullRange(circular(6, 1, 1)); err == nil {
		t.Fatal("FullRange must reject limited range")
	}
	if _, err := NewFullRange(circular(5, 2, 2)); err != nil {
		t.Fatal("FullRange must accept circular d=k")
	}
	if _, err := NewDeltaBreak(circular(6, 1, 1), 0); err == nil {
		t.Fatal("delta 0 accepted")
	}
	if _, err := NewDeltaBreak(circular(6, 1, 1), 4); err == nil {
		t.Fatal("delta > d accepted")
	}
}

func TestNewExactDispatch(t *testing.T) {
	cases := []struct {
		conv wavelength.Conversion
		want string
	}{
		{wavelength.MustNew(wavelength.Full, 6, 0, 0), "full-range"},
		{circular(5, 2, 2), "full-range"}, // d = k
		{noncircular(6, 1, 1), "first-available"},
		{circular(6, 1, 1), "break-first-available"},
	}
	for _, tc := range cases {
		s, err := NewExact(tc.conv)
		if err != nil {
			t.Fatalf("%v: %v", tc.conv, err)
		}
		if s.Name() != tc.want {
			t.Fatalf("%v: scheduler %q, want %q", tc.conv, s.Name(), tc.want)
		}
		if s.Conversion() != tc.conv {
			t.Fatalf("%v: Conversion() mismatch", tc.conv)
		}
	}
}

func TestNewByName(t *testing.T) {
	circ := circular(6, 1, 1)
	for _, name := range []string{"exact", "break-first-available", "shortest-edge", "hopcroft-karp", "delta-break(2)"} {
		s, err := NewByName(name, circ)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if name == "delta-break(2)" {
			if db, ok := s.(*DeltaBreak); !ok || db.Delta() != 2 {
				t.Fatalf("%q: wrong scheduler %T", name, s)
			}
		}
	}
	if s, err := NewByName("first-available", noncircular(6, 1, 1)); err != nil || s.Name() != "first-available" {
		t.Fatalf("first-available: %v", err)
	}
	if s, err := NewByName("full-range", wavelength.MustNew(wavelength.Full, 4, 0, 0)); err != nil || s.Name() != "full-range" {
		t.Fatalf("full-range: %v", err)
	}
	if _, err := NewByName("bogus", circ); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := NewByName("first-available", circ); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestSchedulerNames(t *testing.T) {
	circ := circular(6, 1, 1)
	db, _ := NewDeltaBreak(circ, 2)
	if !strings.Contains(db.Name(), "delta-break(2)") {
		t.Fatalf("Name = %q", db.Name())
	}
	if NewBaseline(circ).Name() != "hopcroft-karp" {
		t.Fatal("baseline name")
	}
}

func TestCheckInputPanics(t *testing.T) {
	conv := noncircular(4, 1, 1)
	fa, _ := NewFirstAvailable(conv)
	res := NewResult(4)
	cases := []struct {
		name string
		fn   func()
	}{
		{"short count", func() { fa.Schedule([]int{1, 2}, nil, res) }},
		{"short occupied", func() { fa.Schedule([]int{0, 0, 0, 0}, []bool{true}, res) }},
		{"negative count", func() { fa.Schedule([]int{0, -1, 0, 0}, nil, res) }},
		{"nil result", func() { fa.Schedule([]int{0, 0, 0, 0}, nil, nil) }},
		{"wrong result size", func() { fa.Schedule([]int{0, 0, 0, 0}, nil, NewResult(3)) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	conv := circular(6, 1, 1)
	count := []int{1, 1, 0, 0, 0, 0}
	occ := []bool{false, true, false, false, false, false}

	good := NewResult(6)
	good.ByOutput[0] = 0
	good.Granted[0] = 1
	good.Size = 1
	if err := Validate(conv, count, occ, good); err != nil {
		t.Fatalf("good result rejected: %v", err)
	}

	mutations := []struct {
		name   string
		mutate func(r *Result)
	}{
		{"occupied channel", func(r *Result) { r.ByOutput[1] = 1; r.Granted[1] = 1; r.Size = 2 }},
		{"not convertible", func(r *Result) { r.ByOutput[3] = 0; r.Granted[0] = 2; r.Size = 2 }},
		{"invalid wavelength", func(r *Result) { r.ByOutput[2] = 9 }},
		{"over-grant", func(r *Result) { r.ByOutput[2] = 1; r.ByOutput[0] = 1; r.Granted[1] = 2; r.Granted[0] = 0; r.Size = 2 }},
		{"granted mismatch", func(r *Result) { r.Granted[0] = 0 }},
		{"size mismatch", func(r *Result) { r.Size = 5 }},
	}
	for _, m := range mutations {
		r := NewResult(6)
		r.CopyFrom(good)
		m.mutate(r)
		if err := Validate(conv, count, occ, r); err == nil {
			t.Errorf("%s: violation not detected", m.name)
		}
	}
	if err := Validate(conv, count, occ, NewResult(5)); err == nil {
		t.Error("wrong-size result not detected")
	}
}

func TestTotalRequests(t *testing.T) {
	if TotalRequests([]int{1, 2, 3}) != 6 || TotalRequests(nil) != 0 {
		t.Fatal("TotalRequests mismatch")
	}
}

func TestFullRangeBasics(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Full, 4, 0, 0)
	s, err := NewFullRange(conv)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(4)

	// Fewer requests than channels: grant all.
	s.Schedule([]int{0, 2, 0, 1}, nil, res)
	if res.Size != 3 {
		t.Fatalf("Size = %d, want 3", res.Size)
	}
	if err := Validate(conv, []int{0, 2, 0, 1}, nil, res); err != nil {
		t.Fatal(err)
	}

	// More requests than channels: grant k.
	s.Schedule([]int{3, 3, 3, 3}, nil, res)
	if res.Size != 4 {
		t.Fatalf("Size = %d, want 4", res.Size)
	}

	// Occupancy reduces capacity.
	occ := []bool{true, false, true, false}
	s.Schedule([]int{3, 3, 3, 3}, occ, res)
	if res.Size != 2 {
		t.Fatalf("Size = %d, want 2", res.Size)
	}
	if err := Validate(conv, []int{3, 3, 3, 3}, occ, res); err != nil {
		t.Fatal(err)
	}

	// No requests.
	s.Schedule([]int{0, 0, 0, 0}, nil, res)
	if res.Size != 0 {
		t.Fatalf("Size = %d, want 0", res.Size)
	}
}
