package core

import (
	"math/rand"
	"testing"
)

// TestParallelBFAIdenticalToSequential: the d-worker variant must return
// the same assignment — channel for channel — as the sequential Table 3
// loop, across random instances with and without occupancy.
func TestParallelBFAIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		k := rng.Intn(20) + 2
		e := rng.Intn(k)
		f := rng.Intn(k - e)
		conv := circular(k, e, f)
		seq, err := NewBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallelBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		vec, occ := randomInstance(rng, k, 3, 0.3*float64(trial%2))
		a, b := NewResult(k), NewResult(k)
		seq.Schedule(vec, occ, a)
		par.Schedule(vec, occ, b)
		if a.Size != b.Size {
			t.Fatalf("%v vec=%v occ=%v: sequential %d vs parallel %d", conv, vec, occ, a.Size, b.Size)
		}
		// The tie-break (first best candidate in window order) is shared,
		// so the full assignment — not just the size — must coincide, even
		// though the sequential loop may stop early at the capacity bound:
		// the first bound-reaching candidate is also the first maximum.
		for ch := range a.ByOutput {
			if a.ByOutput[ch] != b.ByOutput[ch] {
				t.Fatalf("%v vec=%v occ=%v: assignment differs at channel %d: %d vs %d",
					conv, vec, occ, ch, a.ByOutput[ch], b.ByOutput[ch])
			}
		}
		if err := Validate(conv, vec, occ, b); err != nil {
			t.Fatalf("%v: %v", conv, err)
		}
	}
}

// TestParallelBFAExhaustiveTieBreak compares full assignments (not just
// sizes) on small universes where the sequential early exit cannot mask a
// tie-break difference: with a single request the bound is hit at the
// first candidate for both variants.
func TestParallelBFAExhaustiveTieBreak(t *testing.T) {
	for k := 2; k <= 5; k++ {
		conv := circular(k, 1, 0)
		seq, err := NewBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallelBreakFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		a, b := NewResult(k), NewResult(k)
		forEachVector(k, 2, func(vec []int) {
			seq.Schedule(vec, nil, a)
			par.Schedule(vec, nil, b)
			if a.Size != b.Size {
				t.Fatalf("k=%d vec=%v: sizes %d vs %d", k, vec, a.Size, b.Size)
			}
		})
	}
}

func TestParallelBFAConstruction(t *testing.T) {
	if _, err := NewParallelBreakFirstAvailable(noncircular(6, 1, 1)); err == nil {
		t.Fatal("non-circular accepted")
	}
	// Full-ring circular degree takes the full-range fast path.
	s, err := NewParallelBreakFirstAvailable(circular(5, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(5)
	s.Schedule([]int{5, 0, 0, 0, 0}, nil, res)
	if res.Size != 5 {
		t.Fatalf("full-ring parallel BFA granted %d, want 5", res.Size)
	}
	if s.Name() == "" || s.Conversion().K() != 5 {
		t.Fatal("metadata missing")
	}
}

func TestParallelBFAOptimalAgainstBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	conv := circular(12, 2, 2)
	par, err := NewParallelBreakFirstAvailable(conv)
	if err != nil {
		t.Fatal(err)
	}
	base := NewBaseline(conv)
	res, want := NewResult(12), NewResult(12)
	for trial := 0; trial < 200; trial++ {
		vec, occ := randomInstance(rng, 12, 3, 0.2)
		par.Schedule(vec, occ, res)
		base.Schedule(vec, occ, want)
		if res.Size != want.Size {
			t.Fatalf("vec=%v occ=%v: parallel %d vs HK %d", vec, occ, res.Size, want.Size)
		}
	}
}

func TestParallelBFAViaName(t *testing.T) {
	s, err := NewByName("parallel-break-first-available", circular(8, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*ParallelBreakFirstAvailable); !ok {
		t.Fatalf("wrong type %T", s)
	}
}

func TestParallelBFAAllOccupied(t *testing.T) {
	conv := circular(6, 1, 1)
	s, _ := NewParallelBreakFirstAvailable(conv)
	res := NewResult(6)
	occ := []bool{true, true, true, true, true, true}
	s.Schedule([]int{1, 1, 1, 1, 1, 1}, occ, res)
	if res.Size != 0 {
		t.Fatalf("granted %d with everything occupied", res.Size)
	}
}

// TestParallelBFACloseIdempotent: Close must stop the persistent workers,
// tolerate repeated calls, and work on schedulers that never scheduled
// (no workers started) or took the full-range fast path (no workers at
// all).
func TestParallelBFACloseIdempotent(t *testing.T) {
	used, _ := NewParallelBreakFirstAvailable(circular(8, 1, 1))
	res := NewResult(8)
	used.Schedule([]int{1, 0, 2, 0, 0, 1, 0, 0}, nil, res)
	if err := used.Close(); err != nil {
		t.Fatal(err)
	}
	if err := used.Close(); err != nil {
		t.Fatal(err)
	}

	idle, _ := NewParallelBreakFirstAvailable(circular(8, 1, 1))
	if err := idle.Close(); err != nil {
		t.Fatal(err)
	}

	full, _ := NewParallelBreakFirstAvailable(circular(5, 2, 2))
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	// The full-range path has no workers and stays usable after Close.
	full.Schedule([]int{5, 0, 0, 0, 0}, nil, NewResult(5))
}

// TestParallelBFAScheduleAfterClosePanics: waking a stopped pool would
// deadlock, so Schedule must fail loudly instead.
func TestParallelBFAScheduleAfterClosePanics(t *testing.T) {
	s, _ := NewParallelBreakFirstAvailable(circular(8, 1, 1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule after Close did not panic")
		}
	}()
	s.Schedule([]int{1, 0, 0, 0, 0, 0, 0, 0}, nil, NewResult(8))
}

// TestParallelBFAScheduleZeroAlloc: with the persistent worker pool, the
// steady-state Schedule call must not allocate — the per-call d-goroutine
// churn was the defect this design removes.
func TestParallelBFAScheduleZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := circular(32, 2, 2)
	s, err := NewParallelBreakFirstAvailable(conv)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	vec, occ := randomInstance(rng, 32, 3, 0.3)
	res := NewResult(32)
	for i := 0; i < 10; i++ { // start workers, grow scratch
		s.Schedule(vec, occ, res)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.Schedule(vec, occ, res)
	}); allocs != 0 {
		t.Errorf("steady-state Schedule allocates %v per call, want 0", allocs)
	}
}

func TestParallelBFAReuse(t *testing.T) {
	conv := circular(8, 1, 1)
	s, _ := NewParallelBreakFirstAvailable(conv)
	vec := []int{2, 0, 1, 3, 0, 0, 1, 2}
	r1, r2 := NewResult(8), NewResult(8)
	s.Schedule(vec, nil, r1)
	s.Schedule([]int{0, 0, 0, 0, 0, 0, 0, 0}, nil, r2)
	s.Schedule(vec, nil, r2)
	if r1.Size != r2.Size {
		t.Fatalf("reuse changed result: %d vs %d", r1.Size, r2.Size)
	}
}
