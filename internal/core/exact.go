package core

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// NewExact returns the paper's exact scheduler for the given conversion
// model: FullRange for full range conversion (including circular models
// whose degree spans the ring), FirstAvailable for non-circular
// symmetrical conversion, BreakFirstAvailable for circular symmetrical
// conversion.
func NewExact(conv wavelength.Conversion) (Scheduler, error) {
	switch {
	case conv.IsFullRange():
		return NewFullRange(conv)
	case conv.Kind() == wavelength.NonCircular:
		return NewFirstAvailable(conv)
	case conv.Kind() == wavelength.Circular:
		return NewBreakFirstAvailable(conv)
	default:
		return nil, fmt.Errorf("core: no exact scheduler for %v", conv)
	}
}

// NewByName constructs a scheduler by its flag/table name. Recognized
// names: "exact" (dispatch by conversion kind), "fast" (the word-parallel
// kernels, dispatched by conversion kind), "first-available",
// "fast-first-available", "break-first-available",
// "fast-break-first-available", "parallel-break-first-available",
// "shortest-edge", "delta-break(<δ>)" via NewDeltaBreak, "full-range",
// and "hopcroft-karp" (the baseline).
func NewByName(name string, conv wavelength.Conversion) (Scheduler, error) {
	switch name {
	case "exact":
		return NewExact(conv)
	case "fast":
		return NewFastExact(conv)
	case "first-available":
		return NewFirstAvailable(conv)
	case "fast-first-available":
		return NewFastFirstAvailable(conv)
	case "break-first-available":
		return NewBreakFirstAvailable(conv)
	case "fast-break-first-available":
		return NewFastBFA(conv)
	case "parallel-break-first-available":
		return NewParallelBreakFirstAvailable(conv)
	case "shortest-edge":
		return NewShortestEdge(conv)
	case "full-range":
		return NewFullRange(conv)
	case "hopcroft-karp":
		return NewBaseline(conv), nil
	}
	var delta int
	if n, err := fmt.Sscanf(name, "delta-break(%d)", &delta); err == nil && n == 1 {
		return NewDeltaBreak(conv, delta)
	}
	return nil, fmt.Errorf("core: unknown scheduler %q", name)
}
