package core

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// FirstAvailable is the paper's First Available Algorithm (Table 2): an
// O(k) exact maximum-matching scheduler for non-circular symmetrical
// wavelength conversion, where the request graph is convex (Section III).
//
// For each output channel b in ascending order, it grants the first input
// wavelength — smallest index, matching the paper's left-vertex order —
// that still has an ungranted request and can convert to b. Theorem 1
// proves this specialization of Glover's algorithm is optimal because in
// wavelength order both interval endpoints BEGIN and END are monotone, so
// the first adjacent vertex is also a minimum-END vertex.
//
// Requests on the same wavelength are interchangeable for matching
// cardinality, so the scheduler works on per-wavelength counts; expanding
// count grants into concrete requests (with round-robin or random
// tie-break, as the paper suggests citing iSLIP/PIM) is the fairness
// layer's job.
type FirstAvailable struct {
	conv      wavelength.Conversion
	remaining []int
	mask      *masker
}

// NewFirstAvailable builds a First Available scheduler for conv, which must
// be non-circular symmetrical (use BreakFirstAvailable for circular and
// FullRange for full range conversion).
func NewFirstAvailable(conv wavelength.Conversion) (*FirstAvailable, error) {
	if conv.Kind() != wavelength.NonCircular {
		return nil, fmt.Errorf("core: FirstAvailable requires non-circular conversion, have %v", conv.Kind())
	}
	return &FirstAvailable{conv: conv, remaining: make([]int, conv.K()), mask: newMasker(conv.K())}, nil
}

// Name implements Scheduler.
func (s *FirstAvailable) Name() string { return "first-available" }

// Conversion implements Scheduler.
func (s *FirstAvailable) Conversion() wavelength.Conversion { return s.conv }

// Schedule implements Scheduler in O(k): one ascending sweep over output
// channels with a single monotone wavelength pointer.
func (s *FirstAvailable) Schedule(count []int, occupied []bool, res *Result) {
	checkInput(s.conv, count, occupied, res)
	res.Reset()
	k := s.conv.K()
	e, f := s.conv.MinusReach(), s.conv.PlusReach()
	copy(s.remaining, count)

	// Output channel b is reachable from input wavelengths
	// [b−f, b+e] ∩ [0, k−1]: the inverse of the clamped conversion window.
	w := 0 // first candidate wavelength, monotone over the sweep
	for b := 0; b < k; b++ {
		if occupied != nil && occupied[b] {
			continue
		}
		lo := b - f
		if lo < 0 {
			lo = 0
		}
		hi := b + e
		if hi > k-1 {
			hi = k - 1
		}
		if w < lo {
			// Wavelengths below lo cannot reach b nor any later channel:
			// their END has passed.
			w = lo
		}
		for w <= hi && s.remaining[w] == 0 {
			w++
		}
		if w > hi {
			continue // no request can reach this channel
		}
		s.remaining[w]--
		res.ByOutput[b] = w
		res.Granted[w]++
		res.Size++
	}
}

// ScheduleMasked implements Scheduler: converter-failed channels are
// pre-granted their own wavelength and degraded channels join the §V
// occupancy, after which the graph stays convex and the O(k) sweep stays
// exact (Theorem 1 on the reduced graph).
func (s *FirstAvailable) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.mask.finish(res)
}

var _ Scheduler = (*FirstAvailable)(nil)
