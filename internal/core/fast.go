package core

import (
	"fmt"
	"math/bits"

	"wdmsched/internal/fabric"
	"wdmsched/internal/wavelength"
)

// Word-parallel kernels for the paper's exact schedulers.
//
// FastFirstAvailable and FastBFA are drop-in replacements for
// FirstAvailable and BreakFirstAvailable that keep the per-slot state —
// which wavelengths still have ungranted requests, which output channels
// are free — as packed uint64 words (fabric.BitVector) instead of []int /
// []bool slices. The scalar schedulers remain the reference
// implementations; the kernels must produce byte-identical Results, which
// the differential fuzzers in fuzz_test.go enforce.
//
// What becomes word-parallel:
//
//   - FA's inner loop "advance w past exhausted wavelengths, then test
//     w ≤ hi" is a single NextSet call: TrailingZeros64 over the masked
//     window of the nonzero-wavelength bitset.
//   - The §V occupancy overlay (and, through masker.apply, the fault
//     mask) is packed once per slot into a free-channel bitset; skipping
//     occupied channels is NextSet over that set instead of a per-channel
//     branch.
//   - BFA evaluates each of its d candidate breaking edges on one shared
//     rotation of the request vector (the nonzero wavelengths in ring
//     order from w0, with their ring offsets, built once per slot) instead
//     of re-walking all k wavelengths per candidate, and sizes the reduced
//     First Available sweep by rank/select over a rotated free-channel
//     bitset — a few words per bucket rather than O(k) channels. The
//     Section IV-A reduced intervals are resolved with offset additions
//     only (no ring divisions on the candidate path), and only the winning
//     candidate is materialized, by re-walking its buckets and emitting
//     exactly the positions the sizing pass counted — the same positions
//     the scalar reduced sweep grants, so the assignment matches
//     BreakFirstAvailable bit for bit.

// packPositive overwrites dst so bit w is set iff count[w] > 0.
// len(count) must equal dst.Len().
func packPositive(dst *fabric.BitVector, count []int) {
	var acc uint64
	wi := 0
	for i, c := range count {
		if c > 0 {
			acc |= 1 << (uint(i) & 63)
		}
		if i&63 == 63 {
			dst.SetWord(wi, acc)
			acc = 0
			wi++
		}
	}
	if len(count)&63 != 0 {
		dst.SetWord(wi, acc)
	}
}

// packFree overwrites dst so bit b is set iff channel b is unoccupied; a
// nil occupied means every channel is free. len(occupied) must equal
// dst.Len() when non-nil.
func packFree(dst *fabric.BitVector, occupied []bool) {
	if occupied == nil {
		dst.Fill()
		return
	}
	var acc uint64
	wi := 0
	for i, o := range occupied {
		if !o {
			acc |= 1 << (uint(i) & 63)
		}
		if i&63 == 63 {
			dst.SetWord(wi, acc)
			acc = 0
			wi++
		}
	}
	if len(occupied)&63 != 0 {
		dst.SetWord(wi, acc)
	}
}

// countSelect returns t = min(limit, popcount of v over [lo, hi]) and the
// position of the t-th set bit in that range (undefined when t == 0).
// 0 ≤ lo ≤ hi < v.Len() and limit ≥ 1 are the caller's responsibility.
func countSelect(v *fabric.BitVector, lo, hi, limit int) (int, int) {
	wlo, whi := lo>>6, hi>>6
	taken, pos := 0, -1
	for wi := wlo; wi <= whi; wi++ {
		w := v.Word(wi)
		if wi == wlo {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == whi {
			w &= ^uint64(0) >> (63 - uint(hi)&63)
		}
		if w == 0 {
			continue
		}
		n := bits.OnesCount64(w)
		if taken+n < limit {
			taken += n
			pos = wi<<6 + 63 - bits.LeadingZeros64(w)
			continue
		}
		// The limit-th set bit is inside this word: clear the bits below it
		// and read its position with TrailingZeros64.
		for need := limit - taken; need > 1; need-- {
			w &= w - 1
		}
		return limit, wi<<6 + bits.TrailingZeros64(w)
	}
	return taken, pos
}

// FastFirstAvailable is the word-parallel First Available kernel: the same
// O(k) sweep as FirstAvailable (Table 2), with the monotone wavelength
// pointer advanced by NextSet over a packed nonzero-wavelength bitset and
// occupied channels skipped by NextSet over a packed free-channel bitset.
type FastFirstAvailable struct {
	conv      wavelength.Conversion
	remaining []int
	nonzero   *fabric.BitVector // wavelengths with ungranted requests
	free      *fabric.BitVector // unoccupied output channels
	mask      *masker
}

// NewFastFirstAvailable builds the kernel; conv must be non-circular
// symmetrical, like NewFirstAvailable.
func NewFastFirstAvailable(conv wavelength.Conversion) (*FastFirstAvailable, error) {
	if conv.Kind() != wavelength.NonCircular {
		return nil, fmt.Errorf("core: FastFirstAvailable requires non-circular conversion, have %v", conv.Kind())
	}
	k := conv.K()
	return &FastFirstAvailable{
		conv:      conv,
		remaining: make([]int, k),
		nonzero:   fabric.NewBitVector(k),
		free:      fabric.NewBitVector(k),
		mask:      newMasker(k),
	}, nil
}

// Name implements Scheduler.
func (s *FastFirstAvailable) Name() string { return "fast-first-available" }

// Conversion implements Scheduler.
func (s *FastFirstAvailable) Conversion() wavelength.Conversion { return s.conv }

// Schedule implements Scheduler. It visits only free channels and only
// nonzero wavelengths; between grants the cost is word skips.
func (s *FastFirstAvailable) Schedule(count []int, occupied []bool, res *Result) {
	checkInput(s.conv, count, occupied, res)
	res.Reset()
	k := s.conv.K()
	e, f := s.conv.MinusReach(), s.conv.PlusReach()
	// One fused pass copies the counts and packs the nonzero set.
	var acc uint64
	wi := 0
	for i, c := range count {
		s.remaining[i] = c
		if c > 0 {
			acc |= 1 << (uint(i) & 63)
		}
		if i&63 == 63 {
			s.nonzero.SetWord(wi, acc)
			acc = 0
			wi++
		}
	}
	if k&63 != 0 {
		s.nonzero.SetWord(wi, acc)
	}
	packFree(s.free, occupied)

	// Channel b is reachable from wavelengths [b−f, b+e] ∩ [0, k−1]. The
	// scan start max(w, lo) is monotone in b, so NextSet lands on exactly
	// the wavelength the scalar pointer would stop at.
	w := 0
	for b := s.free.NextSet(0); b >= 0; b = s.free.NextSet(b + 1) {
		if lo := b - f; w < lo {
			w = lo
		}
		wn := s.nonzero.NextSet(w)
		if wn < 0 {
			break // no pending request can reach this or any later channel
		}
		w = wn
		hi := b + e
		if hi > k-1 {
			hi = k - 1
		}
		if w > hi {
			continue
		}
		s.remaining[w]--
		if s.remaining[w] == 0 {
			s.nonzero.Clear(w)
		}
		res.ByOutput[b] = w
		res.Granted[w]++
		res.Size++
	}
}

// ScheduleMasked implements Scheduler, like FirstAvailable.ScheduleMasked:
// the masker folds faults into the §V occupancy, which Schedule then packs
// into the free-channel words.
func (s *FastFirstAvailable) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.mask.finish(res)
}

var _ Scheduler = (*FastFirstAvailable)(nil)

// FastBFA is the word-parallel Break and First Available kernel: the same
// exact O(dk) algorithm as BreakFirstAvailable (Table 3), with each of the
// d candidate breaking edges sized against a shared rotation of the
// request vector and a rotated free-channel bitset, and only the winner
// materialized through the scalar reduced sweep.
type FastBFA struct {
	br       *breaker
	nonzero  *fabric.BitVector // wavelengths with pending requests
	free     *fabric.BitVector // unoccupied output channels
	rotFree  *fabric.BitVector // free channels in reduced position space
	rotWave  []int             // nonzero wavelengths in ring order from w0
	rotOff   []int             // their ring offsets from w0 (rotOff[0] = 0)
	rotCount []int             // their request counts
}

// NewFastBFA builds the kernel; conv must be circular symmetrical, like
// NewBreakFirstAvailable.
func NewFastBFA(conv wavelength.Conversion) (*FastBFA, error) {
	br, err := newBreaker(conv)
	if err != nil {
		return nil, err
	}
	k := conv.K()
	return &FastBFA{
		br:       br,
		nonzero:  fabric.NewBitVector(k),
		free:     fabric.NewBitVector(k),
		rotFree:  fabric.NewBitVector(k),
		rotWave:  make([]int, 0, k),
		rotOff:   make([]int, 0, k),
		rotCount: make([]int, 0, k),
	}, nil
}

// Name implements Scheduler.
func (s *FastBFA) Name() string { return "fast-break-first-available" }

// Conversion implements Scheduler.
func (s *FastBFA) Conversion() wavelength.Conversion { return s.br.conv }

// firstMatchable is breaker.firstMatchable on the packed state: the window
// walk becomes at most two CountRange calls per nonzero wavelength.
func (s *FastBFA) firstMatchable() int {
	conv := s.br.conv
	k := conv.K()
	e, d := conv.MinusReach(), conv.Degree()
	if d > k {
		d = k
	}
	for w := s.nonzero.NextSet(0); w >= 0; w = s.nonzero.NextSet(w + 1) {
		lo := ringMod(w-e, k)
		if hi := lo + d - 1; hi < k {
			if s.free.CountRange(lo, hi) > 0 {
				return w
			}
		} else if s.free.CountRange(lo, k-1) > 0 || s.free.CountRange(0, hi-k) > 0 {
			return w
		}
	}
	return -1
}

// rotateFree writes the free-channel set rotated into the reduced position
// space of breaking channel u: position p ∈ [0, k−2] is channel
// (u+1+p) mod k. Position k−1 is channel u itself, reserved for the
// breaking edge; bucket ENDs stay below it. Two word-parallel shifted ORs
// cover the wrap.
func (s *FastBFA) rotateFree(u, k int) *fabric.BitVector {
	rot := s.rotFree
	rot.Reset()
	if u+1 <= k-1 {
		s.free.ShiftRangeInto(rot, u+1, k-1, -(u + 1))
	}
	s.free.ShiftRangeInto(rot, 0, u, k-1-u)
	return rot
}

// bucketRange resolves the Section IV-A reduced adjacency interval of the
// bucket at ring offset o from w0, for the candidate with loop index i
// (breaking channel u ≡ w0−e+i mod k), as reduced positions [pb, pe]. With
// the reduction p(x) = (x−u−1) mod k the scalar scheduleBreakAt cases
// collapse to offset additions — no ring division:
//
//	o ∈ [1, i]        (plus side, [ur+1, w+f])   → [0, o+d−2−i]
//	o ∈ [k−d+1+i, k−1] (minus side, [w−e, ur−1]) → [o−i−1, k−2]
//	otherwise          (untouched, [w−e, w+f])   → [o−i−1, o+d−2−i]
//
// All three are provably within [0, k−2] for non-full-range conversion
// (d ≤ k−1), and never empty, matching exactly what the scalar push keeps.
func bucketRange(o, i, d, k int) (int, int) {
	if o <= i {
		return 0, o + d - 2 - i
	}
	pb := o - i - 1
	if o >= k-d+1+i {
		return pb, k - 2
	}
	return pb, o + d - 2 - i
}

// evalBreakAt returns the matching size (breaking edge included) that
// scheduleBreakAt(count, occupied, w0, u) would produce, without
// materializing the assignment; i is the candidate's index in the loop of
// Table 3, so u ≡ w0−e+i (mod k). It walks the precomputed
// nonzero-wavelength rotation and sizes each bucket of the reduced convex
// graph by rank/select over the rotated free-channel words.
//
// The greedy here is bucket-driven where the scalar sweep is
// channel-driven, but the two agree: buckets open in index order behind a
// prefix-max effective BEGIN (the scalar tail pointer), and within the
// open window the scalar head pointer grants strictly in bucket order, so
// bucket j's grants are exactly the first min(count, available) free
// positions at or after max(effective BEGIN, previous bucket's last
// grant + 1), capped at its END.
func (s *FastBFA) evalBreakAt(u, i int) int {
	conv := s.br.conv
	k, d := conv.K(), conv.Degree()
	rot := s.rotateFree(u, k)

	size := 1 // the breaking edge a_i→b_u
	cursor := 0
	// The leftover w0 requests form the first bucket, [0, d−2−i]; it is
	// empty exactly when i = d−1 (the scalar push's hi < lo case).
	if c := s.rotCount[0] - 1; c > 0 && i < d-1 {
		if t, pos := countSelect(rot, 0, d-2-i, c); t > 0 {
			size += t
			cursor = pos + 1
		}
	}
	runBegin := 0
	for j := 1; j < len(s.rotOff); j++ {
		pb, pe := bucketRange(s.rotOff[j], i, d, k)
		if pb > runBegin {
			runBegin = pb // buckets open in index order (scalar tail pointer)
		}
		x := cursor
		if runBegin > x {
			x = runBegin
		}
		if pe < x {
			continue
		}
		t, pos := countSelect(rot, x, pe, s.rotCount[j])
		if t == 0 {
			continue
		}
		size += t
		cursor = pos + 1
	}
	return size
}

// take grants up to limit free positions of rot in [lo, hi] to wavelength
// w — the emission twin of countSelect: it visits the identical positions
// and writes each one's channel (u+1+p, folded around the ring) into res.
func take(rot *fabric.BitVector, lo, hi, limit, w, u, k int, res *Result) (int, int) {
	wlo, whi := lo>>6, hi>>6
	taken, pos := 0, -1
	for wi := wlo; wi <= whi; wi++ {
		word := rot.Word(wi)
		if wi == wlo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == whi {
			word &= ^uint64(0) >> (63 - uint(hi)&63)
		}
		for word != 0 {
			p := wi<<6 + bits.TrailingZeros64(word)
			b := u + 1 + p
			if b >= k {
				b -= k
			}
			res.ByOutput[b] = w
			res.Granted[w]++
			res.Size++
			taken++
			pos = p
			if taken == limit {
				return taken, pos
			}
			word &= word - 1
		}
	}
	return taken, pos
}

// emitBreakAt materializes the winning candidate's assignment into res:
// the same bucket walk as evalBreakAt with counting replaced by emission,
// plus the breaking edge. The positions granted are exactly the ones the
// sizing pass counted — the positions the scalar reduced sweep grants — so
// the emitted Result matches BreakFirstAvailable's bit for bit.
func (s *FastBFA) emitBreakAt(w0, u, i int, res *Result) {
	conv := s.br.conv
	k, d := conv.K(), conv.Degree()
	rot := s.rotateFree(u, k)

	cursor := 0
	if c := s.rotCount[0] - 1; c > 0 && i < d-1 {
		if t, pos := take(rot, 0, d-2-i, c, w0, u, k, res); t > 0 {
			cursor = pos + 1
		}
	}
	runBegin := 0
	for j := 1; j < len(s.rotOff); j++ {
		pb, pe := bucketRange(s.rotOff[j], i, d, k)
		if pb > runBegin {
			runBegin = pb
		}
		x := cursor
		if runBegin > x {
			x = runBegin
		}
		if pe < x {
			continue
		}
		t, pos := take(rot, x, pe, s.rotCount[j], s.rotWave[j], u, k, res)
		if t == 0 {
			continue
		}
		cursor = pos + 1
	}
	res.ByOutput[u] = w0
	res.Granted[w0]++
	res.Size++
	res.BreakChannel = u
}

// Schedule implements Scheduler.
func (s *FastBFA) Schedule(count []int, occupied []bool, res *Result) {
	conv := s.br.conv
	checkInput(conv, count, occupied, res)
	res.Reset()
	if conv.IsFullRange() {
		fullRangeInto(conv, count, occupied, res)
		return
	}
	k := conv.K()
	packPositive(s.nonzero, count)
	packFree(s.free, occupied)

	w0 := s.firstMatchable()
	if w0 < 0 {
		return
	}
	avail := s.free.Count()
	bound := TotalRequests(count)
	if avail < bound {
		bound = avail
	}

	// One rotation of the request vector, reused across all d candidate
	// breaking edges: the nonzero wavelengths in ring order from w0, with
	// their ring offsets (rotOff[0] = 0 for w0 itself).
	s.rotWave = s.rotWave[:0]
	s.rotOff = s.rotOff[:0]
	s.rotCount = s.rotCount[:0]
	for w := w0; w >= 0; w = s.nonzero.NextSet(w + 1) {
		s.rotWave = append(s.rotWave, w)
		s.rotOff = append(s.rotOff, w-w0)
		s.rotCount = append(s.rotCount, count[w])
	}
	for w := s.nonzero.NextSet(0); w >= 0 && w < w0; w = s.nonzero.NextSet(w + 1) {
		s.rotWave = append(s.rotWave, w)
		s.rotOff = append(s.rotOff, w-w0+k)
		s.rotCount = append(s.rotCount, count[w])
	}

	// Candidate loop of Table 3, sized without materializing; identical
	// order, tie-break (strictly-larger keeps the first winner) and bound
	// early-exit as the scalar scheduler.
	first := true
	bestU, bestI, bestSize := -1, -1, -1
	e, d := conv.MinusReach(), conv.Degree()
	u := ringMod(w0-e, k)
	for i := 0; i < d; i++ {
		if s.free.Get(u) {
			sz := s.evalBreakAt(u, i)
			if first || sz > bestSize {
				bestU, bestI, bestSize = u, i, sz
				first = false
			}
			if bestSize >= bound {
				break
			}
		}
		u++
		if u == k {
			u = 0
		}
	}
	// Materialize only the winner.
	s.emitBreakAt(w0, bestU, bestI, res)
}

// ScheduleMasked implements Scheduler, like
// BreakFirstAvailable.ScheduleMasked.
func (s *FastBFA) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.br.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.br.mask.finish(res)
}

var _ Scheduler = (*FastBFA)(nil)

// NewFastExact returns the word-parallel exact scheduler for conv,
// mirroring NewExact's dispatch: FullRange conversion has no kernel (its
// scheduling is already trivial), non-circular gets FastFirstAvailable,
// circular gets FastBFA.
func NewFastExact(conv wavelength.Conversion) (Scheduler, error) {
	switch {
	case conv.IsFullRange():
		return NewFullRange(conv)
	case conv.Kind() == wavelength.NonCircular:
		return NewFastFirstAvailable(conv)
	case conv.Kind() == wavelength.Circular:
		return NewFastBFA(conv)
	default:
		return nil, fmt.Errorf("core: no fast scheduler for %v", conv)
	}
}
