package core

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// FullRange is the trivial exact scheduler for full range wavelength
// conversion (paper Section I): every request can reach every channel, so
// requests are indistinguishable in the wavelength domain — if no more than
// the number of available channels arrived, grant all; otherwise grant any
// channel-count-sized subset.
type FullRange struct {
	conv      wavelength.Conversion
	remaining []int
	mask      *masker
}

// NewFullRange builds the scheduler. conv must be full range: either Kind
// Full, or a circular model whose degree spans the whole ring.
func NewFullRange(conv wavelength.Conversion) (*FullRange, error) {
	if !conv.IsFullRange() {
		return nil, fmt.Errorf("core: FullRange requires full range conversion, have %v", conv)
	}
	return &FullRange{conv: conv, remaining: make([]int, conv.K()), mask: newMasker(conv.K())}, nil
}

// Name implements Scheduler.
func (s *FullRange) Name() string { return "full-range" }

// Conversion implements Scheduler.
func (s *FullRange) Conversion() wavelength.Conversion { return s.conv }

// Schedule implements Scheduler.
func (s *FullRange) Schedule(count []int, occupied []bool, res *Result) {
	checkInput(s.conv, count, occupied, res)
	res.Reset()
	fullRangeInto(s.conv, count, occupied, res)
}

// ScheduleMasked implements Scheduler. Under faults a "full range" fiber
// is no longer interchangeable — converter-failed channels accept only
// their own wavelength — but the pre-grant reduction keeps the residual
// instance trivial: any wavelength fits any remaining healthy channel.
func (s *FullRange) ScheduleMasked(count []int, occupied []bool, mask ChannelMask, res *Result) {
	cnt, occ := s.mask.apply(count, occupied, mask)
	s.Schedule(cnt, occ, res)
	s.mask.finish(res)
}

// fullRangeInto fills res by assigning pending wavelengths (ascending) to
// available channels (ascending). res must be freshly Reset.
func fullRangeInto(conv wavelength.Conversion, count []int, occupied []bool, res *Result) {
	k := conv.K()
	w := 0
	remaining := 0
	if k > 0 {
		remaining = count[0]
	}
	for b := 0; b < k; b++ {
		if occupied != nil && occupied[b] {
			continue
		}
		for w < k && remaining == 0 {
			w++
			if w < k {
				remaining = count[w]
			}
		}
		if w == k {
			return
		}
		remaining--
		res.ByOutput[b] = w
		res.Granted[w]++
		res.Size++
	}
}

var _ Scheduler = (*FullRange)(nil)
