package flagcheck

import (
	"bytes"
	"flag"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Int("n", 8, "fibers per side")
	fs.Float64("load", 0.8, "offered load per channel, fraction in [0,1]")
	fs.Duration("time", 25*time.Millisecond, "wall-clock budget as a duration")
	fs.Bool("quiet", false, "suppress output")
	fs.String("kind", "circular", "conversion kind: circular, noncircular, full")
	fs.PrintDefaults()

	flags := Parse(buf.String())
	if len(flags) != 5 {
		t.Fatalf("parsed %d flags, want 5: %+v", len(flags), flags)
	}
	if f := flags["n"]; f.Type != "int" || f.Default != "8" || f.Usage != "fibers per side" {
		t.Errorf("n = %+v", f)
	}
	if f := flags["load"]; f.Default != "0.8" {
		t.Errorf("load = %+v", f)
	}
	if f := flags["time"]; f.Type != "duration" || f.Default != "25ms" {
		t.Errorf("time = %+v", f)
	}
	if f := flags["quiet"]; f.Type != "" || f.Default != "" {
		t.Errorf("quiet = %+v", f)
	}
	if f := flags["kind"]; f.Default != `"circular"` {
		t.Errorf("kind = %+v", f)
	}
}

func TestNamesUnit(t *testing.T) {
	for _, ok := range []string{
		"slots to simulate",
		"mean holding time in slots",
		"cluster RPC deadline as a duration",
		"offered load, fraction in [0,1]",
		"per-slot converter failure probability",
		"P[cluster frame dropped]",
		"aggregate offered load in requests/s",
	} {
		if !NamesUnit(ok) {
			t.Errorf("%q should name a unit", ok)
		}
	}
	for _, bad := range []string{
		"the load",
		"how long to wait",
	} {
		if NamesUnit(bad) {
			t.Errorf("%q should not count as naming a unit", bad)
		}
	}
}
