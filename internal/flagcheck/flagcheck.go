// Package flagcheck parses the help text a flag.FlagSet prints so CLI
// tests can pin their flag sets golden-style: names, defaults and usage
// strings are asserted against what -h actually shows the user, catching
// drift between the documentation and the registered flags.
package flagcheck

import (
	"strings"
)

// Flag is one entry parsed from a flag.PrintDefaults dump.
type Flag struct {
	Name    string // without the leading dash
	Type    string // "int", "string", "duration", ... ("" for booleans)
	Usage   string // usage text with the "(default X)" suffix stripped
	Default string // the X from "(default X)", or ""
}

// Parse reads the output of flag.FlagSet.PrintDefaults (as produced by
// -h) and returns the flags keyed by name. The expected shape is
//
//	-name type
//	  	usage text (default X)
//
// with booleans omitting the type token and long usage texts possibly
// spanning several indented lines.
func Parse(help string) map[string]Flag {
	flags := make(map[string]Flag)
	var cur *Flag
	flush := func() {
		if cur == nil {
			return
		}
		cur.Usage = strings.TrimSpace(cur.Usage)
		if i := strings.LastIndex(cur.Usage, "(default "); i >= 0 && strings.HasSuffix(cur.Usage, ")") {
			cur.Default = cur.Usage[i+len("(default ") : len(cur.Usage)-1]
			cur.Usage = strings.TrimSpace(cur.Usage[:i])
		}
		flags[cur.Name] = *cur
		cur = nil
	}
	for _, line := range strings.Split(help, "\n") {
		if name, ok := strings.CutPrefix(line, "  -"); ok && !strings.HasPrefix(line, "   ") {
			flush()
			f := Flag{}
			if sp := strings.IndexByte(name, ' '); sp >= 0 {
				f.Name, f.Type = name[:sp], name[sp+1:]
			} else {
				f.Name = name
			}
			cur = &f
			continue
		}
		if cur != nil && strings.TrimSpace(line) != "" {
			if cur.Usage != "" {
				cur.Usage += " "
			}
			cur.Usage += strings.TrimSpace(line)
		}
	}
	flush()
	return flags
}

// unitWords are the tokens that count as naming a unit or scale in a
// usage string. A flag carrying a quantity should mention one of these
// so the operator never guesses slots vs milliseconds vs fractions.
var unitWords = []string{
	"slot", "slots", "ms", "duration", "second", "seconds", "s)", "/s",
	"fraction", "probability", "p[", "count", "erlang", "requests",
	"channels", "fibers", "wavelength", "units", "bytes", "dimensionless",
	"index", "exponent",
}

// NamesUnit reports whether the usage string names a unit or scale.
func NamesUnit(usage string) bool {
	u := strings.ToLower(usage)
	for _, w := range unitWords {
		if strings.Contains(u, w) {
			return true
		}
	}
	return false
}
