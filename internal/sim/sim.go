// Package sim is the experiment harness: it regenerates every table and
// figure of the reproduction as defined in DESIGN.md's experiment index.
// Experiments P1–P9 reproduce the paper's own artifacts (figures, theorems,
// complexity claims); S1–S5 are the simulation studies the paper's
// introduction and Section IV-C motivate. Each experiment renders one or
// more metrics.Table values that cmd/wdmbench prints as ASCII or CSV, and
// EXPERIMENTS.md records paper-claim vs measured outcome per experiment.
package sim

import (
	"fmt"
	"sort"

	"wdmsched/internal/metrics"
)

// RunConfig tunes experiment cost. The zero value is replaced by Defaults.
type RunConfig struct {
	// Slots is the simulation length per data point.
	Slots int
	// Trials is the number of random instances per algorithmic data
	// point.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks sweeps for use in tests.
	Quick bool
}

// Defaults fills unset fields.
func (c RunConfig) Defaults() RunConfig {
	if c.Slots == 0 {
		c.Slots = 2000
		if c.Quick {
			c.Slots = 200
		}
	}
	if c.Trials == 0 {
		c.Trials = 2000
		if c.Quick {
			c.Trials = 100
		}
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID is the experiment key (P1…P9, S1…S5) from DESIGN.md.
	ID string
	// Title describes the paper artifact being regenerated.
	Title string
	// Run produces the experiment's tables.
	Run func(cfg RunConfig) ([]*metrics.Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("sim: duplicate experiment %s", e.ID))
	}
	registry[e.ID] = e
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID (P* before S*).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}
