package sim

import (
	"fmt"

	"wdmsched/internal/fault"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/metrics"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

func init() {
	register(Experiment{
		ID:    "S13",
		Title: "Fault injection — throughput degradation vs converter failure probability",
		Run:   runS13,
	})
}

// faultProbs is the converter-failure sweep: per-slot fail probabilities,
// each paired with repair probability faultRepair. The points are spaced an
// order of magnitude apart so the throughput ordering is robust at quick
// test sizes.
var faultProbs = []float64{0, 0.01, 0.05, 0.2}

const faultRepair = 0.1

// runS13 sweeps converter failure probability across conversion degrees: as
// converters break, a degree-d channel degenerates toward d=1 (no
// conversion), so limited-range conversion should degrade gracefully — and
// d=1 should be immune, since it never converts in the first place. Every
// point uses the same traffic seed, isolating the fault schedule as the
// only varying factor.
func runS13(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	n, k := simShape(cfg)
	const load = 0.9
	type variant struct {
		name string
		conv wavelength.Conversion
	}
	mk := func(d int) wavelength.Conversion {
		e := (d - 1) / 2
		c, err := wavelength.New(wavelength.Circular, k, e, e)
		if err != nil {
			panic(err)
		}
		return c
	}
	variants := []variant{
		{"d=1 (none)", mk(1)},
		{"d=3 circ", mk(3)},
		{"d=5 circ", mk(5)},
		{"full", wavelength.MustNew(wavelength.Full, k, 0, 0)},
	}
	thruSeries := make([]*metrics.Series, len(variants))
	degraded := &metrics.Series{Name: "degraded-state", XLabel: "p_fail"}
	lost := &metrics.Series{Name: "lost+killed per 1k slots", XLabel: "p_fail"}
	for vi, v := range variants {
		thruSeries[vi] = &metrics.Series{Name: v.name, XLabel: "p_fail"}
		for _, p := range faultProbs {
			var inj fault.Injector
			if p > 0 {
				m, err := fault.NewMarkov(fault.MarkovConfig{
					N: n, K: k, Seed: cfg.Seed + 0xfa17,
					ConverterFail: p, ConverterRepair: faultRepair,
				})
				if err != nil {
					return nil, err
				}
				inj = m
			}
			gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: cfg.Seed + uint64(vi)}, load)
			if err != nil {
				return nil, err
			}
			sw, err := interconnect.New(interconnect.Config{N: n, Conv: v.conv, Seed: cfg.Seed, Faults: inj})
			if err != nil {
				return nil, err
			}
			st, err := sw.Run(gen, cfg.Slots)
			if err != nil {
				return nil, err
			}
			thruSeries[vi].Add(p, st.Throughput(n, k))
			// Degraded-state detail for the middle degree only: one line
			// per sweep point keeps the table readable.
			if v.name == "d=3 circ" && st.Fault != nil {
				degraded.Add(p, st.Fault.DegradedFraction(st.Slots))
				lost.Add(p, 1000*float64(st.Fault.LostGrants.Value()+st.Fault.KilledConnections.Value())/float64(st.Slots))
			}
		}
	}
	thruT, err := metrics.SeriesTable(
		fmt.Sprintf("S13a — normalized throughput vs converter failure probability (N=%d, k=%d, load %.1f, repair %.1f)",
			n, k, load, faultRepair),
		thruSeries...)
	if err != nil {
		return nil, err
	}
	thruT.AddNote("graceful degradation: throughput is monotone non-increasing in failure probability")
	thruT.AddNote("d=1 never converts, so converter failures cannot cost it grants")
	degT, err := metrics.SeriesTable(
		fmt.Sprintf("S13b — degraded-mode exposure at d=3 (N=%d, k=%d)", n, k),
		degraded, lost)
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{thruT, degT}, nil
}
