package sim

import (
	"fmt"

	"wdmsched/internal/analysis"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/metrics"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

func init() {
	register(Experiment{
		ID:    "S14",
		Title: "Open-shop bulk transfers — makespan vs the open-shop lower bound",
		Run:   runS14,
	})
}

// runS14 drains bulk-transfer demand matrices through the switch and
// measures the makespan against the open-shop lower bound
// ⌈max(max row sum, max col sum)/k⌉ (PAPERS.md: Aslanidis & Birmpilis).
// Per-slot-optimal matchings are a greedy open-shop heuristic — each slot
// is one "round" of unit operations — so the ratio to the bound is the
// price of slot-by-slot scheduling, swept across conversion degrees
// (conversion is what lets a unit move to any free channel of its output
// fiber) and schedulers (exact matchings vs the shortest-edge
// approximation vs the Hopcroft–Karp baseline). The word-parallel kernels
// must reproduce the scalar makespan exactly on every instance.
func runS14(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	n, k := simShape(cfg)
	umult := 40
	if cfg.Quick {
		umult = 10
	}
	total := n * k * umult

	demands := []struct {
		name string
		d    [][]int
	}{
		{"uniform", traffic.RandomDemand(n, total, cfg.Seed+0xb5)},
		{"hot-row", hotRowDemand(n, total, cfg.Seed+0xb6)},
	}
	mk := func(d int) wavelength.Conversion {
		e := (d - 1) / 2
		return wavelength.MustNew(wavelength.Circular, k, e, e)
	}
	convs := []struct {
		name string
		conv wavelength.Conversion
	}{
		{"d=1 (none)", mk(1)},
		{"d=3 circ", mk(3)},
		{"full", wavelength.MustNew(wavelength.Full, k, 0, 0)},
	}
	schedulers := []string{"exact", "shortest-edge", "hopcroft-karp"}

	runOne := func(sched string, conv wavelength.Conversion, demand [][]int) (int, error) {
		bulk, err := traffic.NewBulkTransfer(traffic.Config{N: n, K: k, Seed: cfg.Seed}, demand)
		if err != nil {
			return 0, err
		}
		sw, err := interconnect.New(interconnect.Config{N: n, Conv: conv, Scheduler: sched, Seed: cfg.Seed})
		if err != nil {
			return 0, err
		}
		makespan, _, err := interconnect.RunBulk(sw, bulk, 4*total+1000)
		return makespan, err
	}

	t := metrics.NewTable(
		fmt.Sprintf("S14 — bulk-transfer makespan vs open-shop lower bound (N=%d, k=%d, %d units)", n, k, total),
		"demand", "conversion", "scheduler", "makespan", "LB", "ratio")
	for _, dm := range demands {
		lb, err := analysis.OpenShopMakespanLB(dm.d, k)
		if err != nil {
			return nil, err
		}
		for _, cv := range convs {
			for _, sched := range schedulers {
				// Breaking-based schedulers are defined on circular
				// conversion only; full range keeps exact + the baseline.
				if cv.conv.Kind() == wavelength.Full && sched == "shortest-edge" {
					continue
				}
				makespan, err := runOne(sched, cv.conv, dm.d)
				if err != nil {
					return nil, err
				}
				// The fast kernels are exactness-checked in the regime that
				// matters here: whole-run makespan equality with the scalar
				// exact schedulers on the same instance.
				if sched == "exact" && cv.conv.Kind() != wavelength.Full {
					fastSpan, err := runOne("fast", cv.conv, dm.d)
					if err != nil {
						return nil, err
					}
					if fastSpan != makespan {
						return nil, fmt.Errorf("sim: fast kernel makespan %d != exact %d (%s, %s, %s)",
							fastSpan, makespan, dm.name, cv.name, sched)
					}
				}
				t.AddRowf(dm.name, cv.name, sched, makespan, lb, fmt.Sprintf("%.3f", float64(makespan)/float64(lb)))
			}
		}
	}
	t.AddNote("LB = ⌈max(max row sum, max col sum)/k⌉; ratio 1.000 means the schedule is open-shop optimal")
	t.AddNote("word-parallel \"fast\" kernels verified makespan-identical to \"exact\" on every circular instance")
	return []*metrics.Table{t}, nil
}

// hotRowDemand concentrates half the units on input fiber 0 (a skewed,
// light-trail-style demand shape): its row sum dominates the lower bound,
// so the ratio measures how well a scheduler overlaps the hot row's drain
// with the background load.
func hotRowDemand(n, total int, seed uint64) [][]int {
	rng := traffic.NewRNG(seed)
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
	}
	for t := 0; t < total; t++ {
		in := 0
		if t%2 == 0 {
			in = rng.Intn(n)
		}
		d[in][rng.Intn(n)]++
	}
	return d
}
