package sim

import (
	"fmt"
	"time"

	"wdmsched/internal/interconnect"
	"wdmsched/internal/metrics"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

func init() {
	register(Experiment{
		ID:    "S1",
		Title: "Limited vs full range conversion — throughput and loss vs load",
		Run:   runS1,
	})
	register(Experiment{
		ID:    "S2",
		Title: "Exact (BFA) vs shortest-edge approximation — throughput trade-off",
		Run:   runS2,
	})
	register(Experiment{
		ID:    "S3",
		Title: "Multi-slot connections — loss vs holding time, disturb vs no-disturb",
		Run:   runS3,
	})
	register(Experiment{
		ID:    "S4",
		Title: "Distributed scheduling — slot latency, sequential vs goroutine-per-port",
		Run:   runS4,
	})
	register(Experiment{
		ID:    "S5",
		Title: "Fabric feasibility — every grant routable through the Fig. 1 datapath",
		Run:   runS5,
	})
}

// simShape returns the interconnect shape for the studies.
func simShape(cfg RunConfig) (n, k int) {
	if cfg.Quick {
		return 4, 8
	}
	return 8, 16
}

// runLoss runs one simulation point and returns (loss rate, throughput).
func runLoss(cfg RunConfig, swCfg interconnect.Config, gen traffic.Generator, slots int) (float64, float64, error) {
	sw, err := interconnect.New(swCfg)
	if err != nil {
		return 0, 0, err
	}
	st, err := sw.Run(gen, slots)
	if err != nil {
		return 0, 0, err
	}
	return st.LossRate(), st.Throughput(swCfg.N, swCfg.Conv.K()), nil
}

func runS1(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	n, k := simShape(cfg)
	loads := []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0}
	type variant struct {
		name string
		conv wavelength.Conversion
	}
	mk := func(kind wavelength.Kind, d int) wavelength.Conversion {
		e := (d - 1) / 2
		c, err := wavelength.New(kind, k, e, e)
		if err != nil {
			panic(err)
		}
		return c
	}
	variants := []variant{
		{"d=1 (none)", mk(wavelength.Circular, 1)},
		{"d=3 circ", mk(wavelength.Circular, 3)},
		{"d=5 circ", mk(wavelength.Circular, 5)},
		{"d=3 noncirc", mk(wavelength.NonCircular, 3)},
		{"full", wavelength.MustNew(wavelength.Full, k, 0, 0)},
	}
	lossSeries := make([]*metrics.Series, len(variants))
	thruSeries := make([]*metrics.Series, len(variants))
	for vi, v := range variants {
		lossSeries[vi] = &metrics.Series{Name: v.name, XLabel: "load"}
		thruSeries[vi] = &metrics.Series{Name: v.name, XLabel: "load"}
		for _, load := range loads {
			gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: cfg.Seed + uint64(vi)}, load)
			if err != nil {
				return nil, err
			}
			loss, thru, err := runLoss(cfg, interconnect.Config{N: n, Conv: v.conv, Seed: cfg.Seed}, gen, cfg.Slots)
			if err != nil {
				return nil, err
			}
			lossSeries[vi].Add(load, loss)
			thruSeries[vi].Add(load, thru)
		}
	}
	lossT, err := metrics.SeriesTable(
		fmt.Sprintf("S1a — packet loss rate vs offered load (N=%d, k=%d, uniform Bernoulli)", n, k),
		lossSeries...)
	if err != nil {
		return nil, err
	}
	thruT, err := metrics.SeriesTable(
		fmt.Sprintf("S1b — normalized throughput vs offered load (N=%d, k=%d)", n, k),
		thruSeries...)
	if err != nil {
		return nil, err
	}
	lossT.AddNote("paper §I claim: small-d limited range approaches full range; d=1 is the floor")
	return []*metrics.Table{lossT, thruT}, nil
}

func runS2(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	n, k := simShape(cfg)
	loads := []float64{0.5, 0.8, 1.0}
	var series []*metrics.Series
	for _, d := range []int{3, 5, 7} {
		e := (d - 1) / 2
		conv, err := wavelength.New(wavelength.Circular, k, e, e)
		if err != nil {
			return nil, err
		}
		for _, sched := range []string{"break-first-available", "shortest-edge"} {
			s := &metrics.Series{Name: fmt.Sprintf("d=%d %s", d, sched), XLabel: "load"}
			for _, load := range loads {
				gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: cfg.Seed + uint64(d)}, load)
				if err != nil {
					return nil, err
				}
				loss, _, err := runLoss(cfg, interconnect.Config{
					N: n, Conv: conv, Scheduler: sched, Seed: cfg.Seed,
				}, gen, cfg.Slots)
				if err != nil {
					return nil, err
				}
				s.Add(load, loss)
			}
			series = append(series, s)
		}
	}
	t, err := metrics.SeriesTable(
		fmt.Sprintf("S2 — loss: exact BFA vs shortest-edge single break (N=%d, k=%d)", n, k),
		series...)
	if err != nil {
		return nil, err
	}
	t.AddNote("Theorem 3: per-slot gap ≤ (d−1)/2; aggregate loss difference stays small")
	return []*metrics.Table{t}, nil
}

func runS3(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	n, k := simShape(cfg)
	conv, err := wavelength.New(wavelength.Circular, k, 1, 1)
	if err != nil {
		return nil, err
	}
	var series []*metrics.Series
	for _, disturb := range []bool{false, true} {
		name := "no-disturb"
		if disturb {
			name = "disturb"
		}
		s := &metrics.Series{Name: name, XLabel: "mean holding (slots)"}
		pre := &metrics.Series{Name: name + " preempted/slot", XLabel: "mean holding (slots)"}
		for _, hold := range []float64{1, 2, 4, 8} {
			gen, err := traffic.NewBernoulli(traffic.Config{
				N: n, K: k, Seed: cfg.Seed,
				Hold: traffic.HoldingTime{Mean: hold},
			}, 0.6/hold) // keep carried load roughly constant
			if err != nil {
				return nil, err
			}
			sw, err := interconnect.New(interconnect.Config{N: n, Conv: conv, Seed: cfg.Seed, Disturb: disturb})
			if err != nil {
				return nil, err
			}
			st, err := sw.Run(gen, cfg.Slots)
			if err != nil {
				return nil, err
			}
			s.Add(hold, st.LossRate())
			pre.Add(hold, float64(st.Preempted.Value())/float64(cfg.Slots))
		}
		series = append(series, s, pre)
	}
	t, err := metrics.SeriesTable(
		fmt.Sprintf("S3 — multi-slot connections (N=%d, k=%d, d=3, carried load ≈0.6)", n, k),
		series...)
	if err != nil {
		return nil, err
	}
	t.AddNote("Section V: occupied channels removed from the request graph (no-disturb) or connections reassigned (disturb)")
	return []*metrics.Table{t}, nil
}

func runS4(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	k := 16
	slots := cfg.Slots / 4
	if slots < 50 {
		slots = 50
	}
	conv, err := wavelength.New(wavelength.Circular, k, 1, 1)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("S4 — wall time per slot: sequential vs distributed (k=16, d=3, load 1.0)",
		"N", "sequential µs/slot", "distributed µs/slot")
	sizes := []int{4, 8, 16, 32}
	if cfg.Quick {
		sizes = []int{4, 8}
	}
	for _, n := range sizes {
		row := []float64{}
		for _, distributed := range []bool{false, true} {
			tr, err := traffic.Record(mustBernoulli(traffic.Config{N: n, K: k, Seed: cfg.Seed}, 1.0),
				traffic.Config{N: n, K: k, Seed: cfg.Seed}, slots)
			if err != nil {
				return nil, err
			}
			sw, err := interconnect.New(interconnect.Config{
				N: n, Conv: conv, Seed: cfg.Seed, Distributed: distributed,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := sw.Run(tr.Replay(), slots); err != nil {
				return nil, err
			}
			row = append(row, float64(time.Since(start).Microseconds())/float64(slots))
		}
		t.AddRowf(n, row[0], row[1])
	}
	t.AddNote("per-port schedulers share no state; distributed mode demonstrates the Section I partition argument")
	return []*metrics.Table{t}, nil
}

func mustBernoulli(cfg traffic.Config, load float64) traffic.Generator {
	g, err := traffic.NewBernoulli(cfg, load)
	if err != nil {
		panic(err)
	}
	return g
}

func runS5(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	n, k := simShape(cfg)
	t := metrics.NewTable("S5 — datapath feasibility (ValidateFabric on, every slot routed)",
		"conversion", "scheduler", "selector", "granted", "feasible")
	shapes := []struct {
		kind  wavelength.Kind
		sched string
	}{
		{wavelength.Circular, "break-first-available"},
		{wavelength.Circular, "shortest-edge"},
		{wavelength.NonCircular, "first-available"},
	}
	for _, sh := range shapes {
		conv, err := wavelength.New(sh.kind, k, 1, 1)
		if err != nil {
			return nil, err
		}
		for _, sel := range []string{"round-robin", "random"} {
			gen, err := traffic.NewBernoulli(traffic.Config{
				N: n, K: k, Seed: cfg.Seed,
				Hold: traffic.HoldingTime{Mean: 2},
			}, 0.5)
			if err != nil {
				return nil, err
			}
			sw, err := interconnect.New(interconnect.Config{
				N: n, Conv: conv, Scheduler: sh.sched, Selector: sel,
				Seed: cfg.Seed, ValidateFabric: true,
			})
			if err != nil {
				return nil, err
			}
			st, err := sw.Run(gen, cfg.Slots)
			if err != nil {
				return nil, fmt.Errorf("sim: S5 infeasible routing: %w", err)
			}
			t.AddRowf(sh.kind.String(), sh.sched, sel, st.Granted.Value(), "yes")
		}
	}
	t.AddNote("combiner exclusivity, converter reach and demux unicast hold for every granted slot")
	return []*metrics.Table{t}, nil
}
