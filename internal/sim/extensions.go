package sim

import (
	"fmt"
	"time"

	"wdmsched/internal/analysis"
	"wdmsched/internal/async"
	"wdmsched/internal/core"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/metrics"
	"wdmsched/internal/pathsim"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// Extension experiments beyond the paper's own artifacts: the QoS future
// work it names in Section VI (S6), an ablation of the fair tie-break it
// prescribes in Section III (S7), the parallel O(k) variant it sketches in
// Section IV-B (S9), and a cross-check of the simulator against
// closed-form loss models (S8).

func init() {
	register(Experiment{
		ID:    "S6",
		Title: "QoS extension (paper §VI future work) — strict priority classes",
		Run:   runS6,
	})
	register(Experiment{
		ID:    "S7",
		Title: "Fairness ablation — round-robin vs random vs fixed-priority tie-break",
		Run:   runS7,
	})
	register(Experiment{
		ID:    "S8",
		Title: "Simulator vs closed-form loss models (full range & no conversion exact)",
		Run:   runS8,
	})
	register(Experiment{
		ID:    "S9",
		Title: "Parallel BFA (paper §IV-B remark) — d workers, identical results",
		Run:   runS9,
	})
	register(Experiment{
		ID:    "S10",
		Title: "Asynchronous wavelength routing (paper §I) — blocking vs conversion degree, Erlang-B cross-check",
		Run:   runS10,
	})
	register(Experiment{
		ID:    "S11",
		Title: "Multi-hop paths (paper §I motivation) — wavelength continuity vs conversion",
		Run:   runS11,
	})
	register(Experiment{
		ID:    "S12",
		Title: "Multi-break ablation — quality vs number of breaking positions tried",
		Run:   runS12,
	})
}

// runS12 sweeps the Section IV-C trade-off knob: try m of the d breaking
// positions (centre-out order), measuring the mean/worst gap to optimal
// and the per-slot cost. m = 1 is DeltaBreak, m = d is exact BFA.
func runS12(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	const k = 16
	conv, err := wavelength.New(wavelength.Circular, k, 3, 3) // d = 7
	if err != nil {
		return nil, err
	}
	d := conv.Degree()
	exact, err := core.NewBreakFirstAvailable(conv)
	if err != nil {
		return nil, err
	}
	// Centre-out position order: 4, 3, 5, 2, 6, 1, 7 for d = 7.
	order := make([]int, 0, d)
	mid := (d + 1) / 2
	order = append(order, mid)
	for off := 1; len(order) < d; off++ {
		if mid-off >= 1 {
			order = append(order, mid-off)
		}
		if mid+off <= d && len(order) < d {
			order = append(order, mid+off)
		}
	}
	t := metrics.NewTable(
		fmt.Sprintf("S12 — breaks tried vs matching quality (k=%d, d=%d, centre-out positions)", k, d),
		"breaks tried", "Theorem 3 bound", "worst gap", "mean gap", "ns/op")
	for m := 1; m <= d; m++ {
		mb, err := core.NewMultiBreak(conv, order[:m])
		if err != nil {
			return nil, err
		}
		rng := traffic.NewRNG(cfg.Seed)
		vec := make([]int, k)
		res, opt := core.NewResult(k), core.NewResult(k)
		worst := 0
		var mean metrics.Welford
		start := time.Now()
		for i := 0; i < cfg.Trials; i++ {
			randomVector(rng, vec, 3)
			mb.Schedule(vec, nil, res)
			exact.Schedule(vec, nil, opt)
			gap := opt.Size - res.Size
			if gap < 0 || gap > mb.Bound() {
				return nil, fmt.Errorf("sim: S12 gap %d outside [0,%d] with %d breaks", gap, mb.Bound(), m)
			}
			if gap > worst {
				worst = gap
			}
			mean.Observe(float64(gap))
		}
		elapsed := float64(time.Since(start).Nanoseconds()) / float64(cfg.Trials)
		t.AddRowf(m, mb.Bound(), worst, mean.Mean(), elapsed)
	}
	t.AddNote("quality improves monotonically with breaks tried; m=%d is the exact Table 3 algorithm", d)
	return []*metrics.Table{t}, nil
}

func runS11(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	const k, links = 8, 12
	arrivals := cfg.Slots * 60
	t := metrics.NewTable(
		fmt.Sprintf("S11 — blocking on multi-hop paths (k=%d, %d-link chain, per-link load 3 Erlangs)", k, links),
		"hops", "d=1 (continuity)", "d=3 first-fit", "d=3 stay", "d=5", "full")
	mkConv := func(d int) (wavelength.Conversion, error) {
		if d >= k {
			return wavelength.New(wavelength.Full, k, 0, 0)
		}
		return wavelength.NewSymmetric(wavelength.Circular, k, d)
	}
	runOne := func(d, hops int, policy pathsim.AssignPolicy) (float64, error) {
		conv, err := mkConv(d)
		if err != nil {
			return 0, err
		}
		st, err := pathsim.Run(pathsim.Config{
			Conv: conv, Links: links, Hops: hops,
			ArrivalRate: 3 * float64(links) / float64(hops),
			MeanHold:    1, Policy: policy, Seed: cfg.Seed,
		}, arrivals)
		if err != nil {
			return 0, err
		}
		return st.BlockingProbability(), nil
	}
	for _, hops := range []int{1, 2, 4, 6} {
		row := []interface{}{hops}
		for _, pt := range []struct {
			d      int
			policy pathsim.AssignPolicy
		}{
			{1, pathsim.PathFirstFit},
			{3, pathsim.PathFirstFit},
			{3, pathsim.PathStay},
			{5, pathsim.PathFirstFit},
			{k, pathsim.PathFirstFit},
		} {
			p, err := runOne(pt.d, hops, pt.policy)
			if err != nil {
				return nil, err
			}
			row = append(row, p)
		}
		t.AddRowf(row...)
	}
	t.AddNote("conversion removes the wavelength continuity constraint; on long paths greedy first-fit with small d drifts the wavelength and loses part of the gain — the conversion-minimizing 'stay' policy recovers most of it (see EXPERIMENTS.md)")
	return []*metrics.Table{t}, nil
}

func runS10(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	const k = 16
	arrivals := cfg.Slots * 100
	degrees := []int{1, 3, 5, 7, 9, k}
	t := metrics.NewTable(
		fmt.Sprintf("S10 — asynchronous FCFS blocking vs conversion degree (k=%d, exponential holds)", k),
		"offered Erlangs", "d=1", "ErlangB(1,A/k)", "d=3", "d=5", "d=7", "d=9", "full", "ErlangB(k,A)")
	for _, a := range []float64{8, 10, 12} {
		acfg := async.Config{ArrivalRate: a, MeanHold: 1, Seed: cfg.Seed, Policy: async.FirstFit}
		probs, err := async.Sweep(wavelength.Circular, k, degrees, acfg, arrivals)
		if err != nil {
			return nil, err
		}
		e1, err := analysis.ErlangB(1, a/k)
		if err != nil {
			return nil, err
		}
		ek, err := analysis.ErlangB(k, a)
		if err != nil {
			return nil, err
		}
		t.AddRowf(a, probs[0], e1, probs[1], probs[2], probs[3], probs[4], probs[5], ek)
	}
	t.AddNote("d=1 matches ErlangB(1, A/k) and full range matches ErlangB(k, A); blocking falls monotonically in d")
	return []*metrics.Table{t}, nil
}

// drawVector fills vec with Binomial(n, load/n) arrivals per wavelength —
// the per-output-fiber arrival law under uniform Bernoulli traffic.
func drawVector(rng *traffic.RNG, vec []int, n int, load float64) {
	p := load / float64(n)
	for w := range vec {
		c := 0
		for i := 0; i < n; i++ {
			if rng.Bernoulli(p) {
				c++
			}
		}
		vec[w] = c
	}
}

func runS6(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	const n, k = 8, 16
	conv, err := wavelength.New(wavelength.Circular, k, 1, 1)
	if err != nil {
		return nil, err
	}
	ps, err := core.NewPriorityScheduler(conv)
	if err != nil {
		return nil, err
	}
	const highLoad = 0.3
	t := metrics.NewTable(
		fmt.Sprintf("S6 — strict priority, high class fixed at load %.1f (N=%d, k=%d, d=3)", highLoad, n, k),
		"low-class load", "high loss", "low loss", "aggregate loss")
	rng := traffic.NewRNG(cfg.Seed)
	for _, lowLoad := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		high := make([]int, k)
		low := make([]int, k)
		results := []*core.Result{core.NewResult(k), core.NewResult(k)}
		var offHigh, offLow, grHigh, grLow int
		for slot := 0; slot < cfg.Slots; slot++ {
			drawVector(rng, high, n, highLoad)
			drawVector(rng, low, n, lowLoad)
			if err := ps.ScheduleClasses([][]int{high, low}, nil, results); err != nil {
				return nil, err
			}
			offHigh += core.TotalRequests(high)
			offLow += core.TotalRequests(low)
			grHigh += results[0].Size
			grLow += results[1].Size
		}
		loss := func(off, gr int) float64 {
			if off == 0 {
				return 0
			}
			return 1 - float64(gr)/float64(off)
		}
		t.AddRowf(lowLoad, loss(offHigh, grHigh), loss(offLow, grLow),
			loss(offHigh+offLow, grHigh+grLow))
	}
	t.AddNote("high-class loss stays flat as low-class load grows: strict priority isolates the high class")

	// End-to-end variant: the same policy running inside the switch, with
	// packets carrying Priority classes (20% high / 80% low).
	t2 := metrics.NewTable(
		fmt.Sprintf("S6b — strict priority through the interconnect (N=%d, k=%d, d=3, 20%%/80%% class mix)", n, k),
		"total load", "high loss", "low loss")
	for _, load := range []float64{0.6, 0.8, 1.0} {
		base, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: cfg.Seed}, load)
		if err != nil {
			return nil, err
		}
		gen, err := traffic.WithPriorities(base, []float64{0.2, 0.8}, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		sw, err := interconnect.New(interconnect.Config{
			N: n, Conv: conv, PriorityClasses: 2, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		st, err := sw.Run(gen, cfg.Slots)
		if err != nil {
			return nil, err
		}
		t2.AddRowf(load, st.ClassLossRate(0), st.ClassLossRate(1))
	}
	t2.AddNote("the QoS extension runs end to end: Packet.Priority → per-port strict-priority matching")
	return []*metrics.Table{t, t2}, nil
}

func runS7(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	n, k := simShape(cfg)
	conv, err := wavelength.New(wavelength.Circular, k, 1, 1)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("S7 — tie-break fairness at load 1.0 (N=%d, k=%d, d=3)", n, k),
		"selector", "granted", "Jain index", "min fiber share", "max fiber share")
	for _, sel := range []string{"round-robin", "random", "fixed-priority"} {
		gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: cfg.Seed}, 1.0)
		if err != nil {
			return nil, err
		}
		sw, err := interconnect.New(interconnect.Config{
			N: n, Conv: conv, Selector: sel, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		st, err := sw.Run(gen, cfg.Slots)
		if err != nil {
			return nil, err
		}
		minG, maxG := st.PerInputGranted[0], st.PerInputGranted[0]
		for _, g := range st.PerInputGranted {
			if g < minG {
				minG = g
			}
			if g > maxG {
				maxG = g
			}
		}
		total := float64(st.Granted.Value())
		t.AddRowf(sel, st.Granted.Value(), st.FairnessJain(),
			float64(minG)/total, float64(maxG)/total)
	}
	t.AddNote("round-robin and random (the §III prescriptions) are fair; the fixed-priority control favors low fibers")
	return []*metrics.Table{t}, nil
}

func runS8(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	const n, k = 8, 16
	t := metrics.NewTable(
		fmt.Sprintf("S8 — simulated loss vs closed-form models (N=%d, k=%d, uniform Bernoulli, 1-slot holds)", n, k),
		"load", "sim d=1", "model d=1", "sim d=3", "bounds d=3", "sim full", "model full")
	for _, load := range []float64{0.3, 0.6, 0.9, 1.0} {
		simLoss := func(conv wavelength.Conversion, seedOff uint64) (float64, error) {
			gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: cfg.Seed + seedOff}, load)
			if err != nil {
				return 0, err
			}
			sw, err := interconnect.New(interconnect.Config{N: n, Conv: conv, Seed: cfg.Seed})
			if err != nil {
				return 0, err
			}
			st, err := sw.Run(gen, cfg.Slots)
			if err != nil {
				return 0, err
			}
			return st.LossRate(), nil
		}
		d1, err := simLoss(wavelength.MustNew(wavelength.Circular, k, 0, 0), 1)
		if err != nil {
			return nil, err
		}
		d3, err := simLoss(wavelength.MustNew(wavelength.Circular, k, 1, 1), 2)
		if err != nil {
			return nil, err
		}
		full, err := simLoss(wavelength.MustNew(wavelength.Full, k, 0, 0), 3)
		if err != nil {
			return nil, err
		}
		m1, err := analysis.NoConversionLoss(n, k, load)
		if err != nil {
			return nil, err
		}
		mFull, err := analysis.FullRangeLoss(n, k, load)
		if err != nil {
			return nil, err
		}
		lo, hi, err := analysis.LimitedRangeLossBounds(n, k, 3, load)
		if err != nil {
			return nil, err
		}
		if d3 < lo-0.02 || d3 > hi+0.02 {
			return nil, fmt.Errorf("sim: S8 d=3 loss %v outside bounds [%v,%v] at load %v", d3, lo, hi, load)
		}
		t.AddRowf(load, d1, m1, d3, fmt.Sprintf("[%.4g, %.4g]", lo, hi), full, mFull)
	}
	t.AddNote("d=1 and full-range simulated losses match the exact binomial formulas; d=3 falls within the analytical bounds")
	return []*metrics.Table{t}, nil
}

func runS9(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	t := metrics.NewTable("S9 — parallel BFA vs sequential BFA (paper §IV-B: d workers, O(k) critical path)",
		"k", "d", "trials", "size mismatches")
	rng := traffic.NewRNG(cfg.Seed)
	for _, shape := range []struct{ k, e, f int }{{8, 1, 1}, {16, 2, 2}, {32, 3, 3}} {
		conv, err := wavelength.New(wavelength.Circular, shape.k, shape.e, shape.f)
		if err != nil {
			return nil, err
		}
		seq, err := core.NewBreakFirstAvailable(conv)
		if err != nil {
			return nil, err
		}
		par, err := core.NewParallelBreakFirstAvailable(conv)
		if err != nil {
			return nil, err
		}
		vec := make([]int, shape.k)
		a, b := core.NewResult(shape.k), core.NewResult(shape.k)
		mismatches := 0
		for i := 0; i < cfg.Trials; i++ {
			randomVector(rng, vec, 3)
			seq.Schedule(vec, nil, a)
			par.Schedule(vec, nil, b)
			if a.Size != b.Size {
				mismatches++
			}
		}
		t.AddRowf(shape.k, conv.Degree(), cfg.Trials, mismatches)
		if mismatches != 0 {
			return nil, fmt.Errorf("sim: S9 parallel BFA diverged %d times", mismatches)
		}
	}
	t.AddNote("the d reduced graphs are independent; a worker per breaking edge reproduces Table 3 exactly")
	return []*metrics.Table{t}, nil
}
