package sim

import (
	"fmt"
	"strings"
	"time"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/core"
	"wdmsched/internal/metrics"
	"wdmsched/internal/requestgraph"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// fig3Vector is the paper's running example request vector.
var fig3Vector = []int{2, 1, 0, 1, 1, 2}

func adjacencyString(adj []int) string {
	parts := make([]string, len(adj))
	for i, b := range adj {
		parts[i] = fmt.Sprintf("b%d", b)
	}
	return strings.Join(parts, " ")
}

func init() {
	register(Experiment{
		ID:    "P1",
		Title: "Fig. 2 — conversion graphs, k=6, d=3, circular and non-circular",
		Run:   runP1,
	})
	register(Experiment{
		ID:    "P2",
		Title: "Fig. 3 — request graphs for vector [2,1,0,1,1,2]",
		Run:   runP2,
	})
	register(Experiment{
		ID:    "P3",
		Title: "Fig. 4 — maximum matchings of the Fig. 3 request graphs",
		Run:   runP3,
	})
	register(Experiment{
		ID:    "P4",
		Title: "Fig. 5 — breaking the circular request graph at edge a2→b1",
		Run:   runP4,
	})
	register(Experiment{
		ID:    "P5",
		Title: "Theorem 1 — First Available is optimal (vs Hopcroft–Karp)",
		Run:   runP5,
	})
	register(Experiment{
		ID:    "P6",
		Title: "Theorem 2 — Break and First Available is optimal (vs Hopcroft–Karp)",
		Run:   runP6,
	})
	register(Experiment{
		ID:    "P7",
		Title: "Complexity — O(k) / O(dk) scaling, independence of N",
		Run:   runP7,
	})
	register(Experiment{
		ID:    "P8",
		Title: "Theorem 3 / Corollary 1 — δ-break approximation gap",
		Run:   runP8,
	})
	register(Experiment{
		ID:    "P9",
		Title: "Section V — exactness with occupied output channels",
		Run:   runP9,
	})
	register(Experiment{
		ID:    "P10",
		Title: "Section I — distributed vs global scheduling: equal matchings, O(N) cost gap",
		Run:   runP10,
	})
}

func runP1(cfg RunConfig) ([]*metrics.Table, error) {
	var tables []*metrics.Table
	for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
		conv, err := wavelength.New(kind, 6, 1, 1)
		if err != nil {
			return nil, err
		}
		t := metrics.NewTable(fmt.Sprintf("Fig. 2 conversion graph (%v)", kind),
			"input", "adjacency set")
		for w, adj := range conv.ConversionGraph() {
			out := make([]int, len(adj))
			for i, a := range adj {
				out[i] = int(a)
			}
			t.AddRow(fmt.Sprintf("λ%d", w), adjacencyString(out))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runP2(cfg RunConfig) ([]*metrics.Table, error) {
	var tables []*metrics.Table
	for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
		conv, err := wavelength.New(kind, 6, 1, 1)
		if err != nil {
			return nil, err
		}
		g, err := requestgraph.FromVector(conv, fig3Vector)
		if err != nil {
			return nil, err
		}
		t := metrics.NewTable(fmt.Sprintf("Fig. 3 request graph (%v), vector %v", kind, fig3Vector),
			"request", "wavelength", "adjacency set")
		for i := 0; i < g.NumRequests(); i++ {
			t.AddRow(fmt.Sprintf("a%d", i), g.Request(i).W.String(), adjacencyString(g.AdjacencySlice(i)))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runP3(cfg RunConfig) ([]*metrics.Table, error) {
	var tables []*metrics.Table
	for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
		conv, err := wavelength.New(kind, 6, 1, 1)
		if err != nil {
			return nil, err
		}
		sched, err := core.NewExact(conv)
		if err != nil {
			return nil, err
		}
		res := core.NewResult(6)
		sched.Schedule(fig3Vector, nil, res)
		g, err := requestgraph.FromVector(conv, fig3Vector)
		if err != nil {
			return nil, err
		}
		hk := bipartite.HopcroftKarp(g.Bipartite())
		t := metrics.NewTable(fmt.Sprintf("Fig. 4 maximum matching (%v)", kind),
			"output channel", "granted wavelength")
		for b, w := range res.ByOutput {
			cell := "—"
			if w != core.Unassigned {
				cell = fmt.Sprintf("λ%d", w)
			}
			t.AddRow(fmt.Sprintf("b%d", b), cell)
		}
		t.AddNote("matching size %d (%s), Hopcroft–Karp size %d, paper reports 6",
			res.Size, sched.Name(), hk.Size())
		if res.Size != 6 || hk.Size() != 6 {
			return nil, fmt.Errorf("sim: P3 expected matching size 6, got %d/%d", res.Size, hk.Size())
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runP4(cfg RunConfig) ([]*metrics.Table, error) {
	conv, err := wavelength.New(wavelength.Circular, 6, 1, 1)
	if err != nil {
		return nil, err
	}
	g, err := requestgraph.FromVector(conv, fig3Vector)
	if err != nil {
		return nil, err
	}
	br, err := g.Break(2, 1)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Fig. 5 reduced graph after breaking at a2→b1",
		"reduced pos", "request", "reduced adjacency (original channels)")
	for p, j := range br.Lefts {
		var chans []int
		for q := br.Begin[p]; q <= br.End[p]; q++ {
			chans = append(chans, br.Rights[q])
		}
		t.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("a%d", j), adjacencyString(chans))
	}
	rights := make([]string, len(br.Rights))
	for i, v := range br.Rights {
		rights[i] = fmt.Sprintf("b%d", v)
	}
	t.AddNote("right order after shift: %s (paper: b2 b3 b4 b5 b0)", strings.Join(rights, " "))
	t.AddNote("left order after shift: a3 a4 a5 a6 a0 a1 (paper Fig. 5(b))")
	return []*metrics.Table{t}, nil
}

// randomVector fills vec with counts in [0, maxPer].
func randomVector(rng *traffic.RNG, vec []int, maxPer int) {
	for i := range vec {
		vec[i] = rng.Intn(maxPer + 1)
	}
}

// optimalityTrial compares a scheduler against Hopcroft–Karp over random
// instances and reports the worst observed gap (0 proves optimality on the
// sample).
func optimalityTrial(conv wavelength.Conversion, sched core.Scheduler, trials int, seed uint64, occP float64) (worstGap, checked int) {
	rng := traffic.NewRNG(seed)
	k := conv.K()
	base := core.NewBaseline(conv)
	vec := make([]int, k)
	var occ []bool
	res, want := core.NewResult(k), core.NewResult(k)
	for i := 0; i < trials; i++ {
		randomVector(rng, vec, 3)
		occ = nil
		if occP > 0 {
			occ = make([]bool, k)
			for b := range occ {
				occ[b] = rng.Float64() < occP
			}
		}
		sched.Schedule(vec, occ, res)
		base.Schedule(vec, occ, want)
		if gap := want.Size - res.Size; gap > worstGap {
			worstGap = gap
		}
		checked++
	}
	return worstGap, checked
}

func runP5(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	t := metrics.NewTable("Theorem 1 — FA vs Hopcroft–Karp matching size",
		"k", "e", "f", "trials", "worst gap")
	for _, shape := range []struct{ k, e, f int }{
		{4, 1, 1}, {6, 1, 1}, {8, 2, 1}, {12, 2, 2}, {16, 3, 3}, {32, 2, 2},
	} {
		conv, err := wavelength.New(wavelength.NonCircular, shape.k, shape.e, shape.f)
		if err != nil {
			return nil, err
		}
		fa, err := core.NewFirstAvailable(conv)
		if err != nil {
			return nil, err
		}
		gap, n := optimalityTrial(conv, fa, cfg.Trials, cfg.Seed+uint64(shape.k), 0)
		t.AddRowf(shape.k, shape.e, shape.f, n, gap)
		if gap != 0 {
			return nil, fmt.Errorf("sim: P5 found FA suboptimal by %d on %v", gap, conv)
		}
	}
	t.AddNote("worst gap 0 across all trials: First Available is optimal (Theorem 1)")
	return []*metrics.Table{t}, nil
}

func runP6(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	t := metrics.NewTable("Theorem 2 — BFA vs Hopcroft–Karp matching size",
		"k", "e", "f", "trials", "worst gap")
	for _, shape := range []struct{ k, e, f int }{
		{4, 1, 1}, {6, 1, 1}, {8, 2, 1}, {12, 2, 2}, {16, 3, 3}, {32, 2, 2},
	} {
		conv, err := wavelength.New(wavelength.Circular, shape.k, shape.e, shape.f)
		if err != nil {
			return nil, err
		}
		bfa, err := core.NewBreakFirstAvailable(conv)
		if err != nil {
			return nil, err
		}
		gap, n := optimalityTrial(conv, bfa, cfg.Trials, cfg.Seed+uint64(shape.k), 0)
		t.AddRowf(shape.k, shape.e, shape.f, n, gap)
		if gap != 0 {
			return nil, fmt.Errorf("sim: P6 found BFA suboptimal by %d on %v", gap, conv)
		}
	}
	t.AddNote("worst gap 0 across all trials: Break and First Available is optimal (Theorem 2)")
	return []*metrics.Table{t}, nil
}

// timeScheduler measures mean ns per Schedule call on random vectors with
// counts up to maxPer.
func timeScheduler(sched core.Scheduler, k, maxPer, iters int, seed uint64) float64 {
	rng := traffic.NewRNG(seed)
	vec := make([]int, k)
	res := core.NewResult(k)
	randomVector(rng, vec, maxPer)
	// Warm up to populate scratch and stabilize the clock before timing.
	for i := 0; i < iters/10+1; i++ {
		sched.Schedule(vec, nil, res)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		sched.Schedule(vec, nil, res)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func runP7(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	iters := 2000
	if cfg.Quick {
		iters = 200
	}
	var tables []*metrics.Table

	// Sweep k at fixed d: FA and BFA should grow ~linearly in k while the
	// per-call cost stays microscopic; HK grows superlinearly with the
	// request count.
	tk := metrics.NewTable("P7a — cost vs k (d=5, per-wavelength load ≤3)",
		"k", "FA ns/op", "BFA ns/op", "HK ns/op")
	for _, k := range []int{8, 16, 32, 64, 128} {
		ncc, err := wavelength.New(wavelength.NonCircular, k, 2, 2)
		if err != nil {
			return nil, err
		}
		cc, err := wavelength.New(wavelength.Circular, k, 2, 2)
		if err != nil {
			return nil, err
		}
		fa, _ := core.NewFirstAvailable(ncc)
		bfa, _ := core.NewBreakFirstAvailable(cc)
		hk := core.NewBaseline(cc)
		tk.AddRowf(k,
			timeScheduler(fa, k, 3, iters, cfg.Seed),
			timeScheduler(bfa, k, 3, iters, cfg.Seed),
			timeScheduler(hk, k, 3, iters/4+1, cfg.Seed))
	}
	tables = append(tables, tk)

	// Sweep d at fixed k: BFA should grow ~linearly in d, FA stay flat.
	td := metrics.NewTable("P7b — cost vs d (k=64)",
		"d", "FA ns/op", "BFA ns/op")
	for _, d := range []int{3, 5, 9, 17, 33} {
		e := (d - 1) / 2
		ncc, err := wavelength.New(wavelength.NonCircular, 64, e, e)
		if err != nil {
			return nil, err
		}
		cc, err := wavelength.New(wavelength.Circular, 64, e, e)
		if err != nil {
			return nil, err
		}
		fa, _ := core.NewFirstAvailable(ncc)
		bfa, _ := core.NewBreakFirstAvailable(cc)
		td.AddRowf(d,
			timeScheduler(fa, 64, 3, iters, cfg.Seed),
			timeScheduler(bfa, 64, 3, iters, cfg.Seed))
	}
	tables = append(tables, td)

	// Sweep N at fixed k, d: per-fiber request counts scale with N. The
	// distributed schedulers stay O(k)/O(dk); the Hopcroft–Karp baseline
	// grows with the request population — the paper's
	// O(N^{3/2} k^{3/2} d) versus O(dk) comparison.
	tn := metrics.NewTable("P7c — cost vs N (k=16, d=3, per-fiber request count ≈ N)",
		"N", "BFA ns/op", "HK ns/op")
	for _, n := range []int{4, 8, 16, 32, 64} {
		cc, err := wavelength.New(wavelength.Circular, 16, 1, 1)
		if err != nil {
			return nil, err
		}
		bfa, _ := core.NewBreakFirstAvailable(cc)
		hk := core.NewBaseline(cc)
		// At uniform load 1.0, an output fiber sees ≈ N·k/N = k requests
		// but spread over N input fibers; per-wavelength counts scale
		// with N/N·load… model the paper's point directly: counts ≈ N/4.
		maxPer := n/4 + 1
		tn.AddRowf(n,
			timeScheduler(bfa, 16, maxPer, iters, cfg.Seed),
			timeScheduler(hk, 16, maxPer, iters/4+1, cfg.Seed))
	}
	tn.AddNote("BFA cost is flat in N (Theorem 2: independent of interconnect size); HK grows")
	tables = append(tables, tn)
	return tables, nil
}

// runP10 demonstrates the Section I partition argument quantitatively:
// because no request belongs to two output fibers, a global maximum
// matching over the whole interconnect's request graph (all N·k input
// channels × all N·k output channels) decomposes into N per-fiber
// matchings. The distributed O(dk)-per-fiber algorithms find the same
// total cardinality as one global Hopcroft–Karp run, whose cost grows with
// the interconnect size ("a global scheduling algorithm … will have a time
// complexity at least linear to the size of the interconnect").
func runP10(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	const k = 8
	conv, err := wavelength.New(wavelength.Circular, k, 1, 1)
	if err != nil {
		return nil, err
	}
	sizes := []int{2, 4, 8, 16}
	if !cfg.Quick {
		sizes = append(sizes, 32)
	}
	t := metrics.NewTable(
		fmt.Sprintf("P10 — distributed vs global scheduling (k=%d, d=3, load 1.0)", k),
		"N", "slots", "distributed granted", "global granted", "distributed ns/slot", "global ns/slot")
	slots := cfg.Trials / 10
	if slots < 20 {
		slots = 20
	}
	for _, n := range sizes {
		rng := traffic.NewRNG(cfg.Seed + uint64(n))
		// Pre-draw the whole workload: per slot, each input channel picks
		// a destination (or idles).
		type req struct{ in, w, dest int }
		workload := make([][]req, slots)
		for s := range workload {
			for in := 0; in < n; in++ {
				for w := 0; w < k; w++ {
					workload[s] = append(workload[s], req{in: in, w: w, dest: rng.Intn(n)})
				}
			}
		}

		// Distributed: per-fiber BFA over count vectors.
		scheds := make([]core.Scheduler, n)
		for o := range scheds {
			if scheds[o], err = core.NewBreakFirstAvailable(conv); err != nil {
				return nil, err
			}
		}
		counts := make([][]int, n)
		for o := range counts {
			counts[o] = make([]int, k)
		}
		res := core.NewResult(k)
		distGranted := 0
		startD := time.Now()
		for s := range workload {
			for o := range counts {
				for w := range counts[o] {
					counts[o][w] = 0
				}
			}
			for _, r := range workload[s] {
				counts[r.dest][r.w]++
			}
			for o := range scheds {
				scheds[o].Schedule(counts[o], nil, res)
				distGranted += res.Size
			}
		}
		distNS := float64(time.Since(startD).Nanoseconds()) / float64(slots)

		// Global: one Hopcroft–Karp over the whole interconnect graph.
		globGranted := 0
		startG := time.Now()
		for s := range workload {
			g := bipartite.NewGraph(len(workload[s]), n*k)
			for a, r := range workload[s] {
				conv.Adjacency(wavelength.Wavelength(r.w)).Each(func(b int) {
					g.AddEdge(a, r.dest*k+b)
				})
			}
			globGranted += bipartite.HopcroftKarp(g).Size()
		}
		globNS := float64(time.Since(startG).Nanoseconds()) / float64(slots)

		t.AddRowf(n, slots, distGranted, globGranted, distNS, globNS)
		if distGranted != globGranted {
			return nil, fmt.Errorf("sim: P10 distributed %d != global %d at N=%d", distGranted, globGranted, n)
		}
	}
	t.AddNote("identical totals: the per-fiber partition loses nothing; the global run's cost grows with N·k")
	return []*metrics.Table{t}, nil
}

func runP8(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	var tables []*metrics.Table
	for _, shape := range []struct{ k, e, f int }{
		{8, 1, 1}, {12, 2, 2}, {16, 3, 3},
	} {
		conv, err := wavelength.New(wavelength.Circular, shape.k, shape.e, shape.f)
		if err != nil {
			return nil, err
		}
		d := conv.Degree()
		exact, err := core.NewBreakFirstAvailable(conv)
		if err != nil {
			return nil, err
		}
		t := metrics.NewTable(
			fmt.Sprintf("Theorem 3 gap by breaking position δ (k=%d, d=%d)", shape.k, d),
			"δ", "bound max{δ−1,d−δ}", "worst gap", "mean gap", "trials")
		for delta := 1; delta <= d; delta++ {
			db, err := core.NewDeltaBreak(conv, delta)
			if err != nil {
				return nil, err
			}
			bound := delta - 1
			if d-delta > bound {
				bound = d - delta
			}
			rng := traffic.NewRNG(cfg.Seed + uint64(delta))
			vec := make([]int, shape.k)
			res, opt := core.NewResult(shape.k), core.NewResult(shape.k)
			worst := 0
			var mean metrics.Welford
			for i := 0; i < cfg.Trials; i++ {
				randomVector(rng, vec, 3)
				db.Schedule(vec, nil, res)
				exact.Schedule(vec, nil, opt)
				gap := opt.Size - res.Size
				if gap < 0 || gap > bound {
					return nil, fmt.Errorf("sim: P8 gap %d outside [0,%d] at δ=%d", gap, bound, delta)
				}
				if gap > worst {
					worst = gap
				}
				mean.Observe(float64(gap))
			}
			t.AddRowf(delta, bound, worst, mean.Mean(), cfg.Trials)
		}
		t.AddNote("Corollary 1: δ=(d+1)/2 = %d has the smallest bound (d−1)/2 = %d", (d+1)/2, (d-1)/2)
		tables = append(tables, t)
	}
	return tables, nil
}

func runP9(cfg RunConfig) ([]*metrics.Table, error) {
	cfg = cfg.Defaults()
	t := metrics.NewTable("Section V — optimality with occupied output channels",
		"conversion", "k", "d", "occupancy", "trials", "worst gap")
	for _, shape := range []struct{ k, e, f int }{{8, 1, 1}, {12, 2, 2}} {
		for _, occP := range []float64{0.2, 0.5, 0.8} {
			for _, kind := range []wavelength.Kind{wavelength.Circular, wavelength.NonCircular} {
				conv, err := wavelength.New(kind, shape.k, shape.e, shape.f)
				if err != nil {
					return nil, err
				}
				sched, err := core.NewExact(conv)
				if err != nil {
					return nil, err
				}
				gap, n := optimalityTrial(conv, sched, cfg.Trials, cfg.Seed+uint64(shape.k), occP)
				t.AddRowf(kind.String(), shape.k, conv.Degree(), occP, n, gap)
				if gap != 0 {
					return nil, fmt.Errorf("sim: P9 found %s suboptimal by %d under occupancy", sched.Name(), gap)
				}
			}
		}
	}
	t.AddNote("worst gap 0: the algorithms stay exact on occupied-channel request graphs (Section V)")
	return []*metrics.Table{t}, nil
}
