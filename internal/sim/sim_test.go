package sim

import (
	"fmt"
	"strings"
	"testing"
)

func quickCfg() RunConfig {
	return RunConfig{Quick: true, Trials: 60, Slots: 120, Seed: 0x1234}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "S13", "S14"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("position %d: %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Fatalf("%s: incomplete registration", id)
		}
	}
	if _, ok := ByID("P5"); !ok {
		t.Fatal("ByID(P5) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) succeeded")
	}
}

func TestDefaults(t *testing.T) {
	c := RunConfig{}.Defaults()
	if c.Slots == 0 || c.Trials == 0 || c.Seed == 0 {
		t.Fatalf("Defaults incomplete: %+v", c)
	}
	q := RunConfig{Quick: true}.Defaults()
	if q.Slots >= c.Slots || q.Trials >= c.Trials {
		t.Fatal("Quick must shrink the run")
	}
	keep := RunConfig{Slots: 7, Trials: 9, Seed: 3}.Defaults()
	if keep.Slots != 7 || keep.Trials != 9 || keep.Seed != 3 {
		t.Fatal("Defaults must not override explicit values")
	}
}

// TestAllExperimentsRun executes every experiment in quick mode and checks
// each produces at least one non-empty table. The P-experiments contain
// internal assertions (e.g. P5/P6 fail on any optimality gap), so a clean
// run re-verifies the paper's claims end to end.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tb.Title)
				}
				if tb.ASCII() == "" || tb.CSV() == "" {
					t.Fatalf("%s: unrenderable table", e.ID)
				}
			}
		})
	}
}

func TestP1GoldenContent(t *testing.T) {
	tables, err := registry["P1"].Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	circ := tables[0].ASCII()
	if !strings.Contains(circ, "b5 b0 b1") {
		t.Fatalf("circular λ0 adjacency missing wrap:\n%s", circ)
	}
	nonc := tables[1].ASCII()
	if !strings.Contains(nonc, "b0 b1") || strings.Contains(nonc, "b5 b0 b1") {
		t.Fatalf("non-circular λ0 adjacency wrong:\n%s", nonc)
	}
}

func TestP4GoldenContent(t *testing.T) {
	tables, err := registry["P4"].Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].ASCII()
	for _, want := range []string{"a3", "b2 b3 b4", "b2 b3 b4 b5 b0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("P4 missing %q:\n%s", want, out)
		}
	}
}

func TestS12GapMonotoneNonIncreasing(t *testing.T) {
	tables, err := registry["S12"].Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e9
	for _, row := range tables[0].Rows {
		var mean float64
		if _, err := fmt.Sscanf(row[3], "%g", &mean); err != nil {
			t.Fatalf("unparsable mean gap %q", row[3])
		}
		if mean > prev+1e-9 {
			t.Fatalf("mean gap not non-increasing:\n%s", tables[0].ASCII())
		}
		prev = mean
	}
}

func TestS13ThroughputMonotoneInFailureProbability(t *testing.T) {
	tables, err := registry["S13"].Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// S13a rows are failure probabilities ascending; every variant column
	// must show graceful degradation: throughput non-increasing as more
	// converters fail.
	thruTable := tables[0]
	cols := len(thruTable.Rows[0])
	for col := 1; col < cols; col++ {
		prev := 1e9
		for _, row := range thruTable.Rows {
			var thru float64
			if _, err := fmt.Sscanf(row[col], "%g", &thru); err != nil {
				t.Fatalf("unparsable throughput %q", row[col])
			}
			if thru > prev+1e-9 {
				t.Fatalf("column %d throughput not non-increasing:\n%s", col, thruTable.ASCII())
			}
			prev = thru
		}
	}
	// d=1 (column 1) never converts, so converter failures are free.
	if first, last := thruTable.Rows[0][1], thruTable.Rows[len(thruTable.Rows)-1][1]; first != last {
		t.Fatalf("d=1 throughput changed under converter faults: %s → %s\n%s", first, last, thruTable.ASCII())
	}
}

func TestS7FixedPriorityLeastFair(t *testing.T) {
	tables, err := registry["S7"].Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	jain := map[string]float64{}
	for _, row := range tables[0].Rows {
		var j float64
		if _, err := fmt.Sscanf(row[2], "%g", &j); err != nil {
			t.Fatalf("unparsable Jain %q", row[2])
		}
		jain[row[0]] = j
	}
	if jain["fixed-priority"] > jain["round-robin"] {
		t.Fatalf("fixed-priority Jain %v exceeds round-robin %v", jain["fixed-priority"], jain["round-robin"])
	}
}

func TestS1LossIsMonotoneInLoadForFixedVariant(t *testing.T) {
	tables, err := registry["S1"].Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// S1a rows are loads ascending; the "d=1 (none)" column (index 1)
	// should show loss growing with load at the top end.
	lossTable := tables[0]
	first := lossTable.Rows[0][1]
	last := lossTable.Rows[len(lossTable.Rows)-1][1]
	if first == last {
		t.Fatalf("loss did not change across loads: %s → %s\n%s", first, last, lossTable.ASCII())
	}
}
