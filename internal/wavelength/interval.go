package wavelength

import "fmt"

// Interval is a contiguous range of wavelength indexes [Lo, Hi] over a ring
// of K wavelengths. When Modular is true the interval is interpreted mod K
// (the paper's "[x, y] represents {x mod k, (x+1) mod k, ..., y mod k}"
// notation): Lo may be negative and Hi may be ≥ K, and the interval wraps.
// When Modular is false, Lo and Hi are plain bounds with 0 ≤ Lo ≤ Hi < K.
//
// The paper leans on this notation throughout Sections II–IV; crossing-edge
// tests (Definition 1) are interval-membership tests in this representation.
type Interval struct {
	Lo, Hi  int
	K       int
	Modular bool
}

// Len returns the number of wavelengths in the interval.
func (iv Interval) Len() int {
	if iv.K <= 0 {
		return 0
	}
	if !iv.Modular {
		if iv.Hi < iv.Lo {
			return 0
		}
		return iv.Hi - iv.Lo + 1
	}
	n := iv.Hi - iv.Lo + 1
	if n <= 0 {
		return 0
	}
	if n > iv.K {
		return iv.K
	}
	return n
}

// Empty reports whether the interval contains no wavelengths.
func (iv Interval) Empty() bool { return iv.Len() == 0 }

// Contains reports whether wavelength index j ∈ [0, K) lies in the interval.
func (iv Interval) Contains(j int) bool {
	if iv.K <= 0 || j < 0 || j >= iv.K {
		return false
	}
	if !iv.Modular {
		return iv.Lo <= j && j <= iv.Hi
	}
	switch n := iv.Len(); {
	case n == 0:
		return false
	case n >= iv.K:
		return true
	}
	lo := mod(iv.Lo, iv.K)
	hi := mod(iv.Hi, iv.K)
	if lo <= hi {
		return lo <= j && j <= hi
	}
	return j >= lo || j <= hi
}

// Each calls fn for every wavelength index in the interval, in ring order
// from Lo to Hi (each index normalized to [0, K)).
func (iv Interval) Each(fn func(j int)) {
	n := iv.Len()
	if n == 0 {
		return
	}
	if !iv.Modular {
		for j := iv.Lo; j <= iv.Hi; j++ {
			fn(j)
		}
		return
	}
	j := mod(iv.Lo, iv.K)
	for i := 0; i < n; i++ {
		fn(j)
		j++
		if j == iv.K {
			j = 0
		}
	}
}

// Slice returns the interval's members in ring order.
func (iv Interval) Slice() []int {
	out := make([]int, 0, iv.Len())
	iv.Each(func(j int) { out = append(out, j) })
	return out
}

// First returns the first wavelength index in ring order. The interval must
// be non-empty.
func (iv Interval) First() int {
	if iv.Empty() {
		panic("wavelength: First on empty interval")
	}
	if !iv.Modular {
		return iv.Lo
	}
	return mod(iv.Lo, iv.K)
}

// Last returns the last wavelength index in ring order. The interval must be
// non-empty.
func (iv Interval) Last() int {
	if iv.Empty() {
		panic("wavelength: Last on empty interval")
	}
	if !iv.Modular {
		return iv.Hi
	}
	if iv.Len() >= iv.K {
		return mod(iv.Lo-1, iv.K)
	}
	return mod(iv.Hi, iv.K)
}

// Wraps reports whether the interval, normalized to [0, K), wraps past the
// end of the ring (i.e. is not expressible as a plain [lo, hi] with
// lo ≤ hi). Plain intervals never wrap.
func (iv Interval) Wraps() bool {
	if !iv.Modular || iv.Empty() || iv.Len() >= iv.K {
		return false
	}
	return mod(iv.Lo, iv.K) > mod(iv.Hi, iv.K)
}

// String renders the interval in the paper's [lo, hi] notation.
func (iv Interval) String() string {
	if iv.Empty() {
		return "[]"
	}
	if iv.Modular {
		return fmt.Sprintf("[%d,%d] mod %d", iv.Lo, iv.Hi, iv.K)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// mod returns x mod k with a non-negative result.
func mod(x, k int) int {
	m := x % k
	if m < 0 {
		m += k
	}
	return m
}

// InRing reports whether j lies in the modular interval [lo, hi] over a ring
// of k wavelengths, i.e. j ∈ {lo mod k, (lo+1) mod k, …, hi mod k}. This is
// the primitive the crossing-edge predicate (paper Definition 1) is built
// from. An interval whose span hi−lo+1 ≤ 0 is empty; a span ≥ k covers the
// whole ring.
func InRing(j, lo, hi, k int) bool {
	return Interval{Lo: lo, Hi: hi, K: k, Modular: true}.Contains(j)
}
