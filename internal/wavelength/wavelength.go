// Package wavelength models WDM wavelength channels and limited range
// wavelength conversion as defined in Zhang & Yang, "Distributed Scheduling
// Algorithms for Wavelength Convertible WDM Optical Interconnects"
// (IPDPS 2003), Section II-A.
//
// A fiber carries k wavelengths λ0..λk−1. A limited range wavelength
// converter can shift an incoming wavelength λi to a set of adjacent
// outgoing wavelengths, its adjacency set. The paper considers two shapes of
// adjacency set:
//
//   - Circular symmetrical: λi converts to [i−e, i+f] with indexes taken
//     mod k (Fig. 2(a)). The conversion graph wraps around the ends of the
//     wavelength axis.
//   - Non-circular symmetrical: λi converts to [max(0,i−e), min(k−1,i+f)]
//     (Fig. 2(b)). Wavelengths near one end cannot reach the other end.
//
// The conversion degree d = e+f+1 is the maximum size of an adjacency set.
// Full range conversion is the special case d = k.
package wavelength

import (
	"fmt"
)

// Wavelength is the index of a wavelength channel on a fiber, in [0, k).
type Wavelength int

// String renders the conventional λi notation.
func (w Wavelength) String() string { return fmt.Sprintf("λ%d", int(w)) }

// Kind identifies the shape of a conversion model's adjacency sets.
type Kind int

const (
	// Circular is circular symmetrical conversion: adjacency sets wrap
	// mod k (paper Fig. 2(a)).
	Circular Kind = iota
	// NonCircular is non-circular symmetrical conversion: adjacency sets
	// clamp at wavelengths 0 and k−1 (paper Fig. 2(b)).
	NonCircular
	// Full is full range conversion: every wavelength converts to every
	// other wavelength (d = k). It is represented separately because the
	// paper treats its scheduling as a trivial special case.
	Full
)

// String returns the kind name used in tables and flags.
func (t Kind) String() string {
	switch t {
	case Circular:
		return "circular"
	case NonCircular:
		return "noncircular"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Kind(%d)", int(t))
	}
}

// ParseKind converts a flag/table string produced by Kind.String back into a
// Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "circular":
		return Circular, nil
	case "noncircular", "non-circular":
		return NonCircular, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("wavelength: unknown conversion kind %q", s)
}

// Conversion describes one fiber's wavelength conversion capability: the
// number of wavelengths k and, for limited range models, the reach e on the
// minus side and f on the plus side of each wavelength (d = e+f+1).
//
// A Conversion is immutable after construction; it is safe for concurrent
// use by any number of goroutines.
type Conversion struct {
	kind Kind
	k    int
	e, f int
}

// New constructs a limited range conversion model. kind selects circular or
// non-circular clamping; e and f are the minus- and plus-side reaches
// (both ≥ 0, e+f+1 ≤ k). For kind == Full, e and f are ignored and the
// model behaves as e = f = k (every wavelength reaches every other).
func New(kind Kind, k, e, f int) (Conversion, error) {
	if k <= 0 {
		return Conversion{}, fmt.Errorf("wavelength: k must be positive, got %d", k)
	}
	if kind == Full {
		return Conversion{kind: Full, k: k, e: k - 1, f: k - 1}, nil
	}
	if kind != Circular && kind != NonCircular {
		return Conversion{}, fmt.Errorf("wavelength: invalid kind %v", kind)
	}
	if e < 0 || f < 0 {
		return Conversion{}, fmt.Errorf("wavelength: reaches must be non-negative, got e=%d f=%d", e, f)
	}
	if e+f+1 > k {
		return Conversion{}, fmt.Errorf("wavelength: degree e+f+1=%d exceeds k=%d", e+f+1, k)
	}
	return Conversion{kind: kind, k: k, e: e, f: f}, nil
}

// NewSymmetric constructs a limited range conversion with symmetric reach:
// d must be odd (d = 2e+1) so that e = f = (d−1)/2, matching the common
// assumption in the paper's examples (e.g. k = 6, d = 3).
func NewSymmetric(kind Kind, k, d int) (Conversion, error) {
	if d <= 0 || d%2 == 0 {
		return Conversion{}, fmt.Errorf("wavelength: symmetric degree must be odd and positive, got %d", d)
	}
	e := (d - 1) / 2
	return New(kind, k, e, e)
}

// MustNew is New but panics on error; for tests and package-level tables.
func MustNew(kind Kind, k, e, f int) Conversion {
	c, err := New(kind, k, e, f)
	if err != nil {
		panic(err)
	}
	return c
}

// Kind reports the conversion shape.
func (c Conversion) Kind() Kind { return c.kind }

// K reports the number of wavelengths per fiber.
func (c Conversion) K() int { return c.k }

// MinusReach reports e, the reach on the minus side of each wavelength.
func (c Conversion) MinusReach() int { return c.e }

// PlusReach reports f, the reach on the plus side of each wavelength.
func (c Conversion) PlusReach() int { return c.f }

// Degree reports the conversion degree d = e+f+1 (k for full range).
// For non-circular conversion this is the maximum adjacency set size;
// wavelengths near the fiber ends have smaller sets.
func (c Conversion) Degree() int {
	if c.kind == Full {
		return c.k
	}
	return c.e + c.f + 1
}

// IsFullRange reports whether every wavelength can be converted to every
// other wavelength. This holds for Kind Full and also for a Circular model
// whose degree covers the whole ring.
func (c Conversion) IsFullRange() bool {
	if c.kind == Full {
		return true
	}
	if c.kind == Circular {
		return c.e+c.f+1 >= c.k
	}
	// A non-circular model is full range only when both reaches span the
	// whole axis, which New rejects unless k == 1.
	return c.e >= c.k-1 && c.f >= c.k-1 || c.k == 1
}

// Valid reports whether w is a legal wavelength index for this model.
func (c Conversion) Valid(w Wavelength) bool { return int(w) >= 0 && int(w) < c.k }

// Adjacency returns the adjacency set of input wavelength w as an Interval
// over output wavelengths. For circular conversion the interval is modular;
// for non-circular it is a plain clamped range. Full range returns [0, k−1].
func (c Conversion) Adjacency(w Wavelength) Interval {
	i := int(w)
	switch c.kind {
	case Full:
		return Interval{Lo: 0, Hi: c.k - 1, K: c.k, Modular: false}
	case Circular:
		if c.e+c.f+1 >= c.k {
			return Interval{Lo: 0, Hi: c.k - 1, K: c.k, Modular: false}
		}
		return Interval{Lo: i - c.e, Hi: i + c.f, K: c.k, Modular: true}
	default: // NonCircular
		lo := i - c.e
		if lo < 0 {
			lo = 0
		}
		hi := i + c.f
		if hi > c.k-1 {
			hi = c.k - 1
		}
		return Interval{Lo: lo, Hi: hi, K: c.k, Modular: false}
	}
}

// CanConvert reports whether input wavelength from can be converted to
// output wavelength to under this model.
func (c Conversion) CanConvert(from, to Wavelength) bool {
	if !c.Valid(from) || !c.Valid(to) {
		return false
	}
	return c.Adjacency(from).Contains(int(to))
}

// AdjacencySlice returns the adjacency set of w as a sorted-in-ring-order
// slice of output wavelengths (the order the paper uses: minus side first).
// It allocates; hot paths should use Adjacency.
func (c Conversion) AdjacencySlice(w Wavelength) []Wavelength {
	iv := c.Adjacency(w)
	out := make([]Wavelength, 0, iv.Len())
	iv.Each(func(j int) {
		out = append(out, Wavelength(j))
	})
	return out
}

// Delta returns δ(u) as defined in Section IV-C of the paper: the 1-based
// position of output wavelength u within the adjacency set of input
// wavelength w, counted from the minus end. The second return is false if u
// is not in the adjacency set.
func (c Conversion) Delta(w, u Wavelength) (int, bool) {
	iv := c.Adjacency(w)
	if !iv.Contains(int(u)) {
		return 0, false
	}
	pos := 1
	found := 0
	iv.Each(func(j int) {
		if j == int(u) && found == 0 {
			found = pos
		}
		pos++
	})
	return found, true
}

// String summarizes the model, e.g. "circular k=6 d=3 (e=1,f=1)".
func (c Conversion) String() string {
	if c.kind == Full {
		return fmt.Sprintf("full k=%d", c.k)
	}
	return fmt.Sprintf("%s k=%d d=%d (e=%d,f=%d)", c.kind, c.k, c.Degree(), c.e, c.f)
}

// ConversionGraph materializes the conversion graph of Section II-A: the
// bipartite graph with k input wavelengths on the left, k output wavelengths
// on the right, and an edge wherever conversion is possible. Edges returns
// the adjacency lists indexed by input wavelength. It is primarily a test
// and visualization aid; scheduling uses intervals directly.
func (c Conversion) ConversionGraph() [][]Wavelength {
	g := make([][]Wavelength, c.k)
	for i := 0; i < c.k; i++ {
		g[i] = c.AdjacencySlice(Wavelength(i))
	}
	return g
}
