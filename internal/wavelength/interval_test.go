package wavelength

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalPlain(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 5, K: 8}
	if iv.Len() != 4 || iv.Empty() {
		t.Fatalf("Len = %d", iv.Len())
	}
	if iv.First() != 2 || iv.Last() != 5 {
		t.Fatalf("bounds = %d,%d", iv.First(), iv.Last())
	}
	if got := iv.Slice(); !reflect.DeepEqual(got, []int{2, 3, 4, 5}) {
		t.Fatalf("Slice = %v", got)
	}
	for j := 0; j < 8; j++ {
		want := j >= 2 && j <= 5
		if iv.Contains(j) != want {
			t.Fatalf("Contains(%d) = %v, want %v", j, iv.Contains(j), want)
		}
	}
	if iv.Wraps() {
		t.Fatal("plain interval must not wrap")
	}
}

func TestIntervalModularWrap(t *testing.T) {
	// The paper's example: adjacency set of λ0 with e=f=1, k=6 is [−1, 1]
	// = {5, 0, 1}.
	iv := Interval{Lo: -1, Hi: 1, K: 6, Modular: true}
	if iv.Len() != 3 {
		t.Fatalf("Len = %d", iv.Len())
	}
	if got := iv.Slice(); !reflect.DeepEqual(got, []int{5, 0, 1}) {
		t.Fatalf("Slice = %v", got)
	}
	if iv.First() != 5 || iv.Last() != 1 {
		t.Fatalf("First/Last = %d/%d", iv.First(), iv.Last())
	}
	if !iv.Wraps() {
		t.Fatal("interval must wrap")
	}
	for j, want := range map[int]bool{5: true, 0: true, 1: true, 2: false, 3: false, 4: false} {
		if iv.Contains(j) != want {
			t.Fatalf("Contains(%d) = %v, want %v", j, iv.Contains(j), want)
		}
	}
}

func TestIntervalModularNoWrap(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3, K: 6, Modular: true}
	if got := iv.Slice(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Slice = %v", got)
	}
	if iv.Wraps() {
		t.Fatal("must not wrap")
	}
}

func TestIntervalEmpty(t *testing.T) {
	cases := []Interval{
		{Lo: 3, Hi: 2, K: 6},                // plain reversed
		{Lo: 3, Hi: 2, K: 6, Modular: true}, // modular span ≤ 0
		{Lo: 0, Hi: 5, K: 0},                // no ring
	}
	for _, iv := range cases {
		if !iv.Empty() || iv.Len() != 0 {
			t.Fatalf("%v should be empty", iv)
		}
		if iv.Contains(0) {
			t.Fatalf("%v must contain nothing", iv)
		}
		iv.Each(func(int) { t.Fatalf("%v must iterate nothing", iv) })
		if iv.String() != "[]" {
			t.Fatalf("empty String = %q", iv.String())
		}
	}
}

func TestIntervalFirstLastPanicOnEmpty(t *testing.T) {
	iv := Interval{Lo: 3, Hi: 2, K: 6}
	for name, fn := range map[string]func(){
		"First": func() { iv.First() },
		"Last":  func() { iv.Last() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on empty interval must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestIntervalWholeRing(t *testing.T) {
	// A modular span ≥ K covers the whole ring exactly once.
	iv := Interval{Lo: 4, Hi: 4 + 9, K: 6, Modular: true}
	if iv.Len() != 6 {
		t.Fatalf("Len = %d, want 6", iv.Len())
	}
	seen := map[int]int{}
	iv.Each(func(j int) { seen[j]++ })
	for j := 0; j < 6; j++ {
		if seen[j] != 1 {
			t.Fatalf("index %d visited %d times", j, seen[j])
		}
	}
	if iv.Wraps() {
		t.Fatal("whole ring reports non-wrapping")
	}
	if iv.First() != 4 || iv.Last() != 3 {
		t.Fatalf("First/Last = %d/%d", iv.First(), iv.Last())
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{Lo: -1, Hi: 1, K: 6, Modular: true}).String(); got != "[-1,1] mod 6" {
		t.Fatalf("String = %q", got)
	}
	if got := (Interval{Lo: 0, Hi: 2, K: 6}).String(); got != "[0,2]" {
		t.Fatalf("String = %q", got)
	}
}

func TestInRing(t *testing.T) {
	// InRing(j, lo, hi, k): the Definition 1 membership primitive.
	cases := []struct {
		j, lo, hi, k int
		want         bool
	}{
		{5, -1, 1, 6, true},
		{0, -1, 1, 6, true},
		{1, -1, 1, 6, true},
		{2, -1, 1, 6, false},
		{3, 4, 2, 6, false}, // [4, 2] mod 6 is empty (span ≤ 0)
		{0, 5, 7, 6, true},  // [5,7] = {5,0,1}
		{2, 5, 7, 6, false},
		{4, 0, 11, 6, true}, // whole ring
	}
	for _, tc := range cases {
		if got := InRing(tc.j, tc.lo, tc.hi, tc.k); got != tc.want {
			t.Errorf("InRing(%d,%d,%d,%d) = %v, want %v", tc.j, tc.lo, tc.hi, tc.k, got, tc.want)
		}
	}
}

func TestMod(t *testing.T) {
	cases := []struct{ x, k, want int }{
		{-1, 6, 5}, {0, 6, 0}, {6, 6, 0}, {7, 6, 1}, {-7, 6, 5}, {-6, 6, 0},
	}
	for _, tc := range cases {
		if got := mod(tc.x, tc.k); got != tc.want {
			t.Errorf("mod(%d,%d) = %d, want %d", tc.x, tc.k, got, tc.want)
		}
	}
}

// Property: Contains agrees with Slice membership, and Each visits exactly
// Len distinct normalized indexes in ring order.
func TestIntervalContainsMatchesSlice(t *testing.T) {
	prop := func(loRaw, spanRaw int8, kRaw uint8, modular bool) bool {
		k := int(kRaw%10) + 1
		lo := int(loRaw)
		span := int(spanRaw % 12)
		hi := lo + span - 1
		if !modular {
			lo = mod(lo, k)
			hi = lo + span - 1
			if hi >= k {
				hi = k - 1
			}
		}
		iv := Interval{Lo: lo, Hi: hi, K: k, Modular: modular}
		members := map[int]bool{}
		prev := -1
		ok := true
		count := 0
		iv.Each(func(j int) {
			count++
			if j < 0 || j >= k || members[j] {
				ok = false
			}
			members[j] = true
			if prev >= 0 && modular && j != (prev+1)%k {
				ok = false
			}
			prev = j
		})
		if count != iv.Len() {
			return false
		}
		for j := 0; j < k; j++ {
			if iv.Contains(j) != members[j] {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
