package wavelength

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		kind    Kind
		k, e, f int
		wantErr bool
	}{
		{"ok circular", Circular, 6, 1, 1, false},
		{"ok noncircular", NonCircular, 6, 1, 1, false},
		{"ok asymmetric", Circular, 8, 0, 2, false},
		{"ok degree equals k", Circular, 5, 2, 2, false},
		{"zero k", Circular, 0, 1, 1, true},
		{"negative k", Circular, -3, 1, 1, true},
		{"negative e", Circular, 6, -1, 1, true},
		{"negative f", NonCircular, 6, 1, -1, true},
		{"degree exceeds k", Circular, 4, 2, 2, true},
		{"bad kind", Kind(42), 6, 1, 1, true},
		{"full ignores reaches", Full, 6, -5, 99, false},
		{"k=1 degree 1", Circular, 1, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.kind, tc.k, tc.e, tc.f)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%v,%d,%d,%d) error = %v, wantErr %v", tc.kind, tc.k, tc.e, tc.f, err, tc.wantErr)
			}
		})
	}
}

func TestNewSymmetric(t *testing.T) {
	c, err := NewSymmetric(Circular, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinusReach() != 1 || c.PlusReach() != 1 || c.Degree() != 3 {
		t.Fatalf("got e=%d f=%d d=%d, want 1 1 3", c.MinusReach(), c.PlusReach(), c.Degree())
	}
	if _, err := NewSymmetric(Circular, 6, 4); err == nil {
		t.Fatal("even degree should be rejected")
	}
	if _, err := NewSymmetric(Circular, 6, -1); err == nil {
		t.Fatal("negative degree should be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	MustNew(Circular, 0, 0, 0)
}

// TestFigure2Circular reproduces the paper's Fig. 2(a): k = 6, d = 3
// circular symmetrical conversion, where λi converts to
// {λ(i−1) mod 6, λi, λ(i+1) mod 6}.
func TestFigure2Circular(t *testing.T) {
	c := MustNew(Circular, 6, 1, 1)
	want := [][]Wavelength{
		{5, 0, 1},
		{0, 1, 2},
		{1, 2, 3},
		{2, 3, 4},
		{3, 4, 5},
		{4, 5, 0},
	}
	got := c.ConversionGraph()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("conversion graph mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestFigure2NonCircular reproduces Fig. 2(b): k = 6, e = f = 1 non-circular
// conversion, where λ0 reaches only {λ0, λ1} and λ5 only {λ4, λ5}.
func TestFigure2NonCircular(t *testing.T) {
	c := MustNew(NonCircular, 6, 1, 1)
	want := [][]Wavelength{
		{0, 1},
		{0, 1, 2},
		{1, 2, 3},
		{2, 3, 4},
		{3, 4, 5},
		{4, 5},
	}
	got := c.ConversionGraph()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("conversion graph mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestFullRange(t *testing.T) {
	c := MustNew(Full, 4, 0, 0)
	if !c.IsFullRange() {
		t.Fatal("Full kind must report full range")
	}
	if c.Degree() != 4 {
		t.Fatalf("full range degree = %d, want k = 4", c.Degree())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !c.CanConvert(Wavelength(i), Wavelength(j)) {
				t.Fatalf("full range must convert %d→%d", i, j)
			}
		}
	}
}

func TestCircularFullDegreeIsFullRange(t *testing.T) {
	c := MustNew(Circular, 5, 2, 2) // d = 5 = k
	if !c.IsFullRange() {
		t.Fatal("circular with d = k must be full range")
	}
	adj := c.Adjacency(0)
	if adj.Len() != 5 {
		t.Fatalf("adjacency length = %d, want 5", adj.Len())
	}
}

func TestAdjacencyClampingNonCircular(t *testing.T) {
	c := MustNew(NonCircular, 8, 2, 1)
	cases := []struct {
		w      Wavelength
		lo, hi int
	}{
		{0, 0, 1},
		{1, 0, 2},
		{2, 0, 3},
		{3, 1, 4},
		{6, 4, 7},
		{7, 5, 7},
	}
	for _, tc := range cases {
		iv := c.Adjacency(tc.w)
		if iv.First() != tc.lo || iv.Last() != tc.hi {
			t.Errorf("Adjacency(%v) = [%d,%d], want [%d,%d]", tc.w, iv.First(), iv.Last(), tc.lo, tc.hi)
		}
		if iv.Modular {
			t.Errorf("non-circular adjacency must not be modular")
		}
	}
}

func TestCanConvertOutOfRange(t *testing.T) {
	c := MustNew(Circular, 6, 1, 1)
	if c.CanConvert(-1, 0) || c.CanConvert(0, 6) || c.CanConvert(6, 0) {
		t.Fatal("out-of-range wavelengths must not convert")
	}
}

func TestDelta(t *testing.T) {
	// Paper Section IV-C: adjacency set of λi is
	// {W(i)−e, …, W(i), …, W(i)+f}; δ(u) is u's 1-based position counted
	// from the minus end. For e=f=1, u = i−1 ⇒ δ=1, u = i ⇒ δ=2, u = i+1
	// ⇒ δ=3.
	c := MustNew(Circular, 6, 1, 1)
	cases := []struct {
		w, u  Wavelength
		delta int
		ok    bool
	}{
		{2, 1, 1, true},
		{2, 2, 2, true},
		{2, 3, 3, true},
		{0, 5, 1, true}, // wraps
		{0, 0, 2, true},
		{0, 1, 3, true},
		{2, 4, 0, false},
		{2, 0, 0, false},
	}
	for _, tc := range cases {
		d, ok := c.Delta(tc.w, tc.u)
		if d != tc.delta || ok != tc.ok {
			t.Errorf("Delta(%v,%v) = (%d,%v), want (%d,%v)", tc.w, tc.u, d, ok, tc.delta, tc.ok)
		}
	}
}

func TestDeltaAsymmetric(t *testing.T) {
	c := MustNew(NonCircular, 10, 2, 1) // adjacency of λ5 = [3,6]
	for i, u := range []Wavelength{3, 4, 5, 6} {
		d, ok := c.Delta(5, u)
		if !ok || d != i+1 {
			t.Errorf("Delta(5,%v) = (%d,%v), want (%d,true)", u, d, ok, i+1)
		}
	}
}

func TestKindString(t *testing.T) {
	if Circular.String() != "circular" || NonCircular.String() != "noncircular" || Full.String() != "full" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string mismatch")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Circular, NonCircular, Full} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = (%v,%v)", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind must reject unknown strings")
	}
	if k, err := ParseKind("non-circular"); err != nil || k != NonCircular {
		t.Fatal("ParseKind must accept hyphenated alias")
	}
}

func TestConversionString(t *testing.T) {
	c := MustNew(Circular, 6, 1, 1)
	if got := c.String(); got != "circular k=6 d=3 (e=1,f=1)" {
		t.Fatalf("String() = %q", got)
	}
	fc := MustNew(Full, 6, 0, 0)
	if got := fc.String(); got != "full k=6" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: for circular conversion, every adjacency set has exactly d
// members and is symmetric under rotation: Adjacency(w+1) is Adjacency(w)
// shifted by one.
func TestCircularAdjacencyRotationInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(kRaw, eRaw, fRaw uint8) bool {
		k := int(kRaw%12) + 1
		e := int(eRaw) % k
		f := int(fRaw) % k
		if e+f+1 >= k {
			// Skip invalid combinations and the whole-ring case, where
			// every adjacency set is the identical interval [0, k−1] and
			// the shifted-order comparison below does not apply.
			return true
		}
		c := MustNew(Circular, k, e, f)
		for w := 0; w < k; w++ {
			a := c.AdjacencySlice(Wavelength(w))
			b := c.AdjacencySlice(Wavelength((w + 1) % k))
			if len(a) != c.Degree() || len(b) != c.Degree() {
				return false
			}
			for i := range a {
				if (int(a[i])+1)%k != int(b[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: CanConvert(w,u) ⟺ u ∈ AdjacencySlice(w), for all kinds.
func TestCanConvertMatchesAdjacency(t *testing.T) {
	kinds := []Kind{Circular, NonCircular, Full}
	for _, kind := range kinds {
		for k := 1; k <= 9; k++ {
			for e := 0; e < k; e++ {
				for f := 0; e+f+1 <= k; f++ {
					c := MustNew(kind, k, e, f)
					for w := 0; w < k; w++ {
						inSet := make(map[Wavelength]bool)
						for _, u := range c.AdjacencySlice(Wavelength(w)) {
							inSet[u] = true
						}
						for u := 0; u < k; u++ {
							if c.CanConvert(Wavelength(w), Wavelength(u)) != inSet[Wavelength(u)] {
								t.Fatalf("%v: CanConvert(%d,%d) disagrees with adjacency", c, w, u)
							}
						}
					}
					if kind == Full {
						break // e,f ignored
					}
				}
				if kind == Full {
					break
				}
			}
		}
	}
}

// Property: non-circular adjacency sets are monotone in the sense the
// First Available proof needs (paper Theorem 1): j ≤ l implies
// BEGIN(j) ≤ BEGIN(l) and END(j) ≤ END(l).
func TestNonCircularMonotonicity(t *testing.T) {
	for k := 1; k <= 10; k++ {
		for e := 0; e < k; e++ {
			for f := 0; e+f+1 <= k; f++ {
				c := MustNew(NonCircular, k, e, f)
				for w := 1; w < k; w++ {
					prev := c.Adjacency(Wavelength(w - 1))
					cur := c.Adjacency(Wavelength(w))
					if prev.First() > cur.First() || prev.Last() > cur.Last() {
						t.Fatalf("%v: adjacency not monotone at w=%d: %v then %v", c, w, prev, cur)
					}
				}
			}
		}
	}
}

func TestWavelengthString(t *testing.T) {
	if Wavelength(3).String() != "λ3" {
		t.Fatalf("got %q", Wavelength(3).String())
	}
}
