package requestgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"wdmsched/internal/core"
	"wdmsched/internal/fabric"
	"wdmsched/internal/wavelength"
)

// fig3Vector is the paper's running example request vector [2,1,0,1,1,2]
// for k = 6: two requests on λ0, one on λ1, none on λ2, one each on λ3 and
// λ4, two on λ5 (Fig. 3).
var fig3Vector = []int{2, 1, 0, 1, 1, 2}

func circ6() wavelength.Conversion { return wavelength.MustNew(wavelength.Circular, 6, 1, 1) }
func nonc6() wavelength.Conversion { return wavelength.MustNew(wavelength.NonCircular, 6, 1, 1) }

func TestNewValidation(t *testing.T) {
	if _, err := New(circ6(), []Request{{W: 6}}); err == nil {
		t.Fatal("invalid wavelength accepted")
	}
	if _, err := New(circ6(), []Request{{W: -1}}); err == nil {
		t.Fatal("negative wavelength accepted")
	}
}

func TestFromVectorValidation(t *testing.T) {
	if _, err := FromVector(circ6(), []int{1, 2}); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, err := FromVector(circ6(), []int{1, -1, 0, 0, 0, 0}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestMustFromVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustFromVector(circ6(), []int{1})
}

func TestOrderingStable(t *testing.T) {
	// Requests submitted out of wavelength order, with two on λ0 whose
	// submission order must be preserved (paper: same-wavelength requests
	// in arbitrary but fixed order).
	reqs := []Request{
		{W: 5, ID: 100},
		{W: 0, ID: 101},
		{W: 3, ID: 102},
		{W: 0, ID: 103},
	}
	g, err := New(circ6(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := make([]int64, g.NumRequests())
	for i := range gotIDs {
		gotIDs[i] = g.Request(i).ID
	}
	if !reflect.DeepEqual(gotIDs, []int64{101, 103, 102, 100}) {
		t.Fatalf("order = %v", gotIDs)
	}
	if g.W(0) != 0 || g.W(3) != 5 {
		t.Fatal("W() mismatch")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	if got := g.Vector(); !reflect.DeepEqual(got, fig3Vector) {
		t.Fatalf("Vector = %v", got)
	}
	if g.NumRequests() != 7 || g.K() != 6 {
		t.Fatalf("n=%d k=%d", g.NumRequests(), g.K())
	}
}

// TestFigure3Circular reproduces Fig. 3(a): the circular request graph for
// vector [2,1,0,1,1,2], k = 6, d = 3.
func TestFigure3Circular(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	want := map[int][]int{
		0: {5, 0, 1}, // a0 on λ0
		1: {5, 0, 1}, // a1 on λ0
		2: {0, 1, 2}, // a2 on λ1
		3: {2, 3, 4}, // a3 on λ3
		4: {3, 4, 5}, // a4 on λ4
		5: {4, 5, 0}, // a5 on λ5
		6: {4, 5, 0}, // a6 on λ5
	}
	for i, adj := range want {
		if got := g.AdjacencySlice(i); !reflect.DeepEqual(got, adj) {
			t.Errorf("a%d adjacency = %v, want %v", i, got, adj)
		}
	}
	bg := g.Bipartite()
	if bg.NumEdges() != 21 {
		t.Fatalf("edges = %d, want 21", bg.NumEdges())
	}
}

// TestFigure3NonCircular reproduces Fig. 3(b): the convex request graph for
// the same vector under non-circular conversion.
func TestFigure3NonCircular(t *testing.T) {
	g := MustFromVector(nonc6(), fig3Vector)
	want := map[int][]int{
		0: {0, 1},
		1: {0, 1},
		2: {0, 1, 2},
		3: {2, 3, 4},
		4: {3, 4, 5},
		5: {4, 5},
		6: {4, 5},
	}
	for i, adj := range want {
		if got := g.AdjacencySlice(i); !reflect.DeepEqual(got, adj) {
			t.Errorf("a%d adjacency = %v, want %v", i, got, adj)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	if !g.HasEdge(0, 5) || !g.HasEdge(0, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge mismatch for a0")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(7, 0) || g.HasEdge(0, -1) || g.HasEdge(0, 6) {
		t.Fatal("out-of-range HasEdge must be false")
	}
}

func TestOccupancy(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	g.SetOccupied(0, true)
	if !g.Occupied(0) || g.Occupied(1) {
		t.Fatal("Occupied mismatch")
	}
	if g.NumAvailable() != 5 {
		t.Fatalf("NumAvailable = %d", g.NumAvailable())
	}
	if g.HasEdge(0, 0) {
		t.Fatal("edge to occupied channel must vanish")
	}
	if got := g.AdjacencySlice(0); !reflect.DeepEqual(got, []int{5, 1}) {
		t.Fatalf("a0 adjacency with b0 occupied = %v", got)
	}
	bg := g.Bipartite()
	for a := 0; a < bg.NLeft(); a++ {
		if bg.HasEdge(a, 0) {
			t.Fatalf("Bipartite kept edge (%d,0) to occupied channel", a)
		}
	}
	mask := g.OccupiedMask()
	mask[1] = true
	if g.Occupied(1) {
		t.Fatal("OccupiedMask must be a copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	c := g.Clone()
	c.SetOccupied(2, true)
	if g.Occupied(2) {
		t.Fatal("clone occupancy leaked")
	}
}

func TestStringContainsVector(t *testing.T) {
	g := MustFromVector(circ6(), []int{1, 0, 0, 0, 0, 0})
	if g.String() == "" {
		t.Fatal("empty String")
	}
}

// randomGraphFor builds a random request graph for property tests.
func randomGraphFor(rng *rand.Rand, kind wavelength.Kind, maxK, maxPerWavelength int, occupancyP float64) *Graph {
	k := rng.Intn(maxK) + 1
	e := rng.Intn(k)
	f := rng.Intn(k - e)
	if e+f+1 > k {
		f = k - e - 1
	}
	conv := wavelength.MustNew(kind, k, e, f)
	vec := make([]int, k)
	for w := range vec {
		vec[w] = rng.Intn(maxPerWavelength + 1)
	}
	g := MustFromVector(conv, vec)
	for b := 0; b < k; b++ {
		if rng.Float64() < occupancyP {
			g.SetOccupied(b, true)
		}
	}
	return g
}

// TestUsableChannelsPacked cross-checks the packed occupancy/dark overlay
// (word-parallel AND NOT) against the scalar usable predicate, including a
// word-boundary k and incremental set/clear churn.
func TestUsableChannelsPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{6, 64, 65, 129} {
		conv := wavelength.MustNew(wavelength.Circular, k, 1, 1)
		g := MustFromVector(conv, make([]int, k))
		usable := fabric.NewBitVector(k)
		for trial := 0; trial < 100; trial++ {
			b := rng.Intn(k)
			switch rng.Intn(4) {
			case 0:
				g.SetOccupied(b, true)
			case 1:
				g.SetOccupied(b, false)
			case 2:
				g.SetChannelState(b, core.ChannelState(rng.Intn(3)))
			case 3:
				if rng.Intn(4) == 0 {
					g.SetMask(nil)
				} else {
					mask := make(core.ChannelMask, k)
					for i := range mask {
						mask[i] = core.ChannelState(rng.Intn(3))
					}
					g.SetMask(mask)
				}
			}
			g.UsableChannels(usable)
			avail := 0
			for ch := 0; ch < k; ch++ {
				want := !g.Occupied(ch) && g.ChannelState(ch) != core.Dark
				if got := usable.Get(ch); got != want {
					t.Fatalf("k=%d trial %d channel %d: packed usable=%v, scalar=%v", k, trial, ch, got, want)
				}
				if !g.Occupied(ch) {
					avail++
				}
			}
			if got := g.NumAvailable(); got != avail {
				t.Fatalf("k=%d trial %d: NumAvailable=%d, want %d", k, trial, got, avail)
			}
		}
	}
}
