package requestgraph

import (
	"testing"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/core"
	"wdmsched/internal/wavelength"
)

// xorshift for deterministic instances without importing traffic.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// TestMaskedGraphAgreesWithSchedulers is the three-way differential: the
// request graph's own degraded expansion (via SetChannelState + Bipartite +
// Hopcroft–Karp), core's native degraded baseline, and core's exact
// scheduler through the pre-grant reduction must all find the same maximum
// matching size on random faulted instances.
func TestMaskedGraphAgreesWithSchedulers(t *testing.T) {
	r := &rng{s: 0x9a4e1}
	convs := []wavelength.Conversion{
		wavelength.MustNew(wavelength.Circular, 8, 1, 1),
		wavelength.MustNew(wavelength.NonCircular, 7, 2, 1),
		wavelength.MustNew(wavelength.Full, 6, 0, 0),
	}
	for _, conv := range convs {
		k := conv.K()
		exact, err := core.NewExact(conv)
		if err != nil {
			t.Fatal(err)
		}
		oracle := core.NewBaseline(conv)
		for trial := 0; trial < 150; trial++ {
			vec := make([]int, k)
			for w := range vec {
				vec[w] = r.intn(3)
			}
			var occ []bool
			if r.intn(2) == 1 {
				occ = make([]bool, k)
				for b := range occ {
					occ[b] = r.intn(5) == 0
				}
			}
			mask := make(core.ChannelMask, k)
			for b := range mask {
				switch r.intn(4) {
				case 0:
					mask[b] = core.ConverterFailed
				case 1:
					mask[b] = core.Dark
				}
			}

			g := MustFromVector(conv, vec)
			for b := 0; b < k; b++ {
				if occ != nil {
					g.SetOccupied(b, occ[b])
				}
				g.SetChannelState(b, mask[b])
			}
			graphSize := bipartite.HopcroftKarp(g.Bipartite()).Size()

			res := core.NewResult(k)
			oracle.ScheduleMasked(vec, occ, mask, res)
			if res.Size != graphSize {
				t.Fatalf("%v vec=%v occ=%v mask=%v: baseline=%d graph=%d",
					conv, vec, occ, mask, res.Size, graphSize)
			}
			exact.ScheduleMasked(vec, occ, mask, res)
			if res.Size != graphSize {
				t.Fatalf("%v vec=%v occ=%v mask=%v: exact=%d graph=%d",
					conv, vec, occ, mask, res.Size, graphSize)
			}
		}
	}
}

// TestMaskedGraphEdges pins the edge-narrowing rules.
func TestMaskedGraphEdges(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 4, 1, 1)
	g := MustFromVector(conv, []int{0, 1, 0, 0}) // one request on λ1 → {0,1,2}
	if got := g.AdjacencySlice(0); len(got) != 3 {
		t.Fatalf("healthy adjacency %v, want 3 channels", got)
	}
	g.SetChannelState(0, core.Dark)
	g.SetChannelState(2, core.ConverterFailed)
	if g.HasEdge(0, 0) {
		t.Fatal("edge to dark channel")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("converting edge to converter-failed channel")
	}
	g.SetChannelState(1, core.ConverterFailed)
	if !g.HasEdge(0, 1) {
		t.Fatal("straight-through edge to converter-failed channel removed")
	}
	if got := g.AdjacencySlice(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("degraded adjacency %v, want [1]", got)
	}
	g.SetMask(nil)
	if got := g.AdjacencySlice(0); len(got) != 3 {
		t.Fatalf("adjacency after mask reset %v, want 3 channels", got)
	}
	// Clone carries the states.
	g.SetChannelState(0, core.Dark)
	c := g.Clone()
	if c.ChannelState(0) != core.Dark {
		t.Fatal("clone dropped channel state")
	}
}
