// Package requestgraph implements the request graph of Zhang & Yang
// (IPDPS 2003), Section II-B: the bipartite graph between the connection
// requests destined to one output fiber (left side, set A) and that fiber's
// k output wavelength channels (right side, set B). An edge a→b exists when
// the request's arrival wavelength can be converted to output wavelength b.
//
// The package also implements the machinery of Section IV-A for circular
// symmetrical conversion: the crossing-edge predicate (Definition 1),
// breaking the graph at an edge (Definition 2) with the reduced graph's
// convex reordering (Lemma 2), and the crossing-edge elimination rewrite
// used in the proof of Lemma 1.
//
// Left side vertices are ordered by arrival wavelength index (requests on
// the same wavelength in submission order), matching the paper's ordering
// convention; right side vertices are in wavelength order.
package requestgraph

import (
	"fmt"
	"sort"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/core"
	"wdmsched/internal/fabric"
	"wdmsched/internal/wavelength"
)

// Request is one connection request destined to the output fiber under
// consideration. InputFiber and InputChannel identify where it arrived (used
// by the fabric and fairness layers; the matching itself only reads W).
type Request struct {
	W            wavelength.Wavelength // arrival wavelength
	InputFiber   int                   // arriving input fiber, informational
	InputChannel int                   // channel id on the input fiber, informational
	ID           int64                 // caller-assigned identifier
}

// Graph is a request graph for one output fiber in one time slot.
type Graph struct {
	conv     wavelength.Conversion
	reqs     []Request        // sorted by wavelength (stable)
	occupied []bool           // occupied[b]: output channel b unavailable (Section V)
	states   core.ChannelMask // per-channel fault state (fault injection)

	// Packed mirrors of the right-side removals, kept in sync by the
	// setters: occBits has a bit per §V-occupied channel, darkBits per dark
	// channel. UsableChannels folds them over the full channel set with
	// word-parallel AND NOT, the packed form of the occupancy overlay the
	// schedulers' masker computes per slot.
	occBits  *fabric.BitVector
	darkBits *fabric.BitVector
}

// New builds a request graph. Requests are stably sorted by arrival
// wavelength, preserving submission order within a wavelength, which is the
// left-side vertex order A of the paper. Requests on invalid wavelengths
// are rejected.
func New(conv wavelength.Conversion, reqs []Request) (*Graph, error) {
	for i, r := range reqs {
		if !conv.Valid(r.W) {
			return nil, fmt.Errorf("requestgraph: request %d on invalid wavelength %d (k=%d)", i, r.W, conv.K())
		}
	}
	sorted := append([]Request(nil), reqs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].W < sorted[j].W })
	return &Graph{
		conv:     conv,
		reqs:     sorted,
		occupied: make([]bool, conv.K()),
		states:   make(core.ChannelMask, conv.K()),
		occBits:  fabric.NewBitVector(conv.K()),
		darkBits: fabric.NewBitVector(conv.K()),
	}, nil
}

// FromVector builds a request graph from a request vector (paper §II-B):
// vec[i] is the number of requests arrived on wavelength λi. Requests get
// sequential IDs in wavelength order.
func FromVector(conv wavelength.Conversion, vec []int) (*Graph, error) {
	if len(vec) != conv.K() {
		return nil, fmt.Errorf("requestgraph: vector length %d != k %d", len(vec), conv.K())
	}
	var reqs []Request
	id := int64(0)
	for w, n := range vec {
		if n < 0 {
			return nil, fmt.Errorf("requestgraph: negative count %d at wavelength %d", n, w)
		}
		for j := 0; j < n; j++ {
			reqs = append(reqs, Request{W: wavelength.Wavelength(w), ID: id})
			id++
		}
	}
	return New(conv, reqs)
}

// MustFromVector is FromVector panicking on error, for tests.
func MustFromVector(conv wavelength.Conversion, vec []int) *Graph {
	g, err := FromVector(conv, vec)
	if err != nil {
		panic(err)
	}
	return g
}

// Conversion returns the conversion model.
func (g *Graph) Conversion() wavelength.Conversion { return g.conv }

// NumRequests reports |A|.
func (g *Graph) NumRequests() int { return len(g.reqs) }

// K reports the number of right-side vertices (wavelengths per fiber).
func (g *Graph) K() int { return g.conv.K() }

// Request returns the i-th left-side vertex.
func (g *Graph) Request(i int) Request { return g.reqs[i] }

// Requests returns the left side in order. The slice is owned by the graph.
func (g *Graph) Requests() []Request { return g.reqs }

// W returns the wavelength index of left vertex i, the paper's W(i).
func (g *Graph) W(i int) int { return int(g.reqs[i].W) }

// Vector returns the request vector: count of requests per wavelength.
func (g *Graph) Vector() []int {
	vec := make([]int, g.conv.K())
	for _, r := range g.reqs {
		vec[r.W]++
	}
	return vec
}

// SetOccupied marks output channel b occupied (Section V: held by a
// connection from an earlier slot). Occupied channels are removed from the
// right side: no edges reach them.
func (g *Graph) SetOccupied(b int, occ bool) {
	g.occupied[b] = occ
	if occ {
		g.occBits.Set(b)
	} else {
		g.occBits.Clear(b)
	}
}

// Occupied reports whether output channel b is occupied.
func (g *Graph) Occupied(b int) bool { return g.occupied[b] }

// SetChannelState sets output channel b's fault state (fault injection):
// a Dark channel is removed from the right side like an occupied one, and
// a ConverterFailed channel keeps only the edge from its own wavelength.
func (g *Graph) SetChannelState(b int, st core.ChannelState) {
	g.states[b] = st
	if st == core.Dark {
		g.darkBits.Set(b)
	} else {
		g.darkBits.Clear(b)
	}
}

// ChannelState reports output channel b's fault state.
func (g *Graph) ChannelState(b int) core.ChannelState { return g.states[b] }

// SetMask applies a whole channel-state mask (nil resets to all healthy).
func (g *Graph) SetMask(mask core.ChannelMask) {
	if mask == nil {
		for b := range g.states {
			g.states[b] = core.Healthy
		}
		g.darkBits.Reset()
		return
	}
	if len(mask) != len(g.states) {
		panic(fmt.Sprintf("requestgraph: mask length %d != k %d", len(mask), len(g.states)))
	}
	copy(g.states, mask)
	g.darkBits.Reset()
	for b, st := range g.states {
		if st == core.Dark {
			g.darkBits.Set(b)
		}
	}
}

// usable reports whether channel b can carry wavelength w under the
// occupancy and fault state (conversion feasibility aside).
func (g *Graph) usable(w, b int) bool {
	if g.occupied[b] || g.states[b] == core.Dark {
		return false
	}
	return g.states[b] != core.ConverterFailed || b == w
}

// OccupiedMask returns a copy of the per-channel occupancy.
func (g *Graph) OccupiedMask() []bool { return append([]bool(nil), g.occupied...) }

// NumAvailable reports the number of unoccupied output channels
// (popcount over the packed occupancy).
func (g *Graph) NumAvailable() int {
	return g.conv.K() - g.occBits.Count()
}

// UsableChannels writes the packed set of channels still on the graph's
// right side — neither §V-occupied nor dark — into dst (length k): the
// full channel set AND NOT occupied AND NOT dark, three word-parallel
// passes. Converter-failed channels remain set; they still carry their
// own wavelength.
func (g *Graph) UsableChannels(dst *fabric.BitVector) {
	dst.Fill()
	dst.AndNot(g.occBits)
	dst.AndNot(g.darkBits)
}

// HasEdge reports whether left vertex i is adjacent to output channel b,
// i.e. W(i) converts to b and b is unoccupied.
func (g *Graph) HasEdge(i, b int) bool {
	if i < 0 || i >= len(g.reqs) || b < 0 || b >= g.conv.K() || !g.usable(int(g.reqs[i].W), b) {
		return false
	}
	return g.conv.CanConvert(g.reqs[i].W, wavelength.Wavelength(b))
}

// Adjacency returns the adjacency interval of left vertex i before
// occupancy filtering. Callers that honor Section V must skip occupied
// members.
func (g *Graph) Adjacency(i int) wavelength.Interval {
	return g.conv.Adjacency(g.reqs[i].W)
}

// AdjacencySlice returns the unoccupied output channels adjacent to left
// vertex i, in ring order from the minus end.
func (g *Graph) AdjacencySlice(i int) []int {
	var out []int
	w := int(g.reqs[i].W)
	g.Adjacency(i).Each(func(b int) {
		if g.usable(w, b) {
			out = append(out, b)
		}
	})
	return out
}

// Bipartite expands the request graph (with occupancy applied) into an
// explicit bipartite graph for use with the general matching baselines.
func (g *Graph) Bipartite() *bipartite.Graph {
	bg := bipartite.NewGraph(len(g.reqs), g.conv.K())
	for i := range g.reqs {
		w := int(g.reqs[i].W)
		g.Adjacency(i).Each(func(b int) {
			if g.usable(w, b) {
				bg.AddEdge(i, b)
			}
		})
	}
	return bg
}

// Clone returns a deep copy of the request graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		conv:     g.conv,
		reqs:     append([]Request(nil), g.reqs...),
		occupied: append([]bool(nil), g.occupied...),
		states:   append(core.ChannelMask(nil), g.states...),
		occBits:  fabric.NewBitVector(g.conv.K()),
		darkBits: fabric.NewBitVector(g.conv.K()),
	}
	c.occBits.CopyFrom(g.occBits)
	c.darkBits.CopyFrom(g.darkBits)
	return c
}

// String renders a compact description for test failures.
func (g *Graph) String() string {
	return fmt.Sprintf("requestgraph{%v vec=%v occ=%v}", g.conv, g.Vector(), g.occupied)
}
