package requestgraph

import (
	"fmt"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/wavelength"
)

// Crossing edges (paper Definition 1) and the crossing-elimination rewrite
// from the proof of Lemma 1.
//
// The paper's interval notation [x, y] is over unreduced integers whose
// values are then taken mod k; an interval with y < x (as integers) is
// empty. To evaluate the definition faithfully we first normalize u to the
// integer representative u_r inside a_i's window [W(i)−e, W(i)+f], and W(j)
// to a representative inside whichever case range is being tested; the
// remaining membership tests are then ring-membership tests.

// rep returns the smallest integer ≥ lo congruent to x mod k.
func rep(x, lo, k int) int {
	m := (x - lo) % k
	if m < 0 {
		m += k
	}
	return lo + m
}

// Crosses reports whether edge a_j→b_v crosses edge a_i→b_u per
// Definition 1. Both pairs must be edges of the request graph (occupancy is
// ignored here: crossing is a statement about wavelength geometry). It
// panics if either pair is not convertibility-adjacent, which indicates a
// caller bug.
func (g *Graph) Crosses(j, v, i, u int) bool {
	conv := g.conv
	if !conv.CanConvert(g.reqs[i].W, wavelength.Wavelength(u)) {
		panic(fmt.Sprintf("requestgraph: Crosses called with non-edge (a%d,b%d)", i, u))
	}
	if !conv.CanConvert(g.reqs[j].W, wavelength.Wavelength(v)) {
		panic(fmt.Sprintf("requestgraph: Crosses called with non-edge (a%d,b%d)", j, v))
	}
	if i == j {
		return false
	}
	k := conv.K()
	e, f := conv.MinusReach(), conv.PlusReach()
	wi, wj := g.W(i), g.W(j)
	ur := rep(u, wi-e, k) // u's representative inside a_i's window

	if wj == wi {
		// Case 2: same arrival wavelength; order within the wavelength
		// bucket decides which side each vertex is on.
		if j < i {
			return wavelength.InRing(v, ur+1, wj+f, k) // Case 2.1
		}
		return wavelength.InRing(v, wj-e, ur-1, k) // Case 2.2
	}

	// Case 1.1: W(j) in [u−f+1, W(i)−1] and v in [u+1, W(j)+f].
	if lo := ur - f + 1; wavelength.InRing(wj, lo, wi-1, k) {
		wjr := rep(wj, lo, k)
		if wavelength.InRing(v, ur+1, wjr+f, k) {
			return true
		}
	}
	// Case 1.2: W(j) in [W(i)+1, u−1+e] and v in [W(j)−e, u−1].
	if lo := wi + 1; wavelength.InRing(wj, lo, ur-1+e, k) {
		wjr := rep(wj, lo, k)
		if wavelength.InRing(v, wjr-e, ur-1, k) {
			return true
		}
	}
	return false
}

// CrossingPairs returns every ordered pair of crossing edges within
// matching m (as index pairs into m.Edges()). Used by tests and by
// Uncross.
func (g *Graph) CrossingPairs(m bipartite.Matching) [][2][2]int {
	edges := m.Edges()
	var out [][2][2]int
	for x := 0; x < len(edges); x++ {
		for y := 0; y < len(edges); y++ {
			if x == y {
				continue
			}
			if g.Crosses(edges[x][0], edges[x][1], edges[y][0], edges[y][1]) {
				out = append(out, [2][2]int{edges[x], edges[y]})
			}
		}
	}
	return out
}

// NumCrossings counts crossing relations within matching m.
func (g *Graph) NumCrossings(m bipartite.Matching) int {
	return len(g.CrossingPairs(m))
}

// Uncross applies the Lemma 1 rewrite to matching m until no crossing pair
// remains: each crossing pair {a_i→b_u, a_j→b_v} is replaced by
// {a_i→b_v, a_j→b_u}, preserving cardinality. It returns the rewritten
// matching. The paper proves each individual replacement is legal; Uncross
// additionally guards against non-termination with an iteration budget and
// reports an error if exceeded (never observed; the budget exists to turn a
// latent proof gap into a loud failure rather than a hang).
func (g *Graph) Uncross(m bipartite.Matching) (bipartite.Matching, error) {
	out := bipartite.NewMatching(len(m.RightOf), len(m.LeftOf))
	copy(out.LeftOf, m.LeftOf)
	copy(out.RightOf, m.RightOf)
	budget := (g.NumRequests()*g.K() + 1) * (g.NumRequests()*g.K() + 1)
	for iter := 0; ; iter++ {
		if iter > budget {
			return out, fmt.Errorf("requestgraph: Uncross exceeded %d iterations", budget)
		}
		pair, found := g.firstCrossing(out)
		if !found {
			return out, nil
		}
		j, v := pair[0][0], pair[0][1]
		i, u := pair[1][0], pair[1][1]
		// Swap partners: a_j→b_u, a_i→b_v (Lemma 1 shows both are edges
		// of G and do not cross each other).
		out.RightOf[j], out.RightOf[i] = u, v
		out.LeftOf[u], out.LeftOf[v] = j, i
	}
}

// firstCrossing returns one crossing pair in m, if any.
func (g *Graph) firstCrossing(m bipartite.Matching) ([2][2]int, bool) {
	edges := m.Edges()
	for x := 0; x < len(edges); x++ {
		for y := 0; y < len(edges); y++ {
			if x == y {
				continue
			}
			if g.Crosses(edges[x][0], edges[x][1], edges[y][0], edges[y][1]) {
				return [2][2]int{edges[x], edges[y]}, true
			}
		}
	}
	return [2][2]int{}, false
}
