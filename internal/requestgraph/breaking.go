package requestgraph

import (
	"fmt"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/wavelength"
)

// Breaking the request graph (paper Definition 2 and Section IV-A).
//
// Breaking G at edge a_i→b_u removes a_i, b_u, all edges incident to them,
// and every edge that crosses a_i→b_u. The paper then left-shifts the
// vertex orders so a_{i+1} and b_{u+1} come first; in that ordering the
// reduced graph G' is convex with monotone interval endpoints (Lemma 2), so
// the First Available Algorithm applies.

// Broken is a reduced request graph in its convex reordering.
type Broken struct {
	// I and U identify the breaking edge a_I→b_U in the original graph.
	I, U int
	// Lefts maps reduced left position → original left index:
	// a_{i+1}, …, a_{n−1}, a_0, …, a_{i−1}.
	Lefts []int
	// Rights maps reduced right position → original right index:
	// b_{u+1}, …, b_{k−1}, b_0, …, b_{u−1}.
	Rights []int
	// Begin and End give, per reduced left position, the adjacency
	// interval in reduced right positions (Begin > End means empty).
	// Occupancy is NOT applied here; consumers must skip occupied
	// columns via the original graph.
	Begin, End []int
}

// RightPos returns the reduced position of original right vertex v, which
// must not be the broken vertex U.
func (br *Broken) RightPos(v, k int) int {
	p := v - br.U - 1
	if p < 0 {
		p += k
	}
	return p
}

// Break breaks g at edge a_i→b_u and returns the reduced graph in convex
// form using the closed-form adjacency intervals of Section IV-A. It
// returns an error if (i, u) is not an edge by convertibility. This is the
// production path used by the Break-and-First-Available scheduler.
func (g *Graph) Break(i, u int) (*Broken, error) {
	conv := g.conv
	if conv.Kind() != wavelength.Circular {
		return nil, fmt.Errorf("requestgraph: Break requires circular conversion, have %v", conv.Kind())
	}
	k := conv.K()
	n := len(g.reqs)
	if i < 0 || i >= n {
		return nil, fmt.Errorf("requestgraph: break vertex a%d out of range", i)
	}
	if u < 0 || u >= k || !conv.CanConvert(g.reqs[i].W, wavelength.Wavelength(u)) {
		return nil, fmt.Errorf("requestgraph: (a%d,b%d) is not an edge", i, u)
	}
	e, f := conv.MinusReach(), conv.PlusReach()
	wi := g.W(i)
	ur := rep(u, wi-e, k)

	br := &Broken{
		I: i, U: u,
		Lefts:  make([]int, 0, n-1),
		Rights: make([]int, 0, k-1),
		Begin:  make([]int, 0, n-1),
		End:    make([]int, 0, n-1),
	}
	for p := 1; p < k; p++ {
		br.Rights = append(br.Rights, (u+p)%k)
	}
	// pos maps an unreduced wavelength integer to its reduced right
	// position; valid only for wavelengths ≢ u (mod k).
	pos := func(x int) int {
		p := (x - u - 1) % k
		if p < 0 {
			p += k
		}
		return p
	}
	appendLeft := func(j int) {
		wj := g.W(j)
		var lo, hi int // unreduced interval of the new adjacency set
		switch {
		case wj == wi:
			if j > i {
				lo, hi = ur+1, wi+f
			} else {
				lo, hi = wi-e, ur-1
			}
		case wavelength.InRing(wj, ur-f, wi-1, k):
			// Minus-side group: edges above b_u were crossing edges of
			// a_i→b_u (or b_u itself) and are gone.
			wjr := rep(wj, ur-f, k)
			lo, hi = wjr-e, ur-1
		case wavelength.InRing(wj, wi+1, ur+e, k):
			// Plus-side group: edges below b_u are gone.
			wjr := rep(wj, wi+1, k)
			lo, hi = ur+1, wjr+f
		default:
			// Not adjacent to b_u: adjacency unchanged.
			lo, hi = wj-e, wj+f
		}
		br.Lefts = append(br.Lefts, j)
		if hi < lo {
			br.Begin = append(br.Begin, 1)
			br.End = append(br.End, 0)
			return
		}
		br.Begin = append(br.Begin, pos(lo))
		br.End = append(br.End, pos(hi))
	}
	for j := i + 1; j < n; j++ {
		appendLeft(j)
	}
	for j := 0; j < i; j++ {
		appendLeft(j)
	}
	return br, nil
}

// BreakExplicit breaks g at edge a_i→b_u by direct application of
// Definitions 1 and 2: it enumerates surviving edges with the Crosses
// predicate. It is the oracle the closed-form Break is tested against.
// The returned bipartite graph is indexed by the Broken orderings and has
// occupancy applied (edges to occupied channels omitted).
func (g *Graph) BreakExplicit(i, u int) (*Broken, *bipartite.Graph, error) {
	br, err := g.Break(i, u)
	if err != nil {
		return nil, nil, err
	}
	k := g.conv.K()
	n := len(g.reqs)
	leftPos := make(map[int]int, n-1)
	for p, j := range br.Lefts {
		leftPos[j] = p
	}
	bg := bipartite.NewGraph(n-1, k-1)
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		g.Adjacency(j).Each(func(v int) {
			if v == u || g.occupied[v] {
				return
			}
			if g.Crosses(j, v, i, u) {
				return
			}
			bg.AddEdge(leftPos[j], br.RightPos(v, k))
		})
	}
	return br, bg, nil
}

// ConvexGraph converts the closed-form reduced graph to the bipartite
// package's convex representation (occupancy not applied).
func (br *Broken) ConvexGraph(k int) (*bipartite.ConvexGraph, error) {
	return bipartite.NewConvexGraph(k-1, br.Begin, br.End)
}
