package requestgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/wavelength"
)

// TestFigure5Break reproduces Fig. 5: breaking the circular request graph
// of Fig. 3(a) at edge a2→b1. After deleting a2, b1, incident edges and
// crossing edges, the vertices are reordered with a3 and b2 on top.
func TestFigure5Break(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	br, err := g.Break(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(br.Lefts, []int{3, 4, 5, 6, 0, 1}) {
		t.Fatalf("Lefts = %v", br.Lefts)
	}
	if !reflect.DeepEqual(br.Rights, []int{2, 3, 4, 5, 0}) {
		t.Fatalf("Rights = %v", br.Rights)
	}
	// Reduced adjacency in original channel ids:
	//   a3 (λ3): {b2,b3,b4}; a4 (λ4): {b3,b4,b5}; a5,a6 (λ5): {b4,b5,b0};
	//   a0, a1 (λ0): lose b1 and nothing else (their remaining channels
	//   b5, b0 precede the break point): {b5,b0}.
	wantAdj := map[int][]int{ // reduced left position → reduced right positions
		0: {0, 1, 2}, // a3 → b2,b3,b4
		1: {1, 2, 3}, // a4 → b3,b4,b5
		2: {2, 3, 4}, // a5 → b4,b5,b0
		3: {2, 3, 4}, // a6
		4: {3, 4},    // a0 → b5,b0
		5: {3, 4},    // a1
	}
	for p, want := range wantAdj {
		var got []int
		for q := br.Begin[p]; q <= br.End[p]; q++ {
			got = append(got, q)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("reduced left %d (a%d): positions %v, want %v", p, br.Lefts[p], got, want)
		}
	}
}

func TestBreakErrors(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	if _, err := g.Break(-1, 0); err == nil {
		t.Fatal("negative left index accepted")
	}
	if _, err := g.Break(99, 0); err == nil {
		t.Fatal("out-of-range left index accepted")
	}
	if _, err := g.Break(0, 2); err == nil {
		t.Fatal("non-edge accepted (a0 on λ0 cannot reach b2)")
	}
	if _, err := g.Break(0, -1); err == nil {
		t.Fatal("negative channel accepted")
	}
	gn := MustFromVector(nonc6(), fig3Vector)
	if _, err := gn.Break(0, 0); err == nil {
		t.Fatal("Break must reject non-circular conversion")
	}
}

func TestRightPos(t *testing.T) {
	br := &Broken{U: 1}
	cases := map[int]int{2: 0, 3: 1, 4: 2, 5: 3, 0: 4}
	for v, want := range cases {
		if got := br.RightPos(v, 6); got != want {
			t.Errorf("RightPos(%d) = %d, want %d", v, got, want)
		}
	}
}

// TestBreakMatchesExplicit: the closed-form Section IV-A intervals must
// produce exactly the edge set obtained by literal application of
// Definitions 1 and 2 via the Crosses predicate, across random circular
// instances and every possible breaking edge.
func TestBreakMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 8, 2, 0)
		n := g.NumRequests()
		for i := 0; i < n; i++ {
			for _, u := range g.AdjacencySlice(i) {
				br, oracle, err := g.BreakExplicit(i, u)
				if err != nil {
					t.Fatalf("%v: %v", g, err)
				}
				closed, err := br.ConvexGraph(g.K())
				if err != nil {
					t.Fatalf("%v: bad closed-form intervals: %v", g, err)
				}
				got := closed.Graph()
				if got.NLeft() != oracle.NLeft() || got.NRight() != oracle.NRight() {
					t.Fatalf("%v: shape mismatch", g)
				}
				for a := 0; a < got.NLeft(); a++ {
					for b := 0; b < got.NRight(); b++ {
						if got.HasEdge(a, b) != oracle.HasEdge(a, b) {
							t.Fatalf("%v: break(a%d,b%d): reduced edge (%d,%d) closed=%v oracle=%v",
								g, i, u, a, b, got.HasEdge(a, b), oracle.HasEdge(a, b))
						}
					}
				}
			}
		}
	}
}

// TestBreakMonotone verifies Lemma 2: in the reduced ordering, BEGIN and
// END are nondecreasing over left positions (restricted to non-empty
// neighborhoods), which is what makes First Available applicable.
func TestBreakMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 9, 2, 0)
		n := g.NumRequests()
		for i := 0; i < n; i++ {
			for _, u := range g.AdjacencySlice(i) {
				br, err := g.Break(i, u)
				if err != nil {
					t.Fatal(err)
				}
				prevB, prevE := -1, -1
				for p := range br.Begin {
					if br.Begin[p] > br.End[p] {
						continue // empty neighborhood
					}
					if br.Begin[p] < prevB || br.End[p] < prevE {
						t.Fatalf("%v: break(a%d,b%d): intervals not monotone at position %d: begin=%v end=%v",
							g, i, u, p, br.Begin, br.End)
					}
					prevB, prevE = br.Begin[p], br.End[p]
				}
			}
		}
	}
}

// TestBreakPositionsInRange: interval endpoints must be legal reduced
// positions [0, k−2].
func TestBreakPositionsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 9, 2, 0)
		n := g.NumRequests()
		for i := 0; i < n; i++ {
			for _, u := range g.AdjacencySlice(i) {
				br, err := g.Break(i, u)
				if err != nil {
					t.Fatal(err)
				}
				for p := range br.Begin {
					if br.Begin[p] > br.End[p] {
						continue
					}
					if br.Begin[p] < 0 || br.End[p] > g.K()-2 {
						t.Fatalf("%v: break(a%d,b%d): interval [%d,%d] out of range",
							g, i, u, br.Begin[p], br.End[p])
					}
				}
			}
		}
	}
}

// TestBreakingEdgePlusReducedMatchingIsMatching: Lemma 3 direction — any
// matching of G′ plus the breaking edge is a matching of G.
func TestBreakingEdgePlusReducedMatchingIsMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 8, 2, 0)
		n := g.NumRequests()
		if n == 0 {
			continue
		}
		i := rng.Intn(n)
		adj := g.AdjacencySlice(i)
		if len(adj) == 0 {
			continue
		}
		u := adj[rng.Intn(len(adj))]
		br, reduced, err := g.BreakExplicit(i, u)
		if err != nil {
			t.Fatal(err)
		}
		mr := bipartite.HopcroftKarp(reduced)
		// Lift to the original graph and append the breaking edge.
		bg := g.Bipartite()
		lifted := bipartite.NewMatching(bg.NLeft(), bg.NRight())
		for p, q := range mr.RightOf {
			if q == bipartite.Unmatched {
				continue
			}
			lifted.Add(br.Lefts[p], br.Rights[q])
		}
		lifted.Add(i, u)
		if err := lifted.Validate(bg); err != nil {
			t.Fatalf("%v: lifted matching invalid: %v", g, err)
		}
	}
}
