package requestgraph

import (
	"math/rand"
	"testing"

	"wdmsched/internal/bipartite"
	"wdmsched/internal/wavelength"
)

// TestDefinition1PaperExamples checks the crossing examples the paper gives
// immediately after Definition 1.
func TestDefinition1PaperExamples(t *testing.T) {
	// "edges a0b1 and a1b0 cross each other" — same wavelength λ0
	// (Case 2), shown on Fig. 3(b); the geometry is identical in 3(a).
	gn := MustFromVector(nonc6(), fig3Vector)
	if !gn.Crosses(0, 1, 1, 0) {
		t.Error("a0b1 must cross a1b0")
	}
	if !gn.Crosses(1, 0, 0, 1) {
		t.Error("a1b0 must cross a0b1")
	}
	// "edge a3b4 crosses a4b3" — Case 1.
	if !gn.Crosses(3, 4, 4, 3) {
		t.Error("a3b4 must cross a4b3")
	}
	if !gn.Crosses(4, 3, 3, 4) {
		t.Error("a4b3 must cross a3b4")
	}
	// "edge a0b5 and a4b4, though intersecting in the figure, are not a
	// pair of crossing edges" — needs the circular graph, where a0→b5
	// exists.
	gc := MustFromVector(circ6(), fig3Vector)
	if gc.Crosses(0, 5, 4, 4) {
		t.Error("a0b5 must not cross a4b4")
	}
	if gc.Crosses(4, 4, 0, 5) {
		t.Error("a4b4 must not cross a0b5")
	}
	// Parallel same-wavelength edges do not cross: a0b0 vs a1b1.
	if gc.Crosses(0, 0, 1, 1) || gc.Crosses(1, 1, 0, 0) {
		t.Error("a0b0 / a1b1 must not cross")
	}
	// Wrap-around crossing: a0 (λ0) → b5 and a6 (λ5) → b0.
	if !gc.Crosses(6, 0, 0, 5) {
		t.Error("a6b0 must cross a0b5")
	}
	if !gc.Crosses(0, 5, 6, 0) {
		t.Error("a0b5 must cross a6b0")
	}
}

func TestCrossesSelfEdgeNever(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	if g.Crosses(0, 0, 0, 1) {
		t.Fatal("edges of the same left vertex never cross")
	}
}

func TestCrossesPanicsOnNonEdge(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-edge")
		}
	}()
	g.Crosses(0, 2, 1, 0) // a0 (λ0) is not adjacent to b2
}

// TestCrossesSymmetric: Definition 1 describes a geometric crossing, so the
// relation must be symmetric across random circular instances.
func TestCrossesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 9, 2, 0)
		n := g.NumRequests()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				for _, u := range g.AdjacencySlice(i) {
					for _, v := range g.AdjacencySlice(j) {
						a := g.Crosses(j, v, i, u)
						b := g.Crosses(i, u, j, v)
						if a != b {
							t.Fatalf("%v: Crosses(a%d b%d, a%d b%d)=%v but reverse=%v",
								g, j, v, i, u, a, b)
						}
					}
				}
			}
		}
	}
}

// TestCrossesMatchesGeometry cross-checks Definition 1 against a direct
// geometric interpretation for circular graphs: edges (j,v) and (i,u) cross
// iff, measuring positions relative to one edge, the two chords of the ring
// interleave. We express the geometric check independently: normalize both
// wavelengths and both channels to representatives within windows anchored
// at a_i's window, then compare orientations.
func TestCrossesMatchesGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 8, 2, 0)
		conv := g.Conversion()
		k := conv.K()
		e, f := conv.MinusReach(), conv.PlusReach()
		n := g.NumRequests()
		for i := 0; i < n; i++ {
			wi := g.W(i)
			for _, u := range g.AdjacencySlice(i) {
				ur := rep(u, wi-e, k)
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					wj := g.W(j)
					for _, v := range g.AdjacencySlice(j) {
						// Geometric oracle: a_j's wavelength lies strictly
						// between the two endpoints' "span" on one side and
						// its matched channel on the other side of b_u.
						want := false
						// Left order: same wavelength uses submission
						// index; different wavelengths use ring position
						// relative to a_i's window.
						if wj == wi {
							vr := rep(v, wj-e, k)
							if j < i && vr > ur {
								want = true
							}
							if j > i && vr < ur {
								want = true
							}
						} else if wavelength.InRing(wj, ur-f+1, wi-1, k) {
							wjr := rep(wj, ur-f+1, k)
							vr := rep(v, wjr-e, k)
							if vr > ur {
								want = true
							}
						} else if wavelength.InRing(wj, wi+1, ur-1+e, k) {
							wjr := rep(wj, wi+1, k)
							vr := rep(v, wjr-e, k)
							if vr < ur {
								want = true
							}
						}
						if got := g.Crosses(j, v, i, u); got != want {
							t.Fatalf("%v: Crosses(a%d→b%d, a%d→b%d) = %v, geometric oracle %v",
								g, j, v, i, u, got, want)
						}
					}
				}
			}
		}
	}
}

// TestUncrossEliminatesCrossings: Lemma 1 — any maximum matching can be
// rewritten into one with no crossing edges, same cardinality.
func TestUncrossEliminatesCrossings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sawCrossing := false
	for trial := 0; trial < 400; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 8, 3, 0)
		bg := g.Bipartite()
		m := bipartite.HopcroftKarp(bg)
		if g.NumCrossings(m) > 0 {
			sawCrossing = true
		}
		un, err := g.Uncross(m)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := un.Validate(bg); err != nil {
			t.Fatalf("%v: uncrossed matching invalid: %v", g, err)
		}
		if un.Size() != m.Size() {
			t.Fatalf("%v: uncross changed size %d→%d", g, m.Size(), un.Size())
		}
		if n := g.NumCrossings(un); n != 0 {
			t.Fatalf("%v: %d crossings remain", g, n)
		}
	}
	if !sawCrossing {
		t.Fatal("test never exercised an actual crossing; inputs too easy")
	}
}

// TestUncrossPreservesSaturation: the Lemma 4 proof step — vertices
// saturated before uncrossing stay saturated.
func TestUncrossPreservesSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 8, 2, 0)
		bg := g.Bipartite()
		m := bipartite.HopcroftKarp(bg)
		un, err := g.Uncross(m)
		if err != nil {
			t.Fatal(err)
		}
		for a := range m.RightOf {
			if m.RightOf[a] != bipartite.Unmatched && un.RightOf[a] == bipartite.Unmatched {
				t.Fatalf("%v: a%d lost saturation", g, a)
			}
		}
		for b := range m.LeftOf {
			if m.LeftOf[b] != bipartite.Unmatched && un.LeftOf[b] == bipartite.Unmatched {
				t.Fatalf("%v: b%d lost saturation", g, b)
			}
		}
	}
}

// TestLemma5OppositeGroupsCross verifies Lemma 5: if edges a_j→b_v and
// a_l→b_w both cross a_i→b_u, with W(j) on the plus side of W(i)
// (W(j) ∈ [W(i)+1, u−1+e]) and W(l) on the minus side
// (W(l) ∈ [u−f+1, W(i)−1]), then a_j→b_v and a_l→b_w cross each other.
func TestLemma5OppositeGroupsCross(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	checked := 0
	for trial := 0; trial < 200 && checked < 2000; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 9, 2, 0)
		conv := g.Conversion()
		if conv.IsFullRange() {
			continue
		}
		k := conv.K()
		e, f := conv.MinusReach(), conv.PlusReach()
		n := g.NumRequests()
		for i := 0; i < n; i++ {
			wi := g.W(i)
			for _, u := range g.AdjacencySlice(i) {
				ur := rep(u, wi-e, k)
				for j := 0; j < n; j++ {
					if j == i || !wavelength.InRing(g.W(j), wi+1, ur-1+e, k) {
						continue
					}
					for l := 0; l < n; l++ {
						if l == i || l == j || !wavelength.InRing(g.W(l), ur-f+1, wi-1, k) {
							continue
						}
						for _, v := range g.AdjacencySlice(j) {
							if !g.Crosses(j, v, i, u) {
								continue
							}
							for _, w := range g.AdjacencySlice(l) {
								if !g.Crosses(l, w, i, u) {
									continue
								}
								checked++
								if !g.Crosses(j, v, l, w) {
									t.Fatalf("%v: a%d→b%d and a%d→b%d both cross a%d→b%d but not each other",
										g, j, v, l, w, i, u)
								}
							}
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no opposite-group crossing pairs exercised")
	}
}

// TestLemma6CrossingBound verifies Lemma 6: edge a_i→b_u crosses at most
// max{δ(u)−1, d−δ(u)} edges of any no-crossing-edge maximum matching. We
// sample maximum matchings via Hopcroft–Karp, uncross them (Lemma 1), and
// count the crossings of every non-matching edge against the bound.
func TestLemma6CrossingBound(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sawPositive := false
	for trial := 0; trial < 150; trial++ {
		g := randomGraphFor(rng, wavelength.Circular, 8, 2, 0)
		conv := g.Conversion()
		if conv.IsFullRange() {
			continue
		}
		d := conv.Degree()
		bg := g.Bipartite()
		m, err := g.Uncross(bipartite.HopcroftKarp(bg))
		if err != nil {
			t.Fatal(err)
		}
		edges := m.Edges()
		for i := 0; i < g.NumRequests(); i++ {
			for _, u := range g.AdjacencySlice(i) {
				delta, ok := conv.Delta(wavelength.Wavelength(g.W(i)), wavelength.Wavelength(u))
				if !ok {
					t.Fatalf("%v: δ undefined for window member", g)
				}
				bound := delta - 1
				if d-delta > bound {
					bound = d - delta
				}
				crossings := 0
				for _, e := range edges {
					if e[0] == i && e[1] == u {
						crossings = 0 // the edge itself is in M: crosses nothing
						break
					}
					if g.Crosses(e[0], e[1], i, u) {
						crossings++
					}
				}
				if crossings > bound {
					t.Fatalf("%v: edge (a%d,b%d) crosses %d > bound %d (δ=%d, d=%d)",
						g, i, u, crossings, bound, delta, d)
				}
				if crossings > 0 {
					sawPositive = true
				}
			}
		}
	}
	if !sawPositive {
		t.Fatal("no crossings ever observed; inputs too easy")
	}
}

func TestCrossingPairsCount(t *testing.T) {
	g := MustFromVector(circ6(), fig3Vector)
	bg := g.Bipartite()
	m := bipartite.NewMatching(bg.NLeft(), bg.NRight())
	m.Add(0, 1)
	m.Add(1, 0)
	pairs := g.CrossingPairs(m)
	if len(pairs) != 2 { // symmetric relation reported in both directions
		t.Fatalf("pairs = %v", pairs)
	}
	if g.NumCrossings(m) != 2 {
		t.Fatalf("NumCrossings = %d", g.NumCrossings(m))
	}
}
