package traffic

import (
	"fmt"
	"math"
)

// SelfSimilar models each input fiber as the aggregate of many independent
// per-user on–off sources — the Willinger/Taqqu/Sherman construction: users
// with heavy-tailed (Pareto) ON periods and geometric OFF periods
// superpose into long-range-dependent, self-similar aggregate load. The
// number of simultaneously active users on a fiber drives how many of the
// fiber's k wavelengths carry a packet that slot (capped at k); each
// wavelength keeps a sticky destination for as long as it stays busy,
// redrawn whenever it goes idle and comes back — so busy periods look like
// flows, not independent coin flips.
//
// Per-user state is kept as a calendar of pending ON/OFF transitions in a
// binary min-heap per fiber: O(users) memory, O(log users) per transition,
// and zero allocations in steady state (every user always has exactly one
// scheduled transition, so the preallocated heap never grows).
type SelfSimilar struct {
	cfg   Config
	load  float64
	alpha float64
	users int

	rng     *RNG
	meanOn  float64
	meanOff float64

	fibers []ssFiber
}

// ssFiber is one input fiber's aggregation state.
type ssFiber struct {
	events  []uint64 // min-heap of slot<<1|kind; kind 1 = user turns ON
	active  int      // users currently ON
	lastOn  int      // wavelengths emitting last slot (for sticky dests)
	dest    []int    // per-wavelength sticky destination
	deficit int      // users beyond k whose packets were clipped (informational)
}

const (
	ssEvOff = 0 // scheduled transition ON→OFF
	ssEvOn  = 1 // scheduled transition OFF→ON
)

// NewSelfSimilar builds the aggregated workload: users independent on–off
// sources per input fiber, Pareto(alpha) ON periods, geometric OFF periods
// sized so the expected number of active users per fiber is load·k. load
// must be in (0, 1), alpha in (1.05, ∞) (alpha < 2 for the self-similar
// regime), and users ≥ k so the fiber can actually reach full load.
func NewSelfSimilar(cfg Config, load, alpha float64, users int) (*SelfSimilar, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("traffic: selfsimilar load %v outside (0,1)", load)
	}
	if alpha <= 1.05 {
		return nil, fmt.Errorf("traffic: selfsimilar alpha %v must exceed 1.05 (finite mean)", alpha)
	}
	if users < cfg.K {
		return nil, fmt.Errorf("traffic: selfsimilar users %d < k=%d cannot reach full load", users, cfg.K)
	}
	// Per-user stationary ON probability so E[active] = load·k.
	pOn := load * float64(cfg.K) / float64(users)
	meanOn := paretoCeilMean(alpha)
	meanOff := meanOn * (1 - pOn) / pOn
	if meanOff < 1 {
		return nil, fmt.Errorf("traffic: selfsimilar load %v needs more than %d users for alpha %v",
			load, users, alpha)
	}
	g := &SelfSimilar{
		cfg: cfg, load: load, alpha: alpha, users: users,
		rng: NewRNG(cfg.Seed), meanOn: meanOn, meanOff: meanOff,
		fibers: make([]ssFiber, cfg.N),
	}
	cycle := int(math.Ceil(meanOn + meanOff))
	for i := range g.fibers {
		f := &g.fibers[i]
		f.events = make([]uint64, 0, users)
		f.dest = make([]int, cfg.K)
		for w := range f.dest {
			f.dest[w] = g.rng.Intn(cfg.N)
		}
		// Spread user phases uniformly over one mean cycle: each user
		// starts OFF with its first ON transition at a uniform offset, so
		// the aggregate ramps to stationarity without a synchronized
		// thundering herd at slot 0.
		for u := 0; u < users; u++ {
			f.push(uint64(g.rng.Intn(cycle))<<1 | ssEvOn)
		}
	}
	return g, nil
}

// push inserts an event into the fiber's min-heap.
func (f *ssFiber) push(ev uint64) {
	f.events = append(f.events, ev)
	i := len(f.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if f.events[parent] <= f.events[i] {
			break
		}
		f.events[parent], f.events[i] = f.events[i], f.events[parent]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (f *ssFiber) pop() uint64 {
	top := f.events[0]
	last := len(f.events) - 1
	f.events[0] = f.events[last]
	f.events = f.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(f.events) && f.events[l] < f.events[smallest] {
			smallest = l
		}
		if r < len(f.events) && f.events[r] < f.events[smallest] {
			smallest = r
		}
		if smallest == i {
			return top
		}
		f.events[i], f.events[smallest] = f.events[smallest], f.events[i]
		i = smallest
	}
}

// Name implements Generator.
func (g *SelfSimilar) Name() string {
	return fmt.Sprintf("selfsimilar(load=%.2f,alpha=%.2f,users=%d)", g.load, g.alpha, g.users)
}

// Load reports the configured per-channel load target.
func (g *SelfSimilar) Load() float64 { return g.load }

// Generate implements Generator.
func (g *SelfSimilar) Generate(slot int, dst []Packet) []Packet {
	uslot := uint64(slot)
	for in := range g.fibers {
		f := &g.fibers[in]
		// Fire every transition due at or before this slot.
		for len(f.events) > 0 && f.events[0]>>1 <= uslot {
			ev := f.pop()
			if ev&1 == ssEvOn {
				f.active++
				on := g.rng.Pareto(g.alpha)
				if on > 1<<40 {
					on = 1 << 40
				}
				f.push((uslot+uint64(math.Ceil(on)))<<1 | ssEvOff)
			} else {
				f.active--
				f.push((uslot+uint64(g.rng.Geometric(g.meanOff)))<<1 | ssEvOn)
			}
		}
		emit := f.active
		if emit > g.cfg.K {
			f.deficit += emit - g.cfg.K
			emit = g.cfg.K
		}
		// Sticky destinations: wavelengths newly busy this slot pick a
		// fresh destination; wavelengths busy since last slot keep theirs.
		for w := f.lastOn; w < emit; w++ {
			f.dest[w] = g.rng.Intn(g.cfg.N)
		}
		f.lastOn = emit
		for w := 0; w < emit; w++ {
			dst = append(dst, Packet{
				InputFiber: in,
				Wavelength: w,
				DestFiber:  f.dest[w],
				Duration:   g.cfg.Hold.draw(g.rng),
				Slot:       slot,
			})
		}
	}
	return dst
}

// Clipped reports how many user-slots exceeded the k wavelengths of their
// fiber and were clipped (aggregate demand beyond physical capacity).
func (g *SelfSimilar) Clipped() int {
	total := 0
	for i := range g.fibers {
		total += g.fibers[i].deficit
	}
	return total
}

// Diurnal modulates another generator with a load curve: packets are
// thinned with time-varying probability so the offered load follows
// floor + (1−floor)·(½ − ½·cos(2π·slot/period)) — the trough at slot 0,
// the peak half a period in. This models the day/night cycle of an
// aggregate of users in one timezone; thinning preserves the burst
// structure of the underlying process within each phase of the curve.
type Diurnal struct {
	inner  Generator
	period int
	floor  float64
	rng    *RNG
}

// WithDiurnal wraps gen with a diurnal load curve of the given period in
// slots and trough fraction floor in [0, 1] (1 = no modulation).
func WithDiurnal(gen Generator, period int, floor float64, seed uint64) (*Diurnal, error) {
	if period < 2 {
		return nil, fmt.Errorf("traffic: diurnal period %d must be ≥ 2", period)
	}
	if floor < 0 || floor > 1 {
		return nil, fmt.Errorf("traffic: diurnal floor %v outside [0,1]", floor)
	}
	return &Diurnal{inner: gen, period: period, floor: floor, rng: NewRNG(seed)}, nil
}

// Name implements Generator.
func (g *Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%s,period=%d,floor=%.2f)", g.inner.Name(), g.period, g.floor)
}

// Level returns the modulation factor in [floor, 1] at the given slot.
func (g *Diurnal) Level(slot int) float64 {
	phase := 2 * math.Pi * float64(slot%g.period) / float64(g.period)
	return g.floor + (1-g.floor)*(0.5-0.5*math.Cos(phase))
}

// Generate implements Generator.
func (g *Diurnal) Generate(slot int, dst []Packet) []Packet {
	start := len(dst)
	dst = g.inner.Generate(slot, dst)
	keep := g.Level(slot)
	// Thin in place: each packet survives with probability keep.
	out := start
	for i := start; i < len(dst); i++ {
		if g.rng.Bernoulli(keep) {
			dst[out] = dst[i]
			out++
		}
	}
	return dst[:out]
}

var (
	_ Generator = (*SelfSimilar)(nil)
	_ Generator = (*Diurnal)(nil)
)
