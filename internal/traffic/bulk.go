package traffic

import "fmt"

// BulkTransfer is an open-shop workload: a demand matrix D where D[i][j]
// counts unit transfers from input fiber i to output fiber j, all present
// at slot 0, and the metric of interest is the makespan — the number of
// slots until the last transfer completes — rather than per-slot
// throughput (PAPERS.md: Aslanidis & Birmpilis, "An Open Shop Approach in
// Approximating Optimal Data Transmission Duration in WDM Networks").
//
// Unlike the stochastic generators, BulkTransfer is closed-loop: each slot
// it offers up to k packets per input fiber (one per wavelength) toward
// destinations with remaining demand, and the driver reports back which
// offers were actually switched by calling Deliver for every grant — see
// interconnect.RunBulk. Offers that lost contention are simply re-offered
// in later slots. At most Remaining(i, j) offers are made per (i, j) pair
// per slot, so grants can never exceed demand.
type BulkTransfer struct {
	cfg       Config
	remaining [][]int
	left      int   // total remaining units
	rr        []int // per-input round-robin destination cursor
	offered   int64 // cumulative offers, for ledger checks
	delivered int64
}

// NewBulkTransfer builds the workload from a demand matrix: demand[i][j]
// is the number of unit transfers from input fiber i to output fiber j.
// The matrix must be N×N with non-negative entries.
func NewBulkTransfer(cfg Config, demand [][]int) (*BulkTransfer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(demand) != cfg.N {
		return nil, fmt.Errorf("traffic: demand matrix has %d rows, want %d", len(demand), cfg.N)
	}
	g := &BulkTransfer{
		cfg:       cfg,
		remaining: make([][]int, cfg.N),
		rr:        make([]int, cfg.N),
	}
	for i, row := range demand {
		if len(row) != cfg.N {
			return nil, fmt.Errorf("traffic: demand row %d has %d entries, want %d", i, len(row), cfg.N)
		}
		// Stagger the destination cursors: when per-pair demand exceeds k,
		// aligned cursors would march every input onto the same output each
		// slot, making the output fiber the bottleneck regardless of
		// scheduler. The diagonal start spreads the offers like the
		// column-disjoint rounds of an open-shop decomposition.
		g.rr[i] = i % cfg.N
		g.remaining[i] = make([]int, cfg.N)
		for j, d := range row {
			if d < 0 {
				return nil, fmt.Errorf("traffic: negative demand %d at (%d,%d)", d, i, j)
			}
			g.remaining[i][j] = d
			g.left += d
		}
	}
	return g, nil
}

// RandomDemand builds a random demand matrix with the given total number
// of unit transfers spread uniformly over the N² pairs — a convenience
// for soak runs and experiments.
func RandomDemand(n, total int, seed uint64) [][]int {
	rng := NewRNG(seed)
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
	}
	for t := 0; t < total; t++ {
		d[rng.Intn(n)][rng.Intn(n)]++
	}
	return d
}

// Name implements Generator.
func (g *BulkTransfer) Name() string {
	return fmt.Sprintf("bulk(left=%d)", g.left)
}

// Generate implements Generator. Offers are unit-duration (open-shop unit
// operations); round-robin over destinations with remaining demand keeps
// each input's wavelengths spread across columns.
func (g *BulkTransfer) Generate(slot int, dst []Packet) []Packet {
	n, k := g.cfg.N, g.cfg.K
	for in := 0; in < n; in++ {
		row := g.remaining[in]
		w := 0
		// Walk destinations round-robin from the cursor, offering up to
		// the pair's remaining demand, until the fiber's k wavelengths are
		// exhausted or no demand is left in the row.
		for step := 0; step < n && w < k; step++ {
			j := (g.rr[in] + step) % n
			for c := 0; c < row[j] && w < k; c++ {
				dst = append(dst, Packet{
					InputFiber: in,
					Wavelength: w,
					DestFiber:  j,
					Duration:   1,
					Slot:       slot,
				})
				g.offered++
				w++
			}
		}
		g.rr[in] = (g.rr[in] + 1) % n
	}
	return dst
}

// Deliver records that one unit from input fiber in to output fiber out
// was switched. The driver calls it once per grant observed.
func (g *BulkTransfer) Deliver(in, out int) error {
	if in < 0 || in >= g.cfg.N || out < 0 || out >= g.cfg.N {
		return fmt.Errorf("traffic: bulk delivery (%d,%d) out of shape", in, out)
	}
	if g.remaining[in][out] <= 0 {
		return fmt.Errorf("traffic: bulk over-delivery at (%d,%d)", in, out)
	}
	g.remaining[in][out]--
	g.left--
	g.delivered++
	return nil
}

// Done reports whether every transfer has been delivered.
func (g *BulkTransfer) Done() bool { return g.left == 0 }

// Remaining reports the total units not yet delivered.
func (g *BulkTransfer) Remaining() int { return g.left }

// Delivered reports the cumulative delivered units.
func (g *BulkTransfer) Delivered() int64 { return g.delivered }

var _ Generator = (*BulkTransfer)(nil)
