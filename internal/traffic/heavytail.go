package traffic

import (
	"fmt"
	"math"
	"sort"
)

// zipfCDF precomputes the cumulative distribution of a Zipf law over n
// ranks: weight(r) ∝ 1/(r+1)^s for rank r in [0, n). s = 0 degenerates to
// the uniform distribution. Rank 0 is the most popular value.
type zipfCDF struct {
	cum []float64
}

func newZipfCDF(n int, s float64) zipfCDF {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	cum[n-1] = 1 // absorb rounding
	return zipfCDF{cum: cum}
}

// draw samples a rank in [0, len(cum)).
func (z zipfCDF) draw(rng *RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// paretoCeilMean returns E[ceil(X)] for X ~ Pareto(alpha, 1):
// E[ceil(X)] = Σ_{n≥0} P(ceil(X) > n) = 1 + Σ_{n≥1} n^(−alpha) = 1 + ζ(alpha).
// The zeta sum is evaluated directly with an Euler–Maclaurin tail
// correction, accurate to well under a slot for alpha ≥ 1.05.
func paretoCeilMean(alpha float64) float64 {
	const cut = 1 << 14
	sum := 0.0
	for n := 1; n <= cut; n++ {
		sum += math.Pow(float64(n), -alpha)
	}
	// Tail: ∫_{cut}^∞ x^(−alpha) dx + ½·cut^(−alpha).
	sum += math.Pow(cut, 1-alpha)/(alpha-1) + 0.5*math.Pow(cut, -alpha)
	return 1 + sum
}

// HeavyTail is heavy-tailed on–off traffic with skewed destinations: each
// input channel alternates between ON bursts whose length is a discretized
// Pareto(alpha) draw — infinite variance for alpha < 2, so burst sizes have
// no typical scale — and geometric OFF gaps sized so the stationary
// per-channel load matches the configured target. Every burst addresses
// one destination fiber drawn from a Zipf(zipf) popularity law over the N
// outputs (rank 0 = fiber 0 is the most popular), the skewed demand shape
// of light-trail and grooming workloads.
type HeavyTail struct {
	cfg    Config
	load   float64
	alpha  float64
	zipf   float64
	rng    *RNG
	dests  zipfCDF
	onRem  []int // per channel: remaining ON slots (0 = OFF)
	offRem []int // per channel: remaining OFF slots
	dest   []int // per channel: current burst destination
	meanOn float64
}

// NewHeavyTail builds the heavy-tailed workload. load is the per-channel
// stationary load in (0, 1); alpha > 1 is the Pareto tail index of the
// burst lengths (1 < alpha < 2 gives the infinite-variance regime);
// zipf ≥ 0 is the destination skew exponent (0 = uniform).
func NewHeavyTail(cfg Config, load, alpha, zipf float64) (*HeavyTail, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("traffic: heavytail load %v outside (0,1)", load)
	}
	if alpha <= 1.05 {
		return nil, fmt.Errorf("traffic: heavytail alpha %v must exceed 1.05 (finite mean)", alpha)
	}
	if zipf < 0 {
		return nil, fmt.Errorf("traffic: negative zipf exponent %v", zipf)
	}
	meanOn := paretoCeilMean(alpha)
	meanOff := meanOn * (1 - load) / load
	if meanOff < 1 {
		return nil, fmt.Errorf("traffic: heavytail load %v too high for alpha %v (max %.3f)",
			load, alpha, meanOn/(meanOn+1))
	}
	n := cfg.N * cfg.K
	g := &HeavyTail{
		cfg: cfg, load: load, alpha: alpha, zipf: zipf,
		rng:   NewRNG(cfg.Seed),
		dests: newZipfCDF(cfg.N, zipf),
		onRem: make([]int, n), offRem: make([]int, n), dest: make([]int, n),
		meanOn: meanOn,
	}
	// Start each channel in (approximate) stationarity: ON with the
	// stationary probability, with a fresh cycle otherwise. Residual
	// lengths of heavy-tailed bursts have no finite mean for alpha < 2,
	// so a fresh draw — not a residual draw — keeps the warm-up bias
	// bounded.
	for ch := range g.onRem {
		if g.rng.Bernoulli(load) {
			g.onRem[ch] = g.burstLen()
			g.dest[ch] = g.dests.draw(g.rng)
		} else {
			g.offRem[ch] = g.rng.Geometric(meanOff)
		}
	}
	return g, nil
}

// burstLen draws one discretized Pareto burst length ≥ 1.
func (g *HeavyTail) burstLen() int {
	x := g.rng.Pareto(g.alpha)
	// Guard the (astronomically rare) overflow of the float→int ceil.
	if x > 1<<40 {
		x = 1 << 40
	}
	return int(math.Ceil(x))
}

// MeanBurst reports the expected burst length E[ceil(Pareto(alpha))].
func (g *HeavyTail) MeanBurst() float64 { return g.meanOn }

// Name implements Generator.
func (g *HeavyTail) Name() string {
	return fmt.Sprintf("heavytail(load=%.2f,alpha=%.2f,zipf=%.2f)", g.load, g.alpha, g.zipf)
}

// Generate implements Generator.
func (g *HeavyTail) Generate(slot int, dst []Packet) []Packet {
	meanOff := g.meanOn * (1 - g.load) / g.load
	for in := 0; in < g.cfg.N; in++ {
		for w := 0; w < g.cfg.K; w++ {
			ch := in*g.cfg.K + w
			if g.onRem[ch] == 0 {
				if g.offRem[ch] > 0 {
					g.offRem[ch]-- // this slot is silent
					continue
				}
				// OFF gap exhausted: a new burst starts this slot.
				g.onRem[ch] = g.burstLen()
				g.dest[ch] = g.dests.draw(g.rng)
			}
			dst = append(dst, Packet{
				InputFiber: in,
				Wavelength: w,
				DestFiber:  g.dest[ch],
				Duration:   g.cfg.Hold.draw(g.rng),
				Slot:       slot,
			})
			g.onRem[ch]--
			if g.onRem[ch] == 0 {
				g.offRem[ch] = g.rng.Geometric(meanOff)
			}
		}
	}
	return dst
}

var _ Generator = (*HeavyTail)(nil)
