package traffic

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// Trace is a recorded workload: per-slot packet lists that can be replayed
// through the simulator. Traces make experiments repeatable across
// scheduler variants — every variant sees byte-identical arrivals.
type Trace struct {
	N, K  int
	Slots [][]Packet
}

// Record runs gen for slots time slots and captures the arrivals.
func Record(gen Generator, cfg Config, slots int) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if slots < 0 {
		return nil, fmt.Errorf("traffic: negative slot count %d", slots)
	}
	tr := &Trace{N: cfg.N, K: cfg.K, Slots: make([][]Packet, slots)}
	for s := 0; s < slots; s++ {
		tr.Slots[s] = gen.Generate(s, nil)
	}
	return tr, nil
}

// NumPackets counts the packets in the trace.
func (t *Trace) NumPackets() int {
	n := 0
	for _, s := range t.Slots {
		n += len(s)
	}
	return n
}

// Replay exposes the trace as a Generator. Slots beyond the recorded range
// are empty.
func (t *Trace) Replay() Generator { return &replayer{t} }

type replayer struct{ t *Trace }

func (r *replayer) Name() string { return fmt.Sprintf("trace(%d slots)", len(r.t.Slots)) }

func (r *replayer) Generate(slot int, dst []Packet) []Packet {
	if slot < 0 || slot >= len(r.t.Slots) {
		return dst
	}
	return append(dst, r.t.Slots[slot]...)
}

// traceHeader is the gob envelope; a version field keeps the format
// evolvable.
type traceHeader struct {
	Version int
	N, K    int
	Slots   int
}

const traceVersion = 1

// Write serializes the trace with encoding/gob.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Version: traceVersion, N: t.N, K: t.K, Slots: len(t.Slots)}); err != nil {
		return fmt.Errorf("traffic: encoding trace header: %w", err)
	}
	for s, pkts := range t.Slots {
		if err := enc.Encode(pkts); err != nil {
			return fmt.Errorf("traffic: encoding slot %d: %w", s, err)
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by Write.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h traceHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("traffic: decoding trace header: %w", err)
	}
	if h.Version != traceVersion {
		return nil, fmt.Errorf("traffic: unsupported trace version %d", h.Version)
	}
	if h.N <= 0 || h.K <= 0 || h.Slots < 0 {
		return nil, fmt.Errorf("traffic: corrupt trace header %+v", h)
	}
	t := &Trace{N: h.N, K: h.K, Slots: make([][]Packet, h.Slots)}
	for s := 0; s < h.Slots; s++ {
		if err := dec.Decode(&t.Slots[s]); err != nil {
			return nil, fmt.Errorf("traffic: decoding slot %d: %w", s, err)
		}
	}
	return t, nil
}

// Validate checks every packet lies within the trace's declared shape and
// has a positive duration.
func (t *Trace) Validate() error {
	for s, pkts := range t.Slots {
		for i, p := range pkts {
			if p.InputFiber < 0 || p.InputFiber >= t.N ||
				p.DestFiber < 0 || p.DestFiber >= t.N ||
				p.Wavelength < 0 || p.Wavelength >= t.K {
				return fmt.Errorf("traffic: slot %d packet %d out of shape: %+v", s, i, p)
			}
			if p.Duration < 1 {
				return fmt.Errorf("traffic: slot %d packet %d non-positive duration: %+v", s, i, p)
			}
		}
	}
	return nil
}
