package traffic

import (
	"math"
	"testing"
)

// empiricalLoad runs gen for slots slots and returns packets per
// channel-slot.
func empiricalLoad(t *testing.T, gen Generator, cfg Config, slots int) float64 {
	t.Helper()
	total := 0
	var buf []Packet
	for s := 0; s < slots; s++ {
		buf = gen.Generate(s, buf[:0])
		total += len(buf)
	}
	return float64(total) / (float64(slots) * float64(cfg.N*cfg.K))
}

func TestParetoTailIndex(t *testing.T) {
	// For X ~ Pareto(alpha, 1), ln X ~ Exp(alpha), so the MLE of alpha is
	// 1 / mean(ln X) — the Hill estimator over the whole sample.
	rng := NewRNG(7)
	for _, alpha := range []float64{1.3, 1.6, 2.0, 3.0} {
		const n = 200000
		sum := 0.0
		min := math.Inf(1)
		for i := 0; i < n; i++ {
			x := rng.Pareto(alpha)
			if x < min {
				min = x
			}
			sum += math.Log(x)
		}
		if min < 1 {
			t.Fatalf("alpha=%v: Pareto sample %v below scale 1", alpha, min)
		}
		est := float64(n) / sum
		if rel := math.Abs(est-alpha) / alpha; rel > 0.02 {
			t.Errorf("alpha=%v: Hill estimate %.3f off by %.1f%%", alpha, est, 100*rel)
		}
	}
}

func TestParetoPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0) did not panic")
		}
	}()
	NewRNG(1).Pareto(0)
}

func TestParetoCeilMean(t *testing.T) {
	// Monte Carlo cross-check of the ζ-based closed form.
	rng := NewRNG(11)
	for _, alpha := range []float64{1.5, 2.2} {
		const n = 2000000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += math.Ceil(rng.Pareto(alpha))
		}
		emp := sum / n
		want := paretoCeilMean(alpha)
		if rel := math.Abs(emp-want) / want; rel > 0.03 {
			t.Errorf("alpha=%v: E[ceil Pareto] closed form %.4f, empirical %.4f", alpha, want, emp)
		}
	}
}

func TestHeavyTailLoadAndSkew(t *testing.T) {
	cfg := Config{N: 8, K: 8, Seed: 42}
	const load = 0.3
	g, err := NewHeavyTail(cfg, load, 2.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 40000
	destCount := make([]int, cfg.N)
	total := 0
	var buf []Packet
	for s := 0; s < slots; s++ {
		buf = g.Generate(s, buf[:0])
		for _, p := range buf {
			if p.InputFiber < 0 || p.InputFiber >= cfg.N || p.Wavelength < 0 || p.Wavelength >= cfg.K ||
				p.DestFiber < 0 || p.DestFiber >= cfg.N || p.Duration != 1 || p.Slot != s {
				t.Fatalf("malformed packet %+v at slot %d", p, s)
			}
			destCount[p.DestFiber]++
			total++
		}
	}
	emp := float64(total) / (float64(slots) * float64(cfg.N*cfg.K))
	if math.Abs(emp-load) > 0.1*load {
		t.Errorf("empirical load %.4f, want %.2f ± 10%%", emp, load)
	}
	// Zipf skew: fiber 0 must dominate, and popularity must be monotone
	// enough that rank 0 beats the average by the Zipf(1) margin.
	if destCount[0] <= destCount[cfg.N-1] {
		t.Errorf("zipf skew absent: dest[0]=%d <= dest[%d]=%d", destCount[0], cfg.N-1, destCount[cfg.N-1])
	}
	if float64(destCount[0]) < 2*float64(total)/float64(cfg.N) {
		t.Errorf("hot fiber share %d of %d below 2× uniform", destCount[0], total)
	}
}

func TestHeavyTailValidation(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 1}
	cases := []struct {
		load, alpha, zipf float64
	}{
		{0, 1.5, 0}, {1, 1.5, 0}, {0.3, 1.0, 0}, {0.3, 1.5, -1}, {0.99, 1.2, 0},
	}
	for _, c := range cases {
		if _, err := NewHeavyTail(cfg, c.load, c.alpha, c.zipf); err == nil {
			t.Errorf("NewHeavyTail(load=%v,alpha=%v,zipf=%v) accepted", c.load, c.alpha, c.zipf)
		}
	}
	if _, err := NewHeavyTail(Config{}, 0.3, 1.5, 0); err == nil {
		t.Error("NewHeavyTail accepted zero shape")
	}
}

func TestSelfSimilarLoadAndBurstiness(t *testing.T) {
	cfg := Config{N: 4, K: 16, Seed: 99}
	const load = 0.4
	g, err := NewSelfSimilar(cfg, load, 1.5, 400)
	if err != nil {
		t.Fatal(err)
	}
	bern, err := NewBernoulli(Config{N: cfg.N, K: cfg.K, Seed: 100}, load)
	if err != nil {
		t.Fatal(err)
	}
	// Burstiness of a superposition of many independent sources shows up
	// in the time correlation, not the per-slot marginal (which is near-
	// binomial either way): measure the index of dispersion of counts
	// aggregated over blocks of slots. For memoryless Bernoulli the block
	// IDC stays below 1 at any block size; heavy-tailed on/off sources
	// are positively correlated across slots, so their block IDC grows
	// with the block — the variance-time signature of self-similarity.
	const (
		slots = 60000
		block = 200
	)
	counts := func(gen Generator) (mean, blockIDC float64) {
		var buf []Packet
		sum := 0.0
		bsum, bsumSq, nb := 0.0, 0.0, 0
		acc := 0.0
		for s := 0; s < slots; s++ {
			buf = gen.Generate(s, buf[:0])
			c := float64(len(buf))
			sum += c
			acc += c
			if (s+1)%block == 0 {
				bsum += acc
				bsumSq += acc * acc
				nb++
				acc = 0
			}
		}
		bmean := bsum / float64(nb)
		bvar := bsumSq/float64(nb) - bmean*bmean
		return sum / slots, bvar / bmean
	}
	ssMean, ssIDC := counts(g)
	bMean, bIDC := counts(bern)
	wantMean := load * float64(cfg.N*cfg.K)
	if math.Abs(ssMean-wantMean) > 0.12*wantMean {
		t.Errorf("selfsimilar mean %.2f packets/slot, want %.2f ± 12%%", ssMean, wantMean)
	}
	if math.Abs(bMean-wantMean) > 0.05*wantMean {
		t.Errorf("bernoulli mean %.2f packets/slot, want %.2f ± 5%%", bMean, wantMean)
	}
	if ssIDC < 3*bIDC || ssIDC < 2 {
		t.Errorf("selfsimilar block IDC %.3f not ≫ bernoulli block IDC %.3f at equal load", ssIDC, bIDC)
	}
	if bIDC >= 1 {
		t.Errorf("bernoulli block IDC %.3f should be < 1", bIDC)
	}
}

func TestSelfSimilarValidation(t *testing.T) {
	cfg := Config{N: 2, K: 8, Seed: 1}
	if _, err := NewSelfSimilar(cfg, 0.3, 1.5, 4); err == nil {
		t.Error("accepted users < k")
	}
	if _, err := NewSelfSimilar(cfg, 0, 1.5, 100); err == nil {
		t.Error("accepted load 0")
	}
	if _, err := NewSelfSimilar(cfg, 0.3, 1.0, 100); err == nil {
		t.Error("accepted alpha 1.0")
	}
	// Too few users for the load: per-user ON probability near 1 leaves
	// no room for an OFF period ≥ 1 slot.
	if _, err := NewSelfSimilar(cfg, 0.9, 1.2, 8); err == nil {
		t.Error("accepted unreachable load/users combination")
	}
}

func TestDiurnalModulation(t *testing.T) {
	cfg := Config{N: 8, K: 8, Seed: 5}
	const period = 2000
	base, err := NewBernoulli(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := WithDiurnal(base, period, 0.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Trough (first and last tenth of the cycle) vs peak (middle tenth):
	// the modulated load must follow the curve.
	var buf []Packet
	troughN, peakN := 0, 0
	troughSlots, peakSlots := 0, 0
	for s := 0; s < 10*period; s++ {
		buf = g.Generate(s, buf[:0])
		phase := s % period
		switch {
		case phase < period/10 || phase >= 9*period/10:
			troughN += len(buf)
			troughSlots++
		case phase >= 4*period/10 && phase < 6*period/10:
			peakN += len(buf)
			peakSlots++
		}
	}
	trough := float64(troughN) / float64(troughSlots)
	peak := float64(peakN) / float64(peakSlots)
	if trough >= 0.5*peak {
		t.Errorf("diurnal trough %.2f not well below peak %.2f", trough, peak)
	}
	if lvl := g.Level(0); math.Abs(lvl-0.2) > 1e-9 {
		t.Errorf("Level(0) = %v, want floor 0.2", lvl)
	}
	if lvl := g.Level(period / 2); math.Abs(lvl-1) > 1e-9 {
		t.Errorf("Level(period/2) = %v, want 1", lvl)
	}
	if _, err := WithDiurnal(base, 1, 0.2, 6); err == nil {
		t.Error("accepted period 1")
	}
	if _, err := WithDiurnal(base, 100, 1.5, 6); err == nil {
		t.Error("accepted floor > 1")
	}
}

// TestAdversarialDeterminismBySeed checks every new generator reproduces
// its packet stream exactly from the seed, and diverges on a different
// seed.
func TestAdversarialDeterminismBySeed(t *testing.T) {
	build := map[string]func(seed uint64) Generator{
		"heavytail": func(seed uint64) Generator {
			g, err := NewHeavyTail(Config{N: 4, K: 4, Seed: seed}, 0.3, 1.5, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"selfsimilar": func(seed uint64) Generator {
			g, err := NewSelfSimilar(Config{N: 4, K: 8, Seed: seed}, 0.4, 1.5, 64)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"diurnal": func(seed uint64) Generator {
			base, err := NewBernoulli(Config{N: 4, K: 4, Seed: seed}, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			g, err := WithDiurnal(base, 500, 0.1, seed+1)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
	}
	const slots = 2000
	stream := func(g Generator) []Packet {
		var all []Packet
		for s := 0; s < slots; s++ {
			all = g.Generate(s, all)
		}
		return all
	}
	for name, mk := range build {
		a, b, c := stream(mk(1)), stream(mk(1)), stream(mk(2))
		if len(a) != len(b) {
			t.Fatalf("%s: same seed, different stream lengths %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverges at packet %d: %+v vs %+v", name, i, a[i], b[i])
			}
		}
		if len(a) == len(c) {
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s: different seeds produced identical streams", name)
			}
		}
	}
}

func TestBulkTransferDrainsAndAccounts(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 3}
	demand := RandomDemand(cfg.N, 200, 17)
	g, err := NewBulkTransfer(cfg, demand)
	if err != nil {
		t.Fatal(err)
	}
	if g.Remaining() != 200 {
		t.Fatalf("Remaining = %d, want 200", g.Remaining())
	}
	// Simulate an ideal fabric: every offer is granted.
	var buf []Packet
	slot := 0
	for !g.Done() {
		if slot > 10000 {
			t.Fatalf("bulk transfer stuck with %d remaining", g.Remaining())
		}
		buf = g.Generate(slot, buf[:0])
		if len(buf) == 0 && !g.Done() {
			t.Fatalf("slot %d: no offers with %d remaining", slot, g.Remaining())
		}
		seen := make(map[[2]int]bool)
		for _, p := range buf {
			key := [2]int{p.InputFiber, p.Wavelength}
			if seen[key] {
				t.Fatalf("slot %d: duplicate offer on channel %v", slot, key)
			}
			seen[key] = true
			if p.Duration != 1 {
				t.Fatalf("bulk offer with duration %d", p.Duration)
			}
			if err := g.Deliver(p.InputFiber, p.DestFiber); err != nil {
				t.Fatal(err)
			}
		}
		slot++
	}
	if g.Delivered() != 200 {
		t.Errorf("Delivered = %d, want 200", g.Delivered())
	}
	if err := g.Deliver(0, 0); err == nil {
		t.Error("over-delivery accepted")
	}
}

func TestBulkTransferValidation(t *testing.T) {
	cfg := Config{N: 2, K: 2, Seed: 1}
	if _, err := NewBulkTransfer(cfg, [][]int{{1, 2}}); err == nil {
		t.Error("accepted wrong row count")
	}
	if _, err := NewBulkTransfer(cfg, [][]int{{1}, {2}}); err == nil {
		t.Error("accepted ragged matrix")
	}
	if _, err := NewBulkTransfer(cfg, [][]int{{1, -1}, {0, 0}}); err == nil {
		t.Error("accepted negative demand")
	}
	g, err := NewBulkTransfer(cfg, [][]int{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Deliver(5, 0); err == nil {
		t.Error("accepted out-of-shape delivery")
	}
}

func TestAdversarialGeneratorNames(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 1}
	ht, _ := NewHeavyTail(cfg, 0.3, 1.5, 0.8)
	if got, want := ht.Name(), "heavytail(load=0.30,alpha=1.50,zipf=0.80)"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	ss, _ := NewSelfSimilar(Config{N: 4, K: 4, Seed: 1}, 0.4, 1.5, 64)
	if got, want := ss.Name(), "selfsimilar(load=0.40,alpha=1.50,users=64)"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	base, _ := NewBernoulli(cfg, 0.5)
	d, _ := WithDiurnal(base, 100, 0.25, 2)
	if got, want := d.Name(), "diurnal(bernoulli(load=0.50),period=100,floor=0.25)"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
	bt, _ := NewBulkTransfer(cfg, RandomDemand(4, 10, 1))
	if got, want := bt.Name(), "bulk(left=10)"; got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}
