package traffic

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
)

// Compressed trace format (version 2). The gob format (trace.go) holds the
// whole trace in memory on both ends, which caps it at a few million
// slots; soak runs replay multi-gigaslot traces, so v2 is a streaming
// format readable and writable slot by slot in constant memory:
//
//	gzip(
//	  "WDT2" | uvarint N | uvarint K |
//	  per slot: uvarint count+1 | count × packet |   (count+1 = 0 never occurs;
//	  uvarint 0 |                                     0 terminates the slots)
//	  uvarint slots | uvarint totalPackets )          footer cross-check
//
// Each packet is: zigzag-varint delta of its input channel index
// (InputFiber·k + Wavelength) from the previous packet in the slot, then
// uvarint DestFiber, uvarint Duration−1, uvarint Priority. Generators emit
// packets in ascending channel order, so the deltas are small and gzip
// squeezes the stream to ~1 byte/packet on typical workloads. Slot numbers
// are implicit (the reader stamps them sequentially).
var ctraceMagic = [4]byte{'W', 'D', 'T', '2'}

// TraceWriter streams a compressed trace. Write slots in order and Close
// to emit the footer; a trace without Close is detectably truncated.
type TraceWriter struct {
	gz    *gzip.Writer
	bw    *bufio.Writer
	n, k  int
	slots uint64
	total uint64
	buf   []byte
	err   error
}

// NewTraceWriter starts a compressed trace with the given shape on w.
func NewTraceWriter(w io.Writer, n, k int) (*TraceWriter, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("traffic: invalid trace shape N=%d k=%d", n, k)
	}
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	tw := &TraceWriter{gz: gz, bw: bw, n: n, k: k, buf: make([]byte, 0, 64)}
	tw.buf = append(tw.buf, ctraceMagic[:]...)
	tw.buf = binary.AppendUvarint(tw.buf, uint64(n))
	tw.buf = binary.AppendUvarint(tw.buf, uint64(k))
	if _, err := bw.Write(tw.buf); err != nil {
		return nil, fmt.Errorf("traffic: writing ctrace header: %w", err)
	}
	return tw, nil
}

// WriteSlot appends one slot's packets to the trace.
func (tw *TraceWriter) WriteSlot(pkts []Packet) error {
	if tw.err != nil {
		return tw.err
	}
	tw.buf = binary.AppendUvarint(tw.buf[:0], uint64(len(pkts))+1)
	prev := int64(0)
	for _, p := range pkts {
		if p.InputFiber < 0 || p.InputFiber >= tw.n || p.DestFiber < 0 || p.DestFiber >= tw.n ||
			p.Wavelength < 0 || p.Wavelength >= tw.k {
			tw.err = fmt.Errorf("traffic: ctrace packet out of shape: %+v", p)
			return tw.err
		}
		if p.Duration < 1 {
			tw.err = fmt.Errorf("traffic: ctrace non-positive duration: %+v", p)
			return tw.err
		}
		if p.Priority < 0 {
			tw.err = fmt.Errorf("traffic: ctrace negative priority: %+v", p)
			return tw.err
		}
		ch := int64(p.InputFiber*tw.k + p.Wavelength)
		tw.buf = binary.AppendVarint(tw.buf, ch-prev)
		prev = ch
		tw.buf = binary.AppendUvarint(tw.buf, uint64(p.DestFiber))
		tw.buf = binary.AppendUvarint(tw.buf, uint64(p.Duration-1))
		tw.buf = binary.AppendUvarint(tw.buf, uint64(p.Priority))
	}
	if _, err := tw.bw.Write(tw.buf); err != nil {
		tw.err = fmt.Errorf("traffic: writing ctrace slot: %w", err)
		return tw.err
	}
	tw.slots++
	tw.total += uint64(len(pkts))
	return nil
}

// Close terminates the slot stream, writes the footer and flushes the
// compressor. The underlying writer is not closed.
func (tw *TraceWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	tw.buf = binary.AppendUvarint(tw.buf[:0], 0)
	tw.buf = binary.AppendUvarint(tw.buf, tw.slots)
	tw.buf = binary.AppendUvarint(tw.buf, tw.total)
	if _, err := tw.bw.Write(tw.buf); err != nil {
		return fmt.Errorf("traffic: writing ctrace footer: %w", err)
	}
	if err := tw.bw.Flush(); err != nil {
		return fmt.Errorf("traffic: flushing ctrace: %w", err)
	}
	if err := tw.gz.Close(); err != nil {
		return fmt.Errorf("traffic: closing ctrace compressor: %w", err)
	}
	return nil
}

// Slots reports the slots written so far.
func (tw *TraceWriter) Slots() int { return int(tw.slots) }

// TraceReader streams a compressed trace written by TraceWriter.
type TraceReader struct {
	gz    *gzip.Reader
	br    *bufio.Reader
	n, k  int
	slots uint64 // slots read so far
	total uint64 // packets read so far
	done  bool
	err   error
}

// OpenTraceReader validates the header and positions the reader at the
// first slot.
func OpenTraceReader(r io.Reader) (*TraceReader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("traffic: opening ctrace: %w", err)
	}
	br := bufio.NewReader(gz)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("traffic: reading ctrace magic: %w", err)
	}
	if magic != ctraceMagic {
		return nil, fmt.Errorf("traffic: bad ctrace magic %q", magic[:])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("traffic: reading ctrace N: %w", err)
	}
	k, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("traffic: reading ctrace k: %w", err)
	}
	if n == 0 || n > 1<<20 || k == 0 || k > 1<<20 {
		return nil, fmt.Errorf("traffic: corrupt ctrace shape N=%d k=%d", n, k)
	}
	return &TraceReader{gz: gz, br: br, n: int(n), k: int(k)}, nil
}

// N returns the trace's fiber count.
func (tr *TraceReader) N() int { return tr.n }

// K returns the trace's wavelengths per fiber.
func (tr *TraceReader) K() int { return tr.k }

// Slots reports the slots decoded so far (the full count once NextSlot
// has returned io.EOF).
func (tr *TraceReader) Slots() int { return int(tr.slots) }

// Err returns the first decoding error (nil on a clean stream; io.EOF is
// not recorded).
func (tr *TraceReader) Err() error { return tr.err }

func (tr *TraceReader) fail(err error) error {
	tr.err = err
	return err
}

// NextSlot decodes the next slot's packets, appending to dst. It returns
// io.EOF after the last slot — having verified the footer — and an error
// on any corruption. Slot numbers are stamped sequentially from 0.
func (tr *TraceReader) NextSlot(dst []Packet) ([]Packet, error) {
	if tr.err != nil {
		return dst, tr.err
	}
	if tr.done {
		return dst, io.EOF
	}
	cnt, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return dst, tr.fail(fmt.Errorf("traffic: reading ctrace slot %d count: %w", tr.slots, err))
	}
	if cnt == 0 {
		// Terminator: verify the footer.
		slots, err := binary.ReadUvarint(tr.br)
		if err != nil {
			return dst, tr.fail(fmt.Errorf("traffic: reading ctrace footer: %w", err))
		}
		total, err := binary.ReadUvarint(tr.br)
		if err != nil {
			return dst, tr.fail(fmt.Errorf("traffic: reading ctrace footer: %w", err))
		}
		if slots != tr.slots || total != tr.total {
			return dst, tr.fail(fmt.Errorf("traffic: ctrace footer mismatch: footer %d slots/%d packets, stream %d/%d",
				slots, total, tr.slots, tr.total))
		}
		// Read past the footer so the decompressor verifies the gzip
		// trailer (CRC and length): a trace truncated inside the trailer
		// must fail here, not read cleanly.
		switch _, err := tr.br.ReadByte(); err {
		case io.EOF:
		case nil:
			return dst, tr.fail(fmt.Errorf("traffic: trailing data after ctrace footer"))
		default:
			return dst, tr.fail(fmt.Errorf("traffic: verifying ctrace trailer: %w", err))
		}
		tr.done = true
		return dst, io.EOF
	}
	count := cnt - 1
	if count > uint64(tr.n)*uint64(tr.k) {
		return dst, tr.fail(fmt.Errorf("traffic: ctrace slot %d: %d packets exceed N·k=%d",
			tr.slots, count, tr.n*tr.k))
	}
	prev := int64(0)
	slot := int(tr.slots)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(tr.br)
		if err != nil {
			return dst, tr.fail(fmt.Errorf("traffic: reading ctrace slot %d packet %d: %w", tr.slots, i, err))
		}
		ch := prev + delta
		if ch < 0 || ch >= int64(tr.n)*int64(tr.k) {
			return dst, tr.fail(fmt.Errorf("traffic: ctrace slot %d packet %d: channel %d out of range", tr.slots, i, ch))
		}
		prev = ch
		dest, err := binary.ReadUvarint(tr.br)
		if err != nil {
			return dst, tr.fail(fmt.Errorf("traffic: reading ctrace slot %d packet %d dest: %w", tr.slots, i, err))
		}
		if dest >= uint64(tr.n) {
			return dst, tr.fail(fmt.Errorf("traffic: ctrace slot %d packet %d: dest %d out of range", tr.slots, i, dest))
		}
		dur, err := binary.ReadUvarint(tr.br)
		if err != nil {
			return dst, tr.fail(fmt.Errorf("traffic: reading ctrace slot %d packet %d duration: %w", tr.slots, i, err))
		}
		if dur > 1<<32 {
			return dst, tr.fail(fmt.Errorf("traffic: ctrace slot %d packet %d: absurd duration %d", tr.slots, i, dur))
		}
		prio, err := binary.ReadUvarint(tr.br)
		if err != nil {
			return dst, tr.fail(fmt.Errorf("traffic: reading ctrace slot %d packet %d priority: %w", tr.slots, i, err))
		}
		if prio > 1<<16 {
			return dst, tr.fail(fmt.Errorf("traffic: ctrace slot %d packet %d: absurd priority %d", tr.slots, i, prio))
		}
		dst = append(dst, Packet{
			InputFiber: int(ch) / tr.k,
			Wavelength: int(ch) % tr.k,
			DestFiber:  int(dest),
			Duration:   int(dur) + 1,
			Slot:       slot,
			Priority:   int(prio),
		})
	}
	tr.slots++
	tr.total += count
	return dst, nil
}

// Close releases the decompressor. The underlying reader is not closed.
func (tr *TraceReader) Close() error { return tr.gz.Close() }

// Generator adapts the reader to the Generator interface for replay
// through Switch.Run: slots must be consumed sequentially from the
// reader's current position. Past the end of the trace (or after a decode
// error, retrievable via Err) it yields empty slots.
func (tr *TraceReader) Generator() Generator { return &ctraceReplayer{tr: tr} }

type ctraceReplayer struct {
	tr   *TraceReader
	next int
}

func (r *ctraceReplayer) Name() string {
	return fmt.Sprintf("ctrace(N=%d,k=%d)", r.tr.n, r.tr.k)
}

func (r *ctraceReplayer) Generate(slot int, dst []Packet) []Packet {
	if slot != r.next {
		r.tr.fail(fmt.Errorf("traffic: ctrace replay is sequential: got slot %d, want %d", slot, r.next))
		return dst
	}
	r.next++
	out, err := r.tr.NextSlot(dst)
	if err != nil {
		return dst
	}
	return out
}

// WriteCompressed writes the whole in-memory trace in the v2 compressed
// format — the bridge from the gob format for small traces.
func (t *Trace) WriteCompressed(w io.Writer) error {
	tw, err := NewTraceWriter(w, t.N, t.K)
	if err != nil {
		return err
	}
	for _, pkts := range t.Slots {
		if err := tw.WriteSlot(pkts); err != nil {
			return err
		}
	}
	return tw.Close()
}

// ReadCompressedTrace loads a whole v2 trace into memory.
func ReadCompressedTrace(r io.Reader) (*Trace, error) {
	tr, err := OpenTraceReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{N: tr.N(), K: tr.K()}
	for {
		pkts, err := tr.NextSlot(nil)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Slots = append(t.Slots, pkts)
	}
}
