package traffic

import "fmt"

// Packet is one slot-aligned connection request: it arrives at the start
// of a time slot on (InputFiber, Wavelength), wants any channel on
// DestFiber, and holds its granted channel for Duration consecutive slots
// (1 for plain optical packet switching; >1 models optical burst switching,
// paper Section V).
type Packet struct {
	InputFiber int
	Wavelength int
	DestFiber  int
	Duration   int
	Slot       int // arrival slot, stamped by the generator or switch
	// Priority is the packet's QoS class, 0 being the highest. Plain
	// generators emit class 0; wrap with WithPriorities to mark classes
	// (the paper's Section VI future work, scheduled strictly by class).
	Priority int
}

// Generator produces the packet arrivals of one time slot. Implementations
// append to dst and return the extended slice so callers can reuse buffers.
// Generators are deterministic functions of their seed and the slot
// sequence; they are not safe for concurrent use.
type Generator interface {
	// Generate appends the packets arriving at slot to dst.
	Generate(slot int, dst []Packet) []Packet
	// Name identifies the workload in tables.
	Name() string
}

// HoldingTime models connection durations.
type HoldingTime struct {
	// Mean is the mean duration in slots; Mean ≤ 1 means every packet
	// lasts exactly one slot.
	Mean float64
	// Deterministic, when true with Mean = L, gives every packet
	// duration round(L) instead of a geometric draw.
	Deterministic bool
}

// draw samples a duration.
func (h HoldingTime) draw(rng *RNG) int {
	if h.Mean <= 1 {
		return 1
	}
	if h.Deterministic {
		return int(h.Mean + 0.5)
	}
	return rng.Geometric(h.Mean)
}

// Config describes the interconnect shape a generator fills.
type Config struct {
	N    int // fibers per side
	K    int // wavelengths per fiber
	Seed uint64
	Hold HoldingTime
}

func (c Config) validate() error {
	if c.N <= 0 || c.K <= 0 {
		return fmt.Errorf("traffic: invalid shape N=%d k=%d", c.N, c.K)
	}
	return nil
}

// Bernoulli is uniform independent traffic: each of the N·k input channels
// carries a new packet each slot with probability Load, destined to a
// uniformly random output fiber. This is the standard benchmark workload
// for synchronous switches.
type Bernoulli struct {
	cfg  Config
	load float64
	rng  *RNG
}

// NewBernoulli builds the uniform workload; load must be in [0, 1].
func NewBernoulli(cfg Config, load float64) (*Bernoulli, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v outside [0,1]", load)
	}
	return &Bernoulli{cfg: cfg, load: load, rng: NewRNG(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(load=%.2f)", g.load) }

// Generate implements Generator.
func (g *Bernoulli) Generate(slot int, dst []Packet) []Packet {
	for in := 0; in < g.cfg.N; in++ {
		for w := 0; w < g.cfg.K; w++ {
			if !g.rng.Bernoulli(g.load) {
				continue
			}
			dst = append(dst, Packet{
				InputFiber: in,
				Wavelength: w,
				DestFiber:  g.rng.Intn(g.cfg.N),
				Duration:   g.cfg.Hold.draw(g.rng),
				Slot:       slot,
			})
		}
	}
	return dst
}

// Hotspot is nonuniform traffic: a fraction of each channel's packets is
// directed at one hot output fiber, the rest uniformly. It models the
// server-directed skew common in processor interconnects.
type Hotspot struct {
	cfg      Config
	load     float64
	hot      int
	fraction float64
	rng      *RNG
}

// NewHotspot builds the hotspot workload: with probability fraction a
// packet goes to fiber hot, otherwise to a uniform fiber.
func NewHotspot(cfg Config, load float64, hot int, fraction float64) (*Hotspot, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if load < 0 || load > 1 || fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: load %v / fraction %v outside [0,1]", load, fraction)
	}
	if hot < 0 || hot >= cfg.N {
		return nil, fmt.Errorf("traffic: hot fiber %d outside [0,%d)", hot, cfg.N)
	}
	return &Hotspot{cfg: cfg, load: load, hot: hot, fraction: fraction, rng: NewRNG(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *Hotspot) Name() string {
	return fmt.Sprintf("hotspot(load=%.2f,hot=%d,frac=%.2f)", g.load, g.hot, g.fraction)
}

// Generate implements Generator.
func (g *Hotspot) Generate(slot int, dst []Packet) []Packet {
	for in := 0; in < g.cfg.N; in++ {
		for w := 0; w < g.cfg.K; w++ {
			if !g.rng.Bernoulli(g.load) {
				continue
			}
			dest := g.rng.Intn(g.cfg.N)
			if g.rng.Bernoulli(g.fraction) {
				dest = g.hot
			}
			dst = append(dst, Packet{
				InputFiber: in,
				Wavelength: w,
				DestFiber:  dest,
				Duration:   g.cfg.Hold.draw(g.rng),
				Slot:       slot,
			})
		}
	}
	return dst
}

// HotBand is doubly concentrated traffic: every packet arrives on one of
// the first band wavelengths and heads to one hot output fiber. All
// contention therefore lands in a single scheduler's ring neighborhood —
// the adversarial shape for the per-port matching algorithms, where the
// request vector has few nonzero wavelengths but high multiplicity on each.
// It is the workload of the word-parallel kernel benchmarks.
type HotBand struct {
	cfg  Config
	load float64
	hot  int
	band int
	rng  *RNG
}

// NewHotBand builds the concentrated workload: each of the N·band in-band
// input channels carries a new packet each slot with probability load,
// always destined to fiber hot.
func NewHotBand(cfg Config, load float64, hot, band int) (*HotBand, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v outside [0,1]", load)
	}
	if hot < 0 || hot >= cfg.N {
		return nil, fmt.Errorf("traffic: hot fiber %d outside [0,%d)", hot, cfg.N)
	}
	if band < 1 || band > cfg.K {
		return nil, fmt.Errorf("traffic: band %d outside [1,%d]", band, cfg.K)
	}
	return &HotBand{cfg: cfg, load: load, hot: hot, band: band, rng: NewRNG(cfg.Seed)}, nil
}

// Name implements Generator.
func (g *HotBand) Name() string {
	return fmt.Sprintf("hotband(load=%.2f,hot=%d,band=%d)", g.load, g.hot, g.band)
}

// Generate implements Generator.
func (g *HotBand) Generate(slot int, dst []Packet) []Packet {
	for in := 0; in < g.cfg.N; in++ {
		for w := 0; w < g.band; w++ {
			if !g.rng.Bernoulli(g.load) {
				continue
			}
			dst = append(dst, Packet{
				InputFiber: in,
				Wavelength: w,
				DestFiber:  g.hot,
				Duration:   g.cfg.Hold.draw(g.rng),
				Slot:       slot,
			})
		}
	}
	return dst
}

// Bursty is two-state Markov (on–off) traffic per input channel: in the ON
// state the channel emits a packet every slot, all packets of one burst
// sharing a destination fiber; state transitions give geometrically
// distributed burst and idle lengths. The offered load is
// meanOn / (meanOn + meanOff).
type Bursty struct {
	cfg     Config
	meanOn  float64
	meanOff float64
	rng     *RNG
	on      []bool // per channel state
	dest    []int  // per channel burst destination
}

// NewBursty builds the on–off workload with the given mean burst (ON) and
// idle (OFF) lengths in slots, both ≥ 1.
func NewBursty(cfg Config, meanOn, meanOff float64) (*Bursty, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if meanOn < 1 || meanOff < 1 {
		return nil, fmt.Errorf("traffic: burst means must be ≥ 1, got on=%v off=%v", meanOn, meanOff)
	}
	n := cfg.N * cfg.K
	g := &Bursty{
		cfg: cfg, meanOn: meanOn, meanOff: meanOff,
		rng: NewRNG(cfg.Seed),
		on:  make([]bool, n), dest: make([]int, n),
	}
	// Start each channel in the stationary distribution.
	pOn := meanOn / (meanOn + meanOff)
	for i := range g.on {
		g.on[i] = g.rng.Bernoulli(pOn)
		g.dest[i] = g.rng.Intn(cfg.N)
	}
	return g, nil
}

// Name implements Generator.
func (g *Bursty) Name() string {
	return fmt.Sprintf("bursty(on=%.1f,off=%.1f)", g.meanOn, g.meanOff)
}

// Load reports the stationary offered load meanOn/(meanOn+meanOff).
func (g *Bursty) Load() float64 { return g.meanOn / (g.meanOn + g.meanOff) }

// Generate implements Generator.
func (g *Bursty) Generate(slot int, dst []Packet) []Packet {
	pEndOn := 1 / g.meanOn
	pEndOff := 1 / g.meanOff
	for in := 0; in < g.cfg.N; in++ {
		for w := 0; w < g.cfg.K; w++ {
			ch := in*g.cfg.K + w
			if g.on[ch] {
				dst = append(dst, Packet{
					InputFiber: in,
					Wavelength: w,
					DestFiber:  g.dest[ch],
					Duration:   g.cfg.Hold.draw(g.rng),
					Slot:       slot,
				})
				if g.rng.Bernoulli(pEndOn) {
					g.on[ch] = false
				}
			} else if g.rng.Bernoulli(pEndOff) {
				g.on[ch] = true
				g.dest[ch] = g.rng.Intn(g.cfg.N) // new burst, new destination
			}
		}
	}
	return dst
}

// Prioritized wraps a generator and assigns each packet a QoS class drawn
// from the given distribution: classProbs[c] is the probability of class
// c, and the probabilities must sum to 1 (within rounding).
type Prioritized struct {
	inner Generator
	cum   []float64
	rng   *RNG
}

// WithPriorities wraps gen with class marking.
func WithPriorities(gen Generator, classProbs []float64, seed uint64) (*Prioritized, error) {
	if len(classProbs) == 0 {
		return nil, fmt.Errorf("traffic: empty class distribution")
	}
	cum := make([]float64, len(classProbs))
	total := 0.0
	for c, p := range classProbs {
		if p < 0 {
			return nil, fmt.Errorf("traffic: negative class probability %v", p)
		}
		total += p
		cum[c] = total
	}
	if total < 0.999 || total > 1.001 {
		return nil, fmt.Errorf("traffic: class probabilities sum to %v, want 1", total)
	}
	cum[len(cum)-1] = 1 // absorb rounding
	return &Prioritized{inner: gen, cum: cum, rng: NewRNG(seed)}, nil
}

// Name implements Generator.
func (g *Prioritized) Name() string {
	return fmt.Sprintf("prioritized(%s,%d classes)", g.inner.Name(), len(g.cum))
}

// Generate implements Generator.
func (g *Prioritized) Generate(slot int, dst []Packet) []Packet {
	start := len(dst)
	dst = g.inner.Generate(slot, dst)
	for i := start; i < len(dst); i++ {
		u := g.rng.Float64()
		for c, cp := range g.cum {
			if u < cp {
				dst[i].Priority = c
				break
			}
		}
	}
	return dst
}

var (
	_ Generator = (*Bernoulli)(nil)
	_ Generator = (*Hotspot)(nil)
	_ Generator = (*HotBand)(nil)
	_ Generator = (*Bursty)(nil)
	_ Generator = (*Prioritized)(nil)
)
