package traffic

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Uint64() == c.Uint64() && i > 0 {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", v, c, want)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams identical at first draw")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(13)
	for _, mean := range []float64{1, 2, 5, 20} {
		const draws = 50000
		sum := 0
		for i := 0; i < draws; i++ {
			d := r.Geometric(mean)
			if d < 1 {
				t.Fatalf("Geometric(%v) returned %d < 1", mean, d)
			}
			sum += d
		}
		got := float64(sum) / draws
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Geometric(%v) empirical mean %v", mean, got)
		}
	}
}

func TestBernoulliLoadAndShape(t *testing.T) {
	cfg := Config{N: 8, K: 4, Seed: 1}
	g, err := NewBernoulli(cfg, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 2000
	total := 0
	destCounts := make([]int, cfg.N)
	var buf []Packet
	for s := 0; s < slots; s++ {
		buf = g.Generate(s, buf[:0])
		for _, p := range buf {
			if p.InputFiber < 0 || p.InputFiber >= cfg.N || p.Wavelength < 0 || p.Wavelength >= cfg.K {
				t.Fatalf("packet out of shape: %+v", p)
			}
			if p.Duration != 1 {
				t.Fatalf("default holding time must be 1, got %d", p.Duration)
			}
			if p.Slot != s {
				t.Fatalf("slot stamp %d, want %d", p.Slot, s)
			}
			destCounts[p.DestFiber]++
			total++
		}
	}
	channels := cfg.N * cfg.K * slots
	gotLoad := float64(total) / float64(channels)
	if math.Abs(gotLoad-0.6) > 0.01 {
		t.Fatalf("empirical load %v, want 0.6", gotLoad)
	}
	want := float64(total) / float64(cfg.N)
	for d, c := range destCounts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("destination %d count %d too far from uniform %v", d, c, want)
		}
	}
}

func TestBernoulliValidation(t *testing.T) {
	if _, err := NewBernoulli(Config{N: 0, K: 4}, 0.5); err == nil {
		t.Fatal("bad shape accepted")
	}
	if _, err := NewBernoulli(Config{N: 2, K: 2}, 1.5); err == nil {
		t.Fatal("load > 1 accepted")
	}
	if _, err := NewBernoulli(Config{N: 2, K: 2}, -0.1); err == nil {
		t.Fatal("negative load accepted")
	}
}

func TestHotspotSkew(t *testing.T) {
	cfg := Config{N: 8, K: 4, Seed: 3}
	g, err := NewHotspot(cfg, 0.5, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	destCounts := make([]int, cfg.N)
	total := 0
	var buf []Packet
	for s := 0; s < 2000; s++ {
		buf = g.Generate(s, buf[:0])
		for _, p := range buf {
			destCounts[p.DestFiber]++
			total++
		}
	}
	// Hot fiber should receive fraction + (1−fraction)/N ≈ 0.5625.
	gotHot := float64(destCounts[2]) / float64(total)
	if math.Abs(gotHot-0.5625) > 0.02 {
		t.Fatalf("hot share %v, want ≈0.5625", gotHot)
	}
}

func TestHotspotValidation(t *testing.T) {
	cfg := Config{N: 4, K: 2}
	if _, err := NewHotspot(cfg, 0.5, 4, 0.5); err == nil {
		t.Fatal("hot fiber out of range accepted")
	}
	if _, err := NewHotspot(cfg, 0.5, 0, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestBurstyLoadAndBurstiness(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 9}
	g, err := NewBursty(cfg, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Load()-0.5) > 1e-9 {
		t.Fatalf("Load() = %v", g.Load())
	}
	const slots = 4000
	total := 0
	// Track per-channel consecutive same-destination runs to confirm
	// bursts share a destination.
	lastDest := make(map[[2]int]int)
	lastSlot := make(map[[2]int]int)
	destChangesWithinBurst := 0
	var buf []Packet
	for s := 0; s < slots; s++ {
		buf = g.Generate(s, buf[:0])
		for _, p := range buf {
			total++
			key := [2]int{p.InputFiber, p.Wavelength}
			if prev, ok := lastSlot[key]; ok && prev == s-1 {
				if lastDest[key] != p.DestFiber {
					destChangesWithinBurst++
				}
			}
			lastDest[key] = p.DestFiber
			lastSlot[key] = s
		}
	}
	gotLoad := float64(total) / float64(cfg.N*cfg.K*slots)
	if math.Abs(gotLoad-0.5) > 0.05 {
		t.Fatalf("empirical load %v, want ≈0.5", gotLoad)
	}
	// Consecutive-slot packets on a channel are nearly always the same
	// burst; destination changes should be rare (only back-to-back
	// bursts).
	if rate := float64(destChangesWithinBurst) / float64(total); rate > 0.15 {
		t.Fatalf("destination churn within bursts too high: %v", rate)
	}
}

func TestBurstyValidation(t *testing.T) {
	if _, err := NewBursty(Config{N: 2, K: 2}, 0.5, 4); err == nil {
		t.Fatal("meanOn < 1 accepted")
	}
}

func TestHoldingTimes(t *testing.T) {
	cfg := Config{N: 2, K: 2, Seed: 21, Hold: HoldingTime{Mean: 4, Deterministic: true}}
	g, _ := NewBernoulli(cfg, 1)
	buf := g.Generate(0, nil)
	for _, p := range buf {
		if p.Duration != 4 {
			t.Fatalf("deterministic duration %d, want 4", p.Duration)
		}
	}
	cfg.Hold = HoldingTime{Mean: 4}
	g2, _ := NewBernoulli(cfg, 1)
	sum, n := 0, 0
	for s := 0; s < 3000; s++ {
		for _, p := range g2.Generate(s, nil) {
			sum += p.Duration
			n++
		}
	}
	if mean := float64(sum) / float64(n); math.Abs(mean-4) > 0.2 {
		t.Fatalf("geometric mean duration %v, want ≈4", mean)
	}
}

func TestWithPrioritiesDistribution(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 51}
	base, _ := NewBernoulli(cfg, 0.8)
	gen, err := WithPriorities(base, []float64{0.25, 0.75}, 53)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	total := 0
	var buf []Packet
	for s := 0; s < 2000; s++ {
		buf = gen.Generate(s, buf[:0])
		for _, p := range buf {
			counts[p.Priority]++
			total++
		}
	}
	if len(counts) != 2 {
		t.Fatalf("classes seen: %v", counts)
	}
	share0 := float64(counts[0]) / float64(total)
	if math.Abs(share0-0.25) > 0.02 {
		t.Fatalf("class 0 share %v, want ≈0.25", share0)
	}
	if gen.Name() == "" {
		t.Fatal("empty Name")
	}
}

func TestWithPrioritiesValidation(t *testing.T) {
	base, _ := NewBernoulli(Config{N: 2, K: 2}, 0.5)
	if _, err := WithPriorities(base, nil, 1); err == nil {
		t.Fatal("empty distribution accepted")
	}
	if _, err := WithPriorities(base, []float64{0.5, -0.1, 0.6}, 1); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := WithPriorities(base, []float64{0.5, 0.2}, 1); err == nil {
		t.Fatal("non-normalized distribution accepted")
	}
}

func TestTraceRecordReplayRoundTrip(t *testing.T) {
	cfg := Config{N: 4, K: 3, Seed: 31}
	g, _ := NewBernoulli(cfg, 0.7)
	tr, err := Record(g, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumPackets() == 0 {
		t.Fatal("empty trace at load 0.7")
	}

	// Replay must reproduce the recorded slots exactly.
	rep := tr.Replay()
	for s := 0; s < 50; s++ {
		got := rep.Generate(s, nil)
		if len(got) != len(tr.Slots[s]) {
			t.Fatalf("slot %d: %d packets, want %d", s, len(got), len(tr.Slots[s]))
		}
		for i := range got {
			if got[i] != tr.Slots[s][i] {
				t.Fatalf("slot %d packet %d mismatch", s, i)
			}
		}
	}
	if got := rep.Generate(99, nil); len(got) != 0 {
		t.Fatal("replay beyond range must be empty")
	}

	// Serialize and read back.
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.N != tr.N || tr2.K != tr.K || tr2.NumPackets() != tr.NumPackets() {
		t.Fatal("round trip mismatch")
	}
	for s := range tr.Slots {
		for i := range tr.Slots[s] {
			if tr.Slots[s][i] != tr2.Slots[s][i] {
				t.Fatalf("slot %d packet %d differs after round trip", s, i)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestReadTraceTruncated feeds every proper prefix of a serialized trace
// to the decoder: each must return an error, never panic or succeed.
func TestReadTraceTruncated(t *testing.T) {
	cfg := Config{N: 4, K: 3, Seed: 9}
	g, _ := NewBernoulli(cfg, 0.9)
	tr, _ := Record(g, cfg, 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadTrace(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", cut, len(full))
		}
	}
}

// TestReadTraceCorruptStream flips bytes throughout a serialized trace.
// Every corruption must either be rejected by ReadTrace or produce a
// trace that still passes through Validate's shape check bounds without
// panicking — decoding must never crash on hostile input.
func TestReadTraceCorruptStream(t *testing.T) {
	cfg := Config{N: 4, K: 3, Seed: 9}
	g, _ := NewBernoulli(cfg, 0.9)
	tr, _ := Record(g, cfg, 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for pos := 0; pos < len(full); pos += 11 {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0xff
		got, err := ReadTrace(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// Survivors must still be safe to validate and replay.
		_ = got.Validate()
		got.Replay().Generate(0, nil)
	}
}

// TestReadTraceRejectsBadHeader covers the header-level error paths: an
// unsupported version and nonsensical shape fields.
func TestReadTraceRejectsBadHeader(t *testing.T) {
	write := func(h traceHeader) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(h); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for name, h := range map[string]traceHeader{
		"future version": {Version: traceVersion + 1, N: 2, K: 2, Slots: 0},
		"zero N":         {Version: traceVersion, N: 0, K: 2, Slots: 0},
		"zero K":         {Version: traceVersion, N: 2, K: 0, Slots: 0},
		"negative slots": {Version: traceVersion, N: 2, K: 2, Slots: -1},
	} {
		if _, err := ReadTrace(bytes.NewReader(write(h))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	tr := &Trace{N: 2, K: 2, Slots: [][]Packet{{{InputFiber: 5, Duration: 1}}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-shape packet accepted")
	}
	tr = &Trace{N: 2, K: 2, Slots: [][]Packet{{{Duration: 0}}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestRecordValidation(t *testing.T) {
	cfg := Config{N: 2, K: 2}
	g, _ := NewBernoulli(cfg, 0.5)
	if _, err := Record(g, cfg, -1); err == nil {
		t.Fatal("negative slots accepted")
	}
	if _, err := Record(g, Config{N: 0, K: 2}, 5); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestGeneratorNames(t *testing.T) {
	cfg := Config{N: 2, K: 2, Seed: 1}
	b, _ := NewBernoulli(cfg, 0.25)
	if b.Name() != "bernoulli(load=0.25)" {
		t.Fatalf("Name = %q", b.Name())
	}
	h, _ := NewHotspot(cfg, 0.5, 1, 0.75)
	if h.Name() != "hotspot(load=0.50,hot=1,frac=0.75)" {
		t.Fatalf("Name = %q", h.Name())
	}
	bu, _ := NewBursty(cfg, 4, 2)
	if bu.Name() != "bursty(on=4.0,off=2.0)" {
		t.Fatalf("Name = %q", bu.Name())
	}
	tr := &Trace{N: 2, K: 2, Slots: make([][]Packet, 3)}
	if tr.Replay().Name() != "trace(3 slots)" {
		t.Fatalf("Name = %q", tr.Replay().Name())
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errWriteFailed
	}
	w.after -= len(p)
	return len(p), nil
}

var errWriteFailed = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestTraceWriteFailurePropagates(t *testing.T) {
	cfg := Config{N: 2, K: 2, Seed: 1}
	g, _ := NewBernoulli(cfg, 1)
	tr, _ := Record(g, cfg, 10)
	if err := tr.Write(&failingWriter{after: 0}); err == nil {
		t.Fatal("write failure swallowed")
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(23)
	const draws = 100000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(2) // mean 0.5
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean %v, want ≈0.5", mean)
	}
}

func TestGeneratorDeterminismAcrossRuns(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 77}
	mk := func() *Trace {
		g, _ := NewBursty(cfg, 4, 4)
		tr, _ := Record(g, cfg, 100)
		return tr
	}
	a, b := mk(), mk()
	if a.NumPackets() != b.NumPackets() {
		t.Fatal("same seed produced different traces")
	}
	for s := range a.Slots {
		for i := range a.Slots[s] {
			if a.Slots[s][i] != b.Slots[s][i] {
				t.Fatalf("slot %d packet %d differs", s, i)
			}
		}
	}
}
