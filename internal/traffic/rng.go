// Package traffic generates synthetic workloads for the WDM interconnect
// simulator: per-slot packet arrivals under uniform Bernoulli, hotspot and
// bursty on–off traffic, with single- or multi-slot holding times, plus
// trace recording and replay.
//
// The paper evaluates its algorithms analytically; the traffic models here
// are the standard synchronous-switch workloads its introduction appeals to
// (optical packet switching with slot-aligned arrivals, optical burst
// switching for multi-slot holds). All randomness flows through a seedable
// deterministic generator so every simulation is reproducible.
package traffic

import "math"

// RNG is a small, fast, seedable xoshiro256** generator. It is not safe
// for concurrent use; give each goroutine its own RNG (Split derives
// independent streams).
type RNG struct {
	s [4]uint64
}

// NewRNG seeds a generator from a 64-bit seed via splitmix64, which also
// protects against the all-zero state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independently seeded generator from r's stream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("traffic: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Exp draws from an exponential distribution with the given rate > 0
// (mean 1/rate), via inverse transform. Used by the asynchronous
// (wavelength routing) simulator for Poisson interarrivals and holding
// times.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("traffic: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Pareto draws from a Pareto distribution with tail index alpha > 0 and
// scale 1 (support [1, ∞)), via inverse transform: X = U^(-1/alpha). The
// mean is alpha/(alpha−1) for alpha > 1 and infinite otherwise; for
// alpha < 2 the variance is infinite, which is the heavy-tail regime that
// produces self-similar aggregate traffic (Taqqu/Willinger/Sherman).
func (r *RNG) Pareto(alpha float64) float64 {
	if alpha <= 0 {
		panic("traffic: Pareto with non-positive alpha")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return math.Pow(u, -1/alpha)
}

// Geometric draws from a geometric distribution on {1, 2, …} with the
// given mean ≥ 1 (success probability 1/mean). It is the standard
// memoryless holding-time model for burst durations.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	// Inverse transform: ceil(ln(U)/ln(1−p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	n := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}
