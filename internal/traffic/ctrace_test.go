package traffic

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"
)

// recordPackets runs gen for slots slots, returning the per-slot streams.
func recordPackets(t *testing.T, gen Generator, slots int) [][]Packet {
	t.Helper()
	out := make([][]Packet, slots)
	for s := 0; s < slots; s++ {
		out[s] = gen.Generate(s, nil)
	}
	return out
}

func ctraceBytes(t *testing.T, slots [][]Packet, n, k int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, n, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkts := range slots {
		if err := tw.WriteSlot(pkts); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCompressedTraceRoundTrip(t *testing.T) {
	cfg := Config{N: 6, K: 5, Seed: 21, Hold: HoldingTime{Mean: 3}}
	gen, err := NewHeavyTail(cfg, 0.3, 1.6, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 500
	want := recordPackets(t, gen, slots)
	data := ctraceBytes(t, want, cfg.N, cfg.K)

	tr, err := OpenTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != cfg.N || tr.K() != cfg.K {
		t.Fatalf("shape %dx%d, want %dx%d", tr.N(), tr.K(), cfg.N, cfg.K)
	}
	for s := 0; s < slots; s++ {
		got, err := tr.NextSlot(nil)
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		if len(got) != len(want[s]) {
			t.Fatalf("slot %d: %d packets, want %d", s, len(got), len(want[s]))
		}
		for i := range got {
			if got[i] != want[s][i] {
				t.Fatalf("slot %d packet %d: %+v, want %+v", s, i, got[i], want[s][i])
			}
		}
	}
	if _, err := tr.NextSlot(nil); err != io.EOF {
		t.Fatalf("after last slot: %v, want io.EOF", err)
	}
	if tr.Slots() != slots {
		t.Fatalf("Slots = %d, want %d", tr.Slots(), slots)
	}
	// EOF is sticky.
	if _, err := tr.NextSlot(nil); err != io.EOF {
		t.Fatalf("repeated read: %v, want io.EOF", err)
	}
}

func TestCompressedTraceGeneratorReplay(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 9}
	gen, err := NewSelfSimilar(cfg, 0.4, 1.5, 32)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 300
	want := recordPackets(t, gen, slots)
	data := ctraceBytes(t, want, cfg.N, cfg.K)

	tr, err := OpenTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	replay := tr.Generator()
	for s := 0; s < slots+5; s++ {
		got := replay.Generate(s, nil)
		var exp []Packet
		if s < slots {
			exp = want[s]
		}
		if len(got) != len(exp) {
			t.Fatalf("slot %d: %d packets, want %d", s, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("slot %d packet %d: %+v, want %+v", s, i, got[i], exp[i])
			}
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("reader error after clean replay: %v", err)
	}
	// Non-sequential replay is an error, not silent corruption.
	tr2, err := OpenTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	replay2 := tr2.Generator()
	replay2.Generate(0, nil)
	replay2.Generate(2, nil)
	if tr2.Err() == nil {
		t.Fatal("skipping a slot left no reader error")
	}
}

func TestCompressedTraceGobBridge(t *testing.T) {
	cfg := Config{N: 5, K: 3, Seed: 2}
	gen, err := NewBernoulli(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(gen, cfg, 120)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressedTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tr.N || got.K != tr.K || len(got.Slots) != len(tr.Slots) {
		t.Fatalf("shape %dx%d/%d, want %dx%d/%d", got.N, got.K, len(got.Slots), tr.N, tr.K, len(tr.Slots))
	}
	if got.NumPackets() != tr.NumPackets() {
		t.Fatalf("NumPackets %d, want %d", got.NumPackets(), tr.NumPackets())
	}
	for s := range tr.Slots {
		for i := range tr.Slots[s] {
			if got.Slots[s][i] != tr.Slots[s][i] {
				t.Fatalf("slot %d packet %d: %+v, want %+v", s, i, got.Slots[s][i], tr.Slots[s][i])
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedTraceTruncated(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 8}
	gen, err := NewBernoulli(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	data := ctraceBytes(t, recordPackets(t, gen, 60), cfg.N, cfg.K)
	// Every truncated prefix must fail cleanly: at open, at some NextSlot,
	// or at the missing footer — never succeed with a full 60-slot read.
	for cut := 1; cut < len(data); cut += 5 {
		tr, err := OpenTraceReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue
		}
		slots := 0
		for {
			_, err := tr.NextSlot(nil)
			if err == io.EOF {
				t.Fatalf("cut=%d: truncated trace read cleanly to EOF after %d slots", cut, slots)
			}
			if err != nil {
				break
			}
			slots++
			if slots > 60 {
				t.Fatalf("cut=%d: runaway slot count", cut)
			}
		}
	}
}

func TestCompressedTraceCorrupt(t *testing.T) {
	cfg := Config{N: 4, K: 4, Seed: 8}
	gen, err := NewBernoulli(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := recordPackets(t, gen, 40)
	data := ctraceBytes(t, want, cfg.N, cfg.K)
	wantTotal := 0
	for _, s := range want {
		wantTotal += len(s)
	}
	// Flip one byte at a time. Survivors (gzip CRC happens to pass AND
	// the varint stream still parses) must still deliver shape-valid
	// packets and a consistent footer — NextSlot validates both — but
	// most flips must surface as errors somewhere.
	failures := 0
	for pos := 0; pos < len(data); pos += 3 {
		mut := bytes.Clone(data)
		mut[pos] ^= 0x41
		tr, err := OpenTraceReader(bytes.NewReader(mut))
		if err != nil {
			failures++
			continue
		}
		total := 0
		for {
			pkts, err := tr.NextSlot(nil)
			if err == io.EOF {
				if total != wantTotal || tr.Slots() != 40 {
					t.Fatalf("pos=%d: corrupt trace passed footer with %d packets/%d slots", pos, total, tr.Slots())
				}
				break
			}
			if err != nil {
				failures++
				break
			}
			for _, p := range pkts {
				if p.InputFiber < 0 || p.InputFiber >= cfg.N || p.Wavelength < 0 || p.Wavelength >= cfg.K ||
					p.DestFiber < 0 || p.DestFiber >= cfg.N || p.Duration < 1 {
					t.Fatalf("pos=%d: NextSlot returned out-of-shape packet %+v", pos, p)
				}
			}
			total += len(pkts)
			if tr.Slots() > 40 {
				failures++
				break
			}
		}
	}
	if failures == 0 {
		t.Fatal("no byte flip produced a decode error")
	}
}

func TestCompressedTraceRejectsGarbage(t *testing.T) {
	if _, err := OpenTraceReader(bytes.NewReader([]byte("not a gzip stream at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid gzip stream with the wrong magic.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte("XYZ!some payload")); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("wrong magic accepted")
	}
	// A corrupt shape (N = 0) behind a correct magic.
	buf.Reset()
	gz = gzip.NewWriter(&buf)
	payload := append([]byte("WDT2"), 0, 3)
	if _, err := gz.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("zero-N shape accepted")
	}
}

func TestTraceWriterValidatesPackets(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Packet{{InputFiber: 5, Wavelength: 0, DestFiber: 0, Duration: 1}}
	if err := tw.WriteSlot(bad); err == nil {
		t.Fatal("out-of-shape packet accepted")
	}
	// The writer is poisoned after an error.
	if err := tw.WriteSlot(nil); err == nil {
		t.Fatal("write after error accepted")
	}
	if _, err := NewTraceWriter(&buf, 0, 2); err == nil {
		t.Fatal("zero shape accepted")
	}

	var buf2 bytes.Buffer
	tw2, err := NewTraceWriter(&buf2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw2.WriteSlot([]Packet{{Duration: 0}}); err == nil {
		t.Fatal("non-positive duration accepted")
	}
	var buf3 bytes.Buffer
	tw3, err := NewTraceWriter(&buf3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw3.WriteSlot([]Packet{{Duration: 1, Priority: -1}}); err == nil {
		t.Fatal("negative priority accepted")
	}
}

func TestCompressedTraceEmptySlots(t *testing.T) {
	data := ctraceBytes(t, make([][]Packet, 10), 3, 3)
	tr, err := OpenTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		pkts, err := tr.NextSlot(nil)
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		if len(pkts) != 0 {
			t.Fatalf("slot %d: %d packets in empty trace", s, len(pkts))
		}
	}
	if _, err := tr.NextSlot(nil); err != io.EOF {
		t.Fatalf("end: %v, want io.EOF", err)
	}
}
