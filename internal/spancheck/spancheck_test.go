package spancheck

import (
	"bytes"
	"strings"
	"testing"
)

const (
	ctrlDump = `{"meta":{"role":"controller","run_id":7,"links":[{"node":"a:1","shard":0,"offset_ns":0,"rtt_ns":1000}]}}
{"slot":1,"lane":1,"stage":"rpc","port":-1,"id":1048576,"start":1000,"dur":500}
{"slot":1,"lane":0,"stage":"slot","port":-1,"id":0,"start":900,"dur":800}
{"slot":1,"lane":0,"stage":"prepare","port":-1,"id":0,"start":900,"dur":100}
{"slot":1,"lane":0,"stage":"commit","port":-1,"id":0,"start":1600,"dur":100}
{"slot":1,"lane":1,"stage":"encode","port":-1,"id":0,"start":950,"dur":50}`
	nodeDump = `{"meta":{"role":"node","run_id":7}}
{"slot":1,"lane":0,"stage":"decode","port":-1,"id":1048576,"start":1100,"dur":100}
{"slot":1,"lane":0,"stage":"schedule","port":0,"id":1048576,"start":1200,"dur":200}`
)

func mergedFixture(t *testing.T) *Merged {
	t.Helper()
	ctrl, err := ReadDump("ctrl", strings.NewReader(ctrlDump))
	if err != nil {
		t.Fatal(err)
	}
	node, err := ReadDump("node", strings.NewReader(nodeDump))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(ctrl, []*Dump{node})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMergeAndCheckInMemory(t *testing.T) {
	m := mergedFixture(t)
	rep, err := m.Check()
	if err != nil {
		t.Fatalf("check failed: %v (report %+v)", err, rep)
	}
	if rep.Checked != 2 || rep.Violations != 0 {
		t.Errorf("containment report %+v, want 2 checked / 0 violations", rep)
	}
	if !rep.AttributionChecked {
		t.Error("attribution not checked")
	}
	var buf bytes.Buffer
	flows, err := m.WriteChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if flows != 1 {
		t.Errorf("flows = %d, want 1", flows)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Error("Chrome trace missing traceEvents")
	}
	rows := m.Attribution()
	if len(rows) == 0 || rows[0].Stage != "slot" {
		t.Errorf("attribution rows %+v, want slot first", rows)
	}
}

func TestCheckFlagsContainmentViolation(t *testing.T) {
	ctrl, err := ReadDump("ctrl", strings.NewReader(ctrlDump))
	if err != nil {
		t.Fatal(err)
	}
	// Node span far outside the RPC window (slack is rtt+100µs = 101µs;
	// start 10ms after the RPC).
	bad := `{"meta":{"role":"node","run_id":7}}
{"slot":1,"lane":0,"stage":"decode","port":-1,"id":1048576,"start":10001000,"dur":100}`
	node, err := ReadDump("node", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(ctrl, []*Dump{node})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Check()
	if err == nil {
		t.Fatalf("containment violation not flagged (report %+v)", rep)
	}
	if rep.Violations == 0 {
		t.Errorf("report %+v records no violation", rep)
	}
}

func TestMergeValidation(t *testing.T) {
	ctrl, _ := ReadDump("ctrl", strings.NewReader(ctrlDump))
	node, _ := ReadDump("node", strings.NewReader(nodeDump))
	if _, err := Merge(node, nil); err == nil {
		t.Error("node-first accepted")
	}
	if _, err := Merge(ctrl, []*Dump{ctrl}); err == nil {
		t.Error("controller as node accepted")
	}
	if _, err := Merge(ctrl, []*Dump{node, node}); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := ReadDump("junk", strings.NewReader("junk")); err == nil {
		t.Error("junk dump accepted")
	}
	if _, err := ReadDump("empty", strings.NewReader("")); err == nil {
		t.Error("empty dump accepted")
	}
}
