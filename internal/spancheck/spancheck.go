// Package spancheck merges the span dumps of a traced cluster run — the
// controller's and any number of nodes' (telemetry.SpanTracer JSONL,
// written by Controller.WriteSpans / Node.WriteSpans) — onto one
// clock-corrected timeline and verifies its cross-process invariants:
// containment (node work happens inside the controller RPC that carried
// it) and attribution (the stage spans explain the slot time). It is the
// engine behind `wdmtrace -merge -check` and the span invariant of
// `wdmsoak`.
package spancheck

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Span is one parsed span dump line (telemetry.SpanTracer.WriteJSONL).
// Start/Dur are nanoseconds on the dumping process's local span clock.
type Span struct {
	Slot  int64  `json:"slot"`
	Lane  int32  `json:"lane"`
	Stage string `json:"stage"`
	Port  int32  `json:"port"`
	ID    uint64 `json:"id"`
	Start int64  `json:"start"`
	Dur   int64  `json:"dur"`
}

// LinkSync mirrors cluster.LinkSync: the controller's clock estimate for
// one node link, used to place node spans on the controller timeline.
type LinkSync struct {
	Node     string `json:"node"`
	Shard    int    `json:"shard"`
	OffsetNS int64  `json:"offset_ns"`
	RTTNS    int64  `json:"rtt_ns"`
}

// Meta is the dump's first-line metadata object.
type Meta struct {
	Role  string     `json:"role"`
	RunID uint64     `json:"run_id"`
	Links []LinkSync `json:"links"`
}

// Dump is one parsed span dump. Name labels it in error messages (the
// file path, or a synthetic name for in-memory dumps).
type Dump struct {
	Name  string
	Meta  Meta
	Spans []Span
}

// ReadDump parses one span dump from r: a meta line followed by span
// JSONL. name labels the dump in errors.
func ReadDump(name string, r io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return nil, fmt.Errorf("%s: empty span dump", name)
	}
	var first struct {
		Meta *Meta `json:"meta"`
	}
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Meta == nil {
		return nil, fmt.Errorf("%s: first line is not a span-dump meta object", name)
	}
	d := &Dump{Name: name, Meta: *first.Meta}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("%s: bad span line: %w", name, err)
		}
		d.Spans = append(d.Spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return d, nil
}

// ReadDumpFile parses the span dump at path.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(path, f)
}

// ShardOf recovers the controller link a node dump talked to. Span IDs
// are seq<<20|shard, so any echoed ID names the shard directly.
func ShardOf(d *Dump, nLinks int) (int, error) {
	for _, s := range d.Spans {
		if s.ID != 0 {
			shard := int(s.ID & (1<<20 - 1))
			if shard >= nLinks {
				return 0, fmt.Errorf("%s: span id %#x names shard %d, controller has %d links",
					d.Name, s.ID, shard, nLinks)
			}
			return shard, nil
		}
	}
	return 0, fmt.Errorf("%s: no span carries a trace ID; cannot map the dump to a controller link", d.Name)
}

// Merged is a controller dump joined with its node dumps, shard-mapped
// and clock-synced, ready for timeline export and invariant checks.
type Merged struct {
	Ctrl    *Dump
	Nodes   map[int]*Dump // shard -> dump
	Offsets map[int]int64 // shard -> controller-estimated clock offset
	RTTs    map[int]int64 // shard -> best-sample RTT
	rpcByID map[uint64]Span
}

// Merge validates the dumps (roles, run IDs, unique shard mapping) and
// builds the merged view. The controller dump comes first; node dumps
// follow in any order.
func Merge(ctrl *Dump, nodes []*Dump) (*Merged, error) {
	if ctrl.Meta.Role != "controller" {
		return nil, fmt.Errorf("%s: role %q, want controller first (node dumps follow in any order)",
			ctrl.Name, ctrl.Meta.Role)
	}
	m := &Merged{
		Ctrl:    ctrl,
		Nodes:   make(map[int]*Dump),
		Offsets: make(map[int]int64, len(ctrl.Meta.Links)),
		RTTs:    make(map[int]int64, len(ctrl.Meta.Links)),
		rpcByID: make(map[uint64]Span),
	}
	for _, d := range nodes {
		if d.Meta.Role != "node" {
			return nil, fmt.Errorf("%s: role %q, want node", d.Name, d.Meta.Role)
		}
		if d.Meta.RunID != 0 && d.Meta.RunID != ctrl.Meta.RunID {
			return nil, fmt.Errorf("%s: run %#x does not match controller run %#x (dumps from different runs?)",
				d.Name, d.Meta.RunID, ctrl.Meta.RunID)
		}
		shard, err := ShardOf(d, len(ctrl.Meta.Links))
		if err != nil {
			return nil, err
		}
		if prev, dup := m.Nodes[shard]; dup {
			return nil, fmt.Errorf("%s and %s both map to shard %d", prev.Name, d.Name, shard)
		}
		m.Nodes[shard] = d
	}
	for _, l := range ctrl.Meta.Links {
		m.Offsets[l.Shard], m.RTTs[l.Shard] = l.OffsetNS, l.RTTNS
	}
	for _, s := range ctrl.Spans {
		if s.Stage == "rpc" && s.ID != 0 {
			m.rpcByID[s.ID] = s
		}
	}
	return m, nil
}

// traceEvent is one Chrome trace_event record; ts and dur are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func metaEvent(pid int, name string) traceEvent {
	return traceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
}

// WriteChrome renders the merged timeline as a Chrome trace_event JSON
// document: process 0 is the controller, process shard+1 each node
// (thread = tracer lane), node clocks corrected by the controller's
// offset estimate, and an RPC flow arrow from each controller RPC span to
// the node work it covered. It returns the RPC flow-arrow count.
func (m *Merged) WriteChrome(w io.Writer) (flows int, err error) {
	events := []traceEvent{metaEvent(0, "controller")}
	for shard := range m.Nodes {
		events = append(events, metaEvent(shard+1, fmt.Sprintf("node %s", m.Ctrl.Meta.Links[shard].Node)))
	}
	addSpan := func(pid int, s Span, start int64) {
		events = append(events, traceEvent{
			Name: s.Stage, Ph: "X", Pid: pid, Tid: s.Lane,
			Ts: float64(start) / 1e3, Dur: float64(s.Dur) / 1e3,
			Args: map[string]any{"slot": s.Slot, "port": s.Port, "id": s.ID},
		})
	}
	for _, s := range m.Ctrl.Spans {
		addSpan(0, s, s.Start)
		if s.Stage == "rpc" && s.ID != 0 {
			events = append(events, traceEvent{
				Name: "rpc", Ph: "s", Cat: "rpc", Pid: 0, Tid: s.Lane,
				Ts: float64(s.Start) / 1e3, ID: fmt.Sprintf("%#x", s.ID),
			})
		}
	}
	for shard, d := range m.Nodes {
		off := m.Offsets[shard]
		for _, s := range d.Spans {
			start := s.Start - off // node clock -> controller clock
			addSpan(shard+1, s, start)
			if s.Stage == "decode" && s.ID != 0 {
				if _, ok := m.rpcByID[s.ID]; ok {
					events = append(events, traceEvent{
						Name: "rpc", Ph: "f", BP: "e", Cat: "rpc", Pid: shard + 1, Tid: s.Lane,
						Ts: float64(start) / 1e3, ID: fmt.Sprintf("%#x", s.ID),
					})
					flows++
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events}); err != nil {
		return 0, err
	}
	return flows, nil
}

// NodeSpanCount sums the spans across the node dumps.
func (m *Merged) NodeSpanCount() int {
	n := 0
	for _, d := range m.Nodes {
		n += len(d.Spans)
	}
	return n
}

// StageAgg is one row of the per-stage latency attribution table.
type StageAgg struct {
	Stage string
	Count int64
	Total int64 // nanoseconds
}

// Attribution aggregates every process's spans per stage, sorted by
// descending total time.
func (m *Merged) Attribution() []StageAgg {
	stages := map[string]*StageAgg{}
	add := func(spans []Span) {
		for _, s := range spans {
			a := stages[s.Stage]
			if a == nil {
				a = &StageAgg{Stage: s.Stage}
				stages[s.Stage] = a
			}
			a.Count++
			a.Total += s.Dur
		}
	}
	add(m.Ctrl.Spans)
	for _, d := range m.Nodes {
		add(d.Spans)
	}
	out := make([]StageAgg, 0, len(stages))
	for _, a := range stages {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Report carries the measured invariant values of one Check run.
type Report struct {
	// Containment: node spans matched to a controller RPC span, and how
	// many fell outside their clock-corrected RPC window.
	Checked    int
	Violations int
	// AttributionRatio is explained stage time over total slot-span time;
	// valid only when AttributionChecked (containment passed first).
	AttributionRatio   float64
	AttributionChecked bool
}

// ContainmentFrac is Violations / Checked.
func (r *Report) ContainmentFrac() float64 {
	if r.Checked == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Checked)
}

// Check enforces the merged timeline's invariants:
//
//  1. Containment — every node span, after clock correction, must lie
//     within the controller RPC span that carried it, give or take the
//     link RTT plus a fixed 100µs slack (the offset estimate is only as
//     good as the best sample). At most 2% of spans may violate.
//  2. Attribution — prepare + commit + the per-slot critical path of
//     encode/RPC/fallback must explain 40–105% of total slot-span time;
//     far less means spans are missing, more than ~100% means
//     double-counting or broken clocks.
//
// The Report is populated as far as checking got, error or not.
//
// Attribution assumes the controller never stalled between stages; runs
// with transport fault injection spend unattributed time in retry backoff
// and deadline waits, so chaos harnesses call CheckContainment alone.
func (m *Merged) Check() (Report, error) {
	r, err := m.CheckContainment()
	if err != nil {
		return r, err
	}
	return m.CheckAttribution(r)
}

// CheckContainment enforces invariant 1 alone.
func (m *Merged) CheckContainment() (Report, error) {
	var r Report
	for shard, d := range m.Nodes {
		slack := m.RTTs[shard] + 100_000
		off := m.Offsets[shard]
		for _, s := range d.Spans {
			if s.ID == 0 {
				continue
			}
			rpc, ok := m.rpcByID[s.ID]
			if !ok {
				continue // RPC span rotated out of the controller ring
			}
			r.Checked++
			start := s.Start - off
			if start < rpc.Start-slack || start+s.Dur > rpc.Start+rpc.Dur+slack {
				r.Violations++
			}
		}
	}
	if r.Checked == 0 {
		return r, fmt.Errorf("check: no node span matched a controller RPC span")
	}
	if frac := r.ContainmentFrac(); frac > 0.02 {
		return r, fmt.Errorf("check: %.2f%% of node spans fall outside their clock-corrected RPC window (limit 2%%)", 100*frac)
	}
	return r, nil
}

// CheckAttribution enforces invariant 2, extending the report r (from
// CheckContainment) with the attribution ratio.
func (m *Merged) CheckAttribution(r Report) (Report, error) {
	type slotAgg struct {
		perLane map[int32]int64 // encode+rpc+fallback per controller lane
		prep    int64
		commit  int64
		slot    int64
	}
	slots := map[int64]*slotAgg{}
	at := func(slot int64) *slotAgg {
		a := slots[slot]
		if a == nil {
			a = &slotAgg{perLane: map[int32]int64{}}
			slots[slot] = a
		}
		return a
	}
	for _, s := range m.Ctrl.Spans {
		a := at(s.Slot)
		switch s.Stage {
		case "slot":
			a.slot += s.Dur
		case "prepare":
			a.prep += s.Dur
		case "commit":
			a.commit += s.Dur
		case "encode", "rpc", "fallback":
			a.perLane[s.Lane] += s.Dur
		}
	}
	var explained, slotTotal int64
	for _, a := range slots {
		if a.slot == 0 {
			continue // slot span rotated out; nothing to attribute against
		}
		slotTotal += a.slot
		var critical int64
		for _, d := range a.perLane {
			if d > critical {
				critical = d
			}
		}
		explained += a.prep + a.commit + critical
	}
	if slotTotal == 0 {
		return r, fmt.Errorf("check: no slot spans retained; raise the span capacity")
	}
	r.AttributionRatio = float64(explained) / float64(slotTotal)
	r.AttributionChecked = true
	if r.AttributionRatio < 0.4 || r.AttributionRatio > 1.05 {
		return r, fmt.Errorf("check: stage attribution explains %.1f%% of slot time, want 40%%-105%%", 100*r.AttributionRatio)
	}
	return r, nil
}
