package grant

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"time"

	"wdmsched/internal/metrics"
)

// transport frames grant-protocol messages over one connection. It is
// not safe for concurrent use by itself: the server serializes writes
// with a per-session mutex (the ingest goroutine and the round loop both
// emit verdicts) and reads only from the session goroutine; the client
// splits one transport between a writing and a reading goroutine the
// same way. Both frame buffers are reused, so the steady-state
// send/receive path does not allocate.
type transport struct {
	c  net.Conn
	br *bufio.Reader

	wbuf []byte // whole outgoing frame: header + payload + crc
	rbuf []byte // incoming payload

	// bytesOut/bytesIn and framesOut/framesIn, when non-nil, total the
	// wire traffic for the wdm_grant_* telemetry series.
	bytesOut, bytesIn   *metrics.Counter
	framesOut, framesIn *metrics.Counter
}

func newTransport(c net.Conn) *transport {
	return &transport{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// appendFrame appends one framed message (header + payload + CRC) to dst
// and returns the extended slice. Shared by the synchronous send path and
// the server's per-session egress buffers.
func appendFrame(dst []byte, mt msgType, payload []byte) []byte {
	dst = putU16(dst, wireMagic)
	dst = append(dst, wireVersion, byte(mt))
	dst = putU32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	dst = putU32(dst, crc32.ChecksumIEEE(payload))
	return dst
}

// send frames and writes one message.
func (t *transport) send(mt msgType, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("grant: payload %d exceeds limit", len(payload))
	}
	t.wbuf = appendFrame(t.wbuf[:0], mt, payload)
	if _, err := t.c.Write(t.wbuf); err != nil {
		return fmt.Errorf("grant: write %v: %w", mt, err)
	}
	if t.bytesOut != nil {
		t.bytesOut.Add(int64(len(t.wbuf)))
	}
	if t.framesOut != nil {
		t.framesOut.Inc()
	}
	return nil
}

// recv reads one frame and returns its type and payload. The payload
// slice is valid until the next recv.
func (t *transport) recv() (msgType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("grant: read header: %w", err)
	}
	if m := uint16(hdr[0])<<8 | uint16(hdr[1]); m != wireMagic {
		return 0, nil, fmt.Errorf("grant: bad magic %#04x", m)
	}
	if hdr[2] != wireVersion {
		return 0, nil, fmt.Errorf("grant: wire protocol version mismatch: peer speaks v%d, this build speaks v%d",
			hdr[2], wireVersion)
	}
	mt := msgType(hdr[3])
	n := int(uint32(hdr[4])<<24 | uint32(hdr[5])<<16 | uint32(hdr[6])<<8 | uint32(hdr[7]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("grant: payload length %d exceeds limit", n)
	}
	if cap(t.rbuf) < n+crcLen {
		t.rbuf = make([]byte, n+crcLen)
	}
	buf := t.rbuf[:n+crcLen]
	if _, err := io.ReadFull(t.br, buf); err != nil {
		return 0, nil, fmt.Errorf("grant: read payload: %w", err)
	}
	if t.bytesIn != nil {
		t.bytesIn.Add(int64(headerLen + n + crcLen))
	}
	if t.framesIn != nil {
		t.framesIn.Inc()
	}
	payload := buf[:n]
	wantCRC := uint32(buf[n])<<24 | uint32(buf[n+1])<<16 | uint32(buf[n+2])<<8 | uint32(buf[n+3])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return 0, nil, fmt.Errorf("grant: %v frame CRC mismatch (got %#08x want %#08x)", mt, got, wantCRC)
	}
	return mt, payload, nil
}

// setReadDeadline bounds the next read(s); zero clears it.
func (t *transport) setReadDeadline(d time.Time) error { return t.c.SetReadDeadline(d) }

// setWriteDeadline bounds the next write(s); zero clears it.
func (t *transport) setWriteDeadline(d time.Time) error { return t.c.SetWriteDeadline(d) }

// closeWrite half-closes the connection (FIN without RST) when the
// underlying conn supports it — TCP and unix sockets both do. The server
// uses this after sending a session's final ledger so that a racing
// submit frame still sitting in the receive buffer does not turn the
// close into an RST that destroys the client's unread ledger.
func (t *transport) closeWrite() error {
	if cw, ok := t.c.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return fmt.Errorf("grant: connection does not support half-close")
}

func (t *transport) close() error { return t.c.Close() }

// SplitAddr maps a listen/dial address to a Go network/address pair, the
// same way Dial does: anything with a "unix:" prefix or containing a path
// separator is a unix socket; everything else is TCP host:port.
func SplitAddr(addr string) (network, address string) { return splitAddr(addr) }

// splitAddr maps a listen/dial address to a Go network/address pair:
// anything with a "unix:" prefix or containing a path separator is a
// unix socket; everything else is TCP host:port.
func splitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.Contains(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}
