package grant

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Policy is one tenant's admission contract: a QoS class (lower is
// served first, mapped onto core.QoS packet priorities when the switch
// runs with PriorityClasses > 1), a token-bucket rate limit, and a
// bounded ingress queue.
type Policy struct {
	// Class is the tenant's strict-priority QoS class, 0 = highest.
	Class int `json:"class"`
	// Rate is the sustained admission rate in requests per second.
	// Rate 0 admits nothing: the tenant is administratively blocked and
	// every request is rejected (not retried — retrying is futile).
	Rate float64 `json:"rate"`
	// Burst is the token-bucket capacity in requests: the largest batch
	// admitted at once after a sufficiently long quiet period.
	Burst float64 `json:"burst"`
	// Queue is the ingress queue bound in requests. A full queue pushes
	// back with RETRY-AFTER verdicts instead of buffering without bound.
	Queue int `json:"queue"`
}

func (p Policy) validate() error {
	if p.Class < 0 || p.Class > 255 {
		return fmt.Errorf("grant: class %d out of range [0,255]", p.Class)
	}
	if p.Rate < 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
		return fmt.Errorf("grant: rate %v must be a finite non-negative requests/second", p.Rate)
	}
	if p.Rate > 0 && p.Burst < 1 {
		return fmt.Errorf("grant: burst %v must be >= 1 request when rate > 0", p.Burst)
	}
	if p.Queue < 1 {
		return fmt.Errorf("grant: queue bound %d must be >= 1 request", p.Queue)
	}
	return nil
}

// bucket is a token bucket over a nanosecond clock. The clock is passed
// in (telemetry.NowNS in production, a fake in tests) so admission
// decisions are testable without sleeping. Not safe for concurrent use;
// the service guards each tenant's bucket with the service mutex.
type bucket struct {
	rate   float64 // tokens per second
	cap    float64 // burst capacity
	tokens float64
	lastNS int64
}

func newBucket(rate, burst float64) bucket {
	// A fresh bucket is full: a tenant's first burst up to capacity is
	// admitted without warm-up.
	return bucket{rate: rate, cap: burst, tokens: burst}
}

// take refills the bucket to nowNS and spends one token. On failure it
// returns the RETRY-AFTER hint in milliseconds: the time until one token
// will be available, rounded up, floored at 1ms so a hint is never zero.
func (b *bucket) take(nowNS int64) (ok bool, waitMS uint32) {
	if elapsed := nowNS - b.lastNS; elapsed > 0 {
		b.tokens += float64(elapsed) * 1e-9 * b.rate
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
	}
	b.lastNS = nowNS
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, retryAfterMS(1-b.tokens, b.rate)
}

// retryAfterMS converts a token deficit at a given refill rate into a
// milliseconds hint: ceil(deficit/rate), floored at 1ms, capped so a
// tiny rate cannot overflow the u32 wire field.
func retryAfterMS(deficit, rate float64) uint32 {
	if rate <= 0 {
		return math.MaxUint32
	}
	ms := math.Ceil(deficit / rate * 1000)
	if ms < 1 {
		ms = 1
	}
	if ms > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ms)
}

// ParsePolicies parses a tenant-policy spec of the form
//
//	name:key=value,key=value;name2:key=value...
//
// with keys class, rate (requests/second), burst (requests) and queue
// (requests). Omitted keys inherit from def. An empty spec is valid and
// yields no per-tenant overrides (every tenant gets def).
func ParsePolicies(spec string, def Policy) (map[string]Policy, error) {
	out := map[string]Policy{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, kvs, ok := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("grant: tenant spec %q: want name:key=value,...", entry)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("grant: tenant %q specified twice", name)
		}
		pol := def
		for _, kv := range strings.Split(kvs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("grant: tenant %q: %q is not key=value", name, kv)
			}
			switch strings.TrimSpace(key) {
			case "class":
				c, err := strconv.Atoi(strings.TrimSpace(val))
				if err != nil {
					return nil, fmt.Errorf("grant: tenant %q: class %q: %v", name, val, err)
				}
				pol.Class = c
			case "rate":
				r, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
				if err != nil {
					return nil, fmt.Errorf("grant: tenant %q: rate %q: %v", name, val, err)
				}
				pol.Rate = r
			case "burst":
				b, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
				if err != nil {
					return nil, fmt.Errorf("grant: tenant %q: burst %q: %v", name, val, err)
				}
				pol.Burst = b
			case "queue":
				q, err := strconv.Atoi(strings.TrimSpace(val))
				if err != nil {
					return nil, fmt.Errorf("grant: tenant %q: queue %q: %v", name, val, err)
				}
				pol.Queue = q
			default:
				return nil, fmt.Errorf("grant: tenant %q: unknown key %q (want class, rate, burst or queue)", name, key)
			}
		}
		if err := pol.validate(); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", name, err)
		}
		out[name] = pol
	}
	return out, nil
}

// FormatPolicies renders a policy map back into the spec syntax, sorted
// by tenant name — used to echo the effective configuration.
func FormatPolicies(pols map[string]Policy) string {
	names := make([]string, 0, len(pols))
	for name := range pols {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		p := pols[name]
		fmt.Fprintf(&b, "%s:class=%d,rate=%g,burst=%g,queue=%d", name, p.Class, p.Rate, p.Burst, p.Queue)
	}
	return b.String()
}
