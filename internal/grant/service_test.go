package grant

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wdmsched/internal/interconnect"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/wavelength"
)

const (
	testN = 4
	testK = 8
)

func testSwitchConfig(t *testing.T) interconnect.Config {
	t.Helper()
	conv, err := wavelength.NewSymmetric(wavelength.Circular, testK, 3)
	if err != nil {
		t.Fatal(err)
	}
	return interconnect.Config{N: testN, Conv: conv, Scheduler: "exact", Seed: 7}
}

// startService builds and serves a service on loopback, returning it,
// its address and the Serve error channel. mut adjusts the config.
func startService(t *testing.T, mut func(*Config)) (*Service, string, chan error) {
	t.Helper()
	cfg := Config{
		Switch:  testSwitchConfig(t),
		Default: Policy{Class: 0, Rate: 1e6, Burst: 4096, Queue: 4096},
		Resync:  32,
		Stderr:  testWriter{t},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	done := make(chan struct{})
	go func() { errc <- s.Serve(ln); close(done) }()
	t.Cleanup(func() {
		s.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})
	return s, ln.Addr().String(), errc
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// collect reads verdicts until want notices arrived (or a drain/ledger
// event shows up, which it reports through the returned struct).
type tally struct {
	granted, rejected, retried int
	drain                      bool
	ledger                     *Ledger
}

func (ta *tally) add(notices []Notice) {
	for _, nt := range notices {
		switch {
		case nt.Verdict.Granted():
			ta.granted++
		case nt.Verdict.Rejected():
			ta.rejected++
		case nt.Verdict.Retry():
			ta.retried++
		}
	}
}

func (ta *tally) terminal() int { return ta.granted + ta.rejected + ta.retried }

func recvUntil(t *testing.T, c *Client, ta *tally, want int) {
	t.Helper()
	c.SetRecvDeadline(time.Now().Add(20 * time.Second))
	defer c.SetRecvDeadline(time.Time{})
	for ta.terminal() < want {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv with %d/%d verdicts: %v", ta.terminal(), want, err)
		}
		switch {
		case ev.Notices != nil:
			ta.add(ev.Notices)
		case ev.Drain:
			ta.drain = true
		case ev.Ledger != nil:
			t.Fatalf("ledger before all verdicts (%d/%d)", ta.terminal(), want)
		}
	}
}

// byeLedger completes the session and returns the server-side ledger.
func byeLedger(t *testing.T, c *Client) Ledger {
	t.Helper()
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	c.SetRecvDeadline(time.Now().Add(10 * time.Second))
	for {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("waiting for ledger: %v", err)
		}
		if ev.Ledger != nil {
			return *ev.Ledger
		}
	}
}

func TestServiceEndToEndLedger(t *testing.T) {
	s, addr, errc := startService(t, nil)

	const perClient = 600
	run := func(tenant string, seedShift int) (Ledger, tally) {
		c, err := Dial(addr, tenant)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.N != testN || c.K != testK {
			t.Fatalf("handshake shape %d×%d, want %d×%d", c.N, c.K, testN, testK)
		}
		var ta tally
		reqs := make([]Req, 0, 32)
		id := uint64(0)
		for id < perClient {
			reqs = reqs[:0]
			for b := 0; b < 32 && id < perClient; b++ {
				i := int(id) + seedShift
				reqs = append(reqs, Req{
					ID:   id,
					In:   uint32(i % testN),
					Wave: uint16((i / testN) % testK),
					Dest: uint32((i * 7) % testN),
					Dur:  uint16(1 + i%3),
				})
				id++
			}
			if err := c.Submit(reqs); err != nil {
				t.Fatal(err)
			}
			// Read whatever is ready so the pipe never backs up.
			recvUntil(t, c, &ta, ta.terminal())
		}
		recvUntil(t, c, &ta, perClient)
		return byeLedger(t, c), ta
	}

	ledgerA, tallyA := run("tenant-a", 0)
	ledgerB, tallyB := run("tenant-b", 3)

	for name, pair := range map[string]struct {
		l  Ledger
		ta tally
	}{"tenant-a": {ledgerA, tallyA}, "tenant-b": {ledgerB, tallyB}} {
		if !pair.l.Balanced() {
			t.Errorf("%s: server ledger does not balance: %+v", name, pair.l)
		}
		if pair.l.Submitted != perClient {
			t.Errorf("%s: server saw %d submissions, client sent %d", name, pair.l.Submitted, perClient)
		}
		if got, want := pair.l.Granted, uint64(pair.ta.granted); got != want {
			t.Errorf("%s: server granted %d, client counted %d", name, got, want)
		}
		if got, want := pair.l.Rejected, uint64(pair.ta.rejected); got != want {
			t.Errorf("%s: server rejected %d, client counted %d", name, got, want)
		}
		if got, want := pair.l.Retried, uint64(pair.ta.retried); got != want {
			t.Errorf("%s: server retried %d, client counted %d", name, got, want)
		}
	}

	// Graceful drain: Serve returns nil and the service-wide ledger
	// reconciled against the engine on the way out.
	s.Drain()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Drain")
	}
	if inc := s.Incident(); inc != nil {
		t.Fatalf("incident after clean run: %+v", inc)
	}
	total := s.Ledger()
	if !total.Balanced() {
		t.Fatalf("service ledger does not balance: %+v", total)
	}
	if total.Submitted != 2*perClient {
		t.Fatalf("service saw %d submissions, want %d", total.Submitted, 2*perClient)
	}
	if total.Granted != ledgerA.Granted+ledgerB.Granted {
		t.Fatalf("service granted %d != sessions %d+%d", total.Granted, ledgerA.Granted, ledgerB.Granted)
	}
}

func TestZeroRateTenantAlwaysRejected(t *testing.T) {
	_, addr, _ := startService(t, func(cfg *Config) {
		cfg.Tenants = map[string]Policy{
			"blocked": {Class: 0, Rate: 0, Burst: 0, Queue: 16},
		}
	})
	c, err := Dial(addr, "blocked")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Policy.Rate != 0 {
		t.Fatalf("handshake policy rate %g, want 0", c.Policy.Rate)
	}
	reqs := make([]Req, 20)
	for i := range reqs {
		reqs[i] = Req{ID: uint64(i), In: uint32(i % testN), Wave: uint16(i % testK), Dest: 0, Dur: 1}
	}
	if err := c.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	var ta tally
	recvUntil(t, c, &ta, len(reqs))
	if ta.rejected != len(reqs) || ta.granted != 0 || ta.retried != 0 {
		t.Fatalf("tally %+v, want all %d rejected", ta, len(reqs))
	}
	l := byeLedger(t, c)
	if !l.Balanced() || l.Rejected != uint64(len(reqs)) || l.Admitted != 0 {
		t.Fatalf("ledger %+v, want %d admission rejects and balance", l, len(reqs))
	}
}

func TestBurstExactlyAtBucketCapacityOverWire(t *testing.T) {
	const burst = 8
	_, addr, _ := startService(t, func(cfg *Config) {
		cfg.Tenants = map[string]Policy{
			// Near-zero refill: the whole test fits inside one token.
			"bursty": {Class: 0, Rate: 1e-3, Burst: burst, Queue: 64},
		}
	})
	c, err := Dial(addr, "bursty")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reqs := make([]Req, 2*burst)
	for i := range reqs {
		reqs[i] = Req{ID: uint64(i), In: uint32(i % testN), Wave: uint16(i % testK), Dest: uint32(i % testN), Dur: 1}
	}
	if err := c.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	var ta tally
	retryWaits := 0
	c.SetRecvDeadline(time.Now().Add(20 * time.Second))
	for ta.terminal() < len(reqs) {
		ev, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		for _, nt := range ev.Notices {
			if nt.Verdict == VerdictRetryBucket && nt.WaitMS > 0 {
				retryWaits++
			}
		}
		ta.add(ev.Notices)
	}
	// Exactly the burst is admitted (granted or contention-rejected);
	// the boundary request burst+1 and everything after gets RETRY.
	if got := ta.granted + ta.rejected; got != burst {
		t.Fatalf("%d requests passed admission, want exactly burst %d", got, burst)
	}
	if ta.retried != burst {
		t.Fatalf("%d retried, want %d", ta.retried, burst)
	}
	if retryWaits != burst {
		t.Fatalf("%d retry verdicts carried a RETRY-AFTER hint, want %d", retryWaits, burst)
	}
	l := byeLedger(t, c)
	if !l.Balanced() || l.Admitted != burst {
		t.Fatalf("ledger %+v, want admitted == %d", l, burst)
	}
}

func TestQueueFullRetryAfterRoundTrip(t *testing.T) {
	const queue = 4
	_, addr, _ := startService(t, func(cfg *Config) {
		// Paced rounds: the queue cannot drain between the frame's
		// requests, so the bound is what pushes back.
		cfg.SlotEvery = 50 * time.Millisecond
		cfg.Tenants = map[string]Policy{
			"narrow": {Class: 0, Rate: 1e6, Burst: 1024, Queue: queue},
		}
	})
	c, err := Dial(addr, "narrow")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const total = 40
	reqs := make([]Req, total)
	for i := range reqs {
		reqs[i] = Req{ID: uint64(i), In: uint32(i % testN), Wave: uint16(i % testK), Dest: uint32(i % testN), Dur: 1}
	}
	// One frame is admitted atomically against the round loop: exactly
	// `queue` requests fit, the rest must bounce with RETRY-AFTER.
	if err := c.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	var ta tally
	hints := 0
	c.SetRecvDeadline(time.Now().Add(20 * time.Second))
	for ta.terminal() < total {
		ev, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		for _, nt := range ev.Notices {
			if nt.Verdict == VerdictRetryQueue {
				if nt.WaitMS == 0 {
					t.Fatal("queue-full retry without a RETRY-AFTER hint")
				}
				hints++
			}
		}
		ta.add(ev.Notices)
	}
	if ta.retried != total-queue || hints != total-queue {
		t.Fatalf("retried %d (hints %d), want %d queue-full retries", ta.retried, hints, total-queue)
	}
	if got := ta.granted + ta.rejected; got != queue {
		t.Fatalf("%d settled, want the %d that fit the queue", got, queue)
	}
	l := byeLedger(t, c)
	if !l.Balanced() || l.Admitted != queue || l.Retried != total-queue {
		t.Fatalf("ledger %+v", l)
	}
}

func TestDrainRacesMidFlightBatch(t *testing.T) {
	s, addr, errc := startService(t, nil)
	c, err := Dial(addr, "racer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A writer goroutine keeps submitting long-duration requests while
	// the main goroutine drains the server mid-flight. Submissions after
	// the drain begins must come back as retry-drain; everything
	// admitted before it must still settle, then the ledger arrives.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := uint64(0)
		reqs := make([]Req, 16)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range reqs {
				j := int(id) + i
				reqs[i] = Req{ID: id + uint64(i), In: uint32(j % testN), Wave: uint16(j % testK),
					Dest: uint32(j % testN), Dur: uint16(1 + j%8)}
			}
			if err := c.Submit(reqs); err != nil {
				return // session closed by drain completion
			}
			id += uint64(len(reqs))
		}
	}()

	// Let some batches through, then drain mid-flight.
	time.Sleep(20 * time.Millisecond)
	s.Drain()

	var ta tally
	var ledger *Ledger
	c.SetRecvDeadline(time.Now().Add(20 * time.Second))
	for ledger == nil {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv: %v (tally %+v)", err, ta)
		}
		switch {
		case ev.Notices != nil:
			ta.add(ev.Notices)
		case ev.Drain:
			ta.drain = true
		case ev.Ledger != nil:
			l := *ev.Ledger
			ledger = &l
		}
	}
	close(stop)
	wg.Wait()

	if !ta.drain {
		t.Error("no drain announcement seen")
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if !ledger.Balanced() {
		t.Fatalf("session ledger does not balance: %+v", ledger)
	}
	if ledger.Admitted != ledger.Granted+ledger.Rejected {
		t.Fatalf("admitted %d != granted %d + rejected %d — a mid-flight request was lost",
			ledger.Admitted, ledger.Granted, ledger.Rejected)
	}
	if got := uint64(ta.terminal()); got != ledger.Submitted {
		t.Fatalf("client saw %d verdicts, server ledger says %d submitted", got, ledger.Submitted)
	}
	if inc := s.Incident(); inc != nil {
		t.Fatalf("incident during drain race: %+v", inc)
	}
	total := s.Ledger()
	if !total.Balanced() {
		t.Fatalf("service ledger does not balance: %+v", total)
	}
}

// TestNonReadingClientCannotWedgeService pins the egress-buffer
// contract: a client that submits but never reads verdicts must be
// disconnected when its bounded egress buffer fills — never allowed to
// stall the round loop, other sessions or Drain behind a blocked socket
// write.
func TestNonReadingClientCannotWedgeService(t *testing.T) {
	s, addr, errc := startService(t, func(cfg *Config) {
		cfg.EgressBuffer = 1 << 12 // trip the bound quickly
	})
	bad, err := Dial(addr, "deaf")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()

	// Flood submissions without ever calling Recv. Once the socket
	// buffers jam, verdicts pile into the session's egress buffer; the
	// bound trips and the server closes the connection, which surfaces
	// here as a Submit error.
	reqs := make([]Req, 16)
	var submitErr error
	deadline := time.Now().Add(20 * time.Second)
	for id := uint64(0); submitErr == nil; id += uint64(len(reqs)) {
		if time.Now().After(deadline) {
			t.Fatal("server never disconnected a non-reading client")
		}
		for i := range reqs {
			j := int(id) + i
			reqs[i] = Req{ID: id + uint64(i), In: uint32(j % testN), Wave: uint16(j % testK),
				Dest: uint32(j % testN), Dur: 1}
		}
		submitErr = bad.Submit(reqs)
	}

	// The rest of the service must be unaffected: a well-behaved client
	// on another tenant still gets verdicts and a balanced ledger.
	good, err := Dial(addr, "polite")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	const polite = 64
	gr := make([]Req, polite)
	for i := range gr {
		gr[i] = Req{ID: uint64(i), In: uint32(i % testN), Wave: uint16(i % testK),
			Dest: uint32(i % testN), Dur: 1}
	}
	if err := good.Submit(gr); err != nil {
		t.Fatal(err)
	}
	var ta tally
	recvUntil(t, good, &ta, polite)
	l := byeLedger(t, good)
	if !l.Balanced() || l.Submitted != polite {
		t.Fatalf("well-behaved session ledger %+v, want %d submissions and balance", l, polite)
	}

	// And a drain must still complete promptly.
	s.Drain()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if inc := s.Incident(); inc != nil {
		t.Fatalf("incident after overflow disconnect: %+v", inc)
	}
	if total := s.Ledger(); !total.Balanced() {
		t.Fatalf("service ledger does not balance: %+v", total)
	}
}

func TestInvariantViolationWritesForensics(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "incident.tgz")
	report := filepath.Join(dir, "incident.json")
	s, addr, errc := startService(t, func(cfg *Config) {
		cfg.Resync = 1
		cfg.BundlePath = bundle
		cfg.Report = report
		cfg.Meta.Engine = "sequential"
	})
	c, err := Dial(addr, "victim")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Corrupt the ledger out from under the service (the chaosbug): the
	// next reconcile must catch it, dump the bundle and stop Serve.
	s.mu.Lock()
	s.granted += 3
	s.mu.Unlock()

	reqs := make([]Req, 16)
	for i := range reqs {
		reqs[i] = Req{ID: uint64(i), In: uint32(i % testN), Wave: uint16(i % testK), Dest: 0, Dur: 1}
	}
	if err := c.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	var serveErr error
	select {
	case serveErr = <-errc:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not stop on the injected ledger corruption")
	}
	if serveErr == nil || !strings.Contains(serveErr.Error(), "invariant violation") {
		t.Fatalf("Serve error = %v, want invariant violation", serveErr)
	}
	inc := s.Incident()
	if inc == nil || inc.Invariant != "ledger" {
		t.Fatalf("incident = %+v, want ledger invariant", inc)
	}
	if inc.Config.Engine != "sequential" || inc.Config.N != testN {
		t.Fatalf("incident metadata not filled: %+v", inc.Config)
	}
	if _, err := os.Stat(report); err != nil {
		t.Fatalf("incident report not written: %v", err)
	}
	b, err := telemetry.ReadBundleFile(bundle)
	if err != nil {
		t.Fatalf("incident bundle unreadable: %v", err)
	}
	for _, name := range []string{"config.json", "incident.json", "ledger.json", "decisions.jsonl", "snapshots.jsonl"} {
		if !b.Has(name) {
			t.Errorf("bundle missing %s (has %v)", name, b.Names())
		}
	}
}

func TestServiceRejectsSimulationFeatures(t *testing.T) {
	base := func(t *testing.T) Config {
		return Config{
			Switch:  testSwitchConfig(t),
			Default: Policy{Rate: 1, Burst: 1, Queue: 1},
		}
	}
	cfg := base(t)
	cfg.Switch.Disturb = true
	if _, err := NewService(cfg); err == nil {
		t.Error("disturb mode accepted")
	}
	cfg = base(t)
	cfg.Default.Queue = 0
	if _, err := NewService(cfg); err == nil {
		t.Error("unbounded/zero queue accepted")
	}
	cfg = base(t)
	cfg.Tenants = map[string]Policy{"bad": {Rate: 1, Burst: 0, Queue: 4}}
	if _, err := NewService(cfg); err == nil {
		t.Error("burst 0 with positive rate accepted")
	}
}

func TestMalformedSubmitKillsSession(t *testing.T) {
	_, addr, _ := startService(t, nil)
	c, err := Dial(addr, "proto")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Out-of-shape input fiber: the server must answer with an error
	// frame and close the session rather than schedule garbage.
	if err := c.Submit([]Req{{ID: 1, In: 99, Wave: 0, Dest: 0, Dur: 1}}); err != nil {
		t.Fatal(err)
	}
	c.SetRecvDeadline(time.Now().Add(10 * time.Second))
	_, err = c.Recv()
	if err == nil || !strings.Contains(err.Error(), "malformed submit") {
		t.Fatalf("err = %v, want server error about malformed submit", err)
	}
}

func TestQoSClassOrdering(t *testing.T) {
	// Two tenants contend for the same output fiber every round; the
	// gold tenant (class 0) must win a disproportionate share. Paced
	// rounds let both queues fill before each round fires.
	s, addr, _ := startService(t, func(cfg *Config) {
		cfg.SlotEvery = 2 * time.Millisecond
		cfg.Tenants = map[string]Policy{
			"gold":   {Class: 0, Rate: 1e6, Burst: 4096, Queue: 512},
			"bronze": {Class: 1, Rate: 1e6, Burst: 4096, Queue: 512},
		}
	})
	_ = s
	run := func(tenant string, in uint32) (*Client, error) {
		return Dial(addr, tenant)
	}
	gold, err := run("gold", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	bronze, err := run("bronze", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer bronze.Close()

	// Same wavelength, same destination: exactly one of the two can win
	// any given slot. Gold must never lose to bronze within a round.
	const rounds = 64
	var wg sync.WaitGroup
	tallies := make([]tally, 2)
	clients := []*Client{gold, bronze}
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *Client) {
			defer wg.Done()
			reqs := make([]Req, 1)
			for i := 0; i < rounds; i++ {
				reqs[0] = Req{ID: uint64(i), In: uint32(ci), Wave: 0, Dest: 0, Dur: 1}
				if err := c.Submit(reqs); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
			c.SetRecvDeadline(time.Now().Add(20 * time.Second))
			for tallies[ci].terminal() < rounds {
				ev, err := c.Recv()
				if err != nil {
					return
				}
				tallies[ci].add(ev.Notices)
			}
		}(ci, c)
	}
	wg.Wait()
	// Both tenants submit on distinct input channels toward one output
	// fiber with k=8 channels: contention is light, but everything must
	// terminate — the QoS property asserted hard here is starvation
	// freedom plus termination; strict intra-round ordering is asserted
	// by the single-threaded round-loop scan order (buildBatchLocked).
	for ci, name := range []string{"gold", "bronze"} {
		if tallies[ci].terminal() != rounds {
			t.Errorf("%s: %d/%d verdicts", name, tallies[ci].terminal(), rounds)
		}
	}
}

func TestLatencyHistogramPopulated(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, addr, _ := startService(t, func(cfg *Config) { cfg.Telemetry = reg })
	c, err := Dial(addr, "lat")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reqs := make([]Req, 8)
	for i := range reqs {
		reqs[i] = Req{ID: uint64(i), In: uint32(i % testN), Wave: uint16(i % testK), Dest: 0, Dur: 1}
	}
	if err := c.Submit(reqs); err != nil {
		t.Fatal(err)
	}
	var ta tally
	recvUntil(t, c, &ta, len(reqs))
	if n := s.latency.Count(); n != int64(len(reqs)) {
		t.Fatalf("latency histogram has %d observations, want %d", n, len(reqs))
	}
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "wdm_grant_latency_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatal("wdm_grant_latency_seconds not registered")
	}
	_ = byeLedger(t, c)
}

func TestRequestDumpWritesBundleMidRun(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "serve.tgz")
	s, addr, _ := startService(t, func(cfg *Config) { cfg.BundlePath = bundle })
	c, err := Dial(addr, "dumper")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Submit([]Req{{ID: 1, In: 0, Wave: 0, Dest: 0, Dur: 1}}); err != nil {
		t.Fatal(err)
	}
	var ta tally
	recvUntil(t, c, &ta, 1)
	s.RequestDump()
	want := filepath.Join(dir, fmt.Sprintf("serve-sigquit-%d", 0))
	_ = want
	deadline := time.Now().Add(10 * time.Second)
	var found string
	for time.Now().Before(deadline) {
		matches, _ := filepath.Glob(filepath.Join(dir, "serve-sigquit-*.tgz"))
		if len(matches) > 0 {
			found = matches[0]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if found == "" {
		t.Fatal("requested bundle never appeared")
	}
	b, err := telemetry.ReadBundleFile(found)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Has("ledger.json") {
		t.Fatalf("requested bundle missing ledger.json: %v", b.Names())
	}
	_ = byeLedger(t, c)
}
