package grant

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"wdmsched/internal/interconnect"
	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
)

// Meta is the JSON-friendly description of a service run, embedded in
// incident reports and bundles (the grant-service twin of soak.Config).
// The command fills the shape/engine fields; the service fills the rest.
type Meta struct {
	N         int               `json:"n"`
	K         int               `json:"k"`
	Kind      string            `json:"kind,omitempty"`
	D         int               `json:"d,omitempty"`
	Scheduler string            `json:"scheduler,omitempty"`
	Selector  string            `json:"selector,omitempty"`
	Seed      uint64            `json:"seed"`
	Engine    string            `json:"engine,omitempty"`
	Classes   int               `json:"classes,omitempty"`
	SlotEvery string            `json:"slot_every,omitempty"`
	Resync    int64             `json:"resync"`
	Default   Policy            `json:"default_policy"`
	Tenants   map[string]Policy `json:"tenants,omitempty"`
}

// Incident is one invariant violation: the service's forensic record,
// written as the JSON report and embedded in the incident bundle.
type Incident struct {
	Invariant string `json:"invariant"`
	Slot      int64  `json:"slot"`
	Detail    string `json:"detail"`
	Wall      string `json:"wall_clock"`
	Config    Meta   `json:"config"`
}

// Config configures a Service.
type Config struct {
	// Switch is the engine configuration. The service owns the switch
	// lifecycle and the Recorder/Telemetry/Trace fields: they must be
	// left nil (the service attaches its own flight recorder, and
	// registers engine statistics on Telemetry below). Disturb, Faults
	// and PriorityClasses-with-preemption are simulation features and
	// are rejected — the grant ledger must partition exactly into
	// granted + rejected.
	Switch interconnect.Config
	// Default is the admission policy for tenants not listed in Tenants.
	Default Policy
	// Tenants maps tenant names to per-tenant policy overrides.
	Tenants map[string]Policy
	// SlotEvery paces scheduling rounds in wall time; 0 runs eagerly (a
	// round whenever requests are queued — virtual slot time).
	SlotEvery time.Duration
	// Resync is the invariant-check cadence in slots (default 1024):
	// every Resync slots the grant ledger is reconciled against an
	// engine Snapshot.
	Resync int64
	// Telemetry, when non-nil, receives the engine's wdm_* series and
	// the service's wdm_grant_* series.
	Telemetry *telemetry.Registry
	// BundlePath is where the incident bundle is dumped on an invariant
	// violation; "" disables bundle dumps.
	BundlePath string
	// Report is where the incident JSON report is written on a
	// violation; "" disables it.
	Report string
	// Tool is the producing-tool name stamped into bundles (default
	// "wdmserve").
	Tool string
	// Meta carries the run description for incidents; shape fields are
	// filled in by the service if left zero.
	Meta Meta
	// Stderr receives diagnostics (default io.Discard).
	Stderr io.Writer
	// MaxSessions caps concurrent client sessions (default 1024).
	MaxSessions int
	// EgressBuffer caps the per-session outbound frame buffer in bytes
	// (default 16 MiB). A client that submits without reading verdicts
	// fills its buffer and is disconnected — the buffering contract is
	// bounded on the way out just like the ingress queues are on the way
	// in, and a slow reader can never stall the round loop.
	EgressBuffer int
}

// request is one admitted connection request waiting for a scheduling
// round. Stored by value in the tenant's preallocated ring so admission
// does not allocate. The three stage stamps carry the request's early
// lifecycle (frame receipt, decode/lock wait, admission slice) into the
// round loop, where settle turns them into the per-stage waterfall.
type request struct {
	id      uint64
	sess    *session
	in      int32
	wave    int32
	dest    int32
	dur     int32
	class   uint8
	recvNS  int64 // receipt stamp on the telemetry span clock
	ingNS   int64 // ingest-stage duration: receipt → admission loop start
	admNS   int64 // admission-stage duration: this request's slice of the loop
	admitNS int64 // admission-done stamp, the queue-wait baseline
}

// stageRec is one settled request's stage waterfall, buffered on the
// session alongside the verdict Notice until flushRound can stamp the
// egress stage and observe all six.
type stageRec struct {
	start int64 // receipt stamp (recvNS)
	class uint8
	w     telemetry.StageDurations
}

// tenant is one admission domain: a policy, a token bucket and a
// bounded FIFO ingress queue. All fields are guarded by Service.mu
// except depth, which is an atomic twin of len(q) for telemetry.
type tenant struct {
	name   string
	pol    Policy
	bucket bucket
	q      []request // bounded FIFO; cap == pol.Queue, never grows
	depth  metrics.Gauge
}

// session is one client connection. The ingest goroutine reads frames;
// outbound frames (verdicts from both the ingest path and the round
// loop, drain notices, the final ledger) are appended to the bounded
// egress buffer under wmu and flushed to the socket by a dedicated
// writer goroutine. Producers never block on the socket: a client that
// stops reading fills its egress buffer and is disconnected instead of
// stalling the round loop or Drain.
type session struct {
	tr     *transport
	tenant *tenant

	wmu       sync.Mutex
	wcond     *sync.Cond // wakes the writer: egress bytes queued or state change
	enc       []byte     // reused frame-payload encode buffer (under wmu)
	out       []byte     // encoded frames awaiting the writer (under wmu)
	outN      int64      // frames in out, for the tx telemetry (under wmu)
	egressMax int        // out bound in bytes; Config.EgressBuffer
	werr      error      // first egress failure: overflow or write error (wmu)
	// closing marks the final frame enqueued: the writer flushes out,
	// half-closes the connection and exits. Set under wmu.
	closing bool
	wdone   chan struct{} // closed when the writer goroutine exits

	iv        []Notice   // ingest-side immediate verdicts (ingest goroutine only)
	pend      []Notice   // round-loop verdicts for this round (round loop only)
	pendStage []stageRec // stage waterfalls, parallel to pend (round loop only)

	inRound     bool // round loop's touched-set membership (round loop only)
	dead        bool // write failed or reader exited; guarded by Service.mu
	deadAtFlush bool // dead as of this round's ledger fold (round loop only)
	finished    bool // final ledger sent; reader now only drains (Service.mu)

	// Session ledger. Every field is updated under Service.mu: the
	// ingest side books submissions and immediate verdicts inline; the
	// round loop books grants/rejects in flushRound's locked section.
	ledger Ledger
}

// Service is the grant server: it owns one switch engine, accepts
// client sessions, batches admitted requests into slot rounds and
// streams verdicts back.
type Service struct {
	cfg Config
	k   int
	sw  *interconnect.Switch
	rec *telemetry.FlightRecorder

	ln     net.Listener
	start  time.Time
	closed chan struct{} // closed exactly once when Serve winds down

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenant
	order    []*tenant // sorted by (class, arrival); rebuilt on new tenant
	sessions map[*session]struct{}
	draining bool
	stopping bool
	wantDump bool  // asynchronous bundle-dump request (SIGQUIT)
	queued   int64 // total requests across all tenant queues

	// Service-side ledger. submitted/admitted/retried/rejAdmission are
	// ingest-side (under mu); dispatched/granted/rejContention are owned
	// by the round loop.
	submitted     int64
	admitted      int64
	retried       int64
	rejAdmission  int64
	dispatched    int64
	granted       int64
	rejContention int64

	// Round loop state (round-loop goroutine only).
	slot      int64
	tBatch    int64   // batch-build start stamp for the current round
	tEng0     int64   // engine handoff stamp (RunSlot entry)
	tEng1     int64   // engine return stamp (RunSlot exit)
	rr        int     // per-round rotation cursor for intra-class fairness
	holds     []int32 // input-channel hold mirror, N*k
	holdsLive int
	chUsed    []int64    // round stamp per input channel: chUsed[ch] == slot+1 → taken
	pendReq   []request  // dispatched request per input channel for this round
	pendLive  []int32    // channels dispatched this round
	touched   []*session // sessions with verdicts pending this round
	batch     []traffic.Packet
	grants    []interconnect.SlotGrant
	perInput  []int64 // grants per input fiber, the Snapshot.PerInput mirror
	snap      interconnect.Snapshot

	// Telemetry.
	latency                                *metrics.DurationHistogram
	stages                                 [telemetry.NumGrantStages]*metrics.DurationHistogram
	verdicts                               [8]metrics.Counter // indexed by Verdict
	rounds                                 metrics.Counter
	sessionsGauge                          metrics.Gauge
	bytesIn, bytesOut, framesIn, framesOut metrics.Counter

	incident *Incident
}

// NewService validates cfg, builds the switch engine (attaching a
// flight recorder) and returns a service ready to Serve.
func NewService(cfg Config) (*Service, error) {
	if cfg.Switch.Disturb {
		return nil, errors.New("grant: disturb mode is a simulation feature; the grant ledger requires stable grants")
	}
	if cfg.Switch.Faults != nil {
		return nil, errors.New("grant: fault injection is not supported in the grant service (ledger must partition exactly)")
	}
	if cfg.Switch.Recorder != nil || cfg.Switch.Trace != nil {
		return nil, errors.New("grant: Switch.Recorder/Trace are owned by the service; leave them nil")
	}
	if err := cfg.Default.validate(); err != nil {
		return nil, fmt.Errorf("default policy: %w", err)
	}
	for name, pol := range cfg.Tenants {
		if err := pol.validate(); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	if cfg.Resync <= 0 {
		cfg.Resync = 1024
	}
	if cfg.Tool == "" {
		cfg.Tool = "wdmserve"
	}
	if cfg.Stderr == nil {
		cfg.Stderr = io.Discard
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.EgressBuffer <= 0 {
		cfg.EgressBuffer = defaultEgressBuffer
	}

	k := cfg.Switch.Conv.K()
	n := cfg.Switch.N
	rec := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
		Ports:          n,
		SnapshotEvery:  cfg.Resync,
		ExemplarWindow: cfg.Resync,
	})
	cfg.Switch.Recorder = rec
	cfg.Switch.Telemetry = cfg.Telemetry
	sw, err := interconnect.New(cfg.Switch)
	if err != nil {
		return nil, err
	}

	s := &Service{
		cfg:      cfg,
		k:        k,
		sw:       sw,
		rec:      rec,
		closed:   make(chan struct{}),
		tenants:  map[string]*tenant{},
		sessions: map[*session]struct{}{},
		holds:    make([]int32, n*k),
		chUsed:   make([]int64, n*k),
		pendReq:  make([]request, n*k),
		pendLive: make([]int32, 0, n*k),
		batch:    make([]traffic.Packet, 0, n*k),
		grants:   make([]interconnect.SlotGrant, 0, n*k),
		perInput: make([]int64, n),
		latency:  metrics.NewDurationHistogram(),
	}
	for st := range s.stages {
		s.stages[st] = metrics.NewDurationHistogram()
	}
	s.cond = sync.NewCond(&s.mu)

	// Fill the incident metadata the service can derive itself.
	if s.cfg.Meta.N == 0 {
		s.cfg.Meta.N = n
	}
	if s.cfg.Meta.K == 0 {
		s.cfg.Meta.K = k
	}
	s.cfg.Meta.Seed = cfg.Switch.Seed
	s.cfg.Meta.Resync = cfg.Resync
	s.cfg.Meta.Default = cfg.Default
	if len(cfg.Tenants) > 0 {
		s.cfg.Meta.Tenants = cfg.Tenants
	}
	if cfg.SlotEvery > 0 {
		s.cfg.Meta.SlotEvery = cfg.SlotEvery.String()
	}

	if reg := cfg.Telemetry; reg != nil {
		// The switch registers its own wdm_* series (including the
		// recorder's health counters) when built with cfg.Switch.Telemetry
		// set; only the grant-layer series are registered here.
		reg.DurationHistogram("wdm_grant_latency_seconds",
			"End-to-end grant latency: request receipt to verdict emission.", nil, s.latency)
		for st := range s.stages {
			reg.DurationHistogram("wdm_grant_stage_seconds",
				"Per-stage grant-path latency; every round-settled request is observed into each stage exactly once.",
				[]telemetry.Label{{Key: "stage", Value: telemetry.GrantStageNames[st]}}, s.stages[st])
		}
		reg.Counter("wdm_grant_rounds_total", "Scheduling rounds (slots) run by the grant service.", nil, &s.rounds)
		reg.CounterFunc("wdm_grant_submitted_total", "Requests submitted on the grant wire.", nil,
			func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.submitted })
		reg.CounterFunc("wdm_grant_admitted_total", "Requests admitted into tenant ingress queues.", nil,
			func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.admitted })
		reg.Gauge("wdm_grant_sessions", "Connected client sessions.", nil, &s.sessionsGauge)
		reg.Counter("wdm_grant_rx_bytes_total", "Bytes received on the grant wire.", nil, &s.bytesIn)
		reg.Counter("wdm_grant_tx_bytes_total", "Bytes sent on the grant wire.", nil, &s.bytesOut)
		reg.Counter("wdm_grant_rx_frames_total", "Frames received on the grant wire.", nil, &s.framesIn)
		reg.Counter("wdm_grant_tx_frames_total", "Frames sent on the grant wire.", nil, &s.framesOut)
		for _, v := range []Verdict{VerdictGranted, VerdictRejected, VerdictRejectedAdmission,
			VerdictRetryBucket, VerdictRetryQueue, VerdictRetryDrain} {
			reg.Counter("wdm_grant_verdicts_total", "Request verdicts by disposition.",
				[]telemetry.Label{{Key: "verdict", Value: v.String()}}, &s.verdicts[v])
		}
		telemetry.RegisterSLO(reg, "grant", s.latency, 10*time.Millisecond, 0.99)
	}
	return s, nil
}

// Recorder exposes the service's flight recorder (for SIGQUIT dump
// requests and tests).
func (s *Service) Recorder() *telemetry.FlightRecorder { return s.rec }

// Ledger returns the service-wide ledger. Safe to call concurrently;
// the round-loop counters are read at whatever round boundary last
// completed (they are folded in under the service mutex in flushRound).
func (s *Service) Ledger() Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledgerLocked()
}

func (s *Service) ledgerLocked() Ledger {
	return Ledger{
		Submitted: uint64(s.submitted),
		Admitted:  uint64(s.admitted),
		Granted:   uint64(s.granted),
		Rejected:  uint64(s.rejContention + s.rejAdmission),
		Retried:   uint64(s.retried),
	}
}

// Slots returns the rounds run so far.
func (s *Service) Slots() int64 { return s.rounds.Value() }

// Draining reports whether the service has stopped admitting — either a
// graceful Drain has begun or the service is stopping. The /readyz
// probe keys off this so load balancers route away before the listener
// goes down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.stopping
}

// Incident returns the invariant violation that stopped the service, or
// nil after a clean run.
func (s *Service) Incident() *Incident { return s.incident }

// Drain begins a graceful drain: stop admitting (new submissions get
// RETRY-AFTER drain verdicts), flush everything already queued through
// scheduling rounds, send every session its final ledger, and return
// from Serve. Idempotent and safe from a signal handler.
func (s *Service) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.wmu.Lock()
		sess.enc = putString(sess.enc[:0], "draining: server stopped admitting; queued requests will still be answered")
		err := sess.enqueueLocked(msgDrain, sess.enc)
		sess.wmu.Unlock()
		if err != nil {
			s.killSession(sess)
		}
	}
}

// Serve accepts sessions on ln and runs scheduling rounds until Drain
// completes (returns nil) or an invariant violation stops the service
// (returns the violation). It blocks; callers drive Drain from a signal
// handler or another goroutine.
func (s *Service) Serve(ln net.Listener) error {
	s.ln = ln
	s.start = time.Now()
	go s.acceptLoop(ln)
	err := s.roundLoop()
	close(s.closed)
	ln.Close()
	s.finishSessions(err == nil)
	// Finalize merges engine counters and joins worker pools; the final
	// Snapshot was already reconciled by the round loop.
	s.sw.Finalize()
	return err
}

func (s *Service) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
			default:
				fmt.Fprintf(s.cfg.Stderr, "%s: accept: %v\n", s.cfg.Tool, err)
			}
			return
		}
		go s.serveSession(c)
	}
}

// serveSession runs one client connection: handshake, then the ingest
// loop. It owns all reads; writes go through sess.write.
func (s *Service) serveSession(c net.Conn) {
	tr := newTransport(c)
	tr.bytesIn, tr.bytesOut = &s.bytesIn, &s.bytesOut
	tr.framesIn, tr.framesOut = &s.framesIn, &s.framesOut
	sess := &session{tr: tr, egressMax: s.cfg.EgressBuffer}
	sess.wcond = sync.NewCond(&sess.wmu)

	mt, payload, err := tr.recv()
	if err != nil {
		tr.close()
		return
	}
	if mt != msgHello {
		s.sessionError(sess, fmt.Sprintf("first frame must be hello, got %v", mt))
		tr.close()
		return
	}
	r := reader{b: payload}
	nonce := r.u64()
	name := r.str()
	if r.Err() != nil || name == "" {
		s.sessionError(sess, "malformed hello")
		tr.close()
		return
	}

	s.mu.Lock()
	if s.draining || s.stopping {
		s.mu.Unlock()
		s.sessionError(sess, "server is draining")
		tr.close()
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.sessionError(sess, "session limit reached")
		tr.close()
		return
	}
	t := s.tenantLocked(name)
	sess.tenant = t
	s.sessions[sess] = struct{}{}
	s.sessionsGauge.Set(float64(len(s.sessions)))
	s.mu.Unlock()

	sess.wmu.Lock()
	sess.enc = encHelloAck(sess.enc[:0], nonce, s.cfg.Switch.N, s.k, t.pol)
	err = tr.send(msgHelloAck, sess.enc)
	if err == nil {
		// From here on every outbound frame goes through the egress
		// buffer; the writer goroutine owns the socket's write side.
		sess.wdone = make(chan struct{})
		go s.sessionWriter(sess)
	}
	sess.wmu.Unlock()
	if err != nil {
		s.killSession(sess)
		return
	}

	for {
		mt, payload, err := tr.recv()
		if err != nil {
			s.killSession(sess)
			return
		}
		// Frame-receipt stamp: the ingest stage starts here, before any
		// lock waits or decode work.
		recvNS := telemetry.NowNS()
		s.mu.Lock()
		fin := sess.finished
		s.mu.Unlock()
		if fin {
			// The final ledger is out and the write side is half-closed:
			// discard whatever the client still had in flight. The read
			// deadline set by finishSessions bounds this drain.
			continue
		}
		switch mt {
		case msgSubmit:
			ok, werr := s.ingestFrame(sess, payload, recvNS)
			if !ok {
				s.sessionError(sess, "malformed submit")
				s.finishSession(sess)
				return
			}
			if werr != nil {
				s.killSession(sess)
				return
			}
		case msgBye:
			// The client promises it has collected every verdict; echo
			// the session ledger, flush and close.
			s.mu.Lock()
			l := sess.ledger
			s.mu.Unlock()
			sess.wmu.Lock()
			sess.enc = encLedger(sess.enc[:0], l)
			if sess.enqueueLocked(msgLedger, sess.enc) == nil {
				sess.closing = true
				sess.wcond.Signal()
			}
			sess.wmu.Unlock()
			s.finishSession(sess)
			return
		default:
			s.sessionError(sess, fmt.Sprintf("unexpected frame %v", mt))
			s.finishSession(sess)
			return
		}
	}
}

// tenantLocked finds or creates a tenant. Caller holds s.mu.
func (s *Service) tenantLocked(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	pol, ok := s.cfg.Tenants[name]
	if !ok {
		pol = s.cfg.Default
	}
	t := &tenant{
		name:   name,
		pol:    pol,
		bucket: newBucket(pol.Rate, pol.Burst),
		q:      make([]request, 0, pol.Queue),
	}
	s.tenants[name] = t
	s.order = append(s.order, t)
	sort.SliceStable(s.order, func(i, j int) bool { return s.order[i].pol.Class < s.order[j].pol.Class })
	if reg := s.cfg.Telemetry; reg != nil {
		reg.Gauge("wdm_grant_queue_depth", "Queued requests per tenant.",
			[]telemetry.Label{{Key: "tenant", Value: name}}, &t.depth)
	}
	return t
}

// ingest decodes one submit frame and runs admission for each request:
// admitted requests enter the tenant queue; everything else gets an
// immediate verdict appended to sess.iv. Returns false on a malformed
// frame. This is the wire-facing hot path: steady-state it allocates
// nothing (bounded queue, reused verdict buffer).
func (s *Service) ingest(sess *session, payload []byte, recvNS int64) bool {
	r := reader{b: payload}
	count := int(r.u32())
	if r.Err() != nil || count < 0 || count > maxBatch || r.Rem() != count*submitItemLen {
		return false
	}
	n, k := s.cfg.Switch.N, s.k
	t := sess.tenant
	sess.iv = sess.iv[:0]
	enqueued := 0

	s.mu.Lock()
	if sess.finished {
		// Final ledger already sent (drain completed between the client
		// writing this frame and us reading it): discard without booking,
		// so the ledger frame stays the session's last word.
		s.mu.Unlock()
		return true
	}
	// Stage clock: everything between frame receipt and here — header
	// decode, the session write lock, the service lock wait — is the
	// frame's ingest stage. The admission loop below is then partitioned
	// across its requests by chained stamps, so the per-request admission
	// durations sum to the loop's wall time.
	admStart := telemetry.NowNS()
	ingNS := admStart - recvNS
	if ingNS < 0 {
		ingNS = 0
	}
	prev := admStart
	for i := 0; i < count; i++ {
		id := r.u64()
		in := int32(r.u32())
		wave := int32(r.u16())
		dest := int32(r.u32())
		dur := int32(r.u16())
		if int(in) >= n || int(dest) >= n || int(wave) >= k || dur < 1 {
			s.mu.Unlock()
			return false
		}
		s.submitted++
		sess.ledger.Submitted++
		verdict, wait := s.admitLocked(t, prev)
		admitNS := telemetry.NowNS()
		admNS := admitNS - prev
		if admNS < 0 {
			admNS = 0
		}
		prev = admitNS
		if verdict == 0 {
			t.q = append(t.q, request{
				id: id, sess: sess, in: in, wave: wave, dest: dest, dur: dur,
				class: uint8(t.pol.Class), recvNS: recvNS,
				ingNS: ingNS, admNS: admNS, admitNS: admitNS,
			})
			t.depth.Set(float64(len(t.q)))
			s.admitted++
			sess.ledger.Admitted++
			s.queued++
			enqueued++
			continue
		}
		if verdict == VerdictRejectedAdmission {
			s.rejAdmission++
			sess.ledger.Rejected++
		} else {
			s.retried++
			sess.ledger.Retried++
		}
		s.verdicts[verdict].Inc()
		sess.iv = append(sess.iv, Notice{ID: id, Verdict: verdict, Slot: -1, Channel: -1, WaitMS: wait})
	}
	if enqueued > 0 && s.cfg.SlotEvery == 0 {
		s.cond.Signal()
	}
	s.mu.Unlock()
	if len(sess.iv) > 0 {
		s.latencyBatch(sess.iv, recvNS)
	}
	return true
}

// admitLocked runs one request through admission control. It returns
// verdict 0 when the request should be queued, or the immediate verdict
// plus RETRY-AFTER hint. Caller holds s.mu.
func (s *Service) admitLocked(t *tenant, nowNS int64) (Verdict, uint32) {
	if s.draining || s.stopping {
		return VerdictRetryDrain, drainRetryMS
	}
	if t.pol.Rate == 0 {
		return VerdictRejectedAdmission, 0
	}
	if ok, wait := t.bucket.take(nowNS); !ok {
		return VerdictRetryBucket, wait
	}
	if len(t.q) >= t.pol.Queue {
		// Backpressure: the queue bound is the buffering contract. The
		// hint is the time the backlog needs to drain at the admitted
		// rate — monotone in the backlog, so well-behaved clients back
		// off harder the fuller the queue. The spent token is returned:
		// the request was not admitted.
		t.bucket.tokens++
		return VerdictRetryQueue, retryAfterMS(float64(len(t.q)), t.pol.Rate)
	}
	return 0, 0
}

// drainRetryMS is the RETRY-AFTER hint handed to submissions that race a
// drain: long enough that a well-behaved client redirects elsewhere.
const drainRetryMS = 5000

// latencyBatch observes verdict-emission latency for a batch of notices
// stamped at now.
func (s *Service) latencyBatch(notices []Notice, recvNS int64) {
	d := time.Duration(telemetry.NowNS() - recvNS)
	if d < 0 {
		d = 0
	}
	for range notices {
		s.latency.Observe(d)
	}
}

// ingestFrame runs one submit frame — admission booking plus the
// immediate-verdict enqueue — entirely under the session write lock.
// That makes the frame atomic with respect to finishSessions'
// final-ledger enqueue: the ledger either includes this frame's requests
// and follows their verdicts in the egress buffer, or excludes them and
// the frame is discarded; the ledger frame is always the session's last.
func (s *Service) ingestFrame(sess *session, payload []byte, recvNS int64) (ok bool, werr error) {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if !s.ingest(sess, payload, recvNS) {
		return false, nil
	}
	if len(sess.iv) == 0 {
		return true, nil
	}
	return true, s.writeVerdictsLocked(sess, sess.iv)
}

// writeVerdicts encodes and enqueues one verdicts frame under the
// session write lock.
func (s *Service) writeVerdicts(sess *session, notices []Notice) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	return s.writeVerdictsLocked(sess, notices)
}

// writeVerdictsLocked is writeVerdicts with sess.wmu already held.
func (s *Service) writeVerdictsLocked(sess *session, notices []Notice) error {
	b := putU32(sess.enc[:0], uint32(len(notices)))
	for _, nt := range notices {
		b = putU64(b, nt.ID)
		b = append(b, byte(nt.Verdict))
		b = putI64(b, nt.Slot)
		b = putI16(b, nt.Channel)
		b = putU32(b, nt.WaitMS)
	}
	sess.enc = b
	return sess.enqueueLocked(msgVerdicts, b)
}

// defaultEgressBuffer bounds a session's outbound frame backlog: verdicts
// for a client that has stopped reading accumulate here (never in a
// blocked goroutine) until the bound trips and the session is killed.
const defaultEgressBuffer = 16 << 20

// sessionWriteTimeout bounds any single socket write by the session
// writer. A connection that accepts no bytes for this long is as good as
// gone; the writer kills the session rather than linger.
const sessionWriteTimeout = 10 * time.Second

var errEgressOverflow = errors.New("grant: egress buffer overflow (client is not reading verdicts)")
var errSessionClosing = errors.New("grant: session closing")

// enqueueLocked appends one encoded frame to the session's egress buffer
// and wakes the writer. Caller holds sess.wmu. It never blocks: a buffer
// past the bound fails the session instead, so no producer — ingest,
// round loop or Drain — can be stalled by a slow client.
func (sess *session) enqueueLocked(mt msgType, payload []byte) error {
	if sess.werr != nil {
		return sess.werr
	}
	if sess.closing {
		return errSessionClosing
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("grant: payload %d exceeds limit", len(payload))
	}
	sess.out = appendFrame(sess.out, mt, payload)
	sess.outN++
	if len(sess.out) > sess.egressMax {
		sess.werr = errEgressOverflow
	}
	sess.wcond.Signal()
	return sess.werr
}

// sessionWriter owns the socket's write side for one session: it swaps
// the egress buffer out under wmu and flushes it outside any lock, so a
// blocked write never holds wmu. On the closing flag it flushes the
// final (ledger) frame, half-closes the connection — a full close would
// RST away a racing submit frame and destroy the client's unread ledger
// — bounds the reader's drain with a deadline, and exits.
func (s *Service) sessionWriter(sess *session) {
	defer close(sess.wdone)
	var buf []byte
	for {
		sess.wmu.Lock()
		for len(sess.out) == 0 && sess.werr == nil && !sess.closing {
			sess.wcond.Wait()
		}
		if sess.werr != nil {
			sess.wmu.Unlock()
			sess.tr.close()
			return
		}
		closing := sess.closing
		frames := sess.outN
		sess.outN = 0
		buf, sess.out = sess.out, buf[:0]
		sess.wmu.Unlock()

		if len(buf) > 0 {
			sess.tr.setWriteDeadline(time.Now().Add(sessionWriteTimeout))
			if _, err := sess.tr.c.Write(buf); err != nil {
				sess.wmu.Lock()
				if sess.werr == nil {
					sess.werr = err
				}
				sess.wmu.Unlock()
				sess.tr.close()
				return
			}
			if sess.tr.bytesOut != nil {
				sess.tr.bytesOut.Add(int64(len(buf)))
			}
			if sess.tr.framesOut != nil {
				sess.tr.framesOut.Add(frames)
			}
		}
		if closing {
			if sess.tr.closeWrite() != nil {
				sess.tr.close()
			} else {
				sess.tr.setReadDeadline(time.Now().Add(2 * time.Second))
			}
			return
		}
	}
}

// sessionError sends a best-effort error frame. Before the session's
// writer starts (handshake failures) the frame is written directly — the
// handshake goroutine is the only writer then; afterwards it is enqueued
// as the session's final frame and flushed by the writer on its way out.
func (s *Service) sessionError(sess *session, msg string) {
	sess.wmu.Lock()
	sess.enc = putString(sess.enc[:0], msg)
	if sess.wdone == nil {
		sess.tr.send(msgError, sess.enc)
	} else if sess.enqueueLocked(msgError, sess.enc) == nil {
		sess.closing = true
		sess.wcond.Signal()
	}
	sess.wmu.Unlock()
}

// finishSession waits for the session writer to flush its final frame
// and exit (bounded by the write timeout), then closes the connection.
func (s *Service) finishSession(sess *session) {
	if sess.wdone != nil {
		<-sess.wdone
	}
	s.killSession(sess)
}

// killSession removes the session, closes its connection and fails its
// writer. Queued requests from the session still schedule; their
// verdicts are dropped.
func (s *Service) killSession(sess *session) {
	s.mu.Lock()
	if !sess.dead {
		sess.dead = true
		delete(s.sessions, sess)
		s.sessionsGauge.Set(float64(len(s.sessions)))
	}
	s.mu.Unlock()
	sess.tr.close()
	sess.wmu.Lock()
	if sess.werr == nil {
		sess.werr = net.ErrClosed
	}
	sess.wcond.Signal()
	sess.wmu.Unlock()
}

// roundLoop is the scheduling heart: build a batch (strict priority by
// class, FIFO per tenant, at most one request per input channel), run
// one engine slot, match grants back to requests, emit verdicts, and
// reconcile the ledger every Resync slots.
func (s *Service) roundLoop() error {
	for {
		s.mu.Lock()
		if s.cfg.SlotEvery == 0 {
			for !s.draining && !s.stopping && !s.wantDump && s.queued == 0 {
				s.cond.Wait()
			}
		}
		if s.stopping {
			s.mu.Unlock()
			return nil
		}
		if s.wantDump {
			s.wantDump = false
			s.mu.Unlock()
			s.dumpAsync()
			continue
		}
		if s.draining && s.queued == 0 {
			err := s.reconcile()
			s.mu.Unlock()
			return err
		}
		s.buildBatchLocked()
		s.mu.Unlock()

		if err := s.runRound(); err != nil {
			return err
		}

		if s.cfg.SlotEvery > 0 {
			time.Sleep(s.cfg.SlotEvery)
		}
	}
}

// Close stops the service without draining: in-flight requests are
// abandoned. Intended for tests and hard shutdown paths.
func (s *Service) Close() {
	s.mu.Lock()
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
}

// buildBatchLocked drains dispatchable requests out of the tenant
// queues into s.batch. Strict priority: tenants are scanned in class
// order (s.order is class-sorted); within a class the start tenant
// rotates per round. Per tenant, FIFO order with head-of-line skip: a
// request whose input channel is held or already taken this round stays
// queued without blocking the requests behind it. Caller holds s.mu.
func (s *Service) buildBatchLocked() {
	s.tBatch = telemetry.NowNS() // queue-wait ends / round-batch begins here
	k := s.k
	s.batch = s.batch[:0]
	s.pendLive = s.pendLive[:0]
	stamp := s.slot + 1 // chUsed entries from earlier rounds are stale
	s.rr++

	for lo := 0; lo < len(s.order); {
		hi := lo + 1
		for hi < len(s.order) && s.order[hi].pol.Class == s.order[lo].pol.Class {
			hi++
		}
		seg := hi - lo
		for i := 0; i < seg; i++ {
			t := s.order[lo+(i+s.rr)%seg]
			if len(t.q) == 0 {
				continue
			}
			kept := t.q[:0]
			for _, req := range t.q {
				ch := req.in*int32(k) + req.wave
				if s.holds[ch] > 0 || s.chUsed[ch] == stamp {
					kept = append(kept, req)
					continue
				}
				s.chUsed[ch] = stamp
				s.pendReq[ch] = req
				s.pendLive = append(s.pendLive, ch)
				prio := 0
				if s.cfg.Switch.PriorityClasses > 1 {
					prio = int(req.class)
					if prio >= s.cfg.Switch.PriorityClasses {
						prio = s.cfg.Switch.PriorityClasses - 1
					}
				}
				s.batch = append(s.batch, traffic.Packet{
					InputFiber: int(req.in), Wavelength: int(req.wave),
					DestFiber: int(req.dest), Duration: int(req.dur),
					Slot: int(s.slot), Priority: prio,
				})
			}
			s.queued -= int64(len(t.q) - len(kept))
			t.q = kept
			t.depth.Set(float64(len(t.q)))
		}
		lo = hi
	}
	s.dispatched += int64(len(s.batch))
}

// runRound runs one engine slot over the built batch and settles every
// dispatched request as granted or rejected.
func (s *Service) runRound() error {
	s.tEng0 = telemetry.NowNS()
	if err := s.sw.RunSlot(s.batch); err != nil {
		return s.violation("engine", fmt.Sprintf("RunSlot: %v", err))
	}
	s.tEng1 = telemetry.NowNS()
	s.slot++
	s.rounds.Inc()

	// Age the hold mirror exactly like the engine ages inputHold: one
	// decrement sweep, then the new grants record duration-1.
	if s.holdsLive > 0 {
		for ch := range s.holds {
			if s.holds[ch] > 0 {
				s.holds[ch]--
				if s.holds[ch] == 0 {
					s.holdsLive--
				}
			}
		}
	}

	now := s.tEng1
	var granted, rejected int64
	s.grants = s.sw.LastGrants(s.grants[:0])
	for _, g := range s.grants {
		ch := int32(g.InputFiber*s.k + g.Wavelength)
		req := s.pendReq[ch]
		s.pendReq[ch].sess = nil    // drop the reference; the slot settles below
		if s.chUsed[ch] != s.slot { // stamp was slot+1 pre-increment
			return s.violation("ledger", fmt.Sprintf(
				"engine granted channel (%d,λ%d) that was not dispatched this round", g.InputFiber, g.Wavelength))
		}
		s.chUsed[ch] = 0
		if g.Duration > 1 {
			if s.holds[ch] == 0 {
				s.holdsLive++
			}
			s.holds[ch] = int32(g.Duration - 1)
		}
		granted++
		s.perInput[g.InputFiber]++
		s.settle(req, Notice{
			ID: req.id, Verdict: VerdictGranted, Slot: s.slot - 1,
			Channel: int16(g.Channel),
		}, now)
	}
	// Everything dispatched but not granted lost the output contention.
	for _, ch := range s.pendLive {
		if s.chUsed[ch] != s.slot {
			continue // granted above
		}
		s.chUsed[ch] = 0
		req := s.pendReq[ch]
		s.pendReq[ch].sess = nil
		rejected++
		s.settle(req, Notice{
			ID: req.id, Verdict: VerdictRejected, Slot: s.slot - 1, Channel: -1,
		}, now)
	}
	s.flushRound(granted, rejected)
	if s.slot%s.cfg.Resync == 0 {
		s.mu.Lock()
		err := s.reconcile()
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// settle books one terminal verdict for a dispatched request onto its
// session's round buffer, along with the stage waterfall computed from
// the request's stamps and the round's batch/engine stamps. The egress
// stage is stamped later, in flushRound. Ledger folding happens in
// flushRound too.
func (s *Service) settle(req request, nt Notice, nowNS int64) {
	s.verdicts[nt.Verdict].Inc()
	d := time.Duration(nowNS - req.recvNS)
	if d < 0 {
		d = 0
	}
	s.latency.Observe(d)
	rec := stageRec{start: req.recvNS, class: req.class}
	rec.w[telemetry.StageIngest] = req.ingNS
	rec.w[telemetry.StageAdmission] = req.admNS
	rec.w[telemetry.StageQueueWait] = nonneg(s.tBatch - req.admitNS)
	rec.w[telemetry.StageRoundBatch] = nonneg(s.tEng0 - s.tBatch)
	rec.w[telemetry.StageEngineSchedule] = nonneg(s.tEng1 - s.tEng0)
	sess := req.sess
	if !sess.inRound {
		sess.inRound = true
		s.touched = append(s.touched, sess)
	}
	sess.pend = append(sess.pend, nt)
	sess.pendStage = append(sess.pendStage, rec)
}

// nonneg clamps clock skew between stamps to zero.
func nonneg(ns int64) int64 {
	if ns < 0 {
		return 0
	}
	return ns
}

// flushRound folds the round's tallies into the service and session
// ledgers under the mutex, then writes every touched session's verdicts
// frame outside it. After each session's frame lands in its egress
// buffer the egress stage is stamped and the full waterfall is observed
// into the stage histograms and offered to the exemplar ring — dead
// sessions included (their verdicts have nowhere to go, but the ledger
// booked them, and the stage counts must keep partitioning exactly like
// the ledger does).
func (s *Service) flushRound(granted, rejected int64) {
	s.mu.Lock()
	s.granted += granted
	s.rejContention += rejected
	for _, sess := range s.touched {
		for _, nt := range sess.pend {
			if nt.Verdict == VerdictGranted {
				sess.ledger.Granted++
			} else {
				sess.ledger.Rejected++
			}
		}
		sess.deadAtFlush = sess.dead
	}
	s.mu.Unlock()
	ex := s.rec.Exemplars()
	for _, sess := range s.touched {
		sess.inRound = false
		var werr error
		if !sess.deadAtFlush && len(sess.pend) > 0 {
			werr = s.writeVerdicts(sess, sess.pend)
		}
		if len(sess.pend) > 0 {
			end := telemetry.NowNS()
			eg := nonneg(end - s.tEng1)
			tname := sess.tenant.name
			for i := range sess.pend {
				rec := &sess.pendStage[i]
				rec.w[telemetry.StageEgressWrite] = eg
				for st := range rec.w {
					s.stages[st].Observe(time.Duration(rec.w[st]))
				}
				nt := &sess.pend[i]
				ex.Offer(telemetry.Exemplar{
					ID: nt.ID, Tenant: tname, Class: rec.class, Slot: nt.Slot,
					Verdict: nt.Verdict.String(), StartNS: rec.start,
					TotalNS: nonneg(end - rec.start), Stages: rec.w,
				})
			}
		}
		sess.pend = sess.pend[:0]
		sess.pendStage = sess.pendStage[:0]
		if werr != nil {
			s.killSession(sess)
		}
	}
	s.touched = s.touched[:0]
}

// reconcile checks the grant ledger against a live engine Snapshot: the
// service's own counters must match the engine's byte for byte, the
// engine must never have input-blocked a packet (the hold mirror exists
// to guarantee it), and the service-level accounting must partition.
// Caller holds s.mu (freezing ingestion) and must be at a round
// boundary.
func (s *Service) reconcile() error {
	s.sw.Snapshot(&s.snap)
	if msg := s.snap.Conserved(); msg != "" {
		return s.violationLocked("conservation", msg)
	}
	if s.snap.Slots != s.slot {
		return s.violationLocked("ledger", fmt.Sprintf("engine ran %d slots, service ran %d rounds", s.snap.Slots, s.slot))
	}
	if s.snap.InputBlocked != 0 {
		return s.violationLocked("ledger", fmt.Sprintf(
			"engine input-blocked %d packets; the hold mirror must prevent dispatch onto held channels", s.snap.InputBlocked))
	}
	if s.snap.Offered != s.dispatched {
		return s.violationLocked("ledger", fmt.Sprintf("engine offered %d != service dispatched %d", s.snap.Offered, s.dispatched))
	}
	if s.snap.Granted != s.granted {
		return s.violationLocked("ledger", fmt.Sprintf("engine granted %d != service granted %d", s.snap.Granted, s.granted))
	}
	if s.snap.OutputDropped != s.rejContention {
		return s.violationLocked("ledger", fmt.Sprintf("engine dropped %d != service contention-rejected %d", s.snap.OutputDropped, s.rejContention))
	}
	for f := range s.perInput {
		if s.snap.PerInput[f] != s.perInput[f] {
			return s.violationLocked("ledger", fmt.Sprintf(
				"input fiber %d: engine granted %d != service granted %d", f, s.snap.PerInput[f], s.perInput[f]))
		}
	}
	if s.submitted != s.admitted+s.retried+s.rejAdmission {
		return s.violationLocked("admission", fmt.Sprintf(
			"submitted %d != admitted %d + retried %d + admission-rejected %d",
			s.submitted, s.admitted, s.retried, s.rejAdmission))
	}
	if s.admitted != s.dispatched+s.queued {
		return s.violationLocked("admission", fmt.Sprintf(
			"admitted %d != dispatched %d + queued %d", s.admitted, s.dispatched, s.queued))
	}
	return nil
}

// violation records the incident, writes the report and incident bundle
// and returns the error that stops Serve. Mirrors soak.Harness.violation.
func (s *Service) violation(invariant, detail string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.violationLocked(invariant, detail)
}

func (s *Service) violationLocked(invariant, detail string) error {
	inc := &Incident{
		Invariant: invariant,
		Slot:      s.slot,
		Detail:    detail,
		Wall:      time.Since(s.start).String(),
		Config:    s.cfg.Meta,
	}
	s.incident = inc
	s.stopping = true
	if s.cfg.Report != "" {
		if raw, err := json.MarshalIndent(inc, "", "  "); err == nil {
			if werr := os.WriteFile(s.cfg.Report, append(raw, '\n'), 0o644); werr != nil {
				fmt.Fprintf(s.cfg.Stderr, "%s: writing incident report: %v\n", s.cfg.Tool, werr)
			}
		}
	}
	if s.cfg.BundlePath != "" {
		if err := s.dumpBundle(s.cfg.BundlePath, "violation", inc, s.ledgerLocked()); err != nil {
			fmt.Fprintf(s.cfg.Stderr, "%s: dumping incident bundle: %v\n", s.cfg.Tool, err)
		} else {
			fmt.Fprintf(s.cfg.Stderr, "%s: incident bundle: %s\n", s.cfg.Tool, s.cfg.BundlePath)
		}
	}
	fmt.Fprintf(s.cfg.Stderr, "%s: INVARIANT VIOLATION [%s] slot %d: %s\n",
		s.cfg.Tool, inc.Invariant, inc.Slot, inc.Detail)
	return fmt.Errorf("grant: invariant violation [%s] slot %d: %s", inc.Invariant, inc.Slot, inc.Detail)
}

// dumpBundle writes the service's incident bundle: run metadata, the
// incident, the nearest pre-violation counter snapshot and the flight
// recorder's rings — the single-engine form of soak.DumpBundle, so
// server-side violations inherit the same forensics format.
func (s *Service) dumpBundle(path, trigger string, inc *Incident, ledger Ledger) error {
	start := time.Now()
	w := telemetry.NewBundleWriter(s.cfg.Tool, trigger, s.slot)
	if err := w.AddJSON("config.json", s.cfg.Meta); err != nil {
		return err
	}
	if inc != nil {
		if err := w.AddJSON("incident.json", inc); err != nil {
			return err
		}
		if pre := s.rec.NearestSnapshotBefore(inc.Slot - 1); pre != nil {
			if err := w.AddJSON("presnap.json", pre); err != nil {
				return err
			}
		}
	}
	if err := w.AddFunc("decisions.jsonl", s.rec.Decisions().WriteJSONL); err != nil {
		return err
	}
	if err := w.AddFunc("snapshots.jsonl", s.rec.WriteSnapshotsJSONL); err != nil {
		return err
	}
	if err := w.AddFunc("faults.jsonl", s.rec.WriteFaultsJSONL); err != nil {
		return err
	}
	if err := w.AddFunc("exemplars.jsonl", s.rec.Exemplars().WriteJSONL); err != nil {
		return err
	}
	if err := w.AddJSON("ledger.json", ledger); err != nil {
		return err
	}
	if err := w.WriteFile(path); err != nil {
		return err
	}
	s.rec.NoteDump(time.Since(start))
	return nil
}

// DumpBundle writes a requested (non-violation) flight-recorder bundle.
// Safe only at a round boundary; live servers use RequestDump instead,
// which routes the dump through the round loop.
func (s *Service) DumpBundle(path, trigger string) error {
	return s.dumpBundle(path, trigger, nil, s.Ledger())
}

// RequestDump asks the round loop to write a flight-recorder bundle at
// the next round boundary (the wdmserve SIGQUIT handshake — the run
// continues). Safe from a signal handler; a no-op when BundlePath is
// unset.
func (s *Service) RequestDump() {
	s.mu.Lock()
	s.wantDump = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// dumpAsync writes a requested bundle next to BundlePath with a
// -sigquit-<slot> suffix so it never clobbers a later violation bundle.
func (s *Service) dumpAsync() {
	if s.cfg.BundlePath == "" {
		return
	}
	path := suffixPath(s.cfg.BundlePath, fmt.Sprintf("-sigquit-%d", s.slot))
	if err := s.DumpBundle(path, "sigquit"); err != nil {
		fmt.Fprintf(s.cfg.Stderr, "%s: dumping requested bundle: %v\n", s.cfg.Tool, err)
		return
	}
	fmt.Fprintf(s.cfg.Stderr, "%s: flight-recorder bundle (run continues): %s\n", s.cfg.Tool, path)
}

// suffixPath inserts suffix before the path's extension(s):
// x.tgz → x-sigquit-7.tgz.
func suffixPath(path, suffix string) string {
	base := path
	var ext string
	for {
		e := filepath.Ext(base)
		if e == "" {
			break
		}
		ext = e + ext
		base = strings.TrimSuffix(base, e)
	}
	return base + suffix + ext
}

// finishSessions sends every remaining session its final ledger (clean
// drains only) and closes the connections.
func (s *Service) finishSessions(clean bool) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if clean {
			// wmu before mu: the write lock makes the ledger snapshot
			// atomic with in-flight ingestFrame calls (same order there),
			// so the ledger frame is always the last frame in the egress
			// buffer — and therefore the last on the wire. The writer
			// goroutine flushes it, half-closes the connection and bounds
			// the reader's drain of racing submit frames with a deadline.
			sess.wmu.Lock()
			s.mu.Lock()
			l := sess.ledger
			sess.finished = true
			s.mu.Unlock()
			sess.enc = encLedger(sess.enc[:0], l)
			err := sess.enqueueLocked(msgLedger, sess.enc)
			if err == nil {
				sess.closing = true
				sess.wcond.Signal()
			}
			sess.wmu.Unlock()
			if err == nil {
				continue
			}
		}
		s.killSession(sess)
	}
}
