package grant

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestHelloAckRoundTrip(t *testing.T) {
	pol := Policy{Class: 3, Rate: 12345.5, Burst: 64, Queue: 512}
	payload := encHelloAck(nil, 42, 16, 32, pol)
	r := reader{b: payload}
	if got := r.u64(); got != 42 {
		t.Fatalf("nonce = %d", got)
	}
	if n, k := r.u32(), r.u32(); n != 16 || k != 32 {
		t.Fatalf("shape = %d×%d", n, k)
	}
	got := Policy{Class: int(r.u8()), Rate: r.f64(), Burst: r.f64(), Queue: int(r.u32())}
	if r.Err() != nil || r.Rem() != 0 {
		t.Fatalf("decode: err=%v rem=%d", r.Err(), r.Rem())
	}
	if got != pol {
		t.Fatalf("policy = %+v, want %+v", got, pol)
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	l := Ledger{Submitted: 100, Admitted: 90, Granted: 70, Rejected: 20, Retried: 10}
	payload := encLedger(nil, l)
	r := reader{b: payload}
	got := decLedger(&r)
	if r.Err() != nil || got != l {
		t.Fatalf("ledger round-trip: %+v (err %v)", got, r.Err())
	}
	if !l.Balanced() {
		t.Fatal("ledger should balance")
	}
	l.Retried = 11
	if l.Balanced() {
		t.Fatal("imbalanced ledger reported balanced")
	}
}

func TestReaderTruncationLatches(t *testing.T) {
	r := reader{b: []byte{1, 2}}
	_ = r.u32()
	if r.Err() == nil {
		t.Fatal("overrun not latched")
	}
	if v := r.u64(); v != 0 {
		t.Fatalf("post-error read = %d, want 0", v)
	}
}

func TestTransportFraming(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ta, tb := newTransport(a), newTransport(b)
	go func() {
		payload := putString(nil, "hello over the grant wire")
		ta.send(msgError, payload)
	}()
	mt, payload, err := tb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if mt != msgError {
		t.Fatalf("type = %v", mt)
	}
	r := reader{b: payload}
	if s := r.str(); s != "hello over the grant wire" {
		t.Fatalf("payload = %q", s)
	}
}

func TestTransportRejectsCorruptFrames(t *testing.T) {
	check := func(name string, frame []byte, want string) {
		t.Helper()
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() { a.Write(frame) }()
		tr := newTransport(b)
		tr.setReadDeadline(time.Now().Add(2 * time.Second))
		_, _, err := tr.recv()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want %q", name, err, want)
		}
	}
	// Bad magic.
	check("magic", []byte{0x12, 0x34, wireVersion, byte(msgHello), 0, 0, 0, 0, 0, 0, 0, 0}, "bad magic")
	// Wrong version.
	check("version", []byte{0x57, 0xC2, 99, byte(msgHello), 0, 0, 0, 0, 0, 0, 0, 0}, "version mismatch")
	// CRC mismatch: valid header, payload "x", wrong checksum.
	frame := []byte{0x57, 0xC2, wireVersion, byte(msgHello), 0, 0, 0, 1, 'x', 0xde, 0xad, 0xbe, 0xef}
	check("crc", frame, "CRC mismatch")
	// Oversized length prefix.
	huge := []byte{0x57, 0xC2, wireVersion, byte(msgHello), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	check("length", huge, "exceeds limit")
}

func TestVerdictPredicates(t *testing.T) {
	for _, tc := range []struct {
		v                      Verdict
		granted, reject, retry bool
	}{
		{VerdictGranted, true, false, false},
		{VerdictRejected, false, true, false},
		{VerdictRejectedAdmission, false, true, false},
		{VerdictRetryBucket, false, false, true},
		{VerdictRetryQueue, false, false, true},
		{VerdictRetryDrain, false, false, true},
	} {
		if tc.v.Granted() != tc.granted || tc.v.Rejected() != tc.reject || tc.v.Retry() != tc.retry {
			t.Errorf("%v: predicates granted=%v rejected=%v retry=%v", tc.v, tc.v.Granted(), tc.v.Rejected(), tc.v.Retry())
		}
		if strings.Contains(tc.v.String(), "verdict(") {
			t.Errorf("%d has no name", tc.v)
		}
	}
}
