// Package grant is the scheduler-as-a-service layer: a long-running
// grant service that accepts connection requests from many concurrent
// external clients, batches them into slot-aligned scheduling rounds on
// the existing switch engines, and streams grant/reject/retry verdicts
// back. It is the open-loop counterpart of the closed-loop simulators:
// traffic originates outside the process, so admission control,
// per-tenant QoS, backpressure and graceful drain become first-class
// concerns instead of simulation parameters.
//
// Wire protocol (version 1): length-prefixed binary frames in the same
// framing style as the cluster runtime's v2 protocol (internal/cluster),
// big-endian, under a distinct magic so the two sockets can never be
// confused for one another:
//
//	magic   uint16  0x57C2
//	version uint8   1
//	type    uint8   message type
//	length  uint32  payload byte count
//	payload [length]byte
//	crc     uint32  IEEE CRC-32 of the payload
//
// Messages (client → server unless noted):
//
//	hello     nonce u64, tenant string — session open; the server
//	          resolves the tenant's admission policy and echoes helloAck
//	helloAck  (server → client) nonce u64, n u32, k u32, class u8,
//	          rate f64 (requests/second), burst f64, queue u32 — the
//	          switch shape and the tenant's effective policy
//	submit    count u32, then per request: id u64, in u32, wave u16,
//	          dest u32, dur u16. IDs are session-scoped and chosen by the
//	          client; every submitted request produces exactly one
//	          verdict entry carrying the same id.
//	verdicts  (server → client) count u32, then per entry: id u64,
//	          verdict u8, slot i64, channel i16, wait u32 (RETRY-AFTER
//	          hint, milliseconds; 0 unless the verdict is a retry)
//	drain     (server → client) reason string — the server stopped
//	          admitting; everything already queued will still be
//	          scheduled and acknowledged before the final ledger
//	bye       client is done submitting and has collected all verdicts;
//	          the server replies with ledger and closes the session
//	ledger    (server → client) submitted u64, admitted u64, granted
//	          u64, rejected u64, retried u64 — the session's final
//	          accounting; submitted = granted + rejected + retried
//	error     (either direction) message string — protocol failure; the
//	          session ends after it
//
// Encoding and decoding on the submit/verdict hot path are
// allocation-free: frames build in reused buffers and decode by cursor
// over the read buffer, exactly like the cluster transport.
package grant

import (
	"errors"
	"fmt"
	"math"
)

const (
	wireMagic   = 0x57C2
	wireVersion = 1

	headerLen  = 8
	crcLen     = 4
	maxPayload = 16 << 20 // sanity cap against corrupt length prefixes

	// submitItemLen is the encoded size of one submit entry:
	// id u64 + in u32 + wave u16 + dest u32 + dur u16.
	submitItemLen = 8 + 4 + 2 + 4 + 2
	// verdictItemLen is the encoded size of one verdict entry:
	// id u64 + verdict u8 + slot i64 + channel i16 + wait u32.
	verdictItemLen = 8 + 1 + 8 + 2 + 4
	// maxBatch caps the entries in one submit or verdicts frame.
	maxBatch = 1 << 16
)

type msgType uint8

const (
	msgInvalid msgType = iota
	msgHello
	msgHelloAck
	msgSubmit
	msgVerdicts
	msgDrain
	msgBye
	msgLedger
	msgError
)

func (m msgType) String() string {
	switch m {
	case msgHello:
		return "hello"
	case msgHelloAck:
		return "hello-ack"
	case msgSubmit:
		return "submit"
	case msgVerdicts:
		return "verdicts"
	case msgDrain:
		return "drain"
	case msgBye:
		return "bye"
	case msgLedger:
		return "ledger"
	case msgError:
		return "error"
	}
	return fmt.Sprintf("msgType(%d)", uint8(m))
}

// Verdict is the terminal disposition of one submitted request. Every
// request gets exactly one: a grant, a reject, or a retry — nothing is
// silently dropped, which is the property wdmload asserts end to end.
type Verdict uint8

const (
	// VerdictGranted: the connection was switched; Slot and Channel in
	// the notice say when and on which output channel.
	VerdictGranted Verdict = 1 + iota
	// VerdictRejected: the request reached a scheduling round but lost
	// the output-contention matching (the paper's dropped packet).
	VerdictRejected
	// VerdictRejectedAdmission: the tenant's policy admits nothing
	// (rate 0 — administratively blocked); retrying is futile.
	VerdictRejectedAdmission
	// VerdictRetryBucket: the tenant's token bucket is empty; retry
	// after the notice's wait hint.
	VerdictRetryBucket
	// VerdictRetryQueue: the tenant's ingress queue is full
	// (backpressure); retry after the notice's wait hint.
	VerdictRetryQueue
	// VerdictRetryDrain: the server is draining and admits nothing new.
	VerdictRetryDrain
)

func (v Verdict) String() string {
	switch v {
	case VerdictGranted:
		return "granted"
	case VerdictRejected:
		return "rejected-contention"
	case VerdictRejectedAdmission:
		return "rejected-admission"
	case VerdictRetryBucket:
		return "retry-bucket"
	case VerdictRetryQueue:
		return "retry-queue"
	case VerdictRetryDrain:
		return "retry-drain"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Granted reports whether the verdict is a grant.
func (v Verdict) Granted() bool { return v == VerdictGranted }

// Rejected reports whether the verdict is a terminal reject.
func (v Verdict) Rejected() bool {
	return v == VerdictRejected || v == VerdictRejectedAdmission
}

// Retry reports whether the verdict asks the client to come back later.
func (v Verdict) Retry() bool {
	return v == VerdictRetryBucket || v == VerdictRetryQueue || v == VerdictRetryDrain
}

// Req is one connection request as submitted on the wire: input channel
// (fiber In, wavelength Wave), destination output fiber and duration in
// slots.
type Req struct {
	ID   uint64
	In   uint32
	Wave uint16
	Dest uint32
	Dur  uint16
}

// Notice is one verdict entry as delivered on the wire.
type Notice struct {
	ID      uint64
	Verdict Verdict
	Slot    int64
	Channel int16  // granted output channel; -1 otherwise
	WaitMS  uint32 // RETRY-AFTER hint; 0 unless Verdict.Retry()
}

// Ledger is a session's or the whole server's final accounting. The
// terminal partition Submitted = Granted + Rejected + Retried always
// holds; Admitted counts the subset that passed admission control
// (Admitted = Granted + Rejected once all queues have drained).
type Ledger struct {
	Submitted uint64 `json:"submitted"`
	Admitted  uint64 `json:"admitted"`
	Granted   uint64 `json:"granted"`
	Rejected  uint64 `json:"rejected"`
	Retried   uint64 `json:"retried"`
}

// Balanced reports whether the terminal partition holds.
func (l *Ledger) Balanced() bool {
	return l.Submitted == l.Granted+l.Rejected+l.Retried
}

// errShortPayload is the shared decode-overrun error; reader methods
// return zero values after it is set, and callers check Err once.
var errShortPayload = errors.New("grant: truncated payload")

// Append-style big-endian encoders, mirroring the cluster wire helpers:
// all return the extended slice so the hot path stays a chain of appends
// into one reused buffer.

func putU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func putI16(b []byte, v int16) []byte { return putU16(b, uint16(v)) }

func putI64(b []byte, v int64) []byte { return putU64(b, uint64(v)) }

func putF64(b []byte, v float64) []byte { return putU64(b, math.Float64bits(v)) }

func putString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = putU16(b, uint16(len(s)))
	return append(b, s...)
}

// reader is a bounds-checked cursor over one frame's payload. The first
// overrun latches err; subsequent reads return zeros, so decode loops
// can run unguarded and check Err once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errShortPayload
	}
}

func (r *reader) Err() error { return r.err }

func (r *reader) Rem() int { return len(r.b) - r.off }

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := uint16(r.b[r.off])<<8 | uint16(r.b[r.off+1])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 4
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 8
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func (r *reader) i16() int16 { return int16(r.u16()) }

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Frame payload encoders. Each appends to b and returns the extended
// slice; the transport wraps the payload in the header/CRC envelope.

func encHello(b []byte, nonce uint64, tenant string) []byte {
	b = putU64(b, nonce)
	return putString(b, tenant)
}

func encHelloAck(b []byte, nonce uint64, n, k int, pol Policy) []byte {
	b = putU64(b, nonce)
	b = putU32(b, uint32(n))
	b = putU32(b, uint32(k))
	b = append(b, uint8(pol.Class))
	b = putF64(b, pol.Rate)
	b = putF64(b, pol.Burst)
	return putU32(b, uint32(pol.Queue))
}

func encLedger(b []byte, l Ledger) []byte {
	b = putU64(b, l.Submitted)
	b = putU64(b, l.Admitted)
	b = putU64(b, l.Granted)
	b = putU64(b, l.Rejected)
	return putU64(b, l.Retried)
}

func decLedger(r *reader) Ledger {
	return Ledger{
		Submitted: r.u64(),
		Admitted:  r.u64(),
		Granted:   r.u64(),
		Rejected:  r.u64(),
		Retried:   r.u64(),
	}
}
