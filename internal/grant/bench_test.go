package grant

import (
	"sync"
	"testing"

	"wdmsched/internal/interconnect"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/wavelength"
)

// benchIngestService builds a service sized so one 64-request frame maps
// onto 64 distinct input channels (8×8 shape), with admission wide open.
// No listener and no round loop: the benchmark drives the hot path —
// frame decode, admission booking, enqueue, batch build — directly.
func benchIngestService(tb testing.TB) (*Service, *session, []byte) {
	tb.Helper()
	conv, err := wavelength.NewSymmetric(wavelength.Circular, 8, 3)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := NewService(Config{
		Switch:  interconnect.Config{N: 8, Conv: conv, Scheduler: "exact", Seed: 1},
		Default: Policy{Class: 0, Rate: 1e12, Burst: 1e6, Queue: 4096},
	})
	if err != nil {
		tb.Fatal(err)
	}
	s.mu.Lock()
	t := s.tenantLocked("bench")
	s.mu.Unlock()
	sess := &session{tenant: t}

	const frame = 64
	b := putU32(nil, frame)
	for i := 0; i < frame; i++ {
		b = putU64(b, uint64(i))   // id
		b = putU32(b, uint32(i/8)) // in
		b = putU16(b, uint16(i%8)) // wave
		b = putU32(b, uint32(i%8)) // dest
		b = putU16(b, 1)           // dur
	}
	return s, sess, b
}

// ingestAndBatch is one benchmark iteration: decode and admit a 64-request
// frame, then drain it into a slot batch. Advancing s.slot stands in for
// runRound so the channel stamps from the previous iteration go stale.
func ingestAndBatch(tb testing.TB, s *Service, sess *session, payload []byte) {
	if !s.ingest(sess, payload, telemetry.NowNS()) {
		tb.Fatal("ingest rejected the benchmark frame")
	}
	s.mu.Lock()
	s.buildBatchLocked()
	n := len(s.batch)
	s.mu.Unlock()
	if n != 64 {
		tb.Fatalf("batch has %d packets, want 64", n)
	}
	s.slot++
}

// ingestAndRound is one full-lifecycle iteration: ingest and batch as
// above, then run the engine slot, settle every request (stage-histogram
// observation and exemplar offers included) and encode the verdict
// frames. Resetting the egress buffer afterwards stands in for the
// session writer draining it.
func ingestAndRound(tb testing.TB, s *Service, sess *session, payload []byte) {
	if !s.ingest(sess, payload, telemetry.NowNS()) {
		tb.Fatal("ingest rejected the benchmark frame")
	}
	s.mu.Lock()
	s.buildBatchLocked()
	n := len(s.batch)
	s.mu.Unlock()
	if n != 64 {
		tb.Fatalf("batch has %d packets, want 64", n)
	}
	if err := s.runRound(); err != nil {
		tb.Fatal(err)
	}
	sess.wmu.Lock()
	sess.out = sess.out[:0]
	sess.outN = 0
	sess.wmu.Unlock()
}

// BenchmarkGrantIngest measures the wire-facing hot path of the grant
// service: submit-frame decode, per-request admission, bounded-queue
// enqueue and the strict-priority batch build. Steady state this path
// must not allocate (TestGrantIngestZeroAllocs pins it).
func BenchmarkGrantIngest(b *testing.B) {
	s, sess, payload := benchIngestService(b)
	ingestAndBatch(b, s, sess, payload) // warm the reused buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ingestAndBatch(b, s, sess, payload)
	}
	b.SetBytes(int64(len(payload)))
}

// TestGrantIngestZeroAllocs pins the ingest path as a -benchmem
// assertion: decode → admit (stage stamps included) → enqueue → batch
// must report 0 allocs/op.
func TestGrantIngestZeroAllocs(t *testing.T) {
	s, sess, payload := benchIngestService(t)
	ingestAndBatch(t, s, sess, payload)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ingestAndBatch(b, s, sess, payload)
		}
	})
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("grant ingest: %d allocs/op, want 0 (%s)", a, r.MemString())
	}
}

// benchRoundService extends the ingest fixture for full rounds: the
// session gets a writer condvar (flushRound signals it) and reconcile is
// pushed out past the benchmark horizon so the measured loop is pure
// request lifecycle — its first engine Snapshot would be a one-time
// allocation, not a hot-path one.
func benchRoundService(tb testing.TB) (*Service, *session, []byte) {
	s, sess, payload := benchIngestService(tb)
	sess.wcond = sync.NewCond(&sess.wmu)
	sess.egressMax = defaultEgressBuffer
	s.cfg.Resync = 1 << 40
	return s, sess, payload
}

// BenchmarkGrantRound measures the full request lifecycle with the stage
// clock and exemplar recording on: ingest, batch build, engine slot,
// settle (six stage observations per request), verdict encode and
// exemplar offers.
func BenchmarkGrantRound(b *testing.B) {
	s, sess, payload := benchRoundService(b)
	ingestAndRound(b, s, sess, payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ingestAndRound(b, s, sess, payload)
	}
	b.SetBytes(int64(len(payload)))
}

// TestGrantRoundZeroAllocs pins the full lifecycle — stage clocks,
// per-stage histogram observation and exemplar-ring offers included —
// at 0 allocs/op.
func TestGrantRoundZeroAllocs(t *testing.T) {
	s, sess, payload := benchRoundService(t)
	ingestAndRound(t, s, sess, payload)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ingestAndRound(b, s, sess, payload)
		}
	})
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("grant round: %d allocs/op, want 0 (%s)", a, r.MemString())
	}
	if n := s.rec.Exemplars().Offered(); n == 0 {
		t.Error("exemplar ring saw no offers; the pin no longer covers exemplar recording")
	}
	for st, h := range s.stages {
		if h.Count() == 0 {
			t.Errorf("stage %s histogram empty; the pin no longer covers the stage clock", telemetry.GrantStageNames[st])
		}
	}
}
