package grant

import (
	"strings"
	"testing"
)

func TestBucketBurstExactlyAtCapacity(t *testing.T) {
	// A fresh bucket admits exactly its burst capacity back to back —
	// the boundary request at capacity is admitted, capacity+1 is not.
	b := newBucket(100, 8)
	now := int64(1_000_000)
	for i := 0; i < 8; i++ {
		ok, _ := b.take(now)
		if !ok {
			t.Fatalf("request %d of burst 8 not admitted", i+1)
		}
	}
	ok, wait := b.take(now)
	if ok {
		t.Fatalf("request 9 admitted past burst capacity 8")
	}
	if wait == 0 {
		t.Fatalf("rejected request carries no RETRY-AFTER hint")
	}
	// One token refills after 1/rate seconds = 10ms.
	if wait > 11 {
		t.Fatalf("RETRY-AFTER %dms, want ~10ms at rate 100/s", wait)
	}
	ok, _ = b.take(now + 10_000_000)
	if !ok {
		t.Fatalf("request not admitted after the hinted refill interval")
	}
}

func TestBucketRefillCapsAtBurst(t *testing.T) {
	b := newBucket(1000, 4)
	if ok, _ := b.take(0); !ok {
		t.Fatal("fresh bucket rejected")
	}
	// A long quiet period must not accumulate more than burst tokens.
	now := int64(3_600_000_000_000) // one hour
	admitted := 0
	for i := 0; i < 100; i++ {
		if ok, _ := b.take(now); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d after idle hour, want burst cap 4", admitted)
	}
}

func TestRetryAfterMonotoneAndBounded(t *testing.T) {
	if got := retryAfterMS(1, 0); got != ^uint32(0) {
		t.Fatalf("zero rate hint = %d, want max", got)
	}
	if got := retryAfterMS(0.0001, 1000); got != 1 {
		t.Fatalf("tiny deficit hint = %d, want floor 1ms", got)
	}
	small := retryAfterMS(10, 100)
	large := retryAfterMS(100, 100)
	if small >= large {
		t.Fatalf("hint not monotone in backlog: %d >= %d", small, large)
	}
	if got := retryAfterMS(1e12, 1e-6); got != ^uint32(0) {
		t.Fatalf("huge deficit hint = %d, want saturated max", got)
	}
}

func TestParsePolicies(t *testing.T) {
	def := Policy{Class: 1, Rate: 1000, Burst: 32, Queue: 256}
	pols, err := ParsePolicies("gold:class=0,rate=50000,burst=128,queue=1024; blocked:rate=0 ;bronze:class=2", def)
	if err != nil {
		t.Fatal(err)
	}
	if got := pols["gold"]; got != (Policy{Class: 0, Rate: 50000, Burst: 128, Queue: 1024}) {
		t.Fatalf("gold = %+v", got)
	}
	if got := pols["blocked"]; got.Rate != 0 || got.Class != 1 {
		t.Fatalf("blocked = %+v, want rate 0 inheriting class 1", got)
	}
	if got := pols["bronze"]; got.Class != 2 || got.Rate != 1000 {
		t.Fatalf("bronze = %+v, want class 2 with inherited rate", got)
	}
	// Round-trip through FormatPolicies.
	again, err := ParsePolicies(FormatPolicies(pols), def)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range pols {
		if again[name] != want {
			t.Fatalf("format/parse round-trip: %s = %+v, want %+v", name, again[name], want)
		}
	}
}

func TestParsePoliciesErrors(t *testing.T) {
	def := Policy{Rate: 100, Burst: 8, Queue: 64}
	for _, spec := range []string{
		"noseparator",       // missing colon
		"t:rate",            // not key=value
		"t:speed=1",         // unknown key
		"t:rate=abc",        // bad number
		"t:rate=1,burst=0",  // burst < 1 with rate > 0
		"t:queue=0",         // queue < 1
		"t:class=300",       // class out of range
		"a:rate=1;a:rate=2", // duplicate tenant
		"t:rate=-5",         // negative rate
	} {
		if _, err := ParsePolicies(spec, def); err == nil {
			t.Errorf("spec %q: no error", spec)
		}
	}
	if pols, err := ParsePolicies("  ", def); err != nil || len(pols) != 0 {
		t.Fatalf("blank spec: %v, %v", pols, err)
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{Rate: 0, Burst: 0, Queue: 1}).validate(); err != nil {
		t.Fatalf("zero-rate policy (administratively blocked tenant) must be valid: %v", err)
	}
	if err := (Policy{Rate: 1, Burst: 1, Queue: 1}).validate(); err != nil {
		t.Fatalf("minimal policy invalid: %v", err)
	}
	if err := (Policy{Rate: -1, Burst: 1, Queue: 1}).validate(); err == nil ||
		!strings.Contains(err.Error(), "rate") {
		t.Fatalf("negative rate not rejected: %v", err)
	}
}
