package grant

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is one grant-service session, used by wdmload and tests. One
// goroutine may Submit while another Recvs (the transport's read and
// write halves are independent); Submit/Bye themselves are serialized
// by an internal mutex.
type Client struct {
	tr *transport

	// Shape and effective policy echoed by the server at handshake.
	N, K   int
	Policy Policy

	wmu sync.Mutex
	enc []byte

	notices []Notice // reused Recv decode buffer
	ledger  Ledger
}

// Dial connects to a grant server, performs the hello handshake for the
// given tenant and returns the ready client.
func Dial(addr, tenant string) (*Client, error) {
	return DialTimeout(addr, tenant, 10*time.Second)
}

// DialTimeout is Dial with an explicit dial-and-handshake deadline.
func DialTimeout(addr, tenant string, timeout time.Duration) (*Client, error) {
	network, address := splitAddr(addr)
	conn, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, fmt.Errorf("grant: dial %s: %w", addr, err)
	}
	c := &Client{tr: newTransport(conn)}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	const nonce = 0x77646d6772616e74 // "wdmgrant"
	c.enc = encHello(c.enc[:0], nonce, tenant)
	if err := c.tr.send(msgHello, c.enc); err != nil {
		conn.Close()
		return nil, err
	}
	mt, payload, err := c.tr.recv()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if mt == msgError {
		r := reader{b: payload}
		msg := r.str()
		conn.Close()
		return nil, fmt.Errorf("grant: server rejected session: %s", msg)
	}
	if mt != msgHelloAck {
		conn.Close()
		return nil, fmt.Errorf("grant: expected hello-ack, got %v", mt)
	}
	r := reader{b: payload}
	if got := r.u64(); got != nonce {
		conn.Close()
		return nil, fmt.Errorf("grant: hello-ack nonce mismatch")
	}
	c.N = int(r.u32())
	c.K = int(r.u32())
	c.Policy.Class = int(r.u8())
	c.Policy.Rate = r.f64()
	c.Policy.Burst = r.f64()
	c.Policy.Queue = int(r.u32())
	if r.Err() != nil {
		conn.Close()
		return nil, fmt.Errorf("grant: malformed hello-ack")
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

// Submit sends one batch of requests. The request IDs are the client's
// to choose; every submitted ID comes back in exactly one verdict.
func (c *Client) Submit(reqs []Req) error {
	if len(reqs) > maxBatch {
		return fmt.Errorf("grant: batch of %d exceeds the %d-request frame cap", len(reqs), maxBatch)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	b := putU32(c.enc[:0], uint32(len(reqs)))
	for _, q := range reqs {
		b = putU64(b, q.ID)
		b = putU32(b, q.In)
		b = putU16(b, q.Wave)
		b = putU32(b, q.Dest)
		b = putU16(b, q.Dur)
	}
	c.enc = b
	return c.tr.send(msgSubmit, b)
}

// Bye tells the server the client is done submitting and has collected
// every verdict; the server replies with the session ledger (delivered
// through Recv) and closes the session.
func (c *Client) Bye() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.tr.send(msgBye, c.enc[:0])
}

// Event is one server-to-client frame, as returned by Recv. Exactly one
// of the fields is set.
type Event struct {
	// Notices is a verdict batch; the slice is valid until the next
	// Recv call.
	Notices []Notice
	// Drain reports the server announced a graceful drain: nothing new
	// will be admitted, but queued requests still get verdicts.
	Drain bool
	// Ledger is the session's final accounting; the server closes the
	// session after sending it.
	Ledger *Ledger
}

// Recv reads one frame from the server. Server-sent error frames are
// surfaced as Go errors.
func (c *Client) Recv() (Event, error) {
	mt, payload, err := c.tr.recv()
	if err != nil {
		return Event{}, err
	}
	r := reader{b: payload}
	switch mt {
	case msgVerdicts:
		count := int(r.u32())
		if r.Err() != nil || count < 0 || count > maxBatch || r.Rem() != count*verdictItemLen {
			return Event{}, fmt.Errorf("grant: malformed verdicts frame")
		}
		c.notices = c.notices[:0]
		for i := 0; i < count; i++ {
			c.notices = append(c.notices, Notice{
				ID:      r.u64(),
				Verdict: Verdict(r.u8()),
				Slot:    r.i64(),
				Channel: r.i16(),
				WaitMS:  r.u32(),
			})
		}
		return Event{Notices: c.notices}, nil
	case msgDrain:
		return Event{Drain: true}, nil
	case msgLedger:
		c.ledger = decLedger(&r)
		if r.Err() != nil {
			return Event{}, fmt.Errorf("grant: malformed ledger frame")
		}
		return Event{Ledger: &c.ledger}, nil
	case msgError:
		return Event{}, fmt.Errorf("grant: server error: %s", r.str())
	}
	return Event{}, fmt.Errorf("grant: unexpected frame %v", mt)
}

// SetRecvDeadline bounds the next Recv; zero clears it.
func (c *Client) SetRecvDeadline(t time.Time) error { return c.tr.setReadDeadline(t) }

// Close tears the connection down.
func (c *Client) Close() error { return c.tr.close() }
