package grant

import (
	"testing"
	"time"

	"wdmsched/internal/telemetry"
)

// TestStageHistogramsReconcile drives real traffic through a live
// service and pins the stage-clock contract: every round-settled verdict
// (granted + contention-rejected) is observed into every stage histogram
// exactly once, so the six per-stage counts all equal the settled
// verdict count from the double-entry ledger.
func TestStageHistogramsReconcile(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, addr, errc := startService(t, func(cfg *Config) { cfg.Telemetry = reg })
	c, err := Dial(addr, "stages")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const waves = 4
	reqs := make([]Req, 0, testN*waves)
	id := uint64(1)
	for in := 0; in < testN; in++ {
		for w := 0; w < waves; w++ {
			reqs = append(reqs, Req{ID: id, In: uint32(in), Wave: uint16(w),
				Dest: uint32((in + w) % testN), Dur: 1})
			id++
		}
	}
	var ta tally
	for round := 0; round < 8; round++ {
		for i := range reqs {
			reqs[i].ID += uint64(len(reqs))
		}
		if err := c.Submit(reqs); err != nil {
			t.Fatal(err)
		}
		recvUntil(t, c, &ta, (round+1)*len(reqs))
	}
	if ta.retried != 0 {
		t.Fatalf("expected no retries under a wide-open policy, got %d", ta.retried)
	}

	settled := int64(ta.granted + ta.rejected)
	for st, h := range s.stages {
		if h.Count() != settled {
			t.Errorf("stage %s count = %d, want %d (granted %d + rejected %d)",
				telemetry.GrantStageNames[st], h.Count(), settled, ta.granted, ta.rejected)
		}
	}

	// The registry view must agree with the internal histograms: six
	// wdm_grant_stage_seconds series, one per stage name, same counts.
	seen := map[string]int64{}
	for _, m := range reg.Snapshot() {
		if m.Name != "wdm_grant_stage_seconds" {
			continue
		}
		if len(m.Labels) != 1 || m.Labels[0].Key != "stage" {
			t.Fatalf("stage series labels = %v", m.Labels)
		}
		seen[m.Labels[0].Value] = m.Count
	}
	if len(seen) != telemetry.NumGrantStages {
		t.Fatalf("registry exposes %d stage series, want %d: %v", len(seen), telemetry.NumGrantStages, seen)
	}
	for _, name := range telemetry.GrantStageNames {
		if seen[name] != settled {
			t.Errorf("registry stage %s count = %d, want %d", name, seen[name], settled)
		}
	}

	// Exemplars: the ring retained slow requests with coherent waterfalls.
	exs := s.Recorder().Exemplars().Snapshot()
	if len(exs) == 0 {
		t.Fatal("exemplar ring is empty after settled traffic")
	}
	for _, e := range exs {
		if e.Tenant != "stages" {
			t.Errorf("exemplar tenant = %q, want %q", e.Tenant, "stages")
		}
		if e.Verdict != "granted" && e.Verdict != "rejected-contention" {
			t.Errorf("exemplar verdict = %q, want a settled verdict", e.Verdict)
		}
		if e.TotalNS <= 0 {
			t.Errorf("exemplar %d total = %d, want > 0", e.ID, e.TotalNS)
		}
		// Stage sums can undershoot the receipt→egress total (inter-stage
		// gaps are not attributed) but must never exceed it by more than
		// scheduling noise on the chained stamps.
		if sum := e.Stages.Total(); sum > e.TotalNS+int64(time.Millisecond) {
			t.Errorf("exemplar %d stage sum %d exceeds total %d", e.ID, sum, e.TotalNS)
		}
	}

	l := byeLedger(t, c)
	if got := uint64(ta.granted); l.Granted != got {
		t.Errorf("ledger granted %d != client tally %d", l.Granted, got)
	}
	s.Drain()
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestDrainingAccessor pins the /readyz signal source: false while
// serving, true once Drain begins.
func TestDrainingAccessor(t *testing.T) {
	s, _, errc := startService(t, nil)
	if s.Draining() {
		t.Error("Draining() true before drain")
	}
	s.Drain()
	if !s.Draining() {
		t.Error("Draining() false after Drain()")
	}
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
