package fabric

import (
	"fmt"

	"wdmsched/internal/traffic"
)

// Selector breaks ties among same-wavelength requests. The matching
// algorithms treat requests on one wavelength as interchangeable; when the
// scheduler grants g of the c ≥ g requests on a wavelength, the selector
// decides which input fibers win. The paper (Section III) prescribes "a
// random selecting or a round-robin scheduling procedure … to ensure
// fairness", citing the PIM and iSLIP line of work.
type Selector interface {
	// Pick appends to dst the winning input fibers: grants entries chosen
	// from requesters (ascending fiber order). requesters must not be
	// empty when grants > 0 and grants ≤ len(requesters).
	Pick(w int, requesters []int, grants int, dst []int) []int
	// Name identifies the policy in tables.
	Name() string
}

func checkPick(w int, requesters []int, grants int) {
	if grants < 0 || grants > len(requesters) {
		panic(fmt.Sprintf("fabric: %d grants for %d requesters on λ%d", grants, len(requesters), w))
	}
}

// RoundRobin serves each wavelength's requesters starting after the last
// fiber served on that wavelength, the iSLIP-style pointer update. One
// instance belongs to one output fiber.
type RoundRobin struct {
	next []int // per wavelength: fiber id to start searching from
}

// NewRoundRobin builds a round-robin selector for k wavelengths.
func NewRoundRobin(k int) *RoundRobin {
	return &RoundRobin{next: make([]int, k)}
}

// Name implements Selector.
func (s *RoundRobin) Name() string { return "round-robin" }

// Pick implements Selector: winners are the first `grants` requesters at or
// after the pointer in cyclic fiber order; the pointer then advances to one
// past the last winner.
func (s *RoundRobin) Pick(w int, requesters []int, grants int, dst []int) []int {
	checkPick(w, requesters, grants)
	if grants == 0 {
		return dst
	}
	// Find the first requester ≥ pointer (cyclically).
	start := 0
	for i, f := range requesters {
		if f >= s.next[w] {
			start = i
			break
		}
	}
	last := 0
	for g := 0; g < grants; g++ {
		f := requesters[(start+g)%len(requesters)]
		dst = append(dst, f)
		last = f
	}
	s.next[w] = last + 1
	return dst
}

// Random picks a uniform subset of requesters each slot (PIM-style).
type Random struct {
	rng     *traffic.RNG
	scratch []int
}

// NewRandom builds a random selector with its own deterministic stream.
func NewRandom(seed uint64) *Random {
	return &Random{rng: traffic.NewRNG(seed)}
}

// Name implements Selector.
func (s *Random) Name() string { return "random" }

// Pick implements Selector via a partial Fisher–Yates shuffle.
func (s *Random) Pick(w int, requesters []int, grants int, dst []int) []int {
	checkPick(w, requesters, grants)
	if grants == 0 {
		return dst
	}
	s.scratch = append(s.scratch[:0], requesters...)
	for g := 0; g < grants; g++ {
		i := g + s.rng.Intn(len(s.scratch)-g)
		s.scratch[g], s.scratch[i] = s.scratch[i], s.scratch[g]
		dst = append(dst, s.scratch[g])
	}
	return dst
}

// FixedPriority always serves the lowest-numbered requesting fibers — the
// unfair baseline the paper's cited fairness mechanisms (round-robin,
// random) exist to avoid. It is included as the negative control in the
// fairness ablation (experiment S7): under contention it starves
// high-numbered input fibers.
type FixedPriority struct{}

// NewFixedPriority builds the unfair baseline selector.
func NewFixedPriority() *FixedPriority { return &FixedPriority{} }

// Name implements Selector.
func (*FixedPriority) Name() string { return "fixed-priority" }

// Pick implements Selector: the first `grants` requesters in fiber order
// win, every slot.
func (*FixedPriority) Pick(w int, requesters []int, grants int, dst []int) []int {
	checkPick(w, requesters, grants)
	return append(dst, requesters[:grants]...)
}

var (
	_ Selector = (*RoundRobin)(nil)
	_ Selector = (*Random)(nil)
	_ Selector = (*FixedPriority)(nil)
)
