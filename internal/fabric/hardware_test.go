package fabric_test

import (
	"math/rand"
	"testing"

	"wdmsched/internal/core"
	"wdmsched/internal/fabric"
	"wdmsched/internal/wavelength"
)

func TestHardwareFAValidation(t *testing.T) {
	if _, err := fabric.NewHardwareFirstAvailable(0, 4, 1, 1, nil); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := fabric.NewHardwareFirstAvailable(2, 4, 2, 2, nil); err == nil {
		t.Fatal("degree > k accepted")
	}
	h, err := fabric.NewHardwareFirstAvailable(2, 4, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Schedule([]bool{true}, nil); err == nil {
		t.Fatal("short occupied accepted")
	}
}

// TestHardwareFAMatchesCoreAlgorithm: the register-level datapath must
// grant exactly as many requests as the count-vector First Available
// algorithm, on random instances including occupancy.
func TestHardwareFAMatchesCoreAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(6) + 1
		k := rng.Intn(10) + 1
		e := rng.Intn(k)
		f := rng.Intn(k - e)
		conv := wavelength.MustNew(wavelength.NonCircular, k, e, f)
		fa, err := core.NewFirstAvailable(conv)
		if err != nil {
			t.Fatal(err)
		}
		hw, err := fabric.NewHardwareFirstAvailable(n, k, e, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Random request pattern over the N·k channels.
		count := make([]int, k)
		for in := 0; in < n; in++ {
			for w := 0; w < k; w++ {
				if rng.Float64() < 0.4 {
					hw.Register().Mark(in, w)
					count[w]++
				}
			}
		}
		var occ []bool
		if trial%2 == 0 {
			occ = make([]bool, k)
			for b := range occ {
				occ[b] = rng.Float64() < 0.3
			}
		}
		grants, err := hw.Schedule(occ, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := core.NewResult(k)
		fa.Schedule(count, occ, res)
		if len(grants) != res.Size {
			t.Fatalf("N=%d %v count=%v occ=%v: hardware %d vs core %d",
				n, conv, count, occ, len(grants), res.Size)
		}
		// Physical sanity of each grant.
		seenIn := map[[2]int]bool{}
		seenOut := map[int]bool{}
		for _, g := range grants {
			if occ != nil && occ[g.OutputChannel] {
				t.Fatalf("granted occupied channel %d", g.OutputChannel)
			}
			if !conv.CanConvert(wavelength.Wavelength(g.InputWavelength), wavelength.Wavelength(g.OutputChannel)) {
				t.Fatalf("grant %+v out of conversion reach", g)
			}
			in := [2]int{g.InputFiber, g.InputWavelength}
			if seenIn[in] || seenOut[g.OutputChannel] {
				t.Fatalf("grant %+v conflicts", g)
			}
			seenIn[in] = true
			seenOut[g.OutputChannel] = true
		}
	}
}

// TestHardwareFACycleCount pins the O(k) claim: exactly k cycles per slot
// regardless of N or request count.
func TestHardwareFACycleCount(t *testing.T) {
	for _, n := range []int{1, 8, 64} {
		hw, err := fabric.NewHardwareFirstAvailable(n, 16, 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for in := 0; in < n; in++ {
			hw.Register().Mark(in, in%16)
		}
		if _, err := hw.Schedule(nil, nil); err != nil {
			t.Fatal(err)
		}
		if hw.Cycles() != 16 {
			t.Fatalf("N=%d: %d cycles per slot, want k=16", n, hw.Cycles())
		}
	}
}

// TestHardwareFARoundRobinFairness: repeated contention between two fibers
// on one wavelength alternates winners.
func TestHardwareFARoundRobinFairness(t *testing.T) {
	hw, err := fabric.NewHardwareFirstAvailable(2, 2, 0, 0, nil) // d=1: pure contention
	if err != nil {
		t.Fatal(err)
	}
	var winners []int
	for slot := 0; slot < 4; slot++ {
		hw.Register().Mark(0, 0)
		hw.Register().Mark(1, 0)
		grants, err := hw.Schedule(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(grants) != 1 {
			t.Fatalf("slot %d: %d grants, want 1", slot, len(grants))
		}
		winners = append(winners, grants[0].InputFiber)
	}
	if winners[0] == winners[1] || winners[1] == winners[2] {
		t.Fatalf("round-robin did not alternate: %v", winners)
	}
}

// TestHardwareFARegisterClearedBetweenSlots: leftover requests must not
// leak across slots.
func TestHardwareFARegisterClearedBetweenSlots(t *testing.T) {
	hw, err := fabric.NewHardwareFirstAvailable(2, 4, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Overload one wavelength: 2 requests, at most 2 channels reachable.
	hw.Register().Mark(0, 1)
	hw.Register().Mark(1, 1)
	if _, err := hw.Schedule(nil, nil); err != nil {
		t.Fatal(err)
	}
	// Next slot: no requests marked → no grants.
	grants, err := hw.Schedule(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 0 {
		t.Fatalf("stale grants across slots: %v", grants)
	}
}
