package fabric

import (
	"reflect"
	"testing"

	"wdmsched/internal/wavelength"
)

func TestBitVectorBasics(t *testing.T) {
	v := NewBitVector(130) // spans three words
	for _, i := range []int{0, 63, 64, 129} {
		v.Set(i)
	}
	if v.Count() != 4 {
		t.Fatalf("Count = %d", v.Count())
	}
	if !v.Get(63) || v.Get(62) {
		t.Fatal("Get mismatch")
	}
	v.Clear(63)
	if v.Get(63) || v.Count() != 3 {
		t.Fatal("Clear failed")
	}
	var seen []int
	v.ForEach(func(i int) { seen = append(seen, i) })
	if !reflect.DeepEqual(seen, []int{0, 64, 129}) {
		t.Fatalf("ForEach = %v", seen)
	}
	v.Reset()
	if v.Count() != 0 {
		t.Fatal("Reset failed")
	}
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
}

func TestBitVectorPanics(t *testing.T) {
	v := NewBitVector(8)
	for name, fn := range map[string]func(){
		"negative size": func() { NewBitVector(-1) },
		"get oob":       func() { v.Get(8) },
		"set oob":       func() { v.Set(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRequestRegister(t *testing.T) {
	r := NewRequestRegister(4, 3) // N=4, k=3
	r.Mark(0, 1)
	r.Mark(2, 1)
	r.Mark(3, 0)
	if r.Total() != 3 {
		t.Fatalf("Total = %d", r.Total())
	}
	if !r.Marked(2, 1) || r.Marked(1, 1) {
		t.Fatal("Marked mismatch")
	}
	count := make([]int, 3)
	r.CountVector(count)
	if !reflect.DeepEqual(count, []int{1, 2, 0}) {
		t.Fatalf("CountVector = %v", count)
	}
	if got := r.Requesters(1, nil); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Requesters = %v", got)
	}
	if got := r.Requesters(2, nil); len(got) != 0 {
		t.Fatalf("Requesters(2) = %v", got)
	}
	r.Reset()
	if r.Total() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRequestRegisterPanics(t *testing.T) {
	r := NewRequestRegister(2, 2)
	r.Mark(1, 1)
	for name, fn := range map[string]func(){
		"double mark": func() { r.Mark(1, 1) },
		"oob":         func() { r.Mark(2, 0) },
		"bad shape":   func() { NewRequestRegister(0, 2) },
		"short count": func() { r.CountVector(make([]int, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRoundRobinFairRotation(t *testing.T) {
	s := NewRoundRobin(2)
	requesters := []int{0, 1, 2, 3}
	// One grant per slot on λ0: winners must rotate 0,1,2,3,0,…
	var got []int
	for slot := 0; slot < 6; slot++ {
		got = s.Pick(0, requesters, 1, got)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 0, 1}) {
		t.Fatalf("rotation = %v", got)
	}
	// Independent pointer per wavelength.
	if w1 := s.Pick(1, requesters, 1, nil); !reflect.DeepEqual(w1, []int{0}) {
		t.Fatalf("λ1 pointer not independent: %v", w1)
	}
}

func TestRoundRobinPartialRequesters(t *testing.T) {
	s := NewRoundRobin(1)
	// Pointer at 0; requesters {2, 5}: first ≥ 0 is 2.
	if got := s.Pick(0, []int{2, 5}, 1, nil); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("got %v", got)
	}
	// Pointer now 3; requesters {2, 5}: first ≥ 3 is 5, then wraps to 2.
	if got := s.Pick(0, []int{2, 5}, 2, nil); !reflect.DeepEqual(got, []int{5, 2}) {
		t.Fatalf("got %v", got)
	}
	// Pointer now 3 again (last winner 2 → 3); with no requester ≥ 3 it
	// wraps to the start.
	if got := s.Pick(0, []int{1, 2}, 1, nil); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("got %v", got)
	}
}

func TestFixedPriorityFavorsLowFibers(t *testing.T) {
	s := NewFixedPriority()
	if s.Name() != "fixed-priority" {
		t.Fatalf("Name = %q", s.Name())
	}
	requesters := []int{2, 5, 7}
	for i := 0; i < 3; i++ { // stateless: same winners every slot
		got := s.Pick(0, requesters, 2, nil)
		if len(got) != 2 || got[0] != 2 || got[1] != 5 {
			t.Fatalf("winners = %v", got)
		}
	}
}

func TestSelectorsGrantCountAndDistinctness(t *testing.T) {
	selectors := []Selector{NewRoundRobin(4), NewRandom(7), NewFixedPriority()}
	requesters := []int{1, 3, 4, 6, 7}
	for _, s := range selectors {
		for grants := 0; grants <= len(requesters); grants++ {
			got := s.Pick(2, requesters, grants, nil)
			if len(got) != grants {
				t.Fatalf("%s: %d winners, want %d", s.Name(), len(got), grants)
			}
			seen := map[int]bool{}
			valid := map[int]bool{}
			for _, r := range requesters {
				valid[r] = true
			}
			for _, w := range got {
				if seen[w] {
					t.Fatalf("%s: duplicate winner %d", s.Name(), w)
				}
				if !valid[w] {
					t.Fatalf("%s: winner %d not a requester", s.Name(), w)
				}
				seen[w] = true
			}
		}
	}
}

func TestSelectorPanicsOnOverGrant(t *testing.T) {
	for _, s := range []Selector{NewRoundRobin(1), NewRandom(1), NewFixedPriority()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", s.Name())
				}
			}()
			s.Pick(0, []int{1}, 2, nil)
		}()
	}
}

func TestRandomSelectorCoverage(t *testing.T) {
	s := NewRandom(3)
	requesters := []int{0, 1, 2, 3}
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		for _, w := range s.Pick(0, requesters, 1, nil) {
			counts[w]++
		}
	}
	for f, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("fiber %d won %d of 4000; selector skewed: %v", f, c, counts)
		}
	}
}

func datapath(t *testing.T, n int, conv wavelength.Conversion) *Datapath {
	t.Helper()
	d, err := NewDatapath(n, conv)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDatapathCombinerFanIn(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 6, 1, 1)
	d := datapath(t, 4, conv)
	// Circular: every combiner sees N·d = 12 lines (Fig. 1's "Nd inputs").
	for b := 0; b < 6; b++ {
		if got := d.CombinerFanIn(b); got != 12 {
			t.Fatalf("channel %d fan-in = %d, want 12", b, got)
		}
	}
	// Non-circular: edge channels see fewer lines.
	dn := datapath(t, 4, wavelength.MustNew(wavelength.NonCircular, 6, 1, 1))
	if got := dn.CombinerFanIn(0); got != 8 { // λ0, λ1 only
		t.Fatalf("edge fan-in = %d, want 8", got)
	}
	if got := dn.CombinerFanIn(3); got != 12 {
		t.Fatalf("middle fan-in = %d, want 12", got)
	}
}

func TestDatapathRoute(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 6, 1, 1)
	d := datapath(t, 4, conv)
	ok := []Grant{
		{InputFiber: 0, InputWavelength: 0, OutputFiber: 1, OutputChannel: 1},
		{InputFiber: 1, InputWavelength: 0, OutputFiber: 1, OutputChannel: 5}, // wraps
		{InputFiber: 0, InputWavelength: 3, OutputFiber: 2, OutputChannel: 3},
	}
	if err := d.Route(ok); err != nil {
		t.Fatalf("valid routing rejected: %v", err)
	}

	cases := []struct {
		name   string
		grants []Grant
	}{
		{"combiner conflict", []Grant{
			{0, 0, 1, 1}, {2, 2, 1, 1},
		}},
		{"input reuse", []Grant{
			{0, 0, 1, 1}, {0, 0, 2, 0},
		}},
		{"conversion out of reach", []Grant{
			{0, 0, 1, 3},
		}},
		{"fiber out of range", []Grant{
			{9, 0, 1, 1},
		}},
		{"channel out of range", []Grant{
			{0, 9, 1, 1},
		}},
	}
	for _, tc := range cases {
		if err := d.Route(tc.grants); err == nil {
			t.Errorf("%s: violation not detected", tc.name)
		}
	}
}

func TestDatapathValidation(t *testing.T) {
	if _, err := NewDatapath(0, wavelength.MustNew(wavelength.Circular, 6, 1, 1)); err == nil {
		t.Fatal("zero fibers accepted")
	}
	d := datapath(t, 2, wavelength.MustNew(wavelength.Circular, 6, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	d.CombinerFanIn(6)
}
