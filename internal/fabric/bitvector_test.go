package fabric

import (
	"math/rand"
	"reflect"
	"testing"
)

// wordBoundarySizes are the bit widths the word-parallel kernels must get
// right: one below, at, and above each of the first two word boundaries.
var wordBoundarySizes = []int{1, 7, 63, 64, 65, 127, 128, 129, 200}

// checkCanonicalTail fails the test if any bit at position ≥ Len is set in
// the backing words — the invariant every bulk operation must preserve.
func checkCanonicalTail(t *testing.T, v *BitVector) {
	t.Helper()
	if len(v.words) == 0 {
		return
	}
	if ghost := v.words[len(v.words)-1] &^ v.tailMask(); ghost != 0 {
		t.Fatalf("n=%d: ghost bits %#x beyond Len in last word", v.n, ghost)
	}
}

// refBits mirrors a BitVector as a plain []bool for differential checks.
func toBools(v *BitVector) []bool {
	out := make([]bool, v.Len())
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

func TestBitVectorCanonicalTail(t *testing.T) {
	for _, n := range wordBoundarySizes {
		v := NewBitVector(n)
		v.Fill()
		checkCanonicalTail(t, v)
		if got := v.Count(); got != n {
			t.Fatalf("n=%d: Count after Fill = %d", n, got)
		}
		v.SetRange(0, n+100) // clamped
		checkCanonicalTail(t, v)
		if got := v.Count(); got != n {
			t.Fatalf("n=%d: Count after SetRange overshoot = %d", n, got)
		}
		if got := v.NextSet(n - 1); got != n-1 {
			t.Fatalf("n=%d: NextSet(n-1) = %d", n, got)
		}
		if got := v.NextSet(n); got != -1 {
			t.Fatalf("n=%d: NextSet(n) = %d, want -1 (no ghost channel)", n, got)
		}
		o := NewBitVector(n)
		o.Fill()
		v.AndNot(o)
		checkCanonicalTail(t, v)
		if got := v.Count(); got != 0 {
			t.Fatalf("n=%d: Count after AndNot all = %d", n, got)
		}
		// Rotation into a full destination must not spill past Len.
		o.Fill()
		dst := NewBitVector(n)
		o.ShiftRangeInto(dst, 0, n-1, 0)
		o.ShiftRangeInto(dst, 0, n-1, 1)
		o.ShiftRangeInto(dst, 0, n-1, -1)
		checkCanonicalTail(t, dst)
	}
}

func TestBitVectorRangeOpsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range wordBoundarySizes {
		v := NewBitVector(n)
		ref := make([]bool, n)
		for trial := 0; trial < 200; trial++ {
			lo, hi := rng.Intn(n), rng.Intn(n)
			switch trial % 3 {
			case 0:
				v.SetRange(lo, hi)
				for i := lo; i <= hi; i++ {
					ref[i] = true
				}
			case 1:
				v.ClearRange(lo, hi)
				for i := lo; i <= hi; i++ {
					ref[i] = false
				}
			case 2:
				i := rng.Intn(n)
				v.Set(i)
				ref[i] = true
			}
			checkCanonicalTail(t, v)
			if got := toBools(v); !reflect.DeepEqual(got, ref) {
				t.Fatalf("n=%d trial %d: bits diverged from reference", n, trial)
			}
			// CountRange/NextSet against the reference.
			if lo <= hi {
				want := 0
				for i := lo; i <= hi; i++ {
					if ref[i] {
						want++
					}
				}
				if got := v.CountRange(lo, hi); got != want {
					t.Fatalf("n=%d: CountRange(%d,%d) = %d, want %d", n, lo, hi, got, want)
				}
			}
			from := rng.Intn(n + 2)
			want := -1
			for i := from; i < n; i++ {
				if ref[i] {
					want = i
					break
				}
			}
			if got := v.NextSet(from); got != want {
				t.Fatalf("n=%d: NextSet(%d) = %d, want %d", n, from, got, want)
			}
		}
	}
}

func TestBitVectorWordOps(t *testing.T) {
	a := NewBitVector(130)
	b := NewBitVector(130)
	for _, i := range []int{0, 5, 63, 64, 100, 129} {
		a.Set(i)
	}
	for _, i := range []int{5, 64, 128} {
		b.Set(i)
	}
	c := NewBitVector(130)
	c.CopyFrom(a)
	c.AndNot(b)
	var got []int
	c.ForEach(func(i int) { got = append(got, i) })
	if want := []int{0, 63, 100, 129}; !reflect.DeepEqual(got, want) {
		t.Fatalf("AndNot bits = %v, want %v", got, want)
	}
	c.CopyFrom(a)
	c.And(b)
	if got, want := c.Count(), 2; got != want {
		t.Fatalf("And count = %d, want %d", got, want)
	}
	c.Or(a)
	if got, want := c.Count(), a.Count(); got != want {
		t.Fatalf("Or count = %d, want %d", got, want)
	}
	if w := a.Words(); w != 3 {
		t.Fatalf("Words() = %d, want 3", w)
	}
	if a.Word(0)&1 == 0 || a.Word(1)&1 == 0 {
		t.Fatal("Word() does not expose the packed layout")
	}
}

func TestBitVectorForEachInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range wordBoundarySizes {
		v := NewBitVector(n)
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.Set(i)
				ref[i] = true
			}
		}
		for trial := 0; trial < 50; trial++ {
			lo, hi := rng.Intn(n)-1, rng.Intn(n+2)
			var got, want []int
			v.ForEachInRange(lo, hi, func(i int) { got = append(got, i) })
			for i := max(lo, 0); i <= min(hi, n-1); i++ {
				if ref[i] {
					want = append(want, i)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d ForEachInRange(%d,%d) = %v, want %v", n, lo, hi, got, want)
			}
		}
	}
}

func TestShiftRangeIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range wordBoundarySizes {
		src := NewBitVector(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				src.Set(i)
			}
		}
		for trial := 0; trial < 100; trial++ {
			lo, hi := rng.Intn(n), rng.Intn(n)
			delta := rng.Intn(2*n+1) - n
			dst := NewBitVector(n)
			pre := rng.Intn(n)
			dst.Set(pre) // ShiftRangeInto must OR, not overwrite
			ref := make([]bool, n)
			ref[pre] = true
			for i := lo; i <= hi && i < n; i++ {
				if j := i + delta; src.Get(i) && j >= 0 && j < n {
					ref[j] = true
				}
			}
			src.ShiftRangeInto(dst, lo, hi, delta)
			checkCanonicalTail(t, dst)
			if got := toBools(dst); !reflect.DeepEqual(got, ref) {
				t.Fatalf("n=%d: ShiftRangeInto(lo=%d hi=%d delta=%d) diverged", n, lo, hi, delta)
			}
		}
	}
}

// TestRequestersStridedScan cross-checks the word-masked strided Requesters
// against a per-bit reference over randomized shapes, including k values
// around and above the word size.
func TestRequestersStridedScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, shape := range []struct{ n, k int }{
		{1, 1}, {3, 5}, {8, 16}, {16, 63}, {16, 64}, {16, 65}, {5, 128}, {64, 7},
	} {
		r := NewRequestRegister(shape.n, shape.k)
		marked := map[[2]int]bool{}
		for i := 0; i < shape.n*shape.k/3+1; i++ {
			in, w := rng.Intn(shape.n), rng.Intn(shape.k)
			if !marked[[2]int{in, w}] {
				r.Mark(in, w)
				marked[[2]int{in, w}] = true
			}
		}
		for w := 0; w < shape.k; w++ {
			var want []int
			for in := 0; in < shape.n; in++ {
				if marked[[2]int{in, w}] {
					want = append(want, in)
				}
			}
			got := r.Requesters(w, nil)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("N=%d k=%d: Requesters(%d) = %v, want %v", shape.n, shape.k, w, got, want)
			}
		}
	}
}

func TestRequestersPanicsOutOfRange(t *testing.T) {
	r := NewRequestRegister(4, 8)
	for _, w := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Requesters(%d) did not panic", w)
				}
			}()
			r.Requesters(w, nil)
		}()
	}
}

// BenchmarkRequesters pins the strided word-masked scan: the old
// implementation issued one bounds-checked Get per fiber; the rewrite
// skips whole zero words. Sparse is the common case (most fibers idle on a
// given wavelength), dense the worst case.
func BenchmarkRequesters(b *testing.B) {
	for _, bc := range []struct {
		name    string
		n, k    int
		density float64
	}{
		{"N=64,k=64,sparse", 64, 64, 0.05},
		{"N=64,k=64,dense", 64, 64, 0.8},
		{"N=256,k=128,sparse", 256, 128, 0.02},
	} {
		b.Run(bc.name, func(b *testing.B) {
			r := NewRequestRegister(bc.n, bc.k)
			rng := rand.New(rand.NewSource(1))
			for in := 0; in < bc.n; in++ {
				for w := 0; w < bc.k; w++ {
					if rng.Float64() < bc.density {
						r.Mark(in, w)
					}
				}
			}
			dst := make([]int, 0, bc.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for w := 0; w < bc.k; w++ {
					dst = r.Requesters(w, dst[:0])
				}
			}
		})
	}
}
