package fabric

import (
	"fmt"
)

// HardwareFirstAvailable is a cycle-level model of the Section III
// hardware implementation of the First Available Algorithm: "all this can
// be implemented in hardware and the execution time of each step would be
// a constant. Thus, the time complexity of this algorithm is O(k)."
//
// The unit owns one output fiber's Nk-bit request register. Each clock
// cycle handles one output channel b (k cycles per slot):
//
//  1. a priority encoder finds the lowest input wavelength within b's
//     reach [b−f, b+e] that still has a pending request (a per-wavelength
//     presence line, the OR of that wavelength's N register bits);
//  2. the per-wavelength round-robin selector picks which input fiber's
//     bit is consumed (the fairness procedure the paper cites);
//  3. the chosen register bit is cleared and the grant latched.
//
// The model counts cycles so tests can pin the O(k) claim, and its grants
// are cross-checked against the count-vector algorithm in package core:
// same matching size, physically identified winners.
type HardwareFirstAvailable struct {
	n, k, e, f int
	reg        *RequestRegister
	sel        Selector
	pending    []int // per-wavelength pending-request count (presence lines)
	reqScratch []int
	cycles     int64
}

// NewHardwareFirstAvailable builds the unit for an N-fiber interconnect
// with k wavelengths and non-circular conversion reach (e, f). Circular
// conversion needs the breaking machinery and is handled at the
// algorithmic layer (core.BreakFirstAvailable / the d-unit parallel
// variant), not by this single-sweep datapath.
func NewHardwareFirstAvailable(n, k, e, f int, sel Selector) (*HardwareFirstAvailable, error) {
	if n <= 0 || k <= 0 || e < 0 || f < 0 || e+f+1 > k {
		return nil, fmt.Errorf("fabric: invalid hardware shape N=%d k=%d e=%d f=%d", n, k, e, f)
	}
	if sel == nil {
		sel = NewRoundRobin(k)
	}
	return &HardwareFirstAvailable{
		n: n, k: k, e: e, f: f,
		reg:     NewRequestRegister(n, k),
		sel:     sel,
		pending: make([]int, k),
	}, nil
}

// Register exposes the unit's request register for the marking phase at
// the start of a slot.
func (h *HardwareFirstAvailable) Register() *RequestRegister { return h.reg }

// Cycles reports the total clock cycles consumed since construction.
func (h *HardwareFirstAvailable) Cycles() int64 { return h.cycles }

// Schedule runs one slot: k cycles over the output channels, consuming
// register bits. occupied (len k or nil) marks channels unavailable
// (Section V). It appends the slot's grants to dst — each the output
// channel, the input wavelength and the selected input fiber — and resets
// the register for the next slot.
func (h *HardwareFirstAvailable) Schedule(occupied []bool, dst []Grant) ([]Grant, error) {
	if occupied != nil && len(occupied) != h.k {
		return dst, fmt.Errorf("fabric: occupied length %d != k %d", len(occupied), h.k)
	}
	h.reg.CountVector(h.pending)
	for b := 0; b < h.k; b++ {
		h.cycles++ // one cycle per output channel, occupied or not
		if occupied != nil && occupied[b] {
			continue
		}
		lo := b - h.f
		if lo < 0 {
			lo = 0
		}
		hi := b + h.e
		if hi > h.k-1 {
			hi = h.k - 1
		}
		// Priority encoder: lowest wavelength in [lo, hi] with a pending
		// request. (A hardware encoder resolves this in one cycle; the
		// loop models its input lines.)
		w := -1
		for x := lo; x <= hi; x++ {
			if h.pending[x] > 0 {
				w = x
				break
			}
		}
		if w < 0 {
			continue
		}
		// Fair selection among the wavelength's requesting fibers, then
		// consume that fiber's register bit.
		h.reqScratch = h.reg.Requesters(w, h.reqScratch[:0])
		winner := h.sel.Pick(w, h.reqScratch, 1, nil)
		fiber := winner[0]
		h.reg.bits.Clear(fiber*h.k + w)
		h.pending[w]--
		dst = append(dst, Grant{
			InputFiber:      fiber,
			InputWavelength: w,
			OutputChannel:   b,
		})
	}
	h.reg.Reset()
	return dst, nil
}
