package fabric

import (
	"fmt"

	"wdmsched/internal/wavelength"
)

// Datapath models the physical interconnect of the paper's Fig. 1. An
// input fiber enters a demultiplexer that separates its k wavelength
// channels; the switching fabric connects each input channel toward output
// fibers; each output wavelength channel has an optical combiner with N·d
// input lines of which at most one may carry a signal at a time; the
// combiner output passes through a limited range wavelength converter and
// the k converted channels are multiplexed onto the output fiber.
//
// Datapath.Route checks that a slot's grants are physically realizable:
// combiner exclusivity, converter reach, demux unicast (each input channel
// drives at most one output channel), and that a combiner only receives
// from input channels wired to it (those whose wavelength can convert to
// the combiner's output wavelength — the "Nd inputs" of Fig. 1).
type Datapath struct {
	n    int
	conv wavelength.Conversion
}

// NewDatapath builds the fabric model for an N×N interconnect whose output
// side carries converters with the given conversion model.
func NewDatapath(n int, conv wavelength.Conversion) (*Datapath, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fabric: invalid fiber count %d", n)
	}
	return &Datapath{n: n, conv: conv}, nil
}

// N returns the number of fibers per side.
func (d *Datapath) N() int { return d.n }

// Conversion returns the converter model.
func (d *Datapath) Conversion() wavelength.Conversion { return d.conv }

// CombinerFanIn returns the number of input lines wired to each combiner:
// N·d in the paper's architecture (one line per input fiber per wavelength
// convertible to the combiner's channel). For non-circular conversion,
// combiners near the band edges have fewer lines.
func (d *Datapath) CombinerFanIn(outputChannel int) int {
	k := d.conv.K()
	if outputChannel < 0 || outputChannel >= k {
		panic(fmt.Sprintf("fabric: channel %d out of range %d", outputChannel, k))
	}
	lines := 0
	for w := 0; w < k; w++ {
		if d.conv.CanConvert(wavelength.Wavelength(w), wavelength.Wavelength(outputChannel)) {
			lines++
		}
	}
	return lines * d.n
}

// Grant is one switched connection in a slot: input channel (InputFiber,
// InputWavelength) drives output channel (OutputFiber, OutputChannel).
type Grant struct {
	InputFiber      int
	InputWavelength int
	OutputFiber     int
	OutputChannel   int
}

// Route validates a full slot's grants across the whole interconnect and
// returns per-output-fiber combiner occupancy counts (diagnostic). It
// reports the first violation found.
func (d *Datapath) Route(grants []Grant) error {
	k := d.conv.K()
	inUse := make(map[[2]int]int, len(grants))    // input channel → grant index
	combiner := make(map[[2]int]int, len(grants)) // output channel → grant index
	for gi, g := range grants {
		if g.InputFiber < 0 || g.InputFiber >= d.n || g.OutputFiber < 0 || g.OutputFiber >= d.n {
			return fmt.Errorf("fabric: grant %d fiber out of range: %+v", gi, g)
		}
		if g.InputWavelength < 0 || g.InputWavelength >= k || g.OutputChannel < 0 || g.OutputChannel >= k {
			return fmt.Errorf("fabric: grant %d channel out of range: %+v", gi, g)
		}
		// Demux unicast: an input wavelength channel carries one signal.
		in := [2]int{g.InputFiber, g.InputWavelength}
		if prev, dup := inUse[in]; dup {
			return fmt.Errorf("fabric: input channel (fiber %d, λ%d) driven by grants %d and %d",
				g.InputFiber, g.InputWavelength, prev, gi)
		}
		inUse[in] = gi
		// Combiner exclusivity: only one of the N·d combiner inputs may
		// carry a signal at a time.
		out := [2]int{g.OutputFiber, g.OutputChannel}
		if prev, dup := combiner[out]; dup {
			return fmt.Errorf("fabric: combiner (fiber %d, channel %d) fed by grants %d and %d",
				g.OutputFiber, g.OutputChannel, prev, gi)
		}
		combiner[out] = gi
		// Converter reach: the combiner's converter must be able to shift
		// the incoming wavelength to the channel's wavelength — equivalently
		// the input channel must be among the combiner's wired lines.
		if !d.conv.CanConvert(wavelength.Wavelength(g.InputWavelength), wavelength.Wavelength(g.OutputChannel)) {
			return fmt.Errorf("fabric: grant %d needs conversion λ%d→λ%d beyond %v",
				gi, g.InputWavelength, g.OutputChannel, d.conv)
		}
	}
	return nil
}
