// Package fabric models the hardware side of the WDM interconnect of the
// paper's Fig. 1: the Nk-bit request registers the scheduling hardware
// reads (Section II-B), the fair tie-break selectors among same-wavelength
// requests (Section III cites round-robin/random selection à la iSLIP/PIM),
// and the physical datapath — demultiplexers, switching fabric crosspoints,
// Nd-input combiners, limited range converters, multiplexers — against
// which a schedule's physical feasibility is checked.
package fabric

import (
	"fmt"
	"math/bits"
)

// BitVector is a fixed-width bit set. The paper implements the left side of
// each output fiber's request graph as an Nk×1 binary vector ("an Nk bit
// register"), with bit (i·k + j) set when λj on input fiber i is destined
// for this output fiber; BitVector is that register.
//
// The vector is stored as packed little-endian uint64 words so schedulers
// can run word-parallel kernels over it (64 channels per instruction). All
// operations maintain the canonical-tail invariant: bits at positions ≥ n
// in the last word are always zero, so Count, NextSet and word-level
// consumers never observe ghost channels when n is not a multiple of 64.
type BitVector struct {
	words []uint64
	n     int
}

// wordBits is the width of one storage word.
const wordBits = 64

// NewBitVector returns an all-zero vector of n bits.
func NewBitVector(n int) *BitVector {
	if n < 0 {
		panic("fabric: negative BitVector size")
	}
	return &BitVector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (v *BitVector) Len() int { return v.n }

// Words returns the number of storage words, ⌈n/64⌉.
func (v *BitVector) Words() int { return len(v.words) }

// Word returns the i-th 64-bit word: bit b of Word(i) is vector bit
// i·64 + b. High bits beyond Len in the last word are always zero
// (the canonical-tail invariant).
func (v *BitVector) Word(i int) uint64 { return v.words[i] }

// SetWord overwrites the i-th 64-bit word. Bits beyond Len in the last
// word are masked off, preserving the canonical-tail invariant, so bulk
// packers may store a full accumulator word unconditionally.
func (v *BitVector) SetWord(i int, w uint64) {
	if i == len(v.words)-1 {
		w &= v.tailMask()
	}
	v.words[i] = w
}

// tailMask returns the mask of valid bits in the last word, or an
// all-ones mask when n is a multiple of 64 (and for n == 0, where there
// is no last word to mask).
func (v *BitVector) tailMask() uint64 {
	if r := uint(v.n) & 63; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// clampTail re-establishes the canonical-tail invariant after a bulk word
// operation that may have set bits at positions ≥ n in the last word.
func (v *BitVector) clampTail() {
	if len(v.words) > 0 {
		v.words[len(v.words)-1] &= v.tailMask()
	}
}

func (v *BitVector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("fabric: bit %d out of range %d", i, v.n))
	}
}

func (v *BitVector) checkSame(o *BitVector) {
	if v.n != o.n {
		panic(fmt.Sprintf("fabric: bit vector size mismatch %d != %d", v.n, o.n))
	}
}

// Set sets bit i.
func (v *BitVector) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (v *BitVector) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports bit i.
func (v *BitVector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Reset clears every bit.
func (v *BitVector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Fill sets every bit in [0, n).
func (v *BitVector) Fill() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.clampTail()
}

// CopyFrom overwrites v with o. Both must have the same length.
func (v *BitVector) CopyFrom(o *BitVector) {
	v.checkSame(o)
	copy(v.words, o.words)
}

// And intersects v with o in place, word-parallel.
func (v *BitVector) And(o *BitVector) {
	v.checkSame(o)
	for i, w := range o.words {
		v.words[i] &= w
	}
}

// Or unions o into v, word-parallel.
func (v *BitVector) Or(o *BitVector) {
	v.checkSame(o)
	for i, w := range o.words {
		v.words[i] |= w
	}
}

// AndNot clears every bit of v that is set in o (v ← v ∧ ¬o),
// word-parallel. This is the §V occupied-channel reduction as one
// instruction per 64 channels: availability = requests ∧ ¬occupied.
func (v *BitVector) AndNot(o *BitVector) {
	v.checkSame(o)
	for i, w := range o.words {
		v.words[i] &^= w
	}
}

// SetRange sets bits [lo, hi] (inclusive, clamped to the vector) using
// word-masked stores.
func (v *BitVector) SetRange(lo, hi int) {
	lo, hi, ok := v.clampRange(lo, hi)
	if !ok {
		return
	}
	lw, hw := lo>>6, hi>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi)&63)
	if lw == hw {
		v.words[lw] |= loMask & hiMask
		return
	}
	v.words[lw] |= loMask
	for i := lw + 1; i < hw; i++ {
		v.words[i] = ^uint64(0)
	}
	v.words[hw] |= hiMask
}

// ClearRange clears bits [lo, hi] (inclusive, clamped to the vector) using
// word-masked stores.
func (v *BitVector) ClearRange(lo, hi int) {
	lo, hi, ok := v.clampRange(lo, hi)
	if !ok {
		return
	}
	lw, hw := lo>>6, hi>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi)&63)
	if lw == hw {
		v.words[lw] &^= loMask & hiMask
		return
	}
	v.words[lw] &^= loMask
	for i := lw + 1; i < hw; i++ {
		v.words[i] = 0
	}
	v.words[hw] &^= hiMask
}

// clampRange clips [lo, hi] to [0, n) and reports whether anything is left.
func (v *BitVector) clampRange(lo, hi int) (int, int, bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > v.n-1 {
		hi = v.n - 1
	}
	return lo, hi, lo <= hi
}

// Count returns the number of set bits.
func (v *BitVector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [lo, hi] (inclusive,
// clamped), popcounting whole words between the masked ends.
func (v *BitVector) CountRange(lo, hi int) int {
	lo, hi, ok := v.clampRange(lo, hi)
	if !ok {
		return 0
	}
	lw, hw := lo>>6, hi>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi)&63)
	if lw == hw {
		return bits.OnesCount64(v.words[lw] & loMask & hiMask)
	}
	c := bits.OnesCount64(v.words[lw]&loMask) + bits.OnesCount64(v.words[hw]&hiMask)
	for i := lw + 1; i < hw; i++ {
		c += bits.OnesCount64(v.words[i])
	}
	return c
}

// NextSet returns the index of the first set bit at position ≥ from, or −1
// if there is none. from may be ≥ Len (returns −1) but not negative; a
// masked trailing-zeros scan costs O(1) per word touched.
func (v *BitVector) NextSet(from int) int {
	if from < 0 {
		panic(fmt.Sprintf("fabric: NextSet from negative bit %d", from))
	}
	if from >= v.n {
		return -1
	}
	wi := from >> 6
	w := v.words[wi] >> (uint(from) & 63)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// ShiftRangeInto ORs bits [lo, hi] of v, shifted by delta positions, into
// dst: for every set bit i in [lo, hi] with i+delta inside dst, bit
// i+delta of dst is set. The copy is word-parallel (two shifts per word).
// Used to build rotated views of circular request/occupancy state: a ring
// rotation is two ShiftRangeInto calls on a Reset destination.
func (v *BitVector) ShiftRangeInto(dst *BitVector, lo, hi, delta int) {
	lo, hi, ok := v.clampRange(lo, hi)
	if !ok {
		return
	}
	// Clip the destination window [lo+delta, hi+delta] to dst.
	if lo+delta < 0 {
		lo = -delta
	}
	if hi+delta > dst.n-1 {
		hi = dst.n - 1 - delta
	}
	if lo > hi {
		return
	}
	for i := lo; i <= hi; {
		wi := i >> 6
		// Bits [i, wordEnd] of this source word, aligned down to bit 0.
		w := v.words[wi] >> (uint(i) & 63)
		span := wordBits - i&63
		if rem := hi - i + 1; span > rem {
			span = rem
			w &= (1 << uint(span)) - 1
		}
		j := i + delta
		dw := j >> 6
		off := uint(j) & 63
		dst.words[dw] |= w << off
		if off != 0 && int(off)+span > wordBits && dw+1 < len(dst.words) {
			dst.words[dw+1] |= w >> (wordBits - off)
		}
		i += span
	}
	dst.clampTail()
}

// ForEach calls fn for every set bit in ascending order.
func (v *BitVector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// ForEachInRange calls fn for every set bit in [lo, hi] (inclusive,
// clamped) in ascending order, iterating word-masked so zero words cost
// one load each.
func (v *BitVector) ForEachInRange(lo, hi int, fn func(i int)) {
	lo, hi, ok := v.clampRange(lo, hi)
	if !ok {
		return
	}
	lw, hw := lo>>6, hi>>6
	for wi := lw; wi <= hw; wi++ {
		w := v.words[wi]
		if wi == lw {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hw {
			w &= ^uint64(0) >> (63 - uint(hi)&63)
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// RequestRegister is one output fiber's Nk-bit request register plus the
// derived per-wavelength request lists the selector consumes.
type RequestRegister struct {
	n, k int
	bits *BitVector
}

// NewRequestRegister builds a register for an N×N interconnect with k
// wavelengths per fiber.
func NewRequestRegister(n, k int) *RequestRegister {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("fabric: invalid register shape N=%d k=%d", n, k))
	}
	return &RequestRegister{n: n, k: k, bits: NewBitVector(n * k)}
}

// Mark records that λw on input fiber in is destined for this output fiber
// in the current slot. Marking the same channel twice panics: one input
// wavelength channel carries at most one packet per slot.
func (r *RequestRegister) Mark(in, w int) {
	if in < 0 || in >= r.n || w < 0 || w >= r.k {
		panic(fmt.Sprintf("fabric: Mark(%d,%d) out of %dx%d", in, w, r.n, r.k))
	}
	i := in*r.k + w
	if r.bits.Get(i) {
		panic(fmt.Sprintf("fabric: channel (fiber %d, λ%d) marked twice in one slot", in, w))
	}
	r.bits.Set(i)
}

// Marked reports whether (in, w) is requesting.
func (r *RequestRegister) Marked(in, w int) bool {
	return r.bits.Get(in*r.k + w)
}

// Reset clears the register for the next slot.
func (r *RequestRegister) Reset() { r.bits.Reset() }

// CountVector fills count (len k) with the per-wavelength request counts —
// the request vector the scheduler consumes.
func (r *RequestRegister) CountVector(count []int) {
	if len(count) != r.k {
		panic(fmt.Sprintf("fabric: count length %d != k %d", len(count), r.k))
	}
	for w := range count {
		count[w] = 0
	}
	r.bits.ForEach(func(i int) {
		count[i%r.k]++
	})
}

// Requesters appends the input fibers requesting on wavelength w, in fiber
// order, to dst and returns it.
//
// The scan is strided and word-masked: bit (in·k + w) is tested with one
// incrementally maintained word/bit index per fiber (no per-bit bounds
// check), and an all-zero register word skips every fiber whose bit falls
// inside it in one step — the common sparse-register case costs O(Nk/64)
// word loads instead of N indexed Get calls.
func (r *RequestRegister) Requesters(w int, dst []int) []int {
	if w < 0 || w >= r.k {
		panic(fmt.Sprintf("fabric: Requesters wavelength %d out of k=%d", w, r.k))
	}
	words := r.bits.words
	idx := w
	for in := 0; in < r.n; {
		word := words[idx>>6]
		if word == 0 {
			// Skip every stride landing in this zero word: the next
			// candidate bit at or beyond the word boundary.
			skip := (wordBits - idx&63 + r.k - 1) / r.k
			in += skip
			idx += skip * r.k
			continue
		}
		if word&(1<<(uint(idx)&63)) != 0 {
			dst = append(dst, in)
		}
		in++
		idx += r.k
	}
	return dst
}

// Total returns the number of pending requests.
func (r *RequestRegister) Total() int { return r.bits.Count() }
