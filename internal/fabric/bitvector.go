// Package fabric models the hardware side of the WDM interconnect of the
// paper's Fig. 1: the Nk-bit request registers the scheduling hardware
// reads (Section II-B), the fair tie-break selectors among same-wavelength
// requests (Section III cites round-robin/random selection à la iSLIP/PIM),
// and the physical datapath — demultiplexers, switching fabric crosspoints,
// Nd-input combiners, limited range converters, multiplexers — against
// which a schedule's physical feasibility is checked.
package fabric

import "fmt"

// BitVector is a fixed-width bit set. The paper implements the left side of
// each output fiber's request graph as an Nk×1 binary vector ("an Nk bit
// register"), with bit (i·k + j) set when λj on input fiber i is destined
// for this output fiber; BitVector is that register.
type BitVector struct {
	words []uint64
	n     int
}

// NewBitVector returns an all-zero vector of n bits.
func NewBitVector(n int) *BitVector {
	if n < 0 {
		panic("fabric: negative BitVector size")
	}
	return &BitVector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (v *BitVector) Len() int { return v.n }

func (v *BitVector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("fabric: bit %d out of range %d", i, v.n))
	}
}

// Set sets bit i.
func (v *BitVector) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (v *BitVector) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports bit i.
func (v *BitVector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Reset clears every bit.
func (v *BitVector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Count returns the number of set bits.
func (v *BitVector) Count() int {
	c := 0
	for _, w := range v.words {
		c += popcount(w)
	}
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (v *BitVector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := trailingZeros(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

func popcount(x uint64) int {
	// Hacker's Delight bit twiddling; avoids importing math/bits to keep
	// the hardware model dependency-free at the instruction level it
	// mirrors.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

func trailingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// RequestRegister is one output fiber's Nk-bit request register plus the
// derived per-wavelength request lists the selector consumes.
type RequestRegister struct {
	n, k int
	bits *BitVector
}

// NewRequestRegister builds a register for an N×N interconnect with k
// wavelengths per fiber.
func NewRequestRegister(n, k int) *RequestRegister {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("fabric: invalid register shape N=%d k=%d", n, k))
	}
	return &RequestRegister{n: n, k: k, bits: NewBitVector(n * k)}
}

// Mark records that λw on input fiber in is destined for this output fiber
// in the current slot. Marking the same channel twice panics: one input
// wavelength channel carries at most one packet per slot.
func (r *RequestRegister) Mark(in, w int) {
	if in < 0 || in >= r.n || w < 0 || w >= r.k {
		panic(fmt.Sprintf("fabric: Mark(%d,%d) out of %dx%d", in, w, r.n, r.k))
	}
	i := in*r.k + w
	if r.bits.Get(i) {
		panic(fmt.Sprintf("fabric: channel (fiber %d, λ%d) marked twice in one slot", in, w))
	}
	r.bits.Set(i)
}

// Marked reports whether (in, w) is requesting.
func (r *RequestRegister) Marked(in, w int) bool {
	return r.bits.Get(in*r.k + w)
}

// Reset clears the register for the next slot.
func (r *RequestRegister) Reset() { r.bits.Reset() }

// CountVector fills count (len k) with the per-wavelength request counts —
// the request vector the scheduler consumes.
func (r *RequestRegister) CountVector(count []int) {
	if len(count) != r.k {
		panic(fmt.Sprintf("fabric: count length %d != k %d", len(count), r.k))
	}
	for w := range count {
		count[w] = 0
	}
	r.bits.ForEach(func(i int) {
		count[i%r.k]++
	})
}

// Requesters appends the input fibers requesting on wavelength w, in fiber
// order, to dst and returns it.
func (r *RequestRegister) Requesters(w int, dst []int) []int {
	for in := 0; in < r.n; in++ {
		if r.bits.Get(in*r.k + w) {
			dst = append(dst, in)
		}
	}
	return dst
}

// Total returns the number of pending requests.
func (r *RequestRegister) Total() int { return r.bits.Count() }
