package cluster

import (
	"errors"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"wdmsched/internal/metrics"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// buildRawFrame composes a whole wire frame with an arbitrary version
// byte — the v1-peer simulator for the version-negotiation tests.
func buildRawFrame(version uint8, mt msgType, payload []byte) []byte {
	b := putU16(nil, wireMagic)
	b = append(b, version, byte(mt))
	b = putU32(b, uint32(len(payload)))
	b = append(b, payload...)
	return putU32(b, crc32.ChecksumIEEE(payload))
}

func testConv(t *testing.T) wavelength.Conversion {
	t.Helper()
	return wavelength.MustNew(wavelength.Circular, 4, 1, 1)
}

// TestControllerDialFailure: an unreachable node must fail NewController
// after DialTimeout with the dial error, not hang.
func TestControllerDialFailure(t *testing.T) {
	_, err := NewController(ControllerConfig{
		Addrs:       []string{"127.0.0.1:1"}, // reserved port, nothing listens
		N:           2,
		Conv:        testConv(t),
		Scheduler:   "exact",
		DialTimeout: 200 * time.Millisecond,
		RPCTimeout:  100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("controller connected to a dead address")
	}
	if !strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Fatalf("dial error does not name the node: %v", err)
	}
}

// TestRetryDelayBounds pins the backoff/jitter contract: attempt n waits
// at least base·2^(n−1) and at most twice that.
func TestRetryDelayBounds(t *testing.T) {
	rng := traffic.NewRNG(1)
	base := 2 * time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		lo := base << (attempt - 1)
		hi := 2 * lo
		for i := 0; i < 200; i++ {
			d := retryDelay(rng, base, attempt)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	// The clamp keeps absurd attempt numbers from overflowing the shift.
	if d := retryDelay(rng, base, 100); d <= 0 {
		t.Fatalf("clamped delay %v not positive", d)
	}
}

// TestTransportDeadlineExpiry: a read past its deadline must surface a
// net.Error timeout (what the controller counts as a deadline miss).
func TestTransportDeadlineExpiry(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tr := newTransport(c1)
	if err := tr.setReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, _, err := tr.recv()
	if err == nil {
		t.Fatal("read with no peer data returned")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("expected a timeout, got %v", err)
	}
}

// TestTransportFrameCounters: each direction's byte and frame counters
// must track exactly what crossed the wire.
func TestTransportFrameCounters(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	a, b := newTransport(c1), newTransport(c2)
	var aOut, aOutBytes, bIn, bInBytes metrics.Counter
	a.framesOut, a.bytesOut = &aOut, &aOutBytes
	b.framesIn, b.bytesIn = &bIn, &bInBytes
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			if _, _, err := b.recv(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := a.send(msgPing, putU64(nil, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if aOut.Value() != 3 || bIn.Value() != 3 {
		t.Fatalf("frame counters: sent %d received %d, want 3 and 3", aOut.Value(), bIn.Value())
	}
	if aOutBytes.Value() != bInBytes.Value() || aOutBytes.Value() == 0 {
		t.Fatalf("byte counters diverged: sent %d received %d", aOutBytes.Value(), bInBytes.Value())
	}
}

// TestControllerRedialsAfterTeardown: a listener that tears down the first
// connections before serving properly must not defeat the controller's
// dial retry loop.
func TestControllerRedialsAfterTeardown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	node := NewNode(NodeConfig{})
	go func() {
		// First two sessions die immediately — mid-handshake teardown.
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
		node.Serve(ln)
	}()
	defer node.Close()
	ctrl, err := NewController(ControllerConfig{
		Addrs:       []string{ln.Addr().String()},
		N:           2,
		Conv:        testConv(t),
		Scheduler:   "exact",
		DialTimeout: 5 * time.Second,
		RPCTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("controller never recovered from torn-down dials: %v", err)
	}
	ctrl.Close()
}

// TestVersionMismatchControllerAgainstV1Node: a v2 controller meeting a
// node that answers in protocol v1 must fail fast — well before
// DialTimeout — with an error naming both versions.
func TestVersionMismatchControllerAgainstV1Node(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				// A v1 node: swallow whatever arrives and answer with a
				// v1-framed hello-ack.
				buf := make([]byte, 1024)
				if _, err := c.Read(buf); err != nil {
					return
				}
				c.Write(buildRawFrame(1, msgHelloAck, putU64(nil, 0)))
				time.Sleep(time.Second)
			}(c)
		}
	}()
	start := time.Now()
	_, err = NewController(ControllerConfig{
		Addrs:       []string{ln.Addr().String()},
		N:           2,
		Conv:        testConv(t),
		Scheduler:   "exact",
		DialTimeout: 30 * time.Second, // fail-fast must not wait for this
		RPCTimeout:  500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("v2 controller accepted a v1 node")
	}
	var verr *VersionError
	if !errors.As(err, &verr) {
		t.Fatalf("error is not a VersionError: %v", err)
	}
	if verr.Peer != 1 || verr.Local != wireVersion {
		t.Fatalf("VersionError{Peer: %d, Local: %d}, want {1, %d}", verr.Peer, verr.Local, wireVersion)
	}
	for _, want := range []string{"v1", "v2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %s", err, want)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("version mismatch took %v to surface; fail-fast path broken", elapsed)
	}
}

// TestVersionMismatchV1ControllerAgainstNode: a real node receiving a
// v1-framed hello must reply with an error frame stamped v1 — so the old
// controller can decode it — whose message names both versions.
func TestVersionMismatchV1ControllerAgainstNode(t *testing.T) {
	addr, _ := startNode(t, "tcp")
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(buildRawFrame(1, msgHello, putU64(nil, 42))); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(c, hdr); err != nil {
		t.Fatalf("node sent no reply: %v", err)
	}
	if hdr[2] != 1 {
		t.Fatalf("rejection framed as v%d, want v1 (the peer's version)", hdr[2])
	}
	if msgType(hdr[3]) != msgError {
		t.Fatalf("rejection type %v, want %v", msgType(hdr[3]), msgError)
	}
	n := int(uint32(hdr[4])<<24 | uint32(hdr[5])<<16 | uint32(hdr[6])<<8 | uint32(hdr[7]))
	body := make([]byte, n+crcLen)
	if _, err := io.ReadFull(c, body); err != nil {
		t.Fatal(err)
	}
	r := reader{b: body[:n]}
	r.u64() // seq
	msg := r.str()
	if r.Err() != nil {
		t.Fatalf("error payload malformed: %v", r.Err())
	}
	for _, want := range []string{"v1", "v2"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("rejection %q does not name %s", msg, want)
		}
	}
	// The session must be closed after the rejection.
	if _, err := io.ReadFull(c, hdr); err == nil {
		t.Fatal("node kept the session open after a version mismatch")
	}
}
