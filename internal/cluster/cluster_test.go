package cluster

import (
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"wdmsched/internal/core"
	"wdmsched/internal/fault"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// startNode launches a node on an ephemeral listener and returns its
// dial address ("host:port" or "unix:/path").
func startNode(t *testing.T, network string) (string, *Node) {
	t.Helper()
	var ln net.Listener
	var addr string
	var err error
	if network == "unix" {
		path := filepath.Join(t.TempDir(), "node.sock")
		ln, err = net.Listen("unix", path)
		addr = "unix:" + path
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err == nil {
			addr = ln.Addr().String()
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	// Every test node runs with its own telemetry registry and span tracer
	// attached, so the equivalence suites double as proof that node-side
	// observability never changes the results.
	node := NewNode(NodeConfig{
		Telemetry: telemetry.NewRegistry(),
		Spans:     telemetry.NewSpanTracer(1, 1<<12),
	})
	go node.Serve(ln)
	t.Cleanup(func() { node.Close() })
	return addr, node
}

// clusterRun simulates cfg once, optionally through a controller over the
// given node addresses.
func clusterRun(t *testing.T, cfg interconnect.Config, ccfg *ControllerConfig, load float64, slots int) *interconnect.Stats {
	t.Helper()
	if ccfg != nil {
		ccfg.N = cfg.N
		ccfg.Conv = cfg.Conv
		ccfg.Scheduler = cfg.Scheduler
		ctrl, err := NewController(*ccfg)
		if err != nil {
			t.Fatal(err)
		}
		defer ctrl.Close()
		cfg.Remote = ctrl
	}
	sw, err := interconnect.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.NewBernoulli(traffic.Config{
		N: cfg.N, K: cfg.Conv.K(), Seed: cfg.Seed + 1,
		Hold: traffic.HoldingTime{Mean: 2},
	}, load)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, slots)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// requireStatsEqual compares every traffic-level statistic of two runs —
// the keystone property: a cluster run must be byte-identical to the
// in-process engines, faults or not.
func requireStatsEqual(t *testing.T, label string, a, b *interconnect.Stats) {
	t.Helper()
	if a.Slots != b.Slots ||
		a.Offered.Value() != b.Offered.Value() ||
		a.Granted.Value() != b.Granted.Value() ||
		a.InputBlocked.Value() != b.InputBlocked.Value() ||
		a.OutputDropped.Value() != b.OutputDropped.Value() ||
		a.Preempted.Value() != b.Preempted.Value() ||
		a.BusyChannelSlots.Value() != b.BusyChannelSlots.Value() {
		t.Fatalf("%s: counters diverged: {o=%d g=%d ib=%d od=%d p=%d bs=%d} vs {o=%d g=%d ib=%d od=%d p=%d bs=%d}",
			label,
			a.Offered.Value(), a.Granted.Value(), a.InputBlocked.Value(),
			a.OutputDropped.Value(), a.Preempted.Value(), a.BusyChannelSlots.Value(),
			b.Offered.Value(), b.Granted.Value(), b.InputBlocked.Value(),
			b.OutputDropped.Value(), b.Preempted.Value(), b.BusyChannelSlots.Value())
	}
	for f := range a.PerInputGranted {
		if a.PerInputGranted[f] != b.PerInputGranted[f] {
			t.Fatalf("%s: per-input grants diverged at fiber %d: %d vs %d",
				label, f, a.PerInputGranted[f], b.PerInputGranted[f])
		}
	}
	for c := range a.PerChannelBusy {
		if a.PerChannelBusy[c] != b.PerChannelBusy[c] {
			t.Fatalf("%s: per-channel busy diverged at channel %d: %d vs %d",
				label, c, a.PerChannelBusy[c], b.PerChannelBusy[c])
		}
	}
	for v := 0; v <= len(a.PerChannelBusy); v++ {
		if a.MatchSizes.Bucket(v) != b.MatchSizes.Bucket(v) {
			t.Fatalf("%s: match-size histogram diverged at %d: %d vs %d",
				label, v, a.MatchSizes.Bucket(v), b.MatchSizes.Bucket(v))
		}
	}
	if (a.Fault != nil) != (b.Fault != nil) {
		t.Fatalf("%s: fault stats presence diverged", label)
	}
	if a.Fault != nil {
		if a.Fault.LostGrants.Value() != b.Fault.LostGrants.Value() ||
			a.Fault.KilledConnections.Value() != b.Fault.KilledConnections.Value() {
			t.Fatalf("%s: fault accounting diverged: lost %d vs %d, killed %d vs %d",
				label, a.Fault.LostGrants.Value(), b.Fault.LostGrants.Value(),
				a.Fault.KilledConnections.Value(), b.Fault.KilledConnections.Value())
		}
	}
}

// TestClusterEquivalence is the keystone gate: the networked runtime must
// reproduce the sequential engine's statistics exactly, across schedulers,
// disturb mode, transports, and channel-fault masking.
func TestClusterEquivalence(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 8, 1, 1)
	a1, _ := startNode(t, "tcp")
	a2, _ := startNode(t, "tcp")
	a3, _ := startNode(t, "unix")
	addrs := []string{a1, a2, a3}

	for _, sched := range []string{"exact", "fast", "shortest-edge"} {
		for _, disturb := range []bool{false, true} {
			base := interconnect.Config{
				N: 5, Conv: conv, Scheduler: sched, Seed: 7, Disturb: disturb,
			}
			label := sched
			if disturb {
				label += "+disturb"
			}
			want := clusterRun(t, base, nil, 0.9, 60)
			// Every cluster run is traced: results must stay byte-identical
			// with span recording on.
			spans := telemetry.NewSpanTracer(1, 1<<12)
			got := clusterRun(t, base, &ControllerConfig{Addrs: addrs, Seed: 7, Spans: spans}, 0.9, 60)
			requireStatsEqual(t, label, want, got)
			if got.Cluster == nil {
				t.Fatalf("%s: cluster stats missing", label)
			}
			if got.Cluster.LocalFallbackItems.Value() != 0 {
				t.Fatalf("%s: healthy cluster fell back %d times",
					label, got.Cluster.LocalFallbackItems.Value())
			}
			if got.Cluster.RemoteItems.Value() == 0 {
				t.Fatalf("%s: no remote scheduling happened", label)
			}
			if spans.Emitted() == 0 {
				t.Fatalf("%s: traced run emitted no spans", label)
			}
			seen := map[telemetry.SpanStage]bool{}
			for _, sp := range spans.Spans() {
				seen[sp.Stage] = true
			}
			for _, stage := range []telemetry.SpanStage{
				telemetry.StageSlot, telemetry.StagePrepare, telemetry.StageEncode,
				telemetry.StageRPC, telemetry.StageCommit,
			} {
				if !seen[stage] {
					t.Fatalf("%s: no %v span recorded", label, stage)
				}
			}
			if got.Cluster.PrepareTime.Count() == 0 || got.Cluster.NodeScheduleTime.Count() == 0 {
				t.Fatalf("%s: stage attribution histograms stayed empty", label)
			}
		}
	}
}

// TestClusterEquivalenceWithChannelFaults exercises the masked scheduling
// path over the wire: channel faults degrade the request graph, the node
// computes both the masked decision and the healthy shadow matching, and
// the degraded-mode accounting must match the sequential engine's.
func TestClusterEquivalenceWithChannelFaults(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 8, 1, 1)
	a1, _ := startNode(t, "tcp")
	a2, _ := startNode(t, "tcp")
	newInjector := func() fault.Injector {
		inj, err := fault.NewMarkov(fault.MarkovConfig{
			N: 4, K: 8, Seed: 11,
			ConverterFail: 0.05, ConverterRepair: 0.2,
			ChannelDark: 0.03, ChannelRestore: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	base := interconnect.Config{N: 4, Conv: conv, Scheduler: "exact", Seed: 3}
	seq := base
	seq.Faults = newInjector()
	want := clusterRun(t, seq, nil, 0.9, 80)
	clu := base
	clu.Faults = newInjector()
	got := clusterRun(t, clu, &ControllerConfig{Addrs: []string{a1, a2}, Seed: 3}, 0.9, 80)
	requireStatsEqual(t, "markov-faults", want, got)
	if want.Fault == nil || want.Fault.LostGrants.Value() == 0 {
		t.Fatal("fault scenario injected nothing; test is vacuous")
	}
}

// TestClusterTransportFaults injects frame drops, duplicates and delays
// and asserts the two halves of the degradation contract: the run still
// completes with identical statistics, and the retry/fallback machinery
// visibly absorbed the faults.
func TestClusterTransportFaults(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 6, 1, 1)
	a1, _ := startNode(t, "tcp")
	a2, _ := startNode(t, "tcp")
	base := interconnect.Config{N: 4, Conv: conv, Scheduler: "exact", Seed: 5}
	want := clusterRun(t, base, nil, 0.9, 120)

	tf, err := fault.NewTransportFaults(fault.TransportConfig{
		Seed: 9, Drop: 0.08, Duplicate: 0.05, Delay: 0.03, DelayFor: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := clusterRun(t, base, &ControllerConfig{
		Addrs: []string{a1, a2}, Seed: 5,
		RPCTimeout: 100 * time.Millisecond, BackoffBase: time.Millisecond,
		Faults: tf,
	}, 0.9, 120)
	requireStatsEqual(t, "transport-faults", want, got)
	if tf.Injected() == 0 {
		t.Fatal("no transport faults injected; test is vacuous")
	}
	c := got.Cluster
	if c.Retries.Value() == 0 && c.LocalFallbackItems.Value() == 0 {
		t.Fatalf("faults injected (%d) but neither retries nor fallbacks recorded", tf.Injected())
	}
	t.Logf("injected=%d retries=%d deadline_misses=%d fallback_items=%d reconnects=%d",
		tf.Injected(), c.Retries.Value(), c.DeadlineMisses.Value(),
		c.LocalFallbackItems.Value(), c.Reconnects.Value())
}

// coreResultCheck holds the decision a local scheduler makes for one
// request vector — what a node (or the fallback) must also produce, since
// both run the same pure function.
type coreResultCheck struct {
	want *core.Result
}

func newCoreResultCheck(t *testing.T, conv wavelength.Conversion, count []int) *coreResultCheck {
	t.Helper()
	sc, err := core.NewByName("exact", conv)
	if err != nil {
		t.Fatal(err)
	}
	want := core.NewResult(conv.K())
	sc.Schedule(count, make([]bool, conv.K()), want)
	if c, ok := sc.(io.Closer); ok {
		c.Close()
	}
	return &coreResultCheck{want: want}
}

func (c *coreResultCheck) requireEqual(t *testing.T, slot int64, port int, got *core.Result) {
	t.Helper()
	if got.Size != c.want.Size || got.BreakChannel != c.want.BreakChannel {
		t.Fatalf("slot %d port %d: size/break %d/%d, want %d/%d",
			slot, port, got.Size, got.BreakChannel, c.want.Size, c.want.BreakChannel)
	}
	for b := range got.ByOutput {
		if got.ByOutput[b] != c.want.ByOutput[b] {
			t.Fatalf("slot %d port %d: channel %d got λ%d, want λ%d",
				slot, port, b, got.ByOutput[b], c.want.ByOutput[b])
		}
	}
}

func newEmptyResult(k int) *core.Result { return core.NewResult(k) }

// TestClusterNodeFailover kills a node mid-run and later revives it: the
// controller must degrade to local scheduling without stalling a slot,
// keep producing exactly the results the node would have, and re-adopt
// the node once it is back.
func TestClusterNodeFailover(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 6, 1, 1)
	k := conv.K()
	a1, _ := startNode(t, "tcp")
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a2 := ln2.Addr().String()
	node2 := NewNode(NodeConfig{})
	go node2.Serve(ln2)

	ctrl, err := NewController(ControllerConfig{
		Addrs: []string{a1, a2}, N: 4, Conv: conv, Scheduler: "exact",
		Seed: 13, Retries: -1, ProbeSlots: 2, RPCTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// One deterministic batch, reused each slot; expectations computed with
	// a local scheduler over the same pure inputs.
	counts := [][]int{
		{2, 0, 1, 3, 0, 1},
		{0, 1, 0, 0, 2, 0},
		{1, 1, 1, 1, 1, 1},
		{4, 0, 0, 0, 0, 2},
	}
	schedule := func(slot int64) []*coreResultCheck {
		t.Helper()
		reqs := make([]interconnect.BatchRequest, 4)
		out := make([]interconnect.BatchResult, 4)
		checks := make([]*coreResultCheck, 4)
		for p := 0; p < 4; p++ {
			reqs[p] = interconnect.BatchRequest{
				Port: p, Count: counts[p], Occupied: make([]bool, k),
			}
			checks[p] = newCoreResultCheck(t, conv, counts[p])
			out[p] = interconnect.BatchResult{Port: p, Res: newEmptyResult(k)}
		}
		if err := ctrl.ScheduleBatch(slot, reqs, out); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		for p := 0; p < 4; p++ {
			checks[p].requireEqual(t, slot, p, out[p].Res)
		}
		return checks
	}

	schedule(0)
	if got := ctrl.ClusterStats().LocalFallbackItems.Value(); got != 0 {
		t.Fatalf("healthy slot fell back %d items", got)
	}

	node2.Close() // ports 1 and 3 lose their node
	schedule(1)
	schedule(2)
	fb := ctrl.ClusterStats().LocalFallbackItems.Value()
	if fb == 0 {
		t.Fatal("node killed but no local fallback recorded")
	}

	// Revive the node on the same address and step past the probe window.
	ln2b, err := net.Listen("tcp", a2)
	if err != nil {
		t.Fatal(err)
	}
	node2b := NewNode(NodeConfig{})
	go node2b.Serve(ln2b)
	t.Cleanup(func() { node2b.Close() })

	for slot := int64(3); slot < 10; slot++ {
		schedule(slot)
	}
	if got := ctrl.ClusterStats().Reconnects.Value(); got == 0 {
		t.Fatal("revived node never re-adopted")
	}
	after := ctrl.ClusterStats().LocalFallbackItems.Value()
	schedule(10)
	if got := ctrl.ClusterStats().LocalFallbackItems.Value(); got != after {
		t.Fatalf("still falling back after reconnect: %d -> %d", after, got)
	}
}
