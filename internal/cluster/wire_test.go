package cluster

import (
	"bytes"
	"net"
	"testing"

	"wdmsched/internal/core"
)

// TestTransportRoundTrip frames messages across a pipe and checks they
// arrive intact, in order, with types preserved.
func TestTransportRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	a, b := newTransport(c1), newTransport(c2)
	defer a.close()
	defer b.close()
	payloads := [][]byte{nil, {1}, bytes.Repeat([]byte{0xab}, 4096)}
	go func() {
		for i, p := range payloads {
			a.send(msgType(i+1), p)
		}
	}()
	for i, want := range payloads {
		mt, got, err := b.recv()
		if err != nil {
			t.Fatal(err)
		}
		if mt != msgType(i+1) || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: type %v len %d, want type %v len %d",
				i, mt, len(got), msgType(i+1), len(want))
		}
	}
}

// TestTransportRejectsCorruption flips one payload bit on the wire and
// expects the CRC check to refuse the frame.
func TestTransportRejectsCorruption(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	b := newTransport(c2)
	defer b.close()
	frame := putU16(nil, wireMagic)
	frame = append(frame, wireVersion, byte(msgPing))
	frame = putU32(frame, 8)
	payload := putU64(nil, 42)
	frame = append(frame, payload...)
	frame = putU32(frame, 0xdeadbeef) // wrong CRC
	go c1.Write(frame)
	if _, _, err := b.recv(); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

// TestTransportRejectsBadHeader covers magic and version violations.
func TestTransportRejectsBadHeader(t *testing.T) {
	for name, hdr := range map[string][]byte{
		"bad magic":   {0x00, 0x00, wireVersion, byte(msgPing), 0, 0, 0, 0, 0, 0, 0, 0},
		"bad version": {0x57, 0xC1, 99, byte(msgPing), 0, 0, 0, 0, 0, 0, 0, 0},
		"huge length": {0x57, 0xC1, wireVersion, byte(msgPing), 0xff, 0xff, 0xff, 0xff},
	} {
		c1, c2 := net.Pipe()
		tr := newTransport(c2)
		go func() { c1.Write(hdr); c1.Close() }()
		if _, _, err := tr.recv(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		tr.close()
	}
}

// TestOccupiedBitmapRoundTrip exercises the bitmap packing at widths
// around the byte boundary.
func TestOccupiedBitmapRoundTrip(t *testing.T) {
	for _, k := range []int{1, 7, 8, 9, 16, 33} {
		src := make([]bool, k)
		for i := range src {
			src[i] = i%3 == 0
		}
		b := appendOccupied(nil, src)
		if len(b) != occupiedBitmapLen(k) {
			t.Fatalf("k=%d: bitmap %d bytes, want %d", k, len(b), occupiedBitmapLen(k))
		}
		dst := make([]bool, k)
		r := reader{b: b}
		readOccupied(&r, dst)
		if r.Err() != nil {
			t.Fatalf("k=%d: %v", k, r.Err())
		}
		for i := range src {
			if src[i] != dst[i] {
				t.Fatalf("k=%d: bit %d flipped", k, i)
			}
		}
	}
}

// TestResultRoundTrip encodes and decodes scheduling decisions, including
// the break-channel marker, and checks Granted is re-derived correctly.
func TestResultRoundTrip(t *testing.T) {
	const k = 8
	src := core.NewResult(k)
	src.ByOutput[1] = 3
	src.ByOutput[4] = 4
	src.ByOutput[7] = 0
	src.Granted[3] = 1
	src.Granted[4] = 1
	src.Granted[0] = 1
	src.Size = 3
	src.BreakChannel = 4
	b := appendResult(nil, src)
	got := core.NewResult(k)
	r := reader{b: b}
	if err := readResult(&r, k, got); err != nil {
		t.Fatal(err)
	}
	if got.Size != src.Size || got.BreakChannel != src.BreakChannel {
		t.Fatalf("size/break %d/%d, want %d/%d", got.Size, got.BreakChannel, src.Size, src.BreakChannel)
	}
	for i := 0; i < k; i++ {
		if got.ByOutput[i] != src.ByOutput[i] || got.Granted[i] != src.Granted[i] {
			t.Fatalf("wavelength %d diverged", i)
		}
	}

	// Inconsistent size must be rejected.
	bad := appendResult(nil, src)
	bad[0], bad[1] = 0, 9 // claim size 9
	r = reader{b: bad}
	if err := readResult(&r, k, got); err == nil {
		t.Fatal("inconsistent result size accepted")
	}
}

// TestReaderLatchesError checks the cursor's overrun contract: first
// overrun sets the error, later reads return zeros without panicking.
func TestReaderLatchesError(t *testing.T) {
	r := reader{b: []byte{1, 2}}
	if got := r.u16(); got != 0x0102 {
		t.Fatalf("u16 = %#x", got)
	}
	if r.u32() != 0 || r.Err() == nil {
		t.Fatal("overrun not latched")
	}
	if r.u64() != 0 || r.u8() != 0 || r.bytes(1) != nil || r.str() != "" {
		t.Fatal("reads after latched error not zero")
	}
}

// TestSplitAddr pins the address scheme mapping.
func TestSplitAddr(t *testing.T) {
	for addr, want := range map[string][2]string{
		"127.0.0.1:9301":   {"tcp", "127.0.0.1:9301"},
		"unix:/tmp/n.sock": {"unix", "/tmp/n.sock"},
		"/tmp/n.sock":      {"unix", "/tmp/n.sock"},
	} {
		network, address := splitAddr(addr)
		if network != want[0] || address != want[1] {
			t.Errorf("splitAddr(%q) = %q,%q want %q,%q", addr, network, address, want[0], want[1])
		}
	}
}
