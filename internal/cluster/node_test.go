package cluster

import (
	"net"
	"sync"
	"testing"

	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/wavelength"
)

// buildConfigPayload hand-encodes a config frame for a session hosting
// the given ports of an n×n interconnect with k wavelengths (circular,
// e=f=1, exact scheduling).
func buildConfigPayload(n, k int, ports []int) []byte {
	b := putU32(nil, uint32(n))
	b = append(b, byte(wavelength.Circular))
	b = putU32(b, uint32(k))
	b = putU32(b, 1)
	b = putU32(b, 1)
	b = putString(b, "exact")
	b = putU32(b, uint32(len(ports)))
	for _, p := range ports {
		b = putU32(b, uint32(p))
	}
	return b
}

// buildSchedulePayload encodes one v2 schedule frame: each ports[i] asks
// with counts[i] and no occupancy; mask, when non-nil, applies to every
// item. The trace context (run, span, t0) is synthetic but well-formed.
func buildSchedulePayload(seq, slot uint64, k int, ports []int, counts [][]int, mask []byte) []byte {
	b := putU64(nil, seq)
	b = putU64(b, slot)
	b = putU64(b, 0xABCD)    // run ID
	b = putU64(b, seq<<20)   // span ID
	b = putI64(b, 123456789) // t0
	b = putU32(b, uint32(len(ports)))
	occupied := make([]bool, k)
	for i, p := range ports {
		b = putU32(b, uint32(p))
		for _, c := range counts[i] {
			b = putU16(b, uint16(c))
		}
		b = appendOccupied(b, occupied)
		if mask != nil {
			b = append(b, 1)
			b = append(b, mask...)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// newTestSession builds a configured session without a network: the
// transport wraps a closed pipe end that handleSchedule never touches.
func newTestSession(t testing.TB, n, k int, ports []int) *session {
	t.Helper()
	c1, c2 := net.Pipe()
	c1.Close()
	c2.Close()
	s := &session{tr: newTransport(c1), logf: func(string, ...any) {}}
	if err := s.configure(buildConfigPayload(n, k, ports)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.teardown)
	return s
}

// TestNodeScheduleHotPathAllocs asserts the acceptance criterion that a
// zero-fault cluster run adds no allocations to the node-side scheduling
// hot path: after the first (buffer-growing) call, handleSchedule must not
// allocate — masked or not, and with node telemetry and span tracing both
// enabled (the observability must be free on the hot path).
func TestNodeScheduleHotPathAllocs(t *testing.T) {
	const n, k = 8, 8
	counts := [][]int{
		{2, 0, 1, 3, 0, 1, 0, 2},
		{0, 1, 0, 0, 2, 0, 4, 0},
		{1, 1, 1, 1, 1, 1, 1, 1},
		{3, 0, 0, 0, 0, 2, 0, 1},
	}
	mask := make([]byte, k)
	mask[2] = 1 // converter failed
	mask[5] = 2 // dark
	for _, mode := range []struct {
		name      string
		telemetry bool
	}{
		{"plain", false},
		{"telemetry+spans", true},
	} {
		s := newTestSession(t, n, k, []int{0, 2, 4, 6})
		if mode.telemetry {
			node := NewNode(NodeConfig{
				Telemetry: telemetry.NewRegistry(),
				Spans:     telemetry.NewSpanTracer(1, 1<<10),
			})
			s.node, s.spans = node, node.cfg.Spans
			// Re-run the configure-time wiring the test session skipped.
			s.busy = make([]*metrics.Counter, len(s.ports))
			for i, p := range s.ports {
				s.busy[i] = node.portBusy(p)
			}
			s.spans.EnsureLanes(1 + len(s.ports))
			s.timed = true
		}
		for _, tc := range []struct {
			name    string
			payload []byte
		}{
			{"unmasked", buildSchedulePayload(1, 10, k, []int{0, 2, 4, 6}, counts, nil)},
			{"masked", buildSchedulePayload(2, 11, k, []int{0, 2, 4, 6}, counts, mask)},
		} {
			t.Run(mode.name+"/"+tc.name, func(t *testing.T) {
				var err error
				if _, err = s.handleSchedule(tc.payload); err != nil { // warm buffers
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(100, func() {
					_, err = s.handleSchedule(tc.payload)
				})
				if err != nil {
					t.Fatal(err)
				}
				if allocs != 0 {
					t.Fatalf("handleSchedule allocates %.1f objects per call, want 0", allocs)
				}
				if mode.telemetry && s.spans.Emitted() == 0 {
					t.Fatal("span tracer saw no spans")
				}
			})
		}
	}
}

// TestNodeScheduleRejectsMalformed spot-checks the decode validation:
// truncation, unknown ports, repeats and trailing bytes must error, never
// panic or compute garbage.
func TestNodeScheduleRejectsMalformed(t *testing.T) {
	const n, k = 4, 6
	s := newTestSession(t, n, k, []int{0, 2})
	good := buildSchedulePayload(1, 1, k, []int{0, 2},
		[][]int{{1, 0, 0, 2, 0, 0}, {0, 3, 0, 0, 0, 1}}, nil)
	if _, err := s.handleSchedule(good); err != nil {
		t.Fatalf("well-formed payload rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte{}, good...), 0xff),
		"unknown port": buildSchedulePayload(1, 1, k, []int{1},
			[][]int{{1, 0, 0, 0, 0, 0}}, nil),
		"repeated port": buildSchedulePayload(1, 1, k, []int{0, 0},
			[][]int{{1, 0, 0, 0, 0, 0}, {1, 0, 0, 0, 0, 0}}, nil),
		"bad mask state": buildSchedulePayload(1, 1, k, []int{0},
			[][]int{{1, 0, 0, 0, 0, 0}}, []byte{9, 0, 0, 0, 0, 0}),
	}
	for name, payload := range cases {
		if _, err := s.handleSchedule(payload); err == nil {
			t.Errorf("%s: malformed payload accepted", name)
		}
	}
}

// TestConfigRejectsMalformed covers the configure-side validation.
func TestConfigRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"zero ports":   buildConfigPayload(0, 4, nil),
		"bad port":     buildConfigPayload(4, 4, []int{7}),
		"dup port":     buildConfigPayload(4, 4, []int{1, 1}),
		"trailing":     append(buildConfigPayload(4, 4, []int{1}), 0),
		"huge k":       buildConfigPayload(4, maxWavelengths+1, []int{1}),
		"unknown name": nil,
	}
	bad := buildConfigPayload(4, 4, []int{1})
	// Patch the scheduler name length region to an unknown name by
	// rebuilding with a bogus name.
	b := putU32(nil, 4)
	b = append(b, byte(wavelength.Circular))
	b = putU32(b, 4)
	b = putU32(b, 1)
	b = putU32(b, 1)
	b = putString(b, "no-such-scheduler")
	b = putU32(b, 1)
	b = putU32(b, 1)
	cases["unknown name"] = b
	_ = bad
	for name, payload := range cases {
		c1, _ := net.Pipe()
		c1.Close()
		s := &session{tr: newTransport(c1), logf: func(string, ...any) {}}
		if err := s.configure(payload); err == nil {
			s.teardown()
			t.Errorf("%s: malformed config accepted", name)
		}
	}
}

// fuzzSessionPool hands out one configured session per fuzz worker,
// serialized: handleSchedule mutates session state.
var (
	fuzzMu   sync.Mutex
	fuzzSess *session
)

// FuzzNodeSchedule throws arbitrary bytes at the schedule decoder; the
// only acceptable outcomes are a decoded batch or an error — never a
// panic, whatever the wire delivers.
func FuzzNodeSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildSchedulePayload(1, 1, 6, []int{0, 2},
		[][]int{{1, 0, 0, 2, 0, 0}, {0, 3, 0, 0, 0, 1}}, nil))
	f.Add(buildSchedulePayload(2, 9, 6, []int{2},
		[][]int{{9, 9, 9, 9, 9, 9}}, []byte{0, 1, 2, 0, 1, 2}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzMu.Lock()
		defer fuzzMu.Unlock()
		if fuzzSess == nil {
			c1, _ := net.Pipe()
			c1.Close()
			s := &session{tr: newTransport(c1), logf: func(string, ...any) {}}
			if err := s.configure(buildConfigPayload(4, 6, []int{0, 2})); err != nil {
				t.Fatal(err)
			}
			fuzzSess = s
		}
		fuzzSess.handleSchedule(data)
	})
}

// FuzzNodeConfig fuzzes the configure decoder the same way.
func FuzzNodeConfig(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildConfigPayload(4, 6, []int{0, 2}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c1, _ := net.Pipe()
		c1.Close()
		s := &session{tr: newTransport(c1), logf: func(string, ...any) {}}
		if s.configure(data) == nil {
			s.teardown()
		}
	})
}
