package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wdmsched/internal/core"
	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/wavelength"
)

// NodeConfig tunes a worker node.
type NodeConfig struct {
	// Logf, when non-nil, receives one line per session event (open,
	// configure, close). Nil disables logging.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, receives the node's own wdm_node_* series
	// (frame/byte counters, decode/schedule/encode latency histograms,
	// per-port busy gauges) — served by wdmnode on its -http address.
	Telemetry *telemetry.Registry
	// Spans, when non-nil, records node-side spans: frame decode and
	// reply encode on lane 0, each port's schedule computation on lane
	// 1+local-index. Dump with WriteSpans and merge with the controller
	// dump via wdmtrace -merge.
	Spans *telemetry.SpanTracer
}

// Node is a cluster worker: it hosts the schedulers for its assigned
// output ports and answers the controller's per-slot schedule RPCs. A
// node is stateless between slots — every request carries the full
// scheduling instance — so controllers may reconnect, replay or duplicate
// requests freely.
type Node struct {
	cfg NodeConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	nm      nodeMetrics
	busy    map[int]*metrics.Counter // cumulative busy ns per global port
	lastRun atomic.Uint64            // run ID of the last schedule frame served
}

// nodeMetrics is the node's own observability: written on the session hot
// paths (plain atomics, allocation-free), surfaced as wdm_node_* series
// when NodeConfig.Telemetry is set.
type nodeMetrics struct {
	framesIn, framesOut metrics.Counter
	bytesIn, bytesOut   metrics.Counter
	sessions            metrics.Counter
	scheduleFrames      metrics.Counter
	scheduledItems      metrics.Counter
	decode              *metrics.DurationHistogram
	schedule            *metrics.DurationHistogram
	encode              *metrics.DurationHistogram
}

// NewNode builds a node. When cfg.Telemetry is set, the wdm_node_* series
// are registered immediately (per-port busy gauges appear lazily as
// controllers assign ports).
func NewNode(cfg NodeConfig) *Node {
	n := &Node{cfg: cfg, conns: make(map[net.Conn]struct{}), busy: make(map[int]*metrics.Counter)}
	n.nm.decode = metrics.NewDurationHistogram()
	n.nm.schedule = metrics.NewDurationHistogram()
	n.nm.encode = metrics.NewDurationHistogram()
	if r := cfg.Telemetry; r != nil {
		r.CounterFunc("wdm_node_frames_received_total", "Frames read from controller sessions.", nil, n.nm.framesIn.Value)
		r.CounterFunc("wdm_node_frames_sent_total", "Frames written to controller sessions.", nil, n.nm.framesOut.Value)
		r.CounterFunc("wdm_node_bytes_received_total", "Bytes read from controller sessions, framing included.", nil, n.nm.bytesIn.Value)
		r.CounterFunc("wdm_node_bytes_sent_total", "Bytes written to controller sessions, framing included.", nil, n.nm.bytesOut.Value)
		r.CounterFunc("wdm_node_sessions_total", "Controller sessions accepted.", nil, n.nm.sessions.Value)
		r.CounterFunc("wdm_node_schedule_frames_total", "Schedule frames served.", nil, n.nm.scheduleFrames.Value)
		r.CounterFunc("wdm_node_scheduled_items_total", "Port-slot scheduling decisions computed.", nil, n.nm.scheduledItems.Value)
		r.DurationHistogram("wdm_node_decode_seconds", "Schedule frame decode time.", nil, n.nm.decode)
		r.DurationHistogram("wdm_node_schedule_seconds", "Per-port matching computation time.", nil, n.nm.schedule)
		r.DurationHistogram("wdm_node_encode_seconds", "Grants reply encode time.", nil, n.nm.encode)
	}
	return n
}

// portBusy returns (registering on first use) the cumulative busy-time
// counter for a global output port assigned to this node.
func (n *Node) portBusy(port int) *metrics.Counter {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.busy[port]; ok {
		return c
	}
	c := new(metrics.Counter)
	n.busy[port] = c
	if r := n.cfg.Telemetry; r != nil {
		r.GaugeFunc("wdm_node_port_busy_seconds", "Cumulative matching-computation time for this assigned port.",
			[]telemetry.Label{{Key: "port", Value: strconv.Itoa(port)}},
			func() float64 { return float64(c.Value()) / 1e9 })
	}
	return c
}

// LastRunID reports the run ID carried by the most recent schedule frame
// (0 before any); wdmtrace -merge checks it against the controller dump.
func (n *Node) LastRunID() uint64 { return n.lastRun.Load() }

// WriteSpans dumps the node's span dump: a meta line (role, last run ID)
// followed by the retained spans as JSONL — one node's half of a
// wdmtrace -merge input set, served by wdmnode on /spans.
func (n *Node) WriteSpans(w io.Writer) error {
	if n.cfg.Spans == nil {
		return errors.New("cluster: node has no span tracer")
	}
	if _, err := fmt.Fprintf(w, `{"meta":{"role":"node","run_id":%d}}`+"\n", n.lastRun.Load()); err != nil {
		return err
	}
	return n.cfg.Spans.WriteJSONL(w)
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Serve accepts controller sessions on l until Close. Each session runs
// on its own goroutine; Serve returns nil after Close, or the first
// accept error otherwise.
func (n *Node) Serve(l net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("cluster: node closed")
	}
	n.ln = l
	n.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return nil
		}
		n.conns[c] = struct{}{}
		n.mu.Unlock()
		go n.handle(c)
	}
}

// Close stops the listener and tears down every active session.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	ln := n.ln
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

// handle runs one controller session to completion.
func (n *Node) handle(c net.Conn) {
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
	}()
	tr := newTransport(c)
	tr.bytesIn = &n.nm.bytesIn
	tr.bytesOut = &n.nm.bytesOut
	tr.framesIn = &n.nm.framesIn
	tr.framesOut = &n.nm.framesOut
	s := &session{tr: tr, logf: n.logf, node: n, spans: n.cfg.Spans}
	defer s.teardown()
	n.nm.sessions.Inc()
	n.logf("session open from %v", c.RemoteAddr())
	if err := s.run(); err != nil && !errors.Is(err, io.EOF) {
		n.logf("session from %v ended: %v", c.RemoteAddr(), err)
		return
	}
	n.logf("session from %v closed", c.RemoteAddr())
}

// session is one controller's view of the node: the schedulers for its
// assigned ports plus per-port input/result buffers, all preallocated at
// configure time so the schedule hot path does not allocate, and a
// persistent worker goroutine per assigned port (the same worker-pool
// shape as the in-process engine).
type session struct {
	tr    *transport
	logf  func(format string, args ...any)
	node  *Node                 // nil in bare protocol tests
	spans *telemetry.SpanTracer // nil when tracing is off

	configured bool
	nports, k  int
	conv       wavelength.Conversion
	ports      []int // assigned global port IDs
	idx        []int32

	// timed gates the hot-path clock reads: set at configure time when any
	// consumer (metrics, busy counters, spans) exists.
	timed   bool
	busy    []*metrics.Counter // per local port, nil without telemetry
	curSlot int64              // in-flight batch trace context, set before
	curSpan uint64             // the fan-out, read by workers after wake

	scheds   []core.Scheduler
	count    [][]int
	occupied [][]bool
	mask     []core.ChannelMask
	maskOn   []bool
	res      []*core.Result
	shadow   []*core.Result

	active []int  // local indices in the current batch, wire order
	pbuf   []byte // reply payload build buffer

	wake    []chan struct{}
	stop    chan struct{}
	barrier sync.WaitGroup
	workers sync.WaitGroup
}

// run is the session frame loop.
func (s *session) run() error {
	for {
		mt, payload, err := s.tr.recv()
		if err != nil {
			var verr *VersionError
			if errors.As(err, &verr) {
				// Tell the peer why it is being rejected, framed in ITS
				// version so an old controller can decode the message
				// (the error payload layout is identical in v1 and v2).
				b := putU64(nil, 0)
				b = putString(b, verr.Error())
				_ = s.tr.sendVersioned(verr.Peer, msgError, b)
			}
			return err
		}
		switch mt {
		case msgHello:
			r := reader{b: payload}
			nonce := r.u64()
			if r.Err() != nil {
				return s.protoErr(0, "malformed hello")
			}
			s.pbuf = putU64(s.pbuf[:0], nonce)
			if err := s.tr.send(msgHelloAck, s.pbuf); err != nil {
				return err
			}
		case msgConfig:
			if err := s.configure(payload); err != nil {
				if serr := s.sendError(0, err.Error()); serr != nil {
					return serr
				}
				return fmt.Errorf("cluster: rejected config: %w", err)
			}
			if err := s.tr.send(msgConfigAck, nil); err != nil {
				return err
			}
		case msgSchedule:
			if !s.configured {
				return s.protoErr(0, "schedule before config")
			}
			reply, err := s.handleSchedule(payload)
			if err != nil {
				if serr := s.sendError(0, err.Error()); serr != nil {
					return serr
				}
				return err
			}
			if err := s.tr.send(msgGrants, reply); err != nil {
				return err
			}
		case msgPing:
			r := reader{b: payload}
			seq := r.u64()
			s.pbuf = putU64(s.pbuf[:0], seq)
			if err := s.tr.send(msgPong, s.pbuf); err != nil {
				return err
			}
		default:
			return s.protoErr(0, "unexpected "+mt.String())
		}
	}
}

func (s *session) sendError(seq uint64, msg string) error {
	b := putU64(nil, seq)
	b = putString(b, msg)
	return s.tr.send(msgError, b)
}

func (s *session) protoErr(seq uint64, msg string) error {
	if err := s.sendError(seq, msg); err != nil {
		return err
	}
	return errors.New("cluster: protocol violation: " + msg)
}

// configure parses a config frame and builds the session's schedulers,
// buffers and worker pool. Reconfiguration tears the old pool down first.
func (s *session) configure(payload []byte) error {
	r := reader{b: payload}
	n := int(r.u32())
	kind := wavelength.Kind(r.u8())
	k := int(r.u32())
	e := int(r.u32())
	f := int(r.u32())
	schedName := r.str()
	nPorts := int(r.u32())
	if r.Err() != nil {
		return r.Err()
	}
	if n <= 0 || n > maxPorts {
		return fmt.Errorf("cluster: ports %d outside (0, %d]", n, maxPorts)
	}
	if k <= 0 || k > maxWavelengths {
		return fmt.Errorf("cluster: wavelengths %d outside (0, %d]", k, maxWavelengths)
	}
	if n > 0xffff {
		// Request counts travel as u16; a fiber cannot offer more than one
		// request per input fiber per wavelength.
		return fmt.Errorf("cluster: ports %d exceed u16 request-count range", n)
	}
	if nPorts <= 0 || nPorts > n {
		return fmt.Errorf("cluster: assigned port count %d outside (0, %d]", nPorts, n)
	}
	var conv wavelength.Conversion
	var err error
	if kind == wavelength.Full {
		conv, err = wavelength.New(wavelength.Full, k, 0, 0)
	} else {
		conv, err = wavelength.New(kind, k, e, f)
	}
	if err != nil {
		return err
	}
	ports := make([]int, nPorts)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = -1
	}
	for i := range ports {
		p := int(r.u32())
		if r.Err() != nil {
			return r.Err()
		}
		if p < 0 || p >= n {
			return fmt.Errorf("cluster: assigned port %d outside [0, %d)", p, n)
		}
		if idx[p] != -1 {
			return fmt.Errorf("cluster: port %d assigned twice", p)
		}
		ports[i] = p
		idx[p] = int32(i)
	}
	if r.Rem() != 0 {
		return fmt.Errorf("cluster: %d trailing config bytes", r.Rem())
	}

	scheds := make([]core.Scheduler, nPorts)
	for i := range scheds {
		sc, err := core.NewByName(schedName, conv)
		if err != nil {
			return err
		}
		scheds[i] = sc
	}

	s.teardown() // idempotent; frees a previous configuration's pool
	s.configured = true
	s.nports, s.k, s.conv = n, k, conv
	s.ports, s.idx, s.scheds = ports, idx, scheds
	s.busy = nil
	if s.node != nil && s.node.cfg.Telemetry != nil {
		s.busy = make([]*metrics.Counter, nPorts)
		for i, p := range ports {
			s.busy[i] = s.node.portBusy(p)
		}
	}
	if s.spans != nil {
		s.spans.EnsureLanes(1 + nPorts)
	}
	s.timed = s.node != nil || s.spans != nil
	s.count = make([][]int, nPorts)
	s.occupied = make([][]bool, nPorts)
	s.mask = make([]core.ChannelMask, nPorts)
	s.maskOn = make([]bool, nPorts)
	s.res = make([]*core.Result, nPorts)
	s.shadow = make([]*core.Result, nPorts)
	s.active = make([]int, 0, nPorts)
	s.wake = make([]chan struct{}, nPorts)
	s.stop = make(chan struct{})
	for i := 0; i < nPorts; i++ {
		s.count[i] = make([]int, k)
		s.occupied[i] = make([]bool, k)
		s.mask[i] = make(core.ChannelMask, k)
		s.res[i] = core.NewResult(k)
		s.shadow[i] = core.NewResult(k)
		s.wake[i] = make(chan struct{}, 1)
	}
	s.workers.Add(nPorts)
	for i := 0; i < nPorts; i++ {
		go s.worker(i)
	}
	s.logf("configured: %d of %d ports, k=%d, scheduler %s (%v)",
		nPorts, n, k, schedName, conv)
	return nil
}

// teardown stops the worker pool and releases scheduler resources (the
// parallel breaker pool implements io.Closer). Safe to call repeatedly.
func (s *session) teardown() {
	if !s.configured {
		return
	}
	close(s.stop)
	s.workers.Wait()
	for _, sc := range s.scheds {
		if c, ok := sc.(io.Closer); ok {
			c.Close()
		}
	}
	s.configured = false
}

// worker is the persistent per-port scheduling loop, mirroring the
// in-process engine: wait for a wake, compute the port's matching, report
// completion.
func (s *session) worker(li int) {
	defer s.workers.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake[li]:
			if !s.timed {
				s.compute(li)
				s.barrier.Done()
				continue
			}
			start := telemetry.NowNS()
			s.compute(li)
			dur := telemetry.NowNS() - start
			if s.node != nil {
				s.node.nm.schedule.Observe(time.Duration(dur))
			}
			if s.busy != nil {
				s.busy[li].Add(dur)
			}
			if s.spans != nil {
				s.spans.Emit(1+li, telemetry.Span{Slot: s.curSlot, Lane: int32(1 + li),
					Stage: telemetry.StageSchedule, Port: int32(s.ports[li]),
					ID: s.curSpan, Start: start, Dur: dur})
			}
			s.barrier.Done()
		}
	}
}

// compute runs one port's scheduling instance: the masked decision plus
// the healthy-graph shadow matching when a fault mask is active, exactly
// as the in-process port does.
func (s *session) compute(li int) {
	if s.maskOn[li] {
		s.scheds[li].ScheduleMasked(s.count[li], s.occupied[li], s.mask[li], s.res[li])
		s.scheds[li].Schedule(s.count[li], s.occupied[li], s.shadow[li])
	} else {
		s.scheds[li].Schedule(s.count[li], s.occupied[li], s.res[li])
	}
}

// handleSchedule decodes a schedule frame into the per-port input buffers,
// fans the batch out to the worker pool, and encodes the grants reply.
// Allocation-free in steady state: every buffer it touches is preallocated
// at configure time and reused. The reply carries the span clock stamps
// t1..t4 (receipt, decode done, barrier done, reply encoded); t4 is
// patched in after encoding so it covers the encode itself.
func (s *session) handleSchedule(payload []byte) ([]byte, error) {
	t1 := telemetry.NowNS()
	r := reader{b: payload}
	seq := r.u64()
	slot := r.u64()
	run := r.u64()
	span := r.u64()
	r.i64() // t0: controller send stamp, on the controller's clock
	items := int(r.u32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if items < 0 || items > len(s.ports) {
		return nil, fmt.Errorf("cluster: %d items for %d assigned ports", items, len(s.ports))
	}
	s.active = s.active[:0]
	for i := 0; i < items; i++ {
		port := int(r.u32())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if port < 0 || port >= s.nports || s.idx[port] < 0 {
			return nil, fmt.Errorf("cluster: port %d not assigned here", port)
		}
		li := int(s.idx[port])
		cnt := s.count[li]
		for w := 0; w < s.k; w++ {
			cnt[w] = int(r.u16())
		}
		readOccupied(&r, s.occupied[li])
		s.maskOn[li] = false
		if r.u8() != 0 {
			mb := r.bytes(s.k)
			if mb != nil {
				m := s.mask[li]
				for b := 0; b < s.k; b++ {
					st := core.ChannelState(mb[b])
					if st > core.Dark {
						return nil, fmt.Errorf("cluster: invalid channel state %d", mb[b])
					}
					m[b] = st
				}
				s.maskOn[li] = true
			}
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		// A port repeated within one batch would race in the fan-out;
		// detect via the active list (items ≤ assigned ports keeps this
		// O(items²) scan trivial for realistic shards).
		for _, prev := range s.active {
			if prev == li {
				return nil, fmt.Errorf("cluster: port %d repeated in batch", port)
			}
		}
		s.active = append(s.active, li)
	}
	if r.Rem() != 0 {
		return nil, fmt.Errorf("cluster: %d trailing schedule bytes", r.Rem())
	}
	t2 := telemetry.NowNS()
	s.curSlot, s.curSpan = int64(slot), span
	if s.node != nil {
		s.node.lastRun.Store(run)
		s.node.nm.scheduleFrames.Inc()
		s.node.nm.scheduledItems.Add(int64(len(s.active)))
		s.node.nm.decode.Observe(time.Duration(t2 - t1))
	}

	// Fan out to the persistent workers and wait for the slot barrier.
	s.barrier.Add(len(s.active))
	for _, li := range s.active {
		s.wake[li] <- struct{}{}
	}
	s.barrier.Wait()
	t3 := telemetry.NowNS()

	// Encode the reply in request order.
	b := s.pbuf[:0]
	b = putU64(b, seq)
	b = putU64(b, slot)
	b = putU64(b, span)
	b = putI64(b, t1)
	b = putI64(b, t2)
	b = putI64(b, t3)
	b = putI64(b, 0) // t4, patched below once encoding is done
	b = putU32(b, uint32(len(s.active)))
	for _, li := range s.active {
		b = putU32(b, uint32(s.ports[li]))
		b = appendResult(b, s.res[li])
		if s.maskOn[li] {
			b = append(b, 1)
			b = appendResult(b, s.shadow[li])
		} else {
			b = append(b, 0)
		}
	}
	t4 := telemetry.NowNS()
	patchU64(b, grantsT4Off, uint64(t4))
	s.pbuf = b
	if s.node != nil {
		s.node.nm.encode.Observe(time.Duration(t4 - t3))
	}
	if s.spans != nil {
		s.spans.Emit(0, telemetry.Span{Slot: int64(slot), Stage: telemetry.StageDecode,
			Port: -1, ID: span, Start: t1, Dur: t2 - t1})
		s.spans.Emit(0, telemetry.Span{Slot: int64(slot), Stage: telemetry.StageNodeEncode,
			Port: -1, ID: span, Start: t3, Dur: t4 - t3})
	}
	return b, nil
}

// appendResult encodes one scheduling decision: size, break channel and
// the channel→wavelength assignment. Granted counts are re-derived on
// decode, halving the frame size.
func appendResult(b []byte, res *core.Result) []byte {
	b = putU16(b, uint16(res.Size))
	b = putI16(b, int16(res.BreakChannel))
	for _, w := range res.ByOutput {
		b = putI16(b, int16(w))
	}
	return b
}

// readResult decodes an appendResult encoding into res (pre-sized to k),
// rebuilding the Granted counts and validating internal consistency.
func readResult(r *reader, k int, res *core.Result) error {
	size := int(r.u16())
	brk := int(r.i16())
	res.Reset()
	res.BreakChannel = brk
	got := 0
	for b := 0; b < k; b++ {
		w := int(r.i16())
		if w == core.Unassigned {
			continue
		}
		if w < 0 || w >= k {
			return fmt.Errorf("cluster: channel %d assigned invalid wavelength %d", b, w)
		}
		res.ByOutput[b] = w
		res.Granted[w]++
		got++
	}
	if r.Err() != nil {
		return r.Err()
	}
	if got != size {
		return fmt.Errorf("cluster: result size %d but %d assignments", size, got)
	}
	if brk != core.Unassigned && (brk < 0 || brk >= k) {
		return fmt.Errorf("cluster: break channel %d outside [0, %d)", brk, k)
	}
	res.Size = size
	return nil
}
