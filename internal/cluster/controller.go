package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wdmsched/internal/core"
	"wdmsched/internal/fault"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// ControllerConfig describes a cluster run: which nodes to shard the
// output-fiber schedulers across and how hard to try before scheduling a
// port locally.
type ControllerConfig struct {
	// Addrs lists the worker nodes. "host:port" dials TCP; "unix:/path"
	// (or any address containing a slash) dials a unix socket. Output port
	// o is assigned to node o mod len(Addrs).
	Addrs []string
	// N and Conv are the interconnect shape: N output fibers, each with
	// Conv.K() wavelength channels under conversion model Conv.
	N    int
	Conv wavelength.Conversion
	// Scheduler is the core.NewByName scheduler every node instantiates
	// per assigned port (and the controller per link for local fallback).
	Scheduler string
	// RPCTimeout bounds each schedule RPC attempt (default 500ms).
	RPCTimeout time.Duration
	// Retries is how many times a failed attempt is re-sent before the
	// link's ports fall back to local scheduling for the slot (default 2;
	// negative means fall back after the first failure).
	Retries int
	// BackoffBase seeds the exponential backoff between retries; each
	// retry waits base·2^attempt plus seeded jitter (default 2ms).
	BackoffBase time.Duration
	// DialTimeout bounds the initial connection establishment per node,
	// retried in a loop so controllers may start before their nodes
	// (default 5s).
	DialTimeout time.Duration
	// ProbeSlots is how many slots a failed link waits between reconnect
	// probes once its immediate redial has failed (default 16).
	ProbeSlots int
	// Faults, when non-nil, injects frame drop/delay/duplication on the
	// controller side of every link.
	Faults *fault.TransportFaults
	// Seed drives the retry jitter and handshake nonces.
	Seed uint64
	// Spans, when non-nil, records controller-side spans — encode, RPC
	// in-flight, local fallback — on lane 1+shard for every slot (lane 0
	// is left to the switch's prepare/commit spans). Merge with node span
	// dumps via wdmtrace -merge.
	Spans *telemetry.SpanTracer
	// Logf, when non-nil, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

func (c *ControllerConfig) fillDefaults() {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ProbeSlots <= 0 {
		c.ProbeSlots = 16
	}
}

// Controller shards the per-output-fiber schedulers across worker nodes
// and drives them slot by slot: it implements interconnect.BatchScheduler,
// streaming each slot's request vectors to every node in one batched frame
// and merging the grants back into the switch's slot loop. Nodes that miss
// their deadline (after bounded retries) degrade gracefully — the
// controller schedules their ports locally with an identical scheduler, so
// the slot never stalls and the results never change.
type Controller struct {
	cfg   ControllerConfig
	links []*link
	stats *interconnect.ClusterStats
	runID uint64 // trace context carried by every v2 schedule frame

	// curReqs/curOut are the in-flight slot's batch, indexed by the links'
	// item lists. Set by ScheduleBatch before the fan-out, read-only to
	// the link workers until the barrier.
	curReqs []interconnect.BatchRequest
	curOut  []interconnect.BatchResult

	wg     sync.WaitGroup
	closed atomic.Bool
}

// link is one controller→node session plus everything needed to survive
// its loss: the fallback scheduler, reconnect bookkeeping, and the
// persistent worker goroutine that handles this link's share of each slot.
type link struct {
	ctrl *Controller
	id   int
	addr string

	tr        *transport // nil while disconnected
	seq       uint64
	rng       *traffic.RNG // jitter + nonces; worker-goroutine only
	fb        core.Scheduler
	nextProbe int64 // earliest slot to attempt a reconnect at

	healthy atomic.Bool // mirrors tr != nil, for telemetry reads

	items    []int  // indices into curReqs owned by this link, per slot
	payload  []byte // schedule frame build buffer
	ports    []byte // cached config payload
	fellBack bool   // set when this slot's items were scheduled locally

	// Clock reconciliation: every grants frame carries node span-clock
	// stamps; the lowest-RTT sample wins (NTP-style, RTT/2 correction).
	// gt holds the last reply's t1..t4; bestRTT is worker-goroutine state;
	// offset/rtt are atomics so LinkSyncs can read them mid-run.
	gt      [4]int64
	bestRTT int64
	offset  atomic.Int64 // node span clock minus controller span clock, ns
	rtt     atomic.Int64

	work chan int64
	once sync.Once
}

// NewController validates the configuration, connects to every node
// (waiting up to DialTimeout each, so nodes may still be starting), pushes
// the port partition, and returns a ready BatchScheduler.
func NewController(cfg ControllerConfig) (*Controller, error) {
	cfg.fillDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	if cfg.N <= 0 || cfg.N > maxPorts {
		return nil, fmt.Errorf("cluster: ports %d outside (0, %d]", cfg.N, maxPorts)
	}
	if cfg.N > 0xffff {
		return nil, fmt.Errorf("cluster: ports %d exceed u16 request-count wire range", cfg.N)
	}
	if k := cfg.Conv.K(); k <= 0 || k > maxWavelengths {
		return nil, fmt.Errorf("cluster: wavelengths %d outside (0, %d]", k, maxWavelengths)
	}
	if len(cfg.Addrs) > cfg.N {
		return nil, fmt.Errorf("cluster: %d nodes for %d ports", len(cfg.Addrs), cfg.N)
	}
	ctrl := &Controller{
		cfg:   cfg,
		stats: interconnect.NewClusterStats(len(cfg.Addrs)),
		runID: traffic.NewRNG(cfg.Seed^0x52554e5f49445f31).Uint64() | 1,
	}
	if cfg.Spans != nil {
		cfg.Spans.EnsureLanes(1 + len(cfg.Addrs))
	}
	for i, addr := range cfg.Addrs {
		fb, err := core.NewByName(cfg.Scheduler, cfg.Conv)
		if err != nil {
			return nil, err
		}
		l := &link{
			ctrl: ctrl,
			id:   i,
			addr: addr,
			rng:  traffic.NewRNG(cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)),
			fb:   fb,
			work: make(chan int64),
		}
		l.ports = l.encodeConfig()
		ctrl.links = append(ctrl.links, l)
	}
	// Initial dials run concurrently so a cold cluster comes up in one
	// DialTimeout, not one per node.
	errs := make([]error, len(ctrl.links))
	var dialWG sync.WaitGroup
	dialWG.Add(len(ctrl.links))
	for i, l := range ctrl.links {
		go func(i int, l *link) {
			defer dialWG.Done()
			deadline := time.Now().Add(cfg.DialTimeout)
			for {
				err := l.connect()
				if err == nil {
					return
				}
				var verr *VersionError
				if errors.As(err, &verr) {
					// A protocol mismatch will not heal by waiting;
					// fail the whole controller fast with both versions.
					errs[i] = err
					return
				}
				if time.Now().After(deadline) {
					errs[i] = err
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		}(i, l)
	}
	dialWG.Wait()
	for i, err := range errs {
		if err != nil {
			ctrl.Close()
			return nil, fmt.Errorf("cluster: node %s: %w", cfg.Addrs[i], err)
		}
	}
	for _, l := range ctrl.links {
		go l.worker()
	}
	ctrl.logf("cluster up: %d ports across %d nodes, scheduler %s",
		cfg.N, len(cfg.Addrs), cfg.Scheduler)
	return ctrl, nil
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// ClusterStats exposes the runtime counters; the switch links them into
// its Stats via interconnect.ClusterStatsSource.
func (c *Controller) ClusterStats() *interconnect.ClusterStats { return c.stats }

// RunID identifies this controller run. Every v2 schedule frame carries
// it, so wdmtrace -merge can refuse to merge dumps from different runs.
func (c *Controller) RunID() uint64 { return c.runID }

// Spans exposes the configured span tracer (nil when tracing is off);
// implements interconnect.SpanSource so the switch emits its
// prepare/commit/slot spans into the same tracer.
func (c *Controller) Spans() *telemetry.SpanTracer { return c.cfg.Spans }

// LinkSync is one node link's clock reconciliation estimate, derived from
// the lowest-RTT schedule RPC observed so far.
type LinkSync struct {
	Addr     string `json:"node"`
	Shard    int    `json:"shard"`
	OffsetNS int64  `json:"offset_ns"` // node span clock minus controller span clock
	RTTNS    int64  `json:"rtt_ns"`    // round trip minus node processing time
}

// LinkSyncs returns the current per-link clock estimates. Safe to call
// mid-run.
func (c *Controller) LinkSyncs() []LinkSync {
	out := make([]LinkSync, len(c.links))
	for i, l := range c.links {
		out[i] = LinkSync{Addr: l.addr, Shard: l.id, OffsetNS: l.offset.Load(), RTTNS: l.rtt.Load()}
	}
	return out
}

// NodeHealth is one node link's identity and liveness — the per-node view
// the flight recorder samples into its node ring.
type NodeHealth struct {
	Shard   int
	Addr    string
	Healthy bool
}

// NodeHealth appends the current health of every node link to dst and
// returns it. Safe to call mid-run (reads only atomics); pass a reused
// slice to keep sampling allocation-free.
func (c *Controller) NodeHealth(dst []NodeHealth) []NodeHealth {
	for _, l := range c.links {
		dst = append(dst, NodeHealth{Shard: l.id, Addr: l.addr, Healthy: l.healthy.Load()})
	}
	return dst
}

// WriteSpans dumps the controller's span dump: one meta line (role, run
// ID, per-link clock estimates) followed by the retained spans as JSONL —
// the controller half of a wdmtrace -merge input pair.
func (c *Controller) WriteSpans(w io.Writer) error {
	if c.cfg.Spans == nil {
		return errors.New("cluster: controller has no span tracer")
	}
	meta := struct {
		Meta struct {
			Role  string     `json:"role"`
			RunID uint64     `json:"run_id"`
			Links []LinkSync `json:"links"`
		} `json:"meta"`
	}{}
	meta.Meta.Role = "controller"
	meta.Meta.RunID = c.runID
	meta.Meta.Links = c.LinkSyncs()
	enc, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(enc, '\n')); err != nil {
		return err
	}
	return c.cfg.Spans.WriteJSONL(w)
}

// ScheduleBatch implements interconnect.BatchScheduler: partition the
// slot's non-empty request vectors across the node links, fan out one
// batched RPC per link, and wait for every port's decision — remote when
// the node answers in time, locally recomputed when it does not.
func (c *Controller) ScheduleBatch(slot int64, reqs []interconnect.BatchRequest, out []interconnect.BatchResult) error {
	if c.closed.Load() {
		return errors.New("cluster: controller closed")
	}
	c.curReqs, c.curOut = reqs, out
	for _, l := range c.links {
		l.items = l.items[:0]
	}
	nodes := len(c.links)
	for i := range reqs {
		req := &reqs[i]
		if core.TotalRequests(req.Count) == 0 {
			// An empty request vector has the empty matching as its only
			// (and thus maximum) matching; short-circuit without an RPC.
			out[i].Res.Reset()
			if out[i].Shadow != nil {
				out[i].Shadow.Reset()
			}
			c.stats.EmptyItems.Inc()
			continue
		}
		c.links[req.Port%nodes].items = append(c.links[req.Port%nodes].items, i)
	}
	busy := 0
	for _, l := range c.links {
		if len(l.items) > 0 {
			busy++
		}
	}
	c.wg.Add(busy)
	for _, l := range c.links {
		if len(l.items) > 0 {
			l.work <- slot
		}
	}
	c.wg.Wait()
	fellBack := false
	for _, l := range c.links {
		fellBack = fellBack || l.fellBack
	}
	if fellBack {
		c.stats.FallbackSlots.Inc()
	}
	return nil
}

// Close tears down every link. Call only after the run's last
// ScheduleBatch has returned.
func (c *Controller) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, l := range c.links {
		l.once.Do(func() { close(l.work) })
		if l.tr != nil {
			l.tr.close()
			l.tr = nil
			l.healthy.Store(false)
		}
	}
	return nil
}

// RegisterTelemetry publishes the cluster runtime counters on a registry
// under wdm_cluster_* names, alongside the switch's own series.
func (c *Controller) RegisterTelemetry(r *telemetry.Registry) {
	st := c.stats
	r.CounterFunc("wdm_cluster_remote_items_total", "Port-slots scheduled on a remote node.", nil, st.RemoteItems.Value)
	r.CounterFunc("wdm_cluster_empty_items_total", "Port-slots short-circuited (empty request vector).", nil, st.EmptyItems.Value)
	r.CounterFunc("wdm_cluster_fallback_items_total", "Port-slots scheduled by the controller's local fallback.", nil, st.LocalFallbackItems.Value)
	r.CounterFunc("wdm_cluster_fallback_slots_total", "Slots in which at least one port fell back locally.", nil, st.FallbackSlots.Value)
	r.CounterFunc("wdm_cluster_retries_total", "Re-sent schedule RPCs.", nil, st.Retries.Value)
	r.CounterFunc("wdm_cluster_deadline_misses_total", "Schedule RPC attempts that exceeded their deadline.", nil, st.DeadlineMisses.Value)
	r.CounterFunc("wdm_cluster_reconnects_total", "Node sessions re-established after a transport failure.", nil, st.Reconnects.Value)
	r.CounterFunc("wdm_cluster_bytes_sent_total", "Bytes written to node links, framing included.", nil, st.BytesSent.Value)
	r.CounterFunc("wdm_cluster_bytes_received_total", "Bytes read from node links, framing included.", nil, st.BytesReceived.Value)
	r.CounterFunc("wdm_cluster_frames_sent_total", "Frames written to node links.", nil, st.FramesSent.Value)
	r.CounterFunc("wdm_cluster_frames_received_total", "Frames read from node links.", nil, st.FramesReceived.Value)
	r.DurationHistogram("wdm_cluster_rpc_latency_seconds", "Successful schedule RPC round-trip time.", nil, st.RPCLatency)
	stage := func(name string, h *metrics.DurationHistogram) {
		r.DurationHistogram("wdm_cluster_stage_seconds", "Per-stage latency attribution of the distributed slot pipeline.",
			[]telemetry.Label{{Key: "stage", Value: name}}, h)
	}
	stage("prepare", st.PrepareTime)
	stage("encode", st.EncodeTime)
	stage("node-decode", st.NodeDecodeTime)
	stage("node-schedule", st.NodeScheduleTime)
	stage("node-encode", st.NodeEncodeTime)
	stage("commit", st.CommitTime)
	// Per-stage latency SLOs (wdm_slo_* burn-rate gauges): the RPC round
	// trip gets a wider budget than the controller-local stages.
	telemetry.RegisterSLO(r, "rpc", st.RPCLatency, 10*time.Millisecond, 0.999)
	telemetry.RegisterSLO(r, "prepare", st.PrepareTime, time.Millisecond, 0.999)
	telemetry.RegisterSLO(r, "encode", st.EncodeTime, time.Millisecond, 0.999)
	telemetry.RegisterSLO(r, "commit", st.CommitTime, time.Millisecond, 0.999)
	r.GaugeFunc("wdm_cluster_remote_fraction", "Fraction of non-empty decisions computed remotely.", nil, st.RemoteFraction)
	for _, l := range c.links {
		lbl := []telemetry.Label{{Key: "node", Value: l.addr}, {Key: "shard", Value: strconv.Itoa(l.id)}}
		hf := l.healthy.Load
		r.GaugeFunc("wdm_cluster_node_healthy", "1 while the node link is connected and serving.", lbl, func() float64 {
			if hf() {
				return 1
			}
			return 0
		})
	}
	if f := c.cfg.Faults; f != nil {
		r.CounterFunc("wdm_cluster_net_faults_total", "Injected transport faults.",
			[]telemetry.Label{{Key: "kind", Value: "drop"}}, f.Drops.Value)
		r.CounterFunc("wdm_cluster_net_faults_total", "Injected transport faults.",
			[]telemetry.Label{{Key: "kind", Value: "duplicate"}}, f.Duplicates.Value)
		r.CounterFunc("wdm_cluster_net_faults_total", "Injected transport faults.",
			[]telemetry.Label{{Key: "kind", Value: "delay"}}, f.Delays.Value)
	}
}

// worker is the link's persistent slot loop: one goroutine per node link,
// woken once per slot that assigns it work, reporting completion on the
// controller's barrier — the networked analogue of the in-process engine's
// worker pool.
func (l *link) worker() {
	for slot := range l.work {
		l.runSlot(slot)
		l.ctrl.wg.Done()
	}
}

// runSlot resolves this link's share of one slot: remotely when the
// session is (or can be brought) up and answers within the deadline
// budget, locally otherwise.
func (l *link) runSlot(slot int64) {
	l.fellBack = false
	if l.tr == nil && !l.reconnect(slot) {
		l.fallback(slot)
		return
	}
	if err := l.rpc(slot); err != nil {
		l.ctrl.logf("node %s: slot %d falling back: %v", l.addr, slot, err)
		l.disconnect(slot)
		l.fallback(slot)
	}
}

// retryDelay is the pause before retry attempt n (n ≥ 1): the attempt's
// exponential backoff base plus uniform seeded jitter in [0, base].
func retryDelay(rng *traffic.RNG, base time.Duration, attempt int) time.Duration {
	if attempt > 32 {
		attempt = 32 // clamp the shift; real retry budgets are single digits
	}
	d := base << (attempt - 1)
	return d + time.Duration(rng.Intn(int(d)+1))
}

// rpc sends the slot's batched schedule frame and decodes the grants,
// retrying with exponential backoff and seeded jitter. Any attempt
// failure tears the connection down and redials before the next attempt:
// a timed-out read may have consumed a partial frame, and a fresh session
// is the only way to guarantee stream alignment (nodes are stateless, so
// a new session costs one handshake and nothing else).
func (l *link) rpc(slot int64) error {
	st := l.ctrl.stats
	var lastErr error
	for attempt := 0; attempt <= l.ctrl.cfg.Retries; attempt++ {
		if attempt > 0 {
			st.Retries.Inc()
			time.Sleep(retryDelay(l.rng, l.ctrl.cfg.BackoffBase, attempt))
			if l.tr == nil {
				if l.connect() != nil {
					continue
				}
				st.Reconnects.Inc()
			}
		}
		start := time.Now()
		err := l.attempt(slot)
		if err == nil {
			st.RemoteItems.Add(int64(len(l.items)))
			st.RPCLatency.Observe(time.Since(start))
			return nil
		}
		lastErr = err
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			st.DeadlineMisses.Inc()
		}
		if l.tr != nil {
			l.tr.close()
			l.tr = nil
			l.healthy.Store(false)
		}
		var verr *VersionError
		if errors.As(err, &verr) {
			return err // a protocol mismatch will not heal; skip the retries
		}
	}
	return lastErr
}

// attempt runs one send/receive round for the current slot's items. The
// v2 frame carries the trace context (run ID, span ID = seq<<20|shard)
// and the send-time stamp t0, patched into the encoded payload last so
// the network span excludes encode time.
func (l *link) attempt(slot int64) error {
	l.seq++
	spanID := l.seq<<20 | uint64(l.id)
	reqs := l.ctrl.curReqs
	encStart := telemetry.NowNS()
	b := l.payload[:0]
	b = putU64(b, l.seq)
	b = putU64(b, uint64(slot))
	b = putU64(b, l.ctrl.runID)
	b = putU64(b, spanID)
	b = putI64(b, 0) // t0, patched below at send time
	b = putU32(b, uint32(len(l.items)))
	for _, i := range l.items {
		req := &reqs[i]
		b = putU32(b, uint32(req.Port))
		for _, c := range req.Count {
			b = putU16(b, uint16(c))
		}
		b = appendOccupied(b, req.Occupied)
		if req.Mask != nil {
			b = append(b, 1)
			for _, s := range req.Mask {
				b = append(b, byte(s))
			}
		} else {
			b = append(b, 0)
		}
	}
	l.payload = b
	encEnd := telemetry.NowNS()
	l.ctrl.stats.EncodeTime.Observe(time.Duration(encEnd - encStart))
	t0 := telemetry.NowNS()
	patchU64(l.payload, schedT0Off, uint64(t0))
	if err := l.tr.send(msgSchedule, l.payload); err != nil {
		return err
	}
	payload, err := l.expect(msgGrants, l.seq)
	if err != nil {
		return err
	}
	t5 := telemetry.NowNS()
	if err := l.decodeGrants(payload, spanID); err != nil {
		return err
	}
	l.observeSync(t0, t5)
	if tr := l.ctrl.cfg.Spans; tr != nil {
		lane := 1 + l.id
		tr.Emit(lane, telemetry.Span{Slot: slot, Lane: int32(lane), Stage: telemetry.StageEncode,
			Port: -1, ID: spanID, Start: encStart, Dur: encEnd - encStart})
		tr.Emit(lane, telemetry.Span{Slot: slot, Lane: int32(lane), Stage: telemetry.StageRPC,
			Port: -1, ID: spanID, Start: t0, Dur: t5 - t0})
	}
	return nil
}

// observeSync folds one RPC's piggybacked node stamps into the link's
// clock-offset estimate. The sample with the lowest round-trip time bounds
// the asymmetry error tightest, so only improvements are kept.
func (l *link) observeSync(t0, t5 int64) {
	rtt := (t5 - t0) - (l.gt[3] - l.gt[0])
	if rtt < 0 {
		rtt = 0
	}
	if l.bestRTT != 0 && rtt >= l.bestRTT {
		return
	}
	l.bestRTT = rtt
	l.offset.Store(((l.gt[0] - t0) + (l.gt[3] - t5)) / 2)
	l.rtt.Store(rtt)
}

// decodeGrants writes a grants payload into the slot's result buffers,
// checking that the node answered exactly the items asked, in order, and
// harvesting the piggybacked node timestamps for stage attribution.
func (l *link) decodeGrants(payload []byte, spanID uint64) error {
	reqs, out := l.ctrl.curReqs, l.ctrl.curOut
	st := l.ctrl.stats
	k := l.ctrl.cfg.Conv.K()
	r := reader{b: payload}
	r.u64() // seq, already matched by expect
	r.u64() // slot echo
	span := r.u64()
	l.gt[0] = r.i64() // t1: node received the schedule frame
	l.gt[1] = r.i64() // t2: node finished decoding
	l.gt[2] = r.i64() // t3: node schedule barrier done
	l.gt[3] = r.i64() // t4: node finished encoding the reply
	items := int(r.u32())
	if r.Err() != nil {
		return r.Err()
	}
	if span != spanID {
		return fmt.Errorf("cluster: grants echo span %#x, want %#x", span, spanID)
	}
	st.NodeDecodeTime.Observe(time.Duration(l.gt[1] - l.gt[0]))
	st.NodeScheduleTime.Observe(time.Duration(l.gt[2] - l.gt[1]))
	st.NodeEncodeTime.Observe(time.Duration(l.gt[3] - l.gt[2]))
	if items != len(l.items) {
		return fmt.Errorf("cluster: grants carry %d items, want %d", items, len(l.items))
	}
	for _, i := range l.items {
		port := int(r.u32())
		if r.Err() != nil {
			return r.Err()
		}
		if port != reqs[i].Port {
			return fmt.Errorf("cluster: grants out of order: port %d, want %d", port, reqs[i].Port)
		}
		if err := readResult(&r, k, out[i].Res); err != nil {
			return err
		}
		hasShadow := r.u8() != 0
		if hasShadow != (out[i].Shadow != nil) {
			return fmt.Errorf("cluster: port %d shadow presence %v, want %v", port, hasShadow, out[i].Shadow != nil)
		}
		if hasShadow {
			if err := readResult(&r, k, out[i].Shadow); err != nil {
				return err
			}
		}
	}
	if r.Rem() != 0 {
		return fmt.Errorf("cluster: %d trailing grants bytes", r.Rem())
	}
	return nil
}

// fallback schedules this link's items on the controller with the same
// pure scheduler the node would have used — bit-identical results, so
// degradation changes only where the work ran, never what it produced.
func (l *link) fallback(slot int64) {
	start := telemetry.NowNS()
	reqs, out := l.ctrl.curReqs, l.ctrl.curOut
	for _, i := range l.items {
		req := &reqs[i]
		if req.Mask != nil {
			l.fb.ScheduleMasked(req.Count, req.Occupied, req.Mask, out[i].Res)
			l.fb.Schedule(req.Count, req.Occupied, out[i].Shadow)
		} else {
			l.fb.Schedule(req.Count, req.Occupied, out[i].Res)
		}
		l.ctrl.stats.LocalFallbackItems.Inc()
	}
	l.fellBack = true
	if tr := l.ctrl.cfg.Spans; tr != nil {
		lane := 1 + l.id
		tr.Emit(lane, telemetry.Span{Slot: slot, Lane: int32(lane), Stage: telemetry.StageFallback,
			Port: -1, Start: start, Dur: telemetry.NowNS() - start})
	}
}

// reconnect decides whether a downed link should redial this slot, and
// does so. Immediately after a failure the next slot retries once (the
// outage may be transient); after that, probes run every ProbeSlots slots
// so a dead node costs one dial timeout per probe window, not per slot.
func (l *link) reconnect(slot int64) bool {
	if slot < l.nextProbe {
		return false
	}
	if err := l.connect(); err != nil {
		l.nextProbe = slot + int64(l.ctrl.cfg.ProbeSlots)
		return false
	}
	l.ctrl.stats.Reconnects.Inc()
	l.ctrl.logf("node %s: reconnected at slot %d", l.addr, slot)
	return true
}

// disconnect drops the session and schedules the reconnect probe.
func (l *link) disconnect(slot int64) {
	if l.tr != nil {
		l.tr.close()
		l.tr = nil
	}
	l.healthy.Store(false)
	l.nextProbe = slot + 1
}

// connect dials the node and runs the hello/config handshake under the
// RPC deadline. On success the link is healthy and configured.
func (l *link) connect() error {
	network, address := splitAddr(l.addr)
	c, err := net.DialTimeout(network, address, l.ctrl.cfg.RPCTimeout)
	if err != nil {
		return err
	}
	tr := newTransport(c)
	tr.faults = l.ctrl.cfg.Faults
	tr.bytesOut = &l.ctrl.stats.BytesSent
	tr.bytesIn = &l.ctrl.stats.BytesReceived
	tr.framesOut = &l.ctrl.stats.FramesSent
	tr.framesIn = &l.ctrl.stats.FramesReceived
	l.tr = tr
	nonce := l.rng.Uint64()
	hb := putU64(nil, nonce)
	ok := false
	defer func() {
		if !ok {
			tr.close()
			l.tr = nil
		}
	}()
	if err := tr.send(msgHello, hb); err != nil {
		return err
	}
	payload, err := l.expect(msgHelloAck, nonce)
	if err != nil {
		return err
	}
	r := reader{b: payload}
	if got := r.u64(); r.Err() != nil || got != nonce {
		return fmt.Errorf("cluster: hello nonce mismatch from %s", l.addr)
	}
	if err := tr.send(msgConfig, l.ports); err != nil {
		return err
	}
	if _, err := l.expect(msgConfigAck, 0); err != nil {
		return err
	}
	ok = true
	l.healthy.Store(true)
	return nil
}

// expect reads frames under the RPC deadline until one of the wanted type
// arrives with the wanted sequence number (when the type carries one).
// Stale frames — duplicated replies to earlier sequence numbers, leftover
// acks — are discarded; a node error frame surfaces as an error.
func (l *link) expect(want msgType, seq uint64) ([]byte, error) {
	deadline := time.Now().Add(l.ctrl.cfg.RPCTimeout)
	if err := l.tr.setReadDeadline(deadline); err != nil {
		return nil, err
	}
	for {
		mt, payload, err := l.tr.recv()
		if err != nil {
			return nil, err
		}
		switch mt {
		case msgError:
			r := reader{b: payload}
			r.u64()
			return nil, fmt.Errorf("cluster: node %s: %s", l.addr, r.str())
		case want:
			switch want {
			case msgGrants, msgHelloAck, msgPong:
				r := reader{b: payload}
				if r.u64() != seq || r.Err() != nil {
					continue // stale duplicate
				}
			}
			return payload, nil
		case msgHelloAck, msgConfigAck, msgGrants, msgPong:
			continue // stale frame from an earlier exchange
		default:
			return nil, fmt.Errorf("cluster: unexpected %v from %s", mt, l.addr)
		}
	}
}

// encodeConfig builds this link's config frame: the interconnect shape,
// the scheduler name, and the ports striped onto this node.
func (l *link) encodeConfig() []byte {
	cfg := l.ctrl.cfg
	conv := cfg.Conv
	b := putU32(nil, uint32(cfg.N))
	b = append(b, byte(conv.Kind()))
	b = putU32(b, uint32(conv.K()))
	b = putU32(b, uint32(conv.MinusReach()))
	b = putU32(b, uint32(conv.PlusReach()))
	b = putString(b, cfg.Scheduler)
	var ports []int
	for o := l.id; o < cfg.N; o += len(cfg.Addrs) {
		ports = append(ports, o)
	}
	b = putU32(b, uint32(len(ports)))
	for _, o := range ports {
		b = putU32(b, uint32(o))
	}
	return b
}
