// Package cluster is the networked runtime for the paper's distributed
// scheduling architecture: the N independent per-output-fiber schedulers
// are sharded across worker nodes reachable over TCP or unix sockets,
// instead of goroutines inside one process.
//
// The division of labor follows from the schedulers being pure functions
// of one slot's request vector (count, occupied, mask) — see core.Scheduler.
// All mutable simulation state (channel holds, selector round-robin
// pointers, statistics) stays on the controller; nodes are stateless
// matching servers. That single property buys the whole robustness story:
//
//   - a duplicated or replayed frame recomputes the same answer;
//   - a node that misses its slot deadline can be replaced, mid-run, by
//     the controller's local fallback scheduler with bit-identical output;
//   - a node can crash and reconnect with no state transfer.
//
// Consequently a cluster run's Stats are byte-identical to the in-process
// sequential and distributed engines given the same seed and trace — the
// keystone correctness property, asserted by tests and CI.
//
// Wire protocol (version 2): length-prefixed binary frames, big-endian:
//
//	magic   uint16  0x57C1
//	version uint8   2
//	type    uint8   message type
//	length  uint32  payload byte count
//	payload [length]byte
//	crc     uint32  IEEE CRC-32 of the payload
//
// A frame whose version byte differs from this build's is rejected with a
// *VersionError naming both versions; the node additionally replies with
// an error frame stamped with the peer's version byte so an old
// controller can still decode the rejection. There is no downgrade path —
// v2 peers fail fast against v1 peers and vice versa.
//
// Messages (controller → node unless noted):
//
//	hello     nonce u64 — session open; node echoes helloAck
//	config    n u32, kind u8, k u32, e u32, f u32, scheduler string,
//	          ports u32 + u32×ports — node builds one scheduler per
//	          assigned port and echoes configAck
//	schedule  seq u64, slot u64, run u64, span u64, t0 i64, items u32,
//	          then per item: port u32, count u16×k, occupied bitmap
//	          ⌈k/8⌉ bytes, maskFlag u8 (+ k mask bytes when 1).
//	          run/span are the trace context (run ID, per-RPC span ID);
//	          t0 is the controller's span clock at send time.
//	grants    (node → controller) seq u64, slot u64, span u64 (echoed),
//	          t1 i64, t2 i64, t3 i64, t4 i64, items u32, then per item:
//	          port u32, result, shadowFlag u8 (+ shadow result when the
//	          request was masked); result = size u16, break i16,
//	          byOutput i16×k (−1 = unassigned; Granted is re-derived).
//	          t1..t4 are node span-clock stamps: frame receipt, decode
//	          done, schedule barrier done, reply encoded — the controller
//	          derives per-stage attribution and, with its own send/receive
//	          stamps, the node's clock offset (NTP-style RTT/2 correction).
//	ping/pong seq u64 — health probe
//	error     (node → controller) seq u64, message string
//
// Version 1 lacked run/span/t* trace context on schedule and grants
// frames; everything else is unchanged.
//
// Encoding and decoding on the schedule/grants hot path are
// allocation-free: frames build in reused buffers and decode by cursor
// over the read buffer; the late timestamps (t0, t4) are patched into the
// encoded frame at fixed offsets immediately before it is written.
package cluster

import (
	"errors"
	"fmt"
)

const (
	wireMagic   = 0x57C1
	wireVersion = 2

	headerLen  = 8
	crcLen     = 4
	maxPayload = 64 << 20 // sanity cap against corrupt length prefixes

	// Payload offsets of the timestamps patched in after encoding:
	// schedule t0 follows seq+slot+run+span; grants t4 follows
	// seq+slot+span+t1+t2+t3.
	schedT0Off  = 32
	grantsT4Off = 48

	// Shape caps: validated at configure time so per-item sizes computed
	// from k cannot overflow and counts fit the u16 wire width.
	maxPorts       = 1 << 20
	maxWavelengths = 1 << 12
)

type msgType uint8

const (
	msgInvalid msgType = iota
	msgHello
	msgHelloAck
	msgConfig
	msgConfigAck
	msgSchedule
	msgGrants
	msgPing
	msgPong
	msgError
)

func (m msgType) String() string {
	switch m {
	case msgHello:
		return "hello"
	case msgHelloAck:
		return "hello-ack"
	case msgConfig:
		return "config"
	case msgConfigAck:
		return "config-ack"
	case msgSchedule:
		return "schedule"
	case msgGrants:
		return "grants"
	case msgPing:
		return "ping"
	case msgPong:
		return "pong"
	case msgError:
		return "error"
	}
	return fmt.Sprintf("msgType(%d)", uint8(m))
}

// errShortPayload is the shared decode-overrun error; reader methods
// return zero values after it is set, and callers check Err once.
var errShortPayload = errors.New("cluster: truncated payload")

// VersionError reports a wire-protocol version mismatch with a peer.
// Both ends fail fast on it: the controller gives up on the node without
// retrying, and the node closes the session after a best-effort error
// reply framed in the peer's version.
type VersionError struct {
	Peer  uint8 // version byte the peer sent
	Local uint8 // version this build speaks
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("cluster: wire protocol version mismatch: peer speaks v%d, this build speaks v%d",
		e.Peer, e.Local)
}

// Append-style big-endian encoders. All return the extended slice so the
// hot path stays a chain of appends into one reused buffer.

func putU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func putI16(b []byte, v int16) []byte { return putU16(b, uint16(v)) }

func putI64(b []byte, v int64) []byte { return putU64(b, uint64(v)) }

// patchU64 overwrites 8 bytes at off in an already-encoded payload — used
// to stamp send-time timestamps without re-encoding the frame.
func patchU64(b []byte, off int, v uint64) {
	_ = b[off+7]
	b[off] = byte(v >> 56)
	b[off+1] = byte(v >> 48)
	b[off+2] = byte(v >> 40)
	b[off+3] = byte(v >> 32)
	b[off+4] = byte(v >> 24)
	b[off+5] = byte(v >> 16)
	b[off+6] = byte(v >> 8)
	b[off+7] = byte(v)
}

func putString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = putU16(b, uint16(len(s)))
	return append(b, s...)
}

// reader is a bounds-checked cursor over one frame's payload. The first
// overrun latches err; subsequent reads return zeros, so decode loops can
// run unguarded and check Err once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errShortPayload
	}
}

func (r *reader) Err() error { return r.err }

// Rem reports the unread byte count.
func (r *reader) Rem() int { return len(r.b) - r.off }

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := uint16(r.b[r.off])<<8 | uint16(r.b[r.off+1])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 4
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 8
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func (r *reader) i16() int16 { return int16(r.u16()) }

func (r *reader) i64() int64 { return int64(r.u64()) }

// bytes returns the next n payload bytes without copying; the slice is
// valid only until the underlying read buffer is reused.
func (r *reader) bytes(n int) []byte {
	if n < 0 || r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// str decodes a length-prefixed string (allocates; config path only).
func (r *reader) str() string {
	n := int(r.u16())
	return string(r.bytes(n))
}

// occupiedBitmapLen is the wire size of a k-channel occupancy bitmap.
func occupiedBitmapLen(k int) int { return (k + 7) / 8 }

// appendOccupied packs a []bool into the bitmap wire form.
func appendOccupied(b []byte, occupied []bool) []byte {
	var cur byte
	for i, o := range occupied {
		if o {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(occupied)&7 != 0 {
		b = append(b, cur)
	}
	return b
}

// readOccupied unpacks a bitmap into dst (len k, reused).
func readOccupied(r *reader, dst []bool) {
	bm := r.bytes(occupiedBitmapLen(len(dst)))
	if bm == nil {
		return
	}
	for i := range dst {
		dst[i] = bm[i>>3]&(1<<(i&7)) != 0
	}
}
