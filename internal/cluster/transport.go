package cluster

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"time"

	"wdmsched/internal/fault"
	"wdmsched/internal/metrics"
)

// transport frames messages over one connection. It is not safe for
// concurrent use; the controller gives each node link its own transport
// and the node gives each session its own. Both frame buffers are reused,
// so the steady-state send/receive path does not allocate.
type transport struct {
	c  net.Conn
	br *bufio.Reader

	wbuf []byte // whole outgoing frame: header + payload + crc
	rbuf []byte // incoming payload

	// faults, when non-nil, injects frame-level drop/delay/duplication on
	// both directions (the controller sets it; nodes run clean).
	faults *fault.TransportFaults

	// bytesOut/bytesIn, when non-nil, total the wire traffic (frames
	// actually written or read, headers and checksums included);
	// framesOut/framesIn count the frames themselves. On a fault-free run
	// one end's framesOut equals the other end's framesIn — the
	// cross-process consistency check the cluster smoke test asserts.
	bytesOut, bytesIn   *metrics.Counter
	framesOut, framesIn *metrics.Counter
}

func newTransport(c net.Conn) *transport {
	return &transport{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// send frames and writes one message. Injected faults apply here: a
// dropped frame is simply not written (the peer sees silence), a delayed
// frame stalls the caller, a duplicated frame is written twice — the
// receiver's sequence matching makes the duplicate harmless.
func (t *transport) send(mt msgType, payload []byte) error {
	return t.sendVersioned(wireVersion, mt, payload)
}

// sendVersioned frames a message with an explicit version byte. The only
// caller that passes anything but wireVersion is the node's
// version-mismatch reply, framed in the peer's version so the peer can
// decode the rejection.
func (t *transport) sendVersioned(version uint8, mt msgType, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("cluster: payload %d exceeds limit", len(payload))
	}
	t.wbuf = t.wbuf[:0]
	t.wbuf = putU16(t.wbuf, wireMagic)
	t.wbuf = append(t.wbuf, version, byte(mt))
	t.wbuf = putU32(t.wbuf, uint32(len(payload)))
	t.wbuf = append(t.wbuf, payload...)
	t.wbuf = putU32(t.wbuf, crc32.ChecksumIEEE(payload))

	writes := 1
	if t.faults != nil {
		fate := t.faults.Fate()
		if fate.Delay > 0 {
			time.Sleep(fate.Delay)
		}
		if fate.Drop {
			writes = 0
		} else if fate.Duplicate {
			writes = 2
		}
	}
	for i := 0; i < writes; i++ {
		if _, err := t.c.Write(t.wbuf); err != nil {
			return fmt.Errorf("cluster: write %v: %w", mt, err)
		}
		if t.bytesOut != nil {
			t.bytesOut.Add(int64(len(t.wbuf)))
		}
		if t.framesOut != nil {
			t.framesOut.Inc()
		}
	}
	return nil
}

// recv reads one frame and returns its type and payload. The payload
// slice is valid until the next recv. Inbound fault injection drops whole
// frames after they are read off the wire (the caller just never sees
// them), modeling a lost reply.
func (t *transport) recv() (msgType, []byte, error) {
	for {
		mt, payload, err := t.recvRaw()
		if err != nil {
			return 0, nil, err
		}
		if t.faults != nil && t.faults.Fate().Drop {
			continue // injected inbound loss
		}
		return mt, payload, nil
	}
}

func (t *transport) recvRaw() (msgType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("cluster: read header: %w", err)
	}
	if m := uint16(hdr[0])<<8 | uint16(hdr[1]); m != wireMagic {
		return 0, nil, fmt.Errorf("cluster: bad magic %#04x", m)
	}
	if hdr[2] != wireVersion {
		return 0, nil, &VersionError{Peer: hdr[2], Local: wireVersion}
	}
	mt := msgType(hdr[3])
	n := int(uint32(hdr[4])<<24 | uint32(hdr[5])<<16 | uint32(hdr[6])<<8 | uint32(hdr[7]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("cluster: payload length %d exceeds limit", n)
	}
	if cap(t.rbuf) < n+crcLen {
		t.rbuf = make([]byte, n+crcLen)
	}
	buf := t.rbuf[:n+crcLen]
	if _, err := io.ReadFull(t.br, buf); err != nil {
		return 0, nil, fmt.Errorf("cluster: read payload: %w", err)
	}
	if t.bytesIn != nil {
		t.bytesIn.Add(int64(headerLen + n + crcLen))
	}
	if t.framesIn != nil {
		t.framesIn.Inc()
	}
	payload := buf[:n]
	wantCRC := uint32(buf[n])<<24 | uint32(buf[n+1])<<16 | uint32(buf[n+2])<<8 | uint32(buf[n+3])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return 0, nil, fmt.Errorf("cluster: %v frame CRC mismatch (got %#08x want %#08x)", mt, got, wantCRC)
	}
	return mt, payload, nil
}

// setDeadline bounds the next read(s); zero clears it.
func (t *transport) setReadDeadline(d time.Time) error { return t.c.SetReadDeadline(d) }

func (t *transport) close() error { return t.c.Close() }

// splitAddr maps a node address to a Go network/address pair: anything
// with a "unix:" prefix or containing a path separator dials a unix
// socket; everything else is TCP host:port.
func splitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.Contains(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}
